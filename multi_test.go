package timingsubg_test

import (
	"testing"

	"timingsubg"
)

func TestMultiSearcherFansOut(t *testing.T) {
	labels := timingsubg.NewLabels()
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")

	mkQuery := func(x, y timingsubg.Label) *timingsubg.Query {
		b := timingsubg.NewQueryBuilder()
		u, v := b.AddVertex(x), b.AddVertex(y)
		b.AddEdge(u, v)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	got := map[string]int{}
	ms, err := timingsubg.NewMultiSearcher([]timingsubg.QuerySpec{
		{Name: "ab", Query: mkQuery(la, lb), Options: timingsubg.Options{Window: 10}},
		{Name: "bc", Query: mkQuery(lb, lc), Options: timingsubg.Options{Window: 10}},
	}, func(name string, m *timingsubg.Match) { got[name]++ })
	if err != nil {
		t.Fatal(err)
	}

	feed := func(f, to int64, fl, tl timingsubg.Label, tm int64) {
		t.Helper()
		if err := ms.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(f), To: timingsubg.VertexID(to),
			FromLabel: fl, ToLabel: tl, Time: timingsubg.Timestamp(tm),
		}); err != nil {
			t.Fatal(err)
		}
	}
	feed(1, 2, la, lb, 1) // ab only
	feed(2, 3, lb, lc, 2) // bc only
	feed(4, 5, la, lb, 3) // ab only
	feed(9, 9, lc, lc, 4) // neither
	ms.Close()

	if got["ab"] != 2 || got["bc"] != 1 {
		t.Fatalf("fan-out miscounted: %v", got)
	}
	counts := ms.MatchCounts()
	if counts["ab"] != 2 || counts["bc"] != 1 {
		t.Fatalf("MatchCounts: %v", counts)
	}
	if ms.SpaceBytes() <= 0 {
		t.Error("space must be positive with live partials")
	}
}

func TestMultiSearcherValidation(t *testing.T) {
	if _, err := timingsubg.NewMultiSearcher(nil, nil); err == nil {
		t.Error("empty spec list must be rejected")
	}
	labels := timingsubg.NewLabels()
	b := timingsubg.NewQueryBuilder()
	u, v := b.AddVertex(labels.Intern("a")), b.AddVertex(labels.Intern("b"))
	b.AddEdge(u, v)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = timingsubg.NewMultiSearcher([]timingsubg.QuerySpec{
		{Name: "bad", Query: q, Options: timingsubg.Options{Window: 0}},
	}, nil)
	if err == nil {
		t.Error("bad per-query options must be surfaced with the query name")
	}
}
