package timingsubg_test

import (
	"fmt"

	"timingsubg"
)

// Example demonstrates the minimal end-to-end flow: build a two-edge
// query with one timing constraint, feed four edges, observe the single
// match that satisfies both structure and order.
func Example() {
	labels := timingsubg.NewLabels()
	ip := labels.Intern("IP")
	tcp := labels.Intern("tcp")

	// victim →tcp→ c&c (registration) must precede c&c →tcp→ victim
	// (command).
	b := timingsubg.NewQueryBuilder()
	victim := b.AddVertex(ip)
	cc := b.AddVertex(ip)
	reg := b.AddLabeledEdge(victim, cc, tcp)
	cmd := b.AddLabeledEdge(cc, victim, tcp)
	b.Before(reg, cmd)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}

	s, err := timingsubg.NewSearcher(q, timingsubg.Options{
		Window: 100,
		OnMatch: func(m *timingsubg.Match) {
			fmt.Printf("victim=%d c&c=%d (reg@%d cmd@%d)\n",
				m.Vtx[victim], m.Vtx[cc], m.Edges[reg].Time, m.Edges[cmd].Time)
		},
	})
	if err != nil {
		panic(err)
	}

	// Both hosts carry the "IP" label, so host 2's t=2 message followed
	// by host 1's t=3 reply is itself a (role-swapped) registration +
	// command pair — the engine reports both assignments.
	edges := []timingsubg.Edge{
		{From: 8, To: 9, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 1}, // unrelated
		{From: 2, To: 1, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 2}, // reg (victim=2) …
		{From: 1, To: 2, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 3}, // … cmd, and reg (victim=1)
		{From: 2, To: 1, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 4}, // cmd for victim=1
	}
	for _, e := range edges {
		if _, err := s.Feed(e); err != nil {
			panic(err)
		}
	}
	s.Close()
	// Output:
	// victim=2 c&c=1 (reg@2 cmd@3)
	// victim=1 c&c=2 (reg@3 cmd@4)
}

// ExampleQueryBuilder_Before shows how timing-order constraints prune
// structurally identical subgraphs.
func ExampleQueryBuilder_Before() {
	labels := timingsubg.NewLabels()
	a, bl := labels.Intern("a"), labels.Intern("b")

	b := timingsubg.NewQueryBuilder()
	u := b.AddVertex(a)
	v := b.AddVertex(bl)
	w := b.AddVertex(a)
	first := b.AddEdge(u, v)
	second := b.AddEdge(w, v)
	b.Before(first, second) // ε_first ≺ ε_second
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", q.NumEdges(), "order pairs:", len(q.OrderPairs()))
	// Output:
	// edges: 2 order pairs: 1
}

// ExampleDecompose shows the TC decomposition a query compiles to.
func ExampleDecompose() {
	labels := timingsubg.NewLabels()
	l := labels.Intern("x")
	b := timingsubg.NewQueryBuilder()
	v0, v1, v2, v3 := b.AddVertex(l), b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)
	e1 := b.AddEdge(v0, v1)
	e2 := b.AddEdge(v1, v2)
	b.AddEdge(v2, v3) // no order constraint: its own TC-subquery
	b.Before(e1, e2)  // e1 ≺ e2 chains the first two edges
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	dec := timingsubg.Decompose(q)
	fmt.Println("k =", dec.K())
	// Output:
	// k = 2
}
