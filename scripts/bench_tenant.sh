#!/usr/bin/env sh
# bench_tenant.sh — run the multi-tenant admission A/B benchmark and
# emit the results as BENCH_tenant.json: the same HTTP ingest workload
# with tenancy off ("open") and on ("tenanted" — key resolution,
# per-line token-bucket admission, fair-share scheduling), so the
# control plane's toll on the hot path is a tracked number, not a vibe.
#
# Usage: scripts/bench_tenant.sh [output.json]
#   BENCHTIME=2s scripts/bench_tenant.sh   # longer, more stable runs
set -eu

out="${1:-BENCH_tenant.json}"
benchtime="${BENCHTIME:-1x}"

# Run first, convert second: plain sh has no pipefail, and a benchmark
# failure must fail this script rather than emit an empty-but-green
# artifact.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkTenantIngest$' -benchtime "$benchtime" ./internal/server/ > "$raw"

awk -v cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)" '
    /^BenchmarkTenantIngest\// {
      # BenchmarkTenantIngest/<cell>-<procs>  iters  ns/op  edges/s ...
      name = $1; iters = $2
      ns = ""; eps = ""
      for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")   ns = $i
        if ($(i + 1) == "edges/s") eps = $i
      }
      if (n++) printf ",\n"
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"edges_per_s\": %s}", name, iters, ns, eps
    }
    BEGIN { if (cores == "") cores = 0; printf "{\n\"cores\": " cores ",\n\"benchmarks\": [\n" }
    END   { printf "\n]\n}\n" }
  ' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
