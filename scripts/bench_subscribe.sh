#!/usr/bin/env sh
# bench_subscribe.sh — run the results-plane fan-out benchmark and emit
# the results as BENCH_subscribe.json, so CI (and anyone tracking the
# perf trajectory) has machine-readable data points for subscription
# delivery: 1/8/64 subscribers, lossless (block, drained) and
# load-shedding (dropoldest, stalled) policies.
#
# Usage: scripts/bench_subscribe.sh [output.json]
#   BENCHTIME=2s scripts/bench_subscribe.sh   # longer, more stable runs
set -eu

out="${1:-BENCH_subscribe.json}"
benchtime="${BENCHTIME:-1x}"

# Run first, convert second: plain sh has no pipefail, and a benchmark
# failure must fail this script rather than emit an empty-but-green
# artifact.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkSubscribeFan$' -benchtime "$benchtime" . > "$raw"

awk -v cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)" '
    /^BenchmarkSubscribeFan\// {
      # BenchmarkSubscribeFan/<policy>/subs-<n>-<procs>  iters  ns/op  ... edges/s ... deliveries/s
      name = $1; iters = $2
      ns = ""; eps = ""; dps = ""
      for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")        ns = $i
        if ($(i + 1) == "edges/s")      eps = $i
        if ($(i + 1) == "deliveries/s") dps = $i
      }
      if (n++) printf ",\n"
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"edges_per_s\": %s, \"deliveries_per_s\": %s}", name, iters, ns, eps, dps
    }
    BEGIN { if (cores == "") cores = 0; printf "{\n\"cores\": " cores ",\n\"benchmarks\": [\n" }
    END   { printf "\n]\n}\n" }
  ' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
