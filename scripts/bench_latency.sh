#!/usr/bin/env sh
# bench_latency.sh — run the ingest-latency benchmark and emit the
# results as BENCH_latency.json. The cells drive the 1e5-edge stream
# through a metrics-on engine per-edge (feed) and batched (batch-1024)
# and report the pipeline's own histogram percentiles: p50/p99 ingest
# latency (feed call → edge joined and delivered) and p50/p99 detection
# latency (edge arrival → match emission). It is the latency counterpart
# to BENCH_core.json's throughput trajectory.
#
# Usage: scripts/bench_latency.sh [output.json]
#   BENCHTIME=5x scripts/bench_latency.sh   # longer, more stable runs
set -eu

out="${1:-BENCH_latency.json}"
benchtime="${BENCHTIME:-1x}"

# Run first, convert second: plain sh has no pipefail, and a benchmark
# failure must fail this script rather than emit an empty-but-green
# artifact.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkIngestLatency$' -benchtime "$benchtime" . > "$raw"

awk -v cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)" '
    /^BenchmarkIngestLatency\// {
      # BenchmarkIngestLatency/<mode>-<procs>  iters  ns/op  <value unit>...
      name = $1; iters = $2
      ns = ""; eps = ""; p50i = ""; p99i = ""; p50d = ""; p99d = ""
      for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")         ns = $i
        if ($(i + 1) == "edges/s")       eps = $i
        if ($(i + 1) == "p50-ingest-ns") p50i = $i
        if ($(i + 1) == "p99-ingest-ns") p99i = $i
        if ($(i + 1) == "p50-detect-ns") p50d = $i
        if ($(i + 1) == "p99-detect-ns") p99d = $i
      }
      if (n++) printf ",\n"
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"edges_per_s\": %s, ", name, iters, ns, eps
      printf "\"p50_ingest_ns\": %s, \"p99_ingest_ns\": %s, \"p50_detection_ns\": %s, \"p99_detection_ns\": %s}", p50i, p99i, p50d, p99d
    }
    BEGIN { if (cores == "") cores = 0; printf "{\n\"cores\": " cores ",\n\"benchmarks\": [\n" }
    END   { printf "\n]\n}\n" }
  ' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
