#!/usr/bin/env sh
# bench_core.sh — run the core ingest benchmarks (dataset × mode cells)
# and emit the results as BENCH_core.json, including the per-dataset
# speedups for the two standing A/Bs:
#   - BenchmarkInsertIngest indexed vs scan: the vertex-join-index A/B.
#     The "scan" cells run the engine with the index disabled
#     (core.Config.ScanProbes), so the ratio is exactly the work the
#     index saves on the INSERT hot path.
#   - BenchmarkExpiryIngest batched vs peredge: the batch-eviction A/B.
#     The "peredge" cells expire edge-at-a-time (Engine.Process), so
#     the ratio is the work one-pass window slides save on the
#     eviction-dominated bursty stream.
#
# Usage: scripts/bench_core.sh [output.json]
#   BENCHTIME=2s scripts/bench_core.sh   # longer, more stable runs
set -eu

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-1x}"

# Run first, convert second: plain sh has no pipefail, and a benchmark
# failure must fail this script rather than emit an empty-but-green
# artifact.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^Benchmark(Insert|Expiry)Ingest$' -benchtime "$benchtime" ./internal/core > "$raw"

awk -v cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)" '
    /^Benchmark(Insert|Expiry)Ingest\// {
      # Benchmark<Kind>Ingest/<dataset>/<mode>-<procs>  iters  ns/op  edges/s  matches ...
      name = $1; iters = $2
      ns = ""; eps = ""
      for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")   ns = $i
        if ($(i + 1) == "edges/s") eps = $i
      }
      if (n++) printf ",\n"
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"edges_per_s\": %s}", name, iters, ns, eps
      # Record per-dataset ns for the speedup sections: the cell name is
      # Benchmark<Kind>Ingest/<dataset>/<mode>-<procs>.
      split(name, parts, "/")
      ds = parts[2]; mode = parts[3]; sub(/-[0-9]+$/, "", mode)
      cell[ds "," mode] = ns
      if (name ~ /^BenchmarkInsertIngest\// && !(ds in seen)) { order[++nds] = ds; seen[ds] = 1 }
      if (name ~ /^BenchmarkExpiryIngest\// && !(ds in xseen)) { xorder[++xnds] = ds; xseen[ds] = 1 }
    }
    BEGIN { if (cores == "") cores = 0; printf "{\n\"cores\": " cores ",\n\"benchmarks\": [\n" }
    END   {
      printf "\n],\n\"speedup_indexed_vs_scan\": {"
      for (i = 1; i <= nds; i++) {
        ds = order[i]
        if (cell[ds ",indexed"] != "" && cell[ds ",scan"] != "" && cell[ds ",indexed"] > 0) {
          if (m++) printf ","
          printf "\n  \"%s\": %.3f", ds, cell[ds ",scan"] / cell[ds ",indexed"]
        }
      }
      printf "\n},\n\"speedup_batched_vs_peredge\": {"
      for (i = 1; i <= xnds; i++) {
        ds = xorder[i]
        if (cell[ds ",batched"] != "" && cell[ds ",peredge"] != "" && cell[ds ",batched"] > 0) {
          if (x++) printf ","
          printf "\n  \"%s\": %.3f", ds, cell[ds ",peredge"] / cell[ds ",batched"]
        }
      }
      printf "\n}\n}\n"
    }
  ' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
