#!/usr/bin/env sh
# bench_wal.sh — run the WAL group-commit A/B benchmark (per-batch fsync
# vs group commit at 1/4/16 concurrent feeders) and emit the results as
# BENCH_wal.json, so CI has machine-readable evidence that coalescing
# actually reduces fsyncs/batch below the per-batch baseline of 1.0.
#
# Usage: scripts/bench_wal.sh [output.json]
#   BENCHTIME=500x scripts/bench_wal.sh   # more batches per data point
set -eu

out="${1:-BENCH_wal.json}"
benchtime="${BENCHTIME:-100x}"

# Run first, convert second: plain sh has no pipefail, and a benchmark
# failure must fail this script rather than emit an empty-but-green
# artifact.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkGroupCommit$' -benchtime "$benchtime" ./internal/wal/ > "$raw"

awk -v cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 0)" '
    /^BenchmarkGroupCommit\// {
      # BenchmarkGroupCommit/<mode>/feeders-<n>-<procs>  iters  ns/op  edges/s  fsyncs/batch
      name = $1; iters = $2
      ns = ""; eps = ""; fpb = ""
      for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")        ns = $i
        if ($(i + 1) == "edges/s")      eps = $i
        if ($(i + 1) == "fsyncs/batch") fpb = $i
      }
      if (n++) printf ",\n"
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"edges_per_s\": %s, \"fsyncs_per_batch\": %s}", name, iters, ns, eps, fpb
    }
    BEGIN { if (cores == "") cores = 0; printf "{\n\"cores\": " cores ",\n\"benchmarks\": [\n" }
    END   { printf "\n]\n}\n" }
  ' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
