// Package client is the Go client for a tsserved server (cmd/tsserved):
// the network serving layer of timingsubg. It also defines the wire
// types of the HTTP protocol, which the server side (internal/server)
// shares, so the JSON contract lives in exactly one place.
//
// The protocol is plain HTTP + JSON:
//
//	POST   /queries          register a continuous query   (QueryRequest)
//	GET    /queries          list live queries             (QueryList)
//	DELETE /queries/{name}   retire a query
//	POST   /ingest           feed a batch of edges         (NDJSON of Edge → IngestResult)
//	GET    /subscribe        stream matches                (SSE of MatchEvent)
//
// GET /subscribe filters by query name with repeated verbatim ?query=
// parameters (machine-safe: names may contain commas) or the
// comma-separated ?queries=a,b convenience — no filter streams every
// query, current and future. A plain subscribe starts from now; each
// SSE event's id line is a complete resume token (the subscriber's
// per-query delivery cursors, URL-encoded), and a reconnecting client
// sends it back as the Last-Event-ID header: the server replays
// retained events newer than the cursors and skips everything already
// seen. MatchEvent.Seq is the engine's per-query delivery sequence
// number, stable across durable server restarts.
//
//	GET    /stats            sample live metrics           (JSON object)
//	GET    /healthz          liveness probe (answers as soon as the process listens)
//	GET    /readyz           readiness probe (503 while durable recovery replays)
//	POST   /tenants          register a tenant             (TenantSpec → TenantInfo, admin key)
//	GET    /tenants          list tenants with usage       (TenantList, admin key)
//
// On a multi-tenant server every request carries an API key in the
// Authorization: Bearer header (Client.WithAPIKey); the key selects
// the tenant namespace the call operates in, and query names are
// scoped per tenant. Admission rejections surface as *ErrRateLimited
// (HTTP 429) carrying the server's Retry-After hint; SubscribeOptions
// .Reconnect honors it when re-establishing a stream.
package client

// QueryRequest registers a continuous query with the server.
type QueryRequest struct {
	// Name identifies the query in match events, stats and DELETE.
	Name string `json:"name"`
	// Text is the query graph in the timingsubg text format, one
	// declaration per line:
	//
	//	v <id> <label>            vertex (dense 0-based ids, in order)
	//	e <from> <to> [label]     directed edge (edge ids assigned in order)
	//	o <a> < <b>               timing order: edge a before edge b
	//	# ...                     comment
	Text string `json:"text"`
	// Window is the time-based sliding-window duration, in stream time
	// units. Must be positive; the serving layer routes by labels, so
	// count-based windows are not accepted over the wire.
	Window int64 `json:"window"`
	// Tenant is the owning tenant. It is set by the server from the
	// request's credential — a value sent by a client is overwritten —
	// and appears in durable query registrations and admin listings.
	Tenant string `json:"tenant,omitempty"`
}

// QueryInfo describes one live query. Tenant is empty on a
// single-tenant server; in tenant-scoped listings Name is the wire
// name, in admin listings the full internal roster name.
type QueryInfo struct {
	Name   string `json:"name"`
	Window int64  `json:"window"`
	Tenant string `json:"tenant,omitempty"`
}

// QueryList is the response of GET /queries.
type QueryList struct {
	Queries []QueryInfo `json:"queries"`
}

// Edge is one streaming-graph edge in an ingest batch. Labels travel as
// strings; the server interns them.
type Edge struct {
	From      int64  `json:"from"`
	To        int64  `json:"to"`
	FromLabel string `json:"from_label"`
	ToLabel   string `json:"to_label"`
	// Label is the optional edge label.
	Label string `json:"label,omitempty"`
	// Time is the edge's arrival timestamp; timestamps must be strictly
	// increasing across the whole stream. Zero (or omitted) asks the
	// server to assign the next tick, which is the common mode for
	// firehose producers that don't carry their own clock.
	Time int64 `json:"time,omitempty"`
}

// IngestError locates one rejected line of an ingest batch.
type IngestError struct {
	// Line is the 1-based NDJSON line number within the batch.
	Line int `json:"line"`
	// Message says why the edge was rejected.
	Message string `json:"error"`
}

// IngestResult reports per-request ingest accounting. A batch is
// processed line by line: bad lines are rejected individually and the
// rest of the batch still lands.
type IngestResult struct {
	Accepted int           `json:"accepted"`
	Rejected int           `json:"rejected"`
	Errors   []IngestError `json:"errors,omitempty"`
}

// MatchEdge is one bound data edge of a match, in query-edge order.
type MatchEdge struct {
	// ID is the data edge's stream ID (per-engine arrival index; WAL
	// sequence number in durable mode).
	ID   int64 `json:"id"`
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Label is the edge label, if any.
	Label string `json:"label,omitempty"`
	Time  int64  `json:"time"`
}

// MatchEvent is one complete time-constrained match, delivered on the
// SSE subscription stream.
type MatchEvent struct {
	// Query names the continuous query that matched — the wire name
	// within its owner's namespace.
	Query string `json:"query"`
	// Tenant is the owning tenant (empty on a single-tenant server).
	// It disambiguates admin streams that span namespaces, where two
	// tenants may both run a query named Query.
	Tenant string `json:"tenant,omitempty"`
	// Seq is the engine's per-query delivery sequence number, from 1.
	// It is stable across durable server restarts (recovery replay
	// re-assigns the same numbers), so consumers that persist their
	// per-query high-water mark can discard duplicates by comparing
	// integers.
	Seq int64 `json:"seq,omitempty"`
	// Edges holds the bound data edges, indexed by query edge.
	Edges []MatchEdge `json:"edges"`
}

// Health is the response of GET /healthz.
type Health struct {
	Status string `json:"status"`
}

// LatencySnapshot is the wire form of one latency-histogram summary.
// Every duration field is in nanoseconds; an empty histogram is all
// zeros.
type LatencySnapshot struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum_ns"`
	Mean  int64  `json:"mean_ns"`
	P50   int64  `json:"p50_ns"`
	P90   int64  `json:"p90_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
	Max   int64  `json:"max_ns"`
}

// StageStats is the wire form of the engine's per-stage ingest-pipeline
// latency breakdown (timingsubg.StageStats): one summary per stage.
// Stages the server's engine composition does not exercise stay empty.
type StageStats struct {
	Ingest    LatencySnapshot `json:"ingest"`
	WALAppend LatencySnapshot `json:"wal_append"`
	WALSync   LatencySnapshot `json:"wal_sync"`
	// GroupCommit is each committer's wait for group-commit durability
	// (batch-coalescing latency under concurrent feeders).
	GroupCommit  LatencySnapshot `json:"wal_group_commit"`
	QueueWait    LatencySnapshot `json:"shard_queue_wait"`
	ShardExec    LatencySnapshot `json:"shard_exec"`
	Join         LatencySnapshot `json:"join"`
	Expiry       LatencySnapshot `json:"expiry"`
	Dispatch     LatencySnapshot `json:"dispatch"`
	Detection    LatencySnapshot `json:"detection"`
	EventTimeLag LatencySnapshot `json:"event_time_lag"`
}

// EngineStats is the wire form of the engine's unified Stats snapshot,
// served under the "fleet.stats" key of GET /stats. Fields a given
// composition does not use stay zero; the adaptive/durable/fleet flags
// say which sections apply. Per-query snapshots (never themselves
// fleets) sit under Queries.
type EngineStats struct {
	Matches        int64 `json:"matches"`
	Discarded      int64 `json:"discarded"`
	Fed            int64 `json:"fed"`
	InWindow       int   `json:"in_window"`
	PartialMatches int64 `json:"partial_matches"`
	SpaceBytes     int64 `json:"space_bytes"`
	LastTime       int64 `json:"last_time"`
	// JoinScanned / JoinCandidates expose the engine's join-index
	// selectivity: stored partial matches visited by INSERT probes vs.
	// those passing the join-key filter. Equal when the MS-tree vertex
	// join indexes are doing all the narrowing; the gap is scan work.
	JoinScanned    int64 `json:"join_scanned,omitempty"`
	JoinCandidates int64 `json:"join_candidates,omitempty"`
	// ExpiryBatches / ExpiryEvicted expose the batched expiry plane:
	// window slides processed as single eviction transactions, and the
	// expired edges they covered — their ratio is the mean eviction
	// batch size. Zero under the per-edge expiry ablation.
	ExpiryBatches   int64 `json:"expiry_batches,omitempty"`
	ExpiryEvicted   int64 `json:"expiry_evicted,omitempty"`
	K               int   `json:"k,omitempty"`
	Reoptimizations int   `json:"reoptimizations,omitempty"`
	WALSeq          int64 `json:"wal_seq,omitempty"`
	// WALSyncs counts WAL fsyncs this process performed — feeds per
	// fsync is the group-commit coalescing ratio.
	WALSyncs       int64   `json:"wal_syncs,omitempty"`
	Replayed       int64   `json:"replayed,omitempty"`
	RoutedFraction float64 `json:"routed_fraction,omitempty"`
	// FleetWorkers is the number of evaluation shards of a sharded
	// fleet (0 when evaluation is sequential); ShardMembers is the live
	// member count per shard — together the shape of the server's
	// parallel fan-out (tsserved -fleet-workers).
	FleetWorkers int   `json:"fleet_workers,omitempty"`
	ShardMembers []int `json:"shard_members,omitempty"`
	// ShardBusyNs is each shard's cumulative busy time in nanoseconds —
	// per-shard utilization for spotting skew across the fan-out.
	ShardBusyNs []int64 `json:"shard_busy_ns,omitempty"`

	// Subscriptions is the number of live match subscriptions (one per
	// SSE consumer); SubscriptionDelivered/SubscriptionDropped are the
	// results-plane delivery and load-shedding ledgers. On per-query
	// snapshots under Queries, the delivered/dropped pair is that
	// query's share of the fleet's results plane.
	Subscriptions         int   `json:"subscriptions,omitempty"`
	SubscriptionDelivered int64 `json:"subscription_delivered,omitempty"`
	SubscriptionDropped   int64 `json:"subscription_dropped,omitempty"`

	// Stages is the fleet-wide per-stage latency breakdown (nil when
	// the engine runs with metrics disabled).
	Stages *StageStats `json:"stages,omitempty"`
	// Detection is this engine's detection-latency summary — match emit
	// wallclock minus triggering-edge arrival wallclock. Per-query
	// snapshots under Queries carry their own (the per-query
	// attribution).
	Detection *LatencySnapshot `json:"detection,omitempty"`
	// WatermarkLagNs is now minus the stream clock mapped through the
	// configured event-time unit, in nanoseconds (0 when no unit is
	// set).
	WatermarkLagNs int64 `json:"watermark_lag_ns,omitempty"`

	Queries map[string]EngineStats `json:"queries,omitempty"`
	// Groups aggregates queries sharing a group (the serving layer
	// groups by owning tenant): summed counters plus a group-wide
	// Detection histogram that survives query retirement.
	Groups map[string]EngineStats `json:"groups,omitempty"`

	Adaptive bool `json:"adaptive,omitempty"`
	Durable  bool `json:"durable,omitempty"`
	Fleet    bool `json:"fleet,omitempty"`
}

// TenantKey declares one API key of a tenant: the bearer credential
// and its role ("write" — the default — or "read").
type TenantKey struct {
	Key  string `json:"key"`
	Role string `json:"role,omitempty"`
}

// TenantLimits bounds a tenant's admission. Zero fields are unlimited,
// so a spec states only what it wants to constrain. Rates refill token
// buckets charged before work is read or queued; bursts default to one
// second's worth of the rate.
type TenantLimits struct {
	EdgesPerSec      float64 `json:"edges_per_sec,omitempty"`
	EdgeBurst        int     `json:"edge_burst,omitempty"`
	BatchesPerSec    float64 `json:"batches_per_sec,omitempty"`
	BatchBurst       int     `json:"batch_burst,omitempty"`
	MaxQueries       int     `json:"max_queries,omitempty"`
	MaxSubscriptions int     `json:"max_subscriptions,omitempty"`
	// Weight is the tenant's fair share of the server's serialized
	// work loop (default 1).
	Weight float64 `json:"weight,omitempty"`
}

// TenantSpec declares one tenant: a tenants-file entry and the POST
// /tenants request body (admin API).
type TenantSpec struct {
	Name   string       `json:"name"`
	Keys   []TenantKey  `json:"keys,omitempty"`
	Limits TenantLimits `json:"limits,omitempty"`
}

// TenantUsage is one tenant's live admission and ownership counters.
type TenantUsage struct {
	AdmittedEdges   int64 `json:"admitted_edges"`
	RejectedEdges   int64 `json:"rejected_edges"`
	AdmittedBatches int64 `json:"admitted_batches"`
	RejectedBatches int64 `json:"rejected_batches"`
	IngestBytes     int64 `json:"ingest_bytes"`
	Queries         int   `json:"queries"`
	Subscriptions   int   `json:"subscriptions"`
}

// TenantInfo is one tenant's admin-facing snapshot: declared limits
// plus live usage. API keys are never echoed back.
type TenantInfo struct {
	Name   string       `json:"name"`
	Limits TenantLimits `json:"limits"`
	Usage  TenantUsage  `json:"usage"`
}

// TenantList is the response of GET /tenants (admin API).
type TenantList struct {
	Tenants []TenantInfo `json:"tenants"`
}
