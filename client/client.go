package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client talks to one tsserved server.
type Client struct {
	base string
	hc   *http.Client
	key  string
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). hc may be nil to use http.DefaultClient;
// pass a dedicated client to tune timeouts or transports. Note that a
// client-level timeout also cuts off Subscribe streams — use per-call
// contexts for deadlines instead when subscribing.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// WithAPIKey returns a copy of the client that authenticates every
// request with the given API key (Authorization: Bearer). On a
// multi-tenant server the key selects the tenant namespace all calls
// operate in; the admin key addresses the raw roster instead. An
// empty key returns the receiver unchanged.
func (c *Client) WithAPIKey(key string) *Client {
	if key == "" {
		return c
	}
	cc := *c
	cc.key = key
	return &cc
}

// authorize attaches the client's API key, if any.
func (c *Client) authorize(req *http.Request) {
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
}

// APIError is a non-2xx server response: the HTTP status code plus
// the server's message body. The reconnect logic treats it as
// terminal (the server answered; retrying won't change its mind),
// unlike transport errors, which are retried.
type APIError struct {
	StatusCode int
	Status     string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: %s", e.Status, e.Message)
}

// ErrRateLimited is the typed form of a 429 admission rejection: the
// server refused the request before doing any work on it. RetryAfter
// carries the server's Retry-After hint (zero when the rejection was
// a hard quota, not a rate — retrying later won't help until capacity
// is released). It unwraps to *APIError, so errors.As against either
// type matches; check for *ErrRateLimited first when both matter.
type ErrRateLimited struct {
	APIError
	RetryAfter time.Duration
}

func (e *ErrRateLimited) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: rate limited (retry after %v): %s", e.RetryAfter, e.Message)
	}
	return fmt.Sprintf("client: rate limited: %s", e.Message)
}

// Unwrap exposes the embedded APIError as a chain link, so existing
// errors.As(err, &apiErr) call sites keep matching 429s.
func (e *ErrRateLimited) Unwrap() error { return &e.APIError }

// apiError turns a non-2xx response into an *APIError carrying the
// status and the server's message body — or an *ErrRateLimited for
// 429s, with the Retry-After header parsed into a duration.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	ae := APIError{StatusCode: resp.StatusCode, Status: resp.Status, Message: msg}
	if resp.StatusCode == http.StatusTooManyRequests {
		rl := &ErrRateLimited{APIError: ae}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			rl.RetryAfter = time.Duration(secs) * time.Second
		}
		return rl
	}
	return &ae
}

func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// AddQuery registers a continuous query. The server starts matching it
// against all subsequently ingested edges.
func (c *Client) AddQuery(ctx context.Context, q QueryRequest) error {
	return c.doJSON(ctx, http.MethodPost, "/queries", q, nil)
}

// RemoveQuery retires the named query; its subscribers' streams end.
func (c *Client) RemoveQuery(ctx context.Context, name string) error {
	return c.doJSON(ctx, http.MethodDelete, "/queries/"+url.PathEscape(name), nil, nil)
}

// Queries lists the live queries.
func (c *Client) Queries(ctx context.Context) (QueryList, error) {
	var out QueryList
	err := c.doJSON(ctx, http.MethodGet, "/queries", nil, &out)
	return out, err
}

// Ingest feeds a batch of edges, encoded as NDJSON. The batch lands
// atomically in arrival order; individually bad edges are rejected and
// reported in the result without failing the rest of the batch.
func (c *Client) Ingest(ctx context.Context, edges []Edge) (IngestResult, error) {
	var out IngestResult
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range edges {
		if err := enc.Encode(e); err != nil {
			return out, fmt.Errorf("client: encode edge: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/ingest", &buf)
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return out, apiError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Stats samples the server's live metrics.
func (c *Client) Stats(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.doJSON(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// EngineStats samples the unified engine snapshot — the typed form of
// the "fleet.stats" metric, with per-query snapshots under Queries.
func (c *Client) EngineStats(ctx context.Context) (EngineStats, error) {
	var out map[string]EngineStats
	if err := c.doJSON(ctx, http.MethodGet, "/stats?metric=fleet.stats", nil, &out); err != nil {
		return EngineStats{}, err
	}
	return out["fleet.stats"], nil
}

// Health probes the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	var h Health
	if err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("client: unhealthy: %q", h.Status)
	}
	return nil
}

// Ready probes the server's readiness endpoint. Unlike Health, which
// answers as soon as the process is listening, Ready fails (503) while
// a durable server is still replaying its log at boot — the signal a
// load balancer or orchestrator should gate traffic on.
func (c *Client) Ready(ctx context.Context) error {
	var h Health
	if err := c.doJSON(ctx, http.MethodGet, "/readyz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ready" {
		return fmt.Errorf("client: not ready: %q", h.Status)
	}
	return nil
}

// CreateTenant registers a tenant (admin API: the client must carry
// the server's admin key). The returned snapshot never echoes keys.
func (c *Client) CreateTenant(ctx context.Context, spec TenantSpec) (TenantInfo, error) {
	var out TenantInfo
	err := c.doJSON(ctx, http.MethodPost, "/tenants", spec, &out)
	return out, err
}

// Tenants lists every tenant with live usage (admin API).
func (c *Client) Tenants(ctx context.Context) (TenantList, error) {
	var out TenantList
	err := c.doJSON(ctx, http.MethodGet, "/tenants", nil, &out)
	return out, err
}

// SubscribeOptions configures Client.SubscribeOpts.
type SubscribeOptions struct {
	// Queries filters the stream by query name. Empty subscribes to
	// every query, including queries registered after the stream opens.
	Queries []string
	// LastEventID resumes delivery after a previous stream's final
	// event id (see Subscription.LastEventID): events the server still
	// retains are re-sent, already-seen ones are skipped by sequence
	// number.
	LastEventID string
	// Reconnect re-establishes the stream automatically when the
	// connection drops or the server restarts, resuming from the last
	// event id seen, with capped exponential backoff. The stream then
	// ends only on ctx cancellation, Close, or a definitive server
	// answer (e.g. 404 after the queries were removed).
	Reconnect bool
}

// Subscription is a live SSE match stream. Receive from Events until
// it closes; then Err reports why the stream ended (nil after a
// server-side close, e.g. the query was removed).
type Subscription struct {
	// Events delivers matches in the order the server reported them.
	Events <-chan MatchEvent

	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
	lastID string
	done   chan struct{}
}

// Err returns the terminal error of the stream, if any. Valid after
// Events closes.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LastEventID returns the most recent event id received — a complete
// resume token: pass it as SubscribeOptions.LastEventID on a later
// subscribe to skip everything this stream already delivered.
func (s *Subscription) LastEventID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastID
}

func (s *Subscription) setLastID(id string) {
	s.mu.Lock()
	s.lastID = id
	s.mu.Unlock()
}

func (s *Subscription) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Close terminates the subscription and releases its connection. It is
// safe to call more than once.
func (s *Subscription) Close() {
	s.cancel()
	<-s.done
}

// Subscribe opens an SSE stream of matches for the named query. The
// stream ends when ctx is cancelled, Close is called, the query is
// removed on the server, or the connection drops. See SubscribeOpts
// for multi-query filters, resumption and automatic reconnect.
func (c *Client) Subscribe(ctx context.Context, query string) (*Subscription, error) {
	return c.SubscribeOpts(ctx, SubscribeOptions{Queries: []string{query}})
}

// SubscribeOpts opens an SSE stream of matches for the queries
// selected by opts. The initial connection is made synchronously (an
// unknown query fails here with a 404 *APIError); with Reconnect set,
// later drops are re-established automatically, resuming from the
// last event id seen.
func (c *Client) SubscribeOpts(ctx context.Context, opts SubscribeOptions) (*Subscription, error) {
	ctx, cancel := context.WithCancel(ctx)
	resp, err := c.openStream(ctx, opts.Queries, opts.LastEventID)
	if err != nil {
		cancel()
		return nil, err
	}
	events := make(chan MatchEvent, 64)
	sub := &Subscription{Events: events, cancel: cancel, lastID: opts.LastEventID, done: make(chan struct{})}
	go func() {
		defer close(sub.done)
		defer close(events)
		for {
			err := sub.consume(ctx, resp.Body, events)
			resp.Body.Close()
			if ctx.Err() != nil {
				return // cancelled: a clean end, whatever the stream said
			}
			if !opts.Reconnect {
				if err != nil {
					sub.setErr(err)
				}
				return
			}
			// Reconnect-and-resume: transport errors and clean
			// server-side closes are retried with backoff; a definitive
			// HTTP error (the server answered) is terminal.
			backoff := 50 * time.Millisecond
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(backoff):
				}
				next, rerr := c.openStream(ctx, opts.Queries, sub.LastEventID())
				if rerr == nil {
					resp = next
					break
				}
				if ctx.Err() != nil {
					return
				}
				// A 429 is the server's admission control speaking, not a
				// verdict on the subscription: honor Retry-After and keep
				// trying. (Checked before the *APIError case it unwraps to.)
				var limited *ErrRateLimited
				if errors.As(rerr, &limited) {
					if backoff *= 2; backoff > time.Second {
						backoff = time.Second
					}
					if limited.RetryAfter > backoff {
						backoff = limited.RetryAfter
					}
					continue
				}
				var apiErr *APIError
				if errors.As(rerr, &apiErr) {
					sub.setErr(rerr)
					return
				}
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
			}
		}
	}()
	return sub, nil
}

// openStream performs one GET /subscribe, returning the live response
// or the error that definitively ended the attempt. Names travel as
// repeated verbatim ?query= parameters (not the comma-separated
// ?queries= convenience), so a query name containing a comma is never
// mis-split server-side.
func (c *Client) openStream(ctx context.Context, queries []string, lastID string) (*http.Response, error) {
	u := c.base + "/subscribe"
	if len(queries) > 0 {
		vals := url.Values{"query": queries}
		u += "?" + vals.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		err := apiError(resp)
		resp.Body.Close()
		return nil, err
	}
	return resp, nil
}

// consume parses one SSE connection, forwarding match events and
// tracking the resume cursor. A clean server-side EOF returns nil.
func (s *Subscription) consume(ctx context.Context, body io.Reader, events chan<- MatchEvent) error {
	err := readSSE(body, func(id, event string, data []byte) error {
		if event != "match" {
			return nil // ignore heartbeats and unknown event types
		}
		var m MatchEvent
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("client: bad match event: %w", err)
		}
		select {
		case events <- m:
		case <-ctx.Done():
			return ctx.Err()
		}
		if id != "" {
			// Advance the cursor only after the event is handed over, so
			// a resume never skips an event the consumer hasn't seen.
			s.setLastID(id)
		}
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return nil
	}
	return err
}

// readSSE parses a Server-Sent-Events stream, invoking fn per event
// with the event's id (the last id: line seen, per the SSE spec). A
// clean EOF returns nil.
func readSSE(r io.Reader, fn func(id, event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	id, event := "", ""
	var data []byte
	flush := func() error {
		if len(data) == 0 {
			event = ""
			return nil
		}
		err := fn(id, event, data)
		event, data = "", nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
	if err := sc.Err(); err != nil && err != io.ErrUnexpectedEOF {
		return err
	}
	return flush()
}
