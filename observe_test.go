package timingsubg_test

import (
	"testing"
	"time"

	"timingsubg"
)

// feedTwoHopMatch feeds a→b then b→c at t=1,2 — one complete match.
func feedTwoHopMatch(t *testing.T, en timingsubg.Engine, ls []timingsubg.Label) {
	t.Helper()
	for i, e := range []timingsubg.Edge{
		{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 1},
		{From: 2, To: 3, FromLabel: ls[1], ToLabel: ls[2], Time: 2},
	} {
		if _, err := en.Feed(e); err != nil {
			t.Fatalf("feed %d: %v", i, err)
		}
	}
}

// TestStagesPopulated: with metrics on (the default), a single engine's
// snapshot carries the per-stage pipeline breakdown, and the stage
// counts agree with the work done.
func TestStagesPopulated(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	en, err := timingsubg.Open(timingsubg.Config{Query: q, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	feedTwoHopMatch(t, en, ls)

	st := en.Stats()
	if st.Stages == nil {
		t.Fatal("Stages must be populated when metrics are on")
	}
	if got := st.Stages.Ingest.Count; got != 2 {
		t.Errorf("Ingest count = %d, want 2 (one per fed edge)", got)
	}
	// The join stage is sampled (1 in core.statSampleStride, first call
	// always), so two feeds yield exactly one observation.
	if got := st.Stages.Join.Count; got != 1 {
		t.Errorf("Join count = %d, want 1 sampled observation", got)
	}
	if st.Detection == nil || st.Detection.Count != 1 {
		t.Errorf("Detection = %+v, want count 1 (one match)", st.Detection)
	}
	if st.Stages.Detection.Count != 1 {
		t.Errorf("Stages.Detection count = %d, want 1", st.Stages.Detection.Count)
	}
	if st.Stages.Ingest.Max <= 0 || st.Stages.Ingest.P50 <= 0 {
		t.Errorf("ingest latencies must be positive: %s", st.Stages.Ingest)
	}
	// No WAL, no shards, nothing expired, no event-time unit.
	for name, c := range map[string]uint64{
		"wal_append":   st.Stages.WALAppend.Count,
		"wal_sync":     st.Stages.WALSync.Count,
		"group_commit": st.Stages.GroupCommit.Count,
		"queue_wait":   st.Stages.QueueWait.Count,
		"shard_exec":   st.Stages.ShardExec.Count,
		"expiry":       st.Stages.Expiry.Count,
		"event_lag":    st.Stages.EventTimeLag.Count,
		"watermark_ns": uint64(st.WatermarkLagNs),
	} {
		if c != 0 {
			t.Errorf("%s = %d, want 0 on an in-memory sequential engine", name, c)
		}
	}
}

// TestDisableMetrics: the ablation switch — no Stages, no Detection, no
// watermark, and feeding still works.
func TestDisableMetrics(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	en, err := timingsubg.Open(timingsubg.Config{Query: q, Window: 10, DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	feedTwoHopMatch(t, en, ls)
	st := en.Stats()
	if st.Stages != nil || st.Detection != nil || st.WatermarkLagNs != 0 {
		t.Fatalf("DisableMetrics must zero the latency plane: %+v", st)
	}
	if st.Matches != 1 {
		t.Fatalf("matching must be unaffected: %d matches", st.Matches)
	}
}

// TestEventTimeLag: with EventTimeUnit set, matches observe event-time
// lag and the snapshot carries a watermark lag.
func TestEventTimeLag(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	en, err := timingsubg.Open(timingsubg.Config{
		Query: q, Window: 10, EventTimeUnit: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	feedTwoHopMatch(t, en, ls)
	st := en.Stats()
	if st.Stages.EventTimeLag.Count != 1 {
		t.Errorf("EventTimeLag count = %d, want 1 (one match)", st.Stages.EventTimeLag.Count)
	}
	// Timestamps 1..2 ms since the epoch are decades behind wallclock.
	if st.WatermarkLagNs <= 0 {
		t.Errorf("WatermarkLagNs = %d, want > 0", st.WatermarkLagNs)
	}
}

// TestFleetPerQueryAttribution: each fleet member carries its own
// detection histogram and its query's share of the delivery counters,
// while the fleet aggregate stays whole in Stages.
func TestFleetPerQueryAttribution(t *testing.T) {
	for _, workers := range []int{0, 2} {
		t.Run(map[int]string{0: "sequential", 2: "sharded"}[workers], func(t *testing.T) {
			q, _, ls := buildTwoHop(t)
			q2, _, _ := buildTwoHop(t)
			en, err := timingsubg.Open(timingsubg.Config{
				Queries: []timingsubg.QuerySpec{
					{Name: "hot", Query: q},
					{Name: "cold", Query: q2},
				},
				Window:       10,
				FleetWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer en.Close()
			sub, err := en.Subscribe(timingsubg.SubscribeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Cancel()
			feedTwoHopMatch(t, en, ls)
			for i := 0; i < 2; i++ {
				<-sub.C()
			}

			st := en.Stats()
			if st.Stages == nil {
				t.Fatal("fleet Stages must be populated")
			}
			if got := st.Stages.Detection.Count; got != 2 {
				t.Errorf("fleet-wide detection count = %d, want 2 (both members)", got)
			}
			if got := st.Stages.Ingest.Count; got != 2 {
				t.Errorf("fleet ingest count = %d, want 2 (per fleet feed, not per member)", got)
			}
			for _, name := range []string{"hot", "cold"} {
				ms := st.Queries[name]
				if ms.Detection == nil || ms.Detection.Count != 1 {
					t.Errorf("member %q detection = %+v, want count 1", name, ms.Detection)
				}
				if ms.SubscriptionDelivered != 1 {
					t.Errorf("member %q delivered = %d, want 1", name, ms.SubscriptionDelivered)
				}
			}
			if workers > 0 {
				if st.Stages.ShardExec.Count == 0 || st.Stages.QueueWait.Count == 0 {
					t.Errorf("sharded fleet must observe shard stages: exec=%d wait=%d",
						st.Stages.ShardExec.Count, st.Stages.QueueWait.Count)
				}
			}
		})
	}
}

// TestSlowOpHook: a 1ns threshold makes every operation slow; the hook
// sees feeds, batches and their stage breakdown synchronously.
func TestSlowOpHook(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	var ops []timingsubg.SlowOp
	en, err := timingsubg.Open(timingsubg.Config{
		Query: q, Window: 10,
		SlowOpThreshold: time.Nanosecond,
		OnSlowOp:        func(op timingsubg.SlowOp) { ops = append(ops, op) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	feedTwoHopMatch(t, en, ls)
	if _, err := en.FeedBatch([]timingsubg.Edge{
		{From: 3, To: 4, FromLabel: ls[0], ToLabel: ls[1], Time: 3},
	}); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, op := range ops {
		kinds[op.Op]++
		if op.Total <= 0 {
			t.Errorf("slow op %q reported non-positive total %v", op.Op, op.Total)
		}
	}
	if kinds["feed"] != 2 {
		t.Errorf("feed slow ops = %d, want 2 (got %v)", kinds["feed"], kinds)
	}
	if kinds["feed_batch"] != 1 {
		t.Errorf("feed_batch slow ops = %d, want 1 (got %v)", kinds["feed_batch"], kinds)
	}
	for _, op := range ops {
		if op.Op != "delivery" && op.Edges == 0 {
			t.Errorf("feed op must carry its edge count: %+v", op)
		}
	}
}

// TestDurableWALStages: durable engines time the WAL append (and, with
// a sync cadence, the fsync) as their own stages.
func TestDurableWALStages(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	en, err := timingsubg.Open(timingsubg.Config{
		Query: q, Window: 10,
		Durable: &timingsubg.Durability{Dir: t.TempDir(), SyncEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	feedTwoHopMatch(t, en, ls)
	st := en.Stats()
	if got := st.Stages.WALAppend.Count; got != 2 {
		t.Errorf("WALAppend count = %d, want 2", got)
	}
	if got := st.Stages.WALSync.Count; got == 0 {
		t.Errorf("WALSync count = %d, want > 0 with SyncEvery=1", got)
	}
}

// TestRecoveryReplaySuppressed: matches re-reported by durable recovery
// replay must not pollute the detection or event-lag histograms — they
// are not fresh detections.
func TestRecoveryReplaySuppressed(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	dir := t.TempDir()
	open := func() timingsubg.Engine {
		t.Helper()
		en, err := timingsubg.Open(timingsubg.Config{
			Query: q, Window: 10,
			EventTimeUnit: time.Millisecond,
			Durable:       &timingsubg.Durability{Dir: dir, SyncEvery: 1, CheckpointEvery: 1 << 20},
		})
		if err != nil {
			t.Fatal(err)
		}
		return en
	}
	en := open()
	feedTwoHopMatch(t, en, ls)
	// Simulate a crash: abandon without Close, so no checkpoint covers
	// the fed edges and recovery must replay them from the WAL.

	en = open() // recovery replays both edges and re-reports the match
	defer en.Close()
	st := en.Stats()
	if st.Replayed == 0 {
		t.Fatal("precondition: recovery must have replayed WAL edges")
	}
	if st.Matches != 1 {
		t.Fatalf("replay must restore the match, got %d", st.Matches)
	}
	if got := st.Stages.Detection.Count; got != 0 {
		t.Errorf("replayed match observed as a detection (count %d, want 0)", got)
	}
	if got := st.Stages.EventTimeLag.Count; got != 0 {
		t.Errorf("replayed match observed as event-time lag (count %d, want 0)", got)
	}
}
