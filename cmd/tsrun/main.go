// Command tsrun executes a continuous time-constrained subgraph query
// over a stream file, printing matches (or just counters) and summary
// statistics.
//
// Usage:
//
//	tsrun -stream stream.csv -query query.txt -window 10000
//	tsrun -stream stream.csv -query query.txt -window 10000 -workers 4
//	tsrun -stream stream.csv -query query.txt -count-window 5000
//	tsrun -stream stream.csv -query query.txt -window 10000 -durable ./state
//	tsrun -stream stream.csv -query query.txt -window 10000 -adaptive
//	tsrun -stream stream.csv -query query.txt -window 10000 -metrics 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"timingsubg"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
	"timingsubg/internal/stats"
)

// runner is the common surface of the searcher variants tsrun can drive.
type runner interface {
	Feed(e timingsubg.Edge) (timingsubg.EdgeID, error)
	MatchCount() int64
	Discarded() int64
	PartialMatches() int64
	SpaceBytes() int64
	K() int
}

func main() {
	streamPath := flag.String("stream", "", "stream file (CSV from tsgen, or SNAP with -snap)")
	snap := flag.Bool("snap", false, "stream file is SNAP temporal format: 'src dst unixtime' lines")
	queryPath := flag.String("query", "", "query file (see internal/query/parse.go format)")
	window := flag.Int64("window", 10000, "time-based sliding window |W| in stream time units")
	countWindow := flag.Int("count-window", 0, "count-based window of the latest N edges (overrides -window)")
	workers := flag.Int("workers", 1, "concurrent edge transactions (>1 enables the Section V scheduler)")
	allLocks := flag.Bool("alllocks", false, "use the All-locks baseline scheme instead of fine-grained")
	ind := flag.Bool("independent", false, "use independent partial-match storage (Timing-IND)")
	durable := flag.String("durable", "", "durability directory: WAL + checkpoints with crash recovery")
	adaptive := flag.Bool("adaptive", false, "enable adaptive join-order reoptimization")
	metricsAddr := flag.String("metrics", "", "serve live JSON metrics on this address during the run")
	printMatches := flag.Bool("print", false, "print each match")
	explain := flag.Bool("explain", false, "print the compiled query plan before running")
	state := flag.Bool("state", false, "dump engine state (per-item populations) after the run")
	flag.Parse()

	if *streamPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "both -stream and -query are required")
		os.Exit(2)
	}
	if *durable != "" && *adaptive {
		fmt.Fprintln(os.Stderr, "-durable and -adaptive are mutually exclusive")
		os.Exit(2)
	}

	labels := graph.NewLabels()
	qf, err := os.Open(*queryPath)
	if err != nil {
		fatal(err)
	}
	q, err := query.Parse(qf, labels)
	qf.Close()
	if err != nil {
		fatal(err)
	}

	if *explain {
		query.Explain(os.Stdout, labels, q, query.Decompose(q))
	}

	sf, err := os.Open(*streamPath)
	if err != nil {
		fatal(err)
	}
	var edges []graph.Edge
	if *snap {
		edges, err = datagen.ReadSNAP(sf, labels, nil)
	} else {
		edges, err = datagen.ReadEdges(sf, labels)
	}
	sf.Close()
	if err != nil {
		fatal(err)
	}

	opts := timingsubg.Options{
		Window:  timingsubg.Timestamp(*window),
		Workers: *workers,
	}
	if *countWindow > 0 {
		opts.Window = 0
		opts.CountWindow = *countWindow
	}
	if *allLocks {
		opts.LockScheme = timingsubg.AllLocks
	}
	if *ind {
		opts.Storage = timingsubg.Independent
	}
	if *printMatches {
		opts.OnMatch = func(m *timingsubg.Match) { fmt.Printf("match %s\n", m) }
	}

	reg := timingsubg.NewMetricsRegistry()
	var r runner
	var plain *timingsubg.Searcher
	var closeRun func()
	switch {
	case *durable != "":
		ps, err := timingsubg.OpenPersistent(q, timingsubg.PersistentOptions{
			Options: opts,
			Dir:     *durable,
		})
		if err != nil {
			fatal(err)
		}
		if ps.Replayed() > 0 || ps.MatchCount() > 0 {
			fmt.Printf("recovered: %d durable matches, %d WAL edges replayed, window holds %d edges\n",
				ps.MatchCount(), ps.Replayed(), ps.InWindow())
		}
		if err := ps.RegisterMetrics(reg, "tsrun"); err != nil {
			fatal(err)
		}
		r = ps
		closeRun = func() {
			if err := ps.Close(); err != nil {
				fatal(err)
			}
		}
	case *adaptive:
		a, err := timingsubg.NewAdaptiveSearcher(q, timingsubg.AdaptiveOptions{Options: opts})
		if err != nil {
			fatal(err)
		}
		if err := a.RegisterMetrics(reg, "tsrun"); err != nil {
			fatal(err)
		}
		r = a
		closeRun = func() {
			a.Close()
			fmt.Printf("join-order reoptimizations: %d\n", a.Reoptimizations())
		}
	default:
		s, err := timingsubg.NewSearcher(q, opts)
		if err != nil {
			fatal(err)
		}
		if err := s.RegisterMetrics(reg, "tsrun"); err != nil {
			fatal(err)
		}
		r, plain = s, s
		closeRun = s.Close
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		go http.Serve(ln, timingsubg.MetricsHandler(reg))
		fmt.Printf("metrics: http://%s\n", ln.Addr())
	}

	var hist stats.Histogram
	start := time.Now()
	for _, e := range edges {
		t0 := time.Now()
		if _, err := r.Feed(e); err != nil {
			fatal(err)
		}
		hist.Observe(time.Since(t0))
	}
	elapsed := time.Since(start)
	closeRun()

	fmt.Printf("query: %d edges, decomposition k=%d\n", q.NumEdges(), r.K())
	fmt.Printf("edges: %d  elapsed: %v  throughput: %.0f edges/sec\n",
		len(edges), elapsed.Round(time.Millisecond), float64(len(edges))/elapsed.Seconds())
	fmt.Printf("matches: %d  discardable filtered: %d  partial matches held: %d  space: %d KB\n",
		r.MatchCount(), r.Discarded(), r.PartialMatches(), r.SpaceBytes()/1024)
	fmt.Printf("per-edge latency: %s\n", hist.Snapshot())
	if *state && plain != nil {
		plain.WriteState(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
