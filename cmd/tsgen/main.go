// Command tsgen generates synthetic streaming-graph datasets (the
// paper's three workloads, Section VII-A) and benchmark queries
// (Section VII-B) as files for use with tsrun.
//
// Usage:
//
//	tsgen -dataset networkflow -n 100000 -out stream.csv
//	tsgen -dataset wikitalk -n 50000 -out stream.csv -query query.txt -qsize 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

func main() {
	dataset := flag.String("dataset", "networkflow", "networkflow | wikitalk | socialstream")
	n := flag.Int("n", 100000, "number of stream edges")
	vertices := flag.Int("vertices", 2000, "entity population")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "stream.csv", "output stream file")
	queryOut := flag.String("query", "", "also generate a query file")
	qsize := flag.Int("qsize", 6, "query size (edges)")
	qorder := flag.String("qorder", "random", "timing order: random | full | empty")
	flag.Parse()

	var ds datagen.Dataset
	switch strings.ToLower(*dataset) {
	case "networkflow", "network":
		ds = datagen.NetworkFlow
	case "wikitalk", "wiki":
		ds = datagen.WikiTalk
	case "socialstream", "social":
		ds = datagen.SocialStream
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: *vertices, Seed: *seed})
	edges := gen.Take(*n)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := datagen.WriteEdges(f, labels, edges); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d edges (%s) to %s\n", len(edges), ds, *out)

	if *queryOut == "" {
		return
	}
	kind := querygen.RandomOrder
	switch strings.ToLower(*qorder) {
	case "full":
		kind = querygen.FullOrder
	case "empty":
		kind = querygen.EmptyOrder
	}
	prefix := edges
	if len(prefix) > 5000 {
		prefix = prefix[:5000]
	}
	q, _, err := querygen.Generate(prefix, querygen.Config{Size: *qsize, Order: kind, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	qf, err := os.Create(*queryOut)
	if err != nil {
		fatal(err)
	}
	if err := query.Write(qf, labels, q); err != nil {
		fatal(err)
	}
	if err := qf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote query (%d edges, k=%d) to %s\n", q.NumEdges(), query.Decompose(q).K(), *queryOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
