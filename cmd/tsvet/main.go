// Command tsvet is the repo's own invariant checker: a multichecker
// in the spirit of `go vet -vettool`, built on internal/analysis,
// running the four custom analyzers that encode documented engine
// invariants generic linters cannot see:
//
//	lockhold   no blocking call (fsync, channel ops, net I/O,
//	           time.Sleep) while a sync.Mutex/RWMutex is held
//	poolpair   every sync.Pool Get is Put (or ownership-transferred)
//	           on every path out of the function
//	hotclock   no raw time.Now()/time.Since() in the hot-path
//	           packages internal/core, internal/explist,
//	           internal/mstree
//	statswire  the unified Stats snapshot, the client wire structs
//	           and the Prometheus stage family list agree
//
// Usage:
//
//	go run ./cmd/tsvet ./...
//
// Exit status is 1 when any diagnostic is reported. Intentional
// violations are waived in source with
//
//	//tsvet:allow <analyzer> — justification
//
// on the offending line or the line above it; see DESIGN.md §14.
package main

import (
	"flag"
	"fmt"
	"os"

	"timingsubg/internal/analysis"
	"timingsubg/internal/analysis/hotclock"
	"timingsubg/internal/analysis/lockhold"
	"timingsubg/internal/analysis/poolpair"
	"timingsubg/internal/analysis/statswire"
)

// analyzers is the tsvet suite, in diagnostic-prefix order.
var analyzers = []*analysis.Analyzer{
	lockhold.Analyzer,
	poolpair.Analyzer,
	hotclock.Analyzer,
	statswire.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tsvet [packages]\n\nRepo-specific invariant checkers:\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tsvet: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
