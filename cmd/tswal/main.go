// Command tswal inspects a PersistentSearcher durability directory:
// its write-ahead-log segments and checkpoints.
//
// Usage:
//
//	tswal info <dir>                      summarize WAL + checkpoints
//	tswal dump <dir> [-from N] [-limit N] print WAL records
//	tswal checkpoint <dir>                show the newest checkpoint
//
// tswal is read-only; it never mutates the directory and is safe to run
// against a live deployment (it may see a torn tail, which it reports
// the same way recovery would handle it).
package main

import (
	"flag"
	"fmt"
	"os"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/graph"
	"timingsubg/internal/wal"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, dir := os.Args[1], os.Args[2]
	switch cmd {
	case "info":
		info(dir)
	case "dump":
		fs := flag.NewFlagSet("dump", flag.ExitOnError)
		from := fs.Int64("from", 0, "first sequence number to print")
		limit := fs.Int64("limit", 50, "maximum records to print (0 = all)")
		fs.Parse(os.Args[3:])
		dump(dir, *from, *limit)
	case "checkpoint":
		showCheckpoint(dir)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tswal {info|dump|checkpoint} <dir> [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tswal:", err)
	os.Exit(1)
}

func info(dir string) {
	var first, count int64 = -1, 0
	var minT, maxT graph.Timestamp
	end, err := wal.Replay(dir, 0, func(seq int64, e graph.Edge) error {
		if first < 0 {
			first = seq
			minT = e.Time
		}
		maxT = e.Time
		count++
		return nil
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("WAL: %d records", count)
	if count > 0 {
		fmt.Printf(" (seq %d..%d, time %d..%d)", first, end-1, minT, maxT)
	}
	fmt.Println()

	ck, ok, err := checkpoint.Load(dir)
	if err != nil {
		fail(err)
	}
	if !ok {
		fmt.Println("checkpoint: none (cold start)")
		return
	}
	fmt.Printf("checkpoint: lsn=%d window=%d matches=%d discarded=%d in-window-edges=%d\n",
		ck.LSN(), ck.Window, ck.Matches, ck.Discarded, len(ck.Edges))
	replay := end - ck.NextSeq
	if replay < 0 {
		replay = 0
	}
	fmt.Printf("recovery would rebuild %d checkpointed edges and replay %d WAL records\n",
		len(ck.Edges), replay)
	fmt.Printf("truncation gate: segments wholly below LSN %d are reclaimable\n", ck.LSN())
}

func dump(dir string, from, limit int64) {
	var printed int64
	_, err := wal.Replay(dir, from, func(seq int64, e graph.Edge) error {
		if limit > 0 && printed >= limit {
			return errStop
		}
		fmt.Printf("%8d  %d→%d  labels(%d,%d,%d)  t=%d\n",
			seq, e.From, e.To, e.FromLabel, e.ToLabel, e.EdgeLabel, e.Time)
		printed++
		return nil
	})
	if err != nil && err != errStop {
		fail(err)
	}
	if limit > 0 && printed == limit {
		fmt.Printf("... (truncated at -limit %d)\n", limit)
	}
}

var errStop = fmt.Errorf("stop")

func showCheckpoint(dir string) {
	ck, ok, err := checkpoint.Load(dir)
	if err != nil {
		fail(err)
	}
	if !ok {
		fmt.Println("no readable checkpoint")
		os.Exit(1)
	}
	fmt.Printf("next-seq:   %d\n", ck.NextSeq)
	fmt.Printf("window:     %d\n", ck.Window)
	fmt.Printf("matches:    %d\n", ck.Matches)
	fmt.Printf("discarded:  %d\n", ck.Discarded)
	fmt.Printf("edges:      %d in window\n", len(ck.Edges))
	for i, e := range ck.Edges {
		if i >= 20 {
			fmt.Printf("  ... (%d more)\n", len(ck.Edges)-i)
			break
		}
		fmt.Printf("  %8d  %d→%d  labels(%d,%d,%d)  t=%d\n",
			e.ID, e.From, e.To, e.FromLabel, e.ToLabel, e.EdgeLabel, e.Time)
	}
}
