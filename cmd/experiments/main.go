// Command experiments regenerates the paper's evaluation figures
// (Section VII) as printed tables. Each figure's workload parameters are
// scaled for laptop runtimes (see EXPERIMENTS.md); relative shapes — who
// wins, by what factor, where trends bend — are the reproduction target.
//
// Usage:
//
//	experiments -fig 15            # one figure
//	experiments -fig all           # everything (minutes)
//	experiments -fig 15 -quick     # smoke-sized workload
//	experiments -fig cost          # Theorem 7 cost model table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"timingsubg/internal/bench"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/querygen"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 15,16,17,18,19,20,21,22,23,24,25,cost,table1 or all")
	quick := flag.Bool("quick", false, "use the smoke-test workload scale")
	seed := flag.Int64("seed", 42, "master random seed")
	csvDir := flag.String("csv", "", "also write per-panel CSV files into this directory")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := false

	emit := func(f bench.Figure) {
		bench.Render(os.Stdout, f)
		if *csvDir != "" {
			if err := bench.WriteCSV(*csvDir, f); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			}
		}
		ran = true
	}

	if all || want["15"] || want["17"] {
		tf, sf := bench.Fig15and17(cfg)
		emit(tf)
		emit(sf)
	}
	if all || want["16"] || want["18"] {
		tf, sf := bench.Fig16and18(cfg)
		emit(tf)
		emit(sf)
	}
	if all || want["19"] {
		emit(bench.Fig19(cfg))
	}
	if all || want["20"] {
		emit(bench.Fig20(cfg))
	}
	if all || want["21"] {
		tf, sf := bench.Fig21(cfg)
		emit(tf)
		emit(sf)
	}
	if all || want["23"] || want["24"] {
		tf, sf := bench.Fig23and24(cfg)
		emit(tf)
		emit(sf)
	}
	if all || want["22"] {
		bench.RenderCaseStudy(os.Stdout, bench.CaseStudy(cfg.Seed, 800))
		ran = true
	}
	if all || want["25"] {
		emit(bench.Fig25(cfg))
	}
	if all || want["table1"] {
		bench.RenderTable1(os.Stdout)
		ran = true
	}
	if all || want["cost"] {
		costTable(cfg)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// costTable prints Theorem 7's expected join operations per incoming
// edge for a representative query across decomposition sizes.
func costTable(cfg bench.Config) {
	labels := graph.NewLabels()
	gen := datagen.New(datagen.WikiTalk, labels, datagen.Config{Vertices: cfg.Vertices, Seed: cfg.Seed})
	warm := gen.Take(2000)
	q, _, err := querygen.Generate(warm, querygen.Config{Size: cfg.KQuerySize, Seed: cfg.Seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cost: %v\n", err)
		return
	}
	s := bench.CostModelTable(q, cfg.KValues)
	fmt.Printf("== Theorem 7: expected join operations per incoming edge (|E(Q)|=%d) ==\n", q.NumEdges())
	fmt.Printf("%-4s %s\n", "k", "N")
	for i := range s.X {
		fmt.Printf("%-4.0f %.3f\n", s.X[i], s.Y[i])
	}
	fmt.Println("(increases with k: Algorithm 6 prefers the smallest decomposition)")
}
