// Command tsserved serves a dynamic fleet of continuous time-constrained
// subgraph queries over HTTP — the timingsubg library as a standalone
// service. Producers POST timestamped edges, operators register and
// retire queries at runtime, and consumers stream matches over SSE.
//
// Usage:
//
//	tsserved -listen :8080
//	tsserved -listen :8080 -routed
//	tsserved -listen :8080 -wal ./state -sync-every 64
//	tsserved -listen :8080 -adaptive -wal ./state   # adaptive + durable compose
//	tsserved -listen :8080 -fleet-workers 4         # shard evaluation across 4 workers
//
// Endpoints (wire contract in timingsubg/client):
//
//	POST   /queries          register a query  {"name","text","window"}
//	GET    /queries          list live queries
//	DELETE /queries/{name}   retire a query
//	POST   /ingest           NDJSON edge batch → per-line accounting
//	GET    /subscribe        SSE match stream (?queries=a,b filters;
//	                         no filter streams every query)
//	GET    /stats            live metrics as JSON (optionally ?metric=name)
//	GET    /metrics          Prometheus text exposition: per-stage latency
//	                         histograms, per-query detection latency and
//	                         counters (served off the work queue, so a
//	                         scrape never waits behind ingest)
//	GET    /healthz          liveness (200 as soon as the process listens)
//	GET    /readyz           readiness (503 while durable recovery replays)
//	POST   /tenants          register a tenant (admin key)
//	GET    /tenants          list tenants with live usage (admin key)
//
// Multi-tenancy: -tenants-file loads a static tenant registry (JSON:
// {"tenants":[{"name","keys":[{"key","role"}],"limits":{...}}]}),
// -admin-key arms the /tenants admin API, and either flag switches the
// server into tenant mode — every request then resolves its
// Authorization: Bearer key to a tenant whose namespace scopes query
// names, whose token buckets gate ingest *before* the work queue
// (429 + Retry-After), and whose weight sets its fair share of the
// serialized work loop. -default-tenant names the tenant that
// unauthenticated requests act as, preserving single-tenant clients
// unchanged. Without any of these flags tenancy is off and the wire
// contract is exactly the pre-tenancy one.
//
// Observability: -log-level enables structured request/ingest logs,
// -slow-op-threshold warns on slow feeds and deliveries with a
// per-stage breakdown, -event-time-unit maps edge timestamps to
// wallclock (enabling event-time lag and watermark lag), and -pprof
// mounts the net/http/pprof profiling plane under /debug/pprof/.
//
// Each SSE event carries the engine's per-query delivery sequence
// number and an id line that is a complete resume token: a client that
// reconnects with Last-Event-ID resumes where it left off — events
// still inside the per-query replay ring (-replay-buffer) are re-sent,
// already-seen ones are skipped. A subscriber that falls behind its
// buffer loses its oldest events rather than stalling ingest.
//
// With -wal, every ingested edge is journaled through the write-ahead
// log and each query's window is checkpointed, so a killed and
// restarted tsserved recovers its query fleet and window state, then
// continues matching. Recovery replay re-assigns the same delivery
// sequence numbers, so subscribers resuming across the restart
// deduplicate by sequence number. Without -wal the state is in-memory
// only.
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains
// in-flight operations, checkpoints (durable mode) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timingsubg"
	"timingsubg/internal/server"
	"timingsubg/internal/tenant"
)

// parseLogLevel maps the -log-level flag onto a slog handler; "" means
// no request/ingest logging at all.
func parseLogLevel(s string) (*slog.Logger, error) {
	if s == "" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", s)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	routed := flag.Bool("routed", false, "label-based routing: dispatch each edge only to interested queries (in-memory mode)")
	fleetWorkers := flag.Int("fleet-workers", 0, "shard query evaluation across this many workers (0 or 1 = sequential; composable with -routed, -adaptive, -wal)")
	adaptive := flag.Bool("adaptive", false, "adaptive join orders: reoptimize each query's TC decomposition from observed stream statistics (composable with -wal)")
	reoptEvery := flag.Int("reoptimize-every", 0, "adaptive mode: check join orders after every n ingested edges (0 = 1024)")
	minGain := flag.Float64("min-gain", 0, "adaptive mode: estimated cost ratio required before a rebuild (0 = 2.0)")
	walDir := flag.String("wal", "", "durability directory: WAL + checkpoints + query registry; empty = in-memory only")
	ckEvery := flag.Int("checkpoint-every", 4096, "durable mode: checkpoint after every n ingested edges")
	syncEvery := flag.Int("sync-every", 0, "durable mode: fsync the WAL after every n appends (0 disables); concurrent feeders group-commit into shared fsyncs")
	syncInterval := flag.Duration("wal-sync-interval", 0, "durable mode: background WAL group commit at this period — appends become durable within one interval without blocking feeders (0 disables)")
	segBytes := flag.Int64("segment-bytes", 0, "durable mode: WAL segment rotation size (0 = 4 MiB)")
	subBuffer := flag.Int("subscriber-buffer", 256, "per-subscriber SSE event buffer before load shedding")
	replayBuffer := flag.Int("replay-buffer", 0, "per-query resume ring: events retained for Last-Event-ID resumption (0 = subscriber-buffer)")
	queueDepth := flag.Int("queue-depth", 128, "bounded work queue: max outstanding serialized operations")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU, heap, goroutine profiles)")
	logLevel := flag.String("log-level", "", "structured request/ingest logging: debug, info, warn or error (empty = off)")
	slowOp := flag.Duration("slow-op-threshold", 0, "warn (with a per-stage breakdown) on any feed, batch or delivery slower than this (0 = off)")
	eventUnit := flag.Duration("event-time-unit", 0, "edge timestamps are this many wallclock units since the Unix epoch (enables event-time lag and watermark lag; 0 = off)")
	tenantsFile := flag.String("tenants-file", "", "multi-tenant mode: JSON tenant registry (names, API keys, limits)")
	adminKey := flag.String("admin-key", "", "multi-tenant mode: bearer key for the /tenants admin API and raw-roster access")
	defaultTenant := flag.String("default-tenant", "", "multi-tenant mode: tenant that unauthenticated requests act as (compatibility; created if not in -tenants-file)")
	flag.Parse()
	if *fleetWorkers < 0 {
		log.Fatalf("tsserved: -fleet-workers must be non-negative, got %d", *fleetWorkers)
	}
	logger, err := parseLogLevel(*logLevel)
	if err != nil {
		log.Fatalf("tsserved: %v", err)
	}

	cfg := server.Config{
		Routed:           *routed,
		FleetWorkers:     *fleetWorkers,
		SubscriberBuffer: *subBuffer,
		ReplayBuffer:     *replayBuffer,
		QueueDepth:       *queueDepth,
		Logger:           logger,
		SlowOpThreshold:  *slowOp,
		EventTimeUnit:    *eventUnit,
	}
	if *tenantsFile != "" || *adminKey != "" || *defaultTenant != "" {
		reg := tenant.NewRegistry()
		if *tenantsFile != "" {
			if err := reg.LoadFile(*tenantsFile); err != nil {
				log.Fatalf("tsserved: %v", err)
			}
		}
		if *defaultTenant != "" {
			if _, ok := reg.Get(*defaultTenant); !ok {
				if _, err := reg.Create(tenant.Spec{Name: *defaultTenant}); err != nil {
					log.Fatalf("tsserved: -default-tenant: %v", err)
				}
			}
			if err := reg.SetAnonymous(*defaultTenant); err != nil {
				log.Fatalf("tsserved: -default-tenant: %v", err)
			}
		}
		cfg.Tenants = reg
		cfg.AdminKey = *adminKey
		log.Printf("tsserved: multi-tenant mode: %d tenants", len(reg.Names()))
	}
	if *adaptive {
		cfg.Adaptive = &timingsubg.Adaptivity{
			ReoptimizeEvery: *reoptEvery,
			MinGain:         *minGain,
		}
	}
	// The listener opens before the serving core is built: during a
	// durable recovery replay the gate answers /healthz 200 (the process
	// is alive) and everything else 503 + Retry-After (not ready yet), so
	// orchestrator probes can already distinguish "booting" from "dead".
	gate := server.NewGate()
	httpSrv := &http.Server{Addr: *listen, Handler: gate}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("tsserved: listening on %s", *listen)
		errc <- httpSrv.ListenAndServe()
	}()

	var srv *server.Server
	if *walDir != "" {
		srv, err = server.NewDurable(cfg, timingsubg.PersistentMultiOptions{
			Dir:             *walDir,
			CheckpointEvery: *ckEvery,
			SyncEvery:       *syncEvery,
			SyncInterval:    *syncInterval,
			SegmentBytes:    *segBytes,
		})
		if err != nil {
			log.Fatalf("tsserved: open durable state: %v", err)
		}
		log.Printf("tsserved: durable state in %s", *walDir)
	} else {
		srv = server.New(cfg)
		log.Printf("tsserved: in-memory state (no -wal)")
	}

	handler := srv.Handler()
	if *pprofOn {
		// The profiling plane mounts beside the API, explicitly — the
		// DefaultServeMux side effect of importing net/http/pprof is not
		// relied on, so profiles are only reachable when asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("tsserved: pprof on /debug/pprof/")
	}
	gate.Set(handler)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tsserved: serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("tsserved: shutting down")
		// Close the serving core first: it drains admitted operations,
		// checkpoints (durable mode) and ends SSE subscriptions, so the
		// HTTP drain below isn't held hostage by long-lived streams.
		if err := srv.Close(); err != nil {
			log.Printf("tsserved: close: %v", err)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("tsserved: drain: %v", err)
		}
	}
	// The shutdown summary shares the canonical Snapshot.String() one-line
	// form with tsrun's per-edge latency report.
	if st := srv.EngineStats(); st.Stages != nil {
		log.Printf("tsserved: ingest latency: %s", st.Stages.Ingest)
		log.Printf("tsserved: detection latency: %s", st.Stages.Detection)
	}
	if err := srv.Close(); err != nil {
		log.Printf("tsserved: close: %v", err)
		os.Exit(1)
	}
	fmt.Println("tsserved: bye")
}
