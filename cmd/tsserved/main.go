// Command tsserved serves a dynamic fleet of continuous time-constrained
// subgraph queries over HTTP — the timingsubg library as a standalone
// service. Producers POST timestamped edges, operators register and
// retire queries at runtime, and consumers stream matches over SSE.
//
// Usage:
//
//	tsserved -listen :8080
//	tsserved -listen :8080 -routed
//	tsserved -listen :8080 -wal ./state -sync-every 64
//	tsserved -listen :8080 -adaptive -wal ./state   # adaptive + durable compose
//	tsserved -listen :8080 -fleet-workers 4         # shard evaluation across 4 workers
//
// Endpoints (wire contract in timingsubg/client):
//
//	POST   /queries          register a query  {"name","text","window"}
//	GET    /queries          list live queries
//	DELETE /queries/{name}   retire a query
//	POST   /ingest           NDJSON edge batch → per-line accounting
//	GET    /subscribe        SSE match stream (?queries=a,b filters;
//	                         no filter streams every query)
//	GET    /stats            live metrics (optionally ?metric=name)
//	GET    /healthz          liveness
//
// Each SSE event carries the engine's per-query delivery sequence
// number and an id line that is a complete resume token: a client that
// reconnects with Last-Event-ID resumes where it left off — events
// still inside the per-query replay ring (-replay-buffer) are re-sent,
// already-seen ones are skipped. A subscriber that falls behind its
// buffer loses its oldest events rather than stalling ingest.
//
// With -wal, every ingested edge is journaled through the write-ahead
// log and each query's window is checkpointed, so a killed and
// restarted tsserved recovers its query fleet and window state, then
// continues matching. Recovery replay re-assigns the same delivery
// sequence numbers, so subscribers resuming across the restart
// deduplicate by sequence number. Without -wal the state is in-memory
// only.
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains
// in-flight operations, checkpoints (durable mode) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timingsubg"
	"timingsubg/internal/server"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	routed := flag.Bool("routed", false, "label-based routing: dispatch each edge only to interested queries (in-memory mode)")
	fleetWorkers := flag.Int("fleet-workers", 0, "shard query evaluation across this many workers (0 or 1 = sequential; composable with -routed, -adaptive, -wal)")
	adaptive := flag.Bool("adaptive", false, "adaptive join orders: reoptimize each query's TC decomposition from observed stream statistics (composable with -wal)")
	reoptEvery := flag.Int("reoptimize-every", 0, "adaptive mode: check join orders after every n ingested edges (0 = 1024)")
	minGain := flag.Float64("min-gain", 0, "adaptive mode: estimated cost ratio required before a rebuild (0 = 2.0)")
	walDir := flag.String("wal", "", "durability directory: WAL + checkpoints + query registry; empty = in-memory only")
	ckEvery := flag.Int("checkpoint-every", 4096, "durable mode: checkpoint after every n ingested edges")
	syncEvery := flag.Int("sync-every", 0, "durable mode: fsync the WAL after every n appends (0 disables)")
	segBytes := flag.Int64("segment-bytes", 0, "durable mode: WAL segment rotation size (0 = 4 MiB)")
	subBuffer := flag.Int("subscriber-buffer", 256, "per-subscriber SSE event buffer before load shedding")
	replayBuffer := flag.Int("replay-buffer", 0, "per-query resume ring: events retained for Last-Event-ID resumption (0 = subscriber-buffer)")
	queueDepth := flag.Int("queue-depth", 128, "bounded work queue: max outstanding serialized operations")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	flag.Parse()
	if *fleetWorkers < 0 {
		log.Fatalf("tsserved: -fleet-workers must be non-negative, got %d", *fleetWorkers)
	}

	cfg := server.Config{
		Routed:           *routed,
		FleetWorkers:     *fleetWorkers,
		SubscriberBuffer: *subBuffer,
		ReplayBuffer:     *replayBuffer,
		QueueDepth:       *queueDepth,
	}
	if *adaptive {
		cfg.Adaptive = &timingsubg.Adaptivity{
			ReoptimizeEvery: *reoptEvery,
			MinGain:         *minGain,
		}
	}
	var srv *server.Server
	var err error
	if *walDir != "" {
		srv, err = server.NewDurable(cfg, timingsubg.PersistentMultiOptions{
			Dir:             *walDir,
			CheckpointEvery: *ckEvery,
			SyncEvery:       *syncEvery,
			SegmentBytes:    *segBytes,
		})
		if err != nil {
			log.Fatalf("tsserved: open durable state: %v", err)
		}
		log.Printf("tsserved: durable state in %s", *walDir)
	} else {
		srv = server.New(cfg)
		log.Printf("tsserved: in-memory state (no -wal)")
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("tsserved: listening on %s", *listen)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tsserved: serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("tsserved: shutting down")
		// Close the serving core first: it drains admitted operations,
		// checkpoints (durable mode) and ends SSE subscriptions, so the
		// HTTP drain below isn't held hostage by long-lived streams.
		if err := srv.Close(); err != nil {
			log.Printf("tsserved: close: %v", err)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("tsserved: drain: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Printf("tsserved: close: %v", err)
		os.Exit(1)
	}
	fmt.Println("tsserved: bye")
}
