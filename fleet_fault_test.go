package timingsubg

import (
	"errors"
	"os"
	"testing"

	"timingsubg/internal/wal"
)

// Durable-fleet fault injection: the WAL directory is wrapped in a
// torn-write filesystem shim, an AppendBatch is killed mid-batch, and
// the restarted fleet must replay to the last complete record with
// engine state matching the WAL exactly — the durability contract under
// the exact crash shape the sharded WAL-once-per-batch fast path has to
// survive.

// errTornWrite marks a shim-induced failure.
var errTornWrite = errors.New("injected torn write")

// tornWalFile wraps a real segment file and enforces a shared byte
// budget: the write that would exceed it lands only partially and
// fails; every later write fails outright. (Mirrors the shim in
// internal/wal's fault tests; this one drives the whole engine stack.)
type tornWalFile struct {
	f      wal.File
	budget *int64
}

func tornWalOpen(budget *int64) wal.OpenFileFunc {
	return func(name string, flag int, perm os.FileMode) (wal.File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return &tornWalFile{f: f, budget: budget}, nil
	}
}

func (t *tornWalFile) Write(p []byte) (int, error) {
	if *t.budget <= 0 {
		return 0, errTornWrite
	}
	if int64(len(p)) > *t.budget {
		n, _ := t.f.Write(p[:*t.budget])
		*t.budget = 0
		return n, errTornWrite
	}
	*t.budget -= int64(len(p))
	return t.f.Write(p)
}

func (t *tornWalFile) Sync() error                               { return t.f.Sync() }
func (t *tornWalFile) Close() error                              { return t.f.Close() }
func (t *tornWalFile) Truncate(size int64) error                 { return t.f.Truncate(size) }
func (t *tornWalFile) Seek(off int64, whence int) (int64, error) { return t.f.Seek(off, whence) }

func TestDurableFleetTornWriteCrashRecovery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "sequential", 4: "sharded"}[workers], func(t *testing.T) {
			labels := NewLabels()
			q := persistTestQuery(t, labels)
			star := starQuery(t)
			edges := persistTestStream(labels, 3000, 59)
			const window = 60
			dir := t.TempDir()
			specs := []QuerySpec{{Name: "chain", Query: q}, {Name: "star", Query: star}}

			// Run 1: feed batches through a WAL that tears a write
			// mid-batch after ~4 KiB.
			budget := int64(4096)
			dur := &Durability{Dir: dir, CheckpointEvery: 1 << 20, SyncEvery: 1}
			dur.openFile = tornWalOpen(&budget)
			fl, err := OpenFleet(Config{
				Queries: specs, Window: window,
				Durable: dur, FleetWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			var acked int64
			var faulted bool
			for off := 0; off < len(edges) && !faulted; off += 128 {
				end := off + 128
				if end > len(edges) {
					end = len(edges)
				}
				n, err := fl.FeedBatch(edges[off:end])
				acked += int64(n)
				if err != nil {
					if !errors.Is(err, errTornWrite) {
						t.Fatalf("FeedBatch failed with %v, want injected fault", err)
					}
					if n == end-off {
						t.Fatal("fault reported but whole batch acknowledged")
					}
					faulted = true
				}
			}
			if !faulted {
				t.Fatal("budget never exhausted — fault not exercised")
			}
			// WAL/engine no-divergence: the fleet fed exactly the edges
			// the log acknowledged, even though the append died mid-batch.
			if st := fl.Stats(); st.Fed != acked || st.WALSeq != acked {
				t.Fatalf("pre-crash fed %d, WAL %d, acked %d — engine diverged from log", st.Fed, st.WALSeq, acked)
			}
			// Crash: abandon without Close.

			// Run 2: reopen through the real filesystem. Recovery must
			// truncate the torn tail and replay every complete record —
			// possibly a few more than were acknowledged, if the torn
			// chunk broke on a record boundary.
			fl2, err := OpenFleet(Config{
				Queries: specs, Window: window,
				Durable:      &Durability{Dir: dir, CheckpointEvery: 1 << 20},
				FleetWorkers: workers,
			})
			if err != nil {
				t.Fatalf("reopen after torn write: %v", err)
			}
			st := fl2.Stats()
			recovered := st.WALSeq
			if recovered < acked || recovered > int64(len(edges)) {
				t.Fatalf("recovered %d records, acked %d", recovered, acked)
			}
			if st.Replayed != recovered {
				t.Fatalf("replayed %d, want the full %d-record log (no checkpoint was written)", st.Replayed, recovered)
			}

			// Engine state must match the WAL exactly: a reference fleet
			// fed precisely the surviving records reports identical
			// per-query state.
			ref, err := OpenFleet(Config{Queries: specs, Window: window})
			if err != nil {
				t.Fatal(err)
			}
			feedChunks(t, ref, edges[:recovered], 128)
			refSt := ref.Stats()
			for _, name := range []string{"chain", "star"} {
				if got, want := snap(st.Queries[name]), snap(refSt.Queries[name]); got != want {
					t.Fatalf("recovered member %s = %+v, want WAL-exact %+v", name, got, want)
				}
			}

			// The recovered fleet keeps matching: finish the stream on
			// both and the totals must agree end to end.
			feedChunks(t, fl2, edges[recovered:], 128)
			feedChunks(t, ref, edges[recovered:], 128)
			if err := fl2.Close(); err != nil {
				t.Fatal(err)
			}
			ref.Close()
			finalSt, finalRef := fl2.Stats(), ref.Stats()
			for _, name := range []string{"chain", "star"} {
				if got, want := snap(finalSt.Queries[name]), snap(finalRef.Queries[name]); got != want {
					t.Fatalf("post-recovery member %s = %+v, want %+v", name, got, want)
				}
			}
		})
	}
}
