package timingsubg_test

import (
	"context"
	"errors"
	"testing"

	"timingsubg"
)

func TestSearcherRunChannel(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan timingsubg.Edge, 4)
	ch <- timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 1}
	ch <- timingsubg.Edge{From: 2, To: 3, FromLabel: ls[1], ToLabel: ls[2], Time: 2}
	close(ch)
	n, err := s.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 edges processed, got %d", n)
	}
	if s.MatchCount() != 1 {
		t.Fatalf("want 1 match, got %d", s.MatchCount())
	}
}

func TestSearcherRunCancellation(t *testing.T) {
	q, _, _ := buildTwoHop(t)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan timingsubg.Edge) // never fed
	_, err = s.Run(ctx, ch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSearcherRunSurfacesFeedErrors(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan timingsubg.Edge, 2)
	ch <- timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 5}
	ch <- timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 5} // out of order
	close(ch)
	n, err := s.Run(context.Background(), ch)
	if err == nil {
		t.Fatal("out-of-order edge must surface an error")
	}
	if n != 1 {
		t.Fatalf("only the first edge processed, got %d", n)
	}
}

func TestMultiSearcherRun(t *testing.T) {
	labels := timingsubg.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	b := timingsubg.NewQueryBuilder()
	u, v := b.AddVertex(la), b.AddVertex(lb)
	b.AddEdge(u, v)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := timingsubg.NewMultiSearcher([]timingsubg.QuerySpec{
		{Name: "ab", Query: q, Options: timingsubg.Options{Window: 10}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan timingsubg.Edge, 1)
	ch <- timingsubg.Edge{From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1}
	close(ch)
	n, err := ms.Run(context.Background(), ch)
	if err != nil || n != 1 {
		t.Fatalf("run: n=%d err=%v", n, err)
	}
	if ms.MatchCounts()["ab"] != 1 {
		t.Fatal("match must register")
	}
}
