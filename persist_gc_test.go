package timingsubg

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWALDoesNotGrowUnboundedly: with periodic checkpoints, old WAL
// segments must be reclaimed, so the durability directory's size is
// bounded by (window state + checkpoint cadence), not stream length.
func TestWALDoesNotGrowUnboundedly(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 30},
		Dir:             dir,
		CheckpointEvery: 200,
		SegmentBytes:    2048, // small segments so GC has something to reclaim
	})
	if err != nil {
		t.Fatal(err)
	}

	dirBytes := func() int64 {
		var total int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			info, err := ent.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
		return total
	}
	segCount := func() int {
		m, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		return len(m)
	}

	var after2k, after10k int64
	for i, e := range persistTestStream(labels, 10000, 61) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
		if i == 1999 {
			after2k = dirBytes()
		}
	}
	after10k = dirBytes()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// 5× more edges must not mean 5× more disk: allow generous slack
	// (checkpoint files, one open segment) but catch unbounded growth.
	if after10k > 3*after2k {
		t.Fatalf("durability dir grew from %d to %d bytes (unbounded growth?)", after2k, after10k)
	}
	if n := segCount(); n > 4 {
		t.Fatalf("%d WAL segments retained after checkpointing; GC not working", n)
	}
}

// TestCheckpointGCKeepsTwo: after many checkpoints only the newest two
// checkpoint files remain (save-then-GC crash fallback contract).
func TestCheckpointGCKeepsTwo(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 30},
		Dir:             dir,
		CheckpointEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 500, 62) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	m, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(m) > 2 {
		t.Fatalf("%d checkpoint files retained, want <= 2", len(m))
	}
	if len(m) == 0 {
		t.Fatal("no checkpoint written")
	}
}
