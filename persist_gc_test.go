package timingsubg

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWALDoesNotGrowUnboundedly: with periodic checkpoints, old WAL
// segments must be reclaimed, so the durability directory's size is
// bounded by (window state + checkpoint cadence), not stream length.
func TestWALDoesNotGrowUnboundedly(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 30},
		Dir:             dir,
		CheckpointEvery: 200,
		SegmentBytes:    2048, // small segments so GC has something to reclaim
	})
	if err != nil {
		t.Fatal(err)
	}

	dirBytes := func() int64 {
		var total int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			info, err := ent.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
		return total
	}
	segCount := func() int {
		m, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		return len(m)
	}

	var after2k, after10k int64
	for i, e := range persistTestStream(labels, 10000, 61) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
		if i == 1999 {
			after2k = dirBytes()
		}
	}
	after10k = dirBytes()
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// 5× more edges must not mean 5× more disk: allow generous slack
	// (checkpoint files, one open segment) but catch unbounded growth.
	if after10k > 3*after2k {
		t.Fatalf("durability dir grew from %d to %d bytes (unbounded growth?)", after2k, after10k)
	}
	if n := segCount(); n > 4 {
		t.Fatalf("%d WAL segments retained after checkpointing; GC not working", n)
	}
}

// TestWALBoundedAfterCheckpoint pins the absolute truncation contract:
// once a checkpoint covers the whole log, the on-disk WAL is at most
// the open segment plus one boundary segment — independent of how many
// segment-multiples the stream wrote before it.
func TestWALBoundedAfterCheckpoint(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	const segBytes = 2048
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 30},
		Dir:             dir,
		CheckpointEvery: 200,
		SegmentBytes:    segBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 10000, 63) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	// 10k edges is dozens of 2KiB segments' worth of records; an
	// explicit checkpoint at the tail must reclaim all but the live
	// suffix.
	if err := ps.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("%d WAL segments after full checkpoint, want <= 2 (open + boundary)", len(segs))
	}
	var walBytes int64
	for _, s := range segs {
		info, err := os.Stat(s)
		if err != nil {
			t.Fatal(err)
		}
		walBytes += info.Size()
	}
	if walBytes > 3*segBytes {
		t.Fatalf("WAL holds %d bytes after full checkpoint, want <= %d", walBytes, 3*segBytes)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	// The truncated log plus checkpoint must still recover.
	ps2, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 30},
		Dir:             dir,
		CheckpointEvery: 200,
		SegmentBytes:    segBytes,
	})
	if err != nil {
		t.Fatalf("reopen after truncation: %v", err)
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncIntervalPlumbing: PersistentOptions.SyncInterval must reach
// the WAL — with cadence sync disabled, the background group-commit
// ticker alone makes appends durable, visible as Stats().WALSyncs.
func TestSyncIntervalPlumbing(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:      Options{Window: 30},
		Dir:          dir,
		SyncInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 50, 64) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for ps.Stats().WALSyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background WAL sync never fired (SyncInterval not plumbed through?)")
		}
		time.Sleep(time.Millisecond)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointGCKeepsTwo: after many checkpoints only the newest two
// checkpoint files remain (save-then-GC crash fallback contract).
func TestCheckpointGCKeepsTwo(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 30},
		Dir:             dir,
		CheckpointEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 500, 62) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	m, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(m) > 2 {
		t.Fatalf("%d checkpoint files retained, want <= 2", len(m))
	}
	if len(m) == 0 {
		t.Fatal("no checkpoint written")
	}
}
