package timingsubg

import (
	"testing"
)

func TestCountWindowOptionsValidation(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	if _, err := NewSearcher(q, Options{}); err == nil {
		t.Fatal("no window accepted")
	}
	if _, err := NewSearcher(q, Options{Window: 5, CountWindow: 5}); err == nil {
		t.Fatal("both windows accepted")
	}
	if _, err := NewSearcher(q, Options{CountWindow: 5}); err != nil {
		t.Fatalf("count window rejected: %v", err)
	}
}

// TestCountWindowEqualsTimeWindowOnUnitSpacing: with unit inter-arrival
// times the two window kinds define identical snapshots, so the full
// matching pipelines must report identical match sets.
func TestCountWindowEqualsTimeWindowOnUnitSpacing(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 500, 21) // times are 1..500

	run := func(opts Options) map[string]bool {
		got := map[string]bool{}
		opts.OnMatch = func(m *Match) { got[matchKey(m)] = true }
		s, err := NewSearcher(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			if _, err := s.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		return got
	}

	timeMatches := run(Options{Window: 60})
	countMatches := run(Options{CountWindow: 60})
	if len(timeMatches) == 0 {
		t.Fatal("no matches at all; test stream too sparse")
	}
	if len(timeMatches) != len(countMatches) {
		t.Fatalf("time window found %d matches, count window %d", len(timeMatches), len(countMatches))
	}
	for k := range timeMatches {
		if !countMatches[k] {
			t.Fatalf("count window missed match %s", k)
		}
	}
}

// TestCountWindowExpiryDropsMatches: a standing match must disappear
// once one of its edges is pushed out of the count window.
func TestCountWindowExpiryDropsMatches(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	la, lb := labels.Intern("a"), labels.Intern("b")
	lc, ld := labels.Intern("c"), labels.Intern("d")

	s, err := NewSearcher(q, Options{CountWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(from, to int64, fl, tl Label, ts int64) {
		if _, err := s.Feed(Edge{From: VertexID(from), To: VertexID(to), FromLabel: fl, ToLabel: tl, Time: Timestamp(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	// Build the chain a→b→c→d in timing order; all 3 edges fit in the
	// 4-edge window.
	feed(1, 2, la, lb, 1)
	feed(2, 3, lb, lc, 2)
	feed(3, 4, lc, ld, 3)
	if s.CurrentMatchCount() != 1 {
		t.Fatalf("standing matches = %d, want 1", s.CurrentMatchCount())
	}
	// Two unrelated edges push the first chain edge out of the window.
	feed(9, 9, la, la, 4)
	feed(9, 9, la, la, 5)
	if s.CurrentMatchCount() != 0 {
		t.Fatalf("standing matches after expiry = %d, want 0", s.CurrentMatchCount())
	}
	s.Close()
}

// TestCountWindowBoundsState: under a hot burst the count window keeps
// the in-window edge count (and hence engine state) hard-bounded.
func TestCountWindowBoundsState(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	s, err := NewSearcher(q, Options{CountWindow: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range persistTestStream(labels, 2000, 22) {
		if _, err := s.Feed(e); err != nil {
			t.Fatal(err)
		}
		if s.InWindow() > 32 {
			t.Fatalf("edge %d: window holds %d > 32 edges", i, s.InWindow())
		}
	}
	s.Close()
}
