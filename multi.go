package timingsubg

import (
	"fmt"

	"timingsubg/internal/router"
)

// MultiSearcher runs several continuous queries over one shared stream —
// the deployment shape of the paper's motivating scenarios, where all
// of, e.g., Verizon's ten attack patterns are monitored at once. Each
// query keeps its own engine and window state; an edge is fed once and
// fanned out to every query.
type MultiSearcher struct {
	searchers []*Searcher
	names     []string
	route     *router.Router
	routed    int64 // engine feeds actually performed (routed mode)
	fed       int64 // edges offered
}

// QuerySpec names a query for multi-query monitoring.
type QuerySpec struct {
	// Name tags matches in the callback.
	Name string
	// Query is the pattern to monitor.
	Query *Query
	// Options configures this query's engine. The OnMatch field is
	// ignored; use NewMultiSearcher's callback instead.
	Options Options
}

// NewMultiSearcher builds a fan-out searcher. onMatch receives the query
// name along with each match; it is serialized per query engine.
func NewMultiSearcher(specs []QuerySpec, onMatch func(name string, m *Match)) (*MultiSearcher, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	ms := &MultiSearcher{}
	for _, spec := range specs {
		spec := spec
		opts := spec.Options
		if onMatch != nil {
			opts.OnMatch = func(m *Match) { onMatch(spec.Name, m) }
		} else {
			opts.OnMatch = nil
		}
		s, err := NewSearcher(spec.Query, opts)
		if err != nil {
			return nil, fmt.Errorf("timingsubg: query %q: %w", spec.Name, err)
		}
		ms.searchers = append(ms.searchers, s)
		ms.names = append(ms.names, spec.Name)
	}
	return ms, nil
}

// NewRoutedMultiSearcher is NewMultiSearcher with label-based routing:
// each edge is dispatched only to the queries that have a query edge
// with a compatible ⟨from-label, to-label, edge-label⟩ signature, so
// per-edge cost is proportional to the number of *interested* queries
// rather than the fleet size.
//
// Semantics are identical to the unrouted fan-out: an engine that is
// skipped for an edge could neither extend nor start any partial match
// with it, and its window catches up (expiring old edges) on its next
// interesting edge. The only observable difference is that edge IDs are
// per-engine arrival indices, so the same data edge may carry different
// IDs in matches of different queries.
//
// Routing requires time-based windows: a count window is defined over
// the edges *fed* to the engine, so skipping uninterested edges would
// silently widen each query's horizon to its last N relevant edges.
// Count-window specs are rejected.
func NewRoutedMultiSearcher(specs []QuerySpec, onMatch func(name string, m *Match)) (*MultiSearcher, error) {
	for _, spec := range specs {
		if spec.Options.CountWindow > 0 {
			return nil, fmt.Errorf("timingsubg: query %q: routing requires time-based windows (count windows measure fed edges): %w",
				spec.Name, ErrBadOptions)
		}
	}
	ms, err := NewMultiSearcher(specs, onMatch)
	if err != nil {
		return nil, err
	}
	ms.route = router.New()
	for i, spec := range specs {
		ms.route.Add(i, spec.Query)
	}
	return ms, nil
}

// Feed pushes one edge to every query (or, in routed mode, to every
// interested query).
func (ms *MultiSearcher) Feed(e Edge) error {
	ms.fed++
	if ms.route != nil {
		var ferr error
		ms.route.Route(e, func(i int) {
			if ferr != nil {
				return
			}
			ms.routed++
			if _, err := ms.searchers[i].Feed(e); err != nil {
				ferr = fmt.Errorf("timingsubg: query %q: %w", ms.names[i], err)
			}
		})
		return ferr
	}
	for i, s := range ms.searchers {
		if _, err := s.Feed(e); err != nil {
			return fmt.Errorf("timingsubg: query %q: %w", ms.names[i], err)
		}
	}
	return nil
}

// RoutedFraction reports, in routed mode, the ratio of engine feeds
// performed to (edges offered × fleet size) — the dispatch work saved
// by routing. It returns 1 in unrouted mode.
func (ms *MultiSearcher) RoutedFraction() float64 {
	if ms.route == nil || ms.fed == 0 {
		return 1
	}
	return float64(ms.routed) / float64(ms.fed*int64(len(ms.searchers)))
}

// Close drains all engines.
func (ms *MultiSearcher) Close() {
	for _, s := range ms.searchers {
		s.Close()
	}
}

// MatchCounts returns per-query match counts, keyed by query name.
func (ms *MultiSearcher) MatchCounts() map[string]int64 {
	out := make(map[string]int64, len(ms.searchers))
	for i, s := range ms.searchers {
		out[ms.names[i]] += s.MatchCount()
	}
	return out
}

// SpaceBytes sums the space of all engines.
func (ms *MultiSearcher) SpaceBytes() int64 {
	var b int64
	for _, s := range ms.searchers {
		b += s.SpaceBytes()
	}
	return b
}
