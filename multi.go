package timingsubg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"timingsubg/internal/router"
)

// MultiSearcher runs several continuous queries over one shared stream —
// the deployment shape of the paper's motivating scenarios, where all
// of, e.g., Verizon's ten attack patterns are monitored at once. Each
// query keeps its own engine and window state; an edge is fed once and
// fanned out to every query.
//
// The fleet is dynamic: AddQuery and RemoveQuery register and retire
// queries while the stream is live, without disturbing the window state
// of the other queries. Feed, AddQuery and RemoveQuery mutate engine
// state and must be serialized by the caller (one feeder goroutine, or
// an external lock); the read accessors (MatchCounts, Names, HasQuery,
// RoutedFraction, SpaceBytes) may be called concurrently with them —
// this is what lets a serving layer sample stats while ingest runs.
type MultiSearcher struct {
	mu        sync.RWMutex
	searchers []*Searcher // nil entries are retired slots, reusable by AddQuery
	names     []string    // "" for retired slots
	onMatch   func(name string, m *Match)
	route     *router.Router
	routed    atomic.Int64 // engine feeds actually performed (routed mode)
	possible  atomic.Int64 // Σ per-edge live fleet size (routed mode denominator)
	fed       atomic.Int64 // edges offered
	live      int          // number of non-nil searchers
}

// QuerySpec names a query for multi-query monitoring.
type QuerySpec struct {
	// Name tags matches in the callback.
	Name string
	// Query is the pattern to monitor.
	Query *Query
	// Options configures this query's engine. The OnMatch field is
	// ignored; use NewMultiSearcher's callback instead.
	Options Options
}

// NewMultiSearcher builds a fan-out searcher. onMatch receives the query
// name along with each match; it is serialized per query engine.
func NewMultiSearcher(specs []QuerySpec, onMatch func(name string, m *Match)) (*MultiSearcher, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	ms := NewDynamicMultiSearcher(false, onMatch)
	for _, spec := range specs {
		if err := ms.addQuery(spec, false); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// NewRoutedMultiSearcher is NewMultiSearcher with label-based routing:
// each edge is dispatched only to the queries that have a query edge
// with a compatible ⟨from-label, to-label, edge-label⟩ signature, so
// per-edge cost is proportional to the number of *interested* queries
// rather than the fleet size.
//
// Semantics are identical to the unrouted fan-out: an engine that is
// skipped for an edge could neither extend nor start any partial match
// with it, and its window catches up (expiring old edges) on its next
// interesting edge. The only observable difference is that edge IDs are
// per-engine arrival indices, so the same data edge may carry different
// IDs in matches of different queries.
//
// Routing requires time-based windows: a count window is defined over
// the edges *fed* to the engine, so skipping uninterested edges would
// silently widen each query's horizon to its last N relevant edges.
// Count-window specs are rejected.
func NewRoutedMultiSearcher(specs []QuerySpec, onMatch func(name string, m *Match)) (*MultiSearcher, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	ms := NewDynamicMultiSearcher(true, onMatch)
	for _, spec := range specs {
		if err := ms.addQuery(spec, false); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// NewDynamicMultiSearcher returns an empty fleet ready for AddQuery and
// RemoveQuery — the serving-layer shape, where queries come and go over
// the life of the stream and the fleet may be momentarily empty. routed
// enables label-based routing (see NewRoutedMultiSearcher).
func NewDynamicMultiSearcher(routed bool, onMatch func(name string, m *Match)) *MultiSearcher {
	ms := &MultiSearcher{onMatch: onMatch}
	if routed {
		ms.route = router.New()
	}
	return ms
}

// AddQuery registers one more query on the live fleet. The new query's
// window starts empty: it sees only edges fed after it joins, exactly as
// a newly deployed pattern cannot see traffic that predates its
// deployment. Names must be non-empty and unique among live queries.
// AddQuery must be serialized with Feed by the caller.
func (ms *MultiSearcher) AddQuery(spec QuerySpec) error {
	return ms.addQuery(spec, true)
}

func (ms *MultiSearcher) addQuery(spec QuerySpec, unique bool) error {
	if spec.Name == "" {
		return fmt.Errorf("timingsubg: query name must be non-empty: %w", ErrBadOptions)
	}
	if ms.route != nil && spec.Options.CountWindow > 0 {
		return fmt.Errorf("timingsubg: query %q: routing requires time-based windows (count windows measure fed edges): %w",
			spec.Name, ErrBadOptions)
	}
	opts := spec.Options
	if ms.onMatch != nil {
		name := spec.Name
		onMatch := ms.onMatch
		opts.OnMatch = func(m *Match) { onMatch(name, m) }
	} else {
		opts.OnMatch = nil
	}
	s, err := NewSearcher(spec.Query, opts)
	if err != nil {
		return fmt.Errorf("timingsubg: query %q: %w", spec.Name, err)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if unique && ms.indexLocked(spec.Name) >= 0 {
		return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
	}
	slot := -1
	for i, sr := range ms.searchers {
		if sr == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(ms.searchers)
		ms.searchers = append(ms.searchers, nil)
		ms.names = append(ms.names, "")
	}
	ms.searchers[slot] = s
	ms.names[slot] = spec.Name
	ms.live++
	if ms.route != nil {
		ms.route.Add(slot, spec.Query)
	}
	return nil
}

// RemoveQuery retires the named query: its engine is drained and its
// slot freed for reuse; no match for it is delivered after RemoveQuery
// returns. Removing an unknown name is an error. RemoveQuery must be
// serialized with Feed by the caller.
func (ms *MultiSearcher) RemoveQuery(name string) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	i := ms.indexLocked(name)
	if i < 0 {
		return fmt.Errorf("timingsubg: unknown query %q: %w", name, ErrBadOptions)
	}
	ms.searchers[i].Close()
	ms.searchers[i] = nil
	ms.names[i] = ""
	ms.live--
	if ms.route != nil {
		ms.route.Remove(i)
	}
	return nil
}

// indexLocked returns the slot of the live query named name, or -1.
func (ms *MultiSearcher) indexLocked(name string) int {
	for i, n := range ms.names {
		if n == name && ms.searchers[i] != nil {
			return i
		}
	}
	return -1
}

// sample runs f on the live searcher registered under name, or returns
// zero if the query has been retired — the lookup-by-name indirection
// metrics gauges need so they never pin a closed engine or report a
// retired query's counters under a recycled name.
func (ms *MultiSearcher) sample(name string, f func(*Searcher) any) any {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	i := ms.indexLocked(name)
	if i < 0 {
		return int64(0)
	}
	return f(ms.searchers[i])
}

// HasQuery reports whether a live query is registered under name.
func (ms *MultiSearcher) HasQuery(name string) bool {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ms.indexLocked(name) >= 0
}

// Names returns the live query names, in registration-slot order.
func (ms *MultiSearcher) Names() []string {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	out := make([]string, 0, ms.live)
	for i, n := range ms.names {
		if ms.searchers[i] != nil {
			out = append(out, n)
		}
	}
	return out
}

// Feed pushes one edge to every query (or, in routed mode, to every
// interested query).
func (ms *MultiSearcher) Feed(e Edge) error {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	ms.fed.Add(1)
	if ms.route != nil {
		// The saved-work denominator accrues the fleet size *as of this
		// edge* — queries come and go, so a cumulative counter is the
		// only way the ratio stays meaningful.
		ms.possible.Add(int64(ms.live))
		var ferr error
		ms.route.Route(e, func(i int) {
			if ferr != nil || ms.searchers[i] == nil {
				return
			}
			ms.routed.Add(1)
			if _, err := ms.searchers[i].Feed(e); err != nil {
				ferr = fmt.Errorf("timingsubg: query %q: %w", ms.names[i], err)
			}
		})
		return ferr
	}
	for i, s := range ms.searchers {
		if s == nil {
			continue
		}
		if _, err := s.Feed(e); err != nil {
			return fmt.Errorf("timingsubg: query %q: %w", ms.names[i], err)
		}
	}
	return nil
}

// RoutedFraction reports, in routed mode, the ratio of engine feeds
// performed to engine feeds a naive fan-out would have performed
// (summing the live fleet size at each edge, so the ratio stays exact
// across AddQuery/RemoveQuery) — the dispatch work saved by routing.
// It returns 1 in unrouted mode. Safe to call while edges are being
// fed.
func (ms *MultiSearcher) RoutedFraction() float64 {
	possible := ms.possible.Load()
	if ms.route == nil || possible == 0 {
		return 1
	}
	return float64(ms.routed.Load()) / float64(possible)
}

// Fed returns how many edges have been offered to the fleet. Safe to
// call while edges are being fed.
func (ms *MultiSearcher) Fed() int64 { return ms.fed.Load() }

// Close drains all engines.
func (ms *MultiSearcher) Close() {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	for _, s := range ms.searchers {
		if s != nil {
			s.Close()
		}
	}
}

// MatchCounts returns per-query match counts, keyed by query name.
func (ms *MultiSearcher) MatchCounts() map[string]int64 {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	out := make(map[string]int64, ms.live)
	for i, s := range ms.searchers {
		if s != nil {
			out[ms.names[i]] += s.MatchCount()
		}
	}
	return out
}

// SpaceBytes sums the space of all engines. Call while no Feed is in
// flight.
func (ms *MultiSearcher) SpaceBytes() int64 {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	var b int64
	for _, s := range ms.searchers {
		if s != nil {
			b += s.SpaceBytes()
		}
	}
	return b
}
