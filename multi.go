package timingsubg

// QuerySpec names a query for multi-query (fleet) monitoring.
type QuerySpec struct {
	// Name tags matches in the callback.
	Name string
	// Query is the pattern to monitor.
	Query *Query
	// Options configures this query's engine. Fields left zero inherit
	// the fleet Config's defaults. The OnMatch field is ignored; use the
	// fleet-level callback instead.
	Options Options
	// Adaptive composes the feedback join-order reoptimizer onto this
	// member. Nil inherits the fleet Config's Adaptive setting.
	Adaptive *Adaptivity
	// Group tags this member with a statistics group — the serving
	// layer's tenant attribution hook. Members sharing a group are
	// aggregated into Stats.Groups[group]: summed counters plus a
	// group-wide detection histogram that survives member retirement.
	// Empty joins no group.
	Group string
}

// MultiSearcher runs several continuous queries over one shared stream.
// The fleet is dynamic: AddQuery and RemoveQuery register and retire
// queries while the stream is live. Feed, AddQuery and RemoveQuery must
// be serialized by the caller; the read accessors (MatchCounts, Names,
// HasQuery, RoutedFraction, SpaceBytes) may be called concurrently with
// them.
//
// Deprecated: MultiSearcher is a thin shim over the unified fleet
// engine. Use Open with Config{Queries: specs, ...} (or Dynamic: true),
// which exposes the same fleet with composable routing, durability and
// per-member adaptivity.
type MultiSearcher struct {
	fl *fleetEngine
}

// NewMultiSearcher builds a fan-out searcher. onMatch receives the query
// name along with each match; it is serialized per query engine.
//
// Deprecated: use Open.
func NewMultiSearcher(specs []QuerySpec, onMatch func(name string, m *Match)) (*MultiSearcher, error) {
	fl, err := openFleet(Config{Queries: specs, OnMatch: onMatch})
	if err != nil {
		return nil, err
	}
	return &MultiSearcher{fl: fl}, nil
}

// NewRoutedMultiSearcher is NewMultiSearcher with label-based routing:
// each edge is dispatched only to the queries that have a query edge
// with a compatible ⟨from-label, to-label, edge-label⟩ signature, so
// per-edge cost is proportional to the number of *interested* queries
// rather than the fleet size.
//
// Semantics are identical to the unrouted fan-out: an engine that is
// skipped for an edge could neither extend nor start any partial match
// with it, and its window catches up (expiring old edges) on its next
// interesting edge. The only observable difference is that edge IDs are
// per-engine arrival indices, so the same data edge may carry different
// IDs in matches of different queries.
//
// Routing requires time-based windows: a count window is defined over
// the edges *fed* to the engine, so skipping uninterested edges would
// silently widen each query's horizon to its last N relevant edges.
// Count-window specs are rejected.
//
// Deprecated: use Open with Config{Routed: true}.
func NewRoutedMultiSearcher(specs []QuerySpec, onMatch func(name string, m *Match)) (*MultiSearcher, error) {
	fl, err := openFleet(Config{Queries: specs, Routed: true, OnMatch: onMatch})
	if err != nil {
		return nil, err
	}
	return &MultiSearcher{fl: fl}, nil
}

// NewDynamicMultiSearcher returns an empty fleet ready for AddQuery and
// RemoveQuery — the serving-layer shape, where queries come and go over
// the life of the stream and the fleet may be momentarily empty. routed
// enables label-based routing (see NewRoutedMultiSearcher).
//
// Deprecated: use Open with Config{Dynamic: true}.
func NewDynamicMultiSearcher(routed bool, onMatch func(name string, m *Match)) *MultiSearcher {
	fl, err := openFleet(Config{Dynamic: true, Routed: routed, OnMatch: onMatch})
	if err != nil {
		// Unreachable: an empty dynamic in-memory config cannot fail.
		panic(err)
	}
	return &MultiSearcher{fl: fl}
}

// AddQuery registers one more query on the live fleet. The new query's
// window starts empty: it sees only edges fed after it joins, exactly as
// a newly deployed pattern cannot see traffic that predates its
// deployment. Names must be non-empty and unique among live queries.
// AddQuery must be serialized with Feed by the caller.
func (ms *MultiSearcher) AddQuery(spec QuerySpec) error { return ms.fl.AddQuery(spec) }

// RemoveQuery retires the named query: its engine is drained and its
// slot freed for reuse; no match for it is delivered after RemoveQuery
// returns. Removing an unknown name is an error. RemoveQuery must be
// serialized with Feed by the caller.
func (ms *MultiSearcher) RemoveQuery(name string) error { return ms.fl.RemoveQuery(name) }

// HasQuery reports whether a live query is registered under name.
func (ms *MultiSearcher) HasQuery(name string) bool { return ms.fl.HasQuery(name) }

// Names returns the live query names, in registration-slot order.
func (ms *MultiSearcher) Names() []string { return ms.fl.Names() }

// Feed pushes one edge to every query (or, in routed mode, to every
// interested query).
func (ms *MultiSearcher) Feed(e Edge) error {
	_, err := ms.fl.Feed(e)
	return err
}

// FeedBatch pushes a batch of edges; see Engine.FeedBatch.
func (ms *MultiSearcher) FeedBatch(batch []Edge) (int, error) { return ms.fl.FeedBatch(batch) }

// Stats returns the unified fleet snapshot (per-query snapshots under
// Stats.Queries).
func (ms *MultiSearcher) Stats() Stats { return ms.fl.Stats() }

// RoutedFraction reports, in routed mode, the ratio of engine feeds
// performed to engine feeds a naive fan-out would have performed
// (summing the live fleet size at each edge, so the ratio stays exact
// across AddQuery/RemoveQuery) — the dispatch work saved by routing.
// It returns 1 in unrouted mode. Safe to call while edges are being
// fed.
func (ms *MultiSearcher) RoutedFraction() float64 { return ms.fl.routedFraction() }

// Fed returns how many edges have been offered to the fleet. Safe to
// call while edges are being fed.
func (ms *MultiSearcher) Fed() int64 { return ms.fl.fedN.Load() }

// Close drains all engines.
func (ms *MultiSearcher) Close() { ms.fl.Close() }

// MatchCounts returns per-query match counts, keyed by query name.
func (ms *MultiSearcher) MatchCounts() map[string]int64 { return ms.fl.matchCounts() }

// SpaceBytes sums the space of all engines. Call while no Feed is in
// flight.
func (ms *MultiSearcher) SpaceBytes() int64 { return ms.fl.spaceBytes() }
