package timingsubg_test

import (
	"fmt"
	"os"

	"timingsubg"
)

// chainABC builds the a→b→c chain with e1 ≺ e2 used by the examples.
func chainABC(labels *timingsubg.Labels) *timingsubg.Query {
	b := timingsubg.NewQueryBuilder()
	va := b.AddVertex(labels.Intern("a"))
	vb := b.AddVertex(labels.Intern("b"))
	vc := b.AddVertex(labels.Intern("c"))
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// ExampleOpenPersistent shows durable search: edges are logged before
// matching, and reopening the same directory resumes with all state.
func ExampleOpenPersistent() {
	dir, err := os.MkdirTemp("", "timingsubg-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	labels := timingsubg.NewLabels()
	q := chainABC(labels)
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")

	open := func() *timingsubg.PersistentSearcher {
		ps, err := timingsubg.OpenPersistent(q, timingsubg.PersistentOptions{
			Options: timingsubg.Options{Window: 100},
			Dir:     dir,
		})
		if err != nil {
			panic(err)
		}
		return ps
	}

	ps := open()
	ps.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1})
	ps.Feed(timingsubg.Edge{From: 2, To: 3, FromLabel: lb, ToLabel: lc, Time: 2})
	fmt.Println("run 1 matches:", ps.MatchCount())
	ps.Close()

	ps2 := open() // restart: counters and window state are recovered
	fmt.Println("run 2 recovered matches:", ps2.MatchCount())
	fmt.Println("run 2 window edges:", ps2.InWindow())
	ps2.Close()

	// Output:
	// run 1 matches: 1
	// run 2 recovered matches: 1
	// run 2 window edges: 2
}

// ExampleMatchChannel adapts callback delivery to a channel consumer.
func ExampleMatchChannel() {
	labels := timingsubg.NewLabels()
	q := chainABC(labels)
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")

	onMatch, matches, done := timingsubg.MatchChannel(16)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 100, OnMatch: onMatch})
	if err != nil {
		panic(err)
	}
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for m := range matches {
			fmt.Println("got match with", len(m.Edges), "edges")
		}
	}()
	s.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1})
	s.Feed(timingsubg.Edge{From: 2, To: 3, FromLabel: lb, ToLabel: lc, Time: 2})
	s.Close()
	done()
	<-consumed

	// Output:
	// got match with 2 edges
}

// ExampleNewRoutedMultiSearcher monitors two patterns over one stream;
// routing dispatches each edge only to interested queries.
func ExampleNewRoutedMultiSearcher() {
	labels := timingsubg.NewLabels()
	lx, ly := labels.Intern("x"), labels.Intern("y")

	single := func(from, to timingsubg.Label) *timingsubg.Query {
		b := timingsubg.NewQueryBuilder()
		u, v := b.AddVertex(from), b.AddVertex(to)
		b.AddEdge(u, v)
		q, err := b.Build()
		if err != nil {
			panic(err)
		}
		return q
	}
	ms, err := timingsubg.NewRoutedMultiSearcher([]timingsubg.QuerySpec{
		{Name: "xy", Query: single(lx, ly), Options: timingsubg.Options{Window: 10}},
		{Name: "yx", Query: single(ly, lx), Options: timingsubg.Options{Window: 10}},
	}, func(name string, m *timingsubg.Match) {
		fmt.Println("alert from", name)
	})
	if err != nil {
		panic(err)
	}
	ms.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: lx, ToLabel: ly, Time: 1})
	ms.Feed(timingsubg.Edge{From: 2, To: 1, FromLabel: ly, ToLabel: lx, Time: 2})
	ms.Close()

	// Output:
	// alert from xy
	// alert from yx
}

// ExampleNewAdaptiveSearcher runs with join-order feedback enabled;
// on short streams it behaves exactly like a plain Searcher.
func ExampleNewAdaptiveSearcher() {
	labels := timingsubg.NewLabels()
	q := chainABC(labels)
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")

	a, err := timingsubg.NewAdaptiveSearcher(q, timingsubg.AdaptiveOptions{
		Options: timingsubg.Options{Window: 100},
	})
	if err != nil {
		panic(err)
	}
	a.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1})
	a.Feed(timingsubg.Edge{From: 2, To: 3, FromLabel: lb, ToLabel: lc, Time: 2})
	a.Close()
	fmt.Println("matches:", a.MatchCount(), "reoptimizations:", a.Reoptimizations())

	// Output:
	// matches: 1 reoptimizations: 0
}
