module timingsubg

go 1.24
