package timingsubg

import (
	"fmt"
	"testing"
)

// Benchmarks comparing per-edge Feed against the FeedBatch fast path on
// a 1e5-edge stream — the amortization the batch path buys: one
// closed-check and maintenance tick per batch, one WAL write (and at
// most one fsync) instead of one per edge, one fleet lock acquisition
// instead of one per edge.

const benchStreamLen = 100_000

func benchEngine(b *testing.B, cfg Config) (Engine, []Edge) {
	b.Helper()
	labels := NewLabels()
	q := persistTestQuery(b, labels)
	edges := persistTestStream(labels, benchStreamLen, 7)
	cfg.Query = q
	if cfg.Window == 0 {
		cfg.Window = 50
	}
	eng, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng, edges
}

func feedBench(b *testing.B, mk func(b *testing.B) Engine, edges []Edge, batch int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := mk(b)
		b.StartTimer()
		if batch <= 0 {
			for _, e := range edges {
				if _, err := eng.Feed(e); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for off := 0; off < len(edges); off += batch {
				end := off + batch
				if end > len(edges) {
					end = len(edges)
				}
				if _, err := eng.FeedBatch(edges[off:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		eng.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkFeed(b *testing.B) {
	_, edges := benchEngine(b, Config{})
	feedBench(b, func(b *testing.B) Engine {
		eng, _ := benchEngine(b, Config{})
		return eng
	}, edges, 0)
}

func BenchmarkFeedBatch(b *testing.B) {
	_, edges := benchEngine(b, Config{})
	feedBench(b, func(b *testing.B) Engine {
		eng, _ := benchEngine(b, Config{})
		return eng
	}, edges, 1024)
}

func BenchmarkDurableFeed(b *testing.B) {
	_, edges := benchEngine(b, Config{})
	feedBench(b, func(b *testing.B) Engine {
		eng, _ := benchEngine(b, Config{Durable: &Durability{Dir: b.TempDir(), SyncEvery: 64}})
		return eng
	}, edges, 0)
}

func BenchmarkDurableFeedBatch(b *testing.B) {
	_, edges := benchEngine(b, Config{})
	feedBench(b, func(b *testing.B) Engine {
		eng, _ := benchEngine(b, Config{Durable: &Durability{Dir: b.TempDir(), SyncEvery: 64}})
		return eng
	}, edges, 1024)
}

func benchFleet(b *testing.B) Engine {
	b.Helper()
	labels := NewLabels()
	q := persistTestQuery(b, labels)
	specs := make([]QuerySpec, 0, 4)
	for _, name := range []string{"q1", "q2", "q3", "q4"} {
		specs = append(specs, QuerySpec{Name: name, Query: q})
	}
	fl, err := OpenFleet(Config{Queries: specs, Window: 50})
	if err != nil {
		b.Fatal(err)
	}
	return fl
}

func BenchmarkFleetFeed(b *testing.B) {
	labels := NewLabels()
	persistTestQuery(b, labels)
	edges := persistTestStream(labels, benchStreamLen, 7)
	feedBench(b, func(b *testing.B) Engine { return benchFleet(b) }, edges, 0)
}

func BenchmarkFleetFeedBatch(b *testing.B) {
	labels := NewLabels()
	persistTestQuery(b, labels)
	edges := persistTestStream(labels, benchStreamLen, 7)
	feedBench(b, func(b *testing.B) Engine { return benchFleet(b) }, edges, 1024)
}

// BenchmarkFleetFan is the fleet-scaling regression harness: 64
// standing queries over one stream, broadcast and routed, with the
// fan-out evaluated sequentially (workers-1) and sharded (workers-2/4).
// The workers-4/workers-1 ratio on a multi-core runner is the headline
// number the sharded fleet exists for; scripts/bench_fleet.sh emits it
// as BENCH_fleet.json so the perf trajectory has data points.
func BenchmarkFleetFan(b *testing.B) {
	const fanQueries = 64
	const fanStreamLen = 20_000
	labels := NewLabels()
	q := persistTestQuery(b, labels)
	edges := persistTestStream(labels, fanStreamLen, 7)
	specs := make([]QuerySpec, 0, fanQueries)
	for i := 0; i < fanQueries; i++ {
		specs = append(specs, QuerySpec{Name: fmt.Sprintf("q%02d", i), Query: q})
	}
	for _, routed := range []bool{false, true} {
		mode := "broadcast"
		if routed {
			mode = "routed"
		}
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers-%d", mode, workers), func(b *testing.B) {
				feedBench(b, func(b *testing.B) Engine {
					fl, err := OpenFleet(Config{
						Queries:      specs,
						Window:       50,
						Routed:       routed,
						FleetWorkers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					return fl
				}, edges, 1024)
			})
		}
	}
}
