package timingsubg

import (
	"context"
	"errors"
	"fmt"
	"time"

	"timingsubg/internal/stats"
	"timingsubg/internal/wal"
)

// ErrClosed is returned by Feed, FeedBatch and the fleet mutators when
// the engine has been closed. Feeding a closed engine was previously
// documented-forbidden but unchecked; it is now a checked error.
var ErrClosed = errors.New("timingsubg: engine is closed")

// Engine is the one contract every engine composition satisfies: a
// continuous time-constrained subgraph search engine over a sliding
// window, fed edges in timestamp order. Open builds an Engine from a
// Config; durability, adaptivity, fleet fan-out, window kind, storage
// backend and worker parallelism are all orthogonal options of that one
// entry point, not separate types.
//
// Unless stated otherwise an Engine is not safe for concurrent feeding:
// Feed, FeedBatch, Run and Close must be serialized by the caller (one
// feeder goroutine, or an external lock). Fleets serialize Stats and
// the other read accessors against feeds internally, so sampling them
// while ingest runs is always safe; a sharded fleet (FleetWorkers > 1)
// additionally serializes AddQuery, RemoveQuery and Close against
// feeds, so the whole Fleet surface except the feed methods themselves
// is concurrency-safe there. For single engines the match and discard
// counters are atomic; the window fields (InWindow, LastTime), the
// walking fields (SpaceBytes, PartialMatches) and CurrentMatches
// should be read while no feed is in flight.
type Engine interface {
	// Feed pushes one edge. The edge's Time must exceed the previous
	// edge's; the returned ID is the engine's stream sequence for the
	// edge (the WAL sequence number in durable mode). After Close, Feed
	// returns ErrClosed.
	Feed(e Edge) (EdgeID, error)
	// FeedBatch pushes a batch of edges in order — the amortized fast
	// path: the closed-check, WAL write/sync, fleet lock acquisition and
	// maintenance cadences are paid once per batch rather than once per
	// edge. It returns how many leading edges were fed; on error, edges
	// from the failing one on were not fed. In durable mode the batch is
	// validated for timestamp monotonicity before anything is logged, so
	// a bad edge can never poison the WAL.
	FeedBatch(batch []Edge) (int, error)
	// Run consumes edges from a channel until it closes or ctx is
	// cancelled, then closes the engine. It returns the number of edges
	// processed and the first error, wrapped with the offending edge's
	// stream index.
	Run(ctx context.Context, edges <-chan Edge) (int64, error)
	// Close drains in-flight work, finalizes counters and, in durable
	// mode, checkpoints and closes the WAL. Close is idempotent.
	Close() error
	// Stats returns the unified counter snapshot.
	Stats() Stats
	// CurrentMatches enumerates the matches standing in the current
	// window (reported and not yet expired); fleets enumerate every
	// query's standing matches. The Match passed to fn is scratch —
	// Clone to retain. Call while no feed is in flight.
	CurrentMatches(fn func(*Match) bool)
	// Subscribe attaches a match consumer at runtime — the primary
	// results contract, replacing the Open-time OnMatch callback. It
	// may be called any number of times, from any goroutine, while the
	// engine runs; each subscription has its own query-name filter,
	// buffer and overflow policy (see SubscribeOptions), so one slow
	// reader only stalls ingest if it subscribed with Block. The
	// subscription ends (its channel closes) on Cancel, on engine
	// Close, or — when it filters by name on a fleet — when its last
	// filtered query is removed. After Close, Subscribe returns
	// ErrClosed.
	Subscribe(opts SubscribeOptions) (*Subscription, error)
}

// Fleet is the multi-query extension of Engine: a dynamic set of named
// queries over one shared stream. Open returns a Fleet when Config
// selects fleet mode (Queries and/or Dynamic); OpenFleet asserts that.
// AddQuery and RemoveQuery must be serialized with feeding by the
// caller, except on a sharded fleet (FleetWorkers > 1), which
// serializes them internally; HasQuery and Names may always run
// concurrently.
type Fleet interface {
	Engine
	// AddQuery registers one more query on the live fleet. Its window
	// starts empty: it sees only edges fed after it joins.
	AddQuery(spec QuerySpec) error
	// RemoveQuery retires the named query; no match for it is delivered
	// after RemoveQuery returns.
	RemoveQuery(name string) error
	// HasQuery reports whether a live query is registered under name.
	HasQuery(name string) bool
	// Names returns the live query names, in registration-slot order.
	Names() []string
}

// Stats is the unified live-counter snapshot of any Engine — one struct
// replacing the per-type accessor sets of the deprecated façades. Fields
// that a composition does not use stay at their zero value; the
// Adaptive, Durable and Fleet flags say which sections apply.
type Stats struct {
	// Matches is the number of complete matches reported so far, durable
	// across restarts and engine rebuilds.
	Matches int64 `json:"matches"`
	// Discarded counts fed edges filtered as discardable (matched a
	// query edge label but could never complete a match).
	Discarded int64 `json:"discarded"`
	// Fed counts edges pushed through this engine in this process
	// (including recovery replay; fleets count edges offered, not the
	// per-member fan-out).
	Fed int64 `json:"fed"`
	// InWindow is the number of edges currently inside the window
	// (summed over members, for fleets).
	InWindow int `json:"in_window"`
	// PartialMatches is the number of stored partial matches.
	PartialMatches int64 `json:"partial_matches"`
	// SpaceBytes estimates resident bytes of maintained partial matches.
	SpaceBytes int64 `json:"space_bytes"`
	// LastTime is the timestamp of the most recent edge seen (across
	// restarts, in durable mode), or 0 before any edge.
	LastTime Timestamp `json:"last_time"`

	// JoinScanned counts stored partial matches visited by INSERT probe
	// loops; JoinCandidates counts the visited matches that passed the
	// join-key filter (equal connecting-vertex binding, or equal shared
	// bindings in the global cascade). With the MS-tree backend's vertex
	// join indexes every visited match is a candidate — the two are
	// equal — while scan-mode and independent-storage engines visit
	// whole expansion-list items, so candidates/scanned is the index's
	// observed selectivity. Process-local (reset by a restart, and
	// including re-joins performed by adaptive rebuilds and checkpoint
	// restores, which do real work).
	JoinScanned    int64 `json:"join_scanned,omitempty"`
	JoinCandidates int64 `json:"join_candidates,omitempty"`

	// ExpiryBatches counts window slides processed through the batched
	// expiry path — one delete transaction sweeping the slide's whole
	// eviction set; ExpiryEvicted counts the expired edges those
	// batches covered. Their ratio is the mean eviction batch size,
	// the factor by which batching divides per-item lock round-trips
	// relative to edge-at-a-time expiry. Process-local, accumulated
	// across adaptive rebuilds like the join counters. Zero when the
	// per-edge ablation path is in use.
	ExpiryBatches int64 `json:"expiry_batches,omitempty"`
	ExpiryEvicted int64 `json:"expiry_evicted,omitempty"`

	// K is the size of the TC decomposition in use (0 for fleets; see
	// Queries for the per-member value).
	K int `json:"k,omitempty"`
	// Reoptimizations counts adaptive engine rebuilds.
	Reoptimizations int `json:"reoptimizations,omitempty"`
	// WALSeq is the write-ahead log's next sequence number (= edges
	// logged across all runs).
	WALSeq int64 `json:"wal_seq,omitempty"`
	// WALSyncs counts WAL fsyncs this process has performed — the
	// denominator of the group-commit coalescing ratio: concurrent
	// feeders sharing fsyncs show WALSyncs growing slower than feeds.
	WALSyncs int64 `json:"wal_syncs,omitempty"`
	// Replayed is how many WAL edges were replayed by the most recent
	// Open (0 on a cold start).
	Replayed int64 `json:"replayed,omitempty"`
	// RoutedFraction is the ratio of engine feeds performed to feeds a
	// naive fan-out would have performed (1 when routing is off).
	RoutedFraction float64 `json:"routed_fraction,omitempty"`
	// FleetWorkers is the number of evaluation shards of a sharded
	// fleet (0 when the fleet evaluates sequentially; fleets only).
	FleetWorkers int `json:"fleet_workers,omitempty"`
	// ShardMembers is the number of live members assigned to each
	// evaluation shard (sharded fleets only).
	ShardMembers []int `json:"shard_members,omitempty"`
	// ShardBusyNs is each evaluation shard's cumulative task execution
	// time in nanoseconds — the per-shard utilization ledger whose skew
	// shows how evenly member work spreads across FleetWorkers (sharded
	// fleets with metrics enabled only).
	ShardBusyNs []int64 `json:"shard_busy_ns,omitempty"`
	// Queries holds per-member snapshots, keyed by query name (fleets
	// only).
	Queries map[string]Stats `json:"queries,omitempty"`
	// Groups aggregates members sharing a QuerySpec.Group, keyed by
	// group name: summed counters plus a group-wide Detection histogram
	// that survives member retirement — the serving layer's per-tenant
	// slice. Nil when no member declares a group (fleets only).
	Groups map[string]Stats `json:"groups,omitempty"`

	// Stages is the per-stage latency breakdown of the ingest pipeline
	// (nil when Config.DisableMetrics is set; engine/fleet-level only —
	// per-member snapshots carry Detection instead).
	Stages *StageStats `json:"stages,omitempty"`
	// Detection is this engine's detection-latency histogram snapshot —
	// match emit wallclock minus triggering-edge arrival wallclock. On
	// fleets every member snapshot in Queries carries its own (the
	// per-query attribution); the fleet-wide aggregate is
	// Stages.Detection.
	Detection *LatencySnapshot `json:"detection,omitempty"`
	// WatermarkLagNs is now minus the stream clock mapped through
	// Config.EventTimeUnit, in nanoseconds (0 when no unit is set;
	// negative when producer timestamps run ahead of this host).
	WatermarkLagNs int64 `json:"watermark_lag_ns,omitempty"`

	// Subscriptions is the number of live Subscribe consumers attached
	// to this engine (fleet-level on fleets; per-member snapshots
	// report zero — members share the fleet's results plane).
	Subscriptions int `json:"subscriptions,omitempty"`
	// SubscriptionDelivered counts matches buffered to subscription
	// channels, summed over all subscriptions past and present.
	SubscriptionDelivered int64 `json:"subscription_delivered,omitempty"`
	// SubscriptionDropped counts matches lost to subscription overflow
	// policies (DropOldest/DropNewest) — the load-shedding ledger. A
	// Block subscriber never contributes here.
	SubscriptionDropped int64 `json:"subscription_dropped,omitempty"`

	// Adaptive, Durable and Fleet report which composable capabilities
	// this engine was opened with, making the snapshot self-describing.
	Adaptive bool `json:"adaptive,omitempty"`
	Durable  bool `json:"durable,omitempty"`
	Fleet    bool `json:"fleet,omitempty"`
}

// Adaptivity composes the feedback join-order reoptimizer onto an
// engine. The paper selects the join order once, from the static
// joint-number heuristic (Section VI-C); adaptivity closes that loop
// with feedback from observed per-subquery cardinalities, rebuilding the
// engine under a cheaper order when the estimated gain clears MinGain.
// Adaptation changes performance, never results.
type Adaptivity struct {
	// ReoptimizeEvery checks the join order after every n fed edges.
	// Zero means 1024.
	ReoptimizeEvery int
	// MinGain is the estimated cost ratio (current order / best order)
	// required before paying for a rebuild. Zero means 2.0; values
	// closer to 1 reoptimize more eagerly.
	MinGain float64
}

// Durability composes write-ahead logging and checkpoint-based crash
// recovery onto an engine. Every fed edge is logged before it is
// matched; Open rebuilds the exact engine state after a crash or
// restart and resumes. Delivery across a restart is at-least-once for
// matches completed after the last checkpoint (see MatchDeduper).
type Durability struct {
	// Dir is the durability directory (WAL segments + checkpoints). In
	// fleet mode the edge log is shared by all queries; each query keeps
	// its own checkpoints under Dir/ck/<name>/.
	Dir string
	// CheckpointEvery writes a checkpoint after every n fed edges. Zero
	// means 4096.
	CheckpointEvery int
	// SyncEvery fsyncs the WAL after every n appends; zero disables
	// cadence fsync. A FeedBatch is one durability unit: it syncs at
	// most once, after the batch. Concurrent feeders group-commit —
	// many callers' durability waits coalesce into one fsync.
	SyncEvery int
	// SyncInterval, when positive, runs a background WAL group commit
	// at this period: appends become durable within roughly one
	// interval without any feeder blocking on the disk. It is the
	// throughput end of the durability lever; combine with SyncEvery: 0
	// for async durability, or leave both zero to persist only on
	// checkpoint/Close.
	SyncInterval time.Duration
	// SegmentBytes sets the WAL segment rotation size (default 4 MiB).
	// Together with checkpoint-gated truncation it bounds the on-disk
	// log: after a checkpoint the WAL holds at most the records the
	// checkpoint does not cover plus one segment.
	SegmentBytes int64

	// openFile, when non-nil, replaces os.OpenFile for WAL segment
	// writes — the fault-injection seam the torn-write crash tests use
	// to kill an append mid-batch. Production code leaves it nil.
	openFile wal.OpenFileFunc
}

// Config configures Open. Exactly one of Query (single-query mode) and
// Queries/Dynamic (fleet mode) selects the engine shape; every other
// option is orthogonal and composable — including combinations the old
// façades could not express, such as adaptive+durable engines and
// adaptive members inside a fleet.
type Config struct {
	// Query selects single-query mode.
	Query *Query
	// Queries selects fleet mode: several named queries over one shared
	// stream. Each spec's Options override the Config-level defaults
	// below where set.
	Queries []QuerySpec
	// Dynamic selects fleet mode with a dynamic roster: Queries may be
	// empty and AddQuery/RemoveQuery reshape the fleet while the stream
	// is live.
	Dynamic bool
	// Routed enables label-based routing in fleet mode: each edge is
	// dispatched only to the queries with a compatible
	// ⟨from-label, to-label, edge-label⟩ signature. Requires time-based
	// windows (a count window is defined over the edges fed to the
	// engine, so skipping would silently widen it).
	Routed bool
	// FleetWorkers > 1 shards fleet evaluation: members are partitioned
	// across that many shards, each with its own lock and worker, and
	// Feed/FeedBatch fan out to the shards concurrently with a barrier
	// per call — per-member edge order is unchanged, and results are
	// identical to the sequential fleet. A sharded fleet enforces
	// timestamp monotonicity at the fleet boundary (an out-of-order
	// edge is rejected before any member sees it) and serializes
	// AddQuery/RemoveQuery/Close against feeds internally. Distinct
	// from Workers, which parallelizes edge transactions *inside* one
	// member engine. 0 or 1 means sequential evaluation.
	FleetWorkers int

	// Window is the time-based sliding-window duration |W|. Exactly one
	// of Window and CountWindow must be positive (in fleet mode, for
	// each member after spec overrides).
	Window Timestamp
	// CountWindow, when positive, uses a count-based window holding the
	// most recent CountWindow edges.
	CountWindow int
	// Storage selects the partial-match backend (default MSTree).
	Storage Storage
	// Workers > 1 enables concurrent execution with that many in-flight
	// edge transactions (requires MSTree storage; incompatible with
	// Adaptive and Durable, which need a quiescent engine).
	Workers int
	// LockScheme selects the concurrency control when Workers > 1.
	LockScheme LockScheme
	// Decomposition overrides the automatic TC decomposition (single
	// mode; the initial order only, when Adaptive is set).
	Decomposition *Decomposition

	// Adaptive composes the feedback join-order reoptimizer (fleet mode:
	// onto every member that does not carry its own QuerySpec.Adaptive).
	Adaptive *Adaptivity
	// Durable composes write-ahead logging and checkpointed recovery.
	Durable *Durability

	// scanProbes forces full-item INSERT probe scans (see
	// Options.scanProbes); fleet members inherit it. Internal ablation
	// knob for the join-index equivalence suite.
	scanProbes bool

	// perEdgeExpiry disables batched slide eviction (see
	// Options.perEdgeExpiry); fleet members inherit it. Internal
	// ablation knob for the expiry equivalence suite and benchmarks.
	perEdgeExpiry bool

	// DisableMetrics turns the pipeline latency instrumentation off:
	// Stats.Stages and the per-query detection histograms stay nil and
	// the feed path performs no clock reads. The instrumentation costs
	// a few time.Now calls per edge (see BenchmarkInsertIngest's
	// metrics cell), so the default is on.
	DisableMetrics bool
	// EventTimeUnit, when positive, declares how edge timestamps map to
	// wallclock: an edge's Time is that many multiples of the unit
	// since the Unix epoch (e.g. time.Millisecond for Unix-millisecond
	// timestamps). It enables the event-time lag histogram and the
	// watermark lag gauge; zero (the default) disables both — detection
	// latency is pure wallclock and works regardless.
	EventTimeUnit time.Duration
	// SlowOpThreshold, when positive, fires OnSlowOp (or, when that is
	// nil, a slog warning) for every feed, batch or synchronous match
	// delivery whose wall time exceeds it, with a per-stage breakdown.
	SlowOpThreshold time.Duration
	// OnSlowOp receives slow-operation reports when SlowOpThreshold is
	// set. Called synchronously on the feed path — keep it cheap.
	OnSlowOp func(SlowOp)

	// OnMatch receives every complete match with the name of the query
	// that matched ("" in single-query mode); it may be nil when only
	// counters are needed. The callback is serialized per query engine
	// and, in durable mode, sees matches re-reported by recovery
	// replay (at-least-once).
	//
	// OnMatch is now a thin shim over the subscription results plane —
	// an internal synchronous subscription installed at Open. Runtime
	// consumers should prefer Engine.Subscribe, which attaches and
	// detaches while the stream runs, filters by query, and cannot
	// stall ingest unless it asks to.
	OnMatch func(query string, m *Match)
	// OnDelivery is OnMatch with the delivery envelope: it receives
	// every (query, sequence number, match) synchronously, including
	// durable recovery replay. It is the hook for consumers that
	// persist their own per-query delivery cursor and need to observe
	// replayed sequence numbers (runtime consumers should prefer
	// Subscribe with AfterSeq). The Match is scratch — Clone to
	// retain. May be combined with OnMatch.
	OnDelivery func(d Delivery)
}

// Open builds an Engine from cfg — the single entry point replacing
// NewSearcher, NewAdaptiveSearcher, OpenPersistent, NewMultiSearcher,
// NewRoutedMultiSearcher, NewDynamicMultiSearcher, OpenPersistentMulti
// and OpenDynamicPersistentMulti. In fleet mode the returned Engine is
// a Fleet. In durable mode, if Durable.Dir holds a previous run's WAL
// and checkpoints, the engine state is recovered before Open returns.
func Open(cfg Config) (Engine, error) {
	fleetMode := len(cfg.Queries) > 0 || cfg.Dynamic
	switch {
	case cfg.Query != nil && fleetMode:
		return nil, errors.Join(ErrBadOptions, errors.New("set only one of Query and Queries/Dynamic"))
	case cfg.Query == nil && !fleetMode:
		return nil, errors.Join(ErrBadOptions, errors.New("one of Query and Queries/Dynamic must be set"))
	case cfg.Query != nil && cfg.Routed:
		return nil, errors.Join(ErrBadOptions, errors.New("Routed is a fleet option (set Queries or Dynamic)"))
	case cfg.Query != nil && cfg.FleetWorkers > 1:
		return nil, errors.Join(ErrBadOptions, errors.New("FleetWorkers is a fleet option (set Queries or Dynamic); Workers parallelizes a single engine"))
	case cfg.FleetWorkers < 0:
		return nil, errors.Join(ErrBadOptions, errors.New("FleetWorkers must be non-negative"))
	case cfg.EventTimeUnit < 0:
		return nil, errors.Join(ErrBadOptions, errors.New("EventTimeUnit must be non-negative"))
	}
	if fleetMode {
		return openFleet(cfg)
	}
	opts := Options{
		Window:        cfg.Window,
		CountWindow:   cfg.CountWindow,
		Storage:       cfg.Storage,
		Workers:       cfg.Workers,
		LockScheme:    cfg.LockScheme,
		Decomposition: cfg.Decomposition,
		scanProbes:    cfg.scanProbes,
		perEdgeExpiry: cfg.perEdgeExpiry,
	}
	if !cfg.DisableMetrics {
		opts.pipe = stats.NewPipeline()
		opts.eventUnitNs = int64(cfg.EventTimeUnit)
		opts.slowOpNs = int64(cfg.SlowOpThreshold)
		opts.onSlowOp = cfg.OnSlowOp
	}
	sink := configSink(cfg)
	if cfg.Durable != nil {
		return openDurableSingle(cfg.Query, opts, cfg.Adaptive, *cfg.Durable, sink)
	}
	return newSingle(cfg.Query, opts, cfg.Adaptive, sink)
}

// OpenFleet is Open for fleet configurations, returning the Fleet
// interface directly.
func OpenFleet(cfg Config) (Fleet, error) {
	eng, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	fl, ok := eng.(Fleet)
	if !ok {
		eng.Close()
		return nil, errors.Join(ErrBadOptions, errors.New("config does not select fleet mode (set Queries or Dynamic)"))
	}
	return fl, nil
}

// runLoop is the one Run implementation behind every engine and façade:
// consume until the channel closes or ctx is cancelled, close the
// engine, and wrap any feed error with the offending edge's stream
// index. A Close failure (e.g. the final durable checkpoint) surfaces
// when the loop itself finished cleanly — it must not be swallowed.
func runLoop(ctx context.Context, edges <-chan Edge, feed func(Edge) error, closeEng func() error) (n int64, err error) {
	defer func() {
		if cerr := closeEng(); err == nil {
			err = cerr
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return n, ctx.Err()
		case e, ok := <-edges:
			if !ok {
				return n, nil
			}
			if err := feed(e); err != nil {
				return n, fmt.Errorf("timingsubg: edge %d: %w", n, err)
			}
			n++
		}
	}
}
