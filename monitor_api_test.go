package timingsubg

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func fetchMetrics(t *testing.T, reg *MetricsRegistry) map[string]any {
	t.Helper()
	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSearcherMetrics(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	s, err := NewSearcher(q, Options{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	if err := s.RegisterMetrics(reg, "q"); err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 200, 31) {
		if _, err := s.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	got := fetchMetrics(t, reg)
	if got["q.matches"] == nil || got["q.window_edges"] == nil {
		t.Fatalf("missing metrics: %v", got)
	}
	if got["q.matches"].(float64) != float64(s.MatchCount()) {
		t.Fatalf("matches metric %v != %d", got["q.matches"], s.MatchCount())
	}
	if got["q.decomposition_k"].(float64) < 1 {
		t.Fatalf("bad k: %v", got["q.decomposition_k"])
	}
}

func TestMultiSearcherMetrics(t *testing.T) {
	labels := NewLabels()
	specs := []QuerySpec{
		{Name: "chain", Query: persistTestQuery(t, labels), Options: Options{Window: 40}},
	}
	ms, err := NewRoutedMultiSearcher(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	if err := ms.RegisterMetrics(reg, "fleet"); err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 100, 32) {
		if err := ms.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	ms.Close()
	got := fetchMetrics(t, reg)
	if got["fleet.chain.matches"] == nil {
		t.Fatalf("missing per-query metric: %v", got)
	}
	if got["fleet.routed_fraction"] == nil {
		t.Fatalf("missing fleet metric: %v", got)
	}
}

func TestPersistentSearcherMetrics(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	ps, err := OpenPersistent(q, PersistentOptions{Options: Options{Window: 40}, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	if err := ps.RegisterMetrics(reg, "durable"); err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 50, 33) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	got := fetchMetrics(t, reg)
	if got["durable.wal_seq"].(float64) != 50 {
		t.Fatalf("wal_seq = %v, want 50", got["durable.wal_seq"])
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSearcherMetrics(t *testing.T) {
	q := starQuery(t)
	a, err := NewAdaptiveSearcher(q, AdaptiveOptions{Options: Options{Window: 100}})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	if err := a.RegisterMetrics(reg, "adaptive"); err != nil {
		t.Fatal(err)
	}
	got := fetchMetrics(t, reg)
	if got["adaptive.reoptimizations"].(float64) != 0 {
		t.Fatalf("reoptimizations = %v", got["adaptive.reoptimizations"])
	}
}

func TestDuplicatePrefixRejected(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	s, err := NewSearcher(q, Options{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	if err := s.RegisterMetrics(reg, "q"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterMetrics(reg, "q"); err == nil {
		t.Fatal("duplicate prefix accepted")
	}
}

func TestPersistentMultiMetrics(t *testing.T) {
	labels := NewLabels()
	specs := fleetSpecs(t, labels, 40)
	pm, err := OpenPersistentMulti(specs, PersistentMultiOptions{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	if err := pm.RegisterMetrics(reg, "fleet"); err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 80, 81) {
		if err := pm.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	got := fetchMetrics(t, reg)
	if got["fleet.wal_seq"].(float64) != 80 {
		t.Fatalf("wal_seq = %v, want 80", got["fleet.wal_seq"])
	}
	if got["fleet.chain3.matches"] == nil {
		t.Fatalf("missing per-query metric: %v", got)
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
}
