package timingsubg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// The sharded-fleet stress suite: hammer the full Fleet surface —
// AddQuery, RemoveQuery, Stats, CurrentMatches, Names, HasQuery —
// concurrently with FeedBatch ingest, then assert the accounting
// invariants the shard fan-out must preserve: no lost edges (every
// accepted edge reaches every broadcast member exactly once), no
// double-routing, and ErrClosed from every mutator after Close. The CI
// race job runs this under -race, which is where the locking protocol
// (roster RWMutex + per-shard locks + per-call barrier) earns its keep.

// stressFleet runs the churn/sample/ingest storm against fl and returns
// the total number of edges accepted by FeedBatch.
func stressFleet(t *testing.T, fl Fleet, edges []Edge, q *Query) int64 {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var accepted atomic.Int64

	// Query churn: add and remove short-lived queries while the stream
	// runs. Names never collide with the pinned members.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn-%d", i%8)
			if fl.HasQuery(name) {
				if err := fl.RemoveQuery(name); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("RemoveQuery(%s): %v", name, err)
					return
				}
			} else {
				err := fl.AddQuery(QuerySpec{Name: name, Query: q})
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("AddQuery(%s): %v", name, err)
					return
				}
			}
		}
	}()

	// Samplers: the read surface must stay consistent mid-ingest.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := fl.Stats()
				var sum int64
				for _, qs := range st.Queries {
					sum += qs.Matches
				}
				if st.Matches != sum {
					t.Errorf("aggregate matches %d != member sum %d", st.Matches, sum)
					return
				}
				fl.CurrentMatches(func(m *Match) bool { return len(m.Edges) > 0 })
				_ = fl.Names()
				_ = fl.HasQuery("pinned")
			}
		}()
	}

	// The one feeder (the Engine contract's serialization point).
	for off := 0; off < len(edges); off += 256 {
		end := off + 256
		if end > len(edges) {
			end = len(edges)
		}
		n, err := fl.FeedBatch(edges[off:end])
		if err != nil {
			t.Fatalf("FeedBatch at %d: %v", off, err)
		}
		if n != end-off {
			t.Fatalf("FeedBatch at %d: fed %d of %d", off, n, end-off)
		}
		accepted.Add(int64(n))
	}
	close(stop)
	wg.Wait()
	return accepted.Load()
}

func TestShardedFleetStress(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 8000, 77)

	run := func(t *testing.T, cfg Config) {
		cfg.Dynamic = true
		cfg.FleetWorkers = 4
		cfg.Window = 50
		cfg.Queries = []QuerySpec{{Name: "pinned", Query: q}}
		fl, err := OpenFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		accepted := stressFleet(t, fl, edges, q)

		st := fl.Stats()
		// No lost edges: every accepted edge is visible in the fleet
		// counter, and — broadcast mode — was fed to the pinned member
		// exactly once (a double-dispatch would overshoot, a dropped
		// shard task would undershoot).
		if st.Fed != accepted || accepted != int64(len(edges)) {
			t.Fatalf("fleet fed %d, accepted %d, offered %d", st.Fed, accepted, len(edges))
		}
		if cfg.Routed {
			if pf := st.Queries["pinned"].Fed; pf > st.Fed {
				t.Fatalf("routed pinned member fed %d > fleet fed %d (double-routing)", pf, st.Fed)
			}
		} else if pf := st.Queries["pinned"].Fed; pf != st.Fed {
			t.Fatalf("pinned member fed %d, fleet fed %d (lost or double-dispatched edges)", pf, st.Fed)
		}
		if st.Queries["pinned"].Matches == 0 {
			t.Fatal("pinned member matched nothing — stress stream exercises nothing")
		}

		if err := fl.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// The whole mutating surface reports ErrClosed from now on.
		if _, err := fl.Feed(edges[0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("Feed after Close = %v, want ErrClosed", err)
		}
		if _, err := fl.FeedBatch(edges[:1]); !errors.Is(err, ErrClosed) {
			t.Fatalf("FeedBatch after Close = %v, want ErrClosed", err)
		}
		if err := fl.AddQuery(QuerySpec{Name: "late", Query: q}); !errors.Is(err, ErrClosed) {
			t.Fatalf("AddQuery after Close = %v, want ErrClosed", err)
		}
		if err := fl.RemoveQuery("pinned"); !errors.Is(err, ErrClosed) {
			t.Fatalf("RemoveQuery after Close = %v, want ErrClosed", err)
		}
		// The read surface stays sane on a closed fleet.
		if got := fl.Stats().Fed; got != st.Fed {
			t.Fatalf("Stats changed after Close: %d != %d", got, st.Fed)
		}
	}

	t.Run("broadcast", func(t *testing.T) { run(t, Config{}) })
	t.Run("routed", func(t *testing.T) { run(t, Config{Routed: true}) })
	t.Run("durable", func(t *testing.T) {
		run(t, Config{Durable: &Durability{Dir: t.TempDir(), CheckpointEvery: 1000}})
	})
}

// TestShardedFleetConcurrentClose races Close against an active feeder:
// whatever interleaving occurs, every batch either lands fully before
// the close or is rejected with ErrClosed, and the final fleet counter
// equals the sum of the accepted batches — a torn batch (partially
// dispatched, then closed) must be impossible.
func TestShardedFleetConcurrentClose(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 6000, 13)

	fl, err := OpenFleet(Config{
		Queries:      []QuerySpec{{Name: "a", Query: q}, {Name: "b", Query: q}},
		Window:       50,
		FleetWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	closing := make(chan struct{})
	var closeErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-closing
		closeErr = fl.Close()
	}()

	var accepted int64
	for off := 0; off < len(edges); off += 100 {
		if off == 3000 {
			close(closing)
		}
		n, err := fl.FeedBatch(edges[off : off+100])
		accepted += int64(n)
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("FeedBatch at %d: %v", off, err)
			}
			if n != 0 {
				t.Fatalf("FeedBatch at %d: ErrClosed with %d edges fed (torn batch)", off, n)
			}
			break
		}
		if n != 100 {
			t.Fatalf("FeedBatch at %d: fed %d of 100 without error", off, n)
		}
	}
	wg.Wait()
	if closeErr != nil {
		t.Fatalf("Close: %v", closeErr)
	}
	st := fl.Stats()
	if st.Fed != accepted {
		t.Fatalf("fleet fed %d != accepted %d", st.Fed, accepted)
	}
	if pf := st.Queries["a"].Fed; pf != accepted {
		t.Fatalf("member fed %d != accepted %d", pf, accepted)
	}
}
