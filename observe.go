package timingsubg

import (
	"log/slog"
	"sync/atomic"
	"time"

	"timingsubg/internal/stats"
)

// LatencySnapshot is a point-in-time latency summary: sample count,
// mean, p50/p90/p99/p999 and max, plus the bucket counts behind the
// Prometheus cumulative exposition. JSON fields are nanoseconds.
type LatencySnapshot = stats.Snapshot

// StageStats is the per-stage latency breakdown of the ingest pipeline,
// one LatencySnapshot per stage. Engines populate it unless
// Config.DisableMetrics is set; stages an engine composition does not
// exercise (e.g. WAL stages on an in-memory engine) stay empty.
type StageStats struct {
	// Ingest is end-to-end Feed latency per edge (per batch, on a
	// sharded fleet's FeedBatch — shards interleave edges there).
	Ingest LatencySnapshot `json:"ingest"`
	// WALAppend times each durable append (including any cadence fsync
	// it triggered); WALSync times each fsync alone.
	WALAppend LatencySnapshot `json:"wal_append"`
	WALSync   LatencySnapshot `json:"wal_sync"`
	// GroupCommit times each committer's wait for group-commit
	// durability — the batch-coalescing latency paid when an fsync is
	// shared with (or queued behind) concurrent committers.
	GroupCommit LatencySnapshot `json:"wal_group_commit"`
	// QueueWait is the time a shard task waits for a fleet-pool worker;
	// ShardExec is the task's execution time (sharded fleets only).
	QueueWait LatencySnapshot `json:"shard_queue_wait"`
	ShardExec LatencySnapshot `json:"shard_exec"`
	// Join times core insert work per edge; Expiry times each
	// window-expiry sweep.
	Join   LatencySnapshot `json:"join"`
	Expiry LatencySnapshot `json:"expiry"`
	// Dispatch times synchronous match delivery (subscriber fan-out,
	// including Block-policy backpressure).
	Dispatch LatencySnapshot `json:"dispatch"`
	// Detection is the paper's detection latency — match emit wallclock
	// minus triggering edge arrival wallclock — engine-wide. Per-query
	// histograms are in Stats.Queries[name].Detection.
	Detection LatencySnapshot `json:"detection"`
	// EventTimeLag is match emit wallclock minus the triggering edge's
	// event timestamp mapped through Config.EventTimeUnit (empty when
	// no unit is configured).
	EventTimeLag LatencySnapshot `json:"event_time_lag"`
}

// SlowOp describes one pipeline operation that exceeded
// Config.SlowOpThreshold, with its stage breakdown.
type SlowOp struct {
	// Op is the operation kind: "feed", "feed_batch" or "delivery" (a
	// synchronous match delivery, e.g. a Block subscriber stalling).
	Op string `json:"op"`
	// Query is the query being delivered ("" for feed ops and
	// single-query engines).
	Query string `json:"query,omitempty"`
	// Edges is the number of edges the operation carried (0 for
	// delivery ops).
	Edges int `json:"edges,omitempty"`
	// Total is the operation's wall time; WAL is the append+fsync
	// portion and Fanout the remainder (member fan-out, join, expiry,
	// delivery) for feed ops.
	Total  time.Duration `json:"total_ns"`
	WAL    time.Duration `json:"wal_ns,omitempty"`
	Fanout time.Duration `json:"fanout_ns,omitempty"`
}

// defaultSlowOp is the slow-op hook used when Config.SlowOpThreshold is
// set without OnSlowOp: a structured warning on the default logger.
func defaultSlowOp(op SlowOp) {
	slog.Warn("timingsubg: slow op",
		"op", op.Op, "query", op.Query, "edges", op.Edges,
		"total", op.Total, "wal", op.WAL, "fanout", op.Fanout)
}

// obs is one engine's observability wiring: the stage pipeline (shared
// fleet-wide by members), this engine's detection histogram, the
// arrival clock the detection latency is measured from, and the
// slow-op hook. A nil *obs disables instrumentation.
type obs struct {
	pipe *stats.Pipeline
	// det is this engine's detection histogram — &pipe.Detection for a
	// standalone engine, a private histogram per fleet member (the
	// per-query view); fleetDet, when non-nil, additionally receives
	// every member observation so the fleet-wide stage view stays whole.
	// groupDet, when non-nil, is the member's QuerySpec.Group histogram
	// shared with every other member of the group (the per-tenant view).
	det      *stats.AtomicHistogram
	fleetDet *stats.AtomicHistogram
	groupDet *stats.AtomicHistogram
	// arrival is the wallclock (UnixNano) when the edge(s) currently
	// being processed entered the engine — stored at the feed boundary,
	// read at match emit. Members share the fleet's cell so sharded
	// fan-out reads one batch-level arrival. Zero means "no live feed"
	// (recovery replay), which suppresses detection observations.
	arrival    *atomic.Int64
	arrivalOwn atomic.Int64

	eventUnitNs int64
	slowNs      int64
	onSlow      func(SlowOp)
}

// newObs builds the wiring for one engine (or one fleet).
func newObs(p *stats.Pipeline, eventUnitNs, slowNs int64, onSlow func(SlowOp)) *obs {
	o := &obs{pipe: p, det: &p.Detection, eventUnitNs: eventUnitNs, slowNs: slowNs, onSlow: onSlow}
	if o.onSlow == nil {
		o.onSlow = defaultSlowOp
	}
	o.arrival = &o.arrivalOwn
	return o
}

// stages snapshots every stage histogram. Nil-safe.
func (o *obs) stages() *StageStats {
	if o == nil {
		return nil
	}
	p := o.pipe
	return &StageStats{
		Ingest:       p.Ingest.Snapshot(),
		WALAppend:    p.WALAppend.Snapshot(),
		WALSync:      p.WALSync.Snapshot(),
		GroupCommit:  p.WALGroupCommit.Snapshot(),
		QueueWait:    p.QueueWait.Snapshot(),
		ShardExec:    p.ShardExec.Snapshot(),
		Join:         p.Join.Snapshot(),
		Expiry:       p.Expiry.Snapshot(),
		Dispatch:     p.Dispatch.Snapshot(),
		Detection:    p.Detection.Snapshot(),
		EventTimeLag: p.EventTimeLag.Snapshot(),
	}
}

// slowFeed fires the slow-op hook when a feed exceeded the threshold.
func (o *obs) slowFeed(op string, edges int, total, walD time.Duration) {
	if o.slowNs <= 0 || int64(total) <= o.slowNs {
		return
	}
	o.onSlow(SlowOp{Op: op, Edges: edges, Total: total, WAL: walD, Fanout: total - walD})
}

// onMatch records detection latency and event-time lag for one emitted
// match, times the synchronous delivery via publish, and fires the
// slow-delivery hook. query is the publishing name.
func (o *obs) onMatch(query string, m *Match, publish func()) {
	now := time.Now()
	// arrival == 0 means no live feed is in flight (recovery replay):
	// detection latency and event-time lag are meaningless for
	// re-reported historical matches, so both are suppressed.
	if arr := o.arrival.Load(); arr > 0 {
		d := time.Duration(now.UnixNano() - arr)
		if d < 0 {
			d = 0
		}
		o.det.Observe(d)
		if o.fleetDet != nil {
			o.fleetDet.Observe(d)
		}
		if o.groupDet != nil {
			o.groupDet.Observe(d)
		}
		if o.eventUnitNs > 0 {
			if lag := now.UnixNano() - latestEdgeTime(m)*o.eventUnitNs; lag > 0 {
				o.pipe.EventTimeLag.Observe(time.Duration(lag))
			}
		}
	}
	publish()
	d := time.Since(now)
	o.pipe.Dispatch.Observe(d)
	if o.slowNs > 0 && int64(d) > o.slowNs {
		o.onSlow(SlowOp{Op: "delivery", Query: query, Total: d})
	}
}

// latestEdgeTime returns the newest bound edge timestamp of a complete
// match — its triggering edge's event time.
func latestEdgeTime(m *Match) int64 {
	t := int64(minTimestamp)
	for i := range m.Edges {
		if et := int64(m.Edges[i].Time); et > t {
			t = et
		}
	}
	return t
}

// watermarkLag maps the engine's stream clock through the event-time
// unit and returns now − watermark in nanoseconds (0 when event time is
// not configured or nothing has been fed). Negative values mean the
// producer's timestamps run ahead of this host's clock.
func watermarkLag(last Timestamp, unitNs int64) int64 {
	if unitNs <= 0 || last == 0 {
		return 0
	}
	return time.Now().UnixNano() - int64(last)*unitNs
}

// pipeSync selects the WAL fsync histogram of a pipeline. Nil-safe —
// the wal package takes nil as "off".
func pipeSync(p *stats.Pipeline) *stats.AtomicHistogram {
	if p == nil {
		return nil
	}
	return &p.WALSync
}

// pipeGroupCommit selects the group-commit wait histogram. Nil-safe.
func pipeGroupCommit(p *stats.Pipeline) *stats.AtomicHistogram {
	if p == nil {
		return nil
	}
	return &p.WALGroupCommit
}
