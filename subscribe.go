package timingsubg

import "sync"

// MatchChannel adapts the callback-based OnMatch delivery to a channel,
// for consumers structured around select loops or pipelines:
//
//	onMatch, matches, done := timingsubg.MatchChannel(256)
//	s, _ := timingsubg.NewSearcher(q, timingsubg.Options{Window: w, OnMatch: onMatch})
//	go func() {
//		for m := range matches {
//			handle(m)
//		}
//	}()
//	feed(s)
//	s.Close()
//	done() // closes matches after the last Feed returns
//
// The returned callback applies backpressure: when the buffer is full it
// blocks the engine until the consumer catches up, so no match is ever
// dropped. Call done exactly once, after the final Feed (and Close, in
// concurrent mode); calling the callback after done panics, as sending
// on a closed channel does.
func MatchChannel(buffer int) (onMatch func(*Match), matches <-chan *Match, done func()) {
	if buffer < 0 {
		buffer = 0
	}
	ch := make(chan *Match, buffer)
	var once sync.Once
	return func(m *Match) { ch <- m },
		ch,
		func() { once.Do(func() { close(ch) }) }
}

// MatchDeduper suppresses duplicate match reports. A PersistentSearcher
// delivers at-least-once across a crash: matches completed after the
// last checkpoint may be re-reported during recovery replay. Wrapping
// the consumer with a deduper restores exactly-once delivery for the
// retained horizon:
//
//	dedup := timingsubg.NewMatchDeduper(1 << 16)
//	opts.OnMatch = func(m *timingsubg.Match) {
//		if dedup.Seen(m) {
//			return
//		}
//		alert(m)
//	}
//
// The deduper remembers the most recent `capacity` distinct matches
// (FIFO eviction). Capacity must exceed the number of matches a
// recovery replay can re-deliver — matches completed since the last
// checkpoint — which CheckpointEvery bounds.
//
// Identity is the vector of data-edge IDs bound to the query edges.
// Edge IDs are WAL sequence numbers in persistent mode, so identity is
// stable across restarts. A MatchDeduper serves one query; matches of
// different queries must use separate dedupers.
type MatchDeduper struct {
	capacity int
	seen     map[string]struct{}
	order    []string
	head     int
}

// NewMatchDeduper returns a deduper remembering up to capacity matches.
func NewMatchDeduper(capacity int) *MatchDeduper {
	if capacity < 1 {
		capacity = 1
	}
	return &MatchDeduper{
		capacity: capacity,
		seen:     make(map[string]struct{}, capacity),
		order:    make([]string, 0, capacity),
	}
}

// Seen records m and reports whether it was already recorded. Not safe
// for concurrent use; call from the (serialized) OnMatch callback.
func (d *MatchDeduper) Seen(m *Match) bool {
	key := matchIdentity(m)
	if _, dup := d.seen[key]; dup {
		return true
	}
	if len(d.order) < d.capacity {
		d.order = append(d.order, key)
	} else {
		delete(d.seen, d.order[d.head])
		d.order[d.head] = key
		d.head = (d.head + 1) % d.capacity
	}
	d.seen[key] = struct{}{}
	return false
}

// Len returns how many distinct matches are currently remembered.
func (d *MatchDeduper) Len() int { return len(d.order) }

// matchIdentity encodes the bound edge-ID vector. The query-edge order
// of Match.Edges is fixed per query, so no sorting is needed.
func matchIdentity(m *Match) string {
	b := make([]byte, 0, 8*len(m.Edges))
	for _, e := range m.Edges {
		id := uint64(e.ID)
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
			byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	}
	return string(b)
}
