package timingsubg

import (
	"errors"
	"iter"
	"strconv"
	"sync"

	"timingsubg/internal/dispatch"
)

// OverflowPolicy says what happens when a subscription's buffer is
// full at delivery time. The default, Block, trades ingest throughput
// for losslessness; the drop policies guarantee that a slow consumer
// can never stall Feed/FeedBatch.
type OverflowPolicy = dispatch.Policy

const (
	// Block applies backpressure: the engine waits for the consumer.
	// A Block subscriber must keep receiving until its channel closes,
	// or it stalls ingest (and, on a fleet, can stall Close).
	Block = dispatch.Block
	// DropOldest evicts the oldest buffered delivery to admit the new
	// one — the buffer always holds the newest matches, and ingest
	// never blocks on this subscriber.
	DropOldest = dispatch.DropOldest
	// DropNewest discards the incoming delivery when the buffer is
	// full — the buffer holds the oldest undelivered matches, and
	// ingest never blocks on this subscriber.
	DropNewest = dispatch.DropNewest
)

// Delivery is one match delivered to a subscription (or to
// Config.OnDelivery): the query name ("" on single-query engines), the
// per-query delivery sequence number, and the match itself.
//
// Sequence numbers start at 1 per query and are stable for a given
// stream: a durable engine seeds them from its recovered checkpoint,
// so a match re-reported by recovery replay carries the same Seq it
// had before the crash. A consumer that records its per-query
// high-water mark gets exactly-once delivery across restarts by
// resubscribing with SubscribeOptions.AfterSeq — the sequence-number
// successor of MatchDeduper.
type Delivery = dispatch.Delivery

// SubscribeOptions configures one Engine.Subscribe call.
type SubscribeOptions struct {
	// Queries filters the subscription by query name. Nil or empty
	// subscribes to every query, including queries registered after the
	// subscription (single-query engines publish under the name "").
	// A subscription with an explicit filter ends (its channel closes)
	// when the last of its named queries is removed from a fleet.
	Queries []string
	// Prefix, when non-empty, restricts the subscription to queries
	// whose name starts with it — the namespace form of Queries. It
	// follows the roster dynamically (queries registered later under
	// the prefix are delivered) and composes with Queries: when both
	// are set a delivery must pass both filters.
	Prefix string
	// Buffer is the delivery channel capacity (default 256).
	Buffer int
	// Policy is the overflow policy (default Block).
	Policy OverflowPolicy
	// AfterSeq holds per-query resume cursors: deliveries for query q
	// with Seq <= AfterSeq[q] are skipped. Use it to resume after a
	// consumer restart without re-processing matches already seen.
	AfterSeq map[string]int64
}

// SubscriptionStats is one subscription's delivery accounting.
type SubscriptionStats struct {
	// Delivered counts matches handed to the subscription's channel.
	Delivered int64
	// Dropped counts matches lost to the overflow policy. Always zero
	// under Block.
	Dropped int64
}

// Subscription is one live match consumer, attached to an engine at
// runtime by Engine.Subscribe and detached by Cancel (or by the engine
// closing, or — for filtered subscriptions on a fleet — by the last
// filtered query being removed).
type Subscription struct {
	sub *dispatch.Sub
}

// C is the delivery channel. It closes when the subscription ends;
// deliveries buffered before that remain readable. Matches received
// from C are owned by the consumer (they are clones, never scratch).
func (s *Subscription) C() <-chan Delivery { return s.sub.C() }

// Matches ranges over the subscription as (query, match) pairs — the
// iterator form of C for Go 1.23+ range-over-func consumers:
//
//	for query, m := range sub.Matches() {
//		alert(query, m)
//	}
//
// The loop ends when the subscription does. Breaking out of the loop
// cancels the subscription.
func (s *Subscription) Matches() iter.Seq2[string, *Match] {
	return func(yield func(string, *Match) bool) {
		for dv := range s.sub.C() {
			if !yield(dv.Query, dv.Match) {
				s.Cancel()
				return
			}
		}
	}
}

// Deliveries is Matches with sequence numbers: (query, delivery)
// pairs for consumers that track resume cursors.
func (s *Subscription) Deliveries() iter.Seq2[string, Delivery] {
	return func(yield func(string, Delivery) bool) {
		for dv := range s.sub.C() {
			if !yield(dv.Query, dv) {
				s.Cancel()
				return
			}
		}
	}
}

// Cancel detaches the subscription and closes its channel. Idempotent
// and safe to call concurrently with deliveries; a delivery blocked on
// this subscription's full buffer is released.
func (s *Subscription) Cancel() { s.sub.Cancel() }

// Stats returns the subscription's live delivery accounting.
func (s *Subscription) Stats() SubscriptionStats {
	st := s.sub.Stats()
	return SubscriptionStats{Delivered: st.Delivered, Dropped: st.Dropped}
}

// subscribeOn validates o and attaches a subscription to d on behalf
// of an engine's Subscribe method.
func subscribeOn(d *dispatch.Dispatcher, o SubscribeOptions) (*Subscription, error) {
	switch o.Policy {
	case Block, DropOldest, DropNewest:
	default:
		return nil, errors.Join(ErrBadOptions, errors.New("unknown overflow policy"))
	}
	if o.Buffer < 0 {
		return nil, errors.Join(ErrBadOptions, errors.New("negative subscription buffer"))
	}
	if o.Buffer == 0 {
		o.Buffer = 256
	}
	sub := d.Subscribe(dispatch.Options{
		Queries:  o.Queries,
		Prefix:   o.Prefix,
		Buffer:   o.Buffer,
		Policy:   o.Policy,
		AfterSeq: o.AfterSeq,
	})
	if sub == nil {
		return nil, ErrClosed
	}
	return &Subscription{sub: sub}, nil
}

// configSink folds Config's synchronous delivery hooks (OnMatch,
// OnDelivery) into one dispatcher fn-subscription, or nil if neither
// is set.
func configSink(cfg Config) func(Delivery) {
	om, od := cfg.OnMatch, cfg.OnDelivery
	if om == nil && od == nil {
		return nil
	}
	return func(dv Delivery) {
		if om != nil {
			om(dv.Query, dv.Match)
		}
		if od != nil {
			od(dv)
		}
	}
}

// matchSink adapts a bare func(*Match) (the deprecated façades'
// callback shape) to a dispatcher fn-subscription.
func matchSink(onMatch func(*Match)) func(Delivery) {
	if onMatch == nil {
		return nil
	}
	return func(dv Delivery) { onMatch(dv.Match) }
}

// MatchChannel adapts the callback-based OnMatch delivery to a channel,
// for consumers structured around select loops or pipelines. The
// returned callback applies backpressure: when the buffer is full it
// blocks the engine until the consumer catches up, so no match is ever
// dropped before done is called. Call done after the final Feed (and
// Close, in concurrent mode); it closes the channel and returns how
// many late callback invocations were discarded. A callback invoked
// after done is a counted no-op — it no longer panics.
//
// Deprecated: use Engine.Subscribe, which attaches and detaches at
// runtime, filters by query, and offers non-blocking overflow policies
// (SubscribeOptions.Policy). MatchChannel is equivalent to a Block
// subscription fixed at Open time.
func MatchChannel(buffer int) (onMatch func(*Match), matches <-chan *Match, done func() int64) {
	if buffer < 0 {
		buffer = 0
	}
	ch := make(chan *Match, buffer)
	var (
		mu      sync.Mutex
		closed  bool
		dropped int64
	)
	onMatch = func(m *Match) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			dropped++
			return
		}
		// MatchChannel is the deprecated fixed Block subscription: the
		// send deliberately blocks under the closure's private mutex so
		// a concurrent done() cannot close the channel mid-send.
		//tsvet:allow lockhold — Block semantics; mu only fences close(ch) vs send
		ch <- m
	}
	done = func() int64 {
		mu.Lock()
		defer mu.Unlock()
		if !closed {
			closed = true
			close(ch)
		}
		return dropped
	}
	return onMatch, ch, done
}

// MatchDeduper suppresses duplicate match reports. A durable engine
// delivers at-least-once across a crash: matches completed after the
// last checkpoint may be re-reported during recovery replay. Wrapping
// the consumer with a deduper restores exactly-once delivery for the
// retained horizon:
//
//	dedup := timingsubg.NewMatchDeduper(1 << 16)
//	cfg.OnMatch = func(query string, m *timingsubg.Match) {
//		if dedup.SeenFor(query, m) {
//			return
//		}
//		alert(query, m)
//	}
//
// The deduper remembers the most recent `capacity` distinct matches
// (FIFO eviction). Capacity must exceed the number of matches a
// recovery replay can re-deliver — matches completed since the last
// checkpoint — which CheckpointEvery bounds.
//
// Identity is the query name plus the vector of data-edge IDs bound to
// the query edges. Edge IDs are WAL sequence numbers in durable mode,
// so identity is stable across restarts. One deduper may serve a whole
// fleet through SeenFor; the legacy Seen ties the deduper to a single
// query.
//
// Deprecated: subscription sequence numbers subsume content-identity
// dedup — they are stable across restarts by construction, need no
// capacity tuning, and resume with a single integer per query (see
// Delivery and SubscribeOptions.AfterSeq).
type MatchDeduper struct {
	capacity int
	seen     map[string]struct{}
	order    []string
	head     int
}

// NewMatchDeduper returns a deduper remembering up to capacity matches.
func NewMatchDeduper(capacity int) *MatchDeduper {
	if capacity < 1 {
		capacity = 1
	}
	return &MatchDeduper{
		capacity: capacity,
		seen:     make(map[string]struct{}, capacity),
		order:    make([]string, 0, capacity),
	}
}

// SeenFor records query's match m and reports whether that (query,
// match) pair was already recorded. Two fleet queries binding the same
// data edges are distinct entries — the identity is scoped by query
// name, so one deduper safely serves a whole fleet. Not safe for
// concurrent use; call from the (serialized) match callback.
func (d *MatchDeduper) SeenFor(query string, m *Match) bool {
	key := dedupKey(query, m)
	if _, dup := d.seen[key]; dup {
		return true
	}
	if len(d.order) < d.capacity {
		d.order = append(d.order, key)
	} else {
		delete(d.seen, d.order[d.head])
		d.order[d.head] = key
		d.head = (d.head + 1) % d.capacity
	}
	d.seen[key] = struct{}{}
	return false
}

// Seen is SeenFor with an empty query name — the single-query form.
// Matches of different queries recorded through Seen collide when they
// bind the same data edges; fleet consumers must use SeenFor.
func (d *MatchDeduper) Seen(m *Match) bool { return d.SeenFor("", m) }

// Len returns how many distinct matches are currently remembered.
func (d *MatchDeduper) Len() int { return len(d.order) }

// dedupKey scopes the edge-ID identity by query name. The name is
// length-prefixed so no (name, IDs) pair can alias another.
func dedupKey(query string, m *Match) string {
	b := make([]byte, 0, len(query)+8+8*len(m.Edges))
	b = strconv.AppendInt(b, int64(len(query)), 10)
	b = append(b, ':')
	b = append(b, query...)
	for _, e := range m.Edges {
		id := uint64(e.ID)
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
			byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	}
	return string(b)
}
