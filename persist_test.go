package timingsubg

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// persistTestQuery builds a small 3-edge TC query over labels a,b,c,d:
// a→b (ε1), b→c (ε2), c→d (ε3) with ε1 ≺ ε2 ≺ ε3.
func persistTestQuery(t testing.TB, labels *Labels) *Query {
	t.Helper()
	b := NewQueryBuilder()
	va := b.AddVertex(labels.Intern("a"))
	vb := b.AddVertex(labels.Intern("b"))
	vc := b.AddVertex(labels.Intern("c"))
	vd := b.AddVertex(labels.Intern("d"))
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	e3 := b.AddEdge(vc, vd)
	b.Before(e1, e2)
	b.Before(e2, e3)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// persistTestStream generates a deterministic random stream that
// produces a healthy mix of matches, partial matches, and discardable
// edges for the 3-edge chain query.
func persistTestStream(labels *Labels, n int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	lab := []Label{labels.Intern("a"), labels.Intern("b"), labels.Intern("c"), labels.Intern("d")}
	// Each vertex has a fixed label determined by its ID (paper model:
	// vertex labels are properties of the vertex).
	labelOf := func(v VertexID) Label { return lab[int(v)%4] }
	var out []Edge
	for i := 0; i < n; i++ {
		from := VertexID(rng.Intn(12))
		to := VertexID(rng.Intn(12))
		if to == from {
			to = (to + 1) % 12
		}
		out = append(out, Edge{
			From:      from,
			To:        to,
			FromLabel: labelOf(from),
			ToLabel:   labelOf(to),
			Time:      Timestamp(i + 1),
		})
	}
	return out
}

// matchKey canonically identifies a match by its sorted edge-ID set.
func matchKey(m *Match) string {
	ids := make([]int64, 0, 8)
	for _, e := range m.Edges {
		ids = append(ids, int64(e.ID))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return fmt.Sprint(ids)
}

// runPlain runs a non-durable searcher over edges and returns the set
// of reported match keys.
func runPlain(t testing.TB, q *Query, window Timestamp, edges []Edge) map[string]bool {
	t.Helper()
	got := map[string]bool{}
	s, err := NewSearcher(q, Options{Window: window, OnMatch: func(m *Match) { got[matchKey(m)] = true }})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if _, err := s.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	return got
}

func TestPersistentColdStartMatchesPlain(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 400, 1)
	want := runPlain(t, q, 50, edges)
	if len(want) == 0 {
		t.Fatal("reference run found no matches; test stream too sparse")
	}

	got := map[string]bool{}
	ps, err := OpenPersistent(q, PersistentOptions{
		Options: Options{Window: 50, OnMatch: func(m *Match) { got[matchKey(m)] = true }},
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("persistent found %d matches, plain found %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing match %s", k)
		}
	}
}

// TestCrashRecoveryEquivalence is the central durability property: for
// random crash points, (run prefix; crash; recover; run suffix) reports
// the same total match set as one uninterrupted run, and never
// re-reports a checkpointed match.
func TestCrashRecoveryEquivalence(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	const n = 300
	edges := persistTestStream(labels, n, 2)
	want := runPlain(t, q, 40, edges)

	for _, cut := range []int{0, 1, 37, 150, 299, 300} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			got := map[string]bool{}
			dups := 0
			onMatch := func(m *Match) {
				k := matchKey(m)
				if got[k] {
					dups++
				}
				got[k] = true
			}

			ps, err := OpenPersistent(q, PersistentOptions{
				Options:         Options{Window: 40, OnMatch: onMatch},
				Dir:             dir,
				CheckpointEvery: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges[:cut] {
				if _, err := ps.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			// Simulate a crash: abandon ps without Close (the WAL file
			// is still OS-buffered but this process wrote it, so the
			// bytes are visible to the reopened log).
			preCrash := ps.MatchCount()
			ps.log.Close()

			ps2, err := OpenPersistent(q, PersistentOptions{
				Options:         Options{Window: 40, OnMatch: onMatch},
				Dir:             dir,
				CheckpointEvery: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ps2.MatchCount() != preCrash {
				t.Fatalf("recovered MatchCount %d, want %d", ps2.MatchCount(), preCrash)
			}
			for _, e := range edges[cut:] {
				if _, err := ps2.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			if err := ps2.Close(); err != nil {
				t.Fatal(err)
			}

			if len(got) != len(want) {
				t.Fatalf("crash at %d: got %d distinct matches, want %d", cut, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("crash at %d: missing match %s", cut, k)
				}
			}
			// Matches inside a checkpoint must not be re-reported; only
			// the replayed suffix may duplicate.
			if int64(dups) > ps2.Replayed() {
				t.Fatalf("crash at %d: %d duplicate reports exceed %d replayed edges", cut, dups, ps2.Replayed())
			}
		})
	}
}

// TestRecoveryRepeatedRestarts opens/feeds/closes the same directory
// several times; counters and match totals must accumulate across runs
// exactly as an uninterrupted run would produce.
func TestRecoveryRepeatedRestarts(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	const n = 400
	edges := persistTestStream(labels, n, 3)
	want := runPlain(t, q, 60, edges)

	dir := t.TempDir()
	got := map[string]bool{}
	chunk := n / 5
	var final int64
	for run := 0; run < 5; run++ {
		ps, err := OpenPersistent(q, PersistentOptions{
			Options:         Options{Window: 60, OnMatch: func(m *Match) { got[matchKey(m)] = true }},
			Dir:             dir,
			CheckpointEvery: 50,
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for _, e := range edges[run*chunk : (run+1)*chunk] {
			if _, err := ps.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		final = ps.MatchCount()
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct matches, want %d", len(got), len(want))
	}
	if final != int64(len(want)) {
		t.Fatalf("durable MatchCount %d, want %d", final, len(want))
	}
}

func TestPersistentRejectsBadOptions(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	cases := []PersistentOptions{
		{Options: Options{Window: 10, Workers: 2}, Dir: t.TempDir()},
		{Options: Options{Window: 10}},                  // no dir
		{Options: Options{Window: 0}, Dir: t.TempDir()}, // no window
	}
	for i, opts := range cases {
		if _, err := OpenPersistent(q, opts); err == nil {
			t.Fatalf("case %d: bad options accepted", i)
		}
	}
}

func TestPersistentWindowMismatchRejected(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	dir := t.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{Options: Options{Window: 10}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range persistTestStream(labels, 20, 4) {
		_ = i
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPersistent(q, PersistentOptions{Options: Options{Window: 20}, Dir: dir}); err == nil {
		t.Fatal("window mismatch accepted")
	}
}

// TestRecoveryWithLostWALTail simulates fsync-disabled data loss: the
// checkpoint is ahead of a truncated WAL. Recovery must still come up
// consistently at the checkpoint cursor and accept new edges.
func TestRecoveryWithLostWALTail(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 200, 5)
	dir := t.TempDir()

	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 40},
		Dir:             dir,
		CheckpointEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	// Force a checkpoint, then chop the WAL back hard (lose everything
	// after the last full segment header — simulate lost tail).
	if err := ps.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ps.log.Close()
	// Remove all WAL segments entirely: the checkpoint alone must carry
	// recovery.
	matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	for _, m := range matches {
		os.Remove(m)
	}

	ps2, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 40},
		Dir:             dir,
		CheckpointEvery: 64,
	})
	if err != nil {
		t.Fatalf("recovery with lost WAL: %v", err)
	}
	if ps2.InWindow() == 0 {
		t.Fatal("recovered window is empty")
	}
	// Feeding must continue with aligned IDs.
	next := edges[len(edges)-1]
	next.Time++
	id, err := ps2.Feed(next)
	if err != nil {
		t.Fatal(err)
	}
	if int64(id) != 200 {
		t.Fatalf("post-recovery edge ID %d, want 200", id)
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentStateAccessors(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	ps, err := OpenPersistent(q, PersistentOptions{
		Options: Options{Window: 30},
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range persistTestStream(labels, 100, 6) {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if ps.InWindow() == 0 {
		t.Fatal("InWindow = 0")
	}
	if ps.SpaceBytes() < 0 {
		t.Fatal("negative space")
	}
	if ps.PartialMatches() < 0 {
		t.Fatal("negative partials")
	}
	n := 0
	ps.CurrentMatches(func(*Match) bool { n++; return true })
	if n != ps.CurrentMatchCount() {
		t.Fatalf("CurrentMatches enumerated %d, count says %d", n, ps.CurrentMatchCount())
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Feed(Edge{Time: 1000}); err == nil {
		t.Fatal("feed after close accepted")
	}
}
