// Benchmarks regenerating the paper's evaluation (Section VII), one
// Benchmark per figure. Each sub-benchmark measures one cell of the
// figure (dataset × method at a representative setting); the full sweeps
// with every window/query size are produced by cmd/experiments, which
// prints the same rows/series the paper plots. EXPERIMENTS.md records
// the measured shapes.
package timingsubg

import (
	"fmt"
	"math/rand"
	"testing"

	"timingsubg/internal/bench"
	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// benchStream materializes a dataset stream and a query for benchmarks.
func benchStream(b *testing.B, ds datagen.Dataset, n, qsize int, kind querygen.OrderKind) ([]graph.Edge, *query.Query) {
	b.Helper()
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: 300, Seed: 42})
	edges := gen.Take(n)
	// Query seeds are vetted per dataset: random-walk queries over the
	// SocialStream's hub-heavy regions can be combinatorially explosive
	// (tens of millions of matches within a few thousand edges — the
	// benchmark binary gets OOM-killed as b.N grows), which measures the
	// workload's degeneracy rather than the engines. Seed 13 keeps the
	// SocialStream query in the selectivity regime the paper reports;
	// cmd/experiments sweeps many queries per setting with run budgets
	// and covers the heavy tail there instead.
	seed := int64(7)
	if ds == datagen.SocialStream {
		seed = 13
	}
	q, _, err := querygen.Generate(edges[:n/3], querygen.Config{Size: qsize, Order: kind, Seed: seed})
	if err != nil {
		b.Skipf("query generation: %v", err)
	}
	return edges, q
}

// driveN feeds exactly n edges from a fresh generator through the
// matcher and returns the match count.
func driveN(b *testing.B, m bench.Matcher, ds datagen.Dataset, n int, window graph.Timestamp) {
	b.Helper()
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: 300, Seed: 42})
	st := graph.NewStream(window)
	for i := 0; i < n; i++ {
		stored, expired, err := st.Push(gen.Next())
		if err != nil {
			b.Fatal(err)
		}
		m.Process(stored, expired)
	}
}

// BenchmarkFig15 — throughput per method at the default window (the
// window-size sweep is cmd/experiments -fig 15). ns/op is per stream
// edge, so throughput = 1e9/ns-op edges/sec.
func BenchmarkFig15(b *testing.B) {
	const window = 3000
	for _, ds := range datagen.Datasets() {
		_, q := benchStream(b, ds, 3000, 6, querygen.RandomOrder)
		for _, m := range bench.Methods() {
			b.Run(fmt.Sprintf("%s/%s", ds, m), func(b *testing.B) {
				matcher := bench.NewMatcher(m, q)
				b.ResetTimer()
				driveN(b, matcher, ds, b.N, window)
			})
		}
	}
}

// BenchmarkFig16 — throughput per method across query sizes on one
// dataset (full sweep: cmd/experiments -fig 16).
func BenchmarkFig16(b *testing.B) {
	const window = 3000
	ds := datagen.WikiTalk
	for _, size := range []int{6, 12, 18} {
		_, q := benchStream(b, ds, 3000, size, querygen.RandomOrder)
		for _, m := range bench.Methods() {
			b.Run(fmt.Sprintf("size%d/%s", size, m), func(b *testing.B) {
				matcher := bench.NewMatcher(m, q)
				b.ResetTimer()
				driveN(b, matcher, ds, b.N, window)
			})
		}
	}
}

// BenchmarkFig17 — average space per method at the default window,
// reported as the bytes metric (full sweep: cmd/experiments -fig 17).
func BenchmarkFig17(b *testing.B) {
	const window, streamLen = 2000, 3000
	for _, ds := range datagen.Datasets() {
		edges, q := benchStream(b, ds, streamLen, 6, querygen.RandomOrder)
		for _, m := range bench.Methods() {
			b.Run(fmt.Sprintf("%s/%s", ds, m), func(b *testing.B) {
				var space int64
				for i := 0; i < b.N; i++ {
					r := bench.Run(bench.NewMatcher(m, q), edges, window)
					space = r.AvgSpace
				}
				b.ReportMetric(float64(space), "avg-bytes")
			})
		}
	}
}

// BenchmarkFig18 — space across query sizes (full sweep: -fig 18).
func BenchmarkFig18(b *testing.B) {
	const window, streamLen = 2000, 3000
	ds := datagen.SocialStream
	for _, size := range []int{6, 12, 18} {
		edges, q := benchStream(b, ds, streamLen, size, querygen.RandomOrder)
		for _, m := range bench.Methods() {
			b.Run(fmt.Sprintf("size%d/%s", size, m), func(b *testing.B) {
				var space int64
				for i := 0; i < b.N; i++ {
					r := bench.Run(bench.NewMatcher(m, q), edges, window)
					space = r.AvgSpace
				}
				b.ReportMetric(float64(space), "avg-bytes")
			})
		}
	}
}

// BenchmarkFig19 — concurrent execution wall time per scheme and worker
// count at the default window; speedup = time(workers=1)/time(workers=N)
// (full sweep: -fig 19). On a single-CPU host speedups are bounded by
// the hardware, as EXPERIMENTS.md documents.
func BenchmarkFig19(b *testing.B) {
	const window, streamLen = 2000, 3000
	ds := datagen.NetworkFlow
	edges, q := benchStream(b, ds, streamLen, 6, querygen.RandomOrder)
	for _, scheme := range []core.LockScheme{core.FineGrained, core.AllLocks} {
		name := "Timing"
		if scheme == core.AllLocks {
			name = "All-locks"
		}
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s-%d", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.RunParallel(q, scheme, workers, edges, window)
				}
			})
		}
	}
}

// BenchmarkFig20 — concurrency across query sizes (full sweep: -fig 20).
func BenchmarkFig20(b *testing.B) {
	const window, streamLen = 2000, 3000
	ds := datagen.WikiTalk
	for _, size := range []int{6, 12} {
		edges, q := benchStream(b, ds, streamLen, size, querygen.RandomOrder)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("size%d/Timing-%d", size, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench.RunParallel(q, core.FineGrained, workers, edges, window)
				}
			})
		}
	}
}

// BenchmarkFig21 — the optimization ablation: cost-model decomposition +
// joint-number join order (Timing) vs randomized variants (full tables:
// -fig 21).
func BenchmarkFig21(b *testing.B) {
	const window, streamLen = 2000, 3000
	ds := datagen.WikiTalk
	edges, q := benchStream(b, ds, streamLen, 6, querygen.RandomOrder)
	variants := []struct {
		name string
		mk   func() *query.Decomposition
	}{
		{"Timing", func() *query.Decomposition { return query.Decompose(q) }},
		{"Timing-RJ", func() *query.Decomposition { return query.DecomposeOrdered(q, rand.New(rand.NewSource(1))) }},
		{"Timing-RD", func() *query.Decomposition { return query.DecomposeRandom(q, rand.New(rand.NewSource(2)), nil) }},
		{"Timing-RDJ", func() *query.Decomposition {
			r := rand.New(rand.NewSource(3))
			return query.DecomposeRandom(q, r, r)
		}},
	}
	for _, v := range variants {
		name, mk := v.name, v.mk
		b.Run(name, func(b *testing.B) {
			dec := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.Run(bench.NewTimingMatcher(q, dec), edges, window)
			}
		})
	}
}

// BenchmarkFig23 — throughput over decomposition size k (full sweep:
// -fig 23/24; space is reported alongside as a metric, covering Fig 24).
func BenchmarkFig23(b *testing.B) {
	const window, streamLen = 2000, 2500
	ds := datagen.WikiTalk
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: 300, Seed: 42})
	edges := gen.Take(streamLen)
	for _, k := range []int{1, 3, 6} {
		q, _, err := querygen.GenerateWithK(edges[:1200], 6, k, 11)
		if err != nil {
			b.Logf("k=%d: %v", k, err)
			continue
		}
		b.Run(fmt.Sprintf("k%d/Timing", k), func(b *testing.B) {
			var space int64
			for i := 0; i < b.N; i++ {
				r := bench.Run(bench.NewMatcher(bench.Timing, q), edges, window)
				space = r.AvgSpace
			}
			b.ReportMetric(float64(space), "avg-bytes")
		})
	}
}

// BenchmarkFig25 — selectivity: the answer count of the generated query
// sets (full tables: -fig 25).
func BenchmarkFig25(b *testing.B) {
	const window, streamLen = 2000, 3000
	for _, ds := range datagen.Datasets() {
		edges, q := benchStream(b, ds, streamLen, 6, querygen.RandomOrder)
		b.Run(ds.String(), func(b *testing.B) {
			var matches int64
			for i := 0; i < b.N; i++ {
				r := bench.Run(bench.NewMatcher(bench.Timing, q), edges, window)
				matches = r.Matches
			}
			b.ReportMetric(float64(matches), "answers")
		})
	}
}

// BenchmarkCoreInsert isolates the per-edge insert path of the Timing
// engine (microbenchmark backing the Theorem 3 discussion).
func BenchmarkCoreInsert(b *testing.B) {
	ds := datagen.NetworkFlow
	_, q := benchStream(b, ds, 2000, 6, querygen.RandomOrder)
	matcher := bench.NewMatcher(bench.Timing, q)
	b.ResetTimer()
	driveN(b, matcher, ds, b.N, 2000)
}
