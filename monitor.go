package timingsubg

import (
	"net/http"

	"timingsubg/internal/monitor"
)

// MetricsRegistry collects named live metrics and serves them over
// HTTP as JSON. See NewMetricsRegistry.
type MetricsRegistry = monitor.Registry

// NewMetricsRegistry returns an empty metrics registry. Register
// engines into it and mount its Handler:
//
//	reg := timingsubg.NewMetricsRegistry()
//	timingsubg.RegisterMetrics(reg, "cc_attack", eng)
//	http.Handle("/metrics", reg.Handler())
//
// GET /metrics returns every metric; GET /metrics?metric=<name> one.
func NewMetricsRegistry() *MetricsRegistry { return monitor.NewRegistry() }

// MetricsHandler is a convenience for a registry-backed http.Handler.
func MetricsHandler(r *MetricsRegistry) http.Handler { return r.Handler() }

// statsSource lets gauges sample a fleet member by name, so a gauge
// never pins a retired engine or reports a recycled name's counters.
// fast selects the counter-only snapshot.
type statsSource interface {
	queryStats(name string, fast bool) (Stats, bool)
}

// fastStatser is the counter-only snapshot fast path: everything in
// Stats except the fields that walk partial-match state.
type fastStatser interface {
	statsFast() Stats
}

// FastStats returns eng's counter-only snapshot: Stats with the fields
// that walk partial-match state (PartialMatches, SpaceBytes) left
// zero. It is the cheap sampler for frequently-scraped gauges; engines
// that do not implement the fast path fall back to the full Stats.
func FastStats(eng Engine) Stats {
	if fs, ok := eng.(fastStatser); ok {
		return fs.statsFast()
	}
	return eng.Stats()
}

// subscriptionCounterer reads the results-plane counters straight off
// the engine's dispatcher — no roster walk, no shard locks.
type subscriptionCounterer interface {
	subscriptionCounters() (subs int, delivered, dropped int64)
}

// SubscriptionCounters reports eng's live results-plane accounting —
// attached subscriptions, deliveries buffered, deliveries dropped by
// overflow policies — without taking a stats snapshot. It is the
// cheap sampler for frequently-scraped delivery gauges; engines that
// do not implement the fast path fall back to FastStats.
func SubscriptionCounters(eng Engine) (subs int, delivered, dropped int64) {
	if sc, ok := eng.(subscriptionCounterer); ok {
		return sc.subscriptionCounters()
	}
	st := FastStats(eng)
	return st.Subscriptions, st.SubscriptionDelivered, st.SubscriptionDropped
}

// scalarStatser is the cheapest sampler: FastStats without
// materializing the per-member Queries map.
type scalarStatser interface {
	statsScalar() Stats
}

// scalarStats samples one scalar-gauge snapshot as cheaply as eng
// allows.
func scalarStats(eng Engine) Stats {
	if ss, ok := eng.(scalarStatser); ok {
		return ss.statsScalar()
	}
	return FastStats(eng)
}

// cheapGauges maps metric names to counter-only Stats fields — safe to
// sample per gauge, per scrape. Every engine gets the base set;
// composition-specific gauges are added by capability, read off the
// self-describing snapshot.
func cheapGauges(st Stats) map[string]func(Stats) any {
	gauges := map[string]func(Stats) any{
		"matches":         func(s Stats) any { return s.Matches },
		"discarded":       func(s Stats) any { return s.Discarded },
		"window_edges":    func(s Stats) any { return s.InWindow },
		"join_scanned":    func(s Stats) any { return s.JoinScanned },
		"join_candidates": func(s Stats) any { return s.JoinCandidates },
		"expiry_batches":  func(s Stats) any { return s.ExpiryBatches },
		"expiry_evicted":  func(s Stats) any { return s.ExpiryEvicted },
	}
	if !st.Fleet {
		gauges["decomposition_k"] = func(s Stats) any { return s.K }
	}
	if st.Adaptive {
		gauges["reoptimizations"] = func(s Stats) any { return s.Reoptimizations }
	}
	if st.Durable {
		gauges["wal_seq"] = func(s Stats) any { return s.WALSeq }
		gauges["wal_syncs"] = func(s Stats) any { return s.WALSyncs }
		gauges["replayed"] = func(s Stats) any { return s.Replayed }
	}
	if st.Detection != nil {
		gauges["detection_p99_ns"] = func(s Stats) any {
			if s.Detection == nil {
				return int64(0)
			}
			return int64(s.Detection.P99)
		}
	}
	if st.WatermarkLagNs != 0 || st.Detection != nil {
		gauges["watermark_lag_ns"] = func(s Stats) any { return s.WatermarkLagNs }
	}
	return gauges
}

// walkGauges maps metric names to the Stats fields that walk
// partial-match state (one walk per sample — keep these few).
func walkGauges() map[string]func(Stats) any {
	return map[string]func(Stats) any{
		"partial_matches": func(s Stats) any { return s.PartialMatches },
		"space_bytes":     func(s Stats) any { return s.SpaceBytes },
	}
}

// RegisterMetrics registers eng's live counters under prefix.<metric>,
// generically from its unified Stats snapshot — one registration path
// for every engine composition. Fleets additionally get
// prefix.<query-name>.<metric> per query live at registration time
// (gauges resolve the query by name at sample time, so a retired query
// reports zero; queries added after registration are not picked up — a
// dynamic serving layer should sample Stats directly) plus
// prefix.routed_fraction and prefix.space_bytes_total aggregates.
// Counter gauges are safe to sample while edges are being fed.
func RegisterMetrics(r *MetricsRegistry, prefix string, eng Engine) error {
	fast := func() Stats { return scalarStats(eng) }
	st := fast()
	for name, field := range cheapGauges(st) {
		field := field
		if err := r.Register(prefix+"."+name, func() any { return field(fast()) }); err != nil {
			return err
		}
	}
	if st.Stages != nil {
		// The whole per-stage latency breakdown as one structured gauge:
		// the JSON registry serves nested histogram summaries without a
		// metric name per quantile.
		if err := r.Register(prefix+".stages", func() any { return fast().Stages }); err != nil {
			return err
		}
	}
	if !st.Fleet {
		// Fleets get per-member walk gauges plus a space_bytes_total
		// aggregate below; a fleet-level copy of each walking gauge
		// would double the partial-match walks per scrape.
		for name, field := range walkGauges() {
			field := field
			if err := r.Register(prefix+"."+name, func() any { return field(eng.Stats()) }); err != nil {
				return err
			}
		}
		return nil
	}
	fl, ok := eng.(Fleet)
	if !ok {
		return nil
	}
	src, _ := eng.(statsSource)
	for _, name := range fl.Names() {
		name := name
		sample := func(fastSample bool) Stats {
			if src == nil {
				return eng.Stats().Queries[name]
			}
			qs, _ := src.queryStats(name, fastSample)
			return qs
		}
		// Per-member snapshots are never fleets, so probe with a
		// non-fleet snapshot to get the single-engine gauge set.
		probe := sample(true)
		for metric, field := range cheapGauges(probe) {
			field := field
			if err := r.Register(prefix+"."+name+"."+metric, func() any { return field(sample(true)) }); err != nil {
				return err
			}
		}
		for metric, field := range walkGauges() {
			field := field
			if err := r.Register(prefix+"."+name+"."+metric, func() any { return field(sample(false)) }); err != nil {
				return err
			}
		}
	}
	if err := r.Register(prefix+".space_bytes_total", func() any { return eng.Stats().SpaceBytes }); err != nil {
		return err
	}
	return r.Register(prefix+".routed_fraction", func() any { return fast().RoutedFraction })
}

// RegisterMetrics registers this searcher's live counters under
// prefix.<metric>.
//
// Deprecated: use the package-level RegisterMetrics.
func (s *Searcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	return RegisterMetrics(r, prefix, s.en)
}

// RegisterMetrics registers per-query counters for every query
// currently in the fleet plus fleet-level aggregates.
//
// Deprecated: use the package-level RegisterMetrics.
func (ms *MultiSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	return RegisterMetrics(r, prefix, ms.fl)
}

// RegisterMetrics registers the durable searcher's counters, including
// recovery and checkpoint state.
//
// Deprecated: use the package-level RegisterMetrics.
func (ps *PersistentSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	return RegisterMetrics(r, prefix, ps.en)
}

// RegisterMetrics registers the durable fleet's counters: per-query
// gauges plus the shared WAL cursor and replay count.
//
// Deprecated: use the package-level RegisterMetrics.
func (pm *PersistentMultiSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	return RegisterMetrics(r, prefix, pm.fl)
}

// RegisterMetrics registers the adaptive searcher's counters, including
// the reoptimization count.
//
// Deprecated: use the package-level RegisterMetrics.
func (a *AdaptiveSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	return RegisterMetrics(r, prefix, a.en)
}
