package timingsubg

import (
	"net/http"

	"timingsubg/internal/monitor"
)

// MetricsRegistry collects named live metrics and serves them over
// HTTP as JSON. See NewMetricsRegistry.
type MetricsRegistry = monitor.Registry

// NewMetricsRegistry returns an empty metrics registry. Register
// searchers into it and mount its Handler:
//
//	reg := timingsubg.NewMetricsRegistry()
//	s.RegisterMetrics(reg, "cc_attack")
//	http.Handle("/metrics", reg.Handler())
//
// GET /metrics returns every metric; GET /metrics?metric=<name> one.
func NewMetricsRegistry() *MetricsRegistry { return monitor.NewRegistry() }

// MetricsHandler is a convenience for a registry-backed http.Handler.
func MetricsHandler(r *MetricsRegistry) http.Handler { return r.Handler() }

// RegisterMetrics registers this searcher's live counters under
// prefix.<metric>. Counter reads are atomic, so sampling is safe while
// edges are being fed (concurrent mode included).
func (s *Searcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	metrics := map[string]func() any{
		"matches":         func() any { return s.MatchCount() },
		"discarded":       func() any { return s.Discarded() },
		"partial_matches": func() any { return s.PartialMatches() },
		"space_bytes":     func() any { return s.SpaceBytes() },
		"window_edges":    func() any { return s.InWindow() },
		"decomposition_k": func() any { return s.K() },
	}
	for name, fn := range metrics {
		if err := r.Register(prefix+"."+name, fn); err != nil {
			return err
		}
	}
	return nil
}

// RegisterMetrics registers per-query counters for every query
// currently in the fleet (prefix.<query-name>.<metric>) plus
// fleet-level aggregates. Gauges resolve the query by name at sample
// time, so one that is retired reports zero (and its engine is not
// pinned); queries added after registration are not picked up — a
// dynamic serving layer should sample MatchCounts instead.
func (ms *MultiSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	metrics := map[string]func(*Searcher) any{
		"matches":         func(s *Searcher) any { return s.MatchCount() },
		"discarded":       func(s *Searcher) any { return s.Discarded() },
		"partial_matches": func(s *Searcher) any { return s.PartialMatches() },
		"space_bytes":     func(s *Searcher) any { return s.SpaceBytes() },
		"window_edges":    func(s *Searcher) any { return s.InWindow() },
		"decomposition_k": func(s *Searcher) any { return s.K() },
	}
	for _, name := range ms.Names() {
		for metric, f := range metrics {
			name, f := name, f
			if err := r.Register(prefix+"."+name+"."+metric, func() any { return ms.sample(name, f) }); err != nil {
				return err
			}
		}
	}
	if err := r.Register(prefix+".space_bytes_total", func() any { return ms.SpaceBytes() }); err != nil {
		return err
	}
	return r.Register(prefix+".routed_fraction", func() any { return ms.RoutedFraction() })
}

// RegisterMetrics registers the durable searcher's counters, including
// recovery and checkpoint state.
func (ps *PersistentSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	metrics := map[string]func() any{
		"matches":         func() any { return ps.MatchCount() },
		"discarded":       func() any { return ps.Discarded() },
		"partial_matches": func() any { return ps.PartialMatches() },
		"space_bytes":     func() any { return ps.SpaceBytes() },
		"window_edges":    func() any { return ps.InWindow() },
		"wal_seq":         func() any { return ps.log.Seq() },
		"replayed":        func() any { return ps.Replayed() },
	}
	for name, fn := range metrics {
		if err := r.Register(prefix+"."+name, fn); err != nil {
			return err
		}
	}
	return nil
}

// RegisterMetrics registers the durable fleet's counters: per-query
// match totals plus the shared WAL cursor and replay count.
func (pm *PersistentMultiSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	// Gauges are keyed by name, not slot, and sample through the locked
	// accessor: slots may be retired and recycled under a dynamic fleet
	// while the registry samples concurrently.
	for _, name := range pm.Names() {
		name := name
		if err := r.Register(prefix+"."+name+".matches", func() any { return pm.MatchCount(name) }); err != nil {
			return err
		}
	}
	if err := r.Register(prefix+".wal_seq", func() any { return pm.WALSeq() }); err != nil {
		return err
	}
	if err := r.Register(prefix+".replayed", func() any { return pm.Replayed() }); err != nil {
		return err
	}
	return r.Register(prefix+".space_bytes_total", func() any { return pm.SpaceBytes() })
}

// RegisterMetrics registers the adaptive searcher's counters, including
// the reoptimization count.
func (a *AdaptiveSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) error {
	metrics := map[string]func() any{
		"matches":         func() any { return a.MatchCount() },
		"discarded":       func() any { return a.Discarded() },
		"partial_matches": func() any { return a.PartialMatches() },
		"space_bytes":     func() any { return a.SpaceBytes() },
		"window_edges":    func() any { return a.InWindow() },
		"decomposition_k": func() any { return a.K() },
		"reoptimizations": func() any { return a.Reoptimizations() },
	}
	for name, fn := range metrics {
		if err := r.Register(prefix+"."+name, fn); err != nil {
			return err
		}
	}
	return nil
}
