package timingsubg

import (
	"time"

	"timingsubg/internal/wal"
)

// PersistentMultiOptions configures a PersistentMultiSearcher.
//
// Deprecated: set Config.Durable and call Open.
type PersistentMultiOptions struct {
	// Dir is the durability directory. The edge log is shared by all
	// queries (one WAL append per edge, not per query); each query
	// keeps its own checkpoints under Dir/ck/<name>/.
	Dir string
	// CheckpointEvery writes per-query checkpoints after every n fed
	// edges. Zero means 4096.
	CheckpointEvery int
	// SyncEvery fsyncs the WAL after every n appends (zero disables).
	SyncEvery int
	// SyncInterval runs a background WAL group commit at this period
	// (see Durability.SyncInterval); zero disables.
	SyncInterval time.Duration
	// SegmentBytes sets the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

func (o PersistentMultiOptions) durability() *Durability {
	return &Durability{
		Dir:             o.Dir,
		CheckpointEvery: o.CheckpointEvery,
		SyncEvery:       o.SyncEvery,
		SyncInterval:    o.SyncInterval,
		SegmentBytes:    o.SegmentBytes,
	}
}

// PersistentMultiSearcher is a durable fleet: several continuous
// queries over one shared write-ahead log, each recovering
// independently from its own checkpoint plus the shared log suffix.
//
// Queries added to an existing directory (a name with no checkpoint)
// join from the oldest retained log record: history reclaimed by
// earlier checkpoints is gone, exactly as a newly deployed pattern
// cannot see traffic that predates its deployment.
//
// Feed, AddQuery, RemoveQuery, Checkpoint and Close must be serialized
// by the caller; the read accessors (MatchCounts, Names, HasQuery,
// SpaceBytes) may run concurrently with them.
//
// Delivery is at-least-once for post-checkpoint matches, per query
// (use MatchDeduper.SeenFor — or, on the unified engine, subscription
// sequence numbers — for exactly-once).
//
// Deprecated: PersistentMultiSearcher is a thin shim over the unified
// fleet engine. Use Open with Config{Queries: specs, Durable:
// &Durability{...}} — which also composes with routing and per-member
// adaptivity, combinations this façade cannot express.
type PersistentMultiSearcher struct {
	fl  *fleetEngine
	log *wal.Log // kept for test/diagnostic access to the live WAL
}

// OpenPersistentMulti opens (or creates) a durable fleet in opts.Dir.
// Spec options must use time-based windows and Workers <= 1; OnMatch
// fields in specs are ignored — use the fleet-level onMatch.
//
// Deprecated: use Open.
func OpenPersistentMulti(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match)) (*PersistentMultiSearcher, error) {
	return openPersistentMultiShim(specs, opts, onMatch, false)
}

// OpenDynamicPersistentMulti is OpenPersistentMulti for a dynamic
// deployment: the initial spec list may be empty, with queries arriving
// later through AddQuery. Passing the queries that were live before a
// restart as specs lets them recover their window state from the
// checkpoint/WAL machinery before new traffic is accepted.
//
// Deprecated: use Open with Config{Dynamic: true}.
func OpenDynamicPersistentMulti(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match)) (*PersistentMultiSearcher, error) {
	return openPersistentMultiShim(specs, opts, onMatch, true)
}

func openPersistentMultiShim(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match), dynamic bool) (*PersistentMultiSearcher, error) {
	fl, err := openFleet(Config{
		Queries: specs,
		Dynamic: dynamic,
		Durable: opts.durability(),
		OnMatch: onMatch,
	})
	if err != nil {
		return nil, err
	}
	return &PersistentMultiSearcher{fl: fl, log: fl.log}, nil
}

// AddQuery registers one more query on the live durable fleet. The new
// query joins at the log tail: it sees only edges fed after it joins
// (its window starts empty), and any stale checkpoint left under its
// name by a previously removed query is discarded. To instead recover a
// query's pre-restart window state, pass it to OpenDynamicPersistentMulti
// as an initial spec. AddQuery must be serialized with Feed.
func (pm *PersistentMultiSearcher) AddQuery(spec QuerySpec) error { return pm.fl.AddQuery(spec) }

// RemoveQuery retires the named query and deletes its checkpoints; its
// slot is freed for reuse and no match for it is delivered after
// RemoveQuery returns. The shared log is untouched (other queries may
// still need it). RemoveQuery must be serialized with Feed.
func (pm *PersistentMultiSearcher) RemoveQuery(name string) error { return pm.fl.RemoveQuery(name) }

// HasQuery reports whether a live query is registered under name.
func (pm *PersistentMultiSearcher) HasQuery(name string) bool { return pm.fl.HasQuery(name) }

// Names returns the live query names, in registration-slot order.
func (pm *PersistentMultiSearcher) Names() []string { return pm.fl.Names() }

// LastTime returns the timestamp of the most recent edge the fleet has
// seen, across restarts (recovered from checkpoints and log replay), or
// a very small value if the log is empty. Feeding must continue with
// strictly greater timestamps.
func (pm *PersistentMultiSearcher) LastTime() Timestamp { return Timestamp(pm.fl.lastTime.Load()) }

// Feed durably logs one edge and feeds it to every query. The edge's
// timestamp must exceed every previously fed edge's — enforced before
// the WAL append, so an out-of-order edge can never poison the log.
// After Close, Feed returns ErrClosed.
func (pm *PersistentMultiSearcher) Feed(e Edge) error {
	_, err := pm.fl.Feed(e)
	return err
}

// FeedBatch durably logs and fans out a batch of edges; see
// Engine.FeedBatch.
func (pm *PersistentMultiSearcher) FeedBatch(batch []Edge) (int, error) {
	return pm.fl.FeedBatch(batch)
}

// Stats returns the unified fleet snapshot (per-query snapshots under
// Stats.Queries).
func (pm *PersistentMultiSearcher) Stats() Stats { return pm.fl.Stats() }

// Checkpoint forces per-query checkpoints now and reclaims WAL
// segments no query needs anymore.
func (pm *PersistentMultiSearcher) Checkpoint() error { return pm.fl.Checkpoint() }

// Close checkpoints every query and closes the WAL.
func (pm *PersistentMultiSearcher) Close() error { return pm.fl.Close() }

// MatchCount returns the durable match total of the named query, or 0
// if no live query is registered under name.
func (pm *PersistentMultiSearcher) MatchCount(name string) int64 {
	st, ok := pm.fl.queryStats(name, true)
	if !ok {
		return 0
	}
	return st.Matches
}

// MatchCounts returns durable per-query match totals, keyed by name.
func (pm *PersistentMultiSearcher) MatchCounts() map[string]int64 { return pm.fl.matchCounts() }

// Replayed returns how many shared-log edges were replayed during the
// most recent OpenPersistentMulti.
func (pm *PersistentMultiSearcher) Replayed() int64 { return pm.fl.replayed }

// SpaceBytes sums the partial-match space of all engines.
func (pm *PersistentMultiSearcher) SpaceBytes() int64 { return pm.fl.spaceBytes() }

// WALSeq returns the shared log's next sequence number (= edges logged
// across all runs).
func (pm *PersistentMultiSearcher) WALSeq() int64 { return pm.fl.log.Seq() }
