package timingsubg

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/wal"
)

// PersistentMultiOptions configures a PersistentMultiSearcher.
type PersistentMultiOptions struct {
	// Dir is the durability directory. The edge log is shared by all
	// queries (one WAL append per edge, not per query); each query
	// keeps its own checkpoints under Dir/ck/<name>/.
	Dir string
	// CheckpointEvery writes per-query checkpoints after every n fed
	// edges. Zero means 4096.
	CheckpointEvery int
	// SyncEvery fsyncs the WAL after every n appends (zero disables).
	SyncEvery int
	// SegmentBytes sets the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

// PersistentMultiSearcher is a durable fleet: several continuous
// queries over one shared write-ahead log. This is the deployment shape
// of the paper's motivating scenarios (a catalogue of attack patterns
// monitored together) with crash recovery: the stream is logged once,
// and each query recovers independently from its own checkpoint plus
// the shared log suffix.
//
// Queries added to an existing directory (a name with no checkpoint)
// join from the oldest retained log record: history reclaimed by
// earlier checkpoints is gone, exactly as a newly deployed pattern
// cannot see traffic that predates its deployment.
//
// Delivery is at-least-once for post-checkpoint matches, per query
// (wrap the callback with a MatchDeduper per query for exactly-once).
type PersistentMultiSearcher struct {
	names     []string
	searchers []*Searcher
	windows   []Timestamp
	log       *wal.Log
	dir       string
	every     int

	baseMatches []int64
	engMatches0 []int64

	recovering []bool
	replayed   int64
	sinceCkpt  int
	closed     bool
}

// OpenPersistentMulti opens (or creates) a durable fleet in opts.Dir.
// Spec options must use time-based windows and Workers <= 1; OnMatch
// fields in specs are ignored — use the fleet-level onMatch.
func OpenPersistentMulti(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match)) (*PersistentMultiSearcher, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	if opts.Dir == "" {
		return nil, errors.Join(ErrBadOptions, errors.New("persistent mode requires Dir"))
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 4096
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		switch {
		case spec.Name == "" || strings.ContainsAny(spec.Name, "/\\"):
			return nil, fmt.Errorf("timingsubg: query name %q must be non-empty and path-safe: %w", spec.Name, ErrBadOptions)
		case seen[spec.Name]:
			return nil, fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
		case spec.Options.Workers > 1:
			return nil, fmt.Errorf("timingsubg: query %q: persistent mode requires Workers <= 1: %w", spec.Name, ErrBadOptions)
		case spec.Options.Window <= 0 || spec.Options.CountWindow > 0:
			return nil, fmt.Errorf("timingsubg: query %q: persistent mode supports time-based windows only: %w", spec.Name, ErrBadOptions)
		}
		seen[spec.Name] = true
	}

	log, err := wal.Open(opts.Dir, wal.Options{SegmentBytes: opts.SegmentBytes, SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, err
	}
	pm := &PersistentMultiSearcher{
		log:         log,
		dir:         opts.Dir,
		every:       opts.CheckpointEvery,
		baseMatches: make([]int64, len(specs)),
		engMatches0: make([]int64, len(specs)),
		recovering:  make([]bool, len(specs)),
	}
	fail := func(err error) (*PersistentMultiSearcher, error) {
		log.Close()
		return nil, err
	}

	logStart, err := wal.FirstSeq(opts.Dir)
	if err != nil {
		return fail(err)
	}

	// Per-query recovery state.
	froms := make([]int64, len(specs))
	var maxNext int64
	for i, spec := range specs {
		i, spec := i, spec
		ck, haveCk, err := checkpoint.Load(pm.ckDir(spec.Name))
		if err != nil {
			return fail(err)
		}
		if haveCk && ck.Window != spec.Options.Window {
			return fail(fmt.Errorf("timingsubg: query %q: checkpoint window %d != configured window %d: %w",
				spec.Name, ck.Window, spec.Options.Window, ErrBadOptions))
		}

		var wrapped func(*Match)
		if onMatch != nil {
			wrapped = func(m *Match) {
				if !pm.recovering[i] {
					onMatch(spec.Name, m)
				}
			}
		}
		eng := core.New(spec.Query, core.Config{
			Storage:       spec.Options.Storage,
			Decomposition: spec.Options.Decomposition,
			OnMatch:       wrapped,
		})
		var stream *graph.Stream
		switch {
		case haveCk:
			stream = graph.RestoreStream(spec.Options.Window, ck.Edges, graph.EdgeID(ck.NextSeq))
			froms[i] = ck.NextSeq
			pm.baseMatches[i] = ck.Matches
		default:
			// A new query joins at the retained log horizon.
			stream = graph.RestoreStream(spec.Options.Window, nil, graph.EdgeID(logStart))
			froms[i] = logStart
		}
		s := &Searcher{stream: stream, eng: eng}
		pm.searchers = append(pm.searchers, s)
		pm.names = append(pm.names, spec.Name)
		pm.windows = append(pm.windows, spec.Options.Window)

		if haveCk {
			pm.recovering[i] = true
			for _, e := range ck.Edges {
				eng.Process(e, nil)
			}
			pm.recovering[i] = false
			pm.engMatches0[i] = eng.Stats().Matches.Load()
			if ck.NextSeq > maxNext {
				maxNext = ck.NextSeq
			}
		}
	}
	if err := log.SkipTo(maxNext); err != nil {
		return fail(err)
	}

	// One replay pass over the shared log: each record goes to every
	// query whose cursor has reached it.
	minFrom := froms[0]
	for _, f := range froms[1:] {
		if f < minFrom {
			minFrom = f
		}
	}
	end, err := wal.Replay(opts.Dir, minFrom, func(seq int64, e graph.Edge) error {
		clean := graph.Edge{
			From: e.From, To: e.To,
			FromLabel: e.FromLabel, ToLabel: e.ToLabel, EdgeLabel: e.EdgeLabel,
			Time: e.Time,
		}
		for i, s := range pm.searchers {
			if seq < froms[i] {
				continue
			}
			id, err := s.Feed(clean)
			if err != nil {
				return fmt.Errorf("query %q: %w", pm.names[i], err)
			}
			if int64(id) != seq {
				return fmt.Errorf("query %q: recovery drift: edge seq %d got ID %d", pm.names[i], seq, id)
			}
		}
		pm.replayed++
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("timingsubg: recovery replay: %w", err))
	}
	if end != log.Seq() {
		return fail(fmt.Errorf("timingsubg: recovery replay ended at %d, log at %d", end, log.Seq()))
	}
	return pm, nil
}

func (pm *PersistentMultiSearcher) ckDir(name string) string {
	return filepath.Join(pm.dir, "ck", name)
}

// Feed durably logs one edge and feeds it to every query.
func (pm *PersistentMultiSearcher) Feed(e Edge) error {
	if pm.closed {
		return errors.New("timingsubg: feed to closed persistent fleet")
	}
	if _, err := pm.log.Append(e); err != nil {
		return err
	}
	for i, s := range pm.searchers {
		if _, err := s.Feed(e); err != nil {
			return fmt.Errorf("timingsubg: query %q: %w", pm.names[i], err)
		}
	}
	pm.sinceCkpt++
	if pm.sinceCkpt >= pm.every {
		return pm.Checkpoint()
	}
	return nil
}

// Checkpoint forces per-query checkpoints now and reclaims WAL
// segments no query needs anymore.
func (pm *PersistentMultiSearcher) Checkpoint() error {
	pm.sinceCkpt = 0
	if err := pm.log.Sync(); err != nil {
		return err
	}
	next := pm.log.Seq()
	for i, s := range pm.searchers {
		st, ok := s.stream.(*graph.Stream)
		if !ok {
			return fmt.Errorf("timingsubg: query %q: not a time-window stream", pm.names[i])
		}
		ck := checkpoint.Checkpoint{
			NextSeq:   next,
			Window:    pm.windows[i],
			Matches:   pm.matchCount(i),
			Discarded: s.Discarded(),
			Edges:     st.InWindow(),
		}
		dir := pm.ckDir(pm.names[i])
		if err := checkpoint.Save(dir, ck); err != nil {
			return err
		}
		if err := checkpoint.GC(dir, 2); err != nil {
			return err
		}
	}
	return pm.log.TruncateFront(next)
}

// Close checkpoints every query and closes the WAL.
func (pm *PersistentMultiSearcher) Close() error {
	if pm.closed {
		return nil
	}
	pm.closed = true
	if err := pm.Checkpoint(); err != nil {
		pm.log.Close()
		return err
	}
	return pm.log.Close()
}

func (pm *PersistentMultiSearcher) matchCount(i int) int64 {
	return pm.baseMatches[i] + pm.searchers[i].MatchCount() - pm.engMatches0[i]
}

// MatchCounts returns durable per-query match totals, keyed by name.
func (pm *PersistentMultiSearcher) MatchCounts() map[string]int64 {
	out := make(map[string]int64, len(pm.searchers))
	for i := range pm.searchers {
		out[pm.names[i]] = pm.matchCount(i)
	}
	return out
}

// Replayed returns how many shared-log edges were replayed during the
// most recent OpenPersistentMulti.
func (pm *PersistentMultiSearcher) Replayed() int64 { return pm.replayed }

// SpaceBytes sums the partial-match space of all engines.
func (pm *PersistentMultiSearcher) SpaceBytes() int64 {
	var b int64
	for _, s := range pm.searchers {
		b += s.SpaceBytes()
	}
	return b
}

// WALSeq returns the shared log's next sequence number (= edges logged
// across all runs).
func (pm *PersistentMultiSearcher) WALSeq() int64 { return pm.log.Seq() }
