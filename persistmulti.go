package timingsubg

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/wal"
)

// PersistentMultiOptions configures a PersistentMultiSearcher.
type PersistentMultiOptions struct {
	// Dir is the durability directory. The edge log is shared by all
	// queries (one WAL append per edge, not per query); each query
	// keeps its own checkpoints under Dir/ck/<name>/.
	Dir string
	// CheckpointEvery writes per-query checkpoints after every n fed
	// edges. Zero means 4096.
	CheckpointEvery int
	// SyncEvery fsyncs the WAL after every n appends (zero disables).
	SyncEvery int
	// SegmentBytes sets the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

// PersistentMultiSearcher is a durable fleet: several continuous
// queries over one shared write-ahead log. This is the deployment shape
// of the paper's motivating scenarios (a catalogue of attack patterns
// monitored together) with crash recovery: the stream is logged once,
// and each query recovers independently from its own checkpoint plus
// the shared log suffix.
//
// Queries added to an existing directory (a name with no checkpoint)
// join from the oldest retained log record: history reclaimed by
// earlier checkpoints is gone, exactly as a newly deployed pattern
// cannot see traffic that predates its deployment.
//
// The fleet is dynamic: AddQuery and RemoveQuery register and retire
// queries while the log is live (see their docs for the join
// semantics). Feed, AddQuery, RemoveQuery, Checkpoint and Close must be
// serialized by the caller; the read accessors (MatchCounts, Names,
// HasQuery, SpaceBytes) may run concurrently with them.
//
// Delivery is at-least-once for post-checkpoint matches, per query
// (wrap the callback with a MatchDeduper per query for exactly-once).
type PersistentMultiSearcher struct {
	mu        sync.RWMutex
	names     []string    // "" for retired slots
	searchers []*Searcher // nil entries are retired slots, reusable by AddQuery
	windows   []Timestamp
	onMatch   func(name string, m *Match)
	log       *wal.Log
	dir       string
	every     int

	baseMatches []int64
	engMatches0 []int64

	recovering []bool
	replayed   int64
	lastTime   Timestamp
	sinceCkpt  int
	closed     bool
}

// OpenPersistentMulti opens (or creates) a durable fleet in opts.Dir.
// Spec options must use time-based windows and Workers <= 1; OnMatch
// fields in specs are ignored — use the fleet-level onMatch.
func OpenPersistentMulti(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match)) (*PersistentMultiSearcher, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	return openPersistentMulti(specs, opts, onMatch)
}

// OpenDynamicPersistentMulti is OpenPersistentMulti for a dynamic
// deployment: the initial spec list may be empty, with queries arriving
// later through AddQuery. Passing the queries that were live before a
// restart as specs lets them recover their window state from the
// checkpoint/WAL machinery before new traffic is accepted.
func OpenDynamicPersistentMulti(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match)) (*PersistentMultiSearcher, error) {
	return openPersistentMulti(specs, opts, onMatch)
}

// validatePersistentSpec checks the per-query constraints of durable
// operation.
func validatePersistentSpec(spec QuerySpec) error {
	switch {
	case spec.Name == "" || spec.Name == "." || spec.Name == ".." || strings.ContainsAny(spec.Name, "/\\"):
		// Names become directory components under Dir/ck/; "." and ".."
		// would alias (and on removal, destroy) other state.
		return fmt.Errorf("timingsubg: query name %q must be non-empty and path-safe: %w", spec.Name, ErrBadOptions)
	case spec.Options.Workers > 1:
		return fmt.Errorf("timingsubg: query %q: persistent mode requires Workers <= 1: %w", spec.Name, ErrBadOptions)
	case spec.Options.Window <= 0 || spec.Options.CountWindow > 0:
		return fmt.Errorf("timingsubg: query %q: persistent mode supports time-based windows only: %w", spec.Name, ErrBadOptions)
	}
	return nil
}

func openPersistentMulti(specs []QuerySpec, opts PersistentMultiOptions, onMatch func(name string, m *Match)) (*PersistentMultiSearcher, error) {
	if opts.Dir == "" {
		return nil, errors.Join(ErrBadOptions, errors.New("persistent mode requires Dir"))
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 4096
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		if err := validatePersistentSpec(spec); err != nil {
			return nil, err
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
		}
		seen[spec.Name] = true
	}

	log, err := wal.Open(opts.Dir, wal.Options{SegmentBytes: opts.SegmentBytes, SyncEvery: opts.SyncEvery})
	if err != nil {
		return nil, err
	}
	pm := &PersistentMultiSearcher{
		log:         log,
		dir:         opts.Dir,
		every:       opts.CheckpointEvery,
		onMatch:     onMatch,
		lastTime:    minTimestamp,
		baseMatches: make([]int64, len(specs)),
		engMatches0: make([]int64, len(specs)),
		recovering:  make([]bool, len(specs)),
	}
	fail := func(err error) (*PersistentMultiSearcher, error) {
		log.Close()
		return nil, err
	}

	logStart, err := wal.FirstSeq(opts.Dir)
	if err != nil {
		return fail(err)
	}

	// Per-query recovery state.
	froms := make([]int64, len(specs))
	var maxNext int64
	for i, spec := range specs {
		i, spec := i, spec
		ck, haveCk, err := checkpoint.Load(pm.ckDir(spec.Name))
		if err != nil {
			return fail(err)
		}
		if haveCk && ck.Window != spec.Options.Window {
			return fail(fmt.Errorf("timingsubg: query %q: checkpoint window %d != configured window %d: %w",
				spec.Name, ck.Window, spec.Options.Window, ErrBadOptions))
		}

		eng := core.New(spec.Query, core.Config{
			Storage:       spec.Options.Storage,
			Decomposition: spec.Options.Decomposition,
			OnMatch:       pm.wrapOnMatch(i, spec.Name),
		})
		var stream *graph.Stream
		switch {
		case haveCk:
			stream = graph.RestoreStream(spec.Options.Window, ck.Edges, graph.EdgeID(ck.NextSeq))
			froms[i] = ck.NextSeq
			pm.baseMatches[i] = ck.Matches
		default:
			// A new query joins at the retained log horizon.
			stream = graph.RestoreStream(spec.Options.Window, nil, graph.EdgeID(logStart))
			froms[i] = logStart
		}
		s := &Searcher{stream: stream, eng: eng}
		pm.searchers = append(pm.searchers, s)
		pm.names = append(pm.names, spec.Name)
		pm.windows = append(pm.windows, spec.Options.Window)
		// The stream clock resumes from the newest checkpointed edge;
		// WAL replay below advances it further if a suffix exists.
		if lt := stream.LastTime(); lt > pm.lastTime {
			pm.lastTime = lt
		}

		if haveCk {
			pm.recovering[i] = true
			for _, e := range ck.Edges {
				eng.Process(e, nil)
			}
			pm.recovering[i] = false
			pm.engMatches0[i] = eng.Stats().Matches.Load()
			if ck.NextSeq > maxNext {
				maxNext = ck.NextSeq
			}
		}
	}
	if err := log.SkipTo(maxNext); err != nil {
		return fail(err)
	}

	// One replay pass over the whole retained log: each record goes to
	// every query whose cursor has reached it. The walk starts at the
	// retained horizon — not at the oldest query cursor — because the
	// stream clock (lastTime) must recover from every record, including
	// ones no current query needs; otherwise a post-restart ingest could
	// reuse a timestamp already in the log and break its monotonicity.
	end, err := wal.Replay(opts.Dir, logStart, func(seq int64, e graph.Edge) error {
		clean := graph.Edge{
			From: e.From, To: e.To,
			FromLabel: e.FromLabel, ToLabel: e.ToLabel, EdgeLabel: e.EdgeLabel,
			Time: e.Time,
		}
		for i, s := range pm.searchers {
			if seq < froms[i] {
				continue
			}
			id, err := s.Feed(clean)
			if err != nil {
				return fmt.Errorf("query %q: %w", pm.names[i], err)
			}
			if int64(id) != seq {
				return fmt.Errorf("query %q: recovery drift: edge seq %d got ID %d", pm.names[i], seq, id)
			}
		}
		if e.Time > pm.lastTime {
			pm.lastTime = e.Time
		}
		pm.replayed++
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("timingsubg: recovery replay: %w", err))
	}
	if end != log.Seq() {
		return fail(fmt.Errorf("timingsubg: recovery replay ended at %d, log at %d", end, log.Seq()))
	}
	return pm, nil
}

// wrapOnMatch adapts the fleet callback for slot i, suppressing delivery
// while that slot replays checkpointed state.
func (pm *PersistentMultiSearcher) wrapOnMatch(i int, name string) func(*Match) {
	if pm.onMatch == nil {
		return nil
	}
	return func(m *Match) {
		if !pm.recovering[i] {
			pm.onMatch(name, m)
		}
	}
}

func (pm *PersistentMultiSearcher) ckDir(name string) string {
	return filepath.Join(pm.dir, "ck", name)
}

// AddQuery registers one more query on the live durable fleet. The new
// query joins at the log tail: it sees only edges fed after it joins
// (its window starts empty), and any stale checkpoint left under its
// name by a previously removed query is discarded. To instead recover a
// query's pre-restart window state, pass it to OpenDynamicPersistentMulti
// as an initial spec. AddQuery must be serialized with Feed.
func (pm *PersistentMultiSearcher) AddQuery(spec QuerySpec) error {
	if pm.closed {
		return errors.New("timingsubg: add query to closed persistent fleet")
	}
	if err := validatePersistentSpec(spec); err != nil {
		return err
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.indexLocked(spec.Name) >= 0 {
		return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
	}
	// A checkpoint under this name can only be stale (from a removed or
	// never-reopened query); joining at the tail supersedes it.
	if err := os.RemoveAll(pm.ckDir(spec.Name)); err != nil {
		return fmt.Errorf("timingsubg: query %q: discard stale checkpoint: %w", spec.Name, err)
	}
	slot := -1
	for i, s := range pm.searchers {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(pm.searchers)
		pm.searchers = append(pm.searchers, nil)
		pm.names = append(pm.names, "")
		pm.windows = append(pm.windows, 0)
		pm.baseMatches = append(pm.baseMatches, 0)
		pm.engMatches0 = append(pm.engMatches0, 0)
		pm.recovering = append(pm.recovering, false)
	}
	eng := core.New(spec.Query, core.Config{
		Storage:       spec.Options.Storage,
		Decomposition: spec.Options.Decomposition,
		OnMatch:       pm.wrapOnMatch(slot, spec.Name),
	})
	stream := graph.RestoreStream(spec.Options.Window, nil, graph.EdgeID(pm.log.Seq()))
	// An initial checkpoint pins the join point durably: without it, a
	// crash before the first periodic checkpoint would make recovery
	// treat this query as brand new and replay it from the retained log
	// horizon — pre-join traffic it must never see.
	if err := checkpoint.Save(pm.ckDir(spec.Name), checkpoint.Checkpoint{
		NextSeq: pm.log.Seq(),
		Window:  spec.Options.Window,
	}); err != nil {
		return fmt.Errorf("timingsubg: query %q: initial checkpoint: %w", spec.Name, err)
	}
	pm.searchers[slot] = &Searcher{stream: stream, eng: eng}
	pm.names[slot] = spec.Name
	pm.windows[slot] = spec.Options.Window
	pm.baseMatches[slot] = 0
	pm.engMatches0[slot] = 0
	pm.recovering[slot] = false
	return nil
}

// RemoveQuery retires the named query and deletes its checkpoints; its
// slot is freed for reuse and no match for it is delivered after
// RemoveQuery returns. The shared log is untouched (other queries may
// still need it). RemoveQuery must be serialized with Feed.
func (pm *PersistentMultiSearcher) RemoveQuery(name string) error {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	i := pm.indexLocked(name)
	if i < 0 {
		return fmt.Errorf("timingsubg: unknown query %q: %w", name, ErrBadOptions)
	}
	pm.searchers[i].Close()
	pm.searchers[i] = nil
	pm.names[i] = ""
	return os.RemoveAll(pm.ckDir(name))
}

// indexLocked returns the slot of the live query named name, or -1.
func (pm *PersistentMultiSearcher) indexLocked(name string) int {
	for i, n := range pm.names {
		if n == name && pm.searchers[i] != nil {
			return i
		}
	}
	return -1
}

// HasQuery reports whether a live query is registered under name.
func (pm *PersistentMultiSearcher) HasQuery(name string) bool {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	return pm.indexLocked(name) >= 0
}

// Names returns the live query names, in registration-slot order.
func (pm *PersistentMultiSearcher) Names() []string {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	out := make([]string, 0, len(pm.names))
	for i, n := range pm.names {
		if pm.searchers[i] != nil {
			out = append(out, n)
		}
	}
	return out
}

// minTimestamp mirrors the graph.Stream "nothing seen yet" sentinel.
const minTimestamp Timestamp = -1 << 62

// LastTime returns the timestamp of the most recent edge the fleet has
// seen, across restarts (recovered from checkpoints and log replay), or
// a very small value if the log is empty. Feeding must continue with
// strictly greater timestamps.
func (pm *PersistentMultiSearcher) LastTime() Timestamp { return pm.lastTime }

// Feed durably logs one edge and feeds it to every query. The edge's
// timestamp must exceed every previously fed edge's — enforced here,
// before the WAL append, so an out-of-order edge can never poison the
// log (replay requires a monotone record sequence).
func (pm *PersistentMultiSearcher) Feed(e Edge) error {
	if pm.closed {
		return errors.New("timingsubg: feed to closed persistent fleet")
	}
	if e.Time <= pm.lastTime {
		return fmt.Errorf("timingsubg: %w: got %d after %d", graph.ErrOutOfOrder, e.Time, pm.lastTime)
	}
	if _, err := pm.log.Append(e); err != nil {
		return err
	}
	pm.mu.RLock()
	for i, s := range pm.searchers {
		if s == nil {
			continue
		}
		if _, err := s.Feed(e); err != nil {
			pm.mu.RUnlock()
			return fmt.Errorf("timingsubg: query %q: %w", pm.names[i], err)
		}
	}
	pm.mu.RUnlock()
	pm.lastTime = e.Time
	pm.sinceCkpt++
	if pm.sinceCkpt >= pm.every {
		return pm.Checkpoint()
	}
	return nil
}

// Checkpoint forces per-query checkpoints now and reclaims WAL
// segments no query needs anymore.
func (pm *PersistentMultiSearcher) Checkpoint() error {
	pm.sinceCkpt = 0
	if err := pm.log.Sync(); err != nil {
		return err
	}
	next := pm.log.Seq()
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	for i, s := range pm.searchers {
		if s == nil {
			continue
		}
		st, ok := s.stream.(*graph.Stream)
		if !ok {
			return fmt.Errorf("timingsubg: query %q: not a time-window stream", pm.names[i])
		}
		ck := checkpoint.Checkpoint{
			NextSeq:   next,
			Window:    pm.windows[i],
			Matches:   pm.matchCount(i),
			Discarded: s.Discarded(),
			Edges:     st.InWindow(),
		}
		dir := pm.ckDir(pm.names[i])
		if err := checkpoint.Save(dir, ck); err != nil {
			return err
		}
		if err := checkpoint.GC(dir, 2); err != nil {
			return err
		}
	}
	return pm.log.TruncateFront(next)
}

// Close checkpoints every query and closes the WAL.
func (pm *PersistentMultiSearcher) Close() error {
	if pm.closed {
		return nil
	}
	pm.closed = true
	if err := pm.Checkpoint(); err != nil {
		pm.log.Close()
		return err
	}
	return pm.log.Close()
}

func (pm *PersistentMultiSearcher) matchCount(i int) int64 {
	if pm.searchers[i] == nil {
		return 0
	}
	return pm.baseMatches[i] + pm.searchers[i].MatchCount() - pm.engMatches0[i]
}

// MatchCount returns the durable match total of the named query, or 0
// if no live query is registered under name.
func (pm *PersistentMultiSearcher) MatchCount(name string) int64 {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	i := pm.indexLocked(name)
	if i < 0 {
		return 0
	}
	return pm.matchCount(i)
}

// MatchCounts returns durable per-query match totals, keyed by name.
func (pm *PersistentMultiSearcher) MatchCounts() map[string]int64 {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	out := make(map[string]int64, len(pm.searchers))
	for i := range pm.searchers {
		if pm.searchers[i] == nil {
			continue
		}
		out[pm.names[i]] = pm.matchCount(i)
	}
	return out
}

// Replayed returns how many shared-log edges were replayed during the
// most recent OpenPersistentMulti.
func (pm *PersistentMultiSearcher) Replayed() int64 { return pm.replayed }

// SpaceBytes sums the partial-match space of all engines.
func (pm *PersistentMultiSearcher) SpaceBytes() int64 {
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	var b int64
	for _, s := range pm.searchers {
		if s != nil {
			b += s.SpaceBytes()
		}
	}
	return b
}

// WALSeq returns the shared log's next sequence number (= edges logged
// across all runs).
func (pm *PersistentMultiSearcher) WALSeq() int64 { return pm.log.Seq() }
