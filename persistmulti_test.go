package timingsubg

import (
	"fmt"
	"testing"
)

// fleetSpecs builds a 3-query fleet over the shared a/b/c/d label
// alphabet of persistTestStream: a 3-edge chain, a 2-edge chain, and a
// single-edge pattern, so per-edge interest and match rates differ.
func fleetSpecs(t testing.TB, labels *Labels, window Timestamp) []QuerySpec {
	t.Helper()
	chain2 := func(x, y, z string) *Query {
		b := NewQueryBuilder()
		vx := b.AddVertex(labels.Intern(x))
		vy := b.AddVertex(labels.Intern(y))
		vz := b.AddVertex(labels.Intern(z))
		e1 := b.AddEdge(vx, vy)
		e2 := b.AddEdge(vy, vz)
		b.Before(e1, e2)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	single := func(x, y string) *Query {
		b := NewQueryBuilder()
		vx := b.AddVertex(labels.Intern(x))
		vy := b.AddVertex(labels.Intern(y))
		b.AddEdge(vx, vy)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	return []QuerySpec{
		{Name: "chain3", Query: persistTestQuery(t, labels), Options: Options{Window: window}},
		{Name: "chain2", Query: chain2("b", "c", "d"), Options: Options{Window: window}},
		{Name: "single", Query: single("d", "a"), Options: Options{Window: window}},
	}
}

// runFleetPlain is the non-durable reference: per-query match-key sets.
func runFleetPlain(t testing.TB, specs []QuerySpec, edges []Edge) map[string]map[string]bool {
	t.Helper()
	got := map[string]map[string]bool{}
	for _, spec := range specs {
		got[spec.Name] = map[string]bool{}
	}
	ms, err := NewMultiSearcher(specs, func(name string, m *Match) { got[name][matchKey(m)] = true })
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := ms.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	ms.Close()
	return got
}

func TestPersistentMultiColdStart(t *testing.T) {
	labels := NewLabels()
	specs := fleetSpecs(t, labels, 40)
	edges := persistTestStream(labels, 500, 71)
	want := runFleetPlain(t, specs, edges)

	got := map[string]map[string]bool{}
	for _, spec := range specs {
		got[spec.Name] = map[string]bool{}
	}
	pm, err := OpenPersistentMulti(specs, PersistentMultiOptions{Dir: t.TempDir()},
		func(name string, m *Match) { got[name][matchKey(m)] = true })
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := pm.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	total := 0
	for name, w := range want {
		total += len(w)
		if len(got[name]) != len(w) {
			t.Fatalf("query %s: durable %d matches, plain %d", name, len(got[name]), len(w))
		}
	}
	if total == 0 {
		t.Fatal("fleet found no matches; test stream too sparse")
	}
	counts := pm.MatchCounts()
	for name, w := range want {
		if counts[name] != int64(len(w)) {
			t.Fatalf("query %s: MatchCounts %d, want %d", name, counts[name], len(w))
		}
	}
}

// TestPersistentMultiCrashRecovery: crash the fleet at assorted points;
// distinct per-query match sets must equal the uninterrupted run.
func TestPersistentMultiCrashRecovery(t *testing.T) {
	labels := NewLabels()
	specs := fleetSpecs(t, labels, 40)
	const n = 400
	edges := persistTestStream(labels, n, 72)
	want := runFleetPlain(t, specs, edges)

	for _, cut := range []int{0, 55, 200, 399} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			got := map[string]map[string]bool{}
			for _, spec := range specs {
				got[spec.Name] = map[string]bool{}
			}
			onMatch := func(name string, m *Match) { got[name][matchKey(m)] = true }

			pm, err := OpenPersistentMulti(specs, PersistentMultiOptions{Dir: dir, CheckpointEvery: 64}, onMatch)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges[:cut] {
				if err := pm.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			pre := pm.MatchCounts()
			pm.log.Close() // crash without Close

			pm2, err := OpenPersistentMulti(specs, PersistentMultiOptions{Dir: dir, CheckpointEvery: 64}, onMatch)
			if err != nil {
				t.Fatal(err)
			}
			post := pm2.MatchCounts()
			for name, v := range pre {
				if post[name] != v {
					t.Fatalf("query %s: recovered count %d, want %d", name, post[name], v)
				}
			}
			for _, e := range edges[cut:] {
				if err := pm2.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			if err := pm2.Close(); err != nil {
				t.Fatal(err)
			}

			for name, w := range want {
				if len(got[name]) != len(w) {
					t.Fatalf("query %s: %d distinct matches, want %d", name, len(got[name]), len(w))
				}
				for k := range w {
					if !got[name][k] {
						t.Fatalf("query %s: missing match %s", name, k)
					}
				}
			}
		})
	}
}

// TestPersistentMultiLateJoiner: a query added to an existing directory
// joins from the retained log horizon and sees subsequent traffic.
func TestPersistentMultiLateJoiner(t *testing.T) {
	labels := NewLabels()
	base := fleetSpecs(t, labels, 40)[:1] // chain3 only
	edges := persistTestStream(labels, 300, 73)
	dir := t.TempDir()

	pm, err := OpenPersistentMulti(base, PersistentMultiOptions{Dir: dir, CheckpointEvery: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[:150] {
		if err := pm.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with an extra query.
	full := fleetSpecs(t, labels, 40)
	joinerMatches := 0
	pm2, err := OpenPersistentMulti(full, PersistentMultiOptions{Dir: dir, CheckpointEvery: 50},
		func(name string, m *Match) {
			if name == "single" {
				joinerMatches++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[150:] {
		if err := pm2.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if joinerMatches == 0 {
		t.Fatal("late joiner saw no matches")
	}
	if err := pm2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third open must recover all three cleanly.
	pm3, err := OpenPersistentMulti(full, PersistentMultiOptions{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentMultiRejectsBadSpecs(t *testing.T) {
	labels := NewLabels()
	ok := fleetSpecs(t, labels, 40)
	cases := []struct {
		name  string
		specs []QuerySpec
		opts  PersistentMultiOptions
	}{
		{"no queries", nil, PersistentMultiOptions{Dir: t.TempDir()}},
		{"no dir", ok, PersistentMultiOptions{}},
		{"bad name", []QuerySpec{{Name: "a/b", Query: ok[0].Query, Options: Options{Window: 10}}}, PersistentMultiOptions{Dir: t.TempDir()}},
		{"dup name", []QuerySpec{
			{Name: "x", Query: ok[0].Query, Options: Options{Window: 10}},
			{Name: "x", Query: ok[1].Query, Options: Options{Window: 10}},
		}, PersistentMultiOptions{Dir: t.TempDir()}},
		{"count window", []QuerySpec{{Name: "x", Query: ok[0].Query, Options: Options{CountWindow: 10}}}, PersistentMultiOptions{Dir: t.TempDir()}},
		{"workers", []QuerySpec{{Name: "x", Query: ok[0].Query, Options: Options{Window: 10, Workers: 3}}}, PersistentMultiOptions{Dir: t.TempDir()}},
	}
	for _, tc := range cases {
		if _, err := OpenPersistentMulti(tc.specs, tc.opts, nil); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestPersistentMultiSharedWALIsLoggedOnce: the log grows by one record
// per edge regardless of fleet size.
func TestPersistentMultiSharedWALIsLoggedOnce(t *testing.T) {
	labels := NewLabels()
	specs := fleetSpecs(t, labels, 40)
	pm, err := OpenPersistentMulti(specs, PersistentMultiOptions{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	edges := persistTestStream(labels, 120, 74)
	for _, e := range edges {
		if err := pm.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if pm.WALSeq() != 120 {
		t.Fatalf("WAL seq %d after 120 edges in a 3-query fleet, want 120", pm.WALSeq())
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
}
