package timingsubg

import (
	"time"

	"timingsubg/internal/wal"
)

// PersistentOptions configures a PersistentSearcher.
//
// Deprecated: set Config.Durable and call Open.
type PersistentOptions struct {
	// Options configures the wrapped searcher. Workers must be <= 1:
	// durability requires the engine state at a checkpoint to be exactly
	// the state after a prefix of the edge sequence, which concurrent
	// in-flight transactions would blur.
	Options
	// Dir is the durability directory (WAL segments + checkpoints).
	Dir string
	// CheckpointEvery writes a checkpoint after every n fed edges.
	// Zero means 4096. Checkpoints bound recovery replay length and
	// let old WAL segments be reclaimed.
	CheckpointEvery int
	// SyncEvery fsyncs the WAL after every n appends; zero disables
	// fsync (see wal.Options). With fsync disabled a crash may lose the
	// most recent edges; recovery is still consistent, just shorter.
	SyncEvery int
	// SyncInterval runs a background WAL group commit at this period
	// (see Durability.SyncInterval); zero disables.
	SyncInterval time.Duration
	// SegmentBytes sets the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

// PersistentSearcher is a Searcher with write-ahead logging and
// checkpoint-based crash recovery. Every fed edge is logged before it
// is matched; OpenPersistent rebuilds the exact engine state after a
// crash or restart and resumes.
//
// Delivery contract: matches wholly contained in a checkpoint are never
// re-reported on recovery; matches completed by edges after the last
// checkpoint may be reported again (at-least-once). Deduplicate
// downstream with the match's edge-ID tuple if exactly-once delivery
// matters.
//
// Deprecated: PersistentSearcher is a thin shim over the unified
// engine. Use Open with Config{Query: q, Durable: &Durability{...}} —
// which also composes with adaptivity, a combination this façade cannot
// express.
type PersistentSearcher struct {
	en  *single
	log *wal.Log // kept for test/diagnostic access to the live WAL
}

// OpenPersistent opens (or creates) a durable searcher in opts.Dir.
// If the directory holds a previous run's WAL and checkpoints, the
// engine state is recovered: the newest checkpoint's window is
// rebuilt silently, then the WAL suffix is replayed live (reporting
// matches to OnMatch).
//
// Deprecated: use Open.
func OpenPersistent(q *Query, opts PersistentOptions) (*PersistentSearcher, error) {
	en, err := openDurableSingle(q, opts.Options, nil, Durability{
		Dir:             opts.Dir,
		CheckpointEvery: opts.CheckpointEvery,
		SyncEvery:       opts.SyncEvery,
		SyncInterval:    opts.SyncInterval,
		SegmentBytes:    opts.SegmentBytes,
	}, matchSink(opts.OnMatch))
	if err != nil {
		return nil, err
	}
	return &PersistentSearcher{en: en, log: en.log}, nil
}

// Feed durably logs one edge and then matches it. The returned ID
// equals the edge's WAL sequence number. After Close, Feed returns
// ErrClosed.
func (ps *PersistentSearcher) Feed(e Edge) (EdgeID, error) { return ps.en.Feed(e) }

// FeedBatch durably logs and matches a batch of edges; see
// Engine.FeedBatch.
func (ps *PersistentSearcher) FeedBatch(batch []Edge) (int, error) { return ps.en.FeedBatch(batch) }

// Checkpoint forces a checkpoint now: the WAL is synced, the in-window
// state and counters are written atomically, old checkpoints and WAL
// segments are reclaimed.
func (ps *PersistentSearcher) Checkpoint() error { return ps.en.checkpointNow() }

// Close checkpoints and closes the WAL. The searcher must not be used
// after Close.
func (ps *PersistentSearcher) Close() error { return ps.en.Close() }

// Stats returns the unified counter snapshot.
func (ps *PersistentSearcher) Stats() Stats { return ps.en.Stats() }

// MatchCount returns the total matches reported across all runs
// (durable baseline + this process).
func (ps *PersistentSearcher) MatchCount() int64 { return ps.en.matches() }

// Discarded returns the total discardable edges filtered across runs.
func (ps *PersistentSearcher) Discarded() int64 { return ps.en.discarded() }

// Replayed returns how many WAL-suffix edges were replayed during the
// most recent OpenPersistent (0 on a cold start).
func (ps *PersistentSearcher) Replayed() int64 { return ps.en.replayed }

// InWindow returns the number of edges currently inside the window.
func (ps *PersistentSearcher) InWindow() int { return ps.en.stream.Len() }

// K returns the size of the TC decomposition in use.
func (ps *PersistentSearcher) K() int { return ps.en.eng.K() }

// PartialMatches returns the number of stored partial matches.
func (ps *PersistentSearcher) PartialMatches() int64 { return ps.en.eng.PartialMatchCount() }

// SpaceBytes estimates resident bytes of maintained partial matches.
func (ps *PersistentSearcher) SpaceBytes() int64 { return ps.en.eng.SpaceBytes() }

// CurrentMatches enumerates the matches standing in the current window.
func (ps *PersistentSearcher) CurrentMatches(fn func(*Match) bool) { ps.en.CurrentMatches(fn) }

// CurrentMatchCount returns the number of standing matches.
func (ps *PersistentSearcher) CurrentMatchCount() int { return ps.en.currentMatchCount() }
