package timingsubg

import (
	"errors"
	"fmt"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/wal"
)

// PersistentOptions configures a PersistentSearcher.
type PersistentOptions struct {
	// Options configures the wrapped searcher. Workers must be <= 1:
	// durability requires the engine state at a checkpoint to be exactly
	// the state after a prefix of the edge sequence, which concurrent
	// in-flight transactions would blur.
	Options
	// Dir is the durability directory (WAL segments + checkpoints).
	Dir string
	// CheckpointEvery writes a checkpoint after every n fed edges.
	// Zero means 4096. Checkpoints bound recovery replay length and
	// let old WAL segments be reclaimed.
	CheckpointEvery int
	// SyncEvery fsyncs the WAL after every n appends; zero disables
	// fsync (see wal.Options). With fsync disabled a crash may lose the
	// most recent edges; recovery is still consistent, just shorter.
	SyncEvery int
	// SegmentBytes sets the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

// PersistentSearcher is a Searcher with write-ahead logging and
// checkpoint-based crash recovery. Every fed edge is logged before it
// is matched; OpenPersistent rebuilds the exact engine state after a
// crash or restart and resumes.
//
// Delivery contract: matches wholly contained in a checkpoint are never
// re-reported on recovery; matches completed by edges after the last
// checkpoint may be reported again (at-least-once). Deduplicate
// downstream with the match's edge-ID tuple if exactly-once delivery
// matters.
type PersistentSearcher struct {
	s      *Searcher
	log    *wal.Log
	dir    string
	every  int
	window Timestamp

	// counter baselines translate engine counters (which restart from
	// zero on recovery) into durable totals.
	baseMatches   int64
	baseDiscarded int64
	engMatches0   int64
	engDiscarded0 int64

	recovering bool
	replayed   int64
	sinceCkpt  int
	closed     bool
}

// OpenPersistent opens (or creates) a durable searcher in opts.Dir.
// If the directory holds a previous run's WAL and checkpoints, the
// engine state is recovered: the newest checkpoint's window is
// rebuilt silently, then the WAL suffix is replayed live (reporting
// matches to OnMatch).
func OpenPersistent(q *Query, opts PersistentOptions) (*PersistentSearcher, error) {
	if opts.Workers > 1 {
		return nil, errors.Join(ErrBadOptions, errors.New("persistent mode requires Workers <= 1"))
	}
	if opts.Dir == "" {
		return nil, errors.Join(ErrBadOptions, errors.New("persistent mode requires Dir"))
	}
	if opts.Window <= 0 {
		return nil, errors.Join(ErrBadOptions, errors.New("window must be positive"))
	}
	if opts.CountWindow > 0 {
		return nil, errors.Join(ErrBadOptions, errors.New("persistent mode supports time-based windows only"))
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 4096
	}

	log, err := wal.Open(opts.Dir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		SyncEvery:    opts.SyncEvery,
	})
	if err != nil {
		return nil, err
	}
	ck, haveCk, err := checkpoint.Load(opts.Dir)
	if err != nil {
		log.Close()
		return nil, err
	}
	if haveCk && ck.Window != opts.Window {
		log.Close()
		return nil, fmt.Errorf("timingsubg: checkpoint window %d != configured window %d: %w",
			ck.Window, opts.Window, ErrBadOptions)
	}

	ps := &PersistentSearcher{log: log, dir: opts.Dir, every: opts.CheckpointEvery, window: opts.Window}

	// The user's callback is suppressed while rebuilding checkpointed
	// state: those matches were durably reported before the checkpoint.
	userOnMatch := opts.OnMatch
	inner := opts.Options
	if userOnMatch != nil {
		inner.OnMatch = func(m *Match) {
			if !ps.recovering {
				userOnMatch(m)
			}
		}
	}

	eng := core.New(q, core.Config{
		Storage:       inner.Storage,
		Decomposition: inner.Decomposition,
		OnMatch:       inner.OnMatch,
	})
	var stream *graph.Stream
	if haveCk {
		stream = graph.RestoreStream(opts.Window, ck.Edges, graph.EdgeID(ck.NextSeq))
		ps.baseMatches = ck.Matches
		ps.baseDiscarded = ck.Discarded
	} else {
		stream = graph.NewStream(opts.Window)
	}
	ps.s = &Searcher{stream: stream, eng: eng}

	if haveCk {
		// Rebuild derived engine state from the checkpointed window,
		// silently: re-insert each in-window edge without expiry (the
		// checkpoint holds only live edges).
		ps.recovering = true
		for _, e := range ck.Edges {
			eng.Process(e, nil)
		}
		ps.recovering = false
		ps.engMatches0 = eng.Stats().Matches.Load()
		ps.engDiscarded0 = eng.Stats().Discarded.Load()
		// If fsync was off and the WAL tail was lost in the crash, the
		// checkpoint may be ahead of the log; fast-forward the log so
		// future sequence numbers continue at the checkpoint cursor.
		if err := log.SkipTo(ck.NextSeq); err != nil {
			log.Close()
			return nil, err
		}
	}

	// Replay the WAL suffix after the checkpoint, live.
	from := int64(0)
	if haveCk {
		from = ck.NextSeq
	}
	end, err := wal.Replay(opts.Dir, from, func(seq int64, e graph.Edge) error {
		id, err := ps.s.Feed(graph.Edge{
			From: e.From, To: e.To,
			FromLabel: e.FromLabel, ToLabel: e.ToLabel, EdgeLabel: e.EdgeLabel,
			Time: e.Time,
		})
		if err != nil {
			return err
		}
		if int64(id) != seq {
			return fmt.Errorf("timingsubg: recovery drift: edge seq %d got ID %d", seq, id)
		}
		ps.replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("timingsubg: recovery replay: %w", err)
	}
	if end != log.Seq() {
		log.Close()
		return nil, fmt.Errorf("timingsubg: recovery replay ended at %d, log at %d", end, log.Seq())
	}
	return ps, nil
}

// Feed durably logs one edge and then matches it. The returned ID
// equals the edge's WAL sequence number.
func (ps *PersistentSearcher) Feed(e Edge) (EdgeID, error) {
	if ps.closed {
		return 0, errors.New("timingsubg: feed to closed persistent searcher")
	}
	if _, err := ps.log.Append(e); err != nil {
		return 0, err
	}
	id, err := ps.s.Feed(e)
	if err != nil {
		return 0, err
	}
	ps.sinceCkpt++
	if ps.sinceCkpt >= ps.every {
		if err := ps.Checkpoint(); err != nil {
			return id, err
		}
	}
	return id, nil
}

// Checkpoint forces a checkpoint now: the WAL is synced, the in-window
// state and counters are written atomically, old checkpoints and WAL
// segments are reclaimed.
func (ps *PersistentSearcher) Checkpoint() error {
	ps.sinceCkpt = 0
	if err := ps.log.Sync(); err != nil {
		return err
	}
	ck := checkpoint.Checkpoint{
		NextSeq:   ps.log.Seq(),
		Window:    ps.window,
		Matches:   ps.MatchCount(),
		Discarded: ps.Discarded(),
		Edges:     ps.s.stream.InWindow(),
	}
	if err := checkpoint.Save(ps.dir, ck); err != nil {
		return err
	}
	if err := checkpoint.GC(ps.dir, 2); err != nil {
		return err
	}
	return ps.log.TruncateFront(ck.NextSeq)
}

// Close checkpoints and closes the WAL. The searcher must not be used
// after Close.
func (ps *PersistentSearcher) Close() error {
	if ps.closed {
		return nil
	}
	ps.closed = true
	ps.s.Close()
	if err := ps.Checkpoint(); err != nil {
		ps.log.Close()
		return err
	}
	return ps.log.Close()
}

// MatchCount returns the total matches reported across all runs
// (durable baseline + this process).
func (ps *PersistentSearcher) MatchCount() int64 {
	return ps.baseMatches + ps.s.MatchCount() - ps.engMatches0
}

// Discarded returns the total discardable edges filtered across runs.
func (ps *PersistentSearcher) Discarded() int64 {
	return ps.baseDiscarded + ps.s.Discarded() - ps.engDiscarded0
}

// Replayed returns how many WAL-suffix edges were replayed during the
// most recent OpenPersistent (0 on a cold start).
func (ps *PersistentSearcher) Replayed() int64 { return ps.replayed }

// InWindow returns the number of edges currently inside the window.
func (ps *PersistentSearcher) InWindow() int { return ps.s.InWindow() }

// K returns the size of the TC decomposition in use.
func (ps *PersistentSearcher) K() int { return ps.s.K() }

// PartialMatches returns the number of stored partial matches.
func (ps *PersistentSearcher) PartialMatches() int64 { return ps.s.PartialMatches() }

// SpaceBytes estimates resident bytes of maintained partial matches.
func (ps *PersistentSearcher) SpaceBytes() int64 { return ps.s.SpaceBytes() }

// CurrentMatches enumerates the matches standing in the current window.
func (ps *PersistentSearcher) CurrentMatches(fn func(*Match) bool) { ps.s.CurrentMatches(fn) }

// CurrentMatchCount returns the number of standing matches.
func (ps *PersistentSearcher) CurrentMatchCount() int { return ps.s.CurrentMatchCount() }
