package timingsubg

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"timingsubg/internal/graph"
)

// The cross-façade conformance suite: every option combination Open can
// express is driven through the same scripted stream and must report
// the same counters as the plain single-query engine — composition
// changes capabilities and performance, never results. This includes
// the combinations the old per-capability façades could not express at
// all: adaptive+durable, and adaptive members inside a (durable) fleet.

// confSnap is the result-determining slice of a Stats snapshot. Fields
// like Fed, WALSeq or Replayed legitimately differ across compositions;
// these three must not.
type confSnap struct {
	Matches   int64
	Discarded int64
	InWindow  int
}

func snap(st Stats) confSnap {
	return confSnap{Matches: st.Matches, Discarded: st.Discarded, InWindow: st.InWindow}
}

// feedEach drives edges one Feed at a time.
func feedEach(t *testing.T, eng Engine, edges []Edge) {
	t.Helper()
	for i, e := range edges {
		if _, err := eng.Feed(e); err != nil {
			t.Fatalf("feed edge %d: %v", i, err)
		}
	}
}

// feedChunks drives edges through FeedBatch in uneven chunks.
func feedChunks(t *testing.T, eng Engine, edges []Edge, chunk int) {
	t.Helper()
	for off := 0; off < len(edges); off += chunk {
		end := off + chunk
		if end > len(edges) {
			end = len(edges)
		}
		n, err := eng.FeedBatch(edges[off:end])
		if err != nil {
			t.Fatalf("feed batch at %d: %v", off, err)
		}
		if n != end-off {
			t.Fatalf("feed batch at %d: fed %d of %d", off, n, end-off)
		}
	}
}

func TestConformanceSingleCombinations(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 2500, 91)
	const window = 60

	open := func(t *testing.T, cfg Config) Engine {
		t.Helper()
		cfg.Query, cfg.Window = q, window
		eng, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	base := open(t, Config{})
	feedEach(t, base, edges)
	base.Close()
	want := snap(base.Stats())
	if want.Matches == 0 || want.Discarded == 0 {
		t.Fatalf("degenerate baseline: %+v", want)
	}

	cases := []struct {
		name  string
		cfg   Config
		batch int // 0 = per-edge Feed
	}{
		{name: "feedbatch", batch: 97},
		{name: "independent-storage", cfg: Config{Storage: Independent}},
		{name: "workers-4", cfg: Config{Workers: 4}},
		{name: "workers-4-alllocks", cfg: Config{Workers: 4, LockScheme: AllLocks}},
		{name: "adaptive", cfg: Config{Adaptive: &Adaptivity{ReoptimizeEvery: 128, MinGain: 1.05}}},
		{name: "durable", cfg: Config{Durable: &Durability{CheckpointEvery: 300}}},
		{name: "durable-batch", cfg: Config{Durable: &Durability{CheckpointEvery: 300}}, batch: 113},
		{name: "adaptive-durable", cfg: Config{
			Adaptive: &Adaptivity{ReoptimizeEvery: 128, MinGain: 1.05},
			Durable:  &Durability{CheckpointEvery: 300},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.Durable != nil {
				tc.cfg.Durable.Dir = t.TempDir()
			}
			eng := open(t, tc.cfg)
			if tc.batch > 0 {
				feedChunks(t, eng, edges, tc.batch)
			} else {
				feedEach(t, eng, edges)
			}
			eng.Close() // drain workers so counters are final
			if got := snap(eng.Stats()); got != want {
				t.Fatalf("stats diverge from plain engine: got %+v, want %+v", got, want)
			}
		})
	}
}

func TestConformanceCountWindow(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 1500, 17)

	base, err := Open(Config{Query: q, CountWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	feedEach(t, base, edges)
	base.Close()
	want := snap(base.Stats())
	if want.Matches == 0 {
		t.Fatalf("degenerate count-window baseline: %+v", want)
	}

	batch, err := Open(Config{Query: q, CountWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	feedChunks(t, batch, edges, 89)
	batch.Close()
	if got := snap(batch.Stats()); got != want {
		t.Fatalf("count-window batch diverges: got %+v, want %+v", got, want)
	}

	// Count-window fleet members: each member must equal the standalone
	// count-window engine, with sequential and sharded execution alike
	// (count windows measure fed edges, so the shard fan-out must feed
	// every member exactly once per edge).
	for _, workers := range []int{1, 4} {
		fl, err := OpenFleet(Config{
			Queries:      []QuerySpec{{Name: "q1", Query: q}, {Name: "q2", Query: q}},
			CountWindow:  64,
			FleetWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		feedEach(t, fl, edges)
		fl.Close()
		for name, qs := range fl.Stats().Queries {
			if got := snap(qs); got != want {
				t.Fatalf("count-window fleet member %s (workers=%d) diverges: got %+v, want %+v", name, workers, got, want)
			}
		}
	}
}

// TestConformanceAdaptiveDurable proves the previously-impossible
// adaptive+durable composition end to end: the join order demonstrably
// adapts, a crash loses nothing, and the durable total equals the plain
// uninterrupted run.
func TestConformanceAdaptiveDurable(t *testing.T) {
	q := starQuery(t)
	edges := skewedStream(1600, 5, 0)
	edges = append(edges, skewedStreamFrom(1600, 1600, 6, 2)...)
	const window = 300

	base, err := Open(Config{Query: q, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	feedEach(t, base, edges)
	base.Close()
	want := snap(base.Stats())
	if want.Matches == 0 {
		t.Fatal("degenerate baseline: no matches")
	}

	adapt := &Adaptivity{ReoptimizeEvery: 150, MinGain: 1.05}
	dir := t.TempDir()
	cfg := Config{Query: q, Window: window, Adaptive: adapt,
		Durable: &Durability{Dir: dir, CheckpointEvery: 500}}

	// Run 1: feed 60% of the stream, then crash (no Close).
	eng1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(edges) * 6 / 10
	feedEach(t, eng1, edges[:cut])
	if eng1.Stats().Reoptimizations == 0 {
		t.Fatal("adaptive+durable engine never reoptimized — combination not exercised")
	}
	// Abandon without Close: recovery must rebuild from WAL+checkpoint.

	eng2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats()
	if st.Matches != eng1.Stats().Matches {
		t.Fatalf("recovered matches %d != pre-crash %d", st.Matches, eng1.Stats().Matches)
	}
	feedEach(t, eng2, edges[cut:])
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := snap(eng2.Stats()); got != want {
		t.Fatalf("adaptive+durable across crash diverges: got %+v, want %+v", got, want)
	}
}

// skewedStreamFrom is skewedStream with a timestamp offset, for
// multi-phase streams.
func skewedStreamFrom(start, n int, seed int64, hot int) []Edge {
	out := skewedStream(n, seed, hot)
	for i := range out {
		out[i].Time += Timestamp(start)
	}
	return out
}

// streamMatchKey canonically identifies a match by the stream content
// of its bound edges. Unlike edge IDs — which are per-engine arrival
// indices in routed mode and WAL sequence numbers in durable mode — the
// ⟨from, to, time⟩ triple of an edge is invariant across every fleet
// composition, so match *sets* are comparable between any two engines
// fed the same stream.
func streamMatchKey(m *Match) string {
	var b strings.Builder
	for _, e := range m.Edges {
		fmt.Fprintf(&b, "%d>%d@%d;", e.From, e.To, e.Time)
	}
	return b.String()
}

// matchSetCollector accumulates per-query match multisets. It locks
// because a sharded fleet delivers matches from concurrent shard
// workers (serialized per query engine, not across them).
type matchSetCollector struct {
	mu   sync.Mutex
	sets map[string]map[string]int
}

func newMatchSetCollector() *matchSetCollector {
	return &matchSetCollector{sets: make(map[string]map[string]int)}
}

func (c *matchSetCollector) add(name string, m *Match) {
	key := streamMatchKey(m)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sets[name] == nil {
		c.sets[name] = make(map[string]int)
	}
	c.sets[name][key]++
}

func (c *matchSetCollector) get(name string) map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sets[name]
}

func sameMatchSet(got, want map[string]int) bool {
	if len(got) != len(want) {
		return false
	}
	for k, n := range want {
		if got[k] != n {
			return false
		}
	}
	return true
}

// TestConformanceFleetCombinations drives every fleet composition —
// broadcast/routed, dynamic roster, durable, adaptive members, with
// sequential and sharded execution (FleetWorkers 1 vs 4) — through the
// same scripted stream and asserts each member reports the *identical
// per-query match set* (not just equal counts) and the same stats
// totals as the standalone engine. Sharding changes performance, never
// results.
func TestConformanceFleetCombinations(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	star := starQuery(t)
	edges := persistTestStream(labels, 2000, 33)
	const window = 80

	// Standalone baselines, one per member query, over the same stream.
	baseCollector := newMatchSetCollector()
	baseline := func(t *testing.T, name string, q *Query) confSnap {
		t.Helper()
		eng, err := Open(Config{Query: q, Window: window,
			OnMatch: func(_ string, m *Match) { baseCollector.add(name, m) }})
		if err != nil {
			t.Fatal(err)
		}
		feedEach(t, eng, edges)
		eng.Close()
		return snap(eng.Stats())
	}
	wantChain := baseline(t, "chain", q)
	wantStar := baseline(t, "star", star)
	if wantChain.Matches == 0 {
		t.Fatalf("degenerate chain baseline: %+v", wantChain)
	}

	specs := []QuerySpec{
		{Name: "chain", Query: q},
		{Name: "star", Query: star},
	}
	adapt := &Adaptivity{ReoptimizeEvery: 100, MinGain: 1.05}

	cases := []struct {
		name    string
		cfg     Config
		routed  bool // routed members may hold fewer edges in-window
		dynamic bool // register the specs via AddQuery before feeding
		batch   int  // 0 = per-edge Feed
	}{
		{name: "broadcast", cfg: Config{Queries: specs, Window: window}},
		{name: "broadcast-batch", cfg: Config{Queries: specs, Window: window}, batch: 101},
		{name: "routed", cfg: Config{Queries: specs, Window: window, Routed: true}, routed: true},
		{name: "routed-batch", cfg: Config{Queries: specs, Window: window, Routed: true}, routed: true, batch: 89},
		{name: "dynamic", cfg: Config{Dynamic: true, Window: window}, dynamic: true, batch: 97},
		{name: "adaptive-members", cfg: Config{Queries: specs, Window: window, Adaptive: adapt}},
		{name: "durable", cfg: Config{Queries: specs, Window: window, Durable: &Durability{CheckpointEvery: 300}}},
		{name: "durable-batch", cfg: Config{Queries: specs, Window: window, Durable: &Durability{CheckpointEvery: 300}}, batch: 113},
		{name: "durable-adaptive-members", cfg: Config{
			Queries: specs, Window: window, Adaptive: adapt,
			Durable: &Durability{CheckpointEvery: 300},
		}},
		{name: "spec-level-adaptive", cfg: Config{
			Queries: []QuerySpec{
				{Name: "chain", Query: q},
				{Name: "star", Query: star, Adaptive: adapt},
			},
			Window: window,
		}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers-%d", tc.name, workers), func(t *testing.T) {
				cfg := tc.cfg
				cfg.FleetWorkers = workers
				if cfg.Durable != nil {
					d := *cfg.Durable
					d.Dir = t.TempDir()
					cfg.Durable = &d
				}
				got := newMatchSetCollector()
				cfg.OnMatch = got.add
				fl, err := OpenFleet(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if tc.dynamic {
					for _, spec := range specs {
						if err := fl.AddQuery(spec); err != nil {
							t.Fatal(err)
						}
					}
				}
				if tc.batch > 0 {
					feedChunks(t, fl, edges, tc.batch)
				} else {
					feedEach(t, fl, edges)
				}
				fl.Close()
				st := fl.Stats()
				if workers > 1 {
					if st.FleetWorkers != workers || len(st.ShardMembers) != workers {
						t.Fatalf("sharded stats missing shard section: workers=%d shards=%v",
							st.FleetWorkers, st.ShardMembers)
					}
				}
				var memberSum int64
				for name, want := range map[string]confSnap{"chain": wantChain, "star": wantStar} {
					gotSnap := snap(st.Queries[name])
					memberSum += gotSnap.Matches
					if tc.routed {
						// A routed member sees only compatible edges: its
						// window holds a subset and edges the full engine
						// would count as discardable are filtered before it.
						// The result set — Matches — must still agree.
						gotSnap.InWindow, gotSnap.Discarded = want.InWindow, want.Discarded
					}
					if gotSnap != want {
						t.Fatalf("fleet member %s diverges: got %+v, want %+v", name, gotSnap, want)
					}
					if !sameMatchSet(got.get(name), baseCollector.get(name)) {
						t.Fatalf("fleet member %s match set diverges from standalone engine (%d vs %d distinct matches)",
							name, len(got.get(name)), len(baseCollector.get(name)))
					}
				}
				if st.Matches != memberSum {
					t.Fatalf("fleet aggregate %d != member sum %d", st.Matches, memberSum)
				}
			})
		}
	}
}

// TestConformanceAdaptiveInFleet pins the second previously-impossible
// combination with a stream that demonstrably triggers reoptimization
// inside a fleet member, then checks the member against the standalone
// adaptive and plain engines.
func TestConformanceAdaptiveInFleet(t *testing.T) {
	star := starQuery(t)
	edges := skewedStream(1500, 21, 0)
	edges = append(edges, skewedStreamFrom(1500, 1500, 22, 2)...)
	const window = 250

	plain, err := Open(Config{Query: star, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	feedEach(t, plain, edges)
	plain.Close()
	want := snap(plain.Stats())

	adapt := &Adaptivity{ReoptimizeEvery: 120, MinGain: 1.05}
	fl, err := OpenFleet(Config{
		Queries: []QuerySpec{{Name: "star", Query: star, Adaptive: adapt}},
		Window:  window,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedEach(t, fl, edges)
	fl.Close()
	st := fl.Stats()
	if st.Queries["star"].Reoptimizations == 0 {
		t.Fatal("fleet member never reoptimized — adaptive-in-fleet not exercised")
	}
	if got := snap(st.Queries["star"]); got != want {
		t.Fatalf("adaptive fleet member diverges: got %+v, want %+v", got, want)
	}
}

// TestFleetStatsConcurrentWithAdaptiveFeed exercises the fleet
// contract that read accessors may run concurrently with Feed, in the
// presence of an adaptive member whose engine rebuilds mid-stream (the
// dispatch lock upgrades to exclusive for that). Run under -race.
func TestFleetStatsConcurrentWithAdaptiveFeed(t *testing.T) {
	run := func(t *testing.T, durable bool) {
		star := starQuery(t)
		edges := skewedStream(1200, 9, 0)
		edges = append(edges, skewedStreamFrom(1200, 1200, 10, 2)...)
		cfg := Config{
			Queries: []QuerySpec{{Name: "star", Query: star}},
			Window:  200,
			Adaptive: &Adaptivity{
				ReoptimizeEvery: 100,
				MinGain:         1.05,
			},
		}
		if durable {
			cfg.Durable = &Durability{Dir: t.TempDir(), CheckpointEvery: 300}
		}
		fl, err := OpenFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = fl.Stats()
					_ = fl.Names()
					_ = fl.HasQuery("star")
				}
			}
		}()
		feedEach(t, fl, edges)
		close(stop)
		wg.Wait()
		if fl.Stats().Queries["star"].Reoptimizations == 0 {
			t.Fatal("no rebuild happened — test exercises nothing")
		}
		fl.Close()
	}
	t.Run("in-memory", func(t *testing.T) { run(t, false) })
	t.Run("durable", func(t *testing.T) { run(t, true) })
}

// TestRunWrapsErrorsIdentically pins the shared Run loop contract:
// every engine shape (and façade) wraps a feed error with the
// offending edge's stream index the same way. MultiSearcher.Run used
// to return the error bare.
func TestRunWrapsErrorsIdentically(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	badStream := func() chan Edge {
		ch := make(chan Edge, 2)
		ch <- Edge{From: 0, To: 1, FromLabel: labels.Intern("a"), ToLabel: labels.Intern("b"), Time: 5}
		ch <- Edge{From: 1, To: 2, FromLabel: labels.Intern("b"), ToLabel: labels.Intern("c"), Time: 5} // out of order
		close(ch)
		return ch
	}
	check := func(t *testing.T, n int64, err error) {
		t.Helper()
		if n != 1 {
			t.Fatalf("processed %d edges, want 1", n)
		}
		if !errors.Is(err, graph.ErrOutOfOrder) {
			t.Fatalf("err = %v, want ErrOutOfOrder", err)
		}
		if want := "timingsubg: edge 1: "; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
			t.Fatalf("err %q does not wrap the edge index like %q", err, want)
		}
	}
	t.Run("engine", func(t *testing.T) {
		eng, err := Open(Config{Query: q, Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		n, err := eng.Run(t.Context(), badStream())
		check(t, n, err)
	})
	t.Run("fleet", func(t *testing.T) {
		fl, err := OpenFleet(Config{Queries: []QuerySpec{{Name: "q", Query: q}}, Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		n, err := fl.Run(t.Context(), badStream())
		check(t, n, err)
	})
	t.Run("searcher-shim", func(t *testing.T) {
		s, err := NewSearcher(q, Options{Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.Run(t.Context(), badStream())
		check(t, n, err)
	})
	t.Run("multi-shim", func(t *testing.T) {
		ms, err := NewMultiSearcher([]QuerySpec{{Name: "q", Query: q, Options: Options{Window: 10}}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ms.Run(t.Context(), badStream())
		check(t, n, err)
	})
}

func TestFeedBatchStopsAtBadEdge(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 20, 3)
	edges[10].Time = edges[9].Time // out of order mid-batch

	eng, err := Open(Config{Query: q, Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.FeedBatch(edges)
	if n != 10 {
		t.Fatalf("fed %d edges before the bad one, want 10", n)
	}
	if !errors.Is(err, graph.ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	// The engine stays usable past the bad edge.
	if _, err := eng.FeedBatch(edges[11:]); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Fed; got != 19 {
		t.Fatalf("fed total %d, want 19", got)
	}
}

// TestFeedBatchCannotPoisonWAL checks the durable batch path validates
// timestamps before logging: after rejecting a bad edge, a reopen of
// the directory must succeed (a poisoned log would fail recovery).
func TestFeedBatchCannotPoisonWAL(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 30, 4)
	edges[20].Time = edges[19].Time

	dir := t.TempDir()
	cfg := Config{Query: q, Window: 50, Durable: &Durability{Dir: dir}}
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.FeedBatch(edges)
	if n != 20 || !errors.Is(err, graph.ErrOutOfOrder) {
		t.Fatalf("FeedBatch = (%d, %v), want (20, ErrOutOfOrder)", n, err)
	}
	// Same for the single-edge durable path (previously the bad edge hit
	// the WAL first and recovery would fail).
	if _, err := eng.Feed(edges[20]); !errors.Is(err, graph.ErrOutOfOrder) {
		t.Fatalf("Feed = %v, want ErrOutOfOrder", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after rejected batch: %v", err)
	}
	if got := eng2.Stats().WALSeq; got != 20 {
		t.Fatalf("WALSeq = %d, want 20 (only valid edges logged)", got)
	}
	eng2.Close()
}

func TestErrClosed(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	e := Edge{From: 0, To: 1, FromLabel: labels.Intern("a"), ToLabel: labels.Intern("b"), Time: 1}

	t.Run("single", func(t *testing.T) {
		eng, err := Open(Config{Query: q, Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, err := eng.Feed(e); !errors.Is(err, ErrClosed) {
			t.Fatalf("Feed after Close = %v, want ErrClosed", err)
		}
		if _, err := eng.FeedBatch([]Edge{e}); !errors.Is(err, ErrClosed) {
			t.Fatalf("FeedBatch after Close = %v, want ErrClosed", err)
		}
	})
	t.Run("durable", func(t *testing.T) {
		eng, err := Open(Config{Query: q, Window: 10, Durable: &Durability{Dir: t.TempDir()}})
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		if _, err := eng.Feed(e); !errors.Is(err, ErrClosed) {
			t.Fatalf("Feed after Close = %v, want ErrClosed", err)
		}
	})
	t.Run("fleet", func(t *testing.T) {
		fl, err := OpenFleet(Config{Queries: []QuerySpec{{Name: "q", Query: q}}, Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		fl.Close()
		if _, err := fl.Feed(e); !errors.Is(err, ErrClosed) {
			t.Fatalf("Feed after Close = %v, want ErrClosed", err)
		}
		if _, err := fl.FeedBatch([]Edge{e}); !errors.Is(err, ErrClosed) {
			t.Fatalf("FeedBatch after Close = %v, want ErrClosed", err)
		}
		if err := fl.AddQuery(QuerySpec{Name: "late", Query: q}); !errors.Is(err, ErrClosed) {
			t.Fatalf("AddQuery after Close = %v, want ErrClosed", err)
		}
	})
	t.Run("deprecated-shims", func(t *testing.T) {
		s, err := NewSearcher(q, Options{Window: 10})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if _, err := s.Feed(e); !errors.Is(err, ErrClosed) {
			t.Fatalf("Searcher.Feed after Close = %v, want ErrClosed", err)
		}
	})
}

func TestOpenValidation(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	spec := QuerySpec{Name: "q", Query: q}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no-query", Config{Window: 10}},
		{"query-and-queries", Config{Query: q, Queries: []QuerySpec{spec}, Window: 10}},
		{"query-and-dynamic", Config{Query: q, Dynamic: true, Window: 10}},
		{"both-windows", Config{Query: q, Window: 10, CountWindow: 10}},
		{"no-window", Config{Query: q}},
		{"adaptive-workers", Config{Query: q, Window: 10, Workers: 4, Adaptive: &Adaptivity{}}},
		{"durable-workers", Config{Query: q, Window: 10, Workers: 4, Durable: &Durability{Dir: "x"}}},
		{"durable-no-dir", Config{Query: q, Window: 10, Durable: &Durability{}}},
		{"durable-count-window", Config{Query: q, CountWindow: 10, Durable: &Durability{Dir: "x"}}},
		{"workers-independent", Config{Query: q, Window: 10, Workers: 4, Storage: Independent}},
		{"routed-count-window", Config{Queries: []QuerySpec{spec}, CountWindow: 10, Routed: true}},
		{"routed-durable", Config{Queries: []QuerySpec{spec}, Window: 10, Routed: true, Durable: &Durability{Dir: "x"}}},
		{"routed-single", Config{Query: q, Window: 10, Routed: true}},
		{"fleetworkers-single", Config{Query: q, Window: 10, FleetWorkers: 4}},
		{"fleetworkers-negative", Config{Queries: []QuerySpec{spec}, Window: 10, FleetWorkers: -1}},
		{"empty-fleet", Config{Queries: []QuerySpec{}}},
		{"unnamed-member", Config{Queries: []QuerySpec{{Query: q}}, Window: 10}},
		{"duplicate-member", Config{Queries: []QuerySpec{spec, spec}, Window: 10}},
		{"durable-path-unsafe-name", Config{
			Queries: []QuerySpec{{Name: "a/b", Query: q}}, Window: 10,
			Durable: &Durability{Dir: "x"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.cfg); !errors.Is(err, ErrBadOptions) {
				t.Fatalf("Open = %v, want ErrBadOptions", err)
			}
		})
	}
}

// TestFleetDefaultsInherited checks Config-level defaults flow into
// members that leave them unset, while spec-level settings win.
func TestFleetDefaultsInherited(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	fl, err := OpenFleet(Config{
		Queries: []QuerySpec{
			{Name: "default", Query: q},
			{Name: "custom", Query: q, Options: Options{Window: 25}},
		},
		Window: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := persistTestStream(labels, 300, 44)
	feedEach(t, fl, edges)
	st := fl.Stats()
	fl.Close()
	// The 25-tick window must hold no more edges than the 80-tick one.
	if d, c := st.Queries["default"].InWindow, st.Queries["custom"].InWindow; c > d {
		t.Fatalf("custom window (25) holds %d edges, default (80) holds %d", c, d)
	}
	if st.Queries["default"].InWindow == st.Queries["custom"].InWindow {
		t.Fatalf("windows did not differ: spec override ineffective")
	}
}
