package timingsubg

import "testing"

// BenchmarkIngestLatency is the observability-plane headline benchmark:
// it drives the 1e5-edge stream through a metrics-on engine and reports
// the pipeline's own histogram percentiles as benchmark metrics — p50
// and p99 ingest latency (feed call → edge fully joined and delivered)
// and p50/p99 detection latency (triggering-edge arrival → match
// emission). scripts/bench_latency.sh runs it and emits the numbers as
// BENCH_latency.json, the latency counterpart to BENCH_core.json's
// throughput trajectory.
func BenchmarkIngestLatency(b *testing.B) {
	labels := NewLabels()
	q := persistTestQuery(b, labels)
	edges := persistTestStream(labels, benchStreamLen, 7)
	for _, bc := range []struct {
		name  string
		batch int
	}{{"feed", 0}, {"batch-1024", 1024}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var st Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := Open(Config{Query: q, Window: 50})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if bc.batch <= 0 {
					for _, e := range edges {
						if _, err := eng.Feed(e); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for off := 0; off < len(edges); off += bc.batch {
						end := min(off+bc.batch, len(edges))
						if _, err := eng.FeedBatch(edges[off:end]); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				st = eng.Stats()
				eng.Close()
				b.StartTimer()
			}
			if st.Stages == nil {
				b.Fatal("metrics must be on for the latency benchmark")
			}
			if st.Stages.Ingest.Count == 0 || st.Stages.Detection.Count == 0 {
				b.Fatalf("stream must exercise ingest and detection: %+v", st.Stages)
			}
			b.ReportMetric(float64(st.Stages.Ingest.P50), "p50-ingest-ns")
			b.ReportMetric(float64(st.Stages.Ingest.P99), "p99-ingest-ns")
			b.ReportMetric(float64(st.Stages.Detection.P50), "p50-detect-ns")
			b.ReportMetric(float64(st.Stages.Detection.P99), "p99-detect-ns")
			b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}
