package timingsubg

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"timingsubg/internal/datagen"
)

// The batch-expiry equivalence suite at the composition layer: window
// slides run through the batched eviction plane by default (one
// transaction sweeping every expired edge of the slide over the
// per-level expiry order) with the internal perEdgeExpiry knob as the
// edge-at-a-time ablation. Batching is pure performance — every public
// composition must report identical per-query match sets and result
// counters either way. Deeper counter equivalence (PartialIns/
// PartialDel/EdgesOut) is asserted per stream in internal/core's
// TestExpiryBatchEquivalence; this layer proves the facades — including
// sharded fleets, where shard workers run slides concurrently — inherit
// it, and that the batch-plane counters surface through the unified
// snapshot.

// expiryFleetRun is equivFleetRun with a caller-chosen (small, high-
// churn) window, so slides carry multi-edge eviction batches.
func expiryFleetRun(t *testing.T, cfg Config, specs []QuerySpec, edges []Edge, batch int, window Timestamp) (map[string][]string, Stats) {
	t.Helper()
	var mu sync.Mutex
	got := map[string][]string{}
	cfg.Queries = specs
	cfg.Window = window
	cfg.OnMatch = func(query string, m *Match) {
		mu.Lock()
		got[query] = append(got[query], m.Key())
		mu.Unlock()
	}
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batch > 0 {
		feedChunks(t, eng, edges, batch)
	} else {
		feedEach(t, eng, edges)
	}
	st := eng.Stats()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for name := range got {
		sort.Strings(got[name])
	}
	return got, st
}

func TestExpiryEquivalenceFleet(t *testing.T) {
	for _, ds := range datagen.Datasets() {
		t.Run(ds.String(), func(t *testing.T) {
			labels := NewLabels()
			gen := datagen.New(ds, labels, datagen.Config{Vertices: 90, Seed: 41})
			edges := gen.Take(1500)
			specs := equivSpecs(t, edges)

			refKeys, refStats := expiryFleetRun(t, Config{}, specs, edges, 0, 120)
			total := 0
			for _, ks := range refKeys {
				total += len(ks)
			}
			if total == 0 {
				t.Skip("degenerate workload: no matches")
			}
			if refStats.ExpiryEvicted == 0 {
				t.Skip("degenerate workload: window never slid")
			}
			if refStats.ExpiryBatches == 0 {
				t.Error("batched fleet evicted edges without counting a batch")
			}
			if refStats.ExpiryEvicted < refStats.ExpiryBatches {
				t.Errorf("evicted %d < batches %d", refStats.ExpiryEvicted, refStats.ExpiryBatches)
			}

			for _, tc := range []struct {
				name  string
				cfg   Config
				batch int
			}{
				{name: "peredge", cfg: Config{perEdgeExpiry: true}},
				{name: "independent", cfg: Config{Storage: Independent}},
				{name: "independent-peredge", cfg: Config{Storage: Independent, perEdgeExpiry: true}},
				{name: "scan-peredge", cfg: Config{scanProbes: true, perEdgeExpiry: true}},
				{name: "workers4", cfg: Config{FleetWorkers: 4}, batch: 128},
				{name: "workers4-peredge", cfg: Config{FleetWorkers: 4, perEdgeExpiry: true}, batch: 128},
			} {
				t.Run(tc.name, func(t *testing.T) {
					keys, st := expiryFleetRun(t, tc.cfg, specs, edges, tc.batch, 120)
					if len(keys) != len(refKeys) {
						t.Fatalf("per-query sets: got %d queries, want %d", len(keys), len(refKeys))
					}
					for name, want := range refKeys {
						got := keys[name]
						if len(got) != len(want) {
							t.Errorf("query %s: %d matches, want %d", name, len(got), len(want))
							continue
						}
						for i := range want {
							if got[i] != want[i] {
								t.Errorf("query %s: match set diverges at %d: %s != %s", name, i, got[i], want[i])
								break
							}
						}
					}
					if st.Matches != refStats.Matches || st.PartialMatches != refStats.PartialMatches {
						t.Errorf("counters diverge: matches=%d partials=%d, want matches=%d partials=%d",
							st.Matches, st.PartialMatches, refStats.Matches, refStats.PartialMatches)
					}
					if tc.cfg.perEdgeExpiry {
						if st.ExpiryBatches != 0 || st.ExpiryEvicted != 0 {
							t.Errorf("per-edge run reported batch counters: batches=%d evicted=%d",
								st.ExpiryBatches, st.ExpiryEvicted)
						}
					} else if st.ExpiryEvicted != refStats.ExpiryEvicted {
						// The eviction tally is a property of the stream and
						// window, not of storage backend or worker count.
						t.Errorf("evicted %d edges, want %d", st.ExpiryEvicted, refStats.ExpiryEvicted)
					}
				})
			}
		})
	}
}

// TestExpiryBatchStatsSurfaced checks the batch-plane counters flow
// through the unified snapshot on a plain single engine: the default
// run reports batches > 0 with evicted ≥ batches, the per-edge ablation
// reports zero for both, and the result counters agree.
func TestExpiryBatchStatsSurfaced(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 2000, 23)

	run := func(perEdge bool) Stats {
		eng, err := Open(Config{Query: q, Window: 60, perEdgeExpiry: perEdge})
		if err != nil {
			t.Fatal(err)
		}
		feedEach(t, eng, edges)
		st := eng.Stats()
		eng.Close()
		return st
	}
	bat, per := run(false), run(true)
	if bat.ExpiryBatches == 0 || bat.ExpiryEvicted == 0 {
		t.Fatalf("workload slid no eviction batches: batches=%d evicted=%d",
			bat.ExpiryBatches, bat.ExpiryEvicted)
	}
	if bat.ExpiryEvicted < bat.ExpiryBatches {
		t.Errorf("evicted %d < batches %d", bat.ExpiryEvicted, bat.ExpiryBatches)
	}
	if per.ExpiryBatches != 0 || per.ExpiryEvicted != 0 {
		t.Errorf("per-edge run reported batch counters: batches=%d evicted=%d",
			per.ExpiryBatches, per.ExpiryEvicted)
	}
	if bat.Matches != per.Matches {
		t.Errorf("matches diverge: batched %d, per-edge %d", bat.Matches, per.Matches)
	}
	if bat.InWindow != per.InWindow {
		t.Errorf("window population diverges: batched %d, per-edge %d", bat.InWindow, per.InWindow)
	}
}

// TestExpiryShardedChurn races batch eviction against the full sharded
// Fleet surface under -race: a tight window makes nearly every FeedBatch
// chunk slide the window on some shard while other goroutines churn the
// roster and sample Stats. The pinned member's results must match a
// serial fleet fed the same stream, batched and per-edge alike.
func TestExpiryShardedChurn(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 6000, 77)

	serialPinned := func(perEdge bool) Stats {
		fl, err := OpenFleet(Config{
			Queries:       []QuerySpec{{Name: "pinned", Query: q}},
			Window:        50,
			perEdgeExpiry: perEdge,
		})
		if err != nil {
			t.Fatal(err)
		}
		feedEach(t, fl, edges)
		st := fl.Stats().Queries["pinned"]
		fl.Close()
		return st
	}

	for _, tc := range []struct {
		name    string
		perEdge bool
	}{
		{"batched", false},
		{"peredge", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := serialPinned(tc.perEdge)
			fl, err := OpenFleet(Config{
				Dynamic:       true,
				FleetWorkers:  4,
				Window:        50,
				Queries:       []QuerySpec{{Name: "pinned", Query: q}},
				perEdgeExpiry: tc.perEdge,
			})
			if err != nil {
				t.Fatal(err)
			}
			accepted := stressFleet(t, fl, edges, q)
			if accepted != int64(len(edges)) {
				t.Fatalf("accepted %d of %d edges", accepted, len(edges))
			}
			got := fl.Stats().Queries["pinned"]
			if got.Matches != want.Matches {
				t.Errorf("pinned matches %d != serial %d", got.Matches, want.Matches)
			}
			if got.ExpiryBatches != want.ExpiryBatches || got.ExpiryEvicted != want.ExpiryEvicted {
				t.Errorf("pinned batch counters (batches=%d evicted=%d) != serial (batches=%d evicted=%d)",
					got.ExpiryBatches, got.ExpiryEvicted, want.ExpiryBatches, want.ExpiryEvicted)
			}
			if !tc.perEdge && got.ExpiryBatches == 0 {
				t.Error("sharded batched run slid no eviction batches; the churn test is vacuous")
			}
			if tc.perEdge && (got.ExpiryBatches != 0 || got.ExpiryEvicted != 0) {
				t.Errorf("per-edge run reported batch counters: batches=%d evicted=%d",
					got.ExpiryBatches, got.ExpiryEvicted)
			}
			if err := fl.Close(); err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}
