package timingsubg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"timingsubg"
)

// fleetQuery builds a 2-edge path query x→y→z with e1 ≺ e2.
func fleetQuery(t testing.TB, x, y, z timingsubg.Label) *timingsubg.Query {
	t.Helper()
	b := timingsubg.NewQueryBuilder()
	vx, vy, vz := b.AddVertex(x), b.AddVertex(y), b.AddVertex(z)
	e1 := b.AddEdge(vx, vy)
	e2 := b.AddEdge(vy, vz)
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// fleetStream generates a random stream over nl vertex labels with
// stable per-vertex labels.
func fleetStream(labels *timingsubg.Labels, nl, n int, seed int64) []timingsubg.Edge {
	rng := rand.New(rand.NewSource(seed))
	lab := make([]timingsubg.Label, nl)
	for i := range lab {
		lab[i] = labels.Intern(fmt.Sprintf("L%d", i))
	}
	labelOf := func(v timingsubg.VertexID) timingsubg.Label { return lab[int(v)%nl] }
	var out []timingsubg.Edge
	for i := 0; i < n; i++ {
		from := timingsubg.VertexID(rng.Intn(3 * nl))
		to := timingsubg.VertexID(rng.Intn(3 * nl))
		if from == to {
			to = (to + 1) % timingsubg.VertexID(3*nl)
		}
		out = append(out, timingsubg.Edge{
			From: from, To: to,
			FromLabel: labelOf(from), ToLabel: labelOf(to),
			Time: timingsubg.Timestamp(i + 1),
		})
	}
	return out
}

// TestRoutedEqualsUnrouted: routing is a pure dispatch optimization —
// per-query match counts must be identical to the naive fan-out on the
// same stream, for a fleet whose queries cover disjoint and overlapping
// label signatures.
func TestRoutedEqualsUnrouted(t *testing.T) {
	labels := timingsubg.NewLabels()
	const nl = 6
	var specs []timingsubg.QuerySpec
	lab := func(i int) timingsubg.Label { return labels.Intern(fmt.Sprintf("L%d", i)) }
	for i := 0; i < nl; i++ {
		specs = append(specs, timingsubg.QuerySpec{
			Name:    fmt.Sprintf("q%d", i),
			Query:   fleetQuery(t, lab(i), lab((i+1)%nl), lab((i+2)%nl)),
			Options: timingsubg.Options{Window: 40},
		})
	}
	edges := fleetStream(labels, nl, 800, 7)

	run := func(routed bool) map[string]int64 {
		var ms *timingsubg.MultiSearcher
		var err error
		if routed {
			ms, err = timingsubg.NewRoutedMultiSearcher(specs, nil)
		} else {
			ms, err = timingsubg.NewMultiSearcher(specs, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			if err := ms.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		ms.Close()
		return ms.MatchCounts()
	}

	plain := run(false)
	routed := run(true)
	var total int64
	for name, want := range plain {
		total += want
		if routed[name] != want {
			t.Fatalf("query %s: routed %d matches, unrouted %d", name, routed[name], want)
		}
	}
	if total == 0 {
		t.Fatal("fleet found no matches at all; test stream too sparse")
	}
}

// TestRoutedSkipsUninterested: with a fleet of disjoint single-label
// queries, routing must dispatch each edge to at most a few engines.
func TestRoutedSkipsUninterested(t *testing.T) {
	labels := timingsubg.NewLabels()
	const nl = 10
	var specs []timingsubg.QuerySpec
	lab := func(i int) timingsubg.Label { return labels.Intern(fmt.Sprintf("L%d", i)) }
	for i := 0; i < nl; i++ {
		specs = append(specs, timingsubg.QuerySpec{
			Name:    fmt.Sprintf("q%d", i),
			Query:   fleetQuery(t, lab(i), lab(i), lab(i)), // only L_i→L_i edges
			Options: timingsubg.Options{Window: 40},
		})
	}
	ms, err := timingsubg.NewRoutedMultiSearcher(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range fleetStream(labels, nl, 500, 8) {
		if err := ms.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	ms.Close()
	// Each edge has one (from,to) label pair; at most one of the nl
	// disjoint queries is interested, so the routed fraction is <= 1/nl.
	if f := ms.RoutedFraction(); f > 1.0/float64(nl)+1e-9 {
		t.Fatalf("routed fraction %.3f, want <= %.3f", f, 1.0/float64(nl))
	}
}

func TestRoutedFractionUnroutedIsOne(t *testing.T) {
	labels := timingsubg.NewLabels()
	specs := []timingsubg.QuerySpec{{
		Name:    "q",
		Query:   fleetQuery(t, labels.Intern("x"), labels.Intern("y"), labels.Intern("z")),
		Options: timingsubg.Options{Window: 10},
	}}
	ms, err := timingsubg.NewMultiSearcher(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ms.RoutedFraction() != 1 {
		t.Fatalf("unrouted fraction = %v", ms.RoutedFraction())
	}
}

// BenchmarkMultiFanout compares naive fan-out with routed dispatch over
// a 50-query fleet where most queries ignore most edges — the ablation
// for the router design choice.
func BenchmarkMultiFanout(b *testing.B) {
	for _, routed := range []bool{false, true} {
		name := "naive"
		if routed {
			name = "routed"
		}
		b.Run(name, func(b *testing.B) {
			labels := timingsubg.NewLabels()
			const nl = 50
			lab := func(i int) timingsubg.Label { return labels.Intern(fmt.Sprintf("L%d", i)) }
			var specs []timingsubg.QuerySpec
			for i := 0; i < nl; i++ {
				specs = append(specs, timingsubg.QuerySpec{
					Name:    fmt.Sprintf("q%d", i),
					Query:   fleetQuery(b, lab(i), lab(i), lab(i)),
					Options: timingsubg.Options{Window: 100},
				})
			}
			var ms *timingsubg.MultiSearcher
			var err error
			if routed {
				ms, err = timingsubg.NewRoutedMultiSearcher(specs, nil)
			} else {
				ms, err = timingsubg.NewMultiSearcher(specs, nil)
			}
			if err != nil {
				b.Fatal(err)
			}
			edges := fleetStream(labels, nl, 4096, 9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := edges[i%len(edges)]
				e.Time = timingsubg.Timestamp(i + 1)
				if err := ms.Feed(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRoutedCountWindowRejected: count windows are defined over the
// edges fed to an engine, so routing (which skips feeds) would change
// their semantics; the constructor must reject the combination with a
// clear error, while the unrouted fan-out still accepts it.
func TestRoutedCountWindowRejected(t *testing.T) {
	labels := timingsubg.NewLabels()
	specs := []timingsubg.QuerySpec{{
		Name:    "q",
		Query:   fleetQuery(t, labels.Intern("x"), labels.Intern("y"), labels.Intern("z")),
		Options: timingsubg.Options{CountWindow: 50},
	}}
	if _, err := timingsubg.NewRoutedMultiSearcher(specs, nil); err == nil {
		t.Fatal("routed fleet accepted count windows")
	}
	ms, err := timingsubg.NewMultiSearcher(specs, nil)
	if err != nil {
		t.Fatalf("unrouted fan-out rejected count windows: %v", err)
	}
	ms.Close()
}
