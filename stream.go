package timingsubg

import (
	"context"
)

// Run consumes edges from a channel until it closes or ctx is cancelled,
// feeding them through the Searcher. It returns the number of edges
// processed and the first error encountered (a context error, or an
// out-of-order edge) wrapped with the offending edge's stream index. Run
// drains in-flight concurrent transactions before returning, so counters
// are final.
//
// Run is a convenience for pipeline integration; interactive callers can
// keep using Feed directly.
func (s *Searcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return s.en.Run(ctx, edges)
}

// Run is the MultiSearcher analogue of Searcher.Run, with the same
// error wrapping.
func (ms *MultiSearcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return ms.fl.Run(ctx, edges)
}

// Run is the AdaptiveSearcher analogue of Searcher.Run.
func (a *AdaptiveSearcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return a.en.Run(ctx, edges)
}

// Run is the PersistentSearcher analogue of Searcher.Run. The deferred
// Close checkpoints and closes the WAL.
func (ps *PersistentSearcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return ps.en.Run(ctx, edges)
}

// Run is the PersistentMultiSearcher analogue of Searcher.Run. The
// deferred Close checkpoints every query and closes the WAL.
func (pm *PersistentMultiSearcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return pm.fl.Run(ctx, edges)
}
