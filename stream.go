package timingsubg

import (
	"context"
	"fmt"
)

// Run consumes edges from a channel until it closes or ctx is cancelled,
// feeding them through the Searcher. It returns the number of edges
// processed and the first error encountered (a context error, or an
// out-of-order edge). Run drains in-flight concurrent transactions
// before returning, so counters are final.
//
// Run is a convenience for pipeline integration; interactive callers can
// keep using Feed directly.
func (s *Searcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	defer s.Close()
	var n int64
	for {
		select {
		case <-ctx.Done():
			return n, ctx.Err()
		case e, ok := <-edges:
			if !ok {
				return n, nil
			}
			if _, err := s.Feed(e); err != nil {
				return n, fmt.Errorf("timingsubg: edge %d: %w", n, err)
			}
			n++
		}
	}
}

// Run is the MultiSearcher analogue of Searcher.Run.
func (ms *MultiSearcher) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	defer ms.Close()
	var n int64
	for {
		select {
		case <-ctx.Done():
			return n, ctx.Err()
		case e, ok := <-edges:
			if !ok {
				return n, nil
			}
			if err := ms.Feed(e); err != nil {
				return n, err
			}
			n++
		}
	}
}
