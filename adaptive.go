package timingsubg

import (
	"errors"

	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// AdaptiveOptions configures an AdaptiveSearcher.
type AdaptiveOptions struct {
	// Options configures the wrapped searcher. Workers must be <= 1
	// (a rebuild needs a quiescent engine). The Decomposition override
	// supplies the initial order only; the reoptimizer may replace it.
	Options
	// ReoptimizeEvery checks the join order after every n fed edges.
	// Zero means 1024.
	ReoptimizeEvery int
	// MinGain is the estimated cost ratio (current order / best order)
	// required before paying for a rebuild. Zero means 2.0; values
	// closer to 1 reoptimize more eagerly.
	MinGain float64
}

// AdaptiveSearcher is a Searcher whose TC-decomposition join order
// adapts to the observed stream. The paper selects the join order once,
// from the static joint-number heuristic (Section VI-C), noting that a
// priori selectivity estimation is infeasible on streams; the adaptive
// searcher closes that loop with feedback: it samples the observed
// per-subquery match cardinalities, re-scores candidate orders, and
// when another prefix-connected order is estimated to be MinGain×
// cheaper it rebuilds the engine from the in-window edges under the new
// order. Standing matches are not re-reported by a rebuild.
//
// Adaptation changes performance, never results: the engine state after
// a rebuild is the same pure function of the window contents, just
// materialized under a different join order.
type AdaptiveSearcher struct {
	q      *Query
	opts   AdaptiveOptions
	stream graph.Windower
	eng    *core.Engine
	picked []*query.TCSubquery

	// Counter baselines accumulate across rebuilds.
	baseMatches   int64
	baseDiscarded int64
	engMatches0   int64
	engDiscarded0 int64

	rebuilding bool
	sinceCheck int
	rebuilds   int
}

// NewAdaptiveSearcher builds an adaptive searcher for q.
func NewAdaptiveSearcher(q *Query, opts AdaptiveOptions) (*AdaptiveSearcher, error) {
	if opts.Workers > 1 {
		return nil, errors.Join(ErrBadOptions, errors.New("adaptive mode requires Workers <= 1"))
	}
	switch {
	case opts.Window > 0 && opts.CountWindow > 0:
		return nil, errors.Join(ErrBadOptions, errors.New("set only one of Window and CountWindow"))
	case opts.Window <= 0 && opts.CountWindow <= 0:
		return nil, errors.Join(ErrBadOptions, errors.New("one of Window and CountWindow must be positive"))
	}
	if opts.ReoptimizeEvery <= 0 {
		opts.ReoptimizeEvery = 1024
	}
	if opts.MinGain <= 0 {
		opts.MinGain = 2.0
	}
	a := &AdaptiveSearcher{q: q, opts: opts}
	dec := opts.Decomposition
	if dec == nil {
		dec = query.Decompose(q)
	}
	a.picked = append([]*query.TCSubquery(nil), dec.Subqueries...)
	a.eng = a.newEngine(dec)
	if opts.CountWindow > 0 {
		a.stream = graph.NewCountStream(opts.CountWindow)
	} else {
		a.stream = graph.NewStream(opts.Window)
	}
	return a, nil
}

func (a *AdaptiveSearcher) newEngine(dec *Decomposition) *core.Engine {
	onMatch := a.opts.OnMatch
	wrapped := onMatch
	if onMatch != nil {
		wrapped = func(m *Match) {
			if !a.rebuilding {
				onMatch(m)
			}
		}
	}
	return core.New(a.q, core.Config{
		Storage:       a.opts.Storage,
		Decomposition: dec,
		OnMatch:       wrapped,
	})
}

// Feed pushes one edge; see Searcher.Feed.
func (a *AdaptiveSearcher) Feed(e Edge) (EdgeID, error) {
	stored, expired, err := a.stream.Push(e)
	if err != nil {
		return 0, err
	}
	a.eng.Process(stored, expired)
	a.sinceCheck++
	if a.sinceCheck >= a.opts.ReoptimizeEvery {
		a.sinceCheck = 0
		a.maybeReoptimize()
	}
	return stored.ID, nil
}

// maybeReoptimize re-scores the join order under observed cardinalities
// and rebuilds when the estimated gain clears MinGain.
func (a *AdaptiveSearcher) maybeReoptimize() {
	if len(a.picked) <= 2 {
		// With k ≤ 2 there is only one join shape; order can only swap
		// the seed pair, which EstimateOrderCost scores identically.
		return
	}
	obs := a.eng.SubCardinalities()
	byMask := make(map[uint64]float64, len(obs))
	for i, sub := range a.eng.Decomposition().Subqueries {
		byMask[sub.Mask] = float64(obs[i]) + 1 // +1 smoothing
	}
	card := func(s *query.TCSubquery) float64 { return byMask[s.Mask] }

	current := query.EstimateOrderCost(a.eng.Decomposition(), card)
	best := query.OrderByCost(a.q, a.picked, card)
	bestCost := query.EstimateOrderCost(best, card)
	if bestCost <= 0 || current/bestCost < a.opts.MinGain {
		return
	}
	if sameOrder(best, a.eng.Decomposition()) {
		return
	}
	a.rebuild(best)
}

func sameOrder(x, y *Decomposition) bool {
	if len(x.Subqueries) != len(y.Subqueries) {
		return false
	}
	for i := range x.Subqueries {
		if x.Subqueries[i].Mask != y.Subqueries[i].Mask {
			return false
		}
	}
	return true
}

// rebuild replaces the engine with one using dec, re-feeding the
// in-window edges with match reporting muted.
func (a *AdaptiveSearcher) rebuild(dec *Decomposition) {
	a.baseMatches = a.MatchCount()
	a.baseDiscarded = a.Discarded()
	a.eng = a.newEngine(dec)
	a.rebuilding = true
	for _, e := range a.stream.InWindow() {
		a.eng.Process(e, nil)
	}
	a.rebuilding = false
	a.engMatches0 = a.eng.Stats().Matches.Load()
	a.engDiscarded0 = a.eng.Stats().Discarded.Load()
	a.rebuilds++
}

// Close finalizes counters. The searcher must not be fed after Close.
func (a *AdaptiveSearcher) Close() {}

// Reoptimizations returns how many engine rebuilds the reoptimizer has
// performed.
func (a *AdaptiveSearcher) Reoptimizations() int { return a.rebuilds }

// JoinOrder returns the masks of the TC-subqueries in the current join
// order (diagnostics).
func (a *AdaptiveSearcher) JoinOrder() []uint64 {
	out := make([]uint64, 0, a.eng.K())
	for _, s := range a.eng.Decomposition().Subqueries {
		out = append(out, s.Mask)
	}
	return out
}

// MatchCount returns the number of matches reported so far.
func (a *AdaptiveSearcher) MatchCount() int64 {
	return a.baseMatches + a.eng.Stats().Matches.Load() - a.engMatches0
}

// Discarded returns how many fed edges were filtered as discardable.
func (a *AdaptiveSearcher) Discarded() int64 {
	return a.baseDiscarded + a.eng.Stats().Discarded.Load() - a.engDiscarded0
}

// K returns the decomposition size.
func (a *AdaptiveSearcher) K() int { return a.eng.K() }

// InWindow returns the number of edges currently inside the window.
func (a *AdaptiveSearcher) InWindow() int { return a.stream.Len() }

// SpaceBytes estimates resident bytes of maintained partial matches.
func (a *AdaptiveSearcher) SpaceBytes() int64 { return a.eng.SpaceBytes() }

// PartialMatches returns the number of stored partial matches.
func (a *AdaptiveSearcher) PartialMatches() int64 { return a.eng.PartialMatchCount() }

// CurrentMatches enumerates the matches standing in the current window
// (reported and not yet expired). The Match passed to fn is scratch —
// Clone to retain. Call while no Feed is in flight.
func (a *AdaptiveSearcher) CurrentMatches(fn func(*Match) bool) { a.eng.CurrentMatches(fn) }

// CurrentMatchCount returns the number of standing matches.
func (a *AdaptiveSearcher) CurrentMatchCount() int { return a.eng.CurrentMatchCount() }

// SubCardinalities returns the observed per-subquery match counts in
// the current join order — the statistics driving reoptimization.
func (a *AdaptiveSearcher) SubCardinalities() []int { return a.eng.SubCardinalities() }
