package timingsubg

// AdaptiveOptions configures an AdaptiveSearcher.
//
// Deprecated: set Config.Adaptive and call Open.
type AdaptiveOptions struct {
	// Options configures the wrapped searcher. Workers must be <= 1
	// (a rebuild needs a quiescent engine). The Decomposition override
	// supplies the initial order only; the reoptimizer may replace it.
	Options
	// ReoptimizeEvery checks the join order after every n fed edges.
	// Zero means 1024.
	ReoptimizeEvery int
	// MinGain is the estimated cost ratio (current order / best order)
	// required before paying for a rebuild. Zero means 2.0; values
	// closer to 1 reoptimize more eagerly.
	MinGain float64
}

// AdaptiveSearcher is a Searcher whose TC-decomposition join order
// adapts to the observed stream; see Adaptivity for the mechanism.
//
// Deprecated: AdaptiveSearcher is a thin shim over the unified engine.
// Use Open with Config{Query: q, Adaptive: &Adaptivity{...}} — which
// also composes with durability and fleet membership, combinations this
// façade cannot express.
type AdaptiveSearcher struct {
	en *single
}

// NewAdaptiveSearcher builds an adaptive searcher for q.
//
// Deprecated: use Open.
func NewAdaptiveSearcher(q *Query, opts AdaptiveOptions) (*AdaptiveSearcher, error) {
	adapt := &Adaptivity{ReoptimizeEvery: opts.ReoptimizeEvery, MinGain: opts.MinGain}
	en, err := newSingle(q, opts.Options, adapt, matchSink(opts.OnMatch))
	if err != nil {
		return nil, err
	}
	return &AdaptiveSearcher{en: en}, nil
}

// Feed pushes one edge; see Searcher.Feed.
func (a *AdaptiveSearcher) Feed(e Edge) (EdgeID, error) { return a.en.Feed(e) }

// FeedBatch pushes a batch of edges; see Engine.FeedBatch.
func (a *AdaptiveSearcher) FeedBatch(batch []Edge) (int, error) { return a.en.FeedBatch(batch) }

// Close finalizes counters. The searcher must not be fed after Close.
func (a *AdaptiveSearcher) Close() { a.en.Close() }

// Stats returns the unified counter snapshot.
func (a *AdaptiveSearcher) Stats() Stats { return a.en.Stats() }

// Reoptimizations returns how many engine rebuilds the reoptimizer has
// performed.
func (a *AdaptiveSearcher) Reoptimizations() int { return int(a.en.rebuilds.Load()) }

// JoinOrder returns the masks of the TC-subqueries in the current join
// order (diagnostics).
func (a *AdaptiveSearcher) JoinOrder() []uint64 { return a.en.joinOrder() }

// MatchCount returns the number of matches reported so far.
func (a *AdaptiveSearcher) MatchCount() int64 { return a.en.matches() }

// Discarded returns how many fed edges were filtered as discardable.
func (a *AdaptiveSearcher) Discarded() int64 { return a.en.discarded() }

// K returns the decomposition size.
func (a *AdaptiveSearcher) K() int { return a.en.eng.K() }

// InWindow returns the number of edges currently inside the window.
func (a *AdaptiveSearcher) InWindow() int { return a.en.stream.Len() }

// SpaceBytes estimates resident bytes of maintained partial matches.
func (a *AdaptiveSearcher) SpaceBytes() int64 { return a.en.eng.SpaceBytes() }

// PartialMatches returns the number of stored partial matches.
func (a *AdaptiveSearcher) PartialMatches() int64 { return a.en.eng.PartialMatchCount() }

// CurrentMatches enumerates the matches standing in the current window
// (reported and not yet expired). The Match passed to fn is scratch —
// Clone to retain. Call while no Feed is in flight.
func (a *AdaptiveSearcher) CurrentMatches(fn func(*Match) bool) { a.en.CurrentMatches(fn) }

// CurrentMatchCount returns the number of standing matches.
func (a *AdaptiveSearcher) CurrentMatchCount() int { return a.en.currentMatchCount() }

// SubCardinalities returns the observed per-subquery match counts in
// the current join order — the statistics driving reoptimization.
func (a *AdaptiveSearcher) SubCardinalities() []int { return a.en.eng.SubCardinalities() }
