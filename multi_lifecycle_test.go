package timingsubg_test

import (
	"path/filepath"
	"sync"
	"testing"

	"timingsubg"
)

// chainQuery builds a 1-edge query x→y.
func chainQuery(t *testing.T, x, y timingsubg.Label) *timingsubg.Query {
	t.Helper()
	b := timingsubg.NewQueryBuilder()
	u, v := b.AddVertex(x), b.AddVertex(y)
	b.AddEdge(u, v)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestMultiSearcherDynamicLifecycle(t *testing.T) {
	for _, routed := range []bool{false, true} {
		name := "fanout"
		if routed {
			name = "routed"
		}
		t.Run(name, func(t *testing.T) {
			labels := timingsubg.NewLabels()
			la, lb := labels.Intern("a"), labels.Intern("b")

			var mu sync.Mutex
			got := map[string]int{}
			ms := timingsubg.NewDynamicMultiSearcher(routed, func(name string, m *timingsubg.Match) {
				mu.Lock()
				got[name]++
				mu.Unlock()
			})
			feed := func(f, to int64, tm int64) {
				t.Helper()
				if err := ms.Feed(timingsubg.Edge{
					From: timingsubg.VertexID(f), To: timingsubg.VertexID(to),
					FromLabel: la, ToLabel: lb, Time: timingsubg.Timestamp(tm),
				}); err != nil {
					t.Fatal(err)
				}
			}

			// An empty fleet accepts edges and matches nothing.
			feed(1, 2, 1)
			if n := len(ms.Names()); n != 0 {
				t.Fatalf("empty fleet has %d names", n)
			}

			spec := timingsubg.QuerySpec{Name: "ab", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 100}}
			if err := ms.AddQuery(spec); err != nil {
				t.Fatal(err)
			}
			if err := ms.AddQuery(spec); err == nil {
				t.Fatal("duplicate AddQuery must fail")
			}
			if !ms.HasQuery("ab") {
				t.Fatal("HasQuery(ab) = false after AddQuery")
			}
			// The new query must not see the pre-join edge.
			feed(3, 4, 2)
			if got["ab"] != 1 {
				t.Fatalf("ab matched %d times, want 1 (post-join edge only)", got["ab"])
			}

			if err := ms.RemoveQuery("ab"); err != nil {
				t.Fatal(err)
			}
			if err := ms.RemoveQuery("ab"); err == nil {
				t.Fatal("removing an unknown query must fail")
			}
			feed(5, 6, 3)
			if got["ab"] != 1 {
				t.Fatalf("removed query still matched: %d", got["ab"])
			}

			// The freed slot is reused and the new query matches afresh.
			if err := ms.AddQuery(timingsubg.QuerySpec{
				Name: "ab2", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 100},
			}); err != nil {
				t.Fatal(err)
			}
			feed(7, 8, 4)
			ms.Close()
			if got["ab2"] != 1 {
				t.Fatalf("recycled-slot query matched %d times, want 1", got["ab2"])
			}
			if names := ms.Names(); len(names) != 1 || names[0] != "ab2" {
				t.Fatalf("Names() = %v, want [ab2]", names)
			}
		})
	}
}

// TestMultiSearcherConcurrentStats exercises the stats accessors from a
// concurrent goroutine while edges are being fed — the serving-layer
// access pattern. Run with -race to validate the atomic counters.
func TestMultiSearcherConcurrentStats(t *testing.T) {
	labels := timingsubg.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	ms, err := timingsubg.NewRoutedMultiSearcher([]timingsubg.QuerySpec{
		{Name: "ab", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 50}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = ms.RoutedFraction()
			_ = ms.Fed()
			_ = ms.MatchCounts()
			_ = ms.Names()
			_ = ms.HasQuery("ab")
		}
	}()
	for i := 0; i < 5000; i++ {
		if err := ms.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(i), To: timingsubg.VertexID(i + 100000),
			FromLabel: la, ToLabel: lb, Time: timingsubg.Timestamp(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	ms.Close()
	if ms.Fed() != 5000 {
		t.Fatalf("Fed() = %d, want 5000", ms.Fed())
	}
}

func TestPersistentMultiDynamicLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	labels := timingsubg.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")

	got := map[string]int{}
	pm, err := timingsubg.OpenDynamicPersistentMulti(nil, timingsubg.PersistentMultiOptions{Dir: dir},
		func(name string, m *timingsubg.Match) { got[name]++ })
	if err != nil {
		t.Fatal(err)
	}
	feed := func(f, to int64, tm int64) {
		t.Helper()
		if err := pm.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(f), To: timingsubg.VertexID(to),
			FromLabel: la, ToLabel: lb, Time: timingsubg.Timestamp(tm),
		}); err != nil {
			t.Fatal(err)
		}
	}

	feed(1, 2, 1) // logged, no queries yet
	if err := pm.AddQuery(timingsubg.QuerySpec{
		Name: "ab", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	feed(3, 4, 2)
	if got["ab"] != 1 {
		t.Fatalf("ab matched %d, want 1 (joins at log tail)", got["ab"])
	}
	// Out-of-order edges are rejected before they can poison the log.
	if err := pm.Feed(timingsubg.Edge{From: 9, To: 10, FromLabel: la, ToLabel: lb, Time: 2}); err == nil {
		t.Fatal("out-of-order feed must fail")
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the query as an initial spec: its window state (the
	// edge at t=2) must be recovered, so completing context is intact.
	got2 := map[string]int{}
	pm2, err := timingsubg.OpenDynamicPersistentMulti([]timingsubg.QuerySpec{
		{Name: "ab", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 1000}},
	}, timingsubg.PersistentMultiOptions{Dir: dir},
		func(name string, m *timingsubg.Match) { got2[name]++ })
	if err != nil {
		t.Fatal(err)
	}
	if lt := pm2.LastTime(); lt != 2 {
		t.Fatalf("LastTime after restart = %d, want 2", lt)
	}
	if counts := pm2.MatchCounts(); counts["ab"] != 1 {
		t.Fatalf("recovered match count = %v, want ab:1", counts)
	}
	if err := pm2.Feed(timingsubg.Edge{
		From: 5, To: 6, FromLabel: la, ToLabel: lb, Time: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if got2["ab"] != 1 {
		t.Fatalf("post-restart match deliveries = %d, want 1 (replay is silent for checkpointed state)", got2["ab"])
	}
	if err := pm2.RemoveQuery("ab"); err != nil {
		t.Fatal(err)
	}
	if pm2.HasQuery("ab") {
		t.Fatal("HasQuery true after RemoveQuery")
	}
	if err := pm2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentMultiAddQueryNamePathSafety(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	labels := timingsubg.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	pm, err := timingsubg.OpenDynamicPersistentMulti(nil, timingsubg.PersistentMultiOptions{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	for _, name := range []string{"", ".", "..", "a/b", `a\b`} {
		if err := pm.AddQuery(timingsubg.QuerySpec{
			Name: name, Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 10},
		}); err == nil {
			t.Fatalf("AddQuery(%q) must be rejected (names become checkpoint directories)", name)
		}
	}
}

// TestPersistentMultiAddQueryCrashBeforeCheckpoint: a query added at
// runtime must keep its join-at-tail semantics across a crash that
// precedes any periodic checkpoint — the initial checkpoint written by
// AddQuery pins the join point.
func TestPersistentMultiAddQueryCrashBeforeCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	labels := timingsubg.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	opts := timingsubg.PersistentMultiOptions{Dir: dir, SyncEvery: 1}

	pm, err := timingsubg.OpenDynamicPersistentMulti(nil, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An a→b edge lands before the query joins...
	if err := pm.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := pm.AddQuery(timingsubg.QuerySpec{
		Name: "ab", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	// ...and the process dies with no Close (and no periodic checkpoint).

	var postRestart int
	pm2, err := timingsubg.OpenDynamicPersistentMulti([]timingsubg.QuerySpec{
		{Name: "ab", Query: chainQuery(t, la, lb), Options: timingsubg.Options{Window: 1000}},
	}, opts, func(name string, m *timingsubg.Match) { postRestart++ })
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	if counts := pm2.MatchCounts(); counts["ab"] != 0 {
		t.Fatalf("recovered query saw pre-join traffic: MatchCounts = %v", counts)
	}
	// The stream clock must recover from the pre-join record too, even
	// though no query replays it — otherwise t=1 could be issued twice
	// and the log would lose its monotonicity.
	if lt := pm2.LastTime(); lt != 1 {
		t.Fatalf("LastTime after crash-restart = %d, want 1", lt)
	}
	if err := pm2.Feed(timingsubg.Edge{From: 8, To: 9, FromLabel: la, ToLabel: lb, Time: 1}); err == nil {
		t.Fatal("reusing a logged timestamp after restart must be rejected")
	}
	if err := pm2.Feed(timingsubg.Edge{From: 3, To: 4, FromLabel: la, ToLabel: lb, Time: 2}); err != nil {
		t.Fatal(err)
	}
	if postRestart != 1 {
		t.Fatalf("post-restart deliveries = %d, want exactly 1 (the post-join edge)", postRestart)
	}
}
