// Package timingsubg is a Go implementation of time-constrained
// continuous subgraph search over streaming graphs (Li, Zou, Özsu, Zhao —
// ICDE 2019). It finds, continuously, every subgraph of a sliding-window
// snapshot that is isomorphic to a query graph and whose edge timestamps
// respect the query's timing-order constraints.
//
// The public API is one composable entry point, Open, which builds an
// Engine from a Config; durability, adaptivity, multi-query fleets
// (with optional sharded evaluation across a worker pool —
// Config.FleetWorkers), window kind, storage backend and worker
// parallelism are orthogonal options of that one call:
//
//	labels := timingsubg.NewLabels()
//	b := timingsubg.NewQueryBuilder()
//	v := b.AddVertex(labels.Intern("victim"))
//	c := b.AddVertex(labels.Intern("cc-server"))
//	reg := b.AddEdge(v, c)
//	cmd := b.AddEdge(c, v)
//	b.Before(reg, cmd) // registration precedes command
//	q, _ := b.Build()
//
//	eng, _ := timingsubg.Open(timingsubg.Config{Query: q, Window: 30})
//	sub, _ := eng.Subscribe(timingsubg.SubscribeOptions{})
//	go func() {
//		for _, m := range sub.Matches() {
//			fmt.Println(m)
//		}
//	}()
//	for _, e := range edges {
//		eng.Feed(e)
//	}
//	eng.Close()
//
// Results are consumed through the subscription plane: Subscribe
// attaches any number of consumers at runtime, each with its own
// query-name filter, buffer and overflow policy (see SubscribeOptions);
// Config.OnMatch remains as a synchronous shim fixed at Open. The
// former per-capability façades (Searcher, AdaptiveSearcher,
// PersistentSearcher, MultiSearcher, PersistentMultiSearcher) remain as
// deprecated shims over the same core.
//
// See examples/ for runnable scenarios and DESIGN.md for architecture.
package timingsubg

import (
	"errors"
	"io"

	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
	"timingsubg/internal/stats"
)

// Core type aliases so users never import internal packages.
type (
	// Query is an immutable continuous query graph with timing order.
	Query = query.Query
	// QueryBuilder assembles a Query.
	QueryBuilder = query.Builder
	// Decomposition is a TC decomposition of a query.
	Decomposition = query.Decomposition
	// Match is a complete time-constrained match.
	Match = match.Match
	// Edge is a streaming-graph edge.
	Edge = graph.Edge
	// VertexID identifies a data vertex.
	VertexID = graph.VertexID
	// EdgeID identifies a data edge.
	EdgeID = graph.EdgeID
	// Timestamp is an edge arrival time.
	Timestamp = graph.Timestamp
	// Label is an interned label.
	Label = graph.Label
	// Labels is a label intern table.
	Labels = graph.Labels
)

// NoLabel is the zero Label, used for unlabelled edges.
const NoLabel = graph.NoLabel

// NewLabels returns an empty label intern table.
func NewLabels() *Labels { return graph.NewLabels() }

// NewQueryBuilder returns an empty query builder.
func NewQueryBuilder() *QueryBuilder { return query.NewBuilder() }

// Decompose computes the cost-model-guided TC decomposition of q.
func Decompose(q *Query) *Decomposition { return query.Decompose(q) }

// Storage selects the partial-match store.
type Storage = core.Storage

// Storage backends.
const (
	// MSTree is the match-store tree backend (default, recommended).
	MSTree = core.MSTree
	// Independent stores each partial match separately (ablation).
	Independent = core.Independent
)

// LockScheme selects the concurrency-control scheme.
type LockScheme = core.LockScheme

// Locking schemes for Workers > 1.
const (
	// FineGrained is the paper's per-item locking (default).
	FineGrained = core.FineGrained
	// AllLocks acquires all locks up front (baseline).
	AllLocks = core.AllLocks
)

// Options configures a Searcher (and, embedded in QuerySpec, one fleet
// member). New code should set the equivalent fields on Config and call
// Open.
type Options struct {
	// Window is the time-based sliding-window duration |W| (the
	// paper's model). Exactly one of Window and CountWindow must be
	// positive.
	Window Timestamp
	// CountWindow, when positive, uses a count-based sliding window
	// holding the most recent CountWindow edges instead of a
	// time-based one. Timing-order match semantics are unchanged;
	// only the expiry rule differs.
	CountWindow int
	// OnMatch receives every complete match; it may be nil when only
	// counters are needed. The callback is serialized.
	OnMatch func(*Match)
	// Storage selects the partial-match backend (default MSTree).
	Storage Storage
	// Workers > 1 enables concurrent execution with that many in-flight
	// edge transactions (requires MSTree storage).
	Workers int
	// LockScheme selects the concurrency control when Workers > 1.
	LockScheme LockScheme
	// Decomposition overrides the automatic TC decomposition.
	Decomposition *Decomposition

	// scanProbes disables the MS-tree vertex join indexes on the INSERT
	// probe paths (core.Config.ScanProbes): every probe scans its whole
	// expansion-list item. Results are identical; only JoinScanned and
	// wall clock change. Internal — the equivalence suite and benchmarks
	// A/B the index against the scan engine with it.
	scanProbes bool

	// perEdgeExpiry disables batched window-slide eviction: each expired
	// edge runs as its own delete pass (core.Engine.Process /
	// Parallel.Process) instead of one DeleteBatch sweep per slide.
	// Results are identical; only lock traffic, level walks and the
	// Expiry* counters change. Internal — the expiry equivalence suite
	// and BenchmarkExpiryIngest A/B the two paths with it.
	perEdgeExpiry bool

	// Observability wiring (internal): Open threads Config.EventTimeUnit
	// and the slow-op hook through these, and fleet members inherit the
	// fleet's stage pipeline so every member's join/expiry/detection
	// work lands in one fleet-wide view. A nil pipe disables
	// instrumentation (Config.DisableMetrics, and the deprecated
	// façades).
	pipe        *stats.Pipeline
	eventUnitNs int64
	slowOpNs    int64
	onSlowOp    func(SlowOp)
}

// ErrBadOptions reports an invalid configuration.
var ErrBadOptions = errors.New("timingsubg: invalid options")

// ErrOutOfOrder reports an edge pushed with a timestamp not strictly
// greater than the previous edge's (the paper's model, Definition 1,
// requires strictly increasing timestamps). It is the only per-edge
// feed error; any other Feed/FeedBatch error is environmental (e.g. a
// WAL write failure).
var ErrOutOfOrder = graph.ErrOutOfOrder

// Searcher is a continuous time-constrained subgraph searcher over one
// query and one sliding window. Feed edges in timestamp order; matches
// are delivered to OnMatch as they complete.
//
// Deprecated: Searcher is a thin shim over the unified engine. Use
// Open with Config{Query: q, ...}, which exposes the same engine with
// composable durability, adaptivity and fleet options.
type Searcher struct {
	en *single
}

// NewSearcher builds a Searcher for q.
//
// Deprecated: use Open.
func NewSearcher(q *Query, opts Options) (*Searcher, error) {
	en, err := newSingle(q, opts, nil, matchSink(opts.OnMatch))
	if err != nil {
		return nil, err
	}
	return &Searcher{en: en}, nil
}

// Feed pushes one edge into the stream. The edge's Time must exceed the
// previous edge's; its ID is assigned by the stream and returned. Expired
// edges are retired and the new edge is matched before Feed returns (in
// concurrent mode, before the transaction completes asynchronously).
// After Close, Feed returns ErrClosed.
func (s *Searcher) Feed(e Edge) (EdgeID, error) { return s.en.Feed(e) }

// FeedBatch pushes a batch of edges; see Engine.FeedBatch.
func (s *Searcher) FeedBatch(batch []Edge) (int, error) { return s.en.FeedBatch(batch) }

// Close drains in-flight work (concurrent mode) and finalizes counters.
// The Searcher must not be fed after Close.
func (s *Searcher) Close() { s.en.Close() }

// Stats returns the unified counter snapshot.
func (s *Searcher) Stats() Stats { return s.en.Stats() }

// MatchCount returns the number of matches reported so far. In concurrent
// mode call Close (or accept a lower bound) before reading.
func (s *Searcher) MatchCount() int64 { return s.en.matches() }

// Discarded returns how many fed edges were filtered as discardable
// (matched a query edge label but could never complete a match).
func (s *Searcher) Discarded() int64 { return s.en.discarded() }

// SpaceBytes estimates resident bytes of maintained partial matches.
// Call while no Feed is in flight.
func (s *Searcher) SpaceBytes() int64 { return s.en.eng.SpaceBytes() }

// PartialMatches returns the number of stored partial matches.
func (s *Searcher) PartialMatches() int64 { return s.en.eng.PartialMatchCount() }

// K returns the size of the TC decomposition in use.
func (s *Searcher) K() int { return s.en.eng.K() }

// InWindow returns the number of edges currently inside the window.
func (s *Searcher) InWindow() int { return s.en.stream.Len() }

// WriteState dumps the engine's live expansion-list populations and
// counters for diagnostics. Call while no Feed is in flight.
func (s *Searcher) WriteState(w io.Writer) { s.en.writeState(w) }

// CurrentMatches enumerates the matches standing in the current window
// (reported and not yet expired). The Match passed to fn is scratch —
// Clone to retain. Call while no Feed is in flight.
func (s *Searcher) CurrentMatches(fn func(*Match) bool) { s.en.CurrentMatches(fn) }

// CurrentMatchCount returns the number of standing matches.
func (s *Searcher) CurrentMatchCount() int { return s.en.currentMatchCount() }
