package timingsubg

import (
	"sync"
	"testing"
)

func TestMatchChannelDeliversAll(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 400, 41)
	want := runPlain(t, q, 50, edges)
	if len(want) == 0 {
		t.Fatal("reference run found no matches")
	}

	onMatch, matches, done := MatchChannel(4) // small buffer to exercise backpressure
	s, err := NewSearcher(q, Options{Window: 50, OnMatch: onMatch})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for m := range matches {
			got[matchKey(m)] = true
		}
	}()
	for _, e := range edges {
		if _, err := s.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	done()
	wg.Wait()

	if len(got) != len(want) {
		t.Fatalf("channel delivered %d matches, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing match %s", k)
		}
	}
}

func TestMatchChannelDoneIdempotent(t *testing.T) {
	_, _, done := MatchChannel(1)
	done()
	done() // second call must not panic
}

func TestMatchDeduperBasics(t *testing.T) {
	d := NewMatchDeduper(8)
	m1 := &Match{Edges: []Edge{{ID: 1}, {ID: 2}}}
	m2 := &Match{Edges: []Edge{{ID: 1}, {ID: 3}}}
	if d.Seen(m1) {
		t.Fatal("fresh match reported as seen")
	}
	if !d.Seen(m1) {
		t.Fatal("duplicate not detected")
	}
	if d.Seen(m2) {
		t.Fatal("distinct match reported as seen")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestMatchDeduperEviction(t *testing.T) {
	d := NewMatchDeduper(3)
	mk := func(id int64) *Match { return &Match{Edges: []Edge{{ID: EdgeID(id)}}} }
	for i := int64(1); i <= 4; i++ {
		if d.Seen(mk(i)) {
			t.Fatalf("match %d fresh but seen", i)
		}
	}
	// 1 was evicted (capacity 3), so it reads as fresh again.
	if d.Seen(mk(1)) {
		t.Fatal("evicted match still remembered")
	}
	// 3 and 4 are still inside the horizon.
	if !d.Seen(mk(4)) {
		t.Fatal("in-horizon match forgotten")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want capacity", d.Len())
	}
}

// TestDeduperRestoresExactlyOnceAcrossCrash replays the crash-recovery
// scenario and checks that a deduper-wrapped consumer sees every match
// exactly once.
func TestDeduperRestoresExactlyOnceAcrossCrash(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 300, 42)
	want := runPlain(t, q, 40, edges)
	if len(want) == 0 {
		t.Fatal("reference run found no matches")
	}

	dir := t.TempDir()
	dedup := NewMatchDeduper(1 << 12)
	delivered := map[string]int{}
	onMatch := func(m *Match) {
		if dedup.Seen(m) {
			return
		}
		delivered[matchKey(m)]++
	}
	open := func() *PersistentSearcher {
		ps, err := OpenPersistent(q, PersistentOptions{
			Options:         Options{Window: 40, OnMatch: onMatch},
			Dir:             dir,
			CheckpointEvery: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}

	ps := open()
	for _, e := range edges[:170] {
		if _, err := ps.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	ps.log.Close() // crash without checkpoint

	ps2 := open() // recovery may re-report post-checkpoint matches
	for _, e := range edges[170:] {
		if _, err := ps2.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}

	if len(delivered) != len(want) {
		t.Fatalf("delivered %d distinct matches, want %d", len(delivered), len(want))
	}
	for k, n := range delivered {
		if n != 1 {
			t.Fatalf("match %s delivered %d times", k, n)
		}
	}
}

// TestMatchChannelAfterDoneDrops pins the fixed footgun: a callback
// invoked after done() is a counted no-op, not a panic.
func TestMatchChannelAfterDoneDrops(t *testing.T) {
	onMatch, matches, done := MatchChannel(2)
	m := &Match{Edges: []Edge{{ID: 1}}}
	onMatch(m)
	if n := done(); n != 0 {
		t.Fatalf("dropped = %d before any late callback, want 0", n)
	}
	onMatch(m) // late: previously a send on a closed channel (panic)
	onMatch(m)
	if n := done(); n != 2 {
		t.Fatalf("dropped = %d after two late callbacks, want 2", n)
	}
	// The pre-done delivery is still readable, then the channel ends.
	if _, ok := <-matches; !ok {
		t.Fatal("pre-done match lost")
	}
	if _, ok := <-matches; ok {
		t.Fatal("channel not closed after done")
	}
}

// TestMatchDeduperCrossQuery pins the fixed collision: two queries
// binding the same data edges are distinct identities under SeenFor.
func TestMatchDeduperCrossQuery(t *testing.T) {
	d := NewMatchDeduper(8)
	m := &Match{Edges: []Edge{{ID: 5}, {ID: 9}}}
	if d.SeenFor("q1", m) {
		t.Fatal("fresh (q1, match) reported as seen")
	}
	if d.SeenFor("q2", m) {
		t.Fatal("cross-query collision: q2's match shadowed by q1's")
	}
	if !d.SeenFor("q1", m) || !d.SeenFor("q2", m) {
		t.Fatal("per-query duplicates not detected")
	}
	// Seen is SeenFor(""): independent of both named queries.
	if d.Seen(m) {
		t.Fatal("unnamed-query identity collided with named ones")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct identities", d.Len())
	}
}
