// Command recovery demonstrates durable continuous search: an engine
// opened with Config.Durable write-ahead-logs every edge and
// checkpoints its window state, so a crashed monitor restarts exactly
// where it left off. The demo runs a fraud-style chain query over a
// synthetic transaction stream, "crashes" halfway (abandoning the
// engine without Close), reopens the same directory, and shows that
//
//   - the recovered engine resumes with the same window and counters,
//   - no checkpointed match is re-reported,
//   - the total match set equals an uninterrupted run.
//
// The durable engine also composes Adaptivity — a combination the old
// per-capability façades could not express — and the totals still agree
// with the plain run.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"timingsubg"
)

func buildQuery(labels *timingsubg.Labels) *timingsubg.Query {
	// criminal →(credit) merchant →(payout) middleman →(transfer) criminal
	b := timingsubg.NewQueryBuilder()
	crim := b.AddVertex(labels.Intern("account"))
	merch := b.AddVertex(labels.Intern("merchant"))
	mid := b.AddVertex(labels.Intern("account"))
	e1 := b.AddEdge(crim, merch)
	e2 := b.AddEdge(merch, mid)
	e3 := b.AddEdge(mid, crim)
	b.Before(e1, e2)
	b.Before(e2, e3)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

func stream(labels *timingsubg.Labels, n int) []timingsubg.Edge {
	rng := rand.New(rand.NewSource(11))
	acct := labels.Intern("account")
	merch := labels.Intern("merchant")
	var out []timingsubg.Edge
	for i := 0; i < n; i++ {
		var e timingsubg.Edge
		switch rng.Intn(3) {
		case 0: // credit pay: account → merchant
			e = timingsubg.Edge{From: timingsubg.VertexID(rng.Intn(20)), To: timingsubg.VertexID(100 + rng.Intn(5)),
				FromLabel: acct, ToLabel: merch}
		case 1: // payout: merchant → account
			e = timingsubg.Edge{From: timingsubg.VertexID(100 + rng.Intn(5)), To: timingsubg.VertexID(rng.Intn(20)),
				FromLabel: merch, ToLabel: acct}
		default: // transfer: account → account
			e = timingsubg.Edge{From: timingsubg.VertexID(rng.Intn(20)), To: timingsubg.VertexID(rng.Intn(20)),
				FromLabel: acct, ToLabel: acct}
		}
		e.Time = timingsubg.Timestamp(i + 1)
		out = append(out, e)
	}
	return out
}

func main() {
	dir, err := os.MkdirTemp("", "timingsubg-recovery-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	labels := timingsubg.NewLabels()
	q := buildQuery(labels)
	edges := stream(labels, 600)
	const window = 80

	cfg := func(tag string, count *int) timingsubg.Config {
		return timingsubg.Config{
			Query:  q,
			Window: window,
			OnMatch: func(_ string, m *timingsubg.Match) {
				*count++
				if *count <= 3 {
					fmt.Printf("  [%s] match: %s\n", tag, m)
				}
			},
			// Adaptive + durable: orthogonal options of the same Open.
			Adaptive: &timingsubg.Adaptivity{ReoptimizeEvery: 64, MinGain: 1.1},
			Durable:  &timingsubg.Durability{Dir: dir, CheckpointEvery: 100},
		}
	}

	// Phase 1: run the first half, then crash (no Close, no final
	// checkpoint).
	var live1 int
	eng, err := timingsubg.Open(cfg("run1", &live1))
	if err != nil {
		panic(err)
	}
	for _, e := range edges[:310] {
		if _, err := eng.Feed(e); err != nil {
			panic(err)
		}
	}
	st1 := eng.Stats()
	fmt.Printf("run 1: fed 310 edges, %d matches reported, window holds %d edges\n",
		st1.Matches, st1.InWindow)
	fmt.Println("  ... simulated crash (no clean shutdown) ...")
	// Deliberately skip eng.Close(): state survives only through the WAL
	// and the checkpoints already written.

	// Phase 2: reopen the same directory. Recovery rebuilds the
	// checkpointed window silently and replays the WAL suffix.
	var live2 int
	eng2, err := timingsubg.Open(cfg("run2", &live2))
	if err != nil {
		panic(err)
	}
	st2 := eng2.Stats()
	fmt.Printf("run 2: recovered — replayed %d WAL edges, window holds %d edges, durable matches %d\n",
		st2.Replayed, st2.InWindow, st2.Matches)
	// The second half rides the batch fast path: one WAL write + sync.
	if _, err := eng2.FeedBatch(edges[310:]); err != nil {
		panic(err)
	}
	total := eng2.Stats().Matches
	if err := eng2.Close(); err != nil {
		panic(err)
	}

	// Reference: one uninterrupted, in-memory, non-adaptive run.
	s, err := timingsubg.Open(timingsubg.Config{Query: q, Window: window})
	if err != nil {
		panic(err)
	}
	if _, err := s.FeedBatch(edges); err != nil {
		panic(err)
	}
	ref := s.Stats().Matches
	s.Close()

	fmt.Printf("durable total across crash: %d matches; uninterrupted run: %d matches\n", total, ref)
	if total == ref {
		fmt.Println("recovery is exact: totals agree")
	} else {
		fmt.Println("MISMATCH — recovery bug")
		os.Exit(1)
	}
}
