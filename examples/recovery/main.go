// Command recovery demonstrates durable continuous search: a
// PersistentSearcher write-ahead-logs every edge and checkpoints its
// window state, so a crashed monitor restarts exactly where it left
// off. The demo runs a fraud-style chain query over a synthetic
// transaction stream, "crashes" halfway (abandoning the searcher
// without Close), reopens the same directory, and shows that
//
//   - the recovered engine resumes with the same window and counters,
//   - no checkpointed match is re-reported,
//   - the total match set equals an uninterrupted run.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"timingsubg"
)

func buildQuery(labels *timingsubg.Labels) *timingsubg.Query {
	// criminal →(credit) merchant →(payout) middleman →(transfer) criminal
	b := timingsubg.NewQueryBuilder()
	crim := b.AddVertex(labels.Intern("account"))
	merch := b.AddVertex(labels.Intern("merchant"))
	mid := b.AddVertex(labels.Intern("account"))
	e1 := b.AddEdge(crim, merch)
	e2 := b.AddEdge(merch, mid)
	e3 := b.AddEdge(mid, crim)
	b.Before(e1, e2)
	b.Before(e2, e3)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

func stream(labels *timingsubg.Labels, n int) []timingsubg.Edge {
	rng := rand.New(rand.NewSource(11))
	acct := labels.Intern("account")
	merch := labels.Intern("merchant")
	var out []timingsubg.Edge
	for i := 0; i < n; i++ {
		var e timingsubg.Edge
		switch rng.Intn(3) {
		case 0: // credit pay: account → merchant
			e = timingsubg.Edge{From: timingsubg.VertexID(rng.Intn(20)), To: timingsubg.VertexID(100 + rng.Intn(5)),
				FromLabel: acct, ToLabel: merch}
		case 1: // payout: merchant → account
			e = timingsubg.Edge{From: timingsubg.VertexID(100 + rng.Intn(5)), To: timingsubg.VertexID(rng.Intn(20)),
				FromLabel: merch, ToLabel: acct}
		default: // transfer: account → account
			e = timingsubg.Edge{From: timingsubg.VertexID(rng.Intn(20)), To: timingsubg.VertexID(rng.Intn(20)),
				FromLabel: acct, ToLabel: acct}
		}
		e.Time = timingsubg.Timestamp(i + 1)
		out = append(out, e)
	}
	return out
}

func main() {
	dir, err := os.MkdirTemp("", "timingsubg-recovery-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	labels := timingsubg.NewLabels()
	q := buildQuery(labels)
	edges := stream(labels, 600)
	const window = 80

	opts := func(tag string, count *int) timingsubg.PersistentOptions {
		return timingsubg.PersistentOptions{
			Options: timingsubg.Options{
				Window: window,
				OnMatch: func(m *timingsubg.Match) {
					*count++
					if *count <= 3 {
						fmt.Printf("  [%s] match: %s\n", tag, m)
					}
				},
			},
			Dir:             dir,
			CheckpointEvery: 100,
		}
	}

	// Phase 1: run the first half, then crash (no Close, no final
	// checkpoint).
	var live1 int
	ps, err := timingsubg.OpenPersistent(q, opts("run1", &live1))
	if err != nil {
		panic(err)
	}
	for _, e := range edges[:310] {
		if _, err := ps.Feed(e); err != nil {
			panic(err)
		}
	}
	fmt.Printf("run 1: fed 310 edges, %d matches reported, window holds %d edges\n",
		ps.MatchCount(), ps.InWindow())
	fmt.Println("  ... simulated crash (no clean shutdown) ...")
	// Deliberately skip ps.Close(): state survives only through the WAL
	// and the checkpoints already written.

	// Phase 2: reopen the same directory. Recovery rebuilds the
	// checkpointed window silently and replays the WAL suffix.
	var live2 int
	ps2, err := timingsubg.OpenPersistent(q, opts("run2", &live2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("run 2: recovered — replayed %d WAL edges, window holds %d edges, durable matches %d\n",
		ps2.Replayed(), ps2.InWindow(), ps2.MatchCount())
	for _, e := range edges[310:] {
		if _, err := ps2.Feed(e); err != nil {
			panic(err)
		}
	}
	total := ps2.MatchCount()
	if err := ps2.Close(); err != nil {
		panic(err)
	}

	// Reference: one uninterrupted, non-durable run.
	var ref int
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{
		Window:  window,
		OnMatch: func(*timingsubg.Match) { ref++ },
	})
	if err != nil {
		panic(err)
	}
	for _, e := range edges {
		if _, err := s.Feed(e); err != nil {
			panic(err)
		}
	}
	s.Close()

	fmt.Printf("durable total across crash: %d matches; uninterrupted run: %d matches\n", total, ref)
	if total == int64(ref) {
		fmt.Println("recovery is exact: totals agree")
	} else {
		fmt.Println("MISMATCH — recovery bug")
		os.Exit(1)
	}
}
