// Command multiquery monitors several attack patterns at once over one
// traffic stream — the deployment shape of the paper's introduction,
// where a fleet of known patterns (Verizon's ten attack categories) is
// watched continuously. Two patterns are planted; each alert carries the
// pattern name.
package main

import (
	"fmt"
	"math/rand"

	"timingsubg"
)

func main() {
	labels := timingsubg.NewLabels()
	ip := labels.Intern("IP")
	http := labels.Intern("http")
	tcp := labels.Intern("tcp")
	big := labels.Intern("large-msg")

	// Pattern 1 — exfiltration (Fig. 1, abbreviated): register at C&C,
	// receive command, exfiltrate; strictly ordered.
	exfil := func() *timingsubg.Query {
		b := timingsubg.NewQueryBuilder()
		v, c := b.AddVertex(ip), b.AddVertex(ip)
		reg := b.AddLabeledEdge(v, c, tcp)
		cmd := b.AddLabeledEdge(c, v, tcp)
		out := b.AddLabeledEdge(v, c, big)
		b.Before(reg, cmd)
		b.Before(cmd, out)
		q, err := b.Build()
		if err != nil {
			panic(err)
		}
		return q
	}()

	// Pattern 2 — drive-by download: victim browses a site and the site
	// pushes two payloads back, in order.
	driveby := func() *timingsubg.Query {
		b := timingsubg.NewQueryBuilder()
		v, w := b.AddVertex(ip), b.AddVertex(ip)
		browse := b.AddLabeledEdge(v, w, http)
		p1 := b.AddLabeledEdge(w, v, http)
		p2 := b.AddLabeledEdge(w, v, big)
		b.Before(browse, p1)
		b.Before(p1, p2)
		q, err := b.Build()
		if err != nil {
			panic(err)
		}
		return q
	}()

	// One Open call hosts the whole fleet; Window is a fleet-wide
	// default every spec inherits.
	ms, err := timingsubg.OpenFleet(timingsubg.Config{
		Queries: []timingsubg.QuerySpec{
			{Name: "exfiltration", Query: exfil},
			{Name: "drive-by", Query: driveby},
		},
		Window: 40,
		OnMatch: func(name string, m *timingsubg.Match) {
			fmt.Printf("!! %s: %s\n", name, m)
		},
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(23))
	t := timingsubg.Timestamp(0)
	feed := func(from, to int64, lbl timingsubg.Label) {
		t++
		if _, err := ms.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(from), To: timingsubg.VertexID(to),
			FromLabel: ip, ToLabel: ip, EdgeLabel: lbl, Time: t,
		}); err != nil {
			panic(err)
		}
	}
	noise := func(n int) {
		for i := 0; i < n; i++ {
			a, b := rng.Int63n(300), rng.Int63n(300)
			if a == b {
				b = (b + 1) % 300
			}
			lbl := http
			if rng.Intn(2) == 0 {
				lbl = tcp
			}
			feed(a, b, lbl)
		}
	}

	noise(200)
	// Plant the exfiltration (hosts 7001↔7002).
	feed(7001, 7002, tcp)
	noise(4)
	feed(7002, 7001, tcp)
	noise(4)
	feed(7001, 7002, big)
	noise(150)
	// Plant the drive-by (hosts 8001↔8002).
	feed(8001, 8002, http)
	noise(3)
	feed(8002, 8001, http)
	noise(3)
	feed(8002, 8001, big)
	noise(200)
	st := ms.Stats()
	ms.Close()

	fmt.Println("\nper-pattern alert counts:")
	for name, qs := range st.Queries {
		fmt.Printf("  %-14s %d\n", name, qs.Matches)
	}
}
