// Command server demonstrates the network serving layer end-to-end in
// one process: it starts a tsserved-style server on a loopback port,
// registers the exfiltration pattern over HTTP, streams traffic through
// POST /ingest, receives the alert on a reconnecting SSE subscription
// (with its delivery sequence number and resume token), retires the
// query at runtime, and shuts down cleanly — the lifecycle a real
// deployment drives from separate machines.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"timingsubg/client"
	"timingsubg/internal/server"
)

// exfilText is the exfiltration pattern (register at C&C, receive
// command, exfiltrate — strictly ordered) in the wire query format.
const exfilText = `
v 0 IP
v 1 IP
e 0 1 tcp
e 1 0 tcp
e 0 1 large-msg
o 0 < 1
o 1 < 2
`

func main() {
	// Serve on an ephemeral loopback port.
	srv := server.New(server.Config{Routed: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New(base, nil)
	if err := c.Health(ctx); err != nil {
		panic(err)
	}

	// Register the pattern and subscribe to its matches.
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "exfiltration", Text: exfilText, Window: 40}); err != nil {
		panic(err)
	}
	// A reconnecting subscription: if the connection drops, the client
	// re-establishes it and resumes from the last event id, so alerts
	// are not double-processed. Each event carries the engine's
	// per-query delivery sequence number.
	sub, err := c.SubscribeOpts(ctx, client.SubscribeOptions{
		Queries:   []string{"exfiltration"},
		Reconnect: true,
	})
	if err != nil {
		panic(err)
	}
	alerts := make(chan struct{})
	go func() {
		defer close(alerts)
		for m := range sub.Events {
			fmt.Printf("!! %s #%d:", m.Query, m.Seq)
			for _, e := range m.Edges {
				fmt.Printf("  %d→%d %s@%d", e.From, e.To, e.Label, e.Time)
			}
			fmt.Println()
		}
	}()

	// Stream noise with the attack planted in the middle. Timestamps are
	// server-assigned (Time omitted).
	rng := rand.New(rand.NewSource(23))
	edge := func(from, to int64, label string) client.Edge {
		return client.Edge{From: from, To: to, FromLabel: "IP", ToLabel: "IP", Label: label}
	}
	var batch []client.Edge
	noise := func(n int) {
		for i := 0; i < n; i++ {
			a, b := rng.Int63n(300), rng.Int63n(300)
			if a == b {
				b = (b + 1) % 300
			}
			batch = append(batch, edge(a, b, "tcp"))
		}
	}
	noise(150)
	batch = append(batch, edge(7001, 7002, "tcp")) // register at C&C
	noise(4)
	batch = append(batch, edge(7002, 7001, "tcp")) // command
	noise(4)
	batch = append(batch, edge(7001, 7002, "large-msg")) // exfiltration
	noise(150)

	res, err := c.Ingest(ctx, batch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ingested %d edges (%d rejected)\n", res.Accepted, res.Rejected)

	// The unified engine snapshot: one typed struct for the whole fleet,
	// with per-query snapshots under Queries.
	st, err := c.EngineStats(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet: %d matches over %d queries, routed_fraction = %.3f\n",
		st.Matches, len(st.Queries), st.RoutedFraction)
	for name, qs := range st.Queries {
		fmt.Printf("  %-14s matches=%d in_window=%d\n", name, qs.Matches, qs.InWindow)
	}

	fmt.Printf("resume token after delivery: %q\n", sub.LastEventID())

	// Retire the query at runtime: the engine ends the filtered
	// subscription, the client's reconnect attempt gets a definitive
	// 404, and the stream terminates.
	if err := c.RemoveQuery(ctx, "exfiltration"); err != nil {
		panic(err)
	}
	<-alerts
	fmt.Println("query retired, subscription closed")

	httpSrv.Shutdown(ctx)
	srv.Close()
}
