// Command quickstart walks through the paper's running example (Figs. 3-5):
// a 6-edge query with timing orders 6≺3≺1 and 6≺5≺4 over a 10-edge stream
// with window |W| = 9. It prints each arrival, the match discovered at
// t=8, and the engine's pruning statistics.
package main

import (
	"fmt"

	"timingsubg"
)

func main() {
	labels := timingsubg.NewLabels()
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")
	ld, le, lf := labels.Intern("d"), labels.Intern("e"), labels.Intern("f")

	// Query of Fig. 5: ε1: a→b, ε2: b→c, ε3: d→b, ε4: d→c, ε5: c→e,
	// ε6: e→f, with 6 ≺ 3 ≺ 1 and 6 ≺ 5 ≺ 4.
	b := timingsubg.NewQueryBuilder()
	va, vb, vc := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc)
	vd, ve, vf := b.AddVertex(ld), b.AddVertex(le), b.AddVertex(lf)
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	e3 := b.AddEdge(vd, vb)
	e4 := b.AddEdge(vd, vc)
	e5 := b.AddEdge(vc, ve)
	e6 := b.AddEdge(ve, vf)
	_ = e2
	b.Before(e6, e3)
	b.Before(e3, e1)
	b.Before(e6, e5)
	b.Before(e5, e4)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}

	dec := timingsubg.Decompose(q)
	fmt.Printf("query: %d vertices, %d edges, decomposed into %d TC-subqueries:\n",
		q.NumVertices(), q.NumEdges(), dec.K())
	for i, sub := range dec.Subqueries {
		fmt.Printf("  Q%d timing sequence: %v\n", i+1, sub.Seq)
	}

	eng, err := timingsubg.Open(timingsubg.Config{
		Query:  q,
		Window: 9,
		OnMatch: func(_ string, m *timingsubg.Match) {
			fmt.Printf("  >> MATCH %s\n", m)
		},
	})
	if err != nil {
		panic(err)
	}

	// The stream of Fig. 3 (σ1..σ10).
	mk := func(from, to int64, fl, tl timingsubg.Label, t int64) timingsubg.Edge {
		return timingsubg.Edge{
			From: timingsubg.VertexID(from), To: timingsubg.VertexID(to),
			FromLabel: fl, ToLabel: tl, Time: timingsubg.Timestamp(t),
		}
	}
	stream := []timingsubg.Edge{
		mk(7, 8, le, lf, 1), mk(4, 9, lc, le, 2), mk(4, 7, lc, le, 3),
		mk(5, 4, ld, lc, 4), mk(3, 4, lb, lc, 5), mk(2, 3, la, lb, 6),
		mk(5, 3, ld, lb, 7), mk(1, 3, la, lb, 8), mk(6, 4, ld, lc, 9),
		mk(5, 7, ld, le, 10),
	}
	for i, e := range stream {
		fmt.Printf("t=%-2d σ%-2d %d→%d (%s→%s)\n", e.Time, i+1, e.From, e.To,
			labels.String(e.FromLabel), labels.String(e.ToLabel))
		if _, err := eng.Feed(e); err != nil {
			panic(err)
		}
	}
	st := eng.Stats()
	eng.Close()

	fmt.Printf("\nmatches: %d, discardable edges filtered: %d, partial matches stored: %d\n",
		st.Matches, st.Discarded, st.PartialMatches)
}
