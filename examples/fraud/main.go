// Command fraud reproduces the paper's credit-card-fraud motivating
// example (Fig. 2): a criminal sets up a credit payment to a merchant
// (t1), the bank sends the merchant the real payment (t2), the merchant
// transfers the money to a middleman (t3), and the middleman transfers it
// back to the criminal (t4), with t1 < t2 < t3 < t4. The query is
// monitored continuously over a synthetic transaction stream with
// planted fraud rings.
package main

import (
	"fmt"
	"math/rand"

	"timingsubg"
)

func main() {
	labels := timingsubg.NewLabels()
	acct := labels.Intern("account")
	bank := labels.Intern("bank")
	creditPay := labels.Intern("credit-pay")
	realPay := labels.Intern("real-payment")
	transfer := labels.Intern("transfer")

	// Fig. 2 pattern: criminal c, merchant m, middleman a, bank x.
	b := timingsubg.NewQueryBuilder()
	c := b.AddVertex(acct)
	m := b.AddVertex(acct)
	a := b.AddVertex(acct)
	x := b.AddVertex(bank)
	t1 := b.AddLabeledEdge(c, m, creditPay)
	t2 := b.AddLabeledEdge(x, m, realPay)
	t3 := b.AddLabeledEdge(m, a, transfer)
	t4 := b.AddLabeledEdge(a, c, transfer)
	b.Before(t1, t2)
	b.Before(t2, t3)
	b.Before(t3, t4)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}

	var alerts int
	s, err := timingsubg.Open(timingsubg.Config{
		Query:  q,
		Window: 500, // transactions must cash out within the window
		OnMatch: func(_ string, mt *timingsubg.Match) {
			alerts++
			fmt.Printf("!! FRAUD RING: criminal=%d merchant=%d middleman=%d (credit t=%d, cash-out t=%d)\n",
				mt.Vtx[c], mt.Vtx[m], mt.Vtx[a], mt.Edges[t1].Time, mt.Edges[t4].Time)
		},
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(11))
	const accounts = 500
	const bankID = 1_000_000
	t := timingsubg.Timestamp(0)
	feed := func(from, to int64, fl, tl, el timingsubg.Label) {
		t++
		if _, err := s.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(from), To: timingsubg.VertexID(to),
			FromLabel: fl, ToLabel: tl, EdgeLabel: el, Time: t,
		}); err != nil {
			panic(err)
		}
	}
	noise := func(n int) {
		for i := 0; i < n; i++ {
			from, to := rng.Int63n(accounts), rng.Int63n(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			switch rng.Intn(4) {
			case 0:
				feed(from, to, acct, acct, creditPay)
			case 1:
				feed(bankID, to, bank, acct, realPay)
			default:
				feed(from, to, acct, acct, transfer)
			}
		}
	}

	// Interleave two fraud rings with plenty of legitimate traffic.
	plant := func(criminal, merchant, middleman int64, gap int) {
		feed(criminal, merchant, acct, acct, creditPay) // t1
		noise(gap)
		feed(bankID, merchant, bank, acct, realPay) // t2
		noise(gap)
		feed(merchant, middleman, acct, acct, transfer) // t3
		noise(gap)
		feed(middleman, criminal, acct, acct, transfer) // t4
	}
	noise(300)
	plant(9001, 9002, 9003, 20)
	noise(200)
	plant(9101, 9102, 9103, 35)
	noise(300)
	st := s.Stats()
	s.Close()

	fmt.Printf("\nprocessed %d transactions: %d fraud alerts, %d discardable filtered, %d partials held\n",
		t, st.Matches, st.Discarded, st.PartialMatches)
	_ = alerts
}
