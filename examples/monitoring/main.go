// Command monitoring runs a routed fleet of three attack/fraud patterns
// over a synthetic stream while serving live engine counters over HTTP
// as JSON — the operational shape of a production deployment: one
// process, many standing queries, a scrape endpoint.
//
// Alert consumption rides the engine's results plane: one
// Engine.Subscribe subscription (instead of the legacy OnMatch
// callback) drains matches concurrently with ingest through the
// iterator form, tagging each alert with its query name.
//
// The program starts the endpoint on an ephemeral port, feeds the
// stream, scrapes its own endpoint twice (mid-run and at the end), and
// prints both samples, demonstrating that metrics are live.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"

	"timingsubg"
)

func pattern2(labels *timingsubg.Labels, a, b, c string) *timingsubg.Query {
	bld := timingsubg.NewQueryBuilder()
	va := bld.AddVertex(labels.Intern(a))
	vb := bld.AddVertex(labels.Intern(b))
	vc := bld.AddVertex(labels.Intern(c))
	e1 := bld.AddEdge(va, vb)
	e2 := bld.AddEdge(vb, vc)
	bld.Before(e1, e2)
	q, err := bld.Build()
	if err != nil {
		panic(err)
	}
	return q
}

func main() {
	labels := timingsubg.NewLabels()
	specs := []timingsubg.QuerySpec{
		{Name: "exfiltration", Query: pattern2(labels, "victim", "webserver", "ccserver"), Options: timingsubg.Options{Window: 200}},
		{Name: "cashout", Query: pattern2(labels, "account", "merchant", "account"), Options: timingsubg.Options{Window: 200}},
		{Name: "lateral", Query: pattern2(labels, "host", "host", "host"), Options: timingsubg.Options{Window: 200}},
	}
	ms, err := timingsubg.OpenFleet(timingsubg.Config{
		Queries: specs,
		Routed:  true,
	})
	if err != nil {
		panic(err)
	}

	// The results plane: a runtime-attached subscription consumes every
	// query's alerts concurrently with ingest. Block means lossless —
	// and cannot stall the feed as long as this loop keeps draining.
	sub, err := ms.Subscribe(timingsubg.SubscribeOptions{Policy: timingsubg.Block})
	if err != nil {
		panic(err)
	}
	alerts := map[string]int{}
	alertsDone := make(chan struct{})
	go func() {
		defer close(alertsDone)
		for name := range sub.Matches() {
			alerts[name]++
		}
	}()

	reg := timingsubg.NewMetricsRegistry()
	if err := timingsubg.RegisterMetrics(reg, "fleet", ms); err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	go http.Serve(ln, timingsubg.MetricsHandler(reg))
	url := "http://" + ln.Addr().String()
	fmt.Printf("metrics endpoint: %s\n", url)

	// Synthetic traffic: hosts, accounts, servers with stable labels.
	rng := rand.New(rand.NewSource(5))
	kinds := []string{"victim", "webserver", "ccserver", "account", "merchant", "host"}
	vertexLabel := func(v timingsubg.VertexID) timingsubg.Label {
		return labels.Intern(kinds[int(v)%len(kinds)])
	}
	scrape := func(tag string) {
		resp, err := http.Get(url)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var got map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			panic(err)
		}
		var names []string
		for k := range got {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Printf("-- scrape %s --\n", tag)
		for _, k := range names {
			fmt.Printf("  %-36s %v\n", k, got[k])
		}
	}

	const n = 4000
	for i := 0; i < n; i++ {
		from := timingsubg.VertexID(rng.Intn(60))
		to := timingsubg.VertexID(rng.Intn(60))
		if from == to {
			to = (to + 1) % 60
		}
		if _, err := ms.Feed(timingsubg.Edge{
			From: from, To: to,
			FromLabel: vertexLabel(from), ToLabel: vertexLabel(to),
			Time: timingsubg.Timestamp(i + 1),
		}); err != nil {
			panic(err)
		}
		if i == n/2 {
			scrape("mid-run")
		}
	}
	st := ms.Stats()
	ms.Close() // ends the subscription; the alert drain exits
	<-alertsDone
	scrape("final")

	fmt.Println("-- alerts --")
	for _, spec := range specs {
		fmt.Printf("  %-14s %d\n", spec.Name, alerts[spec.Name])
	}
	fmt.Printf("routed dispatch fraction: %.3f (1.0 would be naive fan-out)\n", st.RoutedFraction)
}
