// Command concurrent demonstrates the Section V concurrency manager: the
// same query processed serially and with N concurrent edge transactions
// under both locking schemes (fine-grained vs All-locks), verifying the
// result sets agree (streaming consistency, Definition 11) and reporting
// wall-clock times.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"timingsubg"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/querygen"
)

func main() {
	labels := graph.NewLabels()
	gen := datagen.New(datagen.NetworkFlow, labels, datagen.Config{Vertices: 400, Seed: 3})
	edges := gen.Take(20000)

	q, _, err := querygen.Generate(edges[:4000], querygen.Config{Size: 6, Seed: 17})
	if err != nil {
		panic(err)
	}
	fmt.Printf("query: %d edges, decomposition k=%d\n", q.NumEdges(), timingsubg.Decompose(q).K())

	run := func(workers int, scheme timingsubg.LockScheme, name string) []string {
		var mu sync.Mutex
		var keys []string
		s, err := timingsubg.Open(timingsubg.Config{
			Query:      q,
			Window:     4000,
			Workers:    workers,
			LockScheme: scheme,
			OnMatch: func(_ string, m *timingsubg.Match) {
				mu.Lock()
				keys = append(keys, m.Key())
				mu.Unlock()
			},
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		if _, err := s.FeedBatch(edges); err != nil {
			panic(err)
		}
		s.Close() // drain in-flight transactions so counters are final
		st := s.Stats()
		fmt.Printf("%-14s matches=%-5d elapsed=%v\n", name, st.Matches, time.Since(start).Round(time.Millisecond))
		sort.Strings(keys)
		return keys
	}

	serial := run(1, timingsubg.FineGrained, "serial")
	fine4 := run(4, timingsubg.FineGrained, "Timing-4")
	all4 := run(4, timingsubg.AllLocks, "All-locks-4")

	check := func(name string, got []string) {
		if len(got) != len(serial) {
			fmt.Printf("INCONSISTENT: %s reported %d matches, serial %d\n", name, len(got), len(serial))
			return
		}
		for i := range got {
			if got[i] != serial[i] {
				fmt.Printf("INCONSISTENT: %s result set differs from serial\n", name)
				return
			}
		}
		fmt.Printf("%s is streaming consistent with serial execution\n", name)
	}
	check("Timing-4", fine4)
	check("All-locks-4", all4)
}
