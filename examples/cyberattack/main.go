// Command cyberattack reproduces the paper's case study (Figs. 1 and 22):
// the information-exfiltration attack pattern — a victim browses a
// compromised web server, downloads malware, registers with a botnet C&C
// server, receives a command, and exfiltrates data, with the strict
// timing order t1 < t2 < t3 < t4 < t5 — monitored continuously over a
// synthetic traffic stream with a planted ZeuS-style incident.
package main

import (
	"fmt"
	"math/rand"

	"timingsubg"
)

// Traffic roles, standing in for the label a real deployment would
// derive from traffic classification.
const (
	victimID = 9_000_001
	webID    = 9_000_002
	ccID     = 9_000_003
)

func main() {
	labels := timingsubg.NewLabels()
	ip := labels.Intern("IP")
	http := labels.Intern("http")
	tcp := labels.Intern("tcp")
	big := labels.Intern("large-msg")

	// The Fig. 1 pattern: V browses W (t1), W serves the malware script
	// (t2), V registers at C (t3), C commands V (t4), V exfiltrates to C
	// (t5); t1 < t2 < t3 < t4 < t5.
	b := timingsubg.NewQueryBuilder()
	v := b.AddVertex(ip)
	w := b.AddVertex(ip)
	c := b.AddVertex(ip)
	t1 := b.AddLabeledEdge(v, w, http)
	t2 := b.AddLabeledEdge(w, v, http)
	t3 := b.AddLabeledEdge(v, c, tcp)
	t4 := b.AddLabeledEdge(c, v, tcp)
	t5 := b.AddLabeledEdge(v, c, big)
	b.Before(t1, t2)
	b.Before(t2, t3)
	b.Before(t3, t4)
	b.Before(t4, t5)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("monitoring the exfiltration pattern (5 edges, full timing order), k=%d\n",
		timingsubg.Decompose(q).K())

	s, err := timingsubg.Open(timingsubg.Config{
		Query:  q,
		Window: 30, // the paper's 30-second case-study window
		OnMatch: func(_ string, m *timingsubg.Match) {
			fmt.Printf("!! ALERT: exfiltration pattern detected: %s\n", m)
			fmt.Printf("   victim=%d web=%d c&c=%d, command at t=%d, exfil at t=%d\n",
				m.Vtx[v], m.Vtx[w], m.Vtx[c], m.Edges[t4].Time, m.Edges[t5].Time)
		},
	})
	if err != nil {
		panic(err)
	}

	// Background traffic: random HTTP/TCP chatter among 200 hosts.
	rng := rand.New(rand.NewSource(7))
	t := timingsubg.Timestamp(0)
	feed := func(from, to int64, lbl timingsubg.Label) {
		t++
		_, err := s.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(from), To: timingsubg.VertexID(to),
			FromLabel: ip, ToLabel: ip, EdgeLabel: lbl, Time: t,
		})
		if err != nil {
			panic(err)
		}
	}
	background := func(n int) {
		for i := 0; i < n; i++ {
			a, bb := rng.Int63n(200), rng.Int63n(200)
			if a == bb {
				bb = (bb + 1) % 200
			}
			lbl := http
			if rng.Intn(2) == 0 {
				lbl = tcp
			}
			feed(a, bb, lbl)
		}
	}

	background(400)
	// Plant the incident, interleaved with noise so the window must hold
	// the pattern together (cf. Fig. 22's five timestamps within ~3s).
	feed(victimID, webID, http) // t1: browse compromised site
	background(3)
	feed(webID, victimID, http) // t2: malware script download
	background(3)
	feed(victimID, ccID, tcp) // t3: register with C&C
	background(2)
	feed(ccID, victimID, tcp) // t4: receive command
	background(2)
	feed(victimID, ccID, big) // t5: exfiltration
	background(400)
	st := s.Stats()
	s.Close()

	fmt.Printf("\nstream done: %d alerts, %d discardable edges filtered, %d partial matches held\n",
		st.Matches, st.Discarded, st.PartialMatches)
	if st.Matches == 0 {
		fmt.Println("expected the planted incident to be detected — investigate!")
	}
}
