// Command adaptive demonstrates join-order reoptimization under data
// drift. A k=3 query (three independent edge patterns around a shared
// hub) runs over a stream whose dominant traffic shape flips halfway:
// first "registration" edges flood, then "command" edges. The paper
// picks one join order statically (Section VI-C); an engine opened with
// Config.Adaptive watches observed subquery cardinalities and reorders
// on the fly.
//
// The demo prints the match and reoptimization counters before and
// after the flip, then cross-checks the adaptive run's match count
// against a plain static-order run on the same stream — adaptation must
// change performance only, never results.
package main

import (
	"fmt"
	"math/rand"

	"timingsubg"
)

const (
	labHub     = 0
	labVictim  = 1
	labBot     = 2
	labCC      = 3
	hubCount   = 4
	leafCount  = 60
	phaseEdges = 3000
)

// buildQuery: victim→hub, hub→bot, hub→cc — three single-edge
// TC-subqueries sharing the hub vertex (k=3, every permutation of the
// subqueries is a valid prefix-connected join order).
func buildQuery() *timingsubg.Query {
	b := timingsubg.NewQueryBuilder()
	h := b.AddVertex(labHub)
	v := b.AddVertex(labVictim)
	bot := b.AddVertex(labBot)
	cc := b.AddVertex(labCC)
	b.AddEdge(v, h)
	b.AddEdge(h, bot)
	b.AddEdge(h, cc)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// phase generates n edges where the `hot` shape is ~10× more common
// than the others.
func phase(rng *rand.Rand, start, n, hot int) []timingsubg.Edge {
	var out []timingsubg.Edge
	for i := 0; i < n; i++ {
		kind := hot
		if rng.Intn(10) == 0 {
			kind = rng.Intn(3)
		}
		hub := timingsubg.VertexID(rng.Intn(hubCount))
		leaf := timingsubg.VertexID(100 + rng.Intn(leafCount))
		var e timingsubg.Edge
		switch kind {
		case 0:
			e = timingsubg.Edge{From: leaf, To: hub, FromLabel: labVictim, ToLabel: labHub}
		case 1:
			e = timingsubg.Edge{From: hub, To: leaf, FromLabel: labHub, ToLabel: labBot}
		default:
			e = timingsubg.Edge{From: hub, To: leaf, FromLabel: labHub, ToLabel: labCC}
		}
		e.Time = timingsubg.Timestamp(start + i + 1)
		out = append(out, e)
	}
	return out
}

func main() {
	q := buildQuery()
	rng := rand.New(rand.NewSource(17))
	edges := phase(rng, 0, phaseEdges, 0)                           // victim-registration flood
	edges = append(edges, phase(rng, phaseEdges, phaseEdges, 2)...) // C&C flood

	// The adaptive engine is plain Open with an Adaptivity option — the
	// same knob composes with durability (Config.Durable) and fleet
	// membership (QuerySpec.Adaptive).
	a, err := timingsubg.Open(timingsubg.Config{
		Query:    q,
		Window:   400,
		Adaptive: &timingsubg.Adaptivity{ReoptimizeEvery: 250, MinGain: 1.2},
	})
	if err != nil {
		panic(err)
	}

	report := func(tag string) {
		st := a.Stats()
		fmt.Printf("%s: matches %d, reoptimizations so far %d\n", tag, st.Matches, st.Reoptimizations)
	}
	for i, e := range edges {
		if _, err := a.Feed(e); err != nil {
			panic(err)
		}
		switch i {
		case phaseEdges - 1:
			report("end of phase 1 (registration flood)")
		case 2*phaseEdges - 1:
			report("end of phase 2 (C&C flood)      ")
		}
	}
	adaptiveMatches := a.Stats().Matches
	a.Close()

	// Reference: static order on the same stream, via the batch fast
	// path (one call for the whole stream).
	s, err := timingsubg.Open(timingsubg.Config{Query: q, Window: 400})
	if err != nil {
		panic(err)
	}
	if _, err := s.FeedBatch(edges); err != nil {
		panic(err)
	}
	staticMatches := s.Stats().Matches
	s.Close()

	fmt.Printf("matches: adaptive %d, static %d\n", adaptiveMatches, staticMatches)
	if adaptiveMatches == staticMatches {
		fmt.Println("adaptation changed the join order, not the results")
	} else {
		fmt.Println("MISMATCH — adaptation bug")
	}
}
