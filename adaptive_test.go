package timingsubg

import (
	"fmt"
	"math/rand"
	"testing"

	"timingsubg/internal/query"
)

// starQuery builds a k=3 query: three edge-disjoint TC-subqueries
// around a shared hub vertex h(0):
//
//	A: a1(1)→h, B: h→b1(2), C: h→c1(3)
//
// with no timing order between subqueries (so each is its own
// TC-subquery and every permutation is prefix-connected through h).
func starQuery(t testing.TB) *Query {
	t.Helper()
	b := NewQueryBuilder()
	h := b.AddVertex(0)
	a1 := b.AddVertex(1)
	b1 := b.AddVertex(2)
	c1 := b.AddVertex(3)
	b.AddEdge(a1, h)
	b.AddEdge(h, b1)
	b.AddEdge(h, c1)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// skewedStream emits edges so that one subquery's shape dominates:
// phase selects which label class floods the stream.
func skewedStream(n int, seed int64, hot int) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var out []Edge
	for i := 0; i < n; i++ {
		kind := hot
		if rng.Intn(10) == 0 { // 10% background of the other kinds
			kind = rng.Intn(3)
		}
		hub := VertexID(rng.Intn(4)) // labelled 0
		leaf := VertexID(100 + rng.Intn(50))
		var e Edge
		switch kind {
		case 0: // A-shaped: 1→0
			e = Edge{From: leaf, To: hub, FromLabel: 1, ToLabel: 0}
		case 1: // B-shaped: 0→2
			e = Edge{From: hub, To: leaf, FromLabel: 0, ToLabel: 2}
		default: // C-shaped: 0→3
			e = Edge{From: hub, To: leaf, FromLabel: 0, ToLabel: 3}
		}
		e.Time = Timestamp(i + 1)
		out = append(out, e)
	}
	return out
}

func TestAdaptiveRejectsBadOptions(t *testing.T) {
	q := starQuery(t)
	if _, err := NewAdaptiveSearcher(q, AdaptiveOptions{Options: Options{Window: 10, Workers: 2}}); err == nil {
		t.Fatal("workers > 1 accepted")
	}
	if _, err := NewAdaptiveSearcher(q, AdaptiveOptions{}); err == nil {
		t.Fatal("no window accepted")
	}
}

// TestAdaptiveMatchesPlain: adaptation must never change results. Run
// with an aggressive reoptimizer against a plain searcher on streams
// that force at least one rebuild.
func TestAdaptiveMatchesPlain(t *testing.T) {
	q := starQuery(t)
	for _, hot := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("hot=%d", hot), func(t *testing.T) {
			// Drift: first half hot on `hot`, second half hot elsewhere.
			edges := skewedStream(600, int64(hot)+10, hot)
			other := (hot + 1) % 3
			for i, e := range skewedStream(600, int64(hot)+20, other) {
				e.Time = Timestamp(600 + i + 1)
				edges = append(edges, e)
			}

			plain := map[string]bool{}
			s, err := NewSearcher(q, Options{Window: 90, OnMatch: func(m *Match) { plain[matchKey(m)] = true }})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges {
				if _, err := s.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			adapt := map[string]bool{}
			a, err := NewAdaptiveSearcher(q, AdaptiveOptions{
				Options:         Options{Window: 90, OnMatch: func(m *Match) { adapt[matchKey(m)] = true }},
				ReoptimizeEvery: 50,
				MinGain:         1.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range edges {
				if _, err := a.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			a.Close()

			if len(plain) == 0 {
				t.Fatal("no matches; stream too sparse to be meaningful")
			}
			if len(adapt) != len(plain) {
				t.Fatalf("adaptive found %d distinct matches, plain %d", len(adapt), len(plain))
			}
			for k := range plain {
				if !adapt[k] {
					t.Fatalf("adaptive missed %s", k)
				}
			}
			if a.MatchCount() != int64(len(plain)) {
				t.Fatalf("adaptive MatchCount %d, want %d", a.MatchCount(), len(plain))
			}
		})
	}
}

// TestAdaptiveReordersUnderDrift: when the dominant subquery changes,
// the reoptimizer must rebuild and move the dominant subquery later in
// the join order (small-first ordering).
func TestAdaptiveReordersUnderDrift(t *testing.T) {
	q := starQuery(t)
	a, err := NewAdaptiveSearcher(q, AdaptiveOptions{
		Options:         Options{Window: 200},
		ReoptimizeEvery: 100,
		MinGain:         1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.K() != 3 {
		t.Fatalf("k = %d, want 3 (test assumes 3 subqueries)", a.K())
	}

	// Phase 1: kind 0 floods. Phase 2: kind 2 floods.
	edges := skewedStream(1000, 30, 0)
	for i, e := range skewedStream(1000, 31, 2) {
		e.Time = Timestamp(1000 + i + 1)
		edges = append(edges, e)
	}
	var orderAfterPhase1 []uint64
	for i, e := range edges {
		if _, err := a.Feed(e); err != nil {
			t.Fatal(err)
		}
		if i == 999 {
			orderAfterPhase1 = a.JoinOrder()
		}
	}
	orderAfterPhase2 := a.JoinOrder()
	a.Close()

	if a.Reoptimizations() == 0 {
		t.Fatal("no reoptimization under heavy drift")
	}
	same := len(orderAfterPhase1) == len(orderAfterPhase2)
	if same {
		for i := range orderAfterPhase1 {
			if orderAfterPhase1[i] != orderAfterPhase2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("join order did not change across drift: %v", orderAfterPhase2)
	}
}

// TestOrderByCostPrefersSmallFirst checks the ordering primitive
// directly: with wildly different cardinalities, the most expensive
// subquery lands last.
func TestOrderByCostPrefersSmallFirst(t *testing.T) {
	q := starQuery(t)
	dec := Decompose(q)
	if dec.K() != 3 {
		t.Fatalf("k = %d, want 3", dec.K())
	}
	// Make subquery containing edge 0 hugely popular.
	card := func(s *query.TCSubquery) float64 {
		if s.Contains(0) {
			return 1e6
		}
		return 2
	}
	best := query.OrderByCost(q, dec.Subqueries, card)
	if !best.CoversExactly(q) {
		t.Fatal("ordered decomposition no longer covers the query")
	}
	last := best.Subqueries[len(best.Subqueries)-1]
	if !last.Contains(0) {
		t.Fatalf("hot subquery not last: order %v", best.Subqueries)
	}
	if query.EstimateOrderCost(best, card) > query.EstimateOrderCost(dec, card) {
		t.Fatal("OrderByCost produced a worse order than the static one")
	}
}

// BenchmarkAdaptiveVsStatic is the ablation for the adaptive design:
// on a drifting stream, throughput of the static joint-number order vs
// the adaptive reoptimizer.
func BenchmarkAdaptiveVsStatic(b *testing.B) {
	q := starQuery(b)
	mkEdges := func(n int) []Edge {
		edges := skewedStream(n/2, 40, 0)
		for i, e := range skewedStream(n-n/2, 41, 2) {
			e.Time = Timestamp(n/2 + i + 1)
			edges = append(edges, e)
		}
		return edges
	}
	b.Run("static", func(b *testing.B) {
		edges := mkEdges(4096)
		s, err := NewSearcher(q, Options{Window: 300})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			e.Time = Timestamp(i + 1)
			if _, err := s.Feed(e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		edges := mkEdges(4096)
		a, err := NewAdaptiveSearcher(q, AdaptiveOptions{
			Options:         Options{Window: 300},
			ReoptimizeEvery: 512,
			MinGain:         1.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := edges[i%len(edges)]
			e.Time = Timestamp(i + 1)
			if _, err := a.Feed(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}
