package timingsubg

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"timingsubg/internal/datagen"
	"timingsubg/internal/querygen"
)

// The join-index equivalence suite: the MS-tree vertex join indexes (and
// the scan-mode ablation behind Config.scanProbes) are pure performance —
// every engine composition must report identical per-query match sets
// and identical result counters whether probes are indexed or scanned,
// on either storage backend, at any fleet worker count. Deeper counter
// equivalence (PartialIns/PartialDel/JoinCandidates) is asserted per stream in
// internal/core's TestIndexEquivalenceAndSelectivity; this layer proves
// the public compositions — including sharded fleets, where shard
// workers race expiry cascades against candidate probes — inherit it.

// equivFleetRun feeds one stream to a fleet composition and returns the
// sorted per-query match keys plus the final snapshot.
func equivFleetRun(t *testing.T, cfg Config, specs []QuerySpec, edges []Edge, batch int) (map[string][]string, Stats) {
	t.Helper()
	var mu sync.Mutex
	got := map[string][]string{}
	cfg.Queries = specs
	cfg.Window = 300
	cfg.OnMatch = func(query string, m *Match) {
		mu.Lock()
		got[query] = append(got[query], m.Key())
		mu.Unlock()
	}
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batch > 0 {
		feedChunks(t, eng, edges, batch)
	} else {
		feedEach(t, eng, edges)
	}
	st := eng.Stats()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for name := range got {
		sort.Strings(got[name])
	}
	return got, st
}

// equivSpecs generates a 3-query roster from the stream prefix.
func equivSpecs(t *testing.T, edges []Edge) []QuerySpec {
	t.Helper()
	var specs []QuerySpec
	for i, size := range []int{3, 4, 4} {
		q, _, err := querygen.Generate(edges[:500], querygen.Config{
			Size: size, Order: querygen.RandomOrder, Seed: int64(i*19 + 3)})
		if err != nil {
			continue
		}
		specs = append(specs, QuerySpec{Name: fmt.Sprintf("q%d", i), Query: q})
	}
	if len(specs) < 2 {
		t.Skip("stream prefix yielded too few queries")
	}
	return specs
}

func TestJoinIndexEquivalenceFleet(t *testing.T) {
	for _, ds := range datagen.Datasets() {
		t.Run(ds.String(), func(t *testing.T) {
			labels := NewLabels()
			gen := datagen.New(ds, labels, datagen.Config{Vertices: 90, Seed: 41})
			edges := gen.Take(1500)
			specs := equivSpecs(t, edges)

			refKeys, refStats := equivFleetRun(t, Config{}, specs, edges, 0)
			total := 0
			for _, ks := range refKeys {
				total += len(ks)
			}
			if total == 0 {
				t.Skip("degenerate workload: no matches")
			}
			if refStats.JoinScanned != refStats.JoinCandidates {
				t.Errorf("indexed fleet visited non-candidates: scanned=%d candidates=%d",
					refStats.JoinScanned, refStats.JoinCandidates)
			}

			for _, tc := range []struct {
				name  string
				cfg   Config
				batch int
			}{
				{name: "scan", cfg: Config{scanProbes: true}},
				{name: "independent", cfg: Config{Storage: Independent}},
				{name: "independent-scan", cfg: Config{Storage: Independent, scanProbes: true}},
				{name: "workers4", cfg: Config{FleetWorkers: 4}, batch: 128},
				{name: "workers4-scan", cfg: Config{FleetWorkers: 4, scanProbes: true}, batch: 128},
			} {
				t.Run(tc.name, func(t *testing.T) {
					keys, st := equivFleetRun(t, tc.cfg, specs, edges, tc.batch)
					if len(keys) != len(refKeys) {
						t.Fatalf("per-query sets: got %d queries, want %d", len(keys), len(refKeys))
					}
					for name, want := range refKeys {
						got := keys[name]
						if len(got) != len(want) {
							t.Errorf("query %s: %d matches, want %d", name, len(got), len(want))
							continue
						}
						for i := range want {
							if got[i] != want[i] {
								t.Errorf("query %s: match set diverges at %d: %s != %s", name, i, got[i], want[i])
								break
							}
						}
					}
					if st.Matches != refStats.Matches || st.PartialMatches != refStats.PartialMatches {
						t.Errorf("counters diverge: matches=%d partials=%d, want matches=%d partials=%d",
							st.Matches, st.PartialMatches, refStats.Matches, refStats.PartialMatches)
					}
					if st.JoinCandidates != refStats.JoinCandidates {
						t.Errorf("candidate count diverges: %d, want %d", st.JoinCandidates, refStats.JoinCandidates)
					}
					if st.JoinScanned < st.JoinCandidates {
						t.Errorf("scanned %d < candidates %d", st.JoinScanned, st.JoinCandidates)
					}
				})
			}
		})
	}
}

// TestJoinIndexStatsSurfaced checks the selectivity counters flow
// through the unified snapshot on a plain single engine: an indexed run
// reports scanned == candidates > 0, and the same stream in scan mode
// reports the same candidates with at least as many visits.
func TestJoinIndexStatsSurfaced(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 2000, 23)

	run := func(scan bool) Stats {
		eng, err := Open(Config{Query: q, Window: 60, scanProbes: scan})
		if err != nil {
			t.Fatal(err)
		}
		feedEach(t, eng, edges)
		st := eng.Stats()
		eng.Close()
		return st
	}
	idx, scan := run(false), run(true)
	if idx.JoinCandidates == 0 {
		t.Fatal("workload produced no join candidates")
	}
	if idx.JoinScanned != idx.JoinCandidates {
		t.Errorf("indexed engine: scanned=%d != candidates=%d", idx.JoinScanned, idx.JoinCandidates)
	}
	if scan.JoinCandidates != idx.JoinCandidates {
		t.Errorf("scan engine candidates %d != indexed %d", scan.JoinCandidates, idx.JoinCandidates)
	}
	if scan.JoinScanned <= idx.JoinScanned {
		t.Errorf("scan engine should visit more than the index (scan %d, indexed %d)",
			scan.JoinScanned, idx.JoinScanned)
	}
	if idx.Matches != scan.Matches {
		t.Errorf("matches diverge: indexed %d, scan %d", idx.Matches, scan.Matches)
	}
}
