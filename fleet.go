package timingsubg

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/dispatch"
	"timingsubg/internal/fleetpool"
	"timingsubg/internal/graph"
	"timingsubg/internal/router"
	"timingsubg/internal/stats"
	"timingsubg/internal/wal"
)

// fleetEngine is the one multi-query engine implementation behind Open:
// several named member engines over one shared stream — the deployment
// shape of the paper's motivating scenarios, where all of, e.g.,
// Verizon's ten attack patterns are monitored at once. Routing,
// dynamics, durability, per-member adaptivity and sharded execution are
// orthogonal options of this one type; the deprecated MultiSearcher and
// PersistentMultiSearcher façades delegate here.
//
// # Concurrency
//
// Sequential mode (FleetWorkers <= 1): Feed, FeedBatch, Checkpoint and
// Close mutate engine state under the exclusive roster lock and must be
// serialized by the caller; the read accessors (Stats, Names, HasQuery,
// CurrentMatches) may run concurrently with them under the read lock.
//
// Sharded mode (FleetWorkers > 1): members are partitioned across N
// shards by fl.pool, each shard guarded by its own shardMu and
// evaluated by a pinned worker. The protocol:
//
//   - Feeds hold mu.RLock (roster + WAL stability) and the shard
//     workers take their shard's lock; a barrier per call preserves the
//     contract that a feed's effects are complete when it returns.
//   - Samplers (Stats, CurrentMatches, queryStats, …) hold mu.RLock
//     plus one shard lock at a time, so sampling never stops ingest on
//     the other shards.
//   - Roster mutators (AddQuery, RemoveQuery, Checkpoint, Close) hold
//     mu.Lock, which excludes all shard activity because every shard
//     mutation happens inside a feed's read-critical section. They are
//     therefore safe to call concurrently with feeding — no quiescing.
type fleetEngine struct {
	mu      sync.RWMutex
	members []*single // nil entries are retired slots, reusable by AddQuery
	names   []string  // "" for retired slots
	groups  []string  // per-slot QuerySpec.Group ("" = ungrouped)
	live    int       // number of non-nil members
	route   *router.Router

	// groupDets holds one shared detection histogram per declared
	// member group (QuerySpec.Group) — the per-tenant attribution
	// behind Stats.Groups. Histograms are cumulative and never removed:
	// a group's detection history survives its members' retirement,
	// exactly as the fleet-wide pipeline histograms survive roster
	// churn. Guarded by groupMu because members are constructed outside
	// the roster lock.
	groupMu   sync.Mutex
	groupDets map[string]*stats.AtomicHistogram

	// disp is the fleet's results plane: every member publishes into
	// it under its query name, so one Subscribe call observes the
	// whole roster (filtered or not). Members on different shards
	// publish concurrently; the dispatcher serializes per
	// subscription.
	disp *dispatch.Dispatcher

	// Sharded execution state (nil/empty in sequential mode).
	pool      *fleetpool.Pool
	shardMu   []sync.Mutex
	allShards []int
	// Feeder-owned dispatch scratch — Feed/FeedBatch are serialized by
	// the Engine contract, so one set of buffers suffices.
	shardErr   []error
	routeWork  [][]routedItem
	workShards []int

	fedN     atomic.Int64 // edges offered to the fleet
	routed   atomic.Int64 // engine feeds actually performed (routed mode)
	possible atomic.Int64 // Σ per-edge live fleet size (routed mode denominator)
	walSeq   atomic.Int64 // mirror of log.Seq() so Stats never touches the log
	lastTime atomic.Int64 // fleet stream clock (durable and sharded modes)

	// anyAdaptive records whether any member composes the reoptimizer
	// (drives the Stats.Adaptive capability flag).
	anyAdaptive bool

	// obs is the fleet-wide observability wiring (nil = metrics off).
	// Members share its pipeline and arrival clock; each keeps a
	// private detection histogram for per-query attribution.
	obs *obs

	// Config-level defaults inherited by specs that leave them zero.
	defaults Config

	// Durability state (shared WAL, per-query checkpoints).
	dur       *Durability
	log       *wal.Log
	replayed  int64
	sinceCkpt atomic.Int64

	closed atomic.Bool
}

// routedItem is one (edge, member) evaluation in a shard's work list.
type routedItem struct {
	edge int // index into the batch
	slot int // member slot
}

// memberOptions merges the fleet defaults under a spec's own Options.
func (fl *fleetEngine) memberOptions(spec QuerySpec) Options {
	o := spec.Options
	o.OnMatch = nil // fleet members report through the fleet callback
	if o.Window == 0 && o.CountWindow == 0 {
		o.Window, o.CountWindow = fl.defaults.Window, fl.defaults.CountWindow
	}
	if o.Storage == MSTree {
		o.Storage = fl.defaults.Storage
	}
	if o.Workers == 0 {
		o.Workers = fl.defaults.Workers
	}
	if o.LockScheme == FineGrained {
		o.LockScheme = fl.defaults.LockScheme
	}
	if fl.defaults.scanProbes {
		o.scanProbes = true
	}
	if fl.defaults.perEdgeExpiry {
		o.perEdgeExpiry = true
	}
	if fl.obs != nil {
		// Members share the fleet's stage pipeline so every member's
		// join/expiry/dispatch work lands in one fleet-wide view.
		o.pipe = fl.obs.pipe
		o.eventUnitNs = fl.obs.eventUnitNs
		o.slowOpNs = fl.obs.slowNs
		o.onSlowOp = fl.obs.onSlow
	}
	return o
}

// memberAdaptivity resolves a spec's adaptivity: its own setting, else
// the fleet-wide default.
func (fl *fleetEngine) memberAdaptivity(spec QuerySpec) *Adaptivity {
	if spec.Adaptive != nil {
		return spec.Adaptive
	}
	return fl.defaults.Adaptive
}

// newMember builds one member engine and rebases it onto the fleet's
// results plane: the member publishes matches under its query name
// into the fleet dispatcher instead of owning one. The rebase happens
// before any checkpoint restore so durable sequence seeding lands on
// the fleet dispatcher.
func (fl *fleetEngine) newMember(spec QuerySpec) (*single, error) {
	en, err := newSingle(spec.Query, fl.memberOptions(spec), fl.memberAdaptivity(spec), nil)
	if err != nil {
		return nil, fmt.Errorf("timingsubg: query %q: %w", spec.Name, err)
	}
	en.disp, en.pubName, en.ownsDisp = fl.disp, spec.Name, false
	if en.obs != nil {
		// A private detection histogram gives the member its per-query
		// attribution; fleetDet keeps the fleet-wide aggregate whole. The
		// member reads the fleet's arrival clock, so detection latency is
		// measured from the fleet feed boundary (queue wait included).
		en.obs.det = &stats.AtomicHistogram{}
		en.obs.fleetDet = &fl.obs.pipe.Detection
		en.obs.arrival = fl.obs.arrival
		if spec.Group != "" {
			en.obs.groupDet = fl.groupHist(spec.Group)
		}
	}
	return en, nil
}

// groupHist returns group's shared detection histogram, creating it on
// first use. Safe to call without the roster lock (AddQuery constructs
// members before taking it).
func (fl *fleetEngine) groupHist(group string) *stats.AtomicHistogram {
	fl.groupMu.Lock()
	defer fl.groupMu.Unlock()
	if fl.groupDets == nil {
		fl.groupDets = make(map[string]*stats.AtomicHistogram)
	}
	h, ok := fl.groupDets[group]
	if !ok {
		h = &stats.AtomicHistogram{}
		fl.groupDets[group] = h
	}
	return h
}

// validateFleetSpec checks the per-query constraints of fleet
// membership under the fleet's own options.
func (fl *fleetEngine) validateFleetSpec(spec QuerySpec) error {
	o := fl.memberOptions(spec)
	if spec.Name == "" {
		return fmt.Errorf("timingsubg: query name must be non-empty: %w", ErrBadOptions)
	}
	if fl.route != nil && o.CountWindow > 0 {
		return fmt.Errorf("timingsubg: query %q: routing requires time-based windows (count windows measure fed edges): %w",
			spec.Name, ErrBadOptions)
	}
	if fl.dur != nil {
		switch {
		case spec.Name == "." || spec.Name == ".." || strings.ContainsAny(spec.Name, "/\\"):
			// Names become directory components under Dir/ck/; "." and ".."
			// would alias (and on removal, destroy) other state.
			return fmt.Errorf("timingsubg: query name %q must be non-empty and path-safe: %w", spec.Name, ErrBadOptions)
		case o.Workers > 1:
			return fmt.Errorf("timingsubg: query %q: persistent mode requires Workers <= 1: %w", spec.Name, ErrBadOptions)
		case o.Window <= 0 || o.CountWindow > 0:
			return fmt.Errorf("timingsubg: query %q: persistent mode supports time-based windows only: %w", spec.Name, ErrBadOptions)
		}
	}
	return nil
}

// openFleet builds a fleet engine from cfg; see Open.
func openFleet(cfg Config) (*fleetEngine, error) {
	if len(cfg.Queries) == 0 && !cfg.Dynamic {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	fl := &fleetEngine{
		defaults: cfg,
		disp:     dispatch.New(),
	}
	if !cfg.DisableMetrics {
		fl.obs = newObs(stats.NewPipeline(), int64(cfg.EventTimeUnit), int64(cfg.SlowOpThreshold), cfg.OnSlowOp)
	}
	if sink := configSink(cfg); sink != nil {
		fl.disp.SubscribeFunc(sink)
	}
	fl.lastTime.Store(int64(minTimestamp))
	if cfg.Routed {
		fl.route = router.New()
	}
	if cfg.FleetWorkers > 1 {
		fl.pool = fleetpool.New(cfg.FleetWorkers)
		if fl.obs != nil {
			fl.pool.WaitHist = &fl.obs.pipe.QueueWait
			fl.pool.ExecHist = &fl.obs.pipe.ShardExec
		}
		fl.shardMu = make([]sync.Mutex, cfg.FleetWorkers)
		fl.allShards = make([]int, cfg.FleetWorkers)
		for s := range fl.allShards {
			fl.allShards[s] = s
		}
		fl.shardErr = make([]error, cfg.FleetWorkers)
		fl.routeWork = make([][]routedItem, cfg.FleetWorkers)
		fl.workShards = make([]int, 0, cfg.FleetWorkers)
	}
	fail := func(err error) (*fleetEngine, error) {
		if fl.pool != nil {
			fl.pool.Close()
		}
		return nil, err
	}
	if cfg.Durable != nil {
		if cfg.Routed {
			// Recovery replay fans every logged record to every member
			// (and a routed member's per-engine edge IDs would drift
			// from the WAL sequence), so a routed fleet cannot recover
			// deterministically. The durable fleet broadcasts.
			return fail(errors.Join(ErrBadOptions, errors.New("durable fleets broadcast: Routed does not compose with Durable")))
		}
		dur := *cfg.Durable
		if dur.Dir == "" {
			return fail(errors.Join(ErrBadOptions, errors.New("persistent mode requires Dir")))
		}
		if dur.CheckpointEvery <= 0 {
			dur.CheckpointEvery = 4096
		}
		fl.dur = &dur
		if err := fl.openDurable(cfg.Queries); err != nil {
			return fail(err)
		}
		return fl, nil
	}
	seen := map[string]bool{}
	for _, spec := range cfg.Queries {
		if seen[spec.Name] {
			return fail(fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions))
		}
		seen[spec.Name] = true
		if err := fl.addMember(spec); err != nil {
			return fail(err)
		}
	}
	return fl, nil
}

// addMember builds and registers one member engine at open time (the
// in-memory join; the durable join point is pinned by AddQuery's
// initial checkpoint).
func (fl *fleetEngine) addMember(spec QuerySpec) error {
	if err := fl.validateFleetSpec(spec); err != nil {
		return err
	}
	en, err := fl.newMember(spec)
	if err != nil {
		return err
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.installLocked(spec, en)
	return nil
}

// installLocked places en in a free slot (or a new one) and, in sharded
// mode, assigns the slot to the least-loaded shard.
func (fl *fleetEngine) installLocked(spec QuerySpec, en *single) int {
	slot := -1
	for i, m := range fl.members {
		if m == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(fl.members)
		fl.members = append(fl.members, nil)
		fl.names = append(fl.names, "")
		fl.groups = append(fl.groups, "")
	}
	fl.members[slot] = en
	fl.names[slot] = spec.Name
	fl.groups[slot] = spec.Group
	fl.live++
	if en.adapt != nil {
		fl.anyAdaptive = true
	}
	if fl.route != nil {
		fl.route.Add(slot, spec.Query)
	}
	if fl.pool != nil {
		fl.pool.Assign(slot)
	}
	return slot
}

// ckDir returns the named query's checkpoint directory.
func (fl *fleetEngine) ckDir(name string) string {
	return filepath.Join(fl.dur.Dir, "ck", name)
}

// openDurable opens the shared WAL and recovers every spec'd query:
// each from its own checkpoint, then one replay pass over the shared
// log suffix. Queries with no checkpoint join from the oldest retained
// log record: history reclaimed by earlier checkpoints is gone, exactly
// as a newly deployed pattern cannot see traffic that predates its
// deployment.
func (fl *fleetEngine) openDurable(specs []QuerySpec) error {
	seen := map[string]bool{}
	for _, spec := range specs {
		if err := fl.validateFleetSpec(spec); err != nil {
			return err
		}
		if seen[spec.Name] {
			return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
		}
		seen[spec.Name] = true
	}
	var syncHist, gcHist *stats.AtomicHistogram
	if fl.obs != nil {
		syncHist = &fl.obs.pipe.WALSync
		gcHist = &fl.obs.pipe.WALGroupCommit
	}
	log, err := wal.Open(fl.dur.Dir, wal.Options{
		SegmentBytes:    fl.dur.SegmentBytes,
		SyncEvery:       fl.dur.SyncEvery,
		SyncInterval:    fl.dur.SyncInterval,
		OpenFile:        fl.dur.openFile,
		SyncHist:        syncHist,
		GroupCommitHist: gcHist,
	})
	if err != nil {
		return err
	}
	fl.log = log
	fail := func(err error) error {
		log.Close()
		return err
	}
	logStart, err := wal.FirstSeq(fl.dur.Dir)
	if err != nil {
		return fail(err)
	}

	// Per-query recovery state: each member's replay cursor.
	froms := make([]int64, len(specs))
	lastT := minTimestamp
	var maxNext int64
	for i, spec := range specs {
		o := fl.memberOptions(spec)
		ck, haveCk, err := checkpoint.Load(fl.ckDir(spec.Name))
		if err != nil {
			return fail(err)
		}
		if haveCk && ck.Window != o.Window {
			return fail(fmt.Errorf("timingsubg: query %q: checkpoint window %d != configured window %d: %w",
				spec.Name, ck.Window, o.Window, ErrBadOptions))
		}
		en, err := fl.newMember(spec)
		if err != nil {
			return fail(err)
		}
		if haveCk {
			en.restoreCheckpoint(ck)
			froms[i] = ck.NextSeq
			if ck.NextSeq > maxNext {
				maxNext = ck.NextSeq
			}
		} else {
			// A new query joins at the retained log horizon.
			en.stream = graph.RestoreStream(o.Window, nil, graph.EdgeID(logStart))
			froms[i] = logStart
		}
		fl.installLocked(spec, en)
		// The stream clock resumes from the newest checkpointed edge;
		// WAL replay below advances it further if a suffix exists.
		if lt := en.stream.LastTime(); lt > lastT {
			lastT = lt
		}
	}
	if len(specs) > 0 {
		// The slowest member cursor gates truncation from the start: no
		// record a member still needs to replay can be reclaimed. SkipTo
		// below may raise the gate further when the whole log tail was
		// lost behind the newest checkpoint.
		minFrom := froms[0]
		for _, f := range froms[1:] {
			if f < minFrom {
				minFrom = f
			}
		}
		log.SetCheckpointLSN(minFrom)
	}
	if err := log.SkipTo(maxNext); err != nil {
		return fail(err)
	}

	// One replay pass over the whole retained log: each record goes to
	// every member whose cursor has reached it. The walk starts at the
	// retained horizon — not at the oldest query cursor — because the
	// stream clock (lastTime) must recover from every record, including
	// ones no current query needs; otherwise a post-restart ingest could
	// reuse a timestamp already in the log and break its monotonicity.
	end, err := wal.Replay(fl.dur.Dir, logStart, func(seq int64, e graph.Edge) error {
		clean := graph.Edge{
			From: e.From, To: e.To,
			FromLabel: e.FromLabel, ToLabel: e.ToLabel, EdgeLabel: e.EdgeLabel,
			Time: e.Time,
		}
		for i, m := range fl.members {
			if seq < froms[i] {
				continue
			}
			if err := m.replayRecord(seq, clean); err != nil {
				return fmt.Errorf("query %q: %w", fl.names[i], err)
			}
			m.replayed-- // the fleet counts replay once, below
		}
		if e.Time > lastT {
			lastT = e.Time
		}
		fl.replayed++
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("timingsubg: recovery replay: %w", err))
	}
	if end != log.Seq() {
		return fail(fmt.Errorf("timingsubg: recovery replay ended at %d, log at %d", end, log.Seq()))
	}
	fl.lastTime.Store(int64(lastT))
	fl.walSeq.Store(log.Seq())
	return nil
}

// AddQuery implements Fleet. The new query's window starts empty: it
// sees only edges fed after it joins. In durable mode the join point is
// pinned with an initial checkpoint, and any stale checkpoint left
// under the name by a previously removed query is discarded. On a
// sharded fleet the new member lands on the least-loaded shard, and the
// call is safe to make while the stream is being fed.
func (fl *fleetEngine) AddQuery(spec QuerySpec) error {
	if err := fl.validateFleetSpec(spec); err != nil {
		return err
	}
	o := fl.memberOptions(spec)
	// Engine construction (decomposition, cost model) is the expensive
	// part and needs no fleet state — do it before taking the roster
	// lock so a concurrent stream stalls as briefly as possible.
	en, err := fl.newMember(spec)
	if err != nil {
		return err
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed.Load() {
		return ErrClosed
	}
	if fl.indexLocked(spec.Name) >= 0 {
		return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
	}
	if fl.dur != nil {
		// A checkpoint under this name can only be stale (from a removed
		// or never-reopened query); joining at the tail supersedes it.
		if err := os.RemoveAll(fl.ckDir(spec.Name)); err != nil {
			return fmt.Errorf("timingsubg: query %q: discard stale checkpoint: %w", spec.Name, err)
		}
		en.stream = graph.RestoreStream(o.Window, nil, graph.EdgeID(fl.log.Seq()))
		// An initial checkpoint pins the join point durably: without it, a
		// crash before the first periodic checkpoint would make recovery
		// treat this query as brand new and replay it from the retained
		// log horizon — pre-join traffic it must never see.
		if err := checkpoint.Save(fl.ckDir(spec.Name), checkpoint.Checkpoint{
			NextSeq: fl.log.Seq(),
			Window:  o.Window,
		}); err != nil {
			return fmt.Errorf("timingsubg: query %q: initial checkpoint: %w", spec.Name, err)
		}
	}
	fl.installLocked(spec, en)
	return nil
}

// RemoveQuery implements Fleet: the member is drained and its slot
// freed for reuse; in durable mode its checkpoints are deleted (the
// shared log is untouched — other queries may still need it). On a
// sharded fleet the member's shard sheds its load, making it the
// preferred target of the next AddQuery.
func (fl *fleetEngine) RemoveQuery(name string) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed.Load() {
		return ErrClosed
	}
	i := fl.indexLocked(name)
	if i < 0 {
		return fmt.Errorf("timingsubg: unknown query %q: %w", name, ErrBadOptions)
	}
	fl.members[i].Close()
	fl.members[i] = nil
	fl.names[i] = ""
	fl.groups[i] = ""
	fl.live--
	if fl.route != nil {
		fl.route.Remove(i)
	}
	if fl.pool != nil {
		fl.pool.Release(i)
	}
	// End the subscriptions that filtered solely on retired names and
	// reset the name's delivery sequence — a later query reusing the
	// name starts a fresh sequence, exactly as a durable restart (which
	// discards the checkpoint below) would produce. No publish can race
	// this: feeds are excluded by the exclusive roster lock.
	fl.disp.Retire(name, func(q string) bool { return fl.indexLocked(q) >= 0 })
	if fl.dur != nil {
		return os.RemoveAll(fl.ckDir(name))
	}
	return nil
}

// Subscribe implements Engine: one subscription observes any subset of
// the roster (SubscribeOptions.Queries), or all of it, including
// queries added later.
func (fl *fleetEngine) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	return subscribeOn(fl.disp, opts)
}

// subscriptionCounters is the lock-light sampler behind
// SubscriptionCounters: dispatcher accounting only, no roster walk.
func (fl *fleetEngine) subscriptionCounters() (int, int64, int64) {
	return fl.disp.Subscribers(), fl.disp.Delivered(), fl.disp.Dropped()
}

// indexLocked returns the slot of the live query named name, or -1.
func (fl *fleetEngine) indexLocked(name string) int {
	for i, n := range fl.names {
		if n == name && fl.members[i] != nil {
			return i
		}
	}
	return -1
}

// HasQuery implements Fleet.
func (fl *fleetEngine) HasQuery(name string) bool {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	return fl.indexLocked(name) >= 0
}

// Names implements Fleet.
func (fl *fleetEngine) Names() []string {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	out := make([]string, 0, fl.live)
	for i, n := range fl.names {
		if fl.members[i] != nil {
			out = append(out, n)
		}
	}
	return out
}

// dispatchLocked fans one edge out to the members sequentially (or, in
// routed mode, to the interested members). Caller holds the exclusive
// roster lock (sequential mode only).
func (fl *fleetEngine) dispatchLocked(e Edge) error {
	if fl.route != nil {
		// The saved-work denominator accrues the fleet size *as of this
		// edge* — queries come and go, so a cumulative counter is the
		// only way the ratio stays meaningful.
		fl.possible.Add(int64(fl.live))
		var ferr error
		fl.route.Route(e, func(i int) {
			if ferr != nil || fl.members[i] == nil {
				return
			}
			fl.routed.Add(1)
			if err := fl.members[i].memberFeed(e); err != nil {
				ferr = fmt.Errorf("timingsubg: query %q: %w", fl.names[i], err)
			}
		})
		return ferr
	}
	for i, m := range fl.members {
		if m == nil {
			continue
		}
		if err := m.memberFeed(e); err != nil {
			return fmt.Errorf("timingsubg: query %q: %w", fl.names[i], err)
		}
	}
	return nil
}

// fanOutLocked fans a monotone-validated batch out to the shards and
// waits for all of them — the per-call barrier. Caller holds the roster
// read lock (sharded mode only). Each member sees its edges in batch
// order because a member lives on exactly one shard and a shard
// evaluates its work list sequentially. Member feed errors are
// structurally unreachable here — monotonicity was already enforced at
// the fleet boundary, and ErrOutOfOrder is the only per-edge feed
// error — but are still collected and surfaced defensively.
func (fl *fleetEngine) fanOutLocked(batch []Edge) error {
	for s := range fl.shardErr {
		fl.shardErr[s] = nil
	}
	if fl.route == nil {
		fl.pool.Run(fl.allShards, func(s int) {
			fl.shardMu[s].Lock()
			defer fl.shardMu[s].Unlock()
			for i := range batch {
				for _, slot := range fl.pool.Handles(s) {
					m := fl.members[slot]
					if m == nil {
						continue
					}
					if err := m.memberFeed(batch[i]); err != nil {
						fl.shardErr[s] = fmt.Errorf("timingsubg: edge %d: query %q: %w", i, fl.names[slot], err)
						return
					}
				}
			}
		})
	} else {
		// Route on the feeder goroutine (Route mutates router
		// bookkeeping and the saved-work counters), building each
		// shard's work list in edge order.
		work := fl.routeWork
		for s := range work {
			work[s] = work[s][:0]
		}
		for i := range batch {
			fl.possible.Add(int64(fl.live))
			fl.route.Route(batch[i], func(slot int) {
				if fl.members[slot] == nil {
					return
				}
				s, ok := fl.pool.ShardOf(slot)
				if !ok {
					return
				}
				fl.routed.Add(1)
				work[s] = append(work[s], routedItem{edge: i, slot: slot})
			})
		}
		shards := fl.workShards[:0]
		for s := range work {
			if len(work[s]) > 0 {
				shards = append(shards, s)
			}
		}
		fl.workShards = shards
		fl.pool.Run(shards, func(s int) {
			fl.shardMu[s].Lock()
			defer fl.shardMu[s].Unlock()
			for _, it := range work[s] {
				if err := fl.members[it.slot].memberFeed(batch[it.edge]); err != nil {
					fl.shardErr[s] = fmt.Errorf("timingsubg: edge %d: query %q: %w", it.edge, fl.names[it.slot], err)
					return
				}
			}
		})
	}
	for _, err := range fl.shardErr {
		if err != nil {
			return err
		}
	}
	return nil
}

// memberFeed is the fleet fan-out feed step of one member: push plus
// adaptivity cadence, with no WAL and no closed-check (the fleet owns
// both).
func (en *single) memberFeed(e Edge) error {
	if _, err := en.push(e); err != nil {
		return err
	}
	en.tickAdaptive(1)
	return nil
}

// Feed implements Engine. In durable mode the returned ID is the WAL
// sequence number; otherwise it is the fleet-level arrival index. (In
// routed mode member engines assign their own per-engine IDs, so the
// same data edge may carry different IDs in matches of different
// queries.)
func (fl *fleetEngine) Feed(e Edge) (EdgeID, error) {
	if fl.closed.Load() {
		return 0, ErrClosed
	}
	if fl.pool != nil {
		return fl.feedSharded(e)
	}
	o := fl.obs
	var start time.Time
	var walNs int64
	if o != nil {
		start = time.Now()
		o.arrival.Store(start.UnixNano())
	}
	// The whole mutation — WAL append, fan-out, clock — runs under the
	// exclusive roster lock, so concurrent Stats sampling (which reads
	// member windows under RLock) never races it.
	fl.mu.Lock()
	if fl.closed.Load() {
		fl.mu.Unlock()
		return 0, ErrClosed
	}
	id := EdgeID(fl.fedN.Load())
	if fl.log != nil {
		// The monotonicity check runs before the WAL append, so an
		// out-of-order edge can never poison the log (replay requires a
		// monotone record sequence).
		if last := Timestamp(fl.lastTime.Load()); e.Time <= last {
			fl.mu.Unlock()
			return 0, fmt.Errorf("timingsubg: %w: got %d after %d", graph.ErrOutOfOrder, e.Time, last)
		}
		var seq int64
		var err error
		if o != nil {
			t := time.Now()
			seq, err = fl.log.Append(e)
			d := time.Since(t)
			walNs = int64(d)
			o.pipe.WALAppend.Observe(d)
		} else {
			seq, err = fl.log.Append(e)
		}
		if err != nil {
			fl.mu.Unlock()
			return 0, err
		}
		fl.walSeq.Store(fl.log.Seq())
		id = EdgeID(seq)
	}
	err := fl.dispatchLocked(e)
	if err == nil && fl.log != nil {
		fl.lastTime.Store(int64(e.Time))
	}
	fl.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if o != nil {
		total := time.Since(start)
		o.pipe.Ingest.Observe(total)
		o.slowFeed("feed", 1, total, time.Duration(walNs))
	}
	fl.fedN.Add(1)
	return id, fl.tick(1)
}

// feedSharded is the sharded Feed path: monotonicity enforced at the
// fleet boundary, WAL append (durable mode), then concurrent fan-out
// with a barrier before the call returns.
func (fl *fleetEngine) feedSharded(e Edge) (EdgeID, error) {
	o := fl.obs
	var start time.Time
	var walNs int64
	if o != nil {
		start = time.Now()
		o.arrival.Store(start.UnixNano())
	}
	fl.mu.RLock()
	if fl.closed.Load() {
		fl.mu.RUnlock()
		return 0, ErrClosed
	}
	// A sharded fleet rejects an out-of-order edge before any member
	// sees it: shards advance concurrently, so a per-member rejection
	// could not keep the members aligned.
	if last := Timestamp(fl.lastTime.Load()); e.Time <= last {
		fl.mu.RUnlock()
		return 0, fmt.Errorf("timingsubg: %w: got %d after %d", graph.ErrOutOfOrder, e.Time, last)
	}
	id := EdgeID(fl.fedN.Load())
	if fl.log != nil {
		var seq int64
		var err error
		if o != nil {
			t := time.Now()
			seq, err = fl.log.Append(e)
			d := time.Since(t)
			walNs = int64(d)
			o.pipe.WALAppend.Observe(d)
		} else {
			seq, err = fl.log.Append(e)
		}
		if err != nil {
			fl.mu.RUnlock()
			return 0, err
		}
		fl.walSeq.Store(fl.log.Seq())
		id = EdgeID(seq)
	}
	err := fl.fanOutLocked([]Edge{e})
	if err == nil {
		fl.lastTime.Store(int64(e.Time))
	}
	fl.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	if o != nil {
		total := time.Since(start)
		o.pipe.Ingest.Observe(total)
		o.slowFeed("feed", 1, total, time.Duration(walNs))
	}
	fl.fedN.Add(1)
	return id, fl.tick(1)
}

// FeedBatch implements Engine: one closed-check, one WAL write and at
// most one sync, one lock acquisition and one maintenance tick for the
// whole batch. On a sharded fleet the batch is validated and logged
// once up front, then fanned out to all shards concurrently.
func (fl *fleetEngine) FeedBatch(batch []Edge) (int, error) {
	if fl.closed.Load() {
		return 0, ErrClosed
	}
	if fl.pool != nil {
		return fl.feedBatchSharded(batch)
	}
	o := fl.obs
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	n := len(batch)
	var batchErr error
	var walD time.Duration
	fl.mu.Lock()
	if fl.closed.Load() {
		fl.mu.Unlock()
		return 0, ErrClosed
	}
	if fl.log != nil {
		n, batchErr = monotonePrefix(batch, Timestamp(fl.lastTime.Load()))
		// On a WAL failure, dispatch exactly the records that were
		// durably appended — fleet state must never diverge from the
		// shared log (see single.FeedBatch).
		if o != nil {
			t := time.Now()
			_, appended, werr := fl.log.AppendBatch(batch[:n])
			walD = time.Since(t)
			o.pipe.WALAppend.Observe(walD)
			if werr != nil {
				n, batchErr = appended, werr
			}
		} else if _, appended, werr := fl.log.AppendBatch(batch[:n]); werr != nil {
			n, batchErr = appended, werr
		}
		fl.walSeq.Store(fl.log.Seq())
	}
	// One clock read per edge: each iteration's end time is the next
	// one's arrival stamp (see single.FeedBatch).
	prev := start
	i := 0
	for ; i < n; i++ {
		if o != nil {
			o.arrival.Store(prev.UnixNano())
		}
		if err := fl.dispatchLocked(batch[i]); err != nil {
			batchErr = fmt.Errorf("timingsubg: edge %d: %w", i, err)
			break
		}
		if fl.log != nil {
			fl.lastTime.Store(int64(batch[i].Time))
		}
		if o != nil {
			now := time.Now()
			o.pipe.Ingest.Observe(now.Sub(prev))
			prev = now
		}
	}
	fl.mu.Unlock()
	if o != nil {
		o.slowFeed("feed_batch", i, time.Since(start), walD)
	}
	fl.fedN.Add(int64(i))
	if err := fl.tick(i); err != nil {
		return i, err
	}
	return i, batchErr
}

// feedBatchSharded is the sharded FeedBatch path: the whole batch is
// validated against the fleet clock and (in durable mode) appended to
// the WAL exactly once before fan-out, so shards only ever see edges
// the log already holds — the WAL/engine no-divergence invariant.
func (fl *fleetEngine) feedBatchSharded(batch []Edge) (int, error) {
	o := fl.obs
	var start time.Time
	var walD time.Duration
	if o != nil {
		// Shards interleave the batch's edges, so per-edge ingest
		// attribution is not possible here: the batch is one ingest
		// observation and the arrival clock holds the batch entry time
		// (detection latency is then measured from batch entry — a
		// documented approximation of the sharded fast path).
		start = time.Now()
		o.arrival.Store(start.UnixNano())
	}
	fl.mu.RLock()
	if fl.closed.Load() {
		fl.mu.RUnlock()
		return 0, ErrClosed
	}
	// Validation must precede dispatch entirely: shards advance
	// concurrently, so "stop at the bad edge" can only be enforced
	// before fan-out, not during it.
	n, batchErr := monotonePrefix(batch, Timestamp(fl.lastTime.Load()))
	if fl.log != nil && n > 0 {
		if o != nil {
			t := time.Now()
			_, appended, werr := fl.log.AppendBatch(batch[:n])
			walD = time.Since(t)
			o.pipe.WALAppend.Observe(walD)
			if werr != nil {
				n, batchErr = appended, werr
			}
		} else if _, appended, werr := fl.log.AppendBatch(batch[:n]); werr != nil {
			n, batchErr = appended, werr
		}
		fl.walSeq.Store(fl.log.Seq())
	}
	if n > 0 {
		if err := fl.fanOutLocked(batch[:n]); err != nil && batchErr == nil {
			batchErr = err
		}
		fl.lastTime.Store(int64(batch[n-1].Time))
	}
	fl.mu.RUnlock()
	if o != nil && n > 0 {
		total := time.Since(start)
		o.pipe.Ingest.Observe(total)
		o.slowFeed("feed_batch", n, total, walD)
	}
	fl.fedN.Add(int64(n))
	if err := fl.tick(n); err != nil {
		return n, err
	}
	return n, batchErr
}

// tick advances the checkpoint cadence by n fed edges.
func (fl *fleetEngine) tick(n int) error {
	if fl.dur == nil || n == 0 {
		return nil
	}
	if fl.sinceCkpt.Add(int64(n)) >= int64(fl.dur.CheckpointEvery) {
		return fl.Checkpoint()
	}
	return nil
}

// Checkpoint forces per-query checkpoints now and reclaims WAL segments
// no query needs anymore. It is a no-op for in-memory fleets, and for
// closed fleets (Close wrote the final checkpoint; nothing newer can
// exist).
func (fl *fleetEngine) Checkpoint() error {
	if fl.dur == nil {
		return nil
	}
	// Exclusive: Sync/TruncateFront mutate the log, and the member walk
	// must not observe a half-applied feed (shard mutations all happen
	// inside a feed's read-critical section).
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed.Load() {
		return nil
	}
	return fl.checkpointLocked()
}

func (fl *fleetEngine) checkpointLocked() error {
	fl.sinceCkpt.Store(0)
	if err := fl.log.Sync(); err != nil {
		return err
	}
	next := fl.log.Seq()
	for i, m := range fl.members {
		if m == nil {
			continue
		}
		st, ok := m.stream.(*graph.Stream)
		if !ok {
			return fmt.Errorf("timingsubg: query %q: not a time-window stream", fl.names[i])
		}
		ck := checkpoint.Checkpoint{
			NextSeq:   next,
			Window:    m.opts.Window,
			Matches:   m.matches(),
			Discarded: m.discarded(),
			Edges:     st.InWindow(),
		}
		dir := fl.ckDir(fl.names[i])
		if err := checkpoint.Save(dir, ck); err != nil {
			return err
		}
		if err := checkpoint.GC(dir, 2); err != nil {
			return err
		}
	}
	// Every member now has a durable checkpoint at next, so next is the
	// new truncation gate: segments wholly below it are reclaimable and
	// the shared log stays bounded by window span plus one segment.
	fl.log.SetCheckpointLSN(next)
	return fl.log.TruncateFront(next)
}

// Run implements Engine.
func (fl *fleetEngine) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return runLoop(ctx, edges, func(e Edge) error {
		_, err := fl.Feed(e)
		return err
	}, fl.Close)
}

// Close implements Engine: drain every member, stop the shard workers
// and, in durable mode, checkpoint and close the shared WAL. Idempotent,
// and on a sharded fleet safe to call concurrently with feeding (feeds
// racing Close either complete first or return ErrClosed).
func (fl *fleetEngine) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed.Load() {
		return nil
	}
	fl.closed.Store(true)
	for _, m := range fl.members {
		if m != nil {
			m.Close()
		}
	}
	if fl.pool != nil {
		fl.pool.Close()
	}
	// Members are drained: no further publishes. Ending the
	// subscriptions closes every consumer channel.
	fl.disp.Close()
	if fl.log == nil {
		return nil
	}
	if err := fl.checkpointLocked(); err != nil {
		fl.log.Close()
		return err
	}
	return fl.log.Close()
}

// routedFraction reports, in routed mode, the ratio of engine feeds
// performed to engine feeds a naive fan-out would have performed
// (summing the live fleet size at each edge, so the ratio stays exact
// across AddQuery/RemoveQuery) — the dispatch work saved by routing.
// It returns 1 in unrouted mode.
func (fl *fleetEngine) routedFraction() float64 {
	possible := fl.possible.Load()
	if fl.route == nil || possible == 0 {
		return 1
	}
	return float64(fl.routed.Load()) / float64(possible)
}

// fleetLastTimeLocked returns the fleet stream clock: the maintained
// clock when journaling or sharded, else the newest member edge.
func (fl *fleetEngine) fleetLastTimeLocked() Timestamp {
	lt := Timestamp(fl.lastTime.Load())
	if fl.log == nil && fl.pool == nil {
		for _, m := range fl.members {
			if m == nil {
				continue
			}
			if mt := m.stream.LastTime(); mt > lt {
				lt = mt
			}
		}
	}
	if lt <= minTimestamp {
		return 0
	}
	return lt
}

// withMemberLocked runs fn with slot's member evaluation state stable:
// under the member's shard lock in sharded mode (the caller already
// holds the roster read lock, which pins the roster itself).
func (fl *fleetEngine) withMemberLocked(slot int, fn func()) {
	if fl.pool != nil {
		if s, ok := fl.pool.ShardOf(slot); ok {
			fl.shardMu[s].Lock()
			defer fl.shardMu[s].Unlock()
		}
	}
	fn()
}

// stats aggregates member snapshots; memberStats selects the cheap or
// walking per-member sampler, and withQueries controls whether the
// per-member map is materialized (scalar gauges don't need it). On a
// sharded fleet, members are sampled one shard at a time — sampling
// shard s waits only for shard s's in-flight evaluation, so ingest on
// the other shards continues.
func (fl *fleetEngine) stats(memberStats func(*single) Stats, withQueries bool) Stats {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	st := Stats{
		Fed:                   fl.fedN.Load(),
		Replayed:              fl.replayed,
		RoutedFraction:        fl.routedFraction(),
		LastTime:              fl.fleetLastTimeLocked(),
		Adaptive:              fl.anyAdaptive,
		Durable:               fl.log != nil,
		Fleet:                 true,
		Subscriptions:         fl.disp.Subscribers(),
		SubscriptionDelivered: fl.disp.Delivered(),
		SubscriptionDropped:   fl.disp.Dropped(),
	}
	if withQueries {
		st.Queries = make(map[string]Stats, fl.live)
	}
	if fl.log != nil {
		st.WALSeq = fl.walSeq.Load()
		st.WALSyncs = fl.log.Syncs()
	}
	if fl.obs != nil {
		st.Stages = fl.obs.stages()
		st.WatermarkLagNs = watermarkLag(st.LastTime, fl.obs.eventUnitNs)
		det := fl.obs.pipe.Detection.Snapshot()
		st.Detection = &det
	}
	add := func(slot int, m *single) {
		ms := memberStats(m)
		st.Matches += ms.Matches
		st.Discarded += ms.Discarded
		st.InWindow += ms.InWindow
		st.PartialMatches += ms.PartialMatches
		st.SpaceBytes += ms.SpaceBytes
		st.JoinScanned += ms.JoinScanned
		st.JoinCandidates += ms.JoinCandidates
		st.ExpiryBatches += ms.ExpiryBatches
		st.ExpiryEvicted += ms.ExpiryEvicted
		st.Reoptimizations += ms.Reoptimizations
		if withQueries {
			// Per-query delivery attribution comes from the shared
			// dispatcher — members publish into the fleet's results plane.
			ms.SubscriptionDelivered, ms.SubscriptionDropped = fl.disp.QueryCounts(fl.names[slot])
			st.Queries[fl.names[slot]] = ms
			if g := fl.groups[slot]; g != "" {
				if st.Groups == nil {
					st.Groups = make(map[string]Stats)
				}
				gs := st.Groups[g]
				gs.Matches += ms.Matches
				gs.Discarded += ms.Discarded
				gs.InWindow += ms.InWindow
				gs.PartialMatches += ms.PartialMatches
				gs.SpaceBytes += ms.SpaceBytes
				gs.JoinScanned += ms.JoinScanned
				gs.JoinCandidates += ms.JoinCandidates
				gs.ExpiryBatches += ms.ExpiryBatches
				gs.ExpiryEvicted += ms.ExpiryEvicted
				gs.Reoptimizations += ms.Reoptimizations
				gs.SubscriptionDelivered += ms.SubscriptionDelivered
				gs.SubscriptionDropped += ms.SubscriptionDropped
				st.Groups[g] = gs
			}
		}
	}
	walk := func() {
		if fl.pool == nil {
			for i, m := range fl.members {
				if m == nil {
					continue
				}
				add(i, m)
			}
			return
		}
		st.FleetWorkers = fl.pool.Workers()
		st.ShardMembers = fl.pool.Load()
		if fl.obs != nil {
			st.ShardBusyNs = fl.pool.Busy()
		}
		for s := range fl.shardMu {
			fl.shardMu[s].Lock()
			for _, slot := range fl.pool.Handles(s) {
				if m := fl.members[slot]; m != nil {
					add(slot, m)
				}
			}
			fl.shardMu[s].Unlock()
		}
	}
	walk()
	if withQueries {
		// Every declared group appears in the snapshot, live members or
		// not: the shared detection histogram is cumulative, so a group
		// whose queries have all retired still reports its history.
		fl.groupMu.Lock()
		for g, h := range fl.groupDets {
			gs := st.Groups[g] // zero value for fully retired groups
			det := h.Snapshot()
			gs.Detection = &det
			if st.Groups == nil {
				st.Groups = make(map[string]Stats)
			}
			st.Groups[g] = gs
		}
		fl.groupMu.Unlock()
	}
	return st
}

// Stats implements Engine: the fleet aggregate plus one per-member
// snapshot per live query.
func (fl *fleetEngine) Stats() Stats {
	return fl.stats((*single).Stats, true)
}

// statsFast is the counter-only snapshot (no partial-match walks).
func (fl *fleetEngine) statsFast() Stats {
	return fl.stats((*single).statsFast, true)
}

// statsScalar is statsFast without materializing the Queries map — the
// sampler for fleet-level scalar gauges.
func (fl *fleetEngine) statsScalar() Stats {
	return fl.stats((*single).statsFast, false)
}

// queryStats returns the live named member's snapshot, or false if the
// query has been retired — the lookup-by-name indirection metric gauges
// need so they never pin a closed engine or report a retired query's
// counters under a recycled name. fast selects the counter-only
// snapshot.
func (fl *fleetEngine) queryStats(name string, fast bool) (Stats, bool) {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	i := fl.indexLocked(name)
	if i < 0 {
		return Stats{}, false
	}
	var st Stats
	fl.withMemberLocked(i, func() {
		if fast {
			st = fl.members[i].statsFast()
		} else {
			st = fl.members[i].Stats()
		}
	})
	return st, true
}

// CurrentMatches implements Engine: every live member's standing
// matches, in registration-slot order.
func (fl *fleetEngine) CurrentMatches(fn func(*Match) bool) {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	stop := false
	for slot, m := range fl.members {
		if m == nil || stop {
			continue
		}
		fl.withMemberLocked(slot, func() {
			m.CurrentMatches(func(mm *Match) bool {
				if !fn(mm) {
					stop = true
					return false
				}
				return true
			})
		})
	}
}

// matchCounts returns per-query match counts, keyed by query name.
func (fl *fleetEngine) matchCounts() map[string]int64 {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	out := make(map[string]int64, fl.live)
	for i, m := range fl.members {
		if m != nil {
			fl.withMemberLocked(i, func() { out[fl.names[i]] += m.matches() })
		}
	}
	return out
}

// spaceBytes sums the partial-match space of all members.
func (fl *fleetEngine) spaceBytes() int64 {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	var b int64
	for i, m := range fl.members {
		if m != nil {
			fl.withMemberLocked(i, func() { b += m.eng.SpaceBytes() })
		}
	}
	return b
}

// Compile-time interface checks.
var (
	_ Engine = (*single)(nil)
	_ Engine = (*fleetEngine)(nil)
	_ Fleet  = (*fleetEngine)(nil)
)
