package timingsubg

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/graph"
	"timingsubg/internal/router"
	"timingsubg/internal/wal"
)

// fleetEngine is the one multi-query engine implementation behind Open:
// several named member engines over one shared stream — the deployment
// shape of the paper's motivating scenarios, where all of, e.g.,
// Verizon's ten attack patterns are monitored at once. Routing,
// dynamics, durability and per-member adaptivity are orthogonal options
// of this one type; the deprecated MultiSearcher and
// PersistentMultiSearcher façades delegate here.
//
// Feed, FeedBatch, AddQuery, RemoveQuery, Checkpoint and Close mutate
// engine state and must be serialized by the caller; the read accessors
// (Stats counter fields, Names, HasQuery) may run concurrently with
// them — this is what lets a serving layer sample stats while ingest
// runs.
type fleetEngine struct {
	mu      sync.RWMutex
	members []*single // nil entries are retired slots, reusable by AddQuery
	names   []string  // "" for retired slots
	live    int       // number of non-nil members
	onMatch func(name string, m *Match)
	route   *router.Router

	fedN     atomic.Int64 // edges offered to the fleet
	routed   atomic.Int64 // engine feeds actually performed (routed mode)
	possible atomic.Int64 // Σ per-edge live fleet size (routed mode denominator)

	// anyAdaptive records whether any member composes the reoptimizer
	// (drives the Stats.Adaptive capability flag).
	anyAdaptive bool

	// Config-level defaults inherited by specs that leave them zero.
	defaults Config

	// Durability state (shared WAL, per-query checkpoints).
	dur       *Durability
	log       *wal.Log
	lastTime  Timestamp
	replayed  int64
	sinceCkpt int

	closed bool
}

// memberOptions merges the fleet defaults under a spec's own Options.
func (fl *fleetEngine) memberOptions(spec QuerySpec) Options {
	o := spec.Options
	o.OnMatch = nil // fleet members report through the fleet callback
	if o.Window == 0 && o.CountWindow == 0 {
		o.Window, o.CountWindow = fl.defaults.Window, fl.defaults.CountWindow
	}
	if o.Storage == MSTree {
		o.Storage = fl.defaults.Storage
	}
	if o.Workers == 0 {
		o.Workers = fl.defaults.Workers
	}
	if o.LockScheme == FineGrained {
		o.LockScheme = fl.defaults.LockScheme
	}
	return o
}

// memberAdaptivity resolves a spec's adaptivity: its own setting, else
// the fleet-wide default.
func (fl *fleetEngine) memberAdaptivity(spec QuerySpec) *Adaptivity {
	if spec.Adaptive != nil {
		return spec.Adaptive
	}
	return fl.defaults.Adaptive
}

// memberCallback binds the fleet callback to one query name.
func (fl *fleetEngine) memberCallback(name string) func(*Match) {
	if fl.onMatch == nil {
		return nil
	}
	cb := fl.onMatch
	return func(m *Match) { cb(name, m) }
}

// validateFleetSpec checks the per-query constraints of fleet
// membership under the fleet's own options.
func (fl *fleetEngine) validateFleetSpec(spec QuerySpec) error {
	o := fl.memberOptions(spec)
	if spec.Name == "" {
		return fmt.Errorf("timingsubg: query name must be non-empty: %w", ErrBadOptions)
	}
	if fl.route != nil && o.CountWindow > 0 {
		return fmt.Errorf("timingsubg: query %q: routing requires time-based windows (count windows measure fed edges): %w",
			spec.Name, ErrBadOptions)
	}
	if fl.dur != nil {
		switch {
		case spec.Name == "." || spec.Name == ".." || strings.ContainsAny(spec.Name, "/\\"):
			// Names become directory components under Dir/ck/; "." and ".."
			// would alias (and on removal, destroy) other state.
			return fmt.Errorf("timingsubg: query name %q must be non-empty and path-safe: %w", spec.Name, ErrBadOptions)
		case o.Workers > 1:
			return fmt.Errorf("timingsubg: query %q: persistent mode requires Workers <= 1: %w", spec.Name, ErrBadOptions)
		case o.Window <= 0 || o.CountWindow > 0:
			return fmt.Errorf("timingsubg: query %q: persistent mode supports time-based windows only: %w", spec.Name, ErrBadOptions)
		}
	}
	return nil
}

// openFleet builds a fleet engine from cfg; see Open.
func openFleet(cfg Config) (*fleetEngine, error) {
	if len(cfg.Queries) == 0 && !cfg.Dynamic {
		return nil, fmt.Errorf("timingsubg: no queries: %w", ErrBadOptions)
	}
	fl := &fleetEngine{
		onMatch:  cfg.OnMatch,
		defaults: cfg,
		lastTime: minTimestamp,
	}
	if cfg.Routed {
		fl.route = router.New()
	}
	if cfg.Durable != nil {
		if cfg.Routed {
			// Recovery replay fans every logged record to every member
			// (and a routed member's per-engine edge IDs would drift
			// from the WAL sequence), so a routed fleet cannot recover
			// deterministically. The durable fleet broadcasts.
			return nil, errors.Join(ErrBadOptions, errors.New("durable fleets broadcast: Routed does not compose with Durable"))
		}
		dur := *cfg.Durable
		if dur.Dir == "" {
			return nil, errors.Join(ErrBadOptions, errors.New("persistent mode requires Dir"))
		}
		if dur.CheckpointEvery <= 0 {
			dur.CheckpointEvery = 4096
		}
		fl.dur = &dur
		if err := fl.openDurable(cfg.Queries); err != nil {
			return nil, err
		}
		return fl, nil
	}
	seen := map[string]bool{}
	for _, spec := range cfg.Queries {
		if seen[spec.Name] {
			return nil, fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
		}
		seen[spec.Name] = true
		if err := fl.addMember(spec); err != nil {
			return nil, err
		}
	}
	return fl, nil
}

// addMember builds and registers one member engine (in-memory join; the
// durable join point is pinned by AddQuery's initial checkpoint).
func (fl *fleetEngine) addMember(spec QuerySpec) error {
	if err := fl.validateFleetSpec(spec); err != nil {
		return err
	}
	en, err := newSingle(spec.Query, fl.memberOptions(spec), fl.memberAdaptivity(spec), fl.memberCallback(spec.Name))
	if err != nil {
		return fmt.Errorf("timingsubg: query %q: %w", spec.Name, err)
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.installLocked(spec, en)
	return nil
}

// installLocked places en in a free slot (or a new one).
func (fl *fleetEngine) installLocked(spec QuerySpec, en *single) int {
	slot := -1
	for i, m := range fl.members {
		if m == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(fl.members)
		fl.members = append(fl.members, nil)
		fl.names = append(fl.names, "")
	}
	fl.members[slot] = en
	fl.names[slot] = spec.Name
	fl.live++
	if en.adapt != nil {
		fl.anyAdaptive = true
	}
	if fl.route != nil {
		fl.route.Add(slot, spec.Query)
	}
	return slot
}

// ckDir returns the named query's checkpoint directory.
func (fl *fleetEngine) ckDir(name string) string {
	return filepath.Join(fl.dur.Dir, "ck", name)
}

// openDurable opens the shared WAL and recovers every spec'd query:
// each from its own checkpoint, then one replay pass over the shared
// log suffix. Queries with no checkpoint join from the oldest retained
// log record: history reclaimed by earlier checkpoints is gone, exactly
// as a newly deployed pattern cannot see traffic that predates its
// deployment.
func (fl *fleetEngine) openDurable(specs []QuerySpec) error {
	seen := map[string]bool{}
	for _, spec := range specs {
		if err := fl.validateFleetSpec(spec); err != nil {
			return err
		}
		if seen[spec.Name] {
			return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
		}
		seen[spec.Name] = true
	}
	log, err := wal.Open(fl.dur.Dir, wal.Options{SegmentBytes: fl.dur.SegmentBytes, SyncEvery: fl.dur.SyncEvery})
	if err != nil {
		return err
	}
	fl.log = log
	fail := func(err error) error {
		log.Close()
		return err
	}
	logStart, err := wal.FirstSeq(fl.dur.Dir)
	if err != nil {
		return fail(err)
	}

	// Per-query recovery state: each member's replay cursor.
	froms := make([]int64, len(specs))
	var maxNext int64
	for i, spec := range specs {
		o := fl.memberOptions(spec)
		ck, haveCk, err := checkpoint.Load(fl.ckDir(spec.Name))
		if err != nil {
			return fail(err)
		}
		if haveCk && ck.Window != o.Window {
			return fail(fmt.Errorf("timingsubg: query %q: checkpoint window %d != configured window %d: %w",
				spec.Name, ck.Window, o.Window, ErrBadOptions))
		}
		en, err := newSingle(spec.Query, o, fl.memberAdaptivity(spec), fl.memberCallback(spec.Name))
		if err != nil {
			return fail(fmt.Errorf("timingsubg: query %q: %w", spec.Name, err))
		}
		if haveCk {
			en.restoreCheckpoint(ck)
			froms[i] = ck.NextSeq
			if ck.NextSeq > maxNext {
				maxNext = ck.NextSeq
			}
		} else {
			// A new query joins at the retained log horizon.
			en.stream = graph.RestoreStream(o.Window, nil, graph.EdgeID(logStart))
			froms[i] = logStart
		}
		fl.installLocked(spec, en)
		// The stream clock resumes from the newest checkpointed edge;
		// WAL replay below advances it further if a suffix exists.
		if lt := en.stream.LastTime(); lt > fl.lastTime {
			fl.lastTime = lt
		}
	}
	if err := log.SkipTo(maxNext); err != nil {
		return fail(err)
	}

	// One replay pass over the whole retained log: each record goes to
	// every member whose cursor has reached it. The walk starts at the
	// retained horizon — not at the oldest query cursor — because the
	// stream clock (lastTime) must recover from every record, including
	// ones no current query needs; otherwise a post-restart ingest could
	// reuse a timestamp already in the log and break its monotonicity.
	end, err := wal.Replay(fl.dur.Dir, logStart, func(seq int64, e graph.Edge) error {
		clean := graph.Edge{
			From: e.From, To: e.To,
			FromLabel: e.FromLabel, ToLabel: e.ToLabel, EdgeLabel: e.EdgeLabel,
			Time: e.Time,
		}
		for i, m := range fl.members {
			if seq < froms[i] {
				continue
			}
			if err := m.replayRecord(seq, clean); err != nil {
				return fmt.Errorf("query %q: %w", fl.names[i], err)
			}
			m.replayed-- // the fleet counts replay once, below
		}
		if e.Time > fl.lastTime {
			fl.lastTime = e.Time
		}
		fl.replayed++
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("timingsubg: recovery replay: %w", err))
	}
	if end != log.Seq() {
		return fail(fmt.Errorf("timingsubg: recovery replay ended at %d, log at %d", end, log.Seq()))
	}
	return nil
}

// AddQuery implements Fleet. The new query's window starts empty: it
// sees only edges fed after it joins. In durable mode the join point is
// pinned with an initial checkpoint, and any stale checkpoint left
// under the name by a previously removed query is discarded.
func (fl *fleetEngine) AddQuery(spec QuerySpec) error {
	if fl.closed {
		return ErrClosed
	}
	if err := fl.validateFleetSpec(spec); err != nil {
		return err
	}
	if fl.dur == nil {
		fl.mu.Lock()
		dup := fl.indexLocked(spec.Name) >= 0
		fl.mu.Unlock()
		if dup {
			return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
		}
		return fl.addMember(spec)
	}

	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.indexLocked(spec.Name) >= 0 {
		return fmt.Errorf("timingsubg: duplicate query name %q: %w", spec.Name, ErrBadOptions)
	}
	// A checkpoint under this name can only be stale (from a removed or
	// never-reopened query); joining at the tail supersedes it.
	if err := os.RemoveAll(fl.ckDir(spec.Name)); err != nil {
		return fmt.Errorf("timingsubg: query %q: discard stale checkpoint: %w", spec.Name, err)
	}
	o := fl.memberOptions(spec)
	en, err := newSingle(spec.Query, o, fl.memberAdaptivity(spec), fl.memberCallback(spec.Name))
	if err != nil {
		return fmt.Errorf("timingsubg: query %q: %w", spec.Name, err)
	}
	en.stream = graph.RestoreStream(o.Window, nil, graph.EdgeID(fl.log.Seq()))
	// An initial checkpoint pins the join point durably: without it, a
	// crash before the first periodic checkpoint would make recovery
	// treat this query as brand new and replay it from the retained log
	// horizon — pre-join traffic it must never see.
	if err := checkpoint.Save(fl.ckDir(spec.Name), checkpoint.Checkpoint{
		NextSeq: fl.log.Seq(),
		Window:  o.Window,
	}); err != nil {
		return fmt.Errorf("timingsubg: query %q: initial checkpoint: %w", spec.Name, err)
	}
	fl.installLocked(spec, en)
	return nil
}

// RemoveQuery implements Fleet: the member is drained and its slot
// freed for reuse; in durable mode its checkpoints are deleted (the
// shared log is untouched — other queries may still need it).
func (fl *fleetEngine) RemoveQuery(name string) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	i := fl.indexLocked(name)
	if i < 0 {
		return fmt.Errorf("timingsubg: unknown query %q: %w", name, ErrBadOptions)
	}
	fl.members[i].Close()
	fl.members[i] = nil
	fl.names[i] = ""
	fl.live--
	if fl.route != nil {
		fl.route.Remove(i)
	}
	if fl.dur != nil {
		return os.RemoveAll(fl.ckDir(name))
	}
	return nil
}

// indexLocked returns the slot of the live query named name, or -1.
func (fl *fleetEngine) indexLocked(name string) int {
	for i, n := range fl.names {
		if n == name && fl.members[i] != nil {
			return i
		}
	}
	return -1
}

// HasQuery implements Fleet.
func (fl *fleetEngine) HasQuery(name string) bool {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	return fl.indexLocked(name) >= 0
}

// Names implements Fleet.
func (fl *fleetEngine) Names() []string {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	out := make([]string, 0, fl.live)
	for i, n := range fl.names {
		if fl.members[i] != nil {
			out = append(out, n)
		}
	}
	return out
}

// feedLock acquires the dispatch lock, exclusively: a feed mutates
// member window state (and an adaptive member may rebuild its engine
// mid-feed), while the fleet contract lets Stats/Names/HasQuery sample
// concurrently under the read lock — exclusion is what makes that
// contract race-free. Uncontended, Lock costs the same as RLock; the
// caller serializes feeds anyway.
func (fl *fleetEngine) feedLock()   { fl.mu.Lock() }
func (fl *fleetEngine) feedUnlock() { fl.mu.Unlock() }

// dispatchLocked fans one edge out to the members (or, in routed mode,
// to the interested members). Caller holds the feed lock.
func (fl *fleetEngine) dispatchLocked(e Edge) error {
	if fl.route != nil {
		// The saved-work denominator accrues the fleet size *as of this
		// edge* — queries come and go, so a cumulative counter is the
		// only way the ratio stays meaningful.
		fl.possible.Add(int64(fl.live))
		var ferr error
		fl.route.Route(e, func(i int) {
			if ferr != nil || fl.members[i] == nil {
				return
			}
			fl.routed.Add(1)
			if err := fl.members[i].memberFeed(e); err != nil {
				ferr = fmt.Errorf("timingsubg: query %q: %w", fl.names[i], err)
			}
		})
		return ferr
	}
	for i, m := range fl.members {
		if m == nil {
			continue
		}
		if err := m.memberFeed(e); err != nil {
			return fmt.Errorf("timingsubg: query %q: %w", fl.names[i], err)
		}
	}
	return nil
}

// memberFeed is the fleet fan-out feed step of one member: push plus
// adaptivity cadence, with no WAL and no closed-check (the fleet owns
// both).
func (en *single) memberFeed(e Edge) error {
	if _, err := en.push(e); err != nil {
		return err
	}
	en.tickAdaptive(1)
	return nil
}

// Feed implements Engine. In durable mode the returned ID is the WAL
// sequence number; otherwise it is the fleet-level arrival index. (In
// routed mode member engines assign their own per-engine IDs, so the
// same data edge may carry different IDs in matches of different
// queries.)
func (fl *fleetEngine) Feed(e Edge) (EdgeID, error) {
	if fl.closed {
		return 0, ErrClosed
	}
	// The whole mutation — WAL append, fan-out, clock — runs under the
	// feed lock, so concurrent Stats sampling (which reads the log
	// cursor and member windows under RLock) never races it.
	fl.feedLock()
	id := EdgeID(fl.fedN.Load())
	if fl.log != nil {
		// The monotonicity check runs before the WAL append, so an
		// out-of-order edge can never poison the log (replay requires a
		// monotone record sequence).
		if e.Time <= fl.lastTime {
			fl.feedUnlock()
			return 0, fmt.Errorf("timingsubg: %w: got %d after %d", graph.ErrOutOfOrder, e.Time, fl.lastTime)
		}
		seq, err := fl.log.Append(e)
		if err != nil {
			fl.feedUnlock()
			return 0, err
		}
		id = EdgeID(seq)
	}
	err := fl.dispatchLocked(e)
	if err == nil && fl.log != nil {
		fl.lastTime = e.Time
	}
	fl.feedUnlock()
	if err != nil {
		return 0, err
	}
	fl.fedN.Add(1)
	return id, fl.tick(1)
}

// FeedBatch implements Engine: one closed-check, one WAL write and at
// most one sync, one lock acquisition and one maintenance tick for the
// whole batch.
func (fl *fleetEngine) FeedBatch(batch []Edge) (int, error) {
	if fl.closed {
		return 0, ErrClosed
	}
	n := len(batch)
	var batchErr error
	fl.feedLock()
	if fl.log != nil {
		n, batchErr = monotonePrefix(batch, fl.lastTime)
		// On a WAL failure, dispatch exactly the records that were
		// durably appended — fleet state must never diverge from the
		// shared log (see single.FeedBatch).
		if _, appended, werr := fl.log.AppendBatch(batch[:n]); werr != nil {
			n, batchErr = appended, werr
		}
	}
	i := 0
	for ; i < n; i++ {
		if err := fl.dispatchLocked(batch[i]); err != nil {
			batchErr = fmt.Errorf("timingsubg: edge %d: %w", i, err)
			break
		}
		if fl.log != nil {
			fl.lastTime = batch[i].Time
		}
	}
	fl.feedUnlock()
	fl.fedN.Add(int64(i))
	if err := fl.tick(i); err != nil {
		return i, err
	}
	return i, batchErr
}

// tick advances the checkpoint cadence by n fed edges.
func (fl *fleetEngine) tick(n int) error {
	if fl.dur == nil || n == 0 {
		return nil
	}
	fl.sinceCkpt += n
	if fl.sinceCkpt >= fl.dur.CheckpointEvery {
		return fl.Checkpoint()
	}
	return nil
}

// Checkpoint forces per-query checkpoints now and reclaims WAL segments
// no query needs anymore. It is a no-op for in-memory fleets.
func (fl *fleetEngine) Checkpoint() error {
	if fl.dur == nil {
		return nil
	}
	// Exclusive: Sync/TruncateFront mutate the log that concurrent
	// Stats sampling reads (Seq), and the member walk must not observe
	// a half-applied feed.
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.sinceCkpt = 0
	if err := fl.log.Sync(); err != nil {
		return err
	}
	next := fl.log.Seq()
	for i, m := range fl.members {
		if m == nil {
			continue
		}
		st, ok := m.stream.(*graph.Stream)
		if !ok {
			return fmt.Errorf("timingsubg: query %q: not a time-window stream", fl.names[i])
		}
		ck := checkpoint.Checkpoint{
			NextSeq:   next,
			Window:    m.opts.Window,
			Matches:   m.matches(),
			Discarded: m.discarded(),
			Edges:     st.InWindow(),
		}
		dir := fl.ckDir(fl.names[i])
		if err := checkpoint.Save(dir, ck); err != nil {
			return err
		}
		if err := checkpoint.GC(dir, 2); err != nil {
			return err
		}
	}
	return fl.log.TruncateFront(next)
}

// Run implements Engine.
func (fl *fleetEngine) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return runLoop(ctx, edges, func(e Edge) error {
		_, err := fl.Feed(e)
		return err
	}, fl.Close)
}

// Close implements Engine: drain every member and, in durable mode,
// checkpoint and close the shared WAL. Idempotent.
func (fl *fleetEngine) Close() error {
	if fl.closed {
		return nil
	}
	fl.closed = true
	fl.mu.RLock()
	for _, m := range fl.members {
		if m != nil {
			m.Close()
		}
	}
	fl.mu.RUnlock()
	if fl.log == nil {
		return nil
	}
	if err := fl.Checkpoint(); err != nil {
		fl.log.Close()
		return err
	}
	return fl.log.Close()
}

// routedFraction reports, in routed mode, the ratio of engine feeds
// performed to engine feeds a naive fan-out would have performed
// (summing the live fleet size at each edge, so the ratio stays exact
// across AddQuery/RemoveQuery) — the dispatch work saved by routing.
// It returns 1 in unrouted mode.
func (fl *fleetEngine) routedFraction() float64 {
	possible := fl.possible.Load()
	if fl.route == nil || possible == 0 {
		return 1
	}
	return float64(fl.routed.Load()) / float64(possible)
}

// fleetLastTime returns the fleet stream clock: the durable clock when
// journaling, else the newest member edge.
func (fl *fleetEngine) fleetLastTimeLocked() Timestamp {
	lt := fl.lastTime
	if fl.log == nil {
		for _, m := range fl.members {
			if m == nil {
				continue
			}
			if mt := m.stream.LastTime(); mt > lt {
				lt = mt
			}
		}
	}
	if lt <= minTimestamp {
		return 0
	}
	return lt
}

// stats aggregates member snapshots; memberStats selects the cheap or
// walking per-member sampler, and withQueries controls whether the
// per-member map is materialized (scalar gauges don't need it).
func (fl *fleetEngine) stats(memberStats func(*single) Stats, withQueries bool) Stats {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	st := Stats{
		Fed:            fl.fedN.Load(),
		Replayed:       fl.replayed,
		RoutedFraction: fl.routedFraction(),
		LastTime:       fl.fleetLastTimeLocked(),
		Adaptive:       fl.anyAdaptive,
		Durable:        fl.log != nil,
		Fleet:          true,
	}
	if withQueries {
		st.Queries = make(map[string]Stats, fl.live)
	}
	if fl.log != nil {
		st.WALSeq = fl.log.Seq()
	}
	for i, m := range fl.members {
		if m == nil {
			continue
		}
		ms := memberStats(m)
		st.Matches += ms.Matches
		st.Discarded += ms.Discarded
		st.InWindow += ms.InWindow
		st.PartialMatches += ms.PartialMatches
		st.SpaceBytes += ms.SpaceBytes
		st.Reoptimizations += ms.Reoptimizations
		if withQueries {
			st.Queries[fl.names[i]] = ms
		}
	}
	return st
}

// Stats implements Engine: the fleet aggregate plus one per-member
// snapshot per live query.
func (fl *fleetEngine) Stats() Stats {
	return fl.stats((*single).Stats, true)
}

// statsFast is the counter-only snapshot (no partial-match walks).
func (fl *fleetEngine) statsFast() Stats {
	return fl.stats((*single).statsFast, true)
}

// statsScalar is statsFast without materializing the Queries map — the
// sampler for fleet-level scalar gauges.
func (fl *fleetEngine) statsScalar() Stats {
	return fl.stats((*single).statsFast, false)
}

// queryStats returns the live named member's snapshot, or false if the
// query has been retired — the lookup-by-name indirection metric gauges
// need so they never pin a closed engine or report a retired query's
// counters under a recycled name. fast selects the counter-only
// snapshot.
func (fl *fleetEngine) queryStats(name string, fast bool) (Stats, bool) {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	i := fl.indexLocked(name)
	if i < 0 {
		return Stats{}, false
	}
	if fast {
		return fl.members[i].statsFast(), true
	}
	return fl.members[i].Stats(), true
}

// CurrentMatches implements Engine: every live member's standing
// matches, in registration-slot order.
func (fl *fleetEngine) CurrentMatches(fn func(*Match) bool) {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	stop := false
	for _, m := range fl.members {
		if m == nil || stop {
			continue
		}
		m.CurrentMatches(func(mm *Match) bool {
			if !fn(mm) {
				stop = true
				return false
			}
			return true
		})
	}
}

// matchCounts returns per-query match counts, keyed by query name.
func (fl *fleetEngine) matchCounts() map[string]int64 {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	out := make(map[string]int64, fl.live)
	for i, m := range fl.members {
		if m != nil {
			out[fl.names[i]] += m.matches()
		}
	}
	return out
}

// spaceBytes sums the partial-match space of all members.
func (fl *fleetEngine) spaceBytes() int64 {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	var b int64
	for _, m := range fl.members {
		if m != nil {
			b += m.eng.SpaceBytes()
		}
	}
	return b
}

// Compile-time interface checks.
var (
	_ Engine = (*single)(nil)
	_ Engine = (*fleetEngine)(nil)
	_ Fleet  = (*fleetEngine)(nil)
)
