package timingsubg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"timingsubg/internal/checkpoint"
	"timingsubg/internal/core"
	"timingsubg/internal/dispatch"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
	"timingsubg/internal/wal"
)

// single is the one single-query engine implementation behind Open (and
// behind each fleet member): a core matching engine plus a window, with
// adaptivity and durability composed on as orthogonal options rather
// than distinct wrapper types. All five deprecated façades delegate
// here.
type single struct {
	q     *Query
	opts  Options     // normalized; OnMatch field unused (see onMatch)
	adapt *Adaptivity // nil = adaptivity off; normalized copy otherwise
	dur   *Durability // nil = no owned WAL (fleet members stay nil even in durable fleets)

	stream graph.Windower
	eng    *core.Engine
	par    *core.Parallel
	// disp is the results plane: every reported match is published to
	// it, and Subscribe attaches consumers at runtime. A standalone
	// engine owns its dispatcher (ownsDisp); a fleet member shares the
	// fleet's and publishes under its query name (pubName).
	disp     *dispatch.Dispatcher
	pubName  string
	ownsDisp bool
	// muted suppresses publication while derived state is rebuilt from
	// edges whose matches were already reported (checkpoint recovery,
	// adaptive rebuilds).
	muted bool

	// obs is the observability wiring (nil = metrics off). Fleet
	// members share the fleet's pipeline and arrival clock but keep a
	// private detection histogram — the per-query attribution.
	obs *obs
	// lastWALNs is the most recent Feed's WAL-append duration, for the
	// slow-op breakdown. Plain field: the feed path is single-caller by
	// the Engine contract, and it is only read within the same call.
	lastWALNs int64

	// Adaptivity state.
	picked     []*query.TCSubquery
	sinceCheck int
	rebuilds   atomic.Int64

	// Durability state.
	log       *wal.Log
	sinceCkpt int
	replayed  int64

	// Counter baselines translate engine counters — which restart from
	// zero on recovery and on adaptive rebuilds — into durable totals:
	// total = base + engine - engine0. They are atomics so a fleet
	// stats sampler on one shard never races an adaptive rebuild of a
	// member on another (the sharded fleet samples counters without a
	// global stop-the-world lock).
	baseMatches   atomic.Int64
	baseDiscarded atomic.Int64
	engMatches0   atomic.Int64
	engDiscarded0 atomic.Int64

	// Join-probe counter baselines: unlike matches, the joins an
	// adaptive rebuild re-performs while re-feeding the window are real
	// work, so totals are base + engine with no engine0 subtraction.
	baseJoinScanned    atomic.Int64
	baseJoinCandidates atomic.Int64

	// Expiry-plane baselines, accumulated like the join-probe ones
	// (rebuild re-feeds never slide the window, so the fresh engine
	// restarts both at zero).
	baseExpiryBatches atomic.Int64
	baseExpiryEvicted atomic.Int64

	fed    atomic.Int64
	closed bool
}

// validateSingle checks one engine's option combination.
func validateSingle(q *Query, o Options, adapt *Adaptivity, dur *Durability) error {
	switch {
	case q == nil:
		return errors.Join(ErrBadOptions, errors.New("query must be non-nil"))
	case o.Window > 0 && o.CountWindow > 0:
		return errors.Join(ErrBadOptions, errors.New("set only one of Window and CountWindow"))
	case o.Window <= 0 && o.CountWindow <= 0:
		return errors.Join(ErrBadOptions, errors.New("one of Window and CountWindow must be positive"))
	case o.Workers > 1 && o.Storage == Independent:
		return errors.Join(ErrBadOptions, errors.New("concurrent execution requires the MSTree backend"))
	case o.Workers > 1 && adapt != nil:
		return errors.Join(ErrBadOptions, errors.New("adaptive mode requires Workers <= 1"))
	}
	if dur != nil {
		switch {
		case o.Workers > 1:
			return errors.Join(ErrBadOptions, errors.New("persistent mode requires Workers <= 1"))
		case dur.Dir == "":
			return errors.Join(ErrBadOptions, errors.New("persistent mode requires Dir"))
		case o.Window <= 0 || o.CountWindow > 0:
			return errors.Join(ErrBadOptions, errors.New("persistent mode supports time-based windows only"))
		}
	}
	return nil
}

// normAdaptivity returns a defaulted copy, or nil when a is nil.
func normAdaptivity(a *Adaptivity) *Adaptivity {
	if a == nil {
		return nil
	}
	n := *a
	if n.ReoptimizeEvery <= 0 {
		n.ReoptimizeEvery = 1024
	}
	if n.MinGain <= 0 {
		n.MinGain = 2.0
	}
	return &n
}

// newSingle builds a non-durable engine (or the in-memory core of a
// fleet member; durable fleets restore the member's stream afterwards,
// and every member is rebased onto the fleet's dispatcher by
// newMember). sink, when non-nil, is attached as a synchronous
// subscription — the Config.OnMatch/OnDelivery and façade-callback
// shim.
func newSingle(q *Query, o Options, adapt *Adaptivity, sink func(Delivery)) (*single, error) {
	if err := validateSingle(q, o, adapt, nil); err != nil {
		return nil, err
	}
	en := &single{q: q, opts: o, adapt: normAdaptivity(adapt), disp: dispatch.New(), ownsDisp: true}
	if o.pipe != nil {
		en.obs = newObs(o.pipe, o.eventUnitNs, o.slowOpNs, o.onSlowOp)
	}
	if sink != nil {
		en.disp.SubscribeFunc(sink)
	}
	dec := o.Decomposition
	if dec == nil {
		dec = query.Decompose(q)
	}
	if en.adapt != nil {
		en.picked = append([]*query.TCSubquery(nil), dec.Subqueries...)
	}
	en.eng = en.newCoreEngine(dec)
	if o.CountWindow > 0 {
		en.stream = graph.NewCountStream(o.CountWindow)
	} else {
		en.stream = graph.NewStream(o.Window)
	}
	if o.Workers > 1 {
		en.par = core.NewParallel(en.eng, o.LockScheme, o.Workers)
	}
	return en, nil
}

// openDurableSingle opens (or creates) a durable engine in dur.Dir,
// recovering the previous run's state when present: the newest
// checkpoint's window is rebuilt silently, then the WAL suffix is
// replayed live.
func openDurableSingle(q *Query, o Options, adapt *Adaptivity, dur Durability, sink func(Delivery)) (*single, error) {
	if err := validateSingle(q, o, adapt, &dur); err != nil {
		return nil, err
	}
	if dur.CheckpointEvery <= 0 {
		dur.CheckpointEvery = 4096
	}
	log, err := wal.Open(dur.Dir, wal.Options{
		SegmentBytes:    dur.SegmentBytes,
		SyncEvery:       dur.SyncEvery,
		SyncInterval:    dur.SyncInterval,
		OpenFile:        dur.openFile,
		SyncHist:        pipeSync(o.pipe),
		GroupCommitHist: pipeGroupCommit(o.pipe),
	})
	if err != nil {
		return nil, err
	}
	ck, haveCk, err := checkpoint.Load(dur.Dir)
	if err != nil {
		log.Close()
		return nil, err
	}
	if haveCk && ck.Window != o.Window {
		log.Close()
		return nil, fmt.Errorf("timingsubg: checkpoint window %d != configured window %d: %w",
			ck.Window, o.Window, ErrBadOptions)
	}
	en, err := newSingle(q, o, adapt, sink)
	if err != nil {
		log.Close()
		return nil, err
	}
	en.dur, en.log = &dur, log
	if haveCk {
		en.restoreCheckpoint(ck)
		// The loaded checkpoint gates truncation from the start: the log
		// may reclaim segments below its LSN and nothing above.
		log.SetCheckpointLSN(ck.LSN())
		// If fsync was off and the WAL tail was lost in the crash, the
		// checkpoint may be ahead of the log; fast-forward the log so
		// future sequence numbers continue at the checkpoint cursor.
		if err := log.SkipTo(ck.NextSeq); err != nil {
			log.Close()
			return nil, err
		}
	}
	from := int64(0)
	if haveCk {
		from = ck.NextSeq
	}
	end, err := wal.Replay(dur.Dir, from, en.replayRecord)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("timingsubg: recovery replay: %w", err)
	}
	if end != log.Seq() {
		log.Close()
		return nil, fmt.Errorf("timingsubg: recovery replay ended at %d, log at %d", end, log.Seq())
	}
	return en, nil
}

// restoreCheckpoint rebuilds derived engine state from a checkpointed
// window, silently: those matches were durably reported before the
// checkpoint.
func (en *single) restoreCheckpoint(ck checkpoint.Checkpoint) {
	en.stream = graph.RestoreStream(en.opts.Window, ck.Edges, graph.EdgeID(ck.NextSeq))
	// Seed the delivery sequence at the checkpointed match count: the
	// WAL-suffix replay then reassigns each re-reported match the same
	// sequence number it carried before the crash, which is what makes
	// SubscribeOptions.AfterSeq a restart-stable dedup cursor.
	en.disp.SeedSeq(en.pubName, ck.Matches)
	en.baseMatches.Store(ck.Matches)
	en.baseDiscarded.Store(ck.Discarded)
	en.muted = true
	for _, e := range ck.Edges {
		en.eng.Process(e, nil)
	}
	en.muted = false
	en.engMatches0.Store(en.eng.Stats().Matches.Load())
	en.engDiscarded0.Store(en.eng.Stats().Discarded.Load())
}

// replayRecord feeds one WAL-suffix record during recovery, live
// (reporting matches), and verifies the stream reassigns the sequence
// number the record had before the crash.
func (en *single) replayRecord(seq int64, e graph.Edge) error {
	id, err := en.push(graph.Edge{
		From: e.From, To: e.To,
		FromLabel: e.FromLabel, ToLabel: e.ToLabel, EdgeLabel: e.EdgeLabel,
		Time: e.Time,
	})
	if err != nil {
		return err
	}
	if int64(id) != seq {
		return fmt.Errorf("timingsubg: recovery drift: edge seq %d got ID %d", seq, id)
	}
	en.tickAdaptive(1)
	en.replayed++
	return nil
}

// newCoreEngine builds the core matching engine under dec, wiring the
// mute-aware publication hook. Every match is published to the
// dispatcher (core serializes reporting per engine, so per-query
// publish order is deterministic); muting covers rebuilds from edges
// whose matches were already reported, so sequence numbers advance
// exactly once per distinct match.
func (en *single) newCoreEngine(dec *Decomposition) *core.Engine {
	cfg := core.Config{
		Storage:       en.opts.Storage,
		Decomposition: dec,
		ScanProbes:    en.opts.scanProbes,
		OnMatch: func(m *Match) {
			if en.muted {
				return
			}
			if o := en.obs; o != nil {
				o.onMatch(en.pubName, m, func() { en.disp.Publish(en.pubName, m) })
				return
			}
			en.disp.Publish(en.pubName, m)
		},
	}
	if en.obs != nil {
		cfg.JoinHist = &en.obs.pipe.Join
		cfg.ExpiryHist = &en.obs.pipe.Expiry
	}
	return core.New(en.q, cfg)
}

// Subscribe implements Engine.
func (en *single) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	return subscribeOn(en.disp, opts)
}

// subscriptionCounters is the lock-light sampler behind
// SubscriptionCounters. Fleet members report zero — they share the
// fleet's results plane.
func (en *single) subscriptionCounters() (int, int64, int64) {
	if !en.ownsDisp {
		return 0, 0, 0
	}
	return en.disp.Subscribers(), en.disp.Delivered(), en.disp.Dropped()
}

// push advances the window and processes one edge transaction. It is
// the innermost feed step, shared by Feed, FeedBatch, fleet fan-out and
// recovery replay.
func (en *single) push(e Edge) (EdgeID, error) {
	stored, expired, err := en.stream.Push(e)
	if err != nil {
		return 0, err
	}
	switch {
	case en.par != nil && en.opts.perEdgeExpiry:
		en.par.Process(stored, expired)
	case en.par != nil:
		en.par.ProcessBatch(stored, expired)
	case en.opts.perEdgeExpiry:
		en.eng.Process(stored, expired)
	default:
		en.eng.ProcessBatch(stored, expired)
	}
	en.fed.Add(1)
	return stored.ID, nil
}

// feedOne logs (in durable mode) and pushes one edge, without cadence
// work. The monotonicity check runs before the WAL append so an
// out-of-order edge can never poison the log.
func (en *single) feedOne(e Edge) (EdgeID, error) {
	en.lastWALNs = 0
	if en.log != nil {
		if e.Time <= en.stream.LastTime() {
			return 0, fmt.Errorf("timingsubg: %w: got %d after %d", graph.ErrOutOfOrder, e.Time, en.stream.LastTime())
		}
		if en.obs != nil {
			t := time.Now()
			_, err := en.log.Append(e)
			d := time.Since(t)
			en.lastWALNs = int64(d)
			en.obs.pipe.WALAppend.Observe(d)
			if err != nil {
				return 0, err
			}
		} else if _, err := en.log.Append(e); err != nil {
			return 0, err
		}
	}
	return en.push(e)
}

// tickAdaptive advances the reoptimization cadence by n fed edges.
func (en *single) tickAdaptive(n int) {
	if en.adapt == nil {
		return
	}
	en.sinceCheck += n
	if en.sinceCheck >= en.adapt.ReoptimizeEvery {
		en.sinceCheck = 0
		en.maybeReoptimize()
	}
}

// tick advances both maintenance cadences after n successfully fed
// edges, returning any checkpoint error.
func (en *single) tick(n int) error {
	en.tickAdaptive(n)
	if en.dur == nil {
		return nil
	}
	en.sinceCkpt += n
	if en.sinceCkpt >= en.dur.CheckpointEvery {
		return en.checkpointNow()
	}
	return nil
}

// Feed implements Engine.
func (en *single) Feed(e Edge) (EdgeID, error) {
	if en.closed {
		return 0, ErrClosed
	}
	o := en.obs
	if o == nil {
		id, err := en.feedOne(e)
		if err != nil {
			return 0, err
		}
		return id, en.tick(1)
	}
	start := time.Now()
	o.arrival.Store(start.UnixNano())
	id, err := en.feedOne(e)
	if err != nil {
		return 0, err
	}
	total := time.Since(start)
	o.pipe.Ingest.Observe(total)
	o.slowFeed("feed", 1, total, time.Duration(en.lastWALNs))
	return id, en.tick(1)
}

// FeedBatch implements Engine. The WAL write and sync, the adaptivity
// check and the checkpoint cadence are amortized across the batch.
func (en *single) FeedBatch(batch []Edge) (int, error) {
	if en.closed {
		return 0, ErrClosed
	}
	o := en.obs
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	n := len(batch)
	var batchErr error
	var walD time.Duration
	if en.log != nil {
		n, batchErr = monotonePrefix(batch, en.stream.LastTime())
		// On a WAL failure, feed exactly the records that were durably
		// appended — engine state must never diverge from the log (a
		// logged-but-unfed edge would leave LastTime behind the log
		// tail and let a later feed append non-monotonically).
		if o != nil {
			t := time.Now()
			_, appended, werr := en.log.AppendBatch(batch[:n])
			walD = time.Since(t)
			o.pipe.WALAppend.Observe(walD)
			if werr != nil {
				n, batchErr = appended, werr
			}
		} else if _, appended, werr := en.log.AppendBatch(batch[:n]); werr != nil {
			n, batchErr = appended, werr
		}
	}
	// One clock read per edge: each iteration's end time is the next
	// one's arrival stamp, so per-edge ingest latency and the detection
	// arrival clock cost a single time.Now together.
	prev := start
	for i := 0; i < n; i++ {
		if o != nil {
			o.arrival.Store(prev.UnixNano())
		}
		if _, err := en.push(batch[i]); err != nil {
			en.tick(i)
			return i, fmt.Errorf("timingsubg: edge %d: %w", i, err)
		}
		if o != nil {
			now := time.Now()
			o.pipe.Ingest.Observe(now.Sub(prev))
			prev = now
		}
	}
	if o != nil {
		o.slowFeed("feed_batch", n, time.Since(start), walD)
	}
	if err := en.tick(n); err != nil {
		return n, err
	}
	return n, batchErr
}

// monotonePrefix returns the length of the longest strictly-increasing
// timestamp prefix of batch after last, and an error describing the
// first violation (nil when the whole batch is monotone).
func monotonePrefix(batch []Edge, last Timestamp) (int, error) {
	for i, e := range batch {
		if e.Time <= last {
			return i, fmt.Errorf("timingsubg: edge %d: %w: got %d after %d", i, graph.ErrOutOfOrder, e.Time, last)
		}
		last = e.Time
	}
	return len(batch), nil
}

// Run implements Engine.
func (en *single) Run(ctx context.Context, edges <-chan Edge) (int64, error) {
	return runLoop(ctx, edges, func(e Edge) error {
		_, err := en.Feed(e)
		return err
	}, en.Close)
}

// Close implements Engine: drain in-flight work, end the engine's own
// subscriptions, checkpoint (durable mode) and close the WAL.
// Idempotent. A fleet member shares the fleet's dispatcher and leaves
// it alone — the fleet owns its results plane.
func (en *single) Close() error {
	if en.closed {
		return nil
	}
	en.closed = true
	if en.par != nil {
		en.par.Wait()
	}
	if en.ownsDisp {
		en.disp.Close()
	}
	if en.log == nil {
		return nil
	}
	if err := en.checkpointNow(); err != nil {
		en.log.Close()
		return err
	}
	return en.log.Close()
}

// checkpointNow forces a checkpoint: the WAL is synced, the in-window
// state and counters are written atomically, old checkpoints and WAL
// segments are reclaimed.
func (en *single) checkpointNow() error {
	en.sinceCkpt = 0
	if err := en.log.Sync(); err != nil {
		return err
	}
	st, ok := en.stream.(*graph.Stream)
	if !ok {
		return errors.New("timingsubg: checkpoint requires a time-window stream")
	}
	ck := checkpoint.Checkpoint{
		NextSeq:   en.log.Seq(),
		Window:    en.opts.Window,
		Matches:   en.matches(),
		Discarded: en.discarded(),
		Edges:     st.InWindow(),
	}
	if err := checkpoint.Save(en.dur.Dir, ck); err != nil {
		return err
	}
	if err := checkpoint.GC(en.dur.Dir, 2); err != nil {
		return err
	}
	// The save succeeded, so the checkpoint's LSN is the new truncation
	// gate; reclaiming up to it bounds the on-disk log to the records
	// the checkpoint does not cover plus the open segment.
	en.log.SetCheckpointLSN(ck.LSN())
	return en.log.TruncateFront(ck.NextSeq)
}

// maybeReoptimize re-scores the join order under observed cardinalities
// and rebuilds when the estimated gain clears MinGain.
func (en *single) maybeReoptimize() {
	if len(en.picked) <= 2 {
		// With k ≤ 2 there is only one join shape; order can only swap
		// the seed pair, which EstimateOrderCost scores identically.
		return
	}
	obs := en.eng.SubCardinalities()
	byMask := make(map[uint64]float64, len(obs))
	for i, sub := range en.eng.Decomposition().Subqueries {
		byMask[sub.Mask] = float64(obs[i]) + 1 // +1 smoothing
	}
	card := func(s *query.TCSubquery) float64 { return byMask[s.Mask] }

	current := query.EstimateOrderCost(en.eng.Decomposition(), card)
	best := query.OrderByCost(en.q, en.picked, card)
	bestCost := query.EstimateOrderCost(best, card)
	if bestCost <= 0 || current/bestCost < en.adapt.MinGain {
		return
	}
	if sameOrder(best, en.eng.Decomposition()) {
		return
	}
	en.rebuild(best)
}

func sameOrder(x, y *Decomposition) bool {
	if len(x.Subqueries) != len(y.Subqueries) {
		return false
	}
	for i := range x.Subqueries {
		if x.Subqueries[i].Mask != y.Subqueries[i].Mask {
			return false
		}
	}
	return true
}

// rebuild replaces the engine with one using dec, re-feeding the
// in-window edges with match reporting muted. Counter baselines absorb
// the restart so totals keep accumulating.
func (en *single) rebuild(dec *Decomposition) {
	en.baseMatches.Store(en.matches())
	en.baseDiscarded.Store(en.discarded())
	en.baseJoinScanned.Add(en.eng.Stats().JoinScanned.Load())
	en.baseJoinCandidates.Add(en.eng.Stats().JoinCandidates.Load())
	en.baseExpiryBatches.Add(en.eng.Stats().ExpiryBatches.Load())
	en.baseExpiryEvicted.Add(en.eng.Stats().ExpiryEvicted.Load())
	en.eng = en.newCoreEngine(dec)
	en.muted = true
	for _, e := range en.stream.InWindow() {
		en.eng.Process(e, nil)
	}
	en.muted = false
	en.engMatches0.Store(en.eng.Stats().Matches.Load())
	en.engDiscarded0.Store(en.eng.Stats().Discarded.Load())
	en.rebuilds.Add(1)
}

// matches and discarded fold the counter baselines into durable totals.
func (en *single) matches() int64 {
	return en.baseMatches.Load() + en.eng.Stats().Matches.Load() - en.engMatches0.Load()
}

func (en *single) discarded() int64 {
	return en.baseDiscarded.Load() + en.eng.Stats().Discarded.Load() - en.engDiscarded0.Load()
}

// minTimestamp mirrors the graph stream "nothing seen yet" sentinel.
const minTimestamp Timestamp = -1 << 62

// lastTime normalizes the stream's "nothing seen yet" sentinel to 0.
func (en *single) lastTime() Timestamp {
	if lt := en.stream.LastTime(); lt > minTimestamp {
		return lt
	}
	return 0
}

// statsFast is the snapshot without the walking fields
// (PartialMatches, SpaceBytes stay zero) — counter-only reads, cheap
// enough for per-gauge metric sampling.
func (en *single) statsFast() Stats {
	st := Stats{
		Matches:         en.matches(),
		Discarded:       en.discarded(),
		Fed:             en.fed.Load(),
		InWindow:        en.stream.Len(),
		LastTime:        en.lastTime(),
		JoinScanned:     en.baseJoinScanned.Load() + en.eng.Stats().JoinScanned.Load(),
		JoinCandidates:  en.baseJoinCandidates.Load() + en.eng.Stats().JoinCandidates.Load(),
		ExpiryBatches:   en.baseExpiryBatches.Load() + en.eng.Stats().ExpiryBatches.Load(),
		ExpiryEvicted:   en.baseExpiryEvicted.Load() + en.eng.Stats().ExpiryEvicted.Load(),
		K:               en.eng.K(),
		Reoptimizations: int(en.rebuilds.Load()),
		Replayed:        en.replayed,
		RoutedFraction:  1,
		Adaptive:        en.adapt != nil,
		Durable:         en.log != nil,
	}
	if en.log != nil {
		st.WALSeq = en.log.Seq()
		st.WALSyncs = en.log.Syncs()
	}
	if en.ownsDisp {
		st.Subscriptions = en.disp.Subscribers()
		st.SubscriptionDelivered = en.disp.Delivered()
		st.SubscriptionDropped = en.disp.Dropped()
	}
	if o := en.obs; o != nil {
		det := o.det.Snapshot()
		st.Detection = &det
		if en.ownsDisp {
			// Standalone engines carry the full stage view; fleet
			// members leave it to the fleet aggregate (they share one
			// pipeline).
			st.Stages = o.stages()
			st.WatermarkLagNs = watermarkLag(st.LastTime, o.eventUnitNs)
		}
	}
	return st
}

// Stats implements Engine.
func (en *single) Stats() Stats {
	st := en.statsFast()
	st.PartialMatches = en.eng.PartialMatchCount()
	st.SpaceBytes = en.eng.SpaceBytes()
	return st
}

// CurrentMatches implements Engine.
func (en *single) CurrentMatches(fn func(*Match) bool) { en.eng.CurrentMatches(fn) }

// currentMatchCount returns the number of standing matches.
func (en *single) currentMatchCount() int { return en.eng.CurrentMatchCount() }

// writeState dumps the engine's live expansion-list populations and
// counters for diagnostics.
func (en *single) writeState(w io.Writer) { en.eng.WriteState(w) }

// joinOrder returns the masks of the TC-subqueries in the current join
// order (adaptive diagnostics).
func (en *single) joinOrder() []uint64 {
	out := make([]uint64, 0, en.eng.K())
	for _, s := range en.eng.Decomposition().Subqueries {
		out = append(out, s.Mask)
	}
	return out
}
