package timingsubg_test

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"timingsubg"
)

// buildTwoHop builds the query a→b→c with (a→b) ≺ (b→c).
func buildTwoHop(t *testing.T) (*timingsubg.Query, *timingsubg.Labels, []timingsubg.Label) {
	t.Helper()
	labels := timingsubg.NewLabels()
	ls := []timingsubg.Label{labels.Intern("a"), labels.Intern("b"), labels.Intern("c")}
	b := timingsubg.NewQueryBuilder()
	va, vb, vc := b.AddVertex(ls[0]), b.AddVertex(ls[1]), b.AddVertex(ls[2])
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q, labels, ls
}

func TestSearcherBasics(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	var got []string
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{
		Window:  10,
		OnMatch: func(m *timingsubg.Match) { got = append(got, m.Key()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(f, to int64, fl, tl timingsubg.Label, tm int64) {
		t.Helper()
		if _, err := s.Feed(timingsubg.Edge{
			From: timingsubg.VertexID(f), To: timingsubg.VertexID(to),
			FromLabel: fl, ToLabel: tl, Time: timingsubg.Timestamp(tm),
		}); err != nil {
			t.Fatal(err)
		}
	}
	feed(1, 2, ls[0], ls[1], 1) // a→b
	feed(2, 3, ls[1], ls[2], 2) // b→c: completes
	feed(2, 4, ls[1], ls[2], 3) // b→c again: second match
	s.Close()
	if len(got) != 2 {
		t.Fatalf("want 2 matches, got %v", got)
	}
	if s.MatchCount() != 2 {
		t.Errorf("MatchCount: want 2, got %d", s.MatchCount())
	}
	if s.InWindow() != 3 {
		t.Errorf("InWindow: want 3, got %d", s.InWindow())
	}
	if s.K() != 1 {
		t.Errorf("two ordered edges are one TC-query; got k=%d", s.K())
	}
	if s.SpaceBytes() <= 0 || s.PartialMatches() <= 0 {
		t.Error("space accounting must be positive with live partials")
	}
}

func TestSearcherTimingOrderFilters(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	// b→c first, then a→b: structure matches, timing order does not.
	if _, err := s.Feed(timingsubg.Edge{From: 2, To: 3, FromLabel: ls[1], ToLabel: ls[2], Time: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s.MatchCount() != 0 {
		t.Error("reversed arrivals must not match under the timing order")
	}
	if s.Discarded() == 0 {
		t.Error("the b→c edge is discardable (no a→b precedes it)")
	}
}

func TestSearcherWindowExpiry(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	must := func(e timingsubg.Edge) {
		t.Helper()
		if _, err := s.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	must(timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	// Let it expire: window (2,5] no longer holds t=1.
	must(timingsubg.Edge{From: 9, To: 9, FromLabel: ls[2], ToLabel: ls[2], Time: 5})
	must(timingsubg.Edge{From: 2, To: 3, FromLabel: ls[1], ToLabel: ls[2], Time: 6})
	s.Close()
	if s.MatchCount() != 0 {
		t.Error("expired prefix must not contribute to matches")
	}
}

func TestSearcherOptionValidation(t *testing.T) {
	q, _, _ := buildTwoHop(t)
	if _, err := timingsubg.NewSearcher(q, timingsubg.Options{}); !errors.Is(err, timingsubg.ErrBadOptions) {
		t.Errorf("zero window must be rejected, got %v", err)
	}
	_, err := timingsubg.NewSearcher(q, timingsubg.Options{
		Window: 5, Workers: 4, Storage: timingsubg.Independent,
	})
	if !errors.Is(err, timingsubg.ErrBadOptions) {
		t.Errorf("concurrent independent storage must be rejected, got %v", err)
	}
}

func TestSearcherRejectsOutOfOrderFeeds(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	s, err := timingsubg.NewSearcher(q, timingsubg.Options{Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(timingsubg.Edge{From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 5}); err == nil {
		t.Error("non-increasing timestamps must be rejected")
	}
}

func TestSearcherConcurrentMatchesSerial(t *testing.T) {
	q, _, ls := buildTwoHop(t)
	mk := func(i int64) timingsubg.Edge {
		switch i % 3 {
		case 0:
			return timingsubg.Edge{From: timingsubg.VertexID(i % 7), To: timingsubg.VertexID(10 + i%5),
				FromLabel: ls[0], ToLabel: ls[1], Time: timingsubg.Timestamp(i + 1)}
		case 1:
			return timingsubg.Edge{From: timingsubg.VertexID(10 + i%5), To: timingsubg.VertexID(20 + i%6),
				FromLabel: ls[1], ToLabel: ls[2], Time: timingsubg.Timestamp(i + 1)}
		default:
			return timingsubg.Edge{From: timingsubg.VertexID(30 + i%4), To: timingsubg.VertexID(40 + i%4),
				FromLabel: ls[2], ToLabel: ls[0], Time: timingsubg.Timestamp(i + 1)}
		}
	}
	runWith := func(workers int, scheme timingsubg.LockScheme) []string {
		var mu sync.Mutex
		var keys []string
		s, err := timingsubg.NewSearcher(q, timingsubg.Options{
			Window:     30,
			Workers:    workers,
			LockScheme: scheme,
			OnMatch: func(m *timingsubg.Match) {
				mu.Lock()
				keys = append(keys, m.Key())
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 400; i++ {
			if _, err := s.Feed(mk(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		sort.Strings(keys)
		return keys
	}
	serial := runWith(1, timingsubg.FineGrained)
	if len(serial) == 0 {
		t.Fatal("workload should produce matches")
	}
	for _, scheme := range []timingsubg.LockScheme{timingsubg.FineGrained, timingsubg.AllLocks} {
		conc := runWith(3, scheme)
		if len(conc) != len(serial) {
			t.Fatalf("scheme %v: %d matches vs serial %d", scheme, len(conc), len(serial))
		}
		for i := range conc {
			if conc[i] != serial[i] {
				t.Fatalf("scheme %v: result sets differ", scheme)
			}
		}
	}
}
