package timingsubg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The results-plane conformance suite: Subscribe must work on every
// engine composition Open can build, and the union of N filtered
// subscriptions must equal OnMatch delivery exactly — same match
// multisets AND same per-query delivery order — because both are views
// of the same dispatcher publish stream.

// deliveryLog accumulates per-query ordered delivery records
// (match key + sequence number). It locks because sharded fleets
// publish different queries from concurrent shard workers.
type deliveryLog struct {
	mu   sync.Mutex
	keys map[string][]string
	seqs map[string][]int64
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{keys: make(map[string][]string), seqs: make(map[string][]int64)}
}

func (l *deliveryLog) add(query, key string, seq int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.keys[query] = append(l.keys[query], key)
	l.seqs[query] = append(l.seqs[query], seq)
}

func (l *deliveryLog) addDelivery(dv Delivery) {
	l.add(dv.Query, streamMatchKey(dv.Match), dv.Seq)
}

// drain consumes a subscription into the log until its channel closes.
func drain(wg *sync.WaitGroup, sub *Subscription, l *deliveryLog) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for dv := range sub.C() {
			l.addDelivery(dv)
		}
	}()
}

// requireSameOrderedDelivery asserts two logs agree per query: same
// ordered key sequences, same sequence numbers.
func requireSameOrderedDelivery(t *testing.T, label string, got, want *deliveryLog) {
	t.Helper()
	if len(got.keys) != len(want.keys) {
		t.Fatalf("%s: got %d queries with deliveries, want %d", label, len(got.keys), len(want.keys))
	}
	for q, wantKeys := range want.keys {
		gotKeys := got.keys[q]
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("%s: query %q delivered %d matches, want %d", label, q, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("%s: query %q delivery %d = %s, want %s (order diverges)", label, q, i, gotKeys[i], wantKeys[i])
			}
		}
		for i, seq := range got.seqs[q] {
			if want.seqs[q][i] != seq {
				t.Fatalf("%s: query %q delivery %d seq = %d, want %d", label, q, i, seq, want.seqs[q][i])
			}
		}
	}
}

// requireDenseSeqs asserts each query's sequence numbers are exactly
// 1..n in order — the delivery-numbering contract.
func requireDenseSeqs(t *testing.T, l *deliveryLog) {
	t.Helper()
	for q, seqs := range l.seqs {
		for i, seq := range seqs {
			if seq != int64(i+1) {
				t.Fatalf("query %q delivery %d has seq %d, want %d", q, i, seq, i+1)
			}
		}
	}
}

func TestSubscribeConformance(t *testing.T) {
	labels := NewLabels()
	chain := persistTestQuery(t, labels)
	star := starQuery(t)
	edges := persistTestStream(labels, 2000, 77)
	const window = 80

	specs := []QuerySpec{
		{Name: "chain", Query: chain},
		{Name: "star", Query: star},
	}
	cases := []struct {
		name  string
		cfg   Config
		batch int // 0 = per-edge Feed
	}{
		{name: "single", cfg: Config{Query: chain, Window: window}},
		{name: "single-batch", cfg: Config{Query: chain, Window: window}, batch: 97},
		{name: "single-workers-4", cfg: Config{Query: chain, Window: window, Workers: 4}},
		{name: "single-adaptive", cfg: Config{Query: chain, Window: window,
			Adaptive: &Adaptivity{ReoptimizeEvery: 128, MinGain: 1.05}}},
		{name: "single-durable", cfg: Config{Query: chain, Window: window,
			Durable: &Durability{CheckpointEvery: 300}}, batch: 113},
		{name: "single-countwindow", cfg: Config{Query: chain, CountWindow: 64}},
		{name: "fleet", cfg: Config{Queries: specs, Window: window}, batch: 89},
		{name: "fleet-workers-4", cfg: Config{Queries: specs, Window: window, FleetWorkers: 4}, batch: 89},
		{name: "fleet-routed", cfg: Config{Queries: specs, Window: window, Routed: true}},
		{name: "fleet-durable", cfg: Config{Queries: specs, Window: window,
			Durable: &Durability{CheckpointEvery: 300}}, batch: 101},
		{name: "fleet-durable-workers-4", cfg: Config{Queries: specs, Window: window,
			Durable: &Durability{CheckpointEvery: 300}, FleetWorkers: 4}, batch: 101},
		{name: "fleet-countwindow", cfg: Config{Queries: specs, CountWindow: 64, FleetWorkers: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			if cfg.Durable != nil {
				d := *cfg.Durable
				d.Dir = t.TempDir()
				cfg.Durable = &d
			}
			// The OnMatch shim is the reference: it observes every
			// publish synchronously.
			want := newDeliveryLog()
			cfg.OnDelivery = want.addDelivery
			eng, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// One filtered Block subscription per query, plus one
			// unfiltered subscription seeing everything. Small buffers
			// exercise the backpressure path; each consumer drains
			// concurrently with the feed.
			var wg sync.WaitGroup
			names := []string{""}
			if _, isFleet := eng.(Fleet); isFleet {
				names = []string{"chain", "star"}
			}
			union := newDeliveryLog()
			for _, name := range names {
				var opts SubscribeOptions
				if name != "" {
					opts.Queries = []string{name}
				}
				opts.Buffer = 8
				sub, err := eng.Subscribe(opts)
				if err != nil {
					t.Fatalf("subscribe %q: %v", name, err)
				}
				drain(&wg, sub, union)
			}
			all := newDeliveryLog()
			allSub, err := eng.Subscribe(SubscribeOptions{Buffer: 8})
			if err != nil {
				t.Fatal(err)
			}
			drain(&wg, allSub, all)

			if tc.batch > 0 {
				feedChunks(t, eng, edges, tc.batch)
			} else {
				feedEach(t, eng, edges)
			}
			eng.Close() // ends every subscription; drains exit
			wg.Wait()

			if len(want.keys) == 0 {
				t.Fatal("degenerate case: no matches delivered")
			}
			requireDenseSeqs(t, want)
			requireSameOrderedDelivery(t, "filtered-union", union, want)
			requireSameOrderedDelivery(t, "unfiltered", all, want)
		})
	}
}

// TestSubscribeDropOldestNeverBlocksFeed is the load-shedding
// guarantee: a subscriber with a full buffer and a drop policy can
// never stall FeedBatch, and the engine accounts for every shed
// delivery.
func TestSubscribeDropOldestNeverBlocksFeed(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 2500, 91)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("fleet-workers-%d", workers), func(t *testing.T) {
			fl, err := OpenFleet(Config{
				Queries:      []QuerySpec{{Name: "q1", Query: q}, {Name: "q2", Query: q}},
				Window:       60,
				FleetWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Never drained: one-slot buffer, DropOldest. If this could
			// block, the watchdog below would trip.
			stalled, err := fl.Subscribe(SubscribeOptions{Buffer: 1, Policy: DropOldest})
			if err != nil {
				t.Fatal(err)
			}
			// And a DropNewest sibling, also never drained.
			stalledNew, err := fl.Subscribe(SubscribeOptions{Buffer: 1, Policy: DropNewest})
			if err != nil {
				t.Fatal(err)
			}

			done := make(chan struct{})
			go func() {
				defer close(done)
				feedChunks(t, fl, edges, 111)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("FeedBatch blocked on a full drop-policy subscriber")
			}
			st := fl.Stats()
			fl.Close()

			if st.Matches < 2 {
				t.Fatalf("degenerate stream: %d matches", st.Matches)
			}
			// DropOldest buffers every delivery and evicts all but the
			// last; DropNewest buffers the first and sheds the rest.
			if ss := stalled.Stats(); ss.Delivered != st.Matches || ss.Dropped != st.Matches-1 {
				t.Fatalf("DropOldest accounting = %+v, want delivered %d, dropped %d", ss, st.Matches, st.Matches-1)
			}
			if ss := stalledNew.Stats(); ss.Delivered != 1 || ss.Dropped != st.Matches-1 {
				t.Fatalf("DropNewest accounting = %+v, want delivered 1, dropped %d", ss, st.Matches-1)
			}
			if st.SubscriptionDropped != stalled.Stats().Dropped+stalledNew.Stats().Dropped {
				t.Fatalf("engine drop ledger %d != subscription sum", st.SubscriptionDropped)
			}
			// DropOldest retains the newest delivery; DropNewest the
			// oldest.
			if dv, ok := <-stalled.C(); !ok || dv.Seq <= 1 {
				t.Fatalf("DropOldest retained seq %d, want the newest", dv.Seq)
			}
			if dv, ok := <-stalledNew.C(); !ok || dv.Seq != 1 {
				t.Fatalf("DropNewest retained seq %d, want 1 (the oldest)", dv.Seq)
			}
		})
	}
}

// TestSubscribeResumeAfterSeq checks the engine-level resume cursor:
// a new subscription with AfterSeq skips everything at or below the
// cursor and delivers the rest.
func TestSubscribeResumeAfterSeq(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 1200, 41)

	eng, err := Open(Config{Query: q, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	first := newDeliveryLog()
	var wg sync.WaitGroup
	sub, err := eng.Subscribe(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	drain(&wg, sub, first)
	feedChunks(t, eng, edges[:600], 67)
	sub.Cancel()
	wg.Wait()
	n := int64(len(first.seqs[""]))
	if n == 0 {
		t.Fatal("no matches in the first half")
	}

	// Resume after the cursor: half the already-seen horizon must be
	// skipped silently, the rest (old-but-after-cursor none here, plus
	// all new matches) delivered with continuing seqs.
	resumed := newDeliveryLog()
	sub2, err := eng.Subscribe(SubscribeOptions{AfterSeq: map[string]int64{"": n}})
	if err != nil {
		t.Fatal(err)
	}
	drain(&wg, sub2, resumed)
	feedChunks(t, eng, edges[600:], 67)
	eng.Close()
	wg.Wait()
	seqs := resumed.seqs[""]
	if len(seqs) == 0 {
		t.Fatal("no matches in the second half")
	}
	if seqs[0] != n+1 {
		t.Fatalf("resumed delivery starts at seq %d, want %d", seqs[0], n+1)
	}
}

// TestSubscribeDurableSeqStableAcrossCrash is the restart-dedup
// guarantee: matches re-reported by recovery replay carry the same
// per-query sequence numbers they had before the crash, so a consumer
// holding a durable cursor discards duplicates by integer comparison —
// the subsumption of MatchDeduper.
func TestSubscribeDurableSeqStableAcrossCrash(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 300, 42)
	want := runPlain(t, q, 40, edges)
	if len(want) == 0 {
		t.Fatal("reference run found no matches")
	}

	dir := t.TempDir()
	seqOf := map[string]int64{} // match key → first seq observed
	var dupes int
	var cursor int64
	exactlyOnce := map[string]int{}
	record := func(dv Delivery) {
		key := streamMatchKey(dv.Match)
		if prev, seen := seqOf[key]; seen {
			if prev != dv.Seq {
				t.Errorf("match %s re-reported with seq %d, had %d", key, dv.Seq, prev)
			}
			dupes++
		} else {
			seqOf[key] = dv.Seq
		}
		// The cursor protocol: ignore anything at or below the durable
		// high-water mark.
		if dv.Seq > cursor {
			cursor = dv.Seq
			exactlyOnce[key]++
		}
	}
	open := func() Engine {
		eng, err := Open(Config{
			Query: q, Window: 40,
			Durable:    &Durability{Dir: dir, CheckpointEvery: 64},
			OnDelivery: record,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	eng := open()
	feedEach(t, eng, edges[:170])
	eng.(*single).log.Close() // crash without checkpoint

	eng2 := open() // replay re-reports post-checkpoint matches
	feedEach(t, eng2, edges[170:])
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}

	if dupes == 0 {
		t.Fatal("recovery replay re-reported nothing — crash scenario not exercised")
	}
	if len(exactlyOnce) != len(want) {
		t.Fatalf("cursor consumer saw %d distinct matches, want %d", len(exactlyOnce), len(want))
	}
	for key, n := range exactlyOnce {
		if n != 1 {
			t.Fatalf("match %s processed %d times under the cursor protocol", key, n)
		}
	}
}

// TestSubscribeRetireOnRemoveQuery checks the filtered-subscription
// lifecycle on a dynamic fleet: removing a subscription's last
// filtered query ends it, unfiltered subscriptions follow the roster,
// and a reused name restarts its sequence.
func TestSubscribeRetireOnRemoveQuery(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 1200, 13)

	fl, err := OpenFleet(Config{Dynamic: true, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if err := fl.AddQuery(QuerySpec{Name: "a", Query: q}); err != nil {
		t.Fatal(err)
	}

	onA, err := fl.Subscribe(SubscribeOptions{Queries: []string{"a"}, Policy: DropOldest, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	everything := newDeliveryLog()
	var wg sync.WaitGroup
	allSub, err := fl.Subscribe(SubscribeOptions{Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	drain(&wg, allSub, everything)

	feedChunks(t, fl, edges[:600], 97)
	firstMatches := fl.Stats().Matches
	if firstMatches == 0 {
		t.Fatal("no matches before removal")
	}
	if err := fl.RemoveQuery("a"); err != nil {
		t.Fatal(err)
	}
	// The filtered subscription ends because its only query is gone.
	deadline := time.After(10 * time.Second)
	for {
		stop := false
		select {
		case _, ok := <-onA.C():
			if !ok {
				stop = true
			}
		case <-deadline:
			t.Fatal("filtered subscription did not end after RemoveQuery")
		}
		if stop {
			break
		}
	}

	// A later query reusing the name starts a fresh sequence, and the
	// unfiltered subscription keeps following the roster.
	if err := fl.AddQuery(QuerySpec{Name: "a", Query: q}); err != nil {
		t.Fatal(err)
	}
	feedChunks(t, fl, edges[600:], 97)
	fl.Close()
	wg.Wait()
	seqs := everything.seqs["a"]
	if int64(len(seqs)) <= firstMatches {
		t.Fatalf("no matches after the name was reused (%d total)", len(seqs))
	}
	if reborn := seqs[firstMatches]; reborn != 1 {
		t.Fatalf("reused name restarted at seq %d, want 1", reborn)
	}
	requireSameOrderedDelivery(t, "unfiltered-across-rebirth", everything, everything)
}

// TestSubscribeChurnStress hammers Subscribe/Cancel (and roster
// churn) against a sharded FeedBatch stream. Run under -race: the
// assertions are secondary to the detector.
func TestSubscribeChurnStress(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	star := starQuery(t)
	edges := persistTestStream(labels, 6000, 3)

	fl, err := OpenFleet(Config{
		Dynamic:      true,
		Window:       60,
		FleetWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.AddQuery(QuerySpec{Name: "chain", Query: q}); err != nil {
		t.Fatal(err)
	}
	if err := fl.AddQuery(QuerySpec{Name: "star", Query: star}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Subscriber churn: attach with random shapes, read a little,
	// cancel. Some iterations drop the subscription without reading at
	// all.
	policies := []OverflowPolicy{Block, DropOldest, DropNewest}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var opts SubscribeOptions
				switch rng.Intn(3) {
				case 0:
					opts.Queries = []string{"chain"}
				case 1:
					opts.Queries = []string{"chain", "star"}
				}
				opts.Policy = policies[rng.Intn(len(policies))]
				opts.Buffer = 1 + rng.Intn(8)
				sub, err := fl.Subscribe(opts)
				if err != nil {
					return // engine closed under us: stress over
				}
				if opts.Policy == Block {
					// A Block subscription must be drained until cancelled,
					// or it stalls the stream.
					donec := make(chan struct{})
					go func() {
						for range sub.C() {
						}
						close(donec)
					}()
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					sub.Cancel()
					<-donec
				} else {
					for n := rng.Intn(4); n > 0; n-- {
						select {
						case <-sub.C():
						default:
						}
					}
					sub.Cancel()
				}
			}
		}(g)
	}
	// Roster churn: a third query comes and goes, retiring filtered
	// subscriptions mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := fl.AddQuery(QuerySpec{Name: "extra", Query: q}); err != nil {
				return
			}
			sub, err := fl.Subscribe(SubscribeOptions{Queries: []string{"extra"}, Policy: DropNewest, Buffer: 2})
			if err != nil {
				return
			}
			if err := fl.RemoveQuery("extra"); err != nil {
				return
			}
			for range sub.C() { // must end: its only query is gone
			}
		}
	}()

	for off := 0; off < len(edges); off += 200 {
		end := off + 200
		if end > len(edges) {
			end = len(edges)
		}
		if _, err := fl.FeedBatch(edges[off:end]); err != nil {
			t.Fatalf("feed at %d: %v", off, err)
		}
	}
	close(stop)
	wg.Wait()
	st := fl.Stats()
	if st.Matches == 0 {
		t.Fatal("stress stream produced no matches")
	}
	fl.Close()
	// Post-close subscribes fail cleanly.
	if _, err := fl.Subscribe(SubscribeOptions{}); err != ErrClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
}

// TestSubscribeIterator exercises the iter.Seq2 surface, including
// cancellation-by-break.
func TestSubscribeIterator(t *testing.T) {
	labels := NewLabels()
	q := persistTestQuery(t, labels)
	edges := persistTestStream(labels, 800, 29)

	eng, err := Open(Config{Query: q, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(SubscribeOptions{Policy: DropOldest, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	feedEach(t, eng, edges)
	got := 0
	want := int(eng.Stats().Matches)
	eng.Close() // closes the channel so the range below terminates
	for query, m := range sub.Matches() {
		if query != "" || len(m.Edges) == 0 {
			t.Fatalf("bad iteration: query=%q match=%+v", query, m)
		}
		got++
	}
	if want == 0 || got != want {
		t.Fatalf("iterated %d matches, want %d", got, want)
	}

	// Breaking out cancels the subscription.
	eng2, err := Open(Config{Query: q, Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	sub2, err := eng2.Subscribe(SubscribeOptions{Policy: DropOldest, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	feedEach(t, eng2, edges)
	for range sub2.Deliveries() {
		break
	}
	if _, ok := <-sub2.C(); ok {
		// A buffered tail may still drain; the channel must be closed,
		// i.e. reads eventually report !ok.
		for range sub2.C() {
		}
	}
}
