package timingsubg

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkSubscribeFan is the results-plane fan-out regression
// harness: one engine, 1/8/64 concurrent subscriptions, under the
// lossless Block policy (every subscriber actively draining) and the
// load-shedding DropOldest policy (every subscriber stalled — the
// worst case the drop policies exist for: ingest must not slow down
// beyond the constant eviction cost). scripts/bench_subscribe.sh
// emits the numbers as BENCH_subscribe.json so the delivery path has
// perf data points alongside the fleet fan-out's.
func BenchmarkSubscribeFan(b *testing.B) {
	const fanStreamLen = 20_000
	labels := NewLabels()
	q := persistTestQuery(b, labels)
	edges := persistTestStream(labels, fanStreamLen, 7)

	cases := []struct {
		name   string
		policy OverflowPolicy
		drain  bool
	}{
		{name: "block", policy: Block, drain: true},
		{name: "dropoldest-stalled", policy: DropOldest, drain: false},
	}
	for _, tc := range cases {
		for _, subs := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/subs-%d", tc.name, subs), func(b *testing.B) {
				b.ReportAllocs()
				var matches int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng, err := Open(Config{Query: q, Window: 50})
					if err != nil {
						b.Fatal(err)
					}
					var wg sync.WaitGroup
					for s := 0; s < subs; s++ {
						sub, err := eng.Subscribe(SubscribeOptions{Policy: tc.policy, Buffer: 64})
						if err != nil {
							b.Fatal(err)
						}
						if tc.drain {
							wg.Add(1)
							go func() {
								defer wg.Done()
								for range sub.C() {
								}
							}()
						}
					}
					b.StartTimer()
					for off := 0; off < len(edges); off += 1024 {
						end := off + 1024
						if end > len(edges) {
							end = len(edges)
						}
						if _, err := eng.FeedBatch(edges[off:end]); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					matches = eng.Stats().Matches
					eng.Close() // ends the subscriptions; drains exit
					wg.Wait()
					b.StartTimer()
				}
				b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
				b.ReportMetric(float64(matches*int64(subs))*float64(b.N)/b.Elapsed().Seconds(), "deliveries/s")
			})
		}
	}
}
