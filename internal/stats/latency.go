// Package stats provides the small observability primitives the runner
// CLIs report: a fixed-memory latency histogram with percentile queries
// and a throughput meter. Streaming systems live and die by their tail
// latency; tsrun reports p50/p99/p999 per-edge processing latency from
// these.
package stats

import (
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram: 1ns..~17m in buckets of
// ~9% relative width. The zero value is ready to use.
//
// Aggregation contract: a Histogram is single-writer. Observe and
// Merge mutate and must not race with each other or with readers; the
// supported concurrent pattern is one private Histogram per goroutine,
// merged after the writers have stopped (or under the caller's lock).
// TestHistogramShardMerge enforces this shape under -race. For a
// histogram that is written and read concurrently without external
// coordination, use AtomicHistogram.
type Histogram struct {
	counts [nBuckets]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

// bucketFor maps a duration to a bucket index (log scale, 8 sub-buckets
// per octave).
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	lg := math.Log2(float64(ns))
	idx := int(lg * 8)
	if idx >= len((&Histogram{}).counts) {
		idx = len((&Histogram{}).counts) - 1
	}
	return idx
}

// bucketLow returns the lower bound of bucket idx.
func bucketLow(idx int) time.Duration {
	return time.Duration(math.Exp2(float64(idx) / 8))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q ≤ 1): the lower
// bound of the bucket containing the q·total-th sample.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	want := uint64(q * float64(h.total))
	if want >= h.total {
		want = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > want {
			return bucketLow(i)
		}
	}
	return h.max
}

// Snapshot summarizes the histogram. An empty histogram snapshots to
// all zeros.
func (h *Histogram) Snapshot() Snapshot {
	return snapshotOf(&h.counts, h.total, h.sum, h.max)
}

// Merge folds other into h. Merge is a write: see the aggregation
// contract on Histogram for when it may run.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// String summarizes the distribution in the shared Snapshot form.
func (h *Histogram) String() string { return h.Snapshot().String() }

// Meter measures throughput over a run.
type Meter struct {
	start time.Time
	n     int64
}

// NewMeter starts a meter.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Add records n processed items.
func (m *Meter) Add(n int64) { m.n += n }

// Rate returns items per second since the meter started.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n) / el
}

// Count returns items recorded.
func (m *Meter) Count() int64 { return m.n }
