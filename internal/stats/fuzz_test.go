package stats

import (
	"testing"
	"time"
)

// FuzzHistogram feeds arbitrary sample sequences to the log-bucketed
// histogram and checks the snapshot invariants callers rely on: exact
// count and sum, monotone percentiles bounded by max, and cumulative
// exposition buckets that never decrease and end at the total count.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 250, 251, 255})
	f.Fuzz(func(t *testing.T, samples []byte) {
		var h Histogram
		var sum time.Duration
		var max time.Duration
		for _, b := range samples {
			// Spread samples across the full bucket range: magnitude from
			// the low bits, mantissa from the byte value.
			d := time.Duration(b) << (b % 32)
			h.Observe(d)
			sum += d
			if d > max {
				max = d
			}
		}

		if h.Count() != uint64(len(samples)) {
			t.Fatalf("Count = %d, want %d", h.Count(), len(samples))
		}
		s := h.Snapshot()
		if s.Count != uint64(len(samples)) {
			t.Fatalf("Snapshot.Count = %d, want %d", s.Count, len(samples))
		}
		if s.Sum != sum {
			t.Fatalf("Snapshot.Sum = %v, want %v", s.Sum, sum)
		}
		if s.Max != max {
			t.Fatalf("Snapshot.Max = %v, want %v", s.Max, max)
		}
		if len(samples) == 0 {
			if s.Mean != 0 || s.P50 != 0 || s.P999 != 0 {
				t.Fatalf("empty snapshot not all-zero: %+v", s)
			}
		} else {
			if want := sum / time.Duration(len(samples)); s.Mean != want {
				t.Fatalf("Snapshot.Mean = %v, want %v", s.Mean, want)
			}
			qs := []time.Duration{s.P50, s.P90, s.P99, s.P999}
			for i := 1; i < len(qs); i++ {
				if qs[i] < qs[i-1] {
					t.Fatalf("percentiles not monotone: %v", qs)
				}
			}
			if max > 0 && s.P999 > max {
				t.Fatalf("P999 %v exceeds max %v", s.P999, max)
			}
		}

		buckets := s.Buckets()
		if len(buckets) == 0 || buckets[len(buckets)-1].Le != 0 {
			t.Fatalf("bucket ladder must end with the +Inf bucket: %v", buckets)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].Count < buckets[i-1].Count {
				t.Fatalf("cumulative bucket counts decreased: %v", buckets)
			}
		}
		if got := buckets[len(buckets)-1].Count; got != s.Count {
			t.Fatalf("+Inf bucket = %d, want Count %d", got, s.Count)
		}
	})
}
