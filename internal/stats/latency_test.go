package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram must report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count: want 100, got %d", h.Count())
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("max: want 100µs, got %v", h.Max())
	}
	mean := h.Mean()
	if mean < 40*time.Microsecond || mean > 60*time.Microsecond {
		t.Fatalf("mean of 1..100µs should be ~50µs, got %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 25*time.Microsecond || p50 > 75*time.Microsecond {
		t.Fatalf("p50 out of range: %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatal("p99 must be ≥ p50")
	}
	if !strings.Contains(h.String(), "n=100") {
		t.Errorf("String: %s", h.String())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(samplesRaw []uint16) bool {
		var h Histogram
		for _, s := range samplesRaw {
			h.Observe(time.Duration(s+1) * time.Nanosecond)
		}
		if h.Count() == 0 {
			return true
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1.0) <= h.Max()*2 // bucket lower-bound estimate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 100 {
		t.Fatalf("merged count: want 100, got %d", a.Count())
	}
	if a.Max() != time.Millisecond {
		t.Fatalf("merged max: want 1ms, got %v", a.Max())
	}
	if p99 := a.Quantile(0.99); p99 < 100*time.Microsecond {
		t.Fatalf("p99 must reflect the slow half, got %v", p99)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)                // clamps to 1ns
	h.Observe(20 * time.Minute) // clamps to the last bucket
	if h.Count() != 2 {
		t.Fatal("both samples must register")
	}
	if h.Quantile(0.01) > time.Microsecond {
		t.Error("low quantile should land in the first buckets")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(500)
	m.Add(500)
	if m.Count() != 1000 {
		t.Fatalf("count: want 1000, got %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Error("rate must be positive")
	}
}
