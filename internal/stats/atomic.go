package stats

import (
	"sync/atomic"
	"time"
)

// AtomicHistogram is the concurrency-safe sibling of Histogram: the
// same log-bucketed layout with every cell updated atomically, so any
// number of goroutines may Observe while others Snapshot. The zero
// value is ready to use.
//
// Observe is wait-free except for the max update (a short CAS loop);
// the cost is a handful of uncontended atomic adds, cheap enough to
// leave on in the ingest hot path. Snapshot reads the buckets without
// a lock, so a snapshot taken mid-Observe may be torn by a sample or
// two across fields — the documented trade for a lock-free hot path.
// Within a snapshot, Count is defined as the sum of the bucket counts
// read, so cumulative expositions are always internally consistent.
type AtomicHistogram struct {
	counts [nBuckets]atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one latency sample. Safe for concurrent use.
func (h *AtomicHistogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// Count returns the number of samples observed so far.
func (h *AtomicHistogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot summarizes the histogram at a point in time. Safe to call
// concurrently with Observe.
func (h *AtomicHistogram) Snapshot() Snapshot {
	var counts [nBuckets]uint64
	var n uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		n += c
	}
	return snapshotOf(&counts, n,
		time.Duration(h.sum.Load()), time.Duration(h.max.Load()))
}

// Pipeline is the per-engine set of stage latency histograms the
// serving plane exposes: one AtomicHistogram per pipeline stage, all
// observed lock-free from the feed path and snapshotted by stats
// samplers and the /metrics exposition. A nil *Pipeline disables
// instrumentation everywhere it is threaded.
type Pipeline struct {
	// Ingest is end-to-end Feed/FeedBatch latency per edge (WAL append
	// + fan-out + join + expiry + synchronous delivery).
	Ingest AtomicHistogram
	// WALAppend times each durable append call (including any fsync the
	// append's cadence triggered); WALSync times each fsync alone.
	WALAppend AtomicHistogram
	WALSync   AtomicHistogram
	// WALGroupCommit times each committer's wait for group-commit
	// durability — the coalescing latency a caller pays when its fsync
	// is shared with (or queued behind) concurrent committers.
	WALGroupCommit AtomicHistogram
	// QueueWait is time a shard task spends queued before a fleet pool
	// worker picks it up; ShardExec is the task's execution time.
	QueueWait AtomicHistogram
	ShardExec AtomicHistogram
	// Join times core insert work per edge; Expiry times each
	// window-expiry sweep (the batch of deletes one slide evicts).
	Join   AtomicHistogram
	Expiry AtomicHistogram
	// Dispatch times synchronous match delivery (Publish fan-out to
	// subscribers, including any Block-policy backpressure).
	Dispatch AtomicHistogram
	// Detection is the paper's detection latency: emit wallclock minus
	// the triggering edge's arrival wallclock, engine-wide. Per-query
	// detection histograms live on each fleet member.
	Detection AtomicHistogram
	// EventTimeLag is emit wallclock minus the triggering edge's event
	// timestamp (Config.EventTimeUnit maps edge times to wallclock);
	// only observed when an event-time unit is configured.
	EventTimeLag AtomicHistogram
}

// NewPipeline returns an empty stage-histogram set.
func NewPipeline() *Pipeline { return &Pipeline{} }
