package stats

import (
	"fmt"
	"time"
)

// Snapshot is an immutable point-in-time summary of a histogram:
// sample count, sum, mean, tail percentiles, and max, plus the raw
// bucket counts needed to render cumulative-bucket expositions
// (Prometheus). A Snapshot of an empty histogram is all zeros — never
// NaN, never garbage percentiles — so callers can format it blindly.
//
// Snapshots marshal to JSON with nanosecond-valued fields (`p99_ns`,
// `mean_ns`, ...); Snapshot.String is the one human-readable form the
// CLIs share.
type Snapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`

	counts [nBuckets]uint64
}

const nBuckets = 256

// snapshotOf summarizes one set of bucket counts. count must equal the
// sum of counts so that cumulative-bucket expositions stay consistent
// with Count.
func snapshotOf(counts *[nBuckets]uint64, count uint64, sum, max time.Duration) Snapshot {
	s := Snapshot{Count: count, Sum: sum, Max: max, counts: *counts}
	if count == 0 {
		return s
	}
	s.Mean = sum / time.Duration(count)
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P99 = s.quantile(0.99)
	s.P999 = s.quantile(0.999)
	return s
}

// quantile estimates the q-quantile from the bucket counts: the lower
// bound of the bucket holding the q·Count-th sample, capped at Max.
func (s *Snapshot) quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	want := uint64(q * float64(s.Count))
	if want >= s.Count {
		want = s.Count - 1
	}
	var seen uint64
	for i, c := range s.counts {
		seen += c
		if seen > want {
			est := bucketLow(i)
			if s.Max > 0 && est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}

// Quantile returns an estimate of the q-quantile (0 < q ≤ 1) from the
// snapshot's bucket counts.
func (s Snapshot) Quantile(q float64) time.Duration { return s.quantile(q) }

// String renders the canonical one-line summary shared by the CLIs.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean.Round(time.Nanosecond), s.P50, s.P90, s.P99, s.P999, s.Max)
}

// Bucket is one cumulative histogram bucket: the count of samples with
// latency ≤ Le. The final bucket of Snapshot.Buckets always has
// Count == Snapshot.Count (the +Inf bucket).
type Bucket struct {
	Le    time.Duration // upper bound; 0 marks the +Inf bucket
	Count uint64        // samples ≤ Le (cumulative)
}

// promLadder is the fixed upper-bound ladder used for cumulative
// expositions: powers of 4 from 1µs to ~4.3s, 12 finite bounds. The
// fine-grained 256-bucket histogram is coarsened onto it so every
// series shares a stable, small le-set.
var promLadder = func() []time.Duration {
	var l []time.Duration
	for le := time.Microsecond; le <= 5*time.Second; le *= 4 {
		l = append(l, le)
	}
	return l
}()

// Buckets renders the snapshot as cumulative buckets on the fixed
// exposition ladder, ending with the +Inf bucket (Le == 0). Counts are
// non-decreasing and the last equals Snapshot.Count.
func (s Snapshot) Buckets() []Bucket {
	out := make([]Bucket, 0, len(promLadder)+1)
	var cum uint64
	i := 0
	for _, le := range promLadder {
		// Fine bucket i covers [bucketLow(i), bucketLow(i+1)); fold every
		// fine bucket whose low bound is ≤ le into the cumulative count.
		// The ~9% bucket width bounds the coarsening error well under the
		// 4× ladder step. Bucket nBuckets-1 is the clamp bucket — it holds
		// every over-range sample, so it belongs only to +Inf.
		for i < nBuckets-1 && bucketLow(i) <= le {
			cum += s.counts[i]
			i++
		}
		out = append(out, Bucket{Le: le, Count: cum})
	}
	out = append(out, Bucket{Le: 0, Count: s.Count})
	return out
}
