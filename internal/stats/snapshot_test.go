package stats

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEmptySnapshotZeros: the satellite contract — an empty histogram
// snapshots to all zeros, never NaN or garbage percentiles.
func TestEmptySnapshotZeros(t *testing.T) {
	for name, snap := range map[string]Snapshot{
		"histogram": (&Histogram{}).Snapshot(),
		"atomic":    (&AtomicHistogram{}).Snapshot(),
		"zero":      {},
	} {
		if snap.Count != 0 || snap.Sum != 0 || snap.Mean != 0 ||
			snap.P50 != 0 || snap.P90 != 0 || snap.P99 != 0 ||
			snap.P999 != 0 || snap.Max != 0 {
			t.Errorf("%s: empty snapshot not zero: %+v", name, snap)
		}
		if q := snap.Quantile(0.99); q != 0 {
			t.Errorf("%s: Quantile on empty = %v", name, q)
		}
		if s := snap.String(); strings.Contains(s, "NaN") {
			t.Errorf("%s: String contains NaN: %s", name, s)
		}
		bs := snap.Buckets()
		if len(bs) == 0 || bs[len(bs)-1].Count != 0 {
			t.Errorf("%s: empty buckets: %+v", name, bs)
		}
	}
}

func TestSnapshotSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1000*time.Microsecond {
		t.Errorf("max = %v", s.Max)
	}
	// Log buckets are ~9% wide; allow 15% relative error on percentiles.
	for _, tc := range []struct {
		got  time.Duration
		want time.Duration
	}{{s.P50, 500 * time.Microsecond}, {s.P90, 900 * time.Microsecond}, {s.P99, 990 * time.Microsecond}} {
		if math.Abs(float64(tc.got)-float64(tc.want)) > 0.15*float64(tc.want) {
			t.Errorf("percentile %v, want ~%v", tc.got, tc.want)
		}
	}
	if s.Mean < 400*time.Microsecond || s.Mean > 600*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	// JSON form carries nanosecond fields.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"count":1000`, `"p50_ns"`, `"p999_ns"`, `"max_ns"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
}

// TestSnapshotBuckets checks the cumulative exposition invariants the
// Prometheus golden test depends on: non-decreasing counts, and the
// +Inf bucket equal to Count.
func TestSnapshotBuckets(t *testing.T) {
	var h AtomicHistogram
	for _, d := range []time.Duration{
		1, 100 * time.Nanosecond, time.Microsecond, 30 * time.Microsecond,
		time.Millisecond, 70 * time.Millisecond, time.Second, 10 * time.Second,
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	bs := s.Buckets()
	var prev uint64
	for _, b := range bs {
		if b.Count < prev {
			t.Fatalf("bucket counts decrease: %+v", bs)
		}
		prev = b.Count
	}
	last := bs[len(bs)-1]
	if last.Le != 0 || last.Count != s.Count {
		t.Fatalf("+Inf bucket = %+v, want count %d", last, s.Count)
	}
	// A 10s sample lies beyond the finite ladder: only +Inf holds it.
	if bs[len(bs)-2].Count != s.Count-1 {
		t.Errorf("top finite bucket = %d, want %d", bs[len(bs)-2].Count, s.Count-1)
	}
}

// TestHistogramShardMerge enforces the documented aggregation contract
// under -race: per-goroutine shards, merged after writers stop.
func TestHistogramShardMerge(t *testing.T) {
	const workers, perWorker = 8, 5000
	shards := make([]Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(h *Histogram, seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(seed*perWorker+i+1) * time.Nanosecond)
			}
		}(&shards[w], w)
	}
	wg.Wait()
	var total Histogram
	for i := range shards {
		total.Merge(&shards[i])
	}
	if got := total.Count(); got != workers*perWorker {
		t.Fatalf("merged count = %d, want %d", got, workers*perWorker)
	}
	if total.Max() != workers*perWorker*time.Nanosecond {
		t.Errorf("merged max = %v", total.Max())
	}
}

// TestAtomicHistogramConcurrent hammers Observe from many goroutines
// while snapshots are taken concurrently — the -race proof that the
// serving plane may scrape during ingest.
func TestAtomicHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	var h AtomicHistogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > workers*perWorker {
					panic("overcount")
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(seed+i+1) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Count != h.Count() {
		t.Fatalf("Count() = %d, snapshot %d", h.Count(), s.Count)
	}
	if s.Max < time.Duration(perWorker)*time.Nanosecond {
		t.Errorf("max = %v", s.Max)
	}
}
