package stats

import "time"

// The hot-path clock discipline (enforced by tsvet's hotclock
// analyzer): the ingest hot-path packages — internal/core,
// internal/explist, internal/mstree — may not read the wallclock
// directly. A clock read costs tens of nanoseconds, comparable to an
// indexed insert itself, so an unsampled time.Now() on those paths
// silently becomes the dominant cost of having metrics on. Sampled
// sections instead obtain their start time from SampleStart and
// record through ObserveSince, which keeps every hot-path clock read
// at a call site whose sampling stride is auditable next to the
// histogram it feeds.

// SampleStart returns the wallclock start of one sampled hot-path
// timing section.
func SampleStart() time.Time { return time.Now() }

// ObserveSince records the latency elapsed since start, completing a
// SampleStart section. Safe for concurrent use.
func (h *AtomicHistogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// ObserveSince records the latency elapsed since start. Like Observe,
// it is not safe for concurrent use.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }
