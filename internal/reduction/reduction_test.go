package reduction

import (
	"sort"
	"testing"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/iso"
	"timingsubg/internal/match"
	"timingsubg/internal/querygen"
)

// TestReductionMatchesStaticSearch is the executable form of Theorem 1:
// the streaming engine run over the constructed stream finds exactly the
// matches of a static subgraph isomorphism search.
func TestReductionMatchesStaticSearch(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		ds := datagen.Datasets()[trial%3]
		labels := graph.NewLabels()
		gen := datagen.New(ds, labels, datagen.Config{Vertices: 150, Seed: int64(trial + 1)})
		edges := gen.Take(300)
		q, _, err := querygen.Generate(edges, querygen.Config{
			Size: 3 + trial%3, Order: querygen.EmptyOrder, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var want []string
		iso.FindAll(graph.SnapshotOf(edges), q, iso.QuickSI, iso.Options{}, func(m *match.Match) bool {
			want = append(want, m.Key())
			return true
		})
		var got []string
		for _, m := range FindAllStatic(edges, q) {
			if err := m.Verify(q); err != nil {
				t.Fatalf("trial %d: invalid match: %v", trial, err)
			}
			got = append(got, m.Key())
		}
		sort.Strings(want)
		sort.Strings(got)
		if len(want) != len(got) {
			t.Fatalf("trial %d: static found %d matches, reduction %d", trial, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: result sets differ at %d: %s vs %s", trial, i, want[i], got[i])
			}
		}
		if Exists(edges, q) != (len(want) > 0) {
			t.Fatalf("trial %d: Exists disagrees", trial)
		}
	}
}

// TestReductionTimestampsIgnoredByEmptyOrder verifies the reduction is
// insensitive to the (arbitrary) timestamp assignment when ≺ = ∅, as the
// Theorem 1 proof requires: reversing the stream order yields the same
// match set.
func TestReductionTimestampsIgnoredByEmptyOrder(t *testing.T) {
	labels := graph.NewLabels()
	gen := datagen.New(datagen.WikiTalk, labels, datagen.Config{Vertices: 80, Seed: 5})
	edges := gen.Take(200)
	q, _, err := querygen.Generate(edges, querygen.Config{Size: 3, Order: querygen.EmptyOrder, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	keysOf := func(es []graph.Edge) []string {
		var out []string
		for _, m := range FindAllStatic(es, q) {
			out = append(out, m.Key())
		}
		sort.Strings(out)
		return out
	}
	fwd := keysOf(edges)
	rev := make([]graph.Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	// Keep IDs: the reduction restamps times but the Stream assigns
	// fresh IDs in feed order, so compare by size only... instead keep
	// the comparison exact by mapping back to original IDs via From/To/
	// labels. Simplest exact check: counts must agree, and every forward
	// match must still exist structurally.
	revKeys := keysOf(rev)
	if len(fwd) != len(revKeys) {
		t.Fatalf("reversal changed the match count: %d vs %d", len(fwd), len(revKeys))
	}
}
