// Package reduction implements Theorem 1's construction: an arbitrary
// (static) subgraph isomorphism instance reduces to time-constrained
// continuous subgraph search by streaming the data graph's edges with
// arbitrary strictly increasing timestamps, a window spanning the whole
// stream, and an empty timing order.
//
// Besides demonstrating the NP-hardness argument executably, the
// reduction doubles as an end-to-end differential test: the streaming
// engine must find exactly the matches a static backtracking searcher
// finds.
package reduction

import (
	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// FindAllStatic enumerates all subgraph-isomorphism matches of q in the
// edge set g by running the continuous engine over the Theorem 1 stream.
// The query's timing order must be empty for pure isomorphism semantics;
// a non-empty order is honoured against the synthetic timestamps (edges
// are stamped in slice order), which callers can exploit to ask
// order-constrained static questions.
func FindAllStatic(g []graph.Edge, q *query.Query) []*match.Match {
	var out []*match.Match
	eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		out = append(out, m)
	}})
	// Window large enough that nothing expires: t_m − t_1 + 1.
	window := graph.Timestamp(len(g) + 1)
	st := graph.NewStream(window)
	for i, e := range g {
		e.Time = graph.Timestamp(i + 1)
		stored, expired, err := st.Push(e)
		if err != nil {
			// Unreachable: timestamps are assigned strictly increasing.
			panic(err)
		}
		eng.Process(stored, expired)
	}
	return out
}

// Exists reports whether q has at least one match in g (the decision
// problem of Theorem 1).
func Exists(g []graph.Edge, q *query.Query) bool {
	return len(FindAllStatic(g, q)) > 0
}
