// Package match represents (partial) time-constrained matches and
// implements the compatibility join ⋈ᵀ from Section III-A: two partial
// matches can be combined iff their vertex bindings agree, the combined
// binding is injective, no data edge is reused for two query edges, and
// every timing-order constraint between bound edges holds.
package match

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// Unbound marks a query vertex with no data vertex assigned yet.
const Unbound graph.VertexID = -1 << 62

// NoEdge marks a query edge with no data edge assigned yet.
const NoEdge graph.EdgeID = -1

// Match is a partial (or complete) match of a query: an assignment of
// data vertices to query vertices and data edges to query edges.
type Match struct {
	// Vtx[qv] is the data vertex bound to query vertex qv, or Unbound.
	Vtx []graph.VertexID
	// Edges[qe] is the data edge bound to query edge qe; Edges[qe].ID ==
	// NoEdge when unbound.
	Edges []graph.Edge
	// EdgeMask has bit qe set iff query edge qe is bound.
	EdgeMask uint64
}

// New returns an empty match for query q.
func New(q *query.Query) *Match {
	m := &Match{
		Vtx:   make([]graph.VertexID, q.NumVertices()),
		Edges: make([]graph.Edge, q.NumEdges()),
	}
	for i := range m.Vtx {
		m.Vtx[i] = Unbound
	}
	for i := range m.Edges {
		m.Edges[i].ID = NoEdge
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Match) Clone() *Match {
	return &Match{
		Vtx:      append([]graph.VertexID(nil), m.Vtx...),
		Edges:    append([]graph.Edge(nil), m.Edges...),
		EdgeMask: m.EdgeMask,
	}
}

// Reset clears every binding, returning m to the state New produces.
// Pools of scratch matches reset before reuse instead of reallocating.
func (m *Match) Reset() {
	for i := range m.Vtx {
		m.Vtx[i] = Unbound
	}
	for i := range m.Edges {
		m.Edges[i].ID = NoEdge
	}
	m.EdgeMask = 0
}

// CopyFrom overwrites m with src's bindings without allocating. Both
// matches must be built for the same query.
func (m *Match) CopyFrom(src *Match) {
	copy(m.Vtx, src.Vtx)
	copy(m.Edges, src.Edges)
	m.EdgeMask = src.EdgeMask
}

// NumBoundEdges returns how many query edges are bound.
func (m *Match) NumBoundEdges() int {
	n := 0
	for mask := m.EdgeMask; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

// HasDataEdge reports whether data edge id is already used by the match.
// The scan is EdgeMask-guided: only bound query edges are inspected, so
// a sparse partial match costs O(bound) rather than O(|E(Q)|).
func (m *Match) HasDataEdge(id graph.EdgeID) bool {
	for mask := m.EdgeMask; mask != 0; mask &= mask - 1 {
		if m.Edges[bits.TrailingZeros64(mask)].ID == id {
			return true
		}
	}
	return false
}

// hasDataVertex reports whether data vertex v is in the binding image,
// excluding query vertices listed in except. Every bound query vertex
// is an endpoint of at least one bound query edge (Bind sets both
// endpoints; Unbind clears unsupported vertices), so the check walks
// the EdgeMask-guided bound edges instead of scanning all of Vtx.
func (m *Match) hasDataVertex(q *query.Query, v graph.VertexID, except ...query.VertexID) bool {
	excepted := func(qv query.VertexID) bool {
		for _, ex := range except {
			if qv == ex {
				return true
			}
		}
		return false
	}
	for mask := m.EdgeMask; mask != 0; mask &= mask - 1 {
		qe := query.EdgeID(bits.TrailingZeros64(mask))
		e := q.Edge(qe)
		d := m.Edges[qe]
		if d.From == v && !excepted(e.From) {
			return true
		}
		if d.To == v && !excepted(e.To) {
			return true
		}
	}
	return false
}

// CanBind reports whether data edge d can be bound to query edge qe in m:
// label match, consistent vertex bindings, injectivity of the extended
// binding, no reuse of d, and all timing constraints between qe and
// already-bound edges.
func (m *Match) CanBind(q *query.Query, qe query.EdgeID, d graph.Edge) bool {
	return m.canBind(q, qe, d, true, true)
}

// CanBindPrescreened is CanBind for callers that already know
// q.MatchesData(qe, d) holds — typically because qe came out of
// q.MatchingEdges(d) — so the redundant label re-check is skipped. The
// engine's probe loops run it once per candidate; everything except the
// label screen is still verified.
func (m *Match) CanBindPrescreened(q *query.Query, qe query.EdgeID, d graph.Edge) bool {
	return m.canBind(q, qe, d, true, false)
}

// CanBindStructural is CanBind without the timing-order check. Static
// isomorphism baselines use it and verify timing as a post-filter, the
// way the paper runs SJ-tree and IncMat (Section VII-C).
func (m *Match) CanBindStructural(q *query.Query, qe query.EdgeID, d graph.Edge) bool {
	return m.canBind(q, qe, d, false, true)
}

func (m *Match) canBind(q *query.Query, qe query.EdgeID, d graph.Edge, timing, screen bool) bool {
	if screen && !q.MatchesData(qe, d) {
		return false
	}
	e := q.Edge(qe)
	if m.EdgeMask&(1<<uint(qe)) != 0 {
		return false // already bound
	}
	bf, bt := m.Vtx[e.From], m.Vtx[e.To]
	// Self-loop consistency: query self-loop requires data self-loop.
	if e.From == e.To && d.From != d.To {
		return false
	}
	if bf != Unbound && bf != d.From {
		return false
	}
	if bt != Unbound && bt != d.To {
		return false
	}
	// Injectivity for newly bound vertices.
	if bf == Unbound && m.hasDataVertex(q, d.From) {
		return false
	}
	if bt == Unbound && e.From != e.To {
		if d.From == d.To && bf == Unbound {
			// Distinct query vertices must map to distinct data vertices.
			return false
		}
		if m.hasDataVertex(q, d.To) {
			return false
		}
	}
	if e.From != e.To && bf == Unbound && bt == Unbound && d.From == d.To {
		return false
	}
	if m.HasDataEdge(d.ID) {
		return false
	}
	if !timing {
		return true
	}
	// Timing constraints against every bound edge.
	for other := 0; other < q.NumEdges(); other++ {
		if m.EdgeMask&(1<<uint(other)) == 0 {
			continue
		}
		oe := m.Edges[other]
		if q.Precedes(query.EdgeID(other), qe) && oe.Time >= d.Time {
			return false
		}
		if q.Precedes(qe, query.EdgeID(other)) && d.Time >= oe.Time {
			return false
		}
	}
	return true
}

// Bind assigns data edge d to query edge qe. Callers must have verified
// CanBind; Bind performs no checks.
func (m *Match) Bind(q *query.Query, qe query.EdgeID, d graph.Edge) {
	e := q.Edge(qe)
	m.Vtx[e.From] = d.From
	m.Vtx[e.To] = d.To
	m.Edges[qe] = d
	m.EdgeMask |= 1 << uint(qe)
}

// Unbind removes the assignment of query edge qe, clearing vertex
// bindings that no other bound edge supports. It is used by backtracking
// searchers.
func (m *Match) Unbind(q *query.Query, qe query.EdgeID) {
	e := q.Edge(qe)
	m.Edges[qe].ID = NoEdge
	m.EdgeMask &^= 1 << uint(qe)
	if !m.vertexSupported(q, e.From) {
		m.Vtx[e.From] = Unbound
	}
	if !m.vertexSupported(q, e.To) {
		m.Vtx[e.To] = Unbound
	}
}

func (m *Match) vertexSupported(q *query.Query, v query.VertexID) bool {
	for _, eid := range q.Touching(v) {
		if m.EdgeMask&(1<<uint(eid)) != 0 {
			return true
		}
	}
	return false
}

// Compatible reports whether m and other can be merged (the g1 ∼ g2
// relation of Section III-A): disjoint bound edge sets, agreeing vertex
// bindings, injective union, no shared data edges, and all cross timing
// constraints satisfied.
func (m *Match) Compatible(q *query.Query, other *Match) bool {
	if m.EdgeMask&other.EdgeMask != 0 {
		return false
	}
	// Vertex binding agreement and injectivity of the union.
	for qv := range m.Vtx {
		a, b := m.Vtx[qv], other.Vtx[qv]
		if a != Unbound && b != Unbound && a != b {
			return false
		}
	}
	for qv := range m.Vtx {
		av := m.Vtx[qv]
		bv := other.Vtx[qv]
		v := av
		if v == Unbound {
			v = bv
		}
		if v == Unbound {
			continue
		}
		// v must not appear under a different query vertex in either side.
		for qw := qv + 1; qw < len(m.Vtx); qw++ {
			wa, wb := m.Vtx[qw], other.Vtx[qw]
			if wa == v || wb == v {
				return false
			}
		}
	}
	// Data edge reuse across sides.
	for i := range m.Edges {
		if m.Edges[i].ID == NoEdge {
			continue
		}
		if other.HasDataEdge(m.Edges[i].ID) {
			return false
		}
	}
	// Cross timing constraints.
	for a := 0; a < q.NumEdges(); a++ {
		if m.EdgeMask&(1<<uint(a)) == 0 {
			continue
		}
		for b := 0; b < q.NumEdges(); b++ {
			if other.EdgeMask&(1<<uint(b)) == 0 {
				continue
			}
			ta, tb := m.Edges[a].Time, other.Edges[b].Time
			if q.Precedes(query.EdgeID(a), query.EdgeID(b)) && ta >= tb {
				return false
			}
			if q.Precedes(query.EdgeID(b), query.EdgeID(a)) && tb >= ta {
				return false
			}
		}
	}
	return true
}

// Merge returns the union of m and other. Callers must have verified
// Compatible.
func (m *Match) Merge(other *Match) *Match {
	out := m.Clone()
	out.MergeInPlace(other)
	return out
}

// MergeInPlace folds other into m without allocating.
func (m *Match) MergeInPlace(other *Match) {
	for qv := range m.Vtx {
		if m.Vtx[qv] == Unbound {
			m.Vtx[qv] = other.Vtx[qv]
		}
	}
	for qe := range m.Edges {
		if m.Edges[qe].ID == NoEdge && other.Edges[qe].ID != NoEdge {
			m.Edges[qe] = other.Edges[qe]
		}
	}
	m.EdgeMask |= other.EdgeMask
}

// Complete reports whether every query edge is bound.
func (m *Match) Complete(q *query.Query) bool {
	return m.EdgeMask == uint64(1)<<uint(q.NumEdges())-1
}

// Verify re-checks the full Definition 4 semantics for a complete match;
// it is the independent verifier used by tests and never by engines.
func (m *Match) Verify(q *query.Query) error {
	if !m.Complete(q) {
		return fmt.Errorf("match: incomplete (mask %b)", m.EdgeMask)
	}
	seenV := make(map[graph.VertexID]query.VertexID)
	for qv, dv := range m.Vtx {
		if dv == Unbound {
			return fmt.Errorf("match: vertex %d unbound", qv)
		}
		if prev, dup := seenV[dv]; dup {
			return fmt.Errorf("match: vertices %d and %d both map to %d", prev, qv, dv)
		}
		seenV[dv] = query.VertexID(qv)
	}
	seenE := make(map[graph.EdgeID]bool)
	for qe := range m.Edges {
		d := m.Edges[qe]
		e := q.Edge(query.EdgeID(qe))
		if seenE[d.ID] {
			return fmt.Errorf("match: data edge %d reused", d.ID)
		}
		seenE[d.ID] = true
		if m.Vtx[e.From] != d.From || m.Vtx[e.To] != d.To {
			return fmt.Errorf("match: edge %d endpoints inconsistent", qe)
		}
		if !q.MatchesData(query.EdgeID(qe), d) {
			return fmt.Errorf("match: edge %d label mismatch", qe)
		}
	}
	for _, p := range q.OrderPairs() {
		if m.Edges[p[0]].Time >= m.Edges[p[1]].Time {
			return fmt.Errorf("match: timing %d ≺ %d violated (%d ≥ %d)",
				p[0], p[1], m.Edges[p[0]].Time, m.Edges[p[1]].Time)
		}
	}
	return nil
}

// Key returns a canonical string identifying the match by its data edge
// assignment, usable for set comparison in tests.
func (m *Match) Key() string {
	parts := make([]string, 0, len(m.Edges))
	for qe := range m.Edges {
		if m.Edges[qe].ID != NoEdge {
			parts = append(parts, fmt.Sprintf("%d=%d", qe, m.Edges[qe].ID))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// String renders the match for diagnostics.
func (m *Match) String() string { return "{" + m.Key() + "}" }

// SpaceBytes estimates the resident size of an independently stored
// match, used by the Timing-IND space accounting.
func (m *Match) SpaceBytes() int64 {
	return int64(len(m.Vtx)*8 + len(m.Edges)*56 + 16)
}
