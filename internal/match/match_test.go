package match

import (
	"strings"
	"testing"
	"testing/quick"

	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// twoEdgePath builds the query a→b→c with (a→b) ≺ (b→c).
func twoEdgePath(t *testing.T) (*query.Query, graph.Label, graph.Label, graph.Label) {
	t.Helper()
	labels := graph.NewLabels()
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc)
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q, la, lb, lc
}

func TestBindAndComplete(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	m := New(q)
	d1 := graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 1}
	d2 := graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 2}

	if m.Complete(q) {
		t.Fatal("empty match must not be complete")
	}
	if !m.CanBind(q, 0, d1) {
		t.Fatal("d1 must bind to ε0")
	}
	m.Bind(q, 0, d1)
	if m.NumBoundEdges() != 1 {
		t.Errorf("want 1 bound edge, got %d", m.NumBoundEdges())
	}
	if !m.CanBind(q, 1, d2) {
		t.Fatal("d2 must bind to ε1")
	}
	m.Bind(q, 1, d2)
	if !m.Complete(q) {
		t.Fatal("match must be complete")
	}
	if err := m.Verify(q); err != nil {
		t.Fatalf("valid match failed verify: %v", err)
	}
}

func TestCanBindRejections(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	base := func() *Match {
		m := New(q)
		m.Bind(q, 0, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 5})
		return m
	}

	t.Run("label mismatch", func(t *testing.T) {
		m := New(q)
		if m.CanBind(q, 0, graph.Edge{ID: 9, From: 1, To: 2, FromLabel: lb, ToLabel: la}) {
			t.Error("wrong labels must not bind")
		}
	})
	t.Run("vertex inconsistency", func(t *testing.T) {
		m := base()
		// ε1 must start at the bound b-vertex 20.
		if m.CanBind(q, 1, graph.Edge{ID: 2, From: 21, To: 30, FromLabel: lb, ToLabel: lc, Time: 6}) {
			t.Error("must reject edge from an unbound b vertex")
		}
	})
	t.Run("injectivity", func(t *testing.T) {
		m := base()
		// c would map to data vertex 10, already the image of a.
		if m.CanBind(q, 1, graph.Edge{ID: 2, From: 20, To: 10, FromLabel: lb, ToLabel: lc, Time: 6}) {
			t.Error("must reject non-injective binding")
		}
	})
	t.Run("duplicate data edge", func(t *testing.T) {
		m := base()
		if m.CanBind(q, 0, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 5}) {
			t.Error("edge already bound at ε0")
		}
	})
	t.Run("timing violation", func(t *testing.T) {
		m := base()
		// ε0 ≺ ε1 but candidate is older than the bound ε0 edge.
		if m.CanBind(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 4}) {
			t.Error("must reject timing violation")
		}
		// Structural variant accepts it.
		if !m.CanBindStructural(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 4}) {
			t.Error("structural bind must ignore timing")
		}
	})
	t.Run("equal timestamps violate strict order", func(t *testing.T) {
		m := base()
		if m.CanBind(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 5}) {
			t.Error("equal timestamps must violate ≺")
		}
	})
}

func TestSelfLoopHandling(t *testing.T) {
	labels := graph.NewLabels()
	la := labels.Intern("a")
	b := query.NewBuilder()
	va := b.AddVertex(la)
	vb := b.AddVertex(la)
	b.AddEdge(va, va) // self loop
	b.AddEdge(va, vb)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(q)
	if m.CanBind(q, 0, graph.Edge{ID: 1, From: 1, To: 2, FromLabel: la, ToLabel: la}) {
		t.Error("query self-loop requires a data self-loop")
	}
	if !m.CanBind(q, 0, graph.Edge{ID: 1, From: 1, To: 1, FromLabel: la, ToLabel: la}) {
		t.Error("data self-loop must bind a query self-loop")
	}
	// Non-loop query edge must reject a data self-loop (injectivity).
	if m.CanBind(q, 1, graph.Edge{ID: 2, From: 3, To: 3, FromLabel: la, ToLabel: la}) {
		t.Error("distinct query vertices cannot share a data vertex")
	}
}

func TestUnbindRestoresState(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	m := New(q)
	d1 := graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 1}
	d2 := graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 2}
	m.Bind(q, 0, d1)
	m.Bind(q, 1, d2)
	m.Unbind(q, 1)
	if m.Vtx[2] != Unbound {
		t.Error("c must be unbound after removing ε1")
	}
	if m.Vtx[1] == Unbound {
		t.Error("b is still supported by ε0 and must stay bound")
	}
	m.Unbind(q, 0)
	for _, v := range m.Vtx {
		if v != Unbound {
			t.Error("all vertices must be unbound")
		}
	}
	if m.EdgeMask != 0 {
		t.Error("edge mask must be empty")
	}
}

func TestCompatibleAndMerge(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	left := New(q)
	left.Bind(q, 0, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 1})
	right := New(q)
	right.Bind(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 2})

	if !left.Compatible(q, right) {
		t.Fatal("compatible halves rejected")
	}
	merged := left.Merge(right)
	if !merged.Complete(q) {
		t.Fatal("merge must complete the match")
	}
	if err := merged.Verify(q); err != nil {
		t.Fatal(err)
	}

	t.Run("overlapping edge sets", func(t *testing.T) {
		other := New(q)
		other.Bind(q, 0, graph.Edge{ID: 3, From: 11, To: 21, FromLabel: la, ToLabel: lb, Time: 1})
		if left.Compatible(q, other) {
			t.Error("same query edge bound on both sides must conflict")
		}
	})
	t.Run("vertex disagreement", func(t *testing.T) {
		other := New(q)
		other.Bind(q, 1, graph.Edge{ID: 3, From: 21, To: 30, FromLabel: lb, ToLabel: lc, Time: 2})
		if left.Compatible(q, other) {
			t.Error("b bound to 20 vs 21 must conflict")
		}
	})
	t.Run("cross timing violation", func(t *testing.T) {
		other := New(q)
		other.Bind(q, 1, graph.Edge{ID: 3, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 1})
		if left.Compatible(q, other) {
			t.Error("ε0@1 ≺ ε1@1 must fail the strict order")
		}
	})
	t.Run("injectivity across sides", func(t *testing.T) {
		other := New(q)
		// c maps to 10 = image of a on the left side.
		other.Bind(q, 1, graph.Edge{ID: 3, From: 20, To: 10, FromLabel: lb, ToLabel: lc, Time: 2})
		if left.Compatible(q, other) {
			t.Error("cross-side injectivity must be enforced")
		}
	})
	t.Run("shared data edge", func(t *testing.T) {
		// Query with two parallel a→b edges, no order.
		labels := graph.NewLabels()
		xa, xb := labels.Intern("a"), labels.Intern("b")
		bb := query.NewBuilder()
		u, v := bb.AddVertex(xa), bb.AddVertex(xb)
		bb.AddEdge(u, v)
		bb.AddEdge(u, v)
		pq, err := bb.Build()
		if err != nil {
			t.Fatal(err)
		}
		d := graph.Edge{ID: 5, From: 1, To: 2, FromLabel: xa, ToLabel: xb, Time: 1}
		l := New(pq)
		l.Bind(pq, 0, d)
		r := New(pq)
		r.Bind(pq, 1, d)
		if l.Compatible(pq, r) {
			t.Error("one data edge cannot serve two query edges")
		}
	})
}

func TestVerifyCatchesCorruption(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	m := New(q)
	m.Bind(q, 0, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 5})
	m.Bind(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 6})
	if err := m.Verify(q); err != nil {
		t.Fatal(err)
	}
	// Corrupt the timing.
	m.Edges[1].Time = 4
	if err := m.Verify(q); err == nil || !strings.Contains(err.Error(), "timing") {
		t.Errorf("verify must catch timing violations, got %v", err)
	}
	m.Edges[1].Time = 6
	// Corrupt injectivity.
	m.Vtx[2] = 10
	if err := m.Verify(q); err == nil {
		t.Error("verify must catch duplicate vertex images")
	}
}

func TestKeyDeterministic(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	m1 := New(q)
	m1.Bind(q, 0, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 1})
	m1.Bind(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 2})
	m2 := New(q)
	m2.Bind(q, 1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 2})
	m2.Bind(q, 0, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 1})
	if m1.Key() != m2.Key() {
		t.Errorf("key must not depend on bind order: %s vs %s", m1.Key(), m2.Key())
	}
	if m1.String() != "{"+m1.Key()+"}" {
		t.Error("String must wrap Key")
	}
}

// TestCloneIndependence property-checks that mutating a clone never
// affects the original.
func TestCloneIndependence(t *testing.T) {
	q, la, lb, lc := twoEdgePath(t)
	f := func(fromRaw, toRaw uint8, timeRaw uint16) bool {
		m := New(q)
		d1 := graph.Edge{ID: 1, From: graph.VertexID(fromRaw), To: graph.VertexID(toRaw) + 300,
			FromLabel: la, ToLabel: lb, Time: graph.Timestamp(timeRaw)}
		m.Bind(q, 0, d1)
		c := m.Clone()
		c.Bind(q, 1, graph.Edge{ID: 2, From: d1.To, To: 999, FromLabel: lb, ToLabel: lc,
			Time: d1.Time + 1})
		return m.NumBoundEdges() == 1 && c.NumBoundEdges() == 2 &&
			m.Vtx[2] == Unbound && c.Vtx[2] == 999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
