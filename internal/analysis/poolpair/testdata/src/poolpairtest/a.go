// Fixture for the poolpair analyzer: every sync.Pool Get must be
// matched by a Put or an ownership transfer on every path out of the
// function.
package poolpairtest

import "sync"

type buf struct{ b []byte }

type store struct {
	pool  sync.Pool
	field *buf
}

func use(v any) { _ = v }

func (s *store) leak() {
	v := s.pool.Get() // want `s\.pool\.Get\(\) is not matched by a Put`
	use(v)
}

func (s *store) paired() {
	v := s.pool.Get()
	s.pool.Put(v)
}

func (s *store) deferredPut() {
	v := s.pool.Get()
	defer s.pool.Put(v)
	use(v)
}

func (s *store) earlyReturnLeaks(cond bool) {
	v := s.pool.Get() // want `s\.pool\.Get\(\) is not matched by a Put`
	if cond {
		return
	}
	s.pool.Put(v)
}

func (s *store) putOnBothArms(cond bool) {
	v := s.pool.Get()
	if cond {
		s.pool.Put(v)
	} else {
		s.pool.Put(v)
	}
}

func (s *store) putOnOneArm(cond bool) {
	v := s.pool.Get() // want `s\.pool\.Get\(\) is not matched by a Put`
	if cond {
		s.pool.Put(v)
	}
}

// transferByReturn is the engine getMatch/getScratch pattern: the
// caller takes over the Put obligation.
func (s *store) transferByReturn() *buf {
	v := s.pool.Get()
	b := v.(*buf)
	return b
}

// boolReturn: returning a value merely derived from the pooled object
// is not a transfer — the object itself is dropped.
func (s *store) boolReturn() bool {
	v := s.pool.Get() // want `s\.pool\.Get\(\) is not matched by a Put`
	return v != nil
}

// nilChecked: the nil branch of `Get(); v != nil` carries no
// obligation, and the non-nil branch transfers by return.
func (s *store) nilChecked() *buf {
	if v := s.pool.Get(); v != nil {
		return v.(*buf)
	}
	return &buf{}
}

func (s *store) transferByFieldStore() {
	v := s.pool.Get()
	s.field = v.(*buf)
}

func (s *store) transferBySend(ch chan any) {
	v := s.pool.Get()
	ch <- v
}

// capturedClosure is the explist Each pattern: the closure Gets into a
// variable captured from the enclosing function, which Puts it after
// the iteration.
func (s *store) capturedClosure(each func(func() bool)) {
	var v any
	each(func() bool {
		if v == nil {
			v = s.pool.Get()
		}
		return true
	})
	if v != nil {
		s.pool.Put(v)
	}
}

// leakInClosure: a function literal is its own scope — a Get confined
// to it must be resolved inside it.
func (s *store) leakInClosure(each func(func() bool)) {
	each(func() bool {
		v := s.pool.Get() // want `s\.pool\.Get\(\) is not matched by a Put`
		use(v)
		return true
	})
}

func (s *store) panicPath() {
	v := s.pool.Get()
	if v == nil {
		panic("pool returned nil")
	}
	s.pool.Put(v)
}

func (s *store) loopBalanced(n int) {
	for i := 0; i < n; i++ {
		v := s.pool.Get()
		s.pool.Put(v)
	}
}

func (s *store) waived() {
	v := s.pool.Get() //tsvet:allow poolpair — ownership handed to an external registry
	use(v)
}
