package poolpair_test

import (
	"testing"

	"timingsubg/internal/analysis/analysistest"
	"timingsubg/internal/analysis/poolpair"
)

func TestPoolpair(t *testing.T) {
	analysistest.Run(t, "testdata", poolpair.Analyzer, "poolpairtest")
}
