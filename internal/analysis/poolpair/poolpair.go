// Package poolpair checks that every (*sync.Pool).Get in a function is
// matched by a (*sync.Pool).Put on the same pool on every path out of
// the function — the allocation-pooling invariant of the expansion-list
// probe scratch buffers and the engine match pool (PR 5): a Get whose
// value is dropped on an early return silently degrades the pool into
// an allocator, which the ingest benchmarks read as GC churn, not as a
// test failure.
//
// Ownership transfers are exempt, because they move the Put obligation
// to the new owner:
//
//   - returning the pooled value (the getMatch/getScratch pattern —
//     the caller recycles via putMatch/putScratch);
//   - storing it into a struct field, map, slice element or global;
//   - sending it on a channel;
//   - assigning it to a variable captured from an enclosing function
//     (the explist Each pattern: the closure Gets into a captured
//     scratch pointer, the enclosing function Puts it).
//
// A Get guarded by `if v := pool.Get(); v != nil` carries no
// obligation on the nil branch — there is nothing to return to the
// pool. The analysis is per-function and branch-sensitive: states
// merge by union, so a Put on only one arm of an if still leaves the
// other arm's leak visible. Function literals are analyzed
// independently.
//
// Suppress deliberate exceptions with //tsvet:allow poolpair.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"timingsubg/internal/analysis"
)

// Analyzer is the poolpair checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "report sync.Pool Gets that are not Put back (or ownership-transferred) on every path out of the function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// getRecord tracks one outstanding pool Get: where it happened and
// which local variables currently hold the pooled value.
type getRecord struct {
	pos  token.Pos
	vars map[types.Object]bool
}

func (g *getRecord) clone() *getRecord {
	vars := make(map[types.Object]bool, len(g.vars))
	for k, v := range g.vars {
		vars[k] = v
	}
	return &getRecord{pos: g.pos, vars: vars}
}

// state maps pool-receiver expression text to its outstanding Get.
// One pool key tracks at most one live Get at a time; a second Get on
// the same key before the first is resolved keeps the first's
// obligation (both must be Put, but one diagnostic per key suffices).
type state map[string]*getRecord

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v.clone()
	}
	return out
}

// checker analyzes one function body.
type checker struct {
	pass *analysis.Pass
	body *ast.BlockStmt
	// deferredPut holds pool keys with a `defer pool.Put(...)` seen so
	// far on the current path.
	violations map[token.Pos]string
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, body: body, violations: make(map[token.Pos]string)}
	st, deferred, terminated := c.walk(body.List, make(state), make(map[string]bool))
	if !terminated {
		c.leak(st, deferred)
	}
	for pos, key := range c.violations {
		pass.Reportf(pos, "%s.Get() is not matched by a Put (or ownership transfer) on every path out of the function", key)
	}
}

// walk processes a statement list from st, returning the fall-through
// state, the deferred-Put set at exit, and whether the list
// terminates (return / branch / panic) instead of falling through.
func (c *checker) walk(list []ast.Stmt, st state, deferred map[string]bool) (state, map[string]bool, bool) {
	for _, s := range list {
		var term bool
		st, deferred, term = c.stmt(s, st, deferred)
		if term {
			return st, deferred, true
		}
	}
	return st, deferred, false
}

func cloneDeferred(d map[string]bool) map[string]bool {
	out := make(map[string]bool, len(d))
	for k, v := range d {
		out[k] = v
	}
	return out
}

func (c *checker) stmt(s ast.Stmt, st state, deferred map[string]bool) (state, map[string]bool, bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return c.walk(s.List, st, deferred)
	case *ast.ExprStmt:
		if isPanic(s.X) {
			return st, deferred, true
		}
		c.scanExpr(s.X, st)
	case *ast.AssignStmt:
		c.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.declSpec(vs, st)
				}
			}
		}
	case *ast.DeferStmt:
		if key, ok := c.poolCall(s.Call, "Put"); ok {
			deferred = cloneDeferred(deferred)
			deferred[key] = true
			delete(st, key)
		}
	case *ast.SendStmt:
		// Sending the pooled value transfers ownership to the receiver.
		c.dropMentioned(s.Value, st)
		c.scanExpr(s.Chan, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, st)
			c.dropReturned(e, st)
		}
		c.leak(st, deferred)
		return st, deferred, true
	case *ast.BranchStmt:
		return st, deferred, true
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.scanExpr(a, st)
		}
		c.scanExpr(s.Call.Fun, st)
	case *ast.IfStmt:
		var term bool
		st, deferred, term = c.stmt(s.Init, st, deferred)
		if term {
			return st, deferred, true
		}
		c.scanExpr(s.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		// `if v != nil` on a pooled value: the false side saw Get
		// return nil — no obligation there. And symmetrically.
		if key, eq := nilCheck(c.pass, s.Cond, st); key != "" {
			if eq {
				delete(thenSt, key)
			} else {
				delete(elseSt, key)
			}
		}
		thenOut, thenDef, thenTerm := c.walk(s.Body.List, thenSt, cloneDeferred(deferred))
		elseOut, elseDef, elseTerm := elseSt, cloneDeferred(deferred), false
		if s.Else != nil {
			elseOut, elseDef, elseTerm = c.stmt(s.Else, elseSt, elseDef)
		}
		switch {
		case thenTerm && elseTerm:
			return st, deferred, true
		case thenTerm:
			return elseOut, elseDef, false
		case elseTerm:
			return thenOut, thenDef, false
		default:
			return mergeStates(thenOut, elseOut), mergeDeferred(thenDef, elseDef), false
		}
	case *ast.ForStmt:
		var term bool
		st, deferred, term = c.stmt(s.Init, st, deferred)
		if term {
			return st, deferred, true
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, st)
		}
		bodyOut, _, bodyTerm := c.walk(s.Body.List, st.clone(), cloneDeferred(deferred))
		if !bodyTerm {
			st = mergeStates(st, bodyOut)
		}
	case *ast.RangeStmt:
		c.scanExpr(s.X, st)
		bodyOut, _, bodyTerm := c.walk(s.Body.List, st.clone(), cloneDeferred(deferred))
		if !bodyTerm {
			st = mergeStates(st, bodyOut)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branchy(s, st, deferred)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st, deferred)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, st)
	}
	return st, deferred, false
}

// branchy conservatively handles switch/type-switch/select: every
// clause runs from a copy of the incoming state, and the outgoing
// state is the union of the incoming state with every falling-through
// clause (a missing default means no clause may run at all).
func (c *checker) branchy(s ast.Stmt, st state, deferred map[string]bool) (state, map[string]bool, bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		var term bool
		st, deferred, term = c.stmt(s.Init, st, deferred)
		if term {
			return st, deferred, true
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		var term bool
		st, deferred, term = c.stmt(s.Init, st, deferred)
		if term {
			return st, deferred, true
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := st.clone()
	for _, cl := range body.List {
		var clauseBody []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, st)
			}
			clauseBody = cl.Body
		case *ast.CommClause:
			var term bool
			st2 := st.clone()
			st2, _, term = c.stmt(cl.Comm, st2, cloneDeferred(deferred))
			if !term {
				clOut, _, clTerm := c.walk(cl.Body, st2, cloneDeferred(deferred))
				if !clTerm {
					out = mergeStates(out, clOut)
				}
			}
			continue
		}
		clOut, _, clTerm := c.walk(clauseBody, st.clone(), cloneDeferred(deferred))
		if !clTerm {
			out = mergeStates(out, clOut)
		}
	}
	return out, deferred, false
}

// assign processes one assignment: new Gets, Puts buried in the RHS,
// alias propagation, and escape-by-store.
func (c *checker) assign(s *ast.AssignStmt, st state) {
	for _, e := range s.Rhs {
		c.scanExpr(e, st)
	}
	// Propagate aliases and detect escapes, pairing LHS with RHS when
	// the counts line up (the only form pools occur in here).
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			c.assignOne(lhs, s.Rhs[i], st)
		}
	} else if len(s.Rhs) == 1 {
		for _, lhs := range s.Lhs {
			c.assignOne(lhs, s.Rhs[0], st)
		}
	}
}

func (c *checker) assignOne(lhs, rhs ast.Expr, st state) {
	for key, rec := range st {
		if !mentionsVar(c.pass, rhs, rec.vars) && !isGetOf(c.pass, rhs, key) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := c.pass.TypesInfo.Defs[l]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[l]
			}
			if obj == nil {
				continue
			}
			// Assignment to a variable declared outside this function
			// literal hands the value to the enclosing scope.
			if obj.Pos().IsValid() && (obj.Pos() < c.body.Pos() || obj.Pos() > c.body.End()) {
				delete(st, key)
				continue
			}
			rec.vars[obj] = true
		default:
			// Selector, index, star expression: stored into a struct,
			// slice, map or pointee — ownership escapes unless the
			// destination's base is itself the tracked value (filling a
			// field of the pooled object keeps the obligation).
			if base := baseIdentObj(c.pass, l); base != nil && rec.vars[base] {
				continue
			}
			delete(st, key)
		}
	}
}

func (c *checker) declSpec(vs *ast.ValueSpec, st state) {
	for _, e := range vs.Values {
		c.scanExpr(e, st)
	}
	if len(vs.Names) == len(vs.Values) {
		for i, name := range vs.Names {
			c.assignOne(name, vs.Values[i], st)
		}
	}
}

// scanExpr records Gets and resolves Puts found anywhere inside e,
// skipping nested function literals (checked independently).
func (c *checker) scanExpr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(c.pass, n.Body)
			return false
		case *ast.CallExpr:
			if key, ok := c.poolCall(n, "Get"); ok {
				if _, exists := st[key]; !exists {
					st[key] = &getRecord{pos: n.Pos(), vars: make(map[types.Object]bool)}
				}
			}
			if key, ok := c.poolCall(n, "Put"); ok {
				delete(st, key)
			}
		}
		return true
	})
}

// poolCall reports whether call is (*sync.Pool).<method> and returns
// the receiver expression text as the pool key.
func (c *checker) poolCall(call *ast.CallExpr, method string) (string, bool) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if !analysis.IsMethodOn(fn, "sync", "Pool", method) {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// dropMentioned removes the obligation of every pool whose tracked
// value appears in e — the value's ownership has been transferred.
func (c *checker) dropMentioned(e ast.Expr, st state) {
	for key, rec := range st {
		if mentionsVar(c.pass, e, rec.vars) || isGetOf(c.pass, e, key) {
			delete(st, key)
		}
	}
}

// dropReturned removes obligations whose value is itself the returned
// expression (`return v`, `return v.(*T)`, `return &v`, or directly
// `return pool.Get()`). Returning something merely derived from the
// value — `return v != nil`, `return len(v.b)` — is not a transfer:
// the pooled object is still dropped on the floor.
func (c *checker) dropReturned(e ast.Expr, st state) {
	for key, rec := range st {
		if isValueOf(c.pass, e, rec.vars) || isGetOf(c.pass, e, key) {
			delete(st, key)
		}
	}
}

// isValueOf reports whether e IS one of the tracked variables, up to
// parens, type assertions/conversions-by-assert and address-of.
func isValueOf(pass *analysis.Pass, e ast.Expr, vars map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && vars[obj]
	case *ast.TypeAssertExpr:
		return isValueOf(pass, e.X, vars)
	case *ast.UnaryExpr:
		return e.Op == token.AND && isValueOf(pass, e.X, vars)
	case *ast.StarExpr:
		return isValueOf(pass, e.X, vars)
	}
	return false
}

// leak records a violation for every outstanding Get not covered by a
// deferred Put.
func (c *checker) leak(st state, deferred map[string]bool) {
	for key, rec := range st {
		if deferred[key] {
			continue
		}
		c.violations[rec.pos] = key
	}
}

// mergeStates unions outstanding obligations from two fall-through
// branches (a leak on either branch stays visible).
func mergeStates(a, b state) state {
	out := a.clone()
	for key, rec := range b {
		if have, ok := out[key]; ok {
			for v := range rec.vars {
				have.vars[v] = true
			}
			continue
		}
		out[key] = rec.clone()
	}
	return out
}

func mergeDeferred(a, b map[string]bool) map[string]bool {
	// A Put deferred on only one branch does not cover the other:
	// intersect.
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// nilCheck recognizes `x == nil` / `x != nil` where x holds a tracked
// pooled value, returning the pool key and whether the comparison is
// == (true side is the nil side).
func nilCheck(pass *analysis.Pass, cond ast.Expr, st state) (key string, eq bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", false
	}
	var other ast.Expr
	if isNil(pass, be.X) {
		other = be.Y
	} else if isNil(pass, be.Y) {
		other = be.X
	} else {
		return "", false
	}
	for k, rec := range st {
		if mentionsVar(pass, other, rec.vars) {
			return k, be.Op == token.EQL
		}
	}
	return "", false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilConst
}

// mentionsVar reports whether e uses any of the tracked variables.
func mentionsVar(pass *analysis.Pass, e ast.Expr, vars map[types.Object]bool) bool {
	if e == nil || len(vars) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && vars[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isGetOf reports whether e is (possibly a type assertion or parens
// around) key.Get() — covers `return pool.Get().(*T)` transferring the
// fresh value directly.
func isGetOf(pass *analysis.Pass, e ast.Expr, key string) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return isGetOf(pass, e.X, key)
	case *ast.CallExpr:
		fn := analysis.Callee(pass.TypesInfo, e)
		if !analysis.IsMethodOn(fn, "sync", "Pool", "Get") {
			return false
		}
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		return ok && types.ExprString(sel.X) == key
	}
	return false
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// baseIdentObj returns the object of the base identifier of a
// selector/index/star chain (`s.f.g[i]` → s), or nil.
func baseIdentObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		default:
			return nil
		}
	}
}
