package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (typically "./...") from dir, type-checks
// every matched package against export data compiled by the go tool,
// and returns the Program. It works fully offline: the go toolchain
// compiles dependencies into the build cache and hands back export
// data paths, so no pre-built $GOROOT/pkg archives and no network
// are required.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	var errs []error
	for _, p := range targets {
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	if len(errs) > 0 {
		return prog, errors.Join(errs...)
	}
	return prog, nil
}

// checkPackage parses and type-checks one package's listed files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	name := tpkg.Name()
	return &Package{Path: path, Name: name, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDirs loads an explicit, dependency-ordered list of package
// directories — the analysistest entry point, used for fixture trees
// under testdata that `go list ./...` deliberately ignores. Each
// entry maps an import path to its directory; fixture packages may
// import earlier entries by those paths, and anything else resolves
// through export data for the packages' external imports (stdlib,
// or in-module packages reachable from modDir).
func LoadDirs(modDir string, pkgs []DirPkg) (*Program, error) {
	fset := token.NewFileSet()

	// Parse everything first so external imports can be collected and
	// resolved with a single go list invocation.
	type parsed struct {
		DirPkg
		files []*ast.File
	}
	local := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		local[p.Path] = true
	}
	var all []parsed
	external := make(map[string]bool)
	for _, p := range pkgs {
		entries, err := os.ReadDir(p.Dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !local[path] {
					external[path] = true
				}
			}
		}
		all = append(all, parsed{DirPkg: p, files: files})
	}

	exports := make(map[string]string)
	if len(external) > 0 {
		paths := make([]string, 0, len(external))
		for p := range external {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{
			"list", "-export", "-json=ImportPath,Export", "-deps",
		}, paths...)
		cmd := exec.Command("go", args...)
		cmd.Dir = modDir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	chain := &chainImporter{local: make(map[string]*types.Package), next: gc}

	prog := &Program{Fset: fset}
	for _, p := range all {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: chain}
		tpkg, err := conf.Check(p.Path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.Path, err)
		}
		chain.local[p.Path] = tpkg
		prog.Packages = append(prog.Packages, &Package{
			Path: p.Path, Name: tpkg.Name(), Files: p.files, Types: tpkg, Info: info,
		})
	}
	return prog, nil
}

// DirPkg names one fixture package for LoadDirs.
type DirPkg struct {
	Path string // import path fixture files use
	Dir  string // directory holding its .go files
}

// chainImporter resolves already-type-checked local packages first and
// defers everything else to the export-data importer.
type chainImporter struct {
	local map[string]*types.Package
	next  types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.next.Import(path)
}
