package hotclock_test

import (
	"testing"

	"timingsubg/internal/analysis/analysistest"
	"timingsubg/internal/analysis/hotclock"
)

func TestHotclock(t *testing.T) {
	analysistest.Run(t, "testdata", hotclock.Analyzer, "core", "coldpkg")
}
