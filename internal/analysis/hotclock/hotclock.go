// Package hotclock forbids raw wallclock reads — time.Now() and
// time.Since() — in the ingest hot-path packages internal/core,
// internal/explist and internal/mstree.
//
// This is the PR 6 sampling discipline made mechanical: a clock read
// costs tens of nanoseconds, comparable to an indexed insert itself,
// so timing every hot-path call would be the dominant cost of having
// metrics on. Clock reads on those paths must therefore go through
// the sampled stats helpers (stats.SampleStart /
// (*stats.AtomicHistogram).ObserveSince), whose call sites make the
// 1-in-N sampling stride auditable, or sit inside an explicit
// `if ...DisableMetrics...` gate.
//
// Suppress a deliberate read with //tsvet:allow hotclock.
package hotclock

import (
	"go/ast"
	"strings"

	"timingsubg/internal/analysis"
)

// Analyzer is the hotclock checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotclock",
	Doc:  "report raw time.Now()/time.Since() in hot-path packages (internal/core, internal/explist, internal/mstree); clock reads there must flow through the sampled stats helpers or a DisableMetrics gate",
	Run:  run,
}

// hotSuffixes are the package paths under the invariant. Matching is
// by path suffix so both the real module paths and short fixture
// paths (package "core" under analysistest) are covered.
var hotSuffixes = []string{"internal/core", "internal/explist", "internal/mstree", "core", "explist", "mstree"}

func hot(path string) bool {
	for _, s := range hotSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !hot(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		check(pass, f, false)
	}
	return nil
}

// check walks n reporting raw clock reads; gated is true inside the
// body of an if statement whose condition mentions DisableMetrics —
// the sanctioned ablation gate, under which a clock read is by
// definition not on the metrics-off hot path.
func check(pass *analysis.Pass, n ast.Node, gated bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if mentionsDisableMetrics(n.Cond) {
				if n.Init != nil {
					check(pass, n.Init, gated)
				}
				check(pass, n.Body, true)
				if n.Else != nil {
					check(pass, n.Else, true)
				}
				return false
			}
			return true
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if gated {
				return true
			}
			switch {
			case analysis.IsFunc(fn, "time", "Now"):
				pass.Reportf(n.Pos(), "raw time.Now() in hot-path package %s; use stats.SampleStart/ObserveSince or gate on DisableMetrics", pass.Pkg.Path())
			case analysis.IsFunc(fn, "time", "Since"):
				pass.Reportf(n.Pos(), "raw time.Since() in hot-path package %s; use (*stats.AtomicHistogram).ObserveSince or gate on DisableMetrics", pass.Pkg.Path())
			}
		}
		return true
	})
}

// mentionsDisableMetrics reports whether the condition references an
// identifier or field named DisableMetrics.
func mentionsDisableMetrics(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "DisableMetrics" {
			found = true
			return false
		}
		return !found
	})
	return found
}
