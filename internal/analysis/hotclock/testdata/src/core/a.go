// Fixture for the hotclock analyzer: this package's import path ends
// in "core", so it is a hot-path package — raw wallclock reads must be
// reported unless gated on DisableMetrics or explicitly waived.
package core

import "time"

type cfg struct{ DisableMetrics bool }

func rawNow() time.Time {
	return time.Now() // want `raw time\.Now\(\) in hot-path package core`
}

func rawSince(t time.Time) time.Duration {
	return time.Since(t) // want `raw time\.Since\(\) in hot-path package core`
}

// gated: reads under an if whose condition mentions DisableMetrics are
// the sanctioned ablation gate — by definition off the metrics-off hot
// path. Both branches of the gate are exempt.
func gated(c cfg) time.Duration {
	if !c.DisableMetrics {
		t := time.Now()
		return time.Since(t)
	} else {
		_ = time.Now()
	}
	return 0
}

func waived() time.Time {
	return time.Now() //tsvet:allow hotclock — one-time startup stamp, not on the ingest path
}

// nonClockTimeFuncs: only Now and Since are wallclock reads.
func nonClockTimeFuncs() {
	_ = time.Unix(0, 0)
	_ = time.Duration(5) * time.Millisecond
}

// The batch-expiry shape (engine.ProcessBatch / Process): one sampled
// clock read brackets the whole slide's eviction sweep. Declaring the
// zero time.Time is not a clock read, and the sanctioned sampled
// helpers (stats.SampleStart / ObserveSince, modeled by the func
// params here) are calls into another package — nothing to report.
// A raw read slipped inside the sweep loop is still caught: timing
// per expired edge is exactly the per-call overhead the sampling
// discipline exists to prevent.
func processBatchShape(sampled bool, expired []int, sampleStart func() time.Time, observeSince func(time.Time)) {
	var t time.Time
	if sampled {
		t = sampleStart()
	}
	for range expired {
		_ = time.Now() // want `raw time\.Now\(\) in hot-path package core`
	}
	if sampled {
		observeSince(t)
	}
}

// gatedBatch: a whole-slide timed sweep under the DisableMetrics gate
// is the sanctioned ablation shape — both reads are exempt.
func gatedBatch(c cfg, expired []int) time.Duration {
	if !c.DisableMetrics {
		t := time.Now()
		for range expired {
			_ = t
		}
		return time.Since(t)
	}
	return 0
}
