// Fixture for the hotclock analyzer: this package's import path ends
// in "core", so it is a hot-path package — raw wallclock reads must be
// reported unless gated on DisableMetrics or explicitly waived.
package core

import "time"

type cfg struct{ DisableMetrics bool }

func rawNow() time.Time {
	return time.Now() // want `raw time\.Now\(\) in hot-path package core`
}

func rawSince(t time.Time) time.Duration {
	return time.Since(t) // want `raw time\.Since\(\) in hot-path package core`
}

// gated: reads under an if whose condition mentions DisableMetrics are
// the sanctioned ablation gate — by definition off the metrics-off hot
// path. Both branches of the gate are exempt.
func gated(c cfg) time.Duration {
	if !c.DisableMetrics {
		t := time.Now()
		return time.Since(t)
	} else {
		_ = time.Now()
	}
	return 0
}

func waived() time.Time {
	return time.Now() //tsvet:allow hotclock — one-time startup stamp, not on the ingest path
}

// nonClockTimeFuncs: only Now and Since are wallclock reads.
func nonClockTimeFuncs() {
	_ = time.Unix(0, 0)
	_ = time.Duration(5) * time.Millisecond
}
