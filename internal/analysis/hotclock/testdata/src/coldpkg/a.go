// Fixture for the hotclock analyzer: coldpkg is not a hot-path
// package, so raw clock reads here are fine.
package coldpkg

import "time"

func FreeClock() time.Duration {
	t := time.Now()
	return time.Since(t)
}
