// Package statswire cross-checks the four layers of the metrics plane
// that PRs 6–8 each had to hand-audit: a counter added to the engine's
// unified Stats snapshot is only useful if it actually reaches
// operators, which means the client wire struct, and — for pipeline
// stages — the Prometheus stage-family list. Silent drift between
// those layers is the failure mode this analyzer ends: the field
// compiles, the JSON marshals, and the metric just never appears on
// /stats or /metrics.
//
// It is a whole-program analyzer. The four anchor declarations are
// found structurally, so fixtures can model the topology with small
// stand-in packages:
//
//   - the stats package: declares the stage-histogram struct Pipeline;
//   - the engine root: declares the unified snapshot structs Stats and
//     StageStats;
//   - the client wire package: declares EngineStats (and its own
//     StageStats mirror);
//   - the Prometheus exposition site: declares the stage family list
//     `var stageOrder = []string{...}`.
//
// Checks, each reported at the drifting declaration:
//
//  1. every root Stats field has a same-named field with the same JSON
//     name in the wire EngineStats;
//  2. every root StageStats stage has a same-named field with the same
//     JSON name in the wire StageStats;
//  3. the stage JSON names and the stageOrder exposition list agree
//     exactly, in both directions (a stage missing from the list never
//     reaches /metrics; a stale list entry exposes an empty family);
//  4. every stats.Pipeline histogram field is read somewhere in the
//     engine root package — an unread stage histogram is collected but
//     never snapshotted into Stats.Stages.
//
// Suppress a deliberately engine-internal field with
// //tsvet:allow statswire on its declaration line.
package statswire

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"timingsubg/internal/analysis"
)

// Analyzer is the statswire checker.
var Analyzer = &analysis.Analyzer{
	Name:         "statswire",
	Doc:          "cross-check that every unified-Stats / StageStats / stats.Pipeline metric is surfaced through the client wire structs and the Prometheus stage family list",
	Run:          run,
	WholeProgram: true,
}

// field is one struct field's identity: Go name, JSON name, position.
type field struct {
	name string
	json string
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	var (
		rootPkg    *analysis.Package
		rootStats  []field
		rootStages []field
		wireStats  []field
		wireStages []field
		statsPkg   *analysis.Package
		pipeline   []field
		orderList  []stringLit
	)
	for _, pkg := range pass.Program.Packages {
		stats := structFields(pkg, "Stats")
		stages := structFields(pkg, "StageStats")
		engine := structFields(pkg, "EngineStats")
		pipe := structFields(pkg, "Pipeline")
		if stats != nil && stages != nil && engine == nil {
			rootPkg, rootStats, rootStages = pkg, stats, stages
		}
		if engine != nil {
			wireStats = engine
			if stages != nil {
				wireStages = stages
			}
		}
		if pipe != nil {
			statsPkg, pipeline = pkg, pipe
		}
		if lits := stringListVar(pkg, "stageOrder"); lits != nil {
			orderList = lits
		}
	}

	// Check 1+2: root snapshot structs against their wire mirrors.
	if rootStats != nil && wireStats != nil {
		checkMirror(pass, rootStats, wireStats, "Stats", "EngineStats")
	}
	if rootStages != nil && wireStages != nil {
		checkMirror(pass, rootStages, wireStages, "StageStats", "the wire StageStats")
	}

	// Check 3: stage JSON names ⇔ Prometheus stage family list.
	if rootStages != nil && orderList != nil {
		inOrder := make(map[string]bool, len(orderList))
		for _, l := range orderList {
			inOrder[l.val] = true
		}
		stageJSON := make(map[string]bool, len(rootStages))
		for _, f := range rootStages {
			stageJSON[f.json] = true
			if !inOrder[f.json] {
				pass.Reportf(f.pos, "stage %s (json %q) is missing from the Prometheus stageOrder family list — it will never be exposed on /metrics", f.name, f.json)
			}
		}
		for _, l := range orderList {
			if !stageJSON[l.val] {
				pass.Reportf(l.pos, "stageOrder entry %q matches no StageStats stage — it exposes a permanently empty family", l.val)
			}
		}
	}

	// Check 4: every Pipeline stage histogram is read by the root
	// package (snapshotted into Stats.Stages).
	if pipeline != nil && rootPkg != nil && statsPkg != nil {
		used := fieldsUsedFrom(rootPkg, statsPkg.Types.Path(), "Pipeline")
		for _, f := range pipeline {
			if !used[f.name] {
				pass.Reportf(f.pos, "stats.Pipeline stage %s is never read by the engine root package — it is collected but never snapshotted", f.name)
			}
		}
	}
	return nil
}

// structFields returns the flattened field list of the named struct
// type declared in pkg, or nil when pkg doesn't declare it.
func structFields(pkg *analysis.Package, typeName string) []field {
	var out []field
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					jsonName := ""
					if fld.Tag != nil {
						tag := strings.Trim(fld.Tag.Value, "`")
						jsonName = strings.Split(reflect.StructTag(tag).Get("json"), ",")[0]
					}
					for _, name := range fld.Names {
						out = append(out, field{name: name.Name, json: jsonName, pos: name.Pos()})
					}
				}
				if out == nil {
					out = []field{} // declared, but empty
				}
			}
		}
	}
	return out
}

// stringLit is one element of a []string composite literal.
type stringLit struct {
	val string
	pos token.Pos
}

// stringListVar finds `var <name> = []string{...}` in pkg and returns
// its elements.
func stringListVar(pkg *analysis.Package, name string) []stringLit {
	var out []stringLit
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != name || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, el := range cl.Elts {
					bl, ok := el.(*ast.BasicLit)
					if !ok || bl.Kind != token.STRING {
						continue
					}
					out = append(out, stringLit{val: strings.Trim(bl.Value, `"`), pos: bl.Pos()})
				}
				if out == nil {
					out = []stringLit{}
				}
			}
		}
	}
	return out
}

// checkMirror reports every src field without a name+JSON counterpart
// in dst.
func checkMirror(pass *analysis.Pass, src, dst []field, srcName, dstName string) {
	byName := make(map[string]field, len(dst))
	for _, f := range dst {
		byName[f.name] = f
	}
	for _, f := range src {
		d, ok := byName[f.name]
		if !ok {
			pass.Reportf(f.pos, "%s field %s (json %q) has no counterpart in %s — it is invisible to clients", srcName, f.name, f.json, dstName)
			continue
		}
		if d.json != f.json {
			pass.Reportf(f.pos, "%s field %s marshals as %q but %s marshals it as %q — the wire contract has drifted", srcName, f.name, f.json, dstName, d.json)
		}
	}
}

// fieldsUsedFrom collects the names of fields of <fromPkgPath>.<typeName>
// selected anywhere in pkg.
func fieldsUsedFrom(pkg *analysis.Package, fromPkgPath, typeName string) map[string]bool {
	used := make(map[string]bool)
	for _, selection := range pkg.Info.Selections {
		obj := selection.Obj()
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != fromPkgPath {
			continue
		}
		if named := derefNamed(selection.Recv()); named != nil && named.Obj().Name() == typeName {
			used[obj.Name()] = true
		}
	}
	return used
}

// derefNamed unwraps one pointer level and returns the named type, or
// nil.
func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
