// Fixture stats package for the statswire analyzer: declares the
// stage-histogram struct Pipeline (the structural anchor for the
// collection layer). Orphan is collected but never read by the root
// package's snapshot function — the check-4 regression.
package stats

type hist struct{ n uint64 }

func (h *hist) Observe(v uint64) { h.n += v }

// Pipeline mirrors the real internal/stats.Pipeline shape: one
// histogram per ingest stage.
type Pipeline struct {
	Ingest hist
	Join   hist
	Orphan hist // want `stats\.Pipeline stage Orphan is never read by the engine root package`
}
