// Fixture Prometheus exposition package for the statswire analyzer:
// declares the stage family list anchor. "expiry" is absent (reported
// at the root StageStats field) and "stale" matches no stage — the
// check-3 regressions.
package prom

var stageOrder = []string{
	"ingest",
	"join",
	"hidden",
	"stale", // want `stageOrder entry "stale" matches no StageStats stage`
}

// Exposed keeps the list referenced, mirroring the real PromWriter's
// iteration over its family list.
func Exposed() int { return len(stageOrder) }
