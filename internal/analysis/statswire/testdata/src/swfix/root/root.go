// Fixture engine-root package for the statswire analyzer: declares
// the unified Stats and StageStats snapshot structs (and no
// EngineStats, which is what distinguishes the root anchor from the
// wire anchor). The want comments here are the wire-drift regression:
// a Stats field dropped from the wire struct, a field whose JSON name
// drifted, and a stage missing from the Prometheus family list.
package root

import "swfix/stats"

type LatencySnapshot struct{ Count uint64 }

type StageStats struct {
	Ingest LatencySnapshot `json:"ingest"`
	Join   LatencySnapshot `json:"join"`
	Expiry LatencySnapshot `json:"expiry"` // want `stage Expiry \(json "expiry"\) is missing from the Prometheus stageOrder`
	Hidden LatencySnapshot `json:"hidden"`
}

type Stats struct {
	Matches  int64       `json:"matches"`
	Fed      int64       `json:"fed"`
	Dropped  int64       `json:"dropped"`   // want `Stats field Dropped \(json "dropped"\) has no counterpart in EngineStats`
	Renamed  int64       `json:"renamed_a"` // want `Stats field Renamed marshals as "renamed_a" but EngineStats marshals it as "renamed_wire"`
	Internal int64       `json:"internal"`  //tsvet:allow statswire — deliberately engine-internal gauge
	Stages   *StageStats `json:"stages"`
}

// snapshot reads the Pipeline stage histograms into the unified
// snapshot — every Pipeline field this function does not touch is an
// unread stage (the stats fixture's Orphan).
func snapshot(p *stats.Pipeline) Stats {
	var st Stats
	ingest := p.Ingest
	join := p.Join
	_, _ = ingest, join
	st.Stages = &StageStats{}
	return st
}
