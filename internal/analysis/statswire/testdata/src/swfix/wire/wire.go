// Fixture wire package for the statswire analyzer: declares the
// client-facing EngineStats (the structural anchor for the wire
// layer) and its StageStats mirror. It is missing the root's Dropped
// counter and marshals Renamed under a drifted JSON name — the
// check-1 regressions, reported at the root declarations.
package wire

type LatencySnapshot struct{ Count uint64 }

type StageStats struct {
	Ingest LatencySnapshot `json:"ingest"`
	Join   LatencySnapshot `json:"join"`
	Expiry LatencySnapshot `json:"expiry"`
	Hidden LatencySnapshot `json:"hidden"`
}

type EngineStats struct {
	Matches int64       `json:"matches"`
	Fed     int64       `json:"fed"`
	Renamed int64       `json:"renamed_wire"`
	Stages  *StageStats `json:"stages"`
}
