package statswire_test

import (
	"testing"

	"timingsubg/internal/analysis/analysistest"
	"timingsubg/internal/analysis/statswire"
)

func TestStatswire(t *testing.T) {
	analysistest.Run(t, "testdata", statswire.Analyzer,
		"swfix/stats", "swfix/wire", "swfix/prom", "swfix/root")
}
