package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Run executes every analyzer over the program: per-package analyzers
// once per package, whole-program analyzers once. Diagnostics come
// back position-sorted with //tsvet:allow suppressions already
// applied.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	var errs []error
	for _, a := range analyzers {
		if a.WholeProgram {
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Program: prog, report: collect}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("%s: %v", a.Name, err))
			}
			continue
		}
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer: a, Fset: prog.Fset, Program: prog,
				Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info,
				report: collect,
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("%s (%s): %v", a.Name, pkg.Path, err))
			}
		}
	}
	diags = suppress(prog, diags)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, errors.Join(errs...)
}

// allowPrefix introduces a suppression comment: the analyzer names it
// lists are waived on the comment's own line and the line below it,
// so both trailing and standalone-above placements work. Anything
// after the names is the human justification.
const allowPrefix = "tsvet:allow"

// suppress drops diagnostics waived by //tsvet:allow comments.
func suppress(prog *Program, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// allowed[file][line] = set of analyzer names waived on that line.
	allowed := make(map[string]map[int]map[string]bool)
	mark := func(file string, line int, names []string) {
		lines := allowed[file]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			allowed[file] = lines
		}
		for _, l := range []int{line, line + 1} {
			set := lines[l]
			if set == nil {
				set = make(map[string]bool)
				lines[l] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names := parseAllow(c.Text)
					if len(names) == 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					mark(pos.Filename, pos.Line, names)
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if allowed[pos.Filename][pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseAllow extracts the waived analyzer names from one comment, or
// nil when the comment is not a tsvet:allow directive.
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
