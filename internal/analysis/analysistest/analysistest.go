// Package analysistest runs an analyzer over fixture packages under a
// testdata tree and checks its diagnostics against expectations
// written in the fixtures themselves, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	f.Sync() // want `blocking call`
//
// Each `want` comment holds one or more Go-quoted regular expressions;
// every diagnostic reported on that line must match one (in order of
// appearance), and every expectation must be consumed. Lines carrying
// a //tsvet:allow directive assert the opposite — the framework-level
// suppression must make the diagnostic disappear — simply by carrying
// no want comment.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"timingsubg/internal/analysis"
)

// Run loads the named fixture packages from root/src/<path> in order
// (earlier packages are importable by later ones), runs the analyzer,
// and reports mismatches between diagnostics and want expectations as
// test errors.
func Run(t *testing.T, root string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs := make([]analysis.DirPkg, len(paths))
	for i, p := range paths {
		pkgs[i] = analysis.DirPkg{Path: p, Dir: filepath.Join(root, "src", filepath.FromSlash(p))}
	}
	prog, err := analysis.LoadDirs(root, pkgs)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		key := lineKey{file: pos.Filename, line: pos.Line}
		ws := wants[key]
		matched := false
		for i, w := range ws {
			if !w.used && w.re.MatchString(d.Message) {
				ws[i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE matches the quoted patterns of a want comment: Go strings or
// backquoted rawstrings.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, prog *analysis.Program) map[lineKey][]want {
	t.Helper()
	wants := make(map[lineKey][]want)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
						pat, err := unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						key := lineKey{file: pos.Filename, line: pos.Line}
						wants[key] = append(wants[key], want{re: re})
					}
				}
			}
		}
	}
	return wants
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("unquote: %v", err)
	}
	return s, nil
}
