// Package analysis is a self-contained static-analysis framework for
// the repo's own invariant checkers (cmd/tsvet). It mirrors the shape
// of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic —
// but is built entirely on the standard library's go/ast, go/types
// and go/importer, with packages loaded offline through export data
// produced by `go list -export` (no module downloads, no third-party
// dependency).
//
// Two kinds of analyzers exist:
//
//   - Per-package analyzers (the default): Run is called once per
//     loaded package with that package's syntax and type information.
//   - Whole-program analyzers (WholeProgram: true): Run is called
//     exactly once with Pass.Files/Pkg nil; the analyzer reaches
//     every loaded package through Pass.Program. The statswire
//     checker uses this to cross-reference struct fields and metric
//     family lists that live in different packages.
//
// Diagnostics are suppressible at the offending line (or the line
// directly above it) with a
//
//	//tsvet:allow <name>[,<name>...] [— justification]
//
// comment naming the analyzer(s) being waived; run.go applies the
// suppression uniformly for cmd/tsvet and the analysistest harness,
// so fixtures exercise the escape hatch exactly as production code
// does.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tsvet:allow suppression comments.
	Name string
	// Doc is the one-paragraph invariant statement shown by
	// `tsvet -help`.
	Doc string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(*Pass) error
	// WholeProgram marks analyzers that need every loaded package at
	// once; they run once per Program instead of once per package.
	WholeProgram bool
}

// A Pass carries one analyzer invocation's view of the code.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files and Pkg/TypesInfo describe the package under analysis;
	// they are nil for WholeProgram analyzers, which use Program.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program is the full set of loaded packages.
	Program *Program

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Program is the unit tsvet analyzes: every package matched by the
// load patterns, sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Callee resolves the called function or method object of a call
// expression, or nil when the callee is not a named function (builtin,
// function-typed variable, type conversion). It sees through both
// plain identifiers and selector calls, including methods promoted
// from embedded fields.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsMethodOn reports whether fn is the named method on the named type
// of the named package (receiver pointerness ignored), e.g.
// IsMethodOn(fn, "sync", "Mutex", "Lock").
func IsMethodOn(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// IsFunc reports whether fn is the named package-level function, e.g.
// IsFunc(fn, "time", "Sleep").
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
