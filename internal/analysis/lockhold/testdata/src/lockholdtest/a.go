// Fixture for the lockhold analyzer: blocking calls under a held
// sync.Mutex / sync.RWMutex must be reported; the same calls outside
// the critical section, in non-blocking polls, in spawned goroutines,
// or under a //tsvet:allow waiver must not.
package lockholdtest

import (
	"net"
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	f  *os.File
	ch chan int
}

func (g *guarded) syncUnderLock() {
	g.mu.Lock()
	g.f.Sync() // want `call to \(\*os\.File\)\.Sync while "g\.mu" is held`
	g.mu.Unlock()
}

func (g *guarded) syncOutsideLock() {
	g.mu.Lock()
	g.mu.Unlock()
	g.f.Sync()
}

// groupCommitShape is the WAL group-commit protocol: snapshot under
// the lock, sync outside it, relock to publish. No diagnostics.
func (g *guarded) groupCommitShape() error {
	g.mu.Lock()
	g.mu.Unlock()
	err := g.f.Sync()
	g.mu.Lock()
	defer g.mu.Unlock()
	return err
}

// deferHolds: a deferred Unlock keeps the lock held for the remainder
// of the function body.
func (g *guarded) deferHolds() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while "g\.mu" is held`
}

func (g *guarded) chanOps() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while "g\.mu" is held`
	<-g.ch    // want `channel receive while "g\.mu" is held`
	g.mu.Unlock()
	g.ch <- 2
}

// nonBlockingSelect: a select with a default clause is a poll, not a
// block — its comm-clause channel operations are exempt.
func (g *guarded) nonBlockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		_ = v
	default:
	}
}

func (g *guarded) blockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `blocking select while "g\.mu" is held`
	case v := <-g.ch:
		_ = v
	}
}

func rlockCountsToo() {
	var rw sync.RWMutex
	rw.RLock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while "rw" is held`
	rw.RUnlock()
}

func (g *guarded) netUnderLock(c net.Conn) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c.Write(nil) // want `call to net\.Write while "g\.mu" is held`
}

// goroutineDoesNotInherit: the spawned body is analyzed as its own
// function; the race between the goroutine and the critical section
// is the race detector's jurisdiction, not lockhold's.
func (g *guarded) goroutineDoesNotInherit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.f.Sync()
	}()
}

// waived: both the trailing and the line-above //tsvet:allow forms
// suppress the diagnostic.
func (g *guarded) waived() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- 1 //tsvet:allow lockhold — deliberate backpressure under the subscription mutex
	//tsvet:allow lockhold — second form: directive on the line above
	g.ch <- 2
}
