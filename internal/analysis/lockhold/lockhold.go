// Package lockhold forbids blocking calls while a sync.Mutex or
// sync.RWMutex is held.
//
// This is the engine's fine-grained-locking discipline made
// mechanical: the WAL group-commit protocol fsyncs outside the lock
// (a leader snapshots the tail under the mutex, releases it, syncs,
// then relocks to publish), and the fleetpool shard workers never
// perform channel hand-offs under a shard lock. A blocking call
// under a mutex turns one slow syscall into a convoy for every
// contender, which on the ingest hot path means a stalled fsync
// backpressures all concurrent feeders.
//
// Blocking calls are: (*os.File).Sync, time.Sleep, any function or
// method of package net, channel sends and receives, and select
// statements without a default clause. The tracking is
// intra-procedural and source-ordered: a lock is held from
// mu.Lock()/mu.RLock() until mu.Unlock()/mu.RUnlock() on the same
// receiver expression; `defer mu.Unlock()` keeps the lock held for
// the remainder of the function, which is exactly when a blocking
// call in that function would run under it. Function literals are
// analyzed as their own functions (a goroutine body does not inherit
// the spawner's locks).
//
// Intentional violations carry a justification:
//
//	ch <- ev //tsvet:allow lockhold — per-subscription ordering needs the send under the lock
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"timingsubg/internal/analysis"
)

// Analyzer is the lockhold checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "report blocking calls (fsync, channel ops, net I/O, time.Sleep) made while a sync.Mutex/RWMutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				// Reached only for package-level `var f = func(){...}`;
				// literals inside functions are dispatched by checkFunc.
				checkFunc(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// heldLock records one acquired mutex: the receiver expression text it
// was locked through and where.
type heldLock struct {
	pos token.Pos
}

// checker walks one function body in source order, maintaining the set
// of currently held locks keyed by receiver expression text.
type checker struct {
	pass *analysis.Pass
	held map[string]heldLock
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, held: make(map[string]heldLock)}
	c.stmts(body.List)
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e)
		}
		for _, e := range s.Lhs {
			c.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.expr(s.Value)
		c.blockingOp(s.Pos(), "channel send")
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.DeferStmt:
		// A deferred Unlock pins the lock for the rest of the function
		// (the held set deliberately keeps it); other deferred calls
		// run at return time, outside this linear model, and are not
		// classified as blocking-under-lock.
		c.lockCall(s.Call, true)
		for _, a := range s.Call.Args {
			c.expr(a)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's locks;
		// its body is checked as an independent function by expr's
		// FuncLit handling. Argument expressions evaluate here though.
		for _, a := range s.Call.Args {
			c.expr(a)
		}
		c.expr(s.Call.Fun)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmts(s.Body.List)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmts(s.Body.List)
		c.stmt(s.Post)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.stmts(s.Body.List)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmts(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		c.stmts(s.Body)
	case *ast.SelectStmt:
		c.selectStmt(s)
	case *ast.CommClause:
		c.stmt(s.Comm)
		c.stmts(s.Body)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// selectStmt flags a select without a default clause as itself
// blocking; one with a default is a non-blocking poll, so its comm
// clauses' channel operations are deliberately not reported (only
// the clause bodies are walked).
func (c *checker) selectStmt(s *ast.SelectStmt) {
	hasDefault := false
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		c.blockingOp(s.Pos(), "blocking select")
	}
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		c.stmts(cc.Body)
	}
}

// expr scans one expression in evaluation-ish order, classifying lock
// transitions and blocking operations.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(c.pass, n.Body)
			return false
		case *ast.CallExpr:
			c.lockCall(n, false)
			c.callExpr(n)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.blockingOp(n.Pos(), "channel receive")
			}
			return true
		}
		return true
	})
}

// lockCall updates the held set for Lock/Unlock-family calls on
// sync.Mutex / sync.RWMutex receivers (including promoted methods on
// embedding structs).
func (c *checker) lockCall(call *ast.CallExpr, deferred bool) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || !isSyncLockMethod(fn) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		if !deferred {
			c.held[key] = heldLock{pos: call.Pos()}
		}
	case "Unlock", "RUnlock":
		if !deferred {
			delete(c.held, key)
		}
		// defer mu.Unlock(): the lock stays in the held set — every
		// statement after this one really does run under it.
	}
}

func isSyncLockMethod(fn *types.Func) bool {
	for _, typ := range []string{"Mutex", "RWMutex"} {
		for _, m := range []string{"Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock"} {
			if analysis.IsMethodOn(fn, "sync", typ, m) {
				return true
			}
		}
	}
	return false
}

// callExpr reports calls classified as blocking when a lock is held.
func (c *checker) callExpr(call *ast.CallExpr) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case analysis.IsMethodOn(fn, "os", "File", "Sync"):
		c.blockingOp(call.Pos(), "call to (*os.File).Sync")
	case analysis.IsFunc(fn, "time", "Sleep"):
		c.blockingOp(call.Pos(), "call to time.Sleep")
	case fn.Pkg() != nil && fn.Pkg().Path() == "net":
		c.blockingOp(call.Pos(), "call to net."+fn.Name())
	}
}

// blockingOp reports desc at pos against every currently held lock,
// in deterministic (sorted) key order.
func (c *checker) blockingOp(pos token.Pos, desc string) {
	if len(c.held) == 0 {
		return
	}
	keys := make([]string, 0, len(c.held))
	for key := range c.held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		lp := c.pass.Fset.Position(c.held[key].pos)
		c.pass.Reportf(pos, "%s while %q is held (locked at line %d)", desc, key, lp.Line)
	}
}
