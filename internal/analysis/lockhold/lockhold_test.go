package lockhold_test

import (
	"testing"

	"timingsubg/internal/analysis/analysistest"
	"timingsubg/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "lockholdtest")
}
