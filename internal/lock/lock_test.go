package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func req(list, lvl int, m Mode) Request {
	return Request{Item: ItemID{List: list, Level: lvl}, Mode: m}
}

// TestFIFOOrdering verifies that an earlier transaction's exclusive
// request blocks a later one until released, regardless of arrival order
// at the lock.
func TestFIFOOrdering(t *testing.T) {
	mgr := NewManager()
	item := ItemID{List: 1, Level: 1}
	t1 := NewFineTxn(mgr, 1, []Request{req(1, 1, X)})
	t2 := NewFineTxn(mgr, 2, []Request{req(1, 1, X)})

	var order []int64
	var mu sync.Mutex
	record := func(id int64) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(2)
	// Launch t2 first: it must still wait behind t1's queued request.
	go func() {
		defer wg.Done()
		t2.Acquire(item, X)
		record(2)
		t2.Release(item, X)
		t2.Finish()
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		defer wg.Done()
		t1.Acquire(item, X)
		record(1)
		t1.Release(item, X)
		t1.Finish()
	}()
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("want chronological order [1 2], got %v", order)
	}
}

// TestSharedLocksOverlap verifies multiple S holders coexist while an X
// waits.
func TestSharedLocksOverlap(t *testing.T) {
	mgr := NewManager()
	item := ItemID{List: 1, Level: 1}
	s1 := NewFineTxn(mgr, 1, []Request{req(1, 1, S)})
	s2 := NewFineTxn(mgr, 2, []Request{req(1, 1, S)})
	x3 := NewFineTxn(mgr, 3, []Request{req(1, 1, X)})

	var concurrent atomic.Int32
	var peak atomic.Int32
	var xHeld atomic.Bool
	var wg sync.WaitGroup
	hold := func(txn *FineTxn, mode Mode) {
		defer wg.Done()
		txn.Acquire(item, mode)
		if mode == S {
			if xHeld.Load() {
				t.Error("S granted while X held")
			}
			v := concurrent.Add(1)
			for {
				p := peak.Load()
				if v <= p || peak.CompareAndSwap(p, v) {
					break
				}
			}
			time.Sleep(30 * time.Millisecond)
			concurrent.Add(-1)
		} else {
			if concurrent.Load() != 0 {
				t.Error("X granted while S held")
			}
			xHeld.Store(true)
			time.Sleep(5 * time.Millisecond)
			xHeld.Store(false)
		}
		txn.Release(item, mode)
		txn.Finish()
	}
	wg.Add(3)
	go hold(s1, S)
	go hold(s2, S)
	go hold(x3, X)
	wg.Wait()
	if peak.Load() != 2 {
		t.Errorf("both S holders should overlap, peak=%d", peak.Load())
	}
}

// TestPlanSkewPanics verifies the plan/execution assertion trips.
func TestPlanSkewPanics(t *testing.T) {
	mgr := NewManager()
	txn := NewFineTxn(mgr, 1, []Request{req(1, 1, S)})
	defer func() {
		if recover() == nil {
			t.Error("acquiring an unplanned item must panic")
		}
	}()
	txn.Acquire(ItemID{List: 2, Level: 2}, S)
}

// TestFinishAssertsCompletion verifies leftover requests are caught.
func TestFinishAssertsCompletion(t *testing.T) {
	mgr := NewManager()
	txn := NewFineTxn(mgr, 1, []Request{req(1, 1, S), req(1, 2, X)})
	txn.Acquire(ItemID{List: 1, Level: 1}, S)
	txn.Release(ItemID{List: 1, Level: 1}, S)
	defer func() {
		if recover() == nil {
			t.Error("Finish with pending requests must panic")
		}
	}()
	txn.Finish()
}

// TestAllTxnDedup verifies duplicate items collapse to the strongest
// mode so a transaction never self-deadlocks.
func TestAllTxnDedup(t *testing.T) {
	mgr := NewManager()
	txn := NewAllTxn(mgr, 1, []Request{
		req(1, 1, S), req(1, 2, X), req(1, 1, X), req(1, 2, S),
	})
	done := make(chan bool)
	go func() {
		txn.Start() // would deadlock without dedup
		txn.Finish()
		done <- true
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("AllTxn.Start deadlocked on duplicate items")
	}
}

// TestManyTransactionsProgress floods one item with interleaved S/X
// transactions and requires global completion (deadlock freedom).
func TestManyTransactionsProgress(t *testing.T) {
	mgr := NewManager()
	const n = 200
	var wg sync.WaitGroup
	txns := make([]*FineTxn, n)
	for i := 0; i < n; i++ {
		mode := S
		if i%3 == 0 {
			mode = X
		}
		txns[i] = NewFineTxn(mgr, int64(i), []Request{req(1, 1, mode), req(1, 2, X)})
	}
	for i := 0; i < n; i++ {
		i := i
		mode := S
		if i%3 == 0 {
			mode = X
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			txns[i].Acquire(ItemID{1, 1}, mode)
			txns[i].Release(ItemID{1, 1}, mode)
			txns[i].Acquire(ItemID{1, 2}, X)
			txns[i].Release(ItemID{1, 2}, X)
			txns[i].Finish()
		}()
	}
	done := make(chan bool)
	go func() { wg.Wait(); done <- true }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("transactions did not all complete (deadlock?)")
	}
	if mgr.QueueLen(ItemID{1, 1}) != 0 || mgr.QueueLen(ItemID{1, 2}) != 0 {
		t.Error("wait-lists must drain")
	}
}

// TestXExcludesX verifies two exclusive holders never overlap.
func TestXExcludesX(t *testing.T) {
	mgr := NewManager()
	const n = 50
	var inside atomic.Int32
	var wg sync.WaitGroup
	txns := make([]*FineTxn, n)
	for i := range txns {
		txns[i] = NewFineTxn(mgr, int64(i), []Request{req(1, 1, X)})
	}
	for i := range txns {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txns[i].Acquire(ItemID{1, 1}, X)
			if inside.Add(1) != 1 {
				t.Error("two X holders overlap")
			}
			inside.Add(-1)
			txns[i].Release(ItemID{1, 1}, X)
			txns[i].Finish()
		}()
	}
	wg.Wait()
}
