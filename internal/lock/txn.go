package lock

// Locker is the hook the engine calls around each expansion-list item
// access. Implementations decide whether anything actually blocks:
// the serial engine uses NopLocker, the concurrent engine uses FineTxn
// (the paper's fine-grained scheme) or AllTxn (the All-locks baseline).
type Locker interface {
	// Acquire takes the lock for one planned access. Engines call
	// Acquire/Release in exactly the order the access plan was dispatched.
	Acquire(id ItemID, mode Mode)
	// Release drops the lock taken by the matching Acquire.
	Release(id ItemID, mode Mode)
}

// NopLocker is the no-op Locker used by the serial engine.
type NopLocker struct{}

// Acquire implements Locker.
func (NopLocker) Acquire(ItemID, Mode) {}

// Release implements Locker.
func (NopLocker) Release(ItemID, Mode) {}

// FineTxn is a transaction using the paper's fine-grained locking: each
// access acquires just its item and releases it when the computation on
// that item finishes, so a transaction holds at most one lock at a time.
type FineTxn struct {
	ID   int64
	mgr  *Manager
	plan []Request
	next int
}

// NewFineTxn dispatches the plan's requests under the transaction's
// timestamp ID and returns the transaction. Must be called from the
// single dispatcher thread.
func NewFineTxn(mgr *Manager, id int64, plan []Request) *FineTxn {
	mgr.Dispatch(id, plan)
	return &FineTxn{ID: id, mgr: mgr, plan: plan}
}

// Acquire implements Locker, asserting the access follows the dispatched
// plan (any divergence would corrupt every wait-list behind it).
func (t *FineTxn) Acquire(id ItemID, mode Mode) {
	if t.next >= len(t.plan) {
		panic("lock: transaction exceeded its dispatched plan")
	}
	want := t.plan[t.next]
	if want.Item != id || want.Mode != mode {
		panic("lock: access order diverged from dispatched plan: want " +
			want.Mode.String() + want.Item.String() + " got " + mode.String() + id.String())
	}
	t.next++
	t.mgr.Acquire(t.ID, id, mode)
}

// Release implements Locker.
func (t *FineTxn) Release(id ItemID, mode Mode) {
	t.mgr.Release(t.ID, id, mode)
}

// Finish verifies the whole plan was consumed. Engines call it when the
// transaction's work is done; a leftover request would stall every later
// transaction queued behind it.
func (t *FineTxn) Finish() {
	if t.next != len(t.plan) {
		panic("lock: transaction finished with pending lock requests")
	}
}

// AllTxn is a transaction using the All-locks scheme: every planned lock
// is taken up front and held for the whole transaction (the paper's
// comparison baseline, Section VII-D). Per-access hooks are no-ops.
type AllTxn struct {
	ID   int64
	mgr  *Manager
	plan []Request
}

// NewAllTxn dispatches the plan from the dispatcher thread. Repeated
// accesses to one item are collapsed into a single lock of the strongest
// mode, since the transaction holds everything for its whole lifetime.
func NewAllTxn(mgr *Manager, id int64, plan []Request) *AllTxn {
	seen := make(map[ItemID]int, len(plan))
	dedup := make([]Request, 0, len(plan))
	for _, r := range plan {
		if i, ok := seen[r.Item]; ok {
			if r.Mode == X {
				dedup[i].Mode = X
			}
			continue
		}
		seen[r.Item] = len(dedup)
		dedup = append(dedup, r)
	}
	mgr.Dispatch(id, dedup)
	return &AllTxn{ID: id, mgr: mgr, plan: dedup}
}

// Start blocks until every planned lock is held, in plan order. Called
// from the transaction goroutine.
func (t *AllTxn) Start() {
	for _, r := range t.plan {
		t.mgr.Acquire(t.ID, r.Item, r.Mode)
	}
}

// Acquire implements Locker as a no-op: locks are already held.
func (t *AllTxn) Acquire(ItemID, Mode) {}

// Release implements Locker as a no-op.
func (t *AllTxn) Release(ItemID, Mode) {}

// Finish releases every lock.
func (t *AllTxn) Finish() {
	for i := len(t.plan) - 1; i >= 0; i-- {
		r := t.plan[i]
		t.mgr.Release(t.ID, r.Item, r.Mode)
	}
}
