// Package lock implements the paper's concurrency management (Section V):
// every edge insertion/deletion runs as a transaction; expansion-list
// items are lockable resources with per-item FIFO wait-lists ordered by
// transaction timestamp; a transaction holds at most one item lock at a
// time (fine-grained mode), which together with wait-list ordering yields
// deadlock freedom and streaming consistency (Theorem 4).
//
// The package also provides the paper's comparison scheme "All-locks",
// which acquires every item a transaction may touch before it starts.
package lock

import (
	"fmt"
	"sync"
)

// Mode is a lock mode.
type Mode int8

// Lock modes: shared for READ, exclusive for INSERT/DELETE.
const (
	S Mode = iota // shared
	X             // exclusive
)

func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// ItemID names an expansion-list item: List 0 is the global list L₀,
// lists 1..k are the TC-subquery lists; Level is the 1-based item index
// within the list. The aliasing of L₀¹ to the first sub-list's last item
// is resolved by callers before locking, so ItemID{0, 1} never appears.
type ItemID struct {
	List  int
	Level int
}

func (id ItemID) String() string { return fmt.Sprintf("L%d^%d", id.List, id.Level) }

// Request is one pending lock request in an item's wait-list.
type Request struct {
	TxnID int64
	Mode  Mode
	Item  ItemID
}

// item is one lockable resource.
type item struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Request // FIFO wait-list, ordered by dispatch (= txn timestamp)
	sharers int       // number of S holders
	excl    bool      // X held
}

func newItem() *item {
	it := &item{}
	it.cond = sync.NewCond(&it.mu)
	return it
}

// Manager owns the items and dispatches transactions. Dispatch must be
// performed by a single thread (the paper's main thread, Algorithm 3):
// Dispatch appends all of a transaction's requests to the wait-lists
// atomically with respect to later transactions, which is what keeps
// every wait-list in chronological order.
type Manager struct {
	mu    sync.Mutex
	items map[ItemID]*item
}

// NewManager returns a Manager with no items; items are created lazily.
func NewManager() *Manager {
	return &Manager{items: make(map[ItemID]*item)}
}

func (m *Manager) item(id ItemID) *item {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := m.items[id]
	if !ok {
		it = newItem()
		m.items[id] = it
	}
	return it
}

// Dispatch enqueues all requests of transaction txnID. It must be called
// from the single dispatcher thread, before the transaction's goroutine
// is launched.
func (m *Manager) Dispatch(txnID int64, reqs []Request) {
	for _, r := range reqs {
		it := m.item(r.Item)
		it.mu.Lock()
		it.queue = append(it.queue, Request{TxnID: txnID, Mode: r.Mode, Item: r.Item})
		it.mu.Unlock()
	}
}

// Acquire blocks until the transaction's front request for id is at the
// head of the wait-list and the lock status is compatible (Algorithm 4),
// then takes the lock and pops the request.
func (m *Manager) Acquire(txnID int64, id ItemID, mode Mode) {
	it := m.item(id)
	it.mu.Lock()
	defer it.mu.Unlock()
	for {
		if len(it.queue) == 0 {
			panic(fmt.Sprintf("lock: txn %d acquiring %s %v with empty wait-list (request was never dispatched)", txnID, mode, id))
		}
		head := it.queue[0]
		if head.TxnID == txnID {
			if head.Mode != mode {
				panic(fmt.Sprintf("lock: txn %d acquiring %s %v but dispatched %s (plan/execution skew)", txnID, mode, id, head.Mode))
			}
			if mode == X && !it.excl && it.sharers == 0 {
				it.excl = true
				it.queue = it.queue[1:]
				it.cond.Broadcast()
				return
			}
			if mode == S && !it.excl {
				it.sharers++
				it.queue = it.queue[1:]
				it.cond.Broadcast()
				return
			}
		}
		it.cond.Wait()
	}
}

// Release drops the lock held by the transaction on id and wakes waiters
// (Algorithm 4).
func (m *Manager) Release(_ int64, id ItemID, mode Mode) {
	it := m.item(id)
	it.mu.Lock()
	defer it.mu.Unlock()
	if mode == X {
		it.excl = false
	} else {
		it.sharers--
	}
	it.cond.Broadcast()
}

// QueueLen reports the wait-list length of an item, for tests.
func (m *Manager) QueueLen(id ItemID) int {
	it := m.item(id)
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.queue)
}
