package lock

import (
	"sync"
	"testing"
)

// BenchmarkUncontendedAcquire measures the fine-grained lock fast path:
// dispatch + acquire + release with no contention (the per-item overhead
// every transaction operation pays).
func BenchmarkUncontendedAcquire(b *testing.B) {
	mgr := NewManager()
	id := ItemID{List: 1, Level: 1}
	for i := 0; i < b.N; i++ {
		txn := NewFineTxn(mgr, int64(i), []Request{{Item: id, Mode: X}})
		txn.Acquire(id, X)
		txn.Release(id, X)
		txn.Finish()
	}
}

// BenchmarkContendedPipeline measures wait-list throughput with many
// transactions racing over one item, the worst-case schedule.
func BenchmarkContendedPipeline(b *testing.B) {
	mgr := NewManager()
	id := ItemID{List: 1, Level: 1}
	const lanes = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	txns := make(chan *FineTxn, lanes)
	for w := 0; w < lanes; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for txn := range txns {
				txn.Acquire(id, X)
				txn.Release(id, X)
				txn.Finish()
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		txns <- NewFineTxn(mgr, int64(i), []Request{{Item: id, Mode: X}})
	}
	close(txns)
	wg.Wait()
}

// BenchmarkSharedReaders measures concurrent S-lock admission.
func BenchmarkSharedReaders(b *testing.B) {
	mgr := NewManager()
	id := ItemID{List: 1, Level: 1}
	for i := 0; i < b.N; i++ {
		txn := NewFineTxn(mgr, int64(i), []Request{{Item: id, Mode: S}})
		txn.Acquire(id, S)
		txn.Release(id, S)
		txn.Finish()
	}
}
