package explist

import (
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// edgeAB builds a data edge for the path query's position pos with the
// given endpoints and time.
func pathEdge(ls []graph.Label, pos int, from, to int64, tm int64) graph.Edge {
	return graph.Edge{
		ID: graph.EdgeID(tm), From: graph.VertexID(from), To: graph.VertexID(to),
		FromLabel: ls[pos-1], ToLabel: ls[pos], Time: graph.Timestamp(tm),
	}
}

// TestTreeSubListCandidateIndex verifies the interior-item vertex index:
// EachCandidate(lvl, v) returns exactly the stored prefixes whose
// binding of the item's connecting vertex is v, in insertion order, and
// deletion drops entries from the buckets.
func TestTreeSubListCandidateIndex(t *testing.T) {
	q, sub, ls := pathSetup(t)
	l := NewTreeSubList(q, sub)

	// Level 1 stores a→b edges, indexed by their binding of query vertex
	// b — the connecting vertex of position 2 (the From endpoint of the
	// b→c sequence edge).
	cv, useFrom, ok := sub.ConnectingVertex(q, 2)
	if !ok || !useFrom || cv != 1 {
		t.Fatalf("position 2 must connect via b (From of b→c): got cv=%d useFrom=%v ok=%v", cv, useFrom, ok)
	}
	h1 := l.Insert(1, nil, pathEdge(ls, 1, 10, 20, 1))
	l.Insert(1, nil, pathEdge(ls, 1, 11, 21, 2))
	l.Insert(1, nil, pathEdge(ls, 1, 12, 20, 3))
	if h1 == nil {
		t.Fatal("insert failed")
	}

	collect := func(v graph.VertexID) []graph.VertexID {
		var froms []graph.VertexID
		l.EachCandidate(1, v, func(_ Handle, m *match.Match) bool {
			froms = append(froms, m.Edges[sub.Seq[0]].From)
			return true
		})
		return froms
	}
	got := collect(20)
	if len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Fatalf("candidates for b=20: want From [10 12], got %v", got)
	}
	if got := collect(21); len(got) != 1 || got[0] != 11 {
		t.Fatalf("candidates for b=21: want From [11], got %v", got)
	}
	if got := collect(99); len(got) != 0 {
		t.Fatalf("candidates for unseen binding: want none, got %v", got)
	}

	// Kill the edge with ID 1 (the 10→20 prefix): its bucket entry must
	// go with it.
	if dead := l.DeleteLevel(1, 1, nil); len(dead) != 1 {
		t.Fatalf("want 1 casualty, got %d", len(dead))
	}
	if got := collect(20); len(got) != 1 || got[0] != 12 {
		t.Fatalf("candidates for b=20 after delete: want From [12], got %v", got)
	}
}

// TestTreeJoinFingerprintAgreement verifies that the stored-side key
// function (path extraction) and the probe-side JoinFingerprint
// (materialized bindings) compute the same fingerprint: a stored
// complete match must be found under the fingerprint of its own
// materialization.
func TestTreeJoinFingerprintAgreement(t *testing.T) {
	q, sub, ls := pathSetup(t)
	l := NewTreeSubList(q, sub)
	// Fingerprint the last item by vertices {b, d} — a stand-in shared
	// set touching two different path positions.
	shared := []query.VertexID{1, 3}
	l.SetJoinKey(shared)

	h1 := l.Insert(1, nil, pathEdge(ls, 1, 10, 20, 1))
	h2 := l.Insert(2, h1, pathEdge(ls, 2, 20, 30, 2))
	h3 := l.Insert(3, h2, pathEdge(ls, 3, 30, 40, 3))
	if h3 == nil {
		t.Fatal("insert failed")
	}
	full := l.Materialize(3, h3)
	fp := JoinFingerprint(full, shared)
	found := 0
	l.EachJoinCandidate(fp, func(h Handle, m *match.Match) bool {
		if h == h3 {
			found++
		}
		return true
	})
	if found != 1 {
		t.Fatalf("stored match not found under its own fingerprint (found=%d)", found)
	}
	// A different shared binding must not collide into a hit list that
	// omits checking: an unrelated fingerprint returns nothing.
	if fp2 := JoinFingerprint(full, []query.VertexID{0, 2}); fp2 != fp {
		none := 0
		l.EachJoinCandidate(fp2, func(Handle, *match.Match) bool { none++; return true })
		if none != 0 {
			t.Fatalf("unrelated fingerprint matched %d stored entries", none)
		}
	}
}
