package explist

import (
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// flatEntry is one independently stored partial match. Entries form a
// per-item doubly linked list so deletion mid-scan is O(1), and carry a
// dead flag so handles held across operations stay safe.
type flatEntry struct {
	m          *match.Match
	prev, next *flatEntry
	dead       bool
	// minT is the death-time key: the minimum timestamp over the
	// match's bound data edges, computed incrementally at insert. A
	// window slide with watermark w kills exactly the entries with
	// minT < w (see SubList.DeleteExpired).
	minT graph.Timestamp
}

// flatItem is one expansion-list item storing independent match copies.
type flatItem struct {
	head, tail *flatEntry
	count      int
}

func (it *flatItem) insert(m *match.Match) *flatEntry {
	e := &flatEntry{m: m}
	if it.tail == nil {
		it.head, it.tail = e, e
	} else {
		it.tail.next = e
		e.prev = it.tail
		it.tail = e
	}
	it.count++
	return e
}

func (it *flatItem) remove(e *flatEntry) {
	if e.dead {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		it.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		it.tail = e.prev
	}
	e.dead = true
	it.count--
}

func (it *flatItem) each(fn func(h Handle, m *match.Match) bool) {
	for e := it.head; e != nil; e = e.next {
		if !fn(e, e.m) {
			return
		}
	}
}

// deleteContaining removes every entry whose match contains data edge id,
// returning the casualties. This is the Timing-IND deletion path: without
// the MS-tree, every stored partial match must be inspected (the paper's
// motivation for the tree in Section IV).
func (it *flatItem) deleteContaining(id graph.EdgeID) []Handle {
	var dead []Handle
	for e := it.head; e != nil; {
		next := e.next
		if e.m.HasDataEdge(id) {
			it.remove(e)
			dead = append(dead, e)
		}
		e = next
	}
	return dead
}

// deleteExpired removes every entry whose death-time key is below cut,
// returning the number removed. Timing-IND keeps scan semantics (no
// time-ordered index), but the scan runs once per window slide instead
// of once per expired edge, and the minT comparison replaces the
// per-edge HasDataEdge containment probe.
func (it *flatItem) deleteExpired(cut graph.Timestamp) int {
	removed := 0
	for e := it.head; e != nil; {
		next := e.next
		if e.minT < cut {
			it.remove(e)
			removed++
		}
		e = next
	}
	return removed
}

func (it *flatItem) spaceBytes() int64 {
	var b int64
	for e := it.head; e != nil; e = e.next {
		b += e.m.SpaceBytes() + 32
	}
	return b
}

// FlatSubList is the independent-storage SubList (Timing-IND): each item
// keeps full copies of its partial matches.
type FlatSubList struct {
	q     *query.Query
	sub   *query.TCSubquery
	items []flatItem
}

// NewFlatSubList returns an independent-storage expansion list for sub.
func NewFlatSubList(q *query.Query, sub *query.TCSubquery) *FlatSubList {
	return &FlatSubList{q: q, sub: sub, items: make([]flatItem, sub.Len())}
}

// Depth implements SubList.
func (l *FlatSubList) Depth() int { return len(l.items) }

// Count implements SubList.
func (l *FlatSubList) Count(lvl int) int { return l.items[lvl-1].count }

// Each implements SubList.
func (l *FlatSubList) Each(lvl int, fn func(Handle, *match.Match) bool) {
	l.items[lvl-1].each(fn)
}

// EachCandidate implements SubList. Independent storage keeps the
// paper's Timing-IND scan semantics: every stored match is visited and
// the caller's own key check does the narrowing.
func (l *FlatSubList) EachCandidate(lvl int, _ graph.VertexID, fn func(Handle, *match.Match) bool) {
	l.items[lvl-1].each(fn)
}

// EachJoinCandidate implements SubList: a scan of the last item.
func (l *FlatSubList) EachJoinCandidate(_ uint64, fn func(Handle, *match.Match) bool) {
	l.items[len(l.items)-1].each(fn)
}

// SetJoinKey implements SubList as a no-op: the scan backend has no
// index to key.
func (l *FlatSubList) SetJoinKey([]query.VertexID) {}

// Materialize implements SubList.
func (l *FlatSubList) Materialize(_ int, h Handle) *match.Match {
	return h.(*flatEntry).m.Clone()
}

// Insert implements SubList.
func (l *FlatSubList) Insert(lvl int, parent Handle, e graph.Edge) Handle {
	var m *match.Match
	minT := e.Time
	if parent == nil {
		m = match.New(l.q)
	} else {
		pe := parent.(*flatEntry)
		if pe.dead {
			return nil
		}
		m = pe.m.Clone()
		if pe.minT < minT {
			minT = pe.minT
		}
	}
	m.Bind(l.q, l.sub.Seq[lvl-1], e)
	ne := l.items[lvl-1].insert(m)
	ne.minT = minT
	return ne
}

// DeleteLevel implements SubList. Independent storage finds casualties by
// scanning for edge containment; parent casualties are implied because an
// extension of a match containing the expired edge also contains it.
func (l *FlatSubList) DeleteLevel(lvl int, edgeID graph.EdgeID, _ []Handle) []Handle {
	return l.items[lvl-1].deleteContaining(edgeID)
}

// DeleteExpired implements SubList: one scan of the item per slide.
func (l *FlatSubList) DeleteExpired(lvl int, watermark graph.Timestamp) int {
	return l.items[lvl-1].deleteExpired(watermark)
}

// SpaceBytes implements SubList.
func (l *FlatSubList) SpaceBytes() int64 {
	var b int64
	for i := range l.items {
		b += l.items[i].spaceBytes()
	}
	return b
}

// FlatGlobalList is the independent-storage GlobalList.
type FlatGlobalList struct {
	q     *query.Query
	dec   *query.Decomposition
	items []flatItem // index 0 unused; items 2..k at [1..k-1]
}

// NewFlatGlobalList returns an independent-storage L₀.
func NewFlatGlobalList(q *query.Query, dec *query.Decomposition) *FlatGlobalList {
	return &FlatGlobalList{q: q, dec: dec, items: make([]flatItem, dec.K())}
}

// K implements GlobalList.
func (g *FlatGlobalList) K() int { return g.dec.K() }

// Count implements GlobalList.
func (g *FlatGlobalList) Count(lvl int) int { return g.items[lvl-1].count }

// Each implements GlobalList.
func (g *FlatGlobalList) Each(lvl int, fn func(Handle, *match.Match) bool) {
	g.items[lvl-1].each(fn)
}

// EachCandidate implements GlobalList: a scan (Timing-IND semantics).
func (g *FlatGlobalList) EachCandidate(lvl int, _ uint64, fn func(Handle, *match.Match) bool) {
	g.items[lvl-1].each(fn)
}

// SetJoinKeys implements GlobalList as a no-op.
func (g *FlatGlobalList) SetJoinKeys([][]query.VertexID) {}

// Materialize implements GlobalList.
func (g *FlatGlobalList) Materialize(_ int, h Handle) *match.Match {
	return h.(*flatEntry).m.Clone()
}

// Insert implements GlobalList. Both handles are flat entries (the level
// 2 parent comes from the first sub-list's last item, which for the flat
// backend is also a flat entry).
func (g *FlatGlobalList) Insert(lvl int, parent, sub Handle) Handle {
	pe := parent.(*flatEntry)
	se := sub.(*flatEntry)
	if pe.dead || se.dead {
		return nil
	}
	m := pe.m.Merge(se.m)
	ne := g.items[lvl-1].insert(m)
	ne.minT = pe.minT
	if se.minT < ne.minT {
		ne.minT = se.minT
	}
	return ne
}

// DeleteLevel implements GlobalList: scan for edge containment.
func (g *FlatGlobalList) DeleteLevel(lvl int, _, _ []Handle, edgeID graph.EdgeID) []Handle {
	return g.items[lvl-1].deleteContaining(edgeID)
}

// DeleteExpired implements GlobalList: one scan of the item per slide.
func (g *FlatGlobalList) DeleteExpired(lvl int, watermark graph.Timestamp) int {
	return g.items[lvl-1].deleteExpired(watermark)
}

// SpaceBytes implements GlobalList.
func (g *FlatGlobalList) SpaceBytes() int64 {
	var b int64
	for i := range g.items {
		b += g.items[i].spaceBytes()
	}
	return b
}
