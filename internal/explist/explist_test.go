package explist

import (
	"fmt"
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// pathSetup builds the TC-query a→b→c→d with full order along the path
// and returns (query, its single TC-subquery).
func pathSetup(t *testing.T) (*query.Query, *query.TCSubquery, []graph.Label) {
	t.Helper()
	labels := graph.NewLabels()
	ls := []graph.Label{labels.Intern("a"), labels.Intern("b"), labels.Intern("c"), labels.Intern("d")}
	b := query.NewBuilder()
	vs := make([]query.VertexID, 4)
	for i, l := range ls {
		vs[i] = b.AddVertex(l)
	}
	e1 := b.AddEdge(vs[0], vs[1])
	e2 := b.AddEdge(vs[1], vs[2])
	e3 := b.AddEdge(vs[2], vs[3])
	b.Before(e1, e2)
	b.Before(e2, e3)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dec := query.Decompose(q)
	if dec.K() != 1 {
		t.Fatalf("path with full order must be one TC-query, got k=%d", dec.K())
	}
	return q, dec.Subqueries[0], ls
}

// subLists returns both backends for the same subquery.
func subLists(q *query.Query, sub *query.TCSubquery) map[string]SubList {
	return map[string]SubList{
		"tree": NewTreeSubList(q, sub),
		"flat": NewFlatSubList(q, sub),
	}
}

func TestSubListInsertEachDelete(t *testing.T) {
	q, sub, ls := pathSetup(t)
	for name, l := range subLists(q, sub) {
		t.Run(name, func(t *testing.T) {
			if l.Depth() != 3 {
				t.Fatalf("depth: want 3, got %d", l.Depth())
			}
			d1 := graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1}
			d2 := graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2}
			d3 := graph.Edge{ID: 3, From: 30, To: 40, FromLabel: ls[2], ToLabel: ls[3], Time: 3}
			h1 := l.Insert(1, nil, d1)
			if h1 == nil {
				t.Fatal("level-1 insert failed")
			}
			h2 := l.Insert(2, h1, d2)
			h3 := l.Insert(3, h2, d3)
			if h3 == nil {
				t.Fatal("level-3 insert failed")
			}
			if l.Count(1) != 1 || l.Count(2) != 1 || l.Count(3) != 1 {
				t.Fatalf("counts: %d/%d/%d", l.Count(1), l.Count(2), l.Count(3))
			}

			// Each materializes correct partial matches.
			l.Each(2, func(h Handle, m *match.Match) bool {
				if m.NumBoundEdges() != 2 {
					t.Errorf("level 2 match must bind 2 edges, got %d", m.NumBoundEdges())
				}
				if m.Edges[sub.Seq[0]].ID != 1 || m.Edges[sub.Seq[1]].ID != 2 {
					t.Errorf("wrong level-2 binding: %s", m)
				}
				return true
			})
			// Materialize returns an independent copy.
			mm := l.Materialize(3, h3)
			if !mm.Complete(q) {
				t.Error("level-3 match must be complete")
			}
			if err := mm.Verify(q); err != nil {
				t.Error(err)
			}

			// Expire d1: everything cascades away.
			var cas []Handle
			for lvl := 1; lvl <= 3; lvl++ {
				cas = l.DeleteLevel(lvl, d1.ID, cas)
				if len(cas) != 1 {
					t.Fatalf("level %d: want 1 casualty, got %d", lvl, len(cas))
				}
			}
			if l.Count(1)+l.Count(2)+l.Count(3) != 0 {
				t.Error("list must be empty after expiry")
			}
		})
	}
}

func TestSubListSharedPrefixSpace(t *testing.T) {
	q, sub, ls := pathSetup(t)
	tree := NewTreeSubList(q, sub)
	flat := NewFlatSubList(q, sub)
	for _, l := range []SubList{tree, flat} {
		h1 := l.Insert(1, nil, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
		h2 := l.Insert(2, h1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2})
		// Fan out 20 level-3 matches sharing the same prefix.
		for i := int64(0); i < 20; i++ {
			l.Insert(3, h2, graph.Edge{ID: 3 + graph.EdgeID(i), From: 30, To: 40 + graph.VertexID(i),
				FromLabel: ls[2], ToLabel: ls[3], Time: graph.Timestamp(3 + i)})
		}
	}
	if tree.SpaceBytes() >= flat.SpaceBytes() {
		t.Errorf("MS-tree must compress shared prefixes: tree=%d flat=%d",
			tree.SpaceBytes(), flat.SpaceBytes())
	}
}

// globalSetup builds a 2-subquery decomposition: a→b (Q1) and b→c (Q2),
// no timing order, so k=2.
func globalSetup(t *testing.T) (*query.Query, *query.Decomposition, []graph.Label) {
	t.Helper()
	labels := graph.NewLabels()
	ls := []graph.Label{labels.Intern("a"), labels.Intern("b"), labels.Intern("c")}
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(ls[0]), b.AddVertex(ls[1]), b.AddVertex(ls[2])
	b.AddEdge(va, vb)
	b.AddEdge(vb, vc)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dec := query.Decompose(q)
	if dec.K() != 2 {
		t.Fatalf("want k=2, got %d", dec.K())
	}
	return q, dec, ls
}

func TestGlobalListJoinAndDelete(t *testing.T) {
	q, dec, ls := globalSetup(t)
	backends := []struct {
		name string
		sub1 SubList
		sub2 SubList
		g    GlobalList
	}{
		{"tree", NewTreeSubList(q, dec.Subqueries[0]), NewTreeSubList(q, dec.Subqueries[1]), NewTreeGlobalList(q, dec)},
		{"flat", NewFlatSubList(q, dec.Subqueries[0]), NewFlatSubList(q, dec.Subqueries[1]), NewFlatGlobalList(q, dec)},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			qe1 := dec.Subqueries[0].Seq[0]
			qe2 := dec.Subqueries[1].Seq[0]
			// Data edges depend on which query edge landed in which sub.
			// Map query vertex v to data vertex 10*(v+1) so shared
			// query vertices share data endpoints regardless of which
			// query edge landed in which subquery.
			mkFor := func(qe query.EdgeID, id int64, tm int64) graph.Edge {
				e := q.Edge(qe)
				return graph.Edge{ID: graph.EdgeID(id),
					From: graph.VertexID(10 * (int64(e.From) + 1)), To: graph.VertexID(10 * (int64(e.To) + 1)),
					FromLabel: q.VertexLabel(e.From), ToLabel: q.VertexLabel(e.To), Time: graph.Timestamp(tm)}
			}
			_ = ls
			d1 := mkFor(qe1, 1, 1)
			d2 := mkFor(qe2, 2, 2)
			h1 := be.sub1.Insert(1, nil, d1)
			h2 := be.sub2.Insert(1, nil, d2)
			gh := be.g.Insert(2, h1, h2)
			if gh == nil {
				t.Fatal("global insert failed")
			}
			if be.g.Count(2) != 1 {
				t.Fatalf("global count: want 1, got %d", be.g.Count(2))
			}
			be.g.Each(2, func(h Handle, m *match.Match) bool {
				if !m.Complete(q) {
					t.Errorf("global match must be complete, got %s", m)
				} else if err := m.Verify(q); err != nil {
					t.Error(err)
				}
				return true
			})
			mm := be.g.Materialize(2, gh)
			if !mm.Complete(q) {
				t.Error("materialized global match must be complete")
			}

			// Expire d2 (the Sub side): global entry must die.
			deadSubs := be.sub2.DeleteLevel(1, d2.ID, nil)
			if len(deadSubs) != 1 {
				t.Fatalf("sub2 casualty missing")
			}
			gDead := be.g.DeleteLevel(2, deadSubs, nil, d2.ID)
			if len(gDead) != 1 {
				t.Fatalf("global casualty missing")
			}
			if be.g.Count(2) != 0 {
				t.Error("global list must be empty")
			}
		})
	}
}

func TestGlobalParentSideExpiry(t *testing.T) {
	q, dec, _ := globalSetup(t)
	sub1 := NewTreeSubList(q, dec.Subqueries[0])
	sub2 := NewTreeSubList(q, dec.Subqueries[1])
	g := NewTreeGlobalList(q, dec)
	qe1 := dec.Subqueries[0].Seq[0]
	qe2 := dec.Subqueries[1].Seq[0]
	mkFor := func(qe query.EdgeID, id int64, tm int64) graph.Edge {
		e := q.Edge(qe)
		return graph.Edge{ID: graph.EdgeID(id),
			From: graph.VertexID(10 * (int64(e.From) + 1)), To: graph.VertexID(10 * (int64(e.To) + 1)),
			FromLabel: q.VertexLabel(e.From), ToLabel: q.VertexLabel(e.To), Time: graph.Timestamp(tm)}
	}
	d1 := mkFor(qe1, 1, 1)
	d2 := mkFor(qe2, 2, 2)
	h1 := sub1.Insert(1, nil, d1)
	h2 := sub2.Insert(1, nil, d2)
	if g.Insert(2, h1, h2) == nil {
		t.Fatal("global insert failed")
	}
	// Expire d1 (the parent side, which is the aliased L₀¹).
	dead := sub1.DeleteLevel(1, d1.ID, nil)
	gDead := g.DeleteLevel(2, nil, dead, d1.ID)
	if len(gDead) != 1 {
		t.Fatalf("global entry must die with its parent, got %d", len(gDead))
	}
}

func TestEachScratchIsolation(t *testing.T) {
	q, sub, ls := pathSetup(t)
	l := NewTreeSubList(q, sub)
	h1 := l.Insert(1, nil, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	l.Insert(1, nil, graph.Edge{ID: 2, From: 11, To: 21, FromLabel: ls[0], ToLabel: ls[1], Time: 2})
	_ = h1
	// The scratch match is reused across iterations: retaining requires
	// Clone. Verify the documented contract.
	var first *match.Match
	var firstKey string
	l.Each(1, func(_ Handle, m *match.Match) bool {
		if first == nil {
			first = m
			firstKey = m.Key()
		}
		return true
	})
	if first.Key() == firstKey {
		t.Log("scratch reuse means the retained pointer now shows the last row (documented)")
	}
	keys := map[string]bool{}
	l.Each(1, func(_ Handle, m *match.Match) bool {
		keys[m.Key()] = true
		return true
	})
	if len(keys) != 2 {
		t.Fatalf("want 2 distinct matches, got %v", keys)
	}
}

func TestFlatInsertOnDeadParent(t *testing.T) {
	q, sub, ls := pathSetup(t)
	l := NewFlatSubList(q, sub)
	h1 := l.Insert(1, nil, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	l.DeleteLevel(1, 1, nil)
	if h := l.Insert(2, h1, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2}); h != nil {
		t.Error("flat backend is serial: insert under a deleted parent must be refused")
	}
}

func TestHandleTypesAreOpaque(t *testing.T) {
	q, sub, ls := pathSetup(t)
	for name, l := range subLists(q, sub) {
		h := l.Insert(1, nil, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
		if h == nil {
			t.Fatalf("%s: insert failed", name)
		}
		if fmt.Sprintf("%T", h) == "" {
			t.Fatal("unreachable")
		}
	}
}
