// Package explist implements expansion lists (Definition 9): the ordered
// sequence of items L¹..Lᵏ that store the partial matches of each
// prerequisite subquery of a TC-subquery, and the global list L₀ that
// stores the partial join results across TC-subqueries (Section III-B).
//
// Two storage backends exist: the MS-tree backend (the paper's Timing
// system) and an independent backend that stores every partial match as a
// standalone copy (the paper's Timing-IND ablation).
//
// The MS-tree backend additionally maintains per-item vertex join
// indexes so the engine's INSERT probes are O(candidates) instead of
// O(item): interior items are bucketed by the binding of the item's
// connecting query vertex (the vertex an extending data edge must agree
// on), and last items / global items by the shared-binding fingerprint
// of the join they feed. The independent backend keeps the paper's
// Timing-IND scan semantics: its candidate enumerators visit every
// stored match.
package explist

import (
	"sync"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/mstree"
	"timingsubg/internal/query"
)

// Handle identifies a stored partial match inside a list; the concrete
// type depends on the backend. Handles let the engine extend matches in
// O(1) and cascade deletions without re-searching.
type Handle interface{}

// SubList stores the expansion list Lᵢ of one TC-subquery: item j holds
// the matches of the prerequisite subquery Preq(εⱼ) = {ε₁..εⱼ}.
type SubList interface {
	// Depth returns |Qi|, the number of items.
	Depth() int
	// Count returns the number of matches stored at item lvl (1-based).
	Count(lvl int) int
	// Each calls fn with each stored match of item lvl until fn returns
	// false. The *match.Match passed to fn is scratch reused across
	// iterations; fn must Clone it to retain it.
	Each(lvl int, fn func(h Handle, m *match.Match) bool)
	// EachCandidate calls fn with each stored match of interior item lvl
	// (1 ≤ lvl < Depth()) whose binding of the item's connecting query
	// vertex — ConnectingVertex(lvl+1) — equals v. The MS-tree backend
	// resolves this with an index lookup; the independent backend scans
	// the whole item (callers re-check the binding either way). Scratch
	// semantics match Each.
	EachCandidate(lvl int, v graph.VertexID, fn func(h Handle, m *match.Match) bool)
	// EachJoinCandidate calls fn with each stored match of the LAST item
	// whose shared-binding fingerprint (JoinFingerprint over the shared
	// vertex set installed by SetJoinKey) equals fp. Backend semantics
	// and scratch rules are as in EachCandidate.
	EachJoinCandidate(fp uint64, fn func(h Handle, m *match.Match) bool)
	// SetJoinKey installs the shared query-vertex set of the global join
	// this sub-list's complete matches feed, enabling the last item's
	// fingerprint index. Must be called before any insert; the
	// independent backend ignores it.
	SetJoinKey(shared []query.VertexID)
	// Insert stores the match obtained by extending parent with data edge
	// e (bound to the lvl-th sequence edge); parent is nil for lvl 1.
	// It returns nil if the parent died concurrently.
	Insert(lvl int, parent Handle, e graph.Edge) Handle
	// Materialize rebuilds a fresh copy of the match identified by h at
	// item lvl.
	Materialize(lvl int, h Handle) *match.Match
	// DeleteLevel removes at item lvl every match containing expired edge
	// edgeID and every extension of parentCasualties, returning this
	// level's casualties.
	DeleteLevel(lvl int, edgeID graph.EdgeID, parentCasualties []Handle) []Handle
	// DeleteExpired removes at item lvl every match whose death-time key
	// (minimum timestamp over its data edges) is below watermark,
	// returning the number removed. The batch counterpart of
	// DeleteLevel: one call per item covers every edge expired by a
	// window slide at once, and casualties are merged across the whole
	// expired set rather than propagated per edge — an extension of an
	// expired match itself contains an edge below the watermark, so its
	// own item's sweep catches it without parent bookkeeping.
	DeleteExpired(lvl int, watermark graph.Timestamp) int
	// SpaceBytes estimates resident bytes (call while quiescent).
	SpaceBytes() int64
}

// GlobalList stores the expansion list L₀ over a decomposition
// {Q¹..Qᵏ}: item i holds matches of Q¹∪..∪Qⁱ. Item 1 aliases the last
// item of the first sub-list (Section V-A), so a GlobalList only
// materializes items 2..k.
type GlobalList interface {
	// K returns the decomposition size.
	K() int
	// Count returns the number of matches at item lvl (lvl ≥ 2).
	Count(lvl int) int
	// Each calls fn with each stored match of item lvl (≥ 2). The match
	// is scratch reused across iterations; Clone to retain.
	Each(lvl int, fn func(h Handle, m *match.Match) bool)
	// EachCandidate calls fn with each stored match of item lvl whose
	// shared-binding fingerprint for join level lvl+1 (the shared sets
	// installed by SetJoinKeys) equals fp. The MS-tree backend indexes;
	// the independent backend scans. Scratch semantics match Each.
	EachCandidate(lvl int, fp uint64, fn func(h Handle, m *match.Match) bool)
	// SetJoinKeys installs the per-join shared query-vertex sets:
	// sharedByJoin[x] is the shared set of global join level x (2..k).
	// Item lvl (2 ≤ lvl < k) is then indexed by the fingerprint of
	// sharedByJoin[lvl+1] — the join its stored matches are the left
	// side of. Must be called before any insert; the independent backend
	// ignores it.
	SetJoinKeys(sharedByJoin [][]query.VertexID)
	// Insert stores the join of parent (an item lvl−1 handle; for lvl ==
	// 2 a handle from the first sub-list's last item) with the submatch
	// of Q^lvl identified by sub (a handle from sub-list lvl's last
	// item). Returns nil if either side died concurrently.
	Insert(lvl int, parent, sub Handle) Handle
	// Materialize rebuilds a fresh copy of the combined match at item lvl.
	Materialize(lvl int, h Handle) *match.Match
	// DeleteLevel removes at item lvl every match whose Q^lvl submatch is
	// in deadSubs, every extension of parentCasualties, and (independent
	// backend) every match containing edgeID; returns this level's
	// casualties.
	DeleteLevel(lvl int, deadSubs, parentCasualties []Handle, edgeID graph.EdgeID) []Handle
	// DeleteExpired removes at item lvl every match whose death-time key
	// is below watermark, returning the number removed; semantics as in
	// SubList.DeleteExpired. A global match's death-time key is the
	// minimum over every referenced submatch, so the sweep needs no
	// deadSubs propagation from the sub-lists.
	DeleteExpired(lvl int, watermark graph.Timestamp) int
	// SpaceBytes estimates resident bytes (call while quiescent).
	SpaceBytes() int64
}

// ---------------------------------------------------------------------
// Join fingerprints
// ---------------------------------------------------------------------

// FNV-1a constants; the fingerprint must be computed identically by the
// engine (from a materialized match) and the storage backends (from
// stored paths), so both fold bindings through fpMix in shared-set
// order.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fpMix folds one vertex binding into a running FNV-1a hash.
func fpMix(h uint64, v graph.VertexID) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime
		u >>= 8
	}
	return h
}

// JoinFingerprint hashes m's bindings of the shared query vertices of a
// join level, in slice order. Two matches with equal shared bindings
// always collide (the index must return every genuine candidate); hash
// collisions between different bindings are harmless — the engine
// re-checks full compatibility per candidate. An empty shared set
// yields a constant: every stored match is a candidate (the join is a
// cross product) and the index degrades to a scan of one bucket.
func JoinFingerprint(m *match.Match, shared []query.VertexID) uint64 {
	h := fnvOffset
	for _, v := range shared {
		h = fpMix(h, m.Vtx[v])
	}
	return h
}

// ---------------------------------------------------------------------
// MS-tree backend
// ---------------------------------------------------------------------

// eachScratch is the reusable materialization buffer for Each-style
// enumerations; pooled so concurrent shared-lock readers never share
// state and steady-state probes allocate nothing.
type eachScratch struct {
	m    *match.Match
	ebuf []graph.Edge
}

// TreeSubList is the MS-tree backed SubList.
type TreeSubList struct {
	q       *query.Query
	sub     *query.TCSubquery
	tree    *mstree.Tree
	scratch sync.Pool
}

// NewTreeSubList returns an MS-tree backed expansion list for sub, with
// every interior item indexed by the binding of its connecting query
// vertex: item ℓ < |Qi| is only ever probed by an insert at position
// ℓ+1, whose data edge pins that binding to one of its endpoints.
func NewTreeSubList(q *query.Query, sub *query.TCSubquery) *TreeSubList {
	l := &TreeSubList{q: q, sub: sub, tree: mstree.New(sub.Len())}
	l.scratch.New = func() any { return &eachScratch{m: match.New(q)} }
	for lvl := 1; lvl < sub.Len(); lvl++ {
		cv, _, ok := sub.ConnectingVertex(q, lvl+1)
		if !ok {
			continue
		}
		pos, isFrom, ok := sub.BindingSource(q, cv, lvl)
		if !ok {
			continue // unreachable: the connecting vertex is in the prefix
		}
		l.tree.SetLevelKey(lvl, pathVertexKey(pos, isFrom))
	}
	return l
}

// pathVertexKey returns a key function extracting the From/To endpoint
// of a node's ancestor at sequence position pos (1-based). The walk
// touches only immutable payload fields.
func pathVertexKey(pos int, isFrom bool) func(*mstree.Node) uint64 {
	src := pathSource{pos: pos, isFrom: isFrom}
	return func(n *mstree.Node) uint64 { return uint64(src.extract(n)) }
}

// SetJoinKey implements SubList: the last item is indexed by the
// fingerprint of the stored match's bindings of shared.
func (l *TreeSubList) SetJoinKey(shared []query.VertexID) {
	srcs := make([]pathSource, len(shared))
	for i, v := range shared {
		pos, isFrom, ok := l.sub.BindingSource(l.q, v, l.sub.Len())
		if !ok {
			panic("explist: shared join vertex not bound by subquery")
		}
		srcs[i] = pathSource{pos: pos, isFrom: isFrom}
	}
	l.tree.SetLevelKey(l.sub.Len(), func(n *mstree.Node) uint64 {
		h := fnvOffset
		for _, s := range srcs {
			h = fpMix(h, s.extract(n))
		}
		return h
	})
}

// pathSource locates one vertex binding inside a sub-tree path.
type pathSource struct {
	pos    int
	isFrom bool
}

func (s pathSource) extract(n *mstree.Node) graph.VertexID {
	for n.Level > s.pos {
		n = n.Parent
	}
	if s.isFrom {
		return n.Edge.From
	}
	return n.Edge.To
}

// Tree exposes the underlying MS-tree for tests and space audits.
func (l *TreeSubList) Tree() *mstree.Tree { return l.tree }

// Depth implements SubList.
func (l *TreeSubList) Depth() int { return l.sub.Len() }

// Count implements SubList.
func (l *TreeSubList) Count(lvl int) int { return l.tree.Count(lvl) }

// Each implements SubList. Scratch buffers are pooled per call so
// concurrent shared-lock readers never share state.
func (l *TreeSubList) Each(lvl int, fn func(Handle, *match.Match) bool) {
	var sc *eachScratch
	l.tree.Each(lvl, func(n *mstree.Node) bool {
		if sc == nil {
			sc = l.scratch.Get().(*eachScratch)
		}
		sc.ebuf = l.fill(sc.m, n, sc.ebuf)
		return fn(n, sc.m)
	})
	if sc != nil {
		l.scratch.Put(sc)
	}
}

// EachCandidate implements SubList: an index lookup on the interior
// item's connecting-vertex buckets; only genuine candidates are
// materialized.
func (l *TreeSubList) EachCandidate(lvl int, v graph.VertexID, fn func(Handle, *match.Match) bool) {
	l.eachCandidateKey(lvl, uint64(v), fn)
}

// EachJoinCandidate implements SubList: a fingerprint lookup on the
// last item.
func (l *TreeSubList) EachJoinCandidate(fp uint64, fn func(Handle, *match.Match) bool) {
	l.eachCandidateKey(l.sub.Len(), fp, fn)
}

func (l *TreeSubList) eachCandidateKey(lvl int, key uint64, fn func(Handle, *match.Match) bool) {
	var sc *eachScratch
	l.tree.EachCandidate(lvl, key, func(n *mstree.Node) bool {
		if sc == nil {
			sc = l.scratch.Get().(*eachScratch)
		}
		sc.ebuf = l.fill(sc.m, n, sc.ebuf)
		return fn(n, sc.m)
	})
	if sc != nil {
		l.scratch.Put(sc)
	}
}

// Materialize implements SubList.
func (l *TreeSubList) Materialize(_ int, h Handle) *match.Match {
	m := match.New(l.q)
	l.fill(m, h.(*mstree.Node), nil)
	return m
}

// fill rebuilds into m the partial match for node n by backtracking its
// path, reusing ebuf; it returns the (possibly grown) buffer.
func (l *TreeSubList) fill(m *match.Match, n *mstree.Node, ebuf []graph.Edge) []graph.Edge {
	ebuf = n.PathEdges(ebuf)
	m.Reset()
	for pos, d := range ebuf {
		m.Bind(l.q, l.sub.Seq[pos], d)
	}
	return ebuf
}

// Insert implements SubList.
func (l *TreeSubList) Insert(lvl int, parent Handle, e graph.Edge) Handle {
	var p *mstree.Node
	if parent != nil {
		p = parent.(*mstree.Node)
	}
	n := l.tree.InsertEdge(lvl, p, e)
	if n == nil {
		return nil
	}
	return n
}

// DeleteLevel implements SubList.
func (l *TreeSubList) DeleteLevel(lvl int, edgeID graph.EdgeID, parentCasualties []Handle) []Handle {
	dead := l.tree.DeleteLevel(lvl, edgeID, toNodes(parentCasualties), nil)
	return toHandles(dead)
}

// DeleteExpired implements SubList: one heap-ordered sweep of the item.
func (l *TreeSubList) DeleteExpired(lvl int, watermark graph.Timestamp) int {
	return l.tree.DeleteExpiredBefore(lvl, watermark)
}

// SpaceBytes implements SubList.
func (l *TreeSubList) SpaceBytes() int64 { return l.tree.SpaceBytes() }

// TreeGlobalList is the MS-tree backed GlobalList: nodes hold pointers to
// complete-submatch leaves in the sub-lists' trees rather than copies
// (Section IV-A).
type TreeGlobalList struct {
	q       *query.Query
	dec     *query.Decomposition
	tree    *mstree.Tree
	scratch sync.Pool
}

// NewTreeGlobalList returns an MS-tree backed L₀ for the decomposition.
func NewTreeGlobalList(q *query.Query, dec *query.Decomposition) *TreeGlobalList {
	g := &TreeGlobalList{q: q, dec: dec, tree: mstree.New(dec.K())}
	g.scratch.New = func() any { return &eachScratch{m: match.New(q)} }
	return g
}

// SetJoinKeys implements GlobalList: item lvl (2 ≤ lvl < k) is indexed
// by the fingerprint of its matches' bindings of sharedByJoin[lvl+1] —
// the shared vertex set of the join level those matches feed as the
// stored left side. Item k is never probed and stays unindexed.
func (g *TreeGlobalList) SetJoinKeys(sharedByJoin [][]query.VertexID) {
	for lvl := 2; lvl < g.dec.K(); lvl++ {
		shared := sharedByJoin[lvl+1]
		srcs := make([]globalSource, len(shared))
		for i, v := range shared {
			srcs[i] = g.locate(v, lvl)
		}
		g.tree.SetLevelKey(lvl, func(n *mstree.Node) uint64 {
			h := fnvOffset
			for _, s := range srcs {
				h = fpMix(h, s.extract(n))
			}
			return h
		})
	}
}

// globalSource locates one vertex binding inside a global node's
// composite match: the 1-based TC-subquery holding the vertex and the
// position/endpoint within that subquery's path.
type globalSource struct {
	subIdx int
	pathSource
}

// locate finds where the prefix Q¹..Q^maxSub binds query vertex v.
func (g *TreeGlobalList) locate(v query.VertexID, maxSub int) globalSource {
	for s := 1; s <= maxSub; s++ {
		sub := g.dec.Subqueries[s-1]
		if pos, isFrom, ok := sub.BindingSource(g.q, v, sub.Len()); ok {
			return globalSource{subIdx: s, pathSource: pathSource{pos: pos, isFrom: isFrom}}
		}
	}
	panic("explist: shared join vertex not bound by global prefix")
}

// extract reads the binding from a global node at level ≥ subIdx by
// navigating to the referenced sub-tree leaf: global parents chain down
// to item 2, whose Parent is a leaf of the first sub-list's tree, and
// each item x's Sub points at a leaf of sub-tree x. Only immutable
// payload fields are read.
func (s globalSource) extract(n *mstree.Node) graph.VertexID {
	var leaf *mstree.Node
	if s.subIdx >= 2 {
		for n.Level > s.subIdx {
			n = n.Parent
		}
		leaf = n.Sub
	} else {
		for n.Level > 2 {
			n = n.Parent
		}
		leaf = n.Parent
	}
	return s.pathSource.extract(leaf)
}

// Tree exposes the underlying MS-tree for tests and space audits.
func (g *TreeGlobalList) Tree() *mstree.Tree { return g.tree }

// K implements GlobalList.
func (g *TreeGlobalList) K() int { return g.dec.K() }

// Count implements GlobalList.
func (g *TreeGlobalList) Count(lvl int) int { return g.tree.Count(lvl) }

// Each implements GlobalList.
func (g *TreeGlobalList) Each(lvl int, fn func(Handle, *match.Match) bool) {
	var sc *eachScratch
	g.tree.Each(lvl, func(n *mstree.Node) bool {
		if sc == nil {
			sc = g.scratch.Get().(*eachScratch)
		}
		sc.ebuf = g.fill(sc.m, n, sc.ebuf)
		return fn(n, sc.m)
	})
	if sc != nil {
		g.scratch.Put(sc)
	}
}

// EachCandidate implements GlobalList: a fingerprint lookup on item
// lvl's shared-binding buckets.
func (g *TreeGlobalList) EachCandidate(lvl int, fp uint64, fn func(Handle, *match.Match) bool) {
	var sc *eachScratch
	g.tree.EachCandidate(lvl, fp, func(n *mstree.Node) bool {
		if sc == nil {
			sc = g.scratch.Get().(*eachScratch)
		}
		sc.ebuf = g.fill(sc.m, n, sc.ebuf)
		return fn(n, sc.m)
	})
	if sc != nil {
		g.scratch.Put(sc)
	}
}

// Materialize implements GlobalList.
func (g *TreeGlobalList) Materialize(_ int, h Handle) *match.Match {
	m := match.New(g.q)
	g.fill(m, h.(*mstree.Node), nil)
	return m
}

// fill rebuilds the combined match for global node n: walk global parents
// down to item 2, whose parent is a leaf of the first sub-list's tree,
// binding each referenced submatch's path along the way.
func (g *TreeGlobalList) fill(m *match.Match, n *mstree.Node, ebuf []graph.Edge) []graph.Edge {
	m.Reset()
	cur := n
	for lvl := n.Level; lvl >= 2; lvl-- {
		ebuf = g.bindSub(m, lvl, cur.Sub, ebuf)
		if lvl == 2 {
			ebuf = g.bindSub(m, 1, cur.Parent, ebuf)
		}
		cur = cur.Parent
	}
	return ebuf
}

// bindSub binds into m the submatch of the subIdx-th (1-based)
// TC-subquery represented by leaf.
func (g *TreeGlobalList) bindSub(m *match.Match, subIdx int, leaf *mstree.Node, ebuf []graph.Edge) []graph.Edge {
	sub := g.dec.Subqueries[subIdx-1]
	ebuf = leaf.PathEdges(ebuf)
	for pos, d := range ebuf {
		m.Bind(g.q, sub.Seq[pos], d)
	}
	return ebuf
}

// Insert implements GlobalList.
func (g *TreeGlobalList) Insert(lvl int, parent, sub Handle) Handle {
	p, _ := parent.(*mstree.Node)
	s, _ := sub.(*mstree.Node)
	n := g.tree.InsertSub(lvl, p, s)
	if n == nil {
		return nil
	}
	return n
}

// DeleteLevel implements GlobalList.
func (g *TreeGlobalList) DeleteLevel(lvl int, deadSubs, parentCasualties []Handle, _ graph.EdgeID) []Handle {
	dead := g.tree.DeleteLevel(lvl, -1, toNodes(parentCasualties), toNodes(deadSubs))
	return toHandles(dead)
}

// DeleteExpired implements GlobalList: one heap-ordered sweep of the
// item. Global nodes inherit their death-time key from the referenced
// submatch leaves at insert, so no sub-list casualties are consulted.
func (g *TreeGlobalList) DeleteExpired(lvl int, watermark graph.Timestamp) int {
	return g.tree.DeleteExpiredBefore(lvl, watermark)
}

// SpaceBytes implements GlobalList.
func (g *TreeGlobalList) SpaceBytes() int64 { return g.tree.SpaceBytes() }

func toNodes(hs []Handle) []*mstree.Node {
	if len(hs) == 0 {
		return nil
	}
	out := make([]*mstree.Node, 0, len(hs))
	for _, h := range hs {
		if n, ok := h.(*mstree.Node); ok {
			out = append(out, n)
		}
	}
	return out
}

func toHandles(ns []*mstree.Node) []Handle {
	if len(ns) == 0 {
		return nil
	}
	out := make([]Handle, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}
