// Package explist implements expansion lists (Definition 9): the ordered
// sequence of items L¹..Lᵏ that store the partial matches of each
// prerequisite subquery of a TC-subquery, and the global list L₀ that
// stores the partial join results across TC-subqueries (Section III-B).
//
// Two storage backends exist: the MS-tree backend (the paper's Timing
// system) and an independent backend that stores every partial match as a
// standalone copy (the paper's Timing-IND ablation).
package explist

import (
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/mstree"
	"timingsubg/internal/query"
)

// Handle identifies a stored partial match inside a list; the concrete
// type depends on the backend. Handles let the engine extend matches in
// O(1) and cascade deletions without re-searching.
type Handle interface{}

// SubList stores the expansion list Lᵢ of one TC-subquery: item j holds
// the matches of the prerequisite subquery Preq(εⱼ) = {ε₁..εⱼ}.
type SubList interface {
	// Depth returns |Qi|, the number of items.
	Depth() int
	// Count returns the number of matches stored at item lvl (1-based).
	Count(lvl int) int
	// Each calls fn with each stored match of item lvl until fn returns
	// false. The *match.Match passed to fn is scratch reused across
	// iterations; fn must Clone it to retain it.
	Each(lvl int, fn func(h Handle, m *match.Match) bool)
	// Insert stores the match obtained by extending parent with data edge
	// e (bound to the lvl-th sequence edge); parent is nil for lvl 1.
	// It returns nil if the parent died concurrently.
	Insert(lvl int, parent Handle, e graph.Edge) Handle
	// Materialize rebuilds a fresh copy of the match identified by h at
	// item lvl.
	Materialize(lvl int, h Handle) *match.Match
	// DeleteLevel removes at item lvl every match containing expired edge
	// edgeID and every extension of parentCasualties, returning this
	// level's casualties.
	DeleteLevel(lvl int, edgeID graph.EdgeID, parentCasualties []Handle) []Handle
	// SpaceBytes estimates resident bytes (call while quiescent).
	SpaceBytes() int64
}

// GlobalList stores the expansion list L₀ over a decomposition
// {Q¹..Qᵏ}: item i holds matches of Q¹∪..∪Qⁱ. Item 1 aliases the last
// item of the first sub-list (Section V-A), so a GlobalList only
// materializes items 2..k.
type GlobalList interface {
	// K returns the decomposition size.
	K() int
	// Count returns the number of matches at item lvl (lvl ≥ 2).
	Count(lvl int) int
	// Each calls fn with each stored match of item lvl (≥ 2). The match
	// is scratch reused across iterations; Clone to retain.
	Each(lvl int, fn func(h Handle, m *match.Match) bool)
	// Insert stores the join of parent (an item lvl−1 handle; for lvl ==
	// 2 a handle from the first sub-list's last item) with the submatch
	// of Q^lvl identified by sub (a handle from sub-list lvl's last
	// item). Returns nil if either side died concurrently.
	Insert(lvl int, parent, sub Handle) Handle
	// Materialize rebuilds a fresh copy of the combined match at item lvl.
	Materialize(lvl int, h Handle) *match.Match
	// DeleteLevel removes at item lvl every match whose Q^lvl submatch is
	// in deadSubs, every extension of parentCasualties, and (independent
	// backend) every match containing edgeID; returns this level's
	// casualties.
	DeleteLevel(lvl int, deadSubs, parentCasualties []Handle, edgeID graph.EdgeID) []Handle
	// SpaceBytes estimates resident bytes (call while quiescent).
	SpaceBytes() int64
}

// ---------------------------------------------------------------------
// MS-tree backend
// ---------------------------------------------------------------------

// TreeSubList is the MS-tree backed SubList.
type TreeSubList struct {
	q    *query.Query
	sub  *query.TCSubquery
	tree *mstree.Tree
}

// NewTreeSubList returns an MS-tree backed expansion list for sub.
func NewTreeSubList(q *query.Query, sub *query.TCSubquery) *TreeSubList {
	return &TreeSubList{q: q, sub: sub, tree: mstree.New(sub.Len())}
}

// Tree exposes the underlying MS-tree for tests and space audits.
func (l *TreeSubList) Tree() *mstree.Tree { return l.tree }

// Depth implements SubList.
func (l *TreeSubList) Depth() int { return l.sub.Len() }

// Count implements SubList.
func (l *TreeSubList) Count(lvl int) int { return l.tree.Count(lvl) }

// Each implements SubList. Scratch buffers are per call so concurrent
// shared-lock readers never share state.
func (l *TreeSubList) Each(lvl int, fn func(Handle, *match.Match) bool) {
	var scratch *match.Match
	var ebuf []graph.Edge
	l.tree.Each(lvl, func(n *mstree.Node) bool {
		if scratch == nil {
			scratch = match.New(l.q)
		}
		ebuf = l.fill(scratch, n, ebuf)
		return fn(n, scratch)
	})
}

// Materialize implements SubList.
func (l *TreeSubList) Materialize(_ int, h Handle) *match.Match {
	m := match.New(l.q)
	l.fill(m, h.(*mstree.Node), nil)
	return m
}

// fill rebuilds into m the partial match for node n by backtracking its
// path, reusing ebuf; it returns the (possibly grown) buffer.
func (l *TreeSubList) fill(m *match.Match, n *mstree.Node, ebuf []graph.Edge) []graph.Edge {
	ebuf = n.PathEdges(ebuf)
	resetMatch(m)
	for pos, d := range ebuf {
		m.Bind(l.q, l.sub.Seq[pos], d)
	}
	return ebuf
}

// Insert implements SubList.
func (l *TreeSubList) Insert(lvl int, parent Handle, e graph.Edge) Handle {
	var p *mstree.Node
	if parent != nil {
		p = parent.(*mstree.Node)
	}
	n := l.tree.InsertEdge(lvl, p, e)
	if n == nil {
		return nil
	}
	return n
}

// DeleteLevel implements SubList.
func (l *TreeSubList) DeleteLevel(lvl int, edgeID graph.EdgeID, parentCasualties []Handle) []Handle {
	dead := l.tree.DeleteLevel(lvl, edgeID, toNodes(parentCasualties), nil)
	return toHandles(dead)
}

// SpaceBytes implements SubList.
func (l *TreeSubList) SpaceBytes() int64 { return l.tree.SpaceBytes() }

// TreeGlobalList is the MS-tree backed GlobalList: nodes hold pointers to
// complete-submatch leaves in the sub-lists' trees rather than copies
// (Section IV-A).
type TreeGlobalList struct {
	q    *query.Query
	dec  *query.Decomposition
	tree *mstree.Tree
}

// NewTreeGlobalList returns an MS-tree backed L₀ for the decomposition.
func NewTreeGlobalList(q *query.Query, dec *query.Decomposition) *TreeGlobalList {
	return &TreeGlobalList{q: q, dec: dec, tree: mstree.New(dec.K())}
}

// Tree exposes the underlying MS-tree for tests and space audits.
func (g *TreeGlobalList) Tree() *mstree.Tree { return g.tree }

// K implements GlobalList.
func (g *TreeGlobalList) K() int { return g.dec.K() }

// Count implements GlobalList.
func (g *TreeGlobalList) Count(lvl int) int { return g.tree.Count(lvl) }

// Each implements GlobalList.
func (g *TreeGlobalList) Each(lvl int, fn func(Handle, *match.Match) bool) {
	var scratch *match.Match
	var ebuf []graph.Edge
	g.tree.Each(lvl, func(n *mstree.Node) bool {
		if scratch == nil {
			scratch = match.New(g.q)
		}
		ebuf = g.fill(scratch, n, ebuf)
		return fn(n, scratch)
	})
}

// Materialize implements GlobalList.
func (g *TreeGlobalList) Materialize(_ int, h Handle) *match.Match {
	m := match.New(g.q)
	g.fill(m, h.(*mstree.Node), nil)
	return m
}

// fill rebuilds the combined match for global node n: walk global parents
// down to item 2, whose parent is a leaf of the first sub-list's tree,
// binding each referenced submatch's path along the way.
func (g *TreeGlobalList) fill(m *match.Match, n *mstree.Node, ebuf []graph.Edge) []graph.Edge {
	resetMatch(m)
	cur := n
	for lvl := n.Level; lvl >= 2; lvl-- {
		ebuf = g.bindSub(m, lvl, cur.Sub, ebuf)
		if lvl == 2 {
			ebuf = g.bindSub(m, 1, cur.Parent, ebuf)
		}
		cur = cur.Parent
	}
	return ebuf
}

// bindSub binds into m the submatch of the subIdx-th (1-based)
// TC-subquery represented by leaf.
func (g *TreeGlobalList) bindSub(m *match.Match, subIdx int, leaf *mstree.Node, ebuf []graph.Edge) []graph.Edge {
	sub := g.dec.Subqueries[subIdx-1]
	ebuf = leaf.PathEdges(ebuf)
	for pos, d := range ebuf {
		m.Bind(g.q, sub.Seq[pos], d)
	}
	return ebuf
}

// Insert implements GlobalList.
func (g *TreeGlobalList) Insert(lvl int, parent, sub Handle) Handle {
	p, _ := parent.(*mstree.Node)
	s, _ := sub.(*mstree.Node)
	n := g.tree.InsertSub(lvl, p, s)
	if n == nil {
		return nil
	}
	return n
}

// DeleteLevel implements GlobalList.
func (g *TreeGlobalList) DeleteLevel(lvl int, deadSubs, parentCasualties []Handle, _ graph.EdgeID) []Handle {
	dead := g.tree.DeleteLevel(lvl, -1, toNodes(parentCasualties), toNodes(deadSubs))
	return toHandles(dead)
}

// SpaceBytes implements GlobalList.
func (g *TreeGlobalList) SpaceBytes() int64 { return g.tree.SpaceBytes() }

func toNodes(hs []Handle) []*mstree.Node {
	if len(hs) == 0 {
		return nil
	}
	out := make([]*mstree.Node, 0, len(hs))
	for _, h := range hs {
		if n, ok := h.(*mstree.Node); ok {
			out = append(out, n)
		}
	}
	return out
}

func toHandles(ns []*mstree.Node) []Handle {
	if len(ns) == 0 {
		return nil
	}
	out := make([]Handle, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

func resetMatch(m *match.Match) {
	for i := range m.Vtx {
		m.Vtx[i] = match.Unbound
	}
	for i := range m.Edges {
		m.Edges[i].ID = match.NoEdge
	}
	m.EdgeMask = 0
}
