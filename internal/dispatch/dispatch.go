// Package dispatch is the results plane of the timingsubg engine: one
// dispatcher per engine fans completed matches out to any number of
// runtime-attached subscriptions, each with its own query-name filter,
// buffer and overflow policy. It replaces both the OnMatch-callback
// monoculture (a single consumer frozen at Open time) and the bespoke
// SSE hub the serving layer used to keep: the engine-side contract and
// the network contract are now the same subscription.
//
// # Delivery model
//
// Publish is called from the engine's (per-query serialized) match
// reporting path. Each publish assigns the match a per-query delivery
// sequence number, starting at 1, that is stable for a given stream:
// in durable mode the counter is seeded from the recovered checkpoint
// (SeedSeq), so a match re-reported by recovery replay carries the
// same sequence number it had before the crash. Consumers that track
// their per-query high-water mark therefore get duplicate suppression
// across restarts by comparing integers — no content hashing, no
// bounded-capacity deduper.
//
// Synchronous subscribers (SubscribeFunc — the OnMatch/OnDelivery
// shims) receive the engine's scratch match inline on the reporting
// goroutine, exactly like the old callback. Channel subscribers each
// receive their own clone (the consumer owns it) and are each
// delivered under their own lock, so fan-out from concurrent fleet
// shards is serialized per subscription while distinct subscriptions
// proceed in parallel.
package dispatch

import (
	"strings"
	"sync"
	"sync/atomic"

	"timingsubg/internal/match"
)

// Policy says what a publish does when a subscription's buffer is full.
type Policy int

const (
	// Block waits for the consumer: no loss, at the price of stalling
	// the publishing engine (backpressure).
	Block Policy = iota
	// DropOldest evicts the oldest buffered delivery to make room, so
	// the buffer always holds the newest matches. Ingest never stalls.
	DropOldest
	// DropNewest drops the incoming delivery, keeping the oldest
	// buffered matches. Ingest never stalls.
	DropNewest
)

// Delivery is one match handed to a subscriber.
type Delivery struct {
	// Query names the query that matched ("" on single-query engines).
	Query string
	// Seq is the per-query delivery sequence number, from 1. Stable
	// across durable recovery replay (see package comment).
	Seq int64
	// Match is the complete match. Channel subscribers own it (it is a
	// clone); SubscribeFunc subscribers get the engine's scratch match
	// and must Clone to retain it, exactly like the old OnMatch.
	Match *match.Match
}

// Options configures one subscription.
type Options struct {
	// Queries filters deliveries by query name; nil or empty means
	// every query, including ones registered after the subscription.
	Queries []string
	// Prefix, when non-empty, additionally restricts the subscription
	// to queries whose name starts with it — the namespace form of the
	// filter. Unlike Queries it follows the roster dynamically: queries
	// registered later under the prefix are delivered, and the
	// subscription does not end when its current queries retire.
	Prefix string
	// Buffer is the channel capacity; values < 1 become 1.
	Buffer int
	// Policy is the overflow policy when the buffer is full.
	Policy Policy
	// AfterSeq holds per-query resume cursors: a delivery for query q
	// with Seq <= AfterSeq[q] is silently skipped (not counted as
	// dropped). The dedup half of resumable delivery.
	AfterSeq map[string]int64
}

// Dispatcher fans match deliveries out to subscriptions. One per
// engine; safe for concurrent Publish across distinct queries.
type Dispatcher struct {
	mu     sync.Mutex
	subs   map[*Sub]struct{}
	fns    []func(Delivery) // synchronous subscribers, fixed at open
	seq    map[string]int64
	closed bool

	delivered atomic.Int64
	dropped   atomic.Int64

	// perQuery attributes delivered/dropped per query name (the
	// observability plane's per-query accounting). sync.Map because
	// drop attribution happens under a Sub's lock, outside d.mu.
	perQuery sync.Map // string → *queryCounts
}

// queryCounts is one query's delivery accounting cell.
type queryCounts struct {
	delivered atomic.Int64
	dropped   atomic.Int64
}

// qc returns query's counter cell, creating it on first use.
func (d *Dispatcher) qc(query string) *queryCounts {
	if v, ok := d.perQuery.Load(query); ok {
		return v.(*queryCounts)
	}
	v, _ := d.perQuery.LoadOrStore(query, &queryCounts{})
	return v.(*queryCounts)
}

// QueryCounts returns deliveries buffered and dropped for one query
// name, across all of its subscriptions.
func (d *Dispatcher) QueryCounts(query string) (delivered, dropped int64) {
	if v, ok := d.perQuery.Load(query); ok {
		c := v.(*queryCounts)
		return c.delivered.Load(), c.dropped.Load()
	}
	return 0, 0
}

// New returns an empty dispatcher.
func New() *Dispatcher {
	return &Dispatcher{
		subs: make(map[*Sub]struct{}),
		seq:  make(map[string]int64),
	}
}

// SubscribeFunc attaches a synchronous subscriber invoked inline on
// the publishing goroutine for every query — the OnMatch/OnDelivery
// shim. Call only before the engine starts publishing (at Open).
func (d *Dispatcher) SubscribeFunc(fn func(Delivery)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fns = append(d.fns, fn)
}

// SeedSeq sets query's next-delivery baseline to n, so the next
// publish is n+1. Durable recovery seeds each query with its
// checkpointed match count before replaying the WAL suffix, which is
// what makes replayed sequence numbers identical to the pre-crash run.
func (d *Dispatcher) SeedSeq(query string, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq[query] = n
}

// ResetSeq zeroes query's delivery counter (query retirement: a later
// query reusing the name starts a fresh sequence, matching what a
// durable restart would produce).
func (d *Dispatcher) ResetSeq(query string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.seq, query)
	d.perQuery.Delete(query)
}

// Seq returns query's latest assigned sequence number.
func (d *Dispatcher) Seq(query string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq[query]
}

// Subscribe attaches one channel subscription, or returns nil if the
// dispatcher is closed. Safe to call at any time, from any goroutine.
func (d *Dispatcher) Subscribe(o Options) *Sub {
	if o.Buffer < 1 {
		o.Buffer = 1
	}
	s := &Sub{
		d:      d,
		policy: o.Policy,
		prefix: o.Prefix,
		ch:     make(chan Delivery, o.Buffer),
		done:   make(chan struct{}),
	}
	if len(o.Queries) > 0 {
		s.filter = make(map[string]struct{}, len(o.Queries))
		for _, q := range o.Queries {
			s.filter[q] = struct{}{}
		}
	}
	if len(o.AfterSeq) > 0 {
		s.after = make(map[string]int64, len(o.AfterSeq))
		for q, n := range o.AfterSeq {
			s.after[q] = n
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.subs[s] = struct{}{}
	return s
}

// Publish assigns the next sequence number for query and fans m out.
// Must be serialized per query (the engine's match reporting already
// is); distinct queries may publish concurrently. m is the engine's
// scratch match: synchronous subscribers see it directly, channel
// subscribers each get their own clone (the delivered match is owned
// by its consumer).
func (d *Dispatcher) Publish(query string, m *match.Match) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	seq := d.seq[query] + 1
	d.seq[query] = seq
	fns := d.fns
	d.mu.Unlock()

	// Synchronous subscribers run BEFORE the channel-subscriber
	// snapshot. This ordering is what makes snapshot-then-replay
	// consumers (the server's resume ring, fed by an fn-subscriber)
	// race-free: a subscription attached before the snapshot receives
	// the event live; one attached after it was created after the fn
	// ran, so a ring read performed after Subscribe returns is
	// guaranteed to see the event. Either way, nothing falls between.
	dv := Delivery{Query: query, Seq: seq, Match: m}
	for _, fn := range fns {
		fn(dv)
	}

	d.mu.Lock()
	var targets []*Sub
	for s := range d.subs {
		if s.wants(query) {
			targets = append(targets, s)
		}
	}
	d.mu.Unlock()
	for _, s := range targets {
		if seq <= s.after[query] {
			continue // resume cursor: already seen, don't even clone
		}
		s.deliver(Delivery{Query: query, Seq: seq, Match: m.Clone()})
	}
}

// Retire ends every subscription whose explicit filter no longer names
// any live query (live reports liveness by name). Unfiltered
// subscriptions are untouched — they follow the roster dynamically.
// The retired query's sequence counter is reset.
func (d *Dispatcher) Retire(name string, live func(string) bool) {
	d.mu.Lock()
	delete(d.seq, name)
	d.perQuery.Delete(name)
	var ended []*Sub
	for s := range d.subs {
		if s.filter == nil {
			continue
		}
		if _, ok := s.filter[name]; !ok {
			continue
		}
		anyLive := false
		for q := range s.filter {
			if live(q) {
				anyLive = true
				break
			}
		}
		if !anyLive {
			ended = append(ended, s)
		}
	}
	d.mu.Unlock()
	for _, s := range ended {
		s.Cancel()
	}
}

// Close cancels every subscription (their channels close) and rejects
// future subscribes. Idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	subs := make([]*Sub, 0, len(d.subs))
	for s := range d.subs {
		subs = append(subs, s)
	}
	d.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}

// Subscribers returns the number of live channel subscriptions.
func (d *Dispatcher) Subscribers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.subs)
}

// Delivered returns the total deliveries buffered to channel
// subscribers (synchronous subscribers are not counted).
func (d *Dispatcher) Delivered() int64 { return d.delivered.Load() }

// Dropped returns the total deliveries dropped by overflow policies,
// across live and cancelled subscriptions.
func (d *Dispatcher) Dropped() int64 { return d.dropped.Load() }

// remove detaches s without closing its channel (Cancel does both).
func (d *Dispatcher) remove(s *Sub) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.subs, s)
}

// Stats is one subscription's delivery accounting.
type Stats struct {
	// Delivered counts deliveries buffered to the channel.
	Delivered int64
	// Dropped counts deliveries lost to the overflow policy (or to
	// publishes racing Cancel).
	Dropped int64
}

// Sub is one live channel subscription.
type Sub struct {
	d      *Dispatcher
	filter map[string]struct{} // nil = all queries
	prefix string              // "" = no prefix restriction
	after  map[string]int64    // read-only resume cursors
	policy Policy

	ch   chan Delivery
	done chan struct{}
	once sync.Once

	mu     sync.Mutex // serializes deliver against deliver and Cancel
	closed bool

	delivered atomic.Int64
	dropped   atomic.Int64
}

// C is the delivery channel. It closes when the subscription is
// cancelled, its last filtered query is retired, or the engine closes;
// buffered deliveries remain readable after that.
func (s *Sub) C() <-chan Delivery { return s.ch }

// Stats returns the subscription's delivery accounting.
func (s *Sub) Stats() Stats {
	return Stats{Delivered: s.delivered.Load(), Dropped: s.dropped.Load()}
}

// Cancel detaches the subscription and closes its channel. Idempotent,
// safe to call concurrently with deliveries — a Block delivery stuck
// on a full buffer is released.
func (s *Sub) Cancel() {
	s.once.Do(func() {
		close(s.done) // releases a blocked deliver before we take mu
		s.d.remove(s)
		s.mu.Lock()
		s.closed = true
		close(s.ch)
		s.mu.Unlock()
	})
}

// wants reports whether the subscription's filter admits query.
// Caller holds d.mu (the filter itself is immutable).
func (s *Sub) wants(query string) bool {
	if s.prefix != "" && !strings.HasPrefix(query, s.prefix) {
		return false
	}
	if s.filter == nil {
		return true
	}
	_, ok := s.filter[query]
	return ok
}

// deliver applies the overflow policy to one delivery (already past
// the subscription's resume cursor; dv.Match is this subscription's
// own clone). Per-sub serialization (s.mu) keeps a subscription's
// stream in publish order even when fleet shards publish different
// queries concurrently.
func (s *Sub) deliver(dv Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.drop(dv.Query)
		return
	}
	switch s.policy {
	case DropNewest:
		select {
		case s.ch <- dv:
			s.count(dv.Query)
		default:
			s.drop(dv.Query)
		}
	case DropOldest:
		for {
			select {
			case s.ch <- dv:
				s.count(dv.Query)
				return
			default:
			}
			// Full: evict the oldest buffered delivery. Only this
			// goroutine sends (s.mu), so after one receive the next
			// send attempt succeeds unless the consumer drained the
			// buffer first — in which case the send succeeds anyway.
			// The drop is attributed to the evicted delivery's query,
			// which may differ from dv's on a multi-query subscription.
			select {
			case old := <-s.ch:
				s.drop(old.Query)
			default:
			}
		}
	default: // Block
		// The Block policy delivers under s.mu by design: the mutex is
		// this subscription's private serializer (never an engine or
		// dispatcher lock), and blocking while holding it is exactly the
		// documented backpressure contract — concurrent publishers to
		// the same subscription must queue behind the stalled consumer.
		//tsvet:allow lockhold — per-subscription Block backpressure holds only s.mu
		select {
		case s.ch <- dv:
			s.count(dv.Query)
		case <-s.done:
			s.drop(dv.Query)
		}
	}
}

func (s *Sub) count(query string) {
	s.delivered.Add(1)
	s.d.delivered.Add(1)
	s.d.qc(query).delivered.Add(1)
}

func (s *Sub) drop(query string) {
	s.dropped.Add(1)
	s.d.dropped.Add(1)
	s.d.qc(query).dropped.Add(1)
}
