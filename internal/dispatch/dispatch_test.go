package dispatch

import (
	"sync"
	"testing"
	"time"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
)

func mkMatch(id int64) *match.Match {
	return &match.Match{Edges: []graph.Edge{{ID: graph.EdgeID(id)}}}
}

func TestSequenceNumbering(t *testing.T) {
	d := New()
	var got []int64
	d.SubscribeFunc(func(dv Delivery) { got = append(got, dv.Seq) })
	for i := 0; i < 3; i++ {
		d.Publish("a", mkMatch(int64(i)))
	}
	d.Publish("b", mkMatch(9))
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 1 {
		t.Fatalf("seqs = %v, want per-query 1,2,3 then 1", got)
	}
	if d.Seq("a") != 3 || d.Seq("b") != 1 {
		t.Fatalf("Seq(a)=%d Seq(b)=%d", d.Seq("a"), d.Seq("b"))
	}
}

func TestSeedSeqResumesNumbering(t *testing.T) {
	d := New()
	d.SeedSeq("q", 41)
	sub := d.Subscribe(Options{Buffer: 4})
	d.Publish("q", mkMatch(1))
	if dv := <-sub.C(); dv.Seq != 42 {
		t.Fatalf("seeded seq = %d, want 42", dv.Seq)
	}
}

func TestFilterAndAfterSeq(t *testing.T) {
	d := New()
	sub := d.Subscribe(Options{Queries: []string{"a"}, Buffer: 8, AfterSeq: map[string]int64{"a": 2}})
	for i := 0; i < 4; i++ {
		d.Publish("a", mkMatch(int64(i)))
		d.Publish("b", mkMatch(int64(10+i)))
	}
	d.Close()
	var seqs []int64
	for dv := range sub.C() {
		if dv.Query != "a" {
			t.Fatalf("filter leaked query %q", dv.Query)
		}
		seqs = append(seqs, dv.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("resumed seqs = %v, want [3 4]", seqs)
	}
	if st := sub.Stats(); st.Dropped != 0 {
		t.Fatalf("AfterSeq skips counted as drops: %+v", st)
	}
}

func TestChannelSubscriberGetsClone(t *testing.T) {
	d := New()
	var scratch *match.Match
	d.SubscribeFunc(func(dv Delivery) { scratch = dv.Match })
	sub := d.Subscribe(Options{Buffer: 1})
	m := mkMatch(7)
	d.Publish("", m)
	dv := <-sub.C()
	if scratch != m {
		t.Fatal("sync subscriber must see the scratch match")
	}
	if dv.Match == m {
		t.Fatal("channel subscriber must get a clone, not scratch")
	}
	if dv.Match.Edges[0].ID != 7 {
		t.Fatalf("clone content diverged: %+v", dv.Match)
	}
}

func TestRetire(t *testing.T) {
	d := New()
	only := d.Subscribe(Options{Queries: []string{"a"}, Buffer: 1})
	both := d.Subscribe(Options{Queries: []string{"a", "b"}, Buffer: 1})
	all := d.Subscribe(Options{Buffer: 4}) // room for both publishes below
	d.Publish("a", mkMatch(1))

	live := func(q string) bool { return q == "b" }
	d.Retire("a", live)
	if _, ok := <-only.C(); !ok {
		// buffered delivery drains first
		t.Fatal("retired subscription lost its buffered delivery")
	}
	if _, ok := <-only.C(); ok {
		t.Fatal("subscription filtered solely on a retired query must end")
	}
	if dv, ok := <-both.C(); !ok || dv.Query != "a" {
		t.Fatal("surviving subscription lost its buffered delivery")
	}
	select {
	case _, ok := <-both.C():
		if !ok {
			t.Fatal("subscription with a surviving filtered query must stay open")
		}
		t.Fatal("unexpected extra delivery")
	default:
	}
	if d.Seq("a") != 0 {
		t.Fatalf("retired query seq = %d, want reset", d.Seq("a"))
	}
	d.Publish("b", mkMatch(2))
	if dv := <-all.C(); dv.Query != "a" {
		t.Fatalf("unfiltered subscription lost its buffered delivery: %+v", dv)
	}
	if dv := <-all.C(); dv.Query != "b" {
		t.Fatalf("unfiltered subscription missed post-retire publish: %+v", dv)
	}
	d.Close()
	if d.Subscribe(Options{}) != nil {
		t.Fatal("Subscribe after Close must return nil")
	}
}

func TestBlockReleasedByCancel(t *testing.T) {
	d := New()
	sub := d.Subscribe(Options{Buffer: 1, Policy: Block})
	d.Publish("", mkMatch(1)) // fills the buffer
	released := make(chan struct{})
	go func() {
		d.Publish("", mkMatch(2)) // blocks on the full buffer
		close(released)
	}()
	// Let the publisher reach the blocking send before cancelling, so
	// the release path (not the closed-check) is what's exercised.
	time.Sleep(50 * time.Millisecond)
	sub.Cancel()
	<-released
	if st := sub.Stats(); st.Dropped != 1 {
		t.Fatalf("cancelled-while-blocked delivery not accounted: %+v", st)
	}
}

func TestConcurrentPublishDistinctQueries(t *testing.T) {
	d := New()
	sub := d.Subscribe(Options{Buffer: 4096})
	var wg sync.WaitGroup
	for _, q := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Publish(q, mkMatch(int64(i)))
			}
		}(q)
	}
	wg.Wait()
	d.Close()
	next := map[string]int64{}
	for dv := range sub.C() {
		next[dv.Query]++
		if dv.Seq != next[dv.Query] {
			t.Fatalf("query %q delivered seq %d out of order (want %d)", dv.Query, dv.Seq, next[dv.Query])
		}
	}
	for q, n := range next {
		if n != 200 {
			t.Fatalf("query %q delivered %d, want 200", q, n)
		}
	}
}
