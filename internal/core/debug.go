package core

import (
	"fmt"
	"io"
)

// ItemCount is the live partial-match population of one expansion-list
// item, for observability (tsrun and tests read these to see where a
// query's state concentrates).
type ItemCount struct {
	// List is 0 for the global list L₀, 1..k for sub-lists.
	List int
	// Level is the 1-based item index.
	Level int
	// Count is the number of stored partial matches.
	Count int
}

// ItemCounts returns the population of every expansion-list item, sub
// lists first, then the global items (2..k). Call while quiescent.
func (e *Engine) ItemCounts() []ItemCount {
	var out []ItemCount
	for si, sub := range e.subs {
		for lvl := 1; lvl <= sub.Depth(); lvl++ {
			out = append(out, ItemCount{List: si + 1, Level: lvl, Count: sub.Count(lvl)})
		}
	}
	if e.global != nil {
		for lvl := 2; lvl <= e.global.K(); lvl++ {
			out = append(out, ItemCount{List: 0, Level: lvl, Count: e.global.Count(lvl)})
		}
	}
	return out
}

// WriteState dumps the engine's live state (per-item populations and
// counters) for diagnostics.
func (e *Engine) WriteState(w io.Writer) {
	fmt.Fprintf(w, "decomposition k=%d, storage items:\n", e.K())
	for _, ic := range e.ItemCounts() {
		name := fmt.Sprintf("L%d^%d", ic.List, ic.Level)
		fmt.Fprintf(w, "  %-8s %d\n", name, ic.Count)
	}
	fmt.Fprintf(w, "edges in=%d out=%d discarded=%d, joins scanned=%d candidates=%d, partials +%d -%d, matches=%d\n",
		e.stats.EdgesIn.Load(), e.stats.EdgesOut.Load(), e.stats.Discarded.Load(),
		e.stats.JoinScanned.Load(), e.stats.JoinCandidates.Load(),
		e.stats.PartialIns.Load(), e.stats.PartialDel.Load(),
		e.stats.Matches.Load())
}

// SubCardinalities returns the current number of complete matches of
// each TC-subquery (the population of each sub-list's last item), in
// decomposition order. Call while quiescent. The adaptive reoptimizer
// feeds these observed cardinalities back into join-order selection.
func (e *Engine) SubCardinalities() []int {
	out := make([]int, len(e.subs))
	for i, sub := range e.subs {
		out[i] = sub.Count(sub.Depth())
	}
	return out
}
