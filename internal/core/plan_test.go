package core

import (
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/lock"
	"timingsubg/internal/query"
)

// planQuery builds the running-example query (Fig. 5) and an engine.
func planQuery(t *testing.T) (*Engine, *query.Query, *graph.Labels) {
	t.Helper()
	labels := graph.NewLabels()
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")
	ld, le, lf := labels.Intern("d"), labels.Intern("e"), labels.Intern("f")
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc)
	vd, ve, vf := b.AddVertex(ld), b.AddVertex(le), b.AddVertex(lf)
	e1 := b.AddEdge(va, vb)
	b.AddEdge(vb, vc)
	e3 := b.AddEdge(vd, vb)
	e4 := b.AddEdge(vd, vc)
	e5 := b.AddEdge(vc, ve)
	e6 := b.AddEdge(ve, vf)
	b.Before(e6, e3)
	b.Before(e3, e1)
	b.Before(e6, e5)
	b.Before(e5, e4)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return New(q, Config{}), q, labels
}

// TestInsertPlanShape verifies the Section V-A lock-request patterns on
// the running example: a first-sequence-position edge needs exactly one
// exclusive lock; a mid-sequence edge needs S on the previous item and X
// on its own; a sequence-completing edge cascades through the global
// items with alternating S/X requests (the Fig. 13 dispatch pattern).
func TestInsertPlanShape(t *testing.T) {
	eng, q, labels := planQuery(t)
	dec := eng.Decomposition()
	if dec.K() != 3 {
		t.Fatalf("running example must decompose into 3, got %d", dec.K())
	}
	le, lf := labels.Intern("e"), labels.Intern("f")

	// An e→f edge matches ε6, the first edge of its TC-subquery.
	first := graph.Edge{From: 7, To: 8, FromLabel: le, ToLabel: lf, Time: 1}
	plan := eng.InsertPlan(first)
	s, p := dec.Locate(q.MatchingEdges(first)[0])
	if p != 0 {
		t.Fatalf("ε6 must be first in its sequence, got position %d", p)
	}
	want := []lock.Request{{Item: lock.ItemID{List: s + 1, Level: 1}, Mode: lock.X}}
	if len(dec.Subqueries[s].Seq) == 1 {
		t.Fatal("ε6's subquery has 3 edges in the paper")
	}
	if len(plan) != len(want) || plan[0] != want[0] {
		t.Fatalf("first-position plan: want %v, got %v", want, plan)
	}

	// A c→e edge matches ε5, second in the same sequence: S then X.
	lc := labels.Intern("c")
	mid := graph.Edge{From: 4, To: 7, FromLabel: lc, ToLabel: le, Time: 2}
	plan = eng.InsertPlan(mid)
	if len(plan) != 2 {
		t.Fatalf("mid-position plan: want 2 requests, got %v", plan)
	}
	if plan[0].Mode != lock.S || plan[0].Item.Level != 1 {
		t.Errorf("mid plan must read the previous item shared: %v", plan)
	}
	if plan[1].Mode != lock.X || plan[1].Item.Level != 2 {
		t.Errorf("mid plan must write its own item exclusive: %v", plan)
	}
	if plan[0].Item.List != plan[1].Item.List {
		t.Error("both requests target the same sub-list")
	}

	// A d→c edge matches ε4, completing the 3-edge subquery: the plan
	// must continue into the global cascade and end writing L0's last
	// item.
	ld := labels.Intern("d")
	lastE := graph.Edge{From: 5, To: 4, FromLabel: ld, ToLabel: lc, Time: 3}
	plan = eng.InsertPlan(lastE)
	if len(plan) < 4 {
		t.Fatalf("sequence-completing plan must cascade, got %v", plan)
	}
	tail := plan[len(plan)-1]
	if tail.Mode != lock.X || tail.Item.List != 0 || tail.Item.Level != dec.K() {
		t.Errorf("cascade must end with X on L0^%d, got %v", dec.K(), tail)
	}
	// Alternating read/write pattern in the cascade: every X(0, x) is
	// preceded by an S read.
	for i, r := range plan {
		if r.Item.List == 0 && r.Mode == lock.X && i > 0 {
			if plan[i-1].Mode != lock.S {
				t.Errorf("global write at %d not preceded by a read: %v", i, plan)
			}
		}
	}

	// An edge matching nothing has an empty plan.
	quiet := labels.Intern("zz")
	if got := eng.InsertPlan(graph.Edge{From: 1, To: 2, FromLabel: quiet, ToLabel: quiet}); len(got) != 0 {
		t.Errorf("unmatched edge must need no locks, got %v", got)
	}
}

// TestDeletePlanShape verifies Del(σ) locks every level of each matched
// sub-list exclusively, then the global items from its join position on.
func TestDeletePlanShape(t *testing.T) {
	eng, _, labels := planQuery(t)
	dec := eng.Decomposition()
	le, lf := labels.Intern("e"), labels.Intern("f")
	d := graph.Edge{From: 7, To: 8, FromLabel: le, ToLabel: lf, Time: 1}
	plan := eng.DeletePlan(d)
	if len(plan) == 0 {
		t.Fatal("matched edge needs a delete plan")
	}
	for _, r := range plan {
		if r.Mode != lock.X {
			t.Fatalf("deletes use exclusive locks only, got %v", plan)
		}
	}
	// The sub-list must be locked level by level from 1.
	s, _ := dec.Locate(0)
	_ = s
	if plan[0].Item.Level != 1 {
		t.Errorf("delete starts at the first item, got %v", plan[0])
	}
	// The plan must reach the global list when the subquery joins it.
	sawGlobal := false
	for _, r := range plan {
		if r.Item.List == 0 {
			sawGlobal = true
		}
	}
	if !sawGlobal && dec.K() > 1 {
		// Sub 1's global item aliases its own last item, so a match in
		// sub 1 may legitimately skip explicit L0 locks only if its
		// cascade starts at level 2.
		t.Log("plan:", plan)
		t.Error("delete plan must cover the global cascade")
	}
}
