package core_test

import (
	"sort"
	"strings"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// TestOrderMonotonicity checks the core semantic property of timing
// orders: strengthening ≺ can only remove matches. For random walks we
// build three queries over the same graph — empty, random, full — and
// verify result-set containment full ⊆ random ⊆ empty.
func TestOrderMonotonicity(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		labels := graph.NewLabels()
		gen := datagen.New(datagen.Datasets()[trial%3], labels,
			datagen.Config{Vertices: 500, Seed: int64(trial*13 + 1)})
		edges := gen.Take(900)

		// Use one witness subgraph for all three orders by fixing the
		// walk seed and only changing the order kind.
		mkKeys := func(kind querygen.OrderKind) (map[string]bool, bool) {
			q, _, err := querygen.Generate(edges[:400], querygen.Config{
				Size: 4, Order: kind, Seed: 99})
			if err != nil {
				return nil, false
			}
			keys := map[string]bool{}
			eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
				keys[m.Key()] = true
			}})
			runStream(t, edges, 300, eng.Process)
			return keys, true
		}
		empty, ok1 := mkKeys(querygen.EmptyOrder)
		random, ok2 := mkKeys(querygen.RandomOrder)
		full, ok3 := mkKeys(querygen.FullOrder)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		for k := range random {
			if !empty[k] {
				t.Errorf("trial %d: random-order match %s missing under empty order", trial, k)
			}
		}
		for k := range full {
			if !empty[k] {
				t.Errorf("trial %d: full-order match %s missing under empty order", trial, k)
			}
		}
		if len(full) > len(random) || len(random) > len(empty) {
			t.Errorf("trial %d: monotonicity violated: |full|=%d |random|=%d |empty|=%d",
				trial, len(full), len(random), len(empty))
		}
	}
}

// TestDiscardableEdgeCounting reproduces the paper's discardable-edge
// discussion: in the running example, σ6 (matching only ε1) is
// discardable at t=6 because no edge matching ε3 arrived before it.
func TestDiscardableEdgeCounting(t *testing.T) {
	labels := graph.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	ld := labels.Intern("d")
	b := query.NewBuilder()
	va, vb, vd := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(ld)
	e1 := b.AddEdge(va, vb) // ε1
	e3 := b.AddEdge(vd, vb) // ε3
	b.Before(e3, e1)        // 3 ≺ 1
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(q, core.Config{})
	// a→b arrives with no prior d→b: discardable.
	eng.Insert(graph.Edge{ID: 0, From: 2, To: 3, FromLabel: la, ToLabel: lb, Time: 1})
	if got := eng.Stats().Discarded.Load(); got != 1 {
		t.Fatalf("want 1 discardable edge, got %d", got)
	}
	if got := eng.PartialMatchCount(); got != 0 {
		t.Fatalf("discardable edges must not be stored, got %d partials", got)
	}
	// d→b arrives: stored as a match of Preq(ε3).
	eng.Insert(graph.Edge{ID: 1, From: 5, To: 3, FromLabel: ld, ToLabel: lb, Time: 2})
	if got := eng.PartialMatchCount(); got != 1 {
		t.Fatalf("prerequisite edge must be stored, got %d partials", got)
	}
	// a→b arrives again, now extendable: completes a match.
	eng.Insert(graph.Edge{ID: 2, From: 2, To: 3, FromLabel: la, ToLabel: lb, Time: 3})
	if got := eng.Stats().Matches.Load(); got != 1 {
		t.Fatalf("want 1 match, got %d", got)
	}
}

// TestEdgeLabeledQueries runs a network-flow-style query whose edges are
// distinguished only by edge labels (all vertices share the "IP" label).
func TestEdgeLabeledQueries(t *testing.T) {
	labels := graph.NewLabels()
	ip := labels.Intern("IP")
	http := labels.Intern("http")
	tcp := labels.Intern("tcp")

	b := query.NewBuilder()
	v, w := b.AddVertex(ip), b.AddVertex(ip)
	browse := b.AddLabeledEdge(v, w, http)
	answer := b.AddLabeledEdge(w, v, tcp)
	b.Before(browse, answer)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var keys []string
	eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		keys = append(keys, m.Key())
	}})
	edges := []graph.Edge{
		{From: 1, To: 2, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 1},  // wrong label for browse
		{From: 1, To: 2, FromLabel: ip, ToLabel: ip, EdgeLabel: http, Time: 2}, // browse
		{From: 2, To: 1, FromLabel: ip, ToLabel: ip, EdgeLabel: http, Time: 3}, // wrong label for answer
		{From: 2, To: 1, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 4},  // answer: match
	}
	runStream(t, edges, 100, eng.Process)
	if len(keys) != 1 {
		t.Fatalf("want exactly one labelled match, got %v", keys)
	}
}

// TestExpiryRemovesEverything feeds a burst and then lets the whole
// window expire; all stored partial matches must drain.
func TestExpiryRemovesEverything(t *testing.T) {
	for _, storage := range []core.Storage{core.MSTree, core.Independent} {
		labels := graph.NewLabels()
		gen := datagen.New(datagen.SocialStream, labels, datagen.Config{Vertices: 200, Seed: 4})
		edges := gen.Take(400)
		q, _, err := querygen.Generate(edges, querygen.Config{Size: 3, Seed: 8})
		if err != nil {
			t.Skipf("no query: %v", err)
		}
		eng := core.New(q, core.Config{Storage: storage})
		st := graph.NewStream(100)
		for _, e := range edges {
			stored, expired, err := st.Push(e)
			if err != nil {
				t.Fatal(err)
			}
			eng.Process(stored, expired)
		}
		// A final far-future unmatched edge slides everything out.
		quiet := labels.Intern("quiet-label")
		stored, expired, err := st.Push(graph.Edge{
			From: 1, To: 2, FromLabel: quiet, ToLabel: quiet,
			Time: edges[len(edges)-1].Time + 10_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.Process(stored, expired)
		if got := eng.PartialMatchCount(); got != 0 {
			t.Errorf("storage %d: %d partial matches survived full expiry", storage, got)
		}
		if eng.SpaceBytes() != 0 {
			t.Errorf("storage %d: space must drain to 0, got %d", storage, eng.SpaceBytes())
		}
	}
}

// TestMatchesReportedOnce verifies no duplicate reports across a full
// run (matches are keyed by their data-edge assignment).
func TestMatchesReportedOnce(t *testing.T) {
	labels := graph.NewLabels()
	gen := datagen.New(datagen.WikiTalk, labels, datagen.Config{Vertices: 300, Seed: 12})
	edges := gen.Take(800)
	q, _, err := querygen.Generate(edges[:300], querygen.Config{Size: 4, Order: querygen.EmptyOrder, Seed: 2})
	if err != nil {
		t.Skipf("no query: %v", err)
	}
	seen := map[string]int{}
	eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		seen[m.Key()]++
	}})
	runStream(t, edges, 250, eng.Process)
	var dups []string
	for k, n := range seen {
		if n > 1 {
			dups = append(dups, k)
		}
	}
	sort.Strings(dups)
	if len(dups) > 0 {
		t.Errorf("%d matches reported more than once, e.g. %s", len(dups), dups[0])
	}
}

// TestStatsConsistency sanity-checks the counter relationships.
func TestStatsConsistency(t *testing.T) {
	labels := graph.NewLabels()
	gen := datagen.New(datagen.NetworkFlow, labels, datagen.Config{Vertices: 300, Seed: 3})
	edges := gen.Take(600)
	q, _, err := querygen.Generate(edges[:200], querygen.Config{Size: 4, Seed: 6})
	if err != nil {
		t.Skipf("no query: %v", err)
	}
	eng := core.New(q, core.Config{})
	runStream(t, edges, 200, eng.Process)
	st := eng.Stats()
	if st.EdgesIn.Load() != int64(len(edges)) {
		t.Errorf("EdgesIn: want %d, got %d", len(edges), st.EdgesIn.Load())
	}
	if st.EdgesOut.Load() != int64(len(edges)-200) {
		t.Errorf("EdgesOut: want %d, got %d", len(edges)-200, st.EdgesOut.Load())
	}
	if st.Discarded.Load() > st.EdgesIn.Load() {
		t.Error("Discarded cannot exceed EdgesIn")
	}
	if st.Matches.Load() < 0 || st.PartialIns.Load() < st.Matches.Load() {
		t.Error("every match is at least one partial insertion")
	}
}

// TestCurrentMatches verifies the standing-match view: matches appear
// when complete and disappear when a member edge expires.
func TestCurrentMatches(t *testing.T) {
	labels := graph.NewLabels()
	la, lb, lc := labels.Intern("a"), labels.Intern("b"), labels.Intern("c")
	for _, chain := range []bool{true, false} {
		b := query.NewBuilder()
		va, vb, vc := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc)
		e1 := b.AddEdge(va, vb)
		e2 := b.AddEdge(vb, vc)
		if chain {
			b.Before(e1, e2) // k=1
		} // else k=2: exercises the global list path
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		eng := core.New(q, core.Config{})
		st := graph.NewStream(5)
		push := func(f, to int64, fl, tl graph.Label, tm int64) {
			t.Helper()
			stored, expired, err := st.Push(graph.Edge{
				From: graph.VertexID(f), To: graph.VertexID(to),
				FromLabel: fl, ToLabel: tl, Time: graph.Timestamp(tm)})
			if err != nil {
				t.Fatal(err)
			}
			eng.Process(stored, expired)
		}
		push(1, 2, la, lb, 1)
		push(2, 3, lb, lc, 2)
		if got := eng.CurrentMatchCount(); got != 1 {
			t.Fatalf("chain=%v: want 1 standing match, got %d", chain, got)
		}
		n := 0
		eng.CurrentMatches(func(m *match.Match) bool {
			if err := m.Verify(q); err != nil {
				t.Errorf("standing match invalid: %v", err)
			}
			n++
			return true
		})
		if n != 1 {
			t.Fatalf("chain=%v: enumerated %d", chain, n)
		}
		// Slide the first edge out: the match must vanish.
		push(7, 8, lc, lc, 10)
		if got := eng.CurrentMatchCount(); got != 0 {
			t.Fatalf("chain=%v: match must expire, got %d", chain, got)
		}
	}
}

// TestTheorem2OnlyMatchedItemUpdated verifies Theorem 2: when an
// incoming edge matches the i-th edge of a TC-subquery's timing
// sequence, only item L^i of that subquery (plus the global cascade)
// gains partial matches — every other sub-list item stays untouched.
func TestTheorem2OnlyMatchedItemUpdated(t *testing.T) {
	labels := graph.NewLabels()
	la, lb, lc, ld := labels.Intern("a"), labels.Intern("b"), labels.Intern("c"), labels.Intern("d")
	// One TC-query: a→b ≺ b→c ≺ c→d.
	b := query.NewBuilder()
	va, vb, vc, vd := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc), b.AddVertex(ld)
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	e3 := b.AddEdge(vc, vd)
	b.Before(e1, e2)
	b.Before(e2, e3)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(q, core.Config{})

	// Feed ε1-matching edge: exactly one new partial match.
	eng.Insert(graph.Edge{ID: 1, From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1})
	if got := eng.PartialMatchCount(); got != 1 {
		t.Fatalf("after ε1: want 1 partial, got %d", got)
	}
	// Feed ε3-matching edge with no ε2 prefix: discardable, nothing new.
	eng.Insert(graph.Edge{ID: 2, From: 3, To: 4, FromLabel: lc, ToLabel: ld, Time: 2})
	if got := eng.PartialMatchCount(); got != 1 {
		t.Fatalf("after discardable ε3: want 1 partial, got %d", got)
	}
	// Feed ε2-matching edge extending the prefix: exactly one new.
	eng.Insert(graph.Edge{ID: 3, From: 2, To: 3, FromLabel: lb, ToLabel: lc, Time: 3})
	if got := eng.PartialMatchCount(); got != 2 {
		t.Fatalf("after ε2: want 2 partials, got %d", got)
	}
	// Feed ε3 again, now extendable: completes the match (third partial =
	// the complete match at the last item).
	eng.Insert(graph.Edge{ID: 4, From: 3, To: 4, FromLabel: lc, ToLabel: ld, Time: 4})
	if got := eng.PartialMatchCount(); got != 3 {
		t.Fatalf("after ε3: want 3 partials, got %d", got)
	}
	if got := eng.Stats().Matches.Load(); got != 1 {
		t.Fatalf("want 1 complete match, got %d", got)
	}
}

// TestItemCountsAndWriteState covers the observability surface: per-item
// populations must mirror the engine's partial-match count.
func TestItemCountsAndWriteState(t *testing.T) {
	labels := graph.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	b := query.NewBuilder()
	va, vb := b.AddVertex(la), b.AddVertex(lb)
	b.AddEdge(va, vb)
	b.AddEdge(vb, va)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(q, core.Config{})
	eng.Insert(graph.Edge{ID: 1, From: 1, To: 2, FromLabel: la, ToLabel: lb, Time: 1})
	eng.Insert(graph.Edge{ID: 2, From: 2, To: 1, FromLabel: lb, ToLabel: la, Time: 2})

	total := 0
	for _, ic := range eng.ItemCounts() {
		if ic.Count < 0 {
			t.Fatalf("negative count: %+v", ic)
		}
		total += ic.Count
	}
	if int64(total) != eng.PartialMatchCount() {
		t.Errorf("item counts sum %d != PartialMatchCount %d", total, eng.PartialMatchCount())
	}
	var sb strings.Builder
	eng.WriteState(&sb)
	for _, want := range []string{"decomposition k=", "matches=1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WriteState missing %q:\n%s", want, sb.String())
		}
	}
}
