package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/querygen"
)

// The batch-expiry equivalence suite: ProcessBatch sweeps every expired
// edge of a window slide in one transaction over the per-level expiry
// order instead of cascading edge-at-a-time deletes. That is pure
// performance — a slide must produce identical match sets and identical
// Matches/PartialIns/PartialDel/EdgesOut counters either way, on both
// storage backends and both probe modes. Only the batch-plane counters
// (ExpiryBatches/ExpiryEvicted) are allowed to differ: zero on the
// per-edge ablation path, the slide/edge tallies on the batched path.

// expiryRun drives one datagen stream through an engine with a small
// (high-churn) window and returns sorted match keys plus counters.
func expiryRun(t *testing.T, storage core.Storage, scanProbes, batched bool, ds datagen.Dataset, trial int) ([]string, *core.Stats, bool) {
	t.Helper()
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: 80, Seed: int64(trial*31 + 5)})
	edges := gen.Take(1200)
	q, _, err := querygen.Generate(edges[:500], querygen.Config{
		Size: 4, Order: querygen.RandomOrder, Seed: int64(trial*7 + 1)})
	if err != nil {
		return nil, nil, false
	}
	var keys []string
	eng := core.New(q, core.Config{
		Storage:    storage,
		ScanProbes: scanProbes,
		OnMatch:    func(m *match.Match) { keys = append(keys, m.Key()) },
	})
	proc := eng.Process
	if batched {
		proc = eng.ProcessBatch
	}
	runStream(t, edges, 150, proc)
	sort.Strings(keys)
	return keys, eng.Stats(), true
}

func TestExpiryBatchEquivalence(t *testing.T) {
	type mode struct {
		name       string
		storage    core.Storage
		scanProbes bool
	}
	modes := []mode{
		{"mstree-indexed", core.MSTree, false},
		{"mstree-scan", core.MSTree, true},
		{"independent-indexed", core.Independent, false},
		{"independent-scan", core.Independent, true},
	}
	anyBatches := false
	for _, ds := range datagen.Datasets() {
		for trial := 0; trial < 3; trial++ {
			for _, m := range modes {
				perKeys, perStats, ok := expiryRun(t, m.storage, m.scanProbes, false, ds, trial)
				if !ok {
					continue
				}
				batKeys, batStats, _ := expiryRun(t, m.storage, m.scanProbes, true, ds, trial)
				name := fmt.Sprintf("%s/%d/%s", ds, trial, m.name)
				diffKeys(t, name, perKeys, batKeys)
				if batStats.Matches.Load() != perStats.Matches.Load() ||
					batStats.PartialIns.Load() != perStats.PartialIns.Load() ||
					batStats.PartialDel.Load() != perStats.PartialDel.Load() ||
					batStats.EdgesOut.Load() != perStats.EdgesOut.Load() ||
					batStats.JoinCandidates.Load() != perStats.JoinCandidates.Load() {
					t.Errorf("%s: batched counters diverge from per-edge:\n  got  matches=%d ins=%d del=%d out=%d cand=%d\n  want matches=%d ins=%d del=%d out=%d cand=%d",
						name,
						batStats.Matches.Load(), batStats.PartialIns.Load(), batStats.PartialDel.Load(),
						batStats.EdgesOut.Load(), batStats.JoinCandidates.Load(),
						perStats.Matches.Load(), perStats.PartialIns.Load(), perStats.PartialDel.Load(),
						perStats.EdgesOut.Load(), perStats.JoinCandidates.Load())
				}
				if perStats.ExpiryBatches.Load() != 0 || perStats.ExpiryEvicted.Load() != 0 {
					t.Errorf("%s: per-edge path reported batch counters: batches=%d evicted=%d",
						name, perStats.ExpiryBatches.Load(), perStats.ExpiryEvicted.Load())
				}
				// On the batched path every delete rides a batch, so the
				// eviction tally must equal the delete-op counter, and the
				// mean batch size (evicted/batches) is at least 1.
				if got, want := batStats.ExpiryEvicted.Load(), batStats.EdgesOut.Load(); got != want {
					t.Errorf("%s: ExpiryEvicted=%d != EdgesOut=%d", name, got, want)
				}
				if b := batStats.ExpiryBatches.Load(); b > 0 {
					anyBatches = true
					if batStats.ExpiryEvicted.Load() < b {
						t.Errorf("%s: evicted %d < batches %d", name,
							batStats.ExpiryEvicted.Load(), b)
					}
				}
			}
		}
	}
	if !anyBatches {
		t.Error("no workload slid the window on the batched path; the equivalence test is vacuous")
	}
}

// TestExpiryBatchDrainsSpace is the batch-path twin of
// TestExpiryRemovesEverything: after the whole window slides out through
// DeleteExpired sweeps, storage must drain to zero — including the
// per-level expiry heaps, whose lazily-deleted dead residents would
// otherwise pin node memory and show up in SpaceBytes.
func TestExpiryBatchDrainsSpace(t *testing.T) {
	for _, storage := range []core.Storage{core.MSTree, core.Independent} {
		labels := graph.NewLabels()
		gen := datagen.New(datagen.SocialStream, labels, datagen.Config{Vertices: 200, Seed: 4})
		edges := gen.Take(400)
		q, _, err := querygen.Generate(edges, querygen.Config{Size: 3, Seed: 8})
		if err != nil {
			t.Skipf("no query: %v", err)
		}
		eng := core.New(q, core.Config{Storage: storage})
		st := graph.NewStream(100)
		for _, e := range edges {
			stored, expired, err := st.Push(e)
			if err != nil {
				t.Fatal(err)
			}
			eng.ProcessBatch(stored, expired)
		}
		quiet := labels.Intern("quiet-label")
		stored, expired, err := st.Push(graph.Edge{
			From: 1, To: 2, FromLabel: quiet, ToLabel: quiet,
			Time: edges[len(edges)-1].Time + 10_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.ProcessBatch(stored, expired)
		if got := eng.PartialMatchCount(); got != 0 {
			t.Errorf("storage %d: %d partial matches survived batched full expiry", storage, got)
		}
		if eng.SpaceBytes() != 0 {
			t.Errorf("storage %d: space must drain to 0, got %d", storage, eng.SpaceBytes())
		}
	}
}

// TestExpiryBatchParallelChurn is the -race variant: batch eviction
// transactions interleave with inserts under the fine-grained protocol.
// The batch lock schedule (all touched levels, ascending) must keep
// heap/index mutation exclusive with probes, and the result must equal
// the serial batched engine's.
func TestExpiryBatchParallelChurn(t *testing.T) {
	anyBatches := false
	for trial := 0; trial < 2; trial++ {
		for _, ds := range datagen.Datasets() {
			labels := graph.NewLabels()
			gen := datagen.New(ds, labels, datagen.Config{Vertices: 60, Seed: int64(trial*13 + 9)})
			edges := gen.Take(900)
			q, _, err := querygen.Generate(edges[:400], querygen.Config{
				Size: 4, Order: querygen.RandomOrder, Seed: int64(trial*5 + 2)})
			if err != nil {
				continue
			}
			var serial []string
			ser := core.New(q, core.Config{OnMatch: func(m *match.Match) {
				serial = append(serial, m.Key())
			}})
			runStream(t, edges, 200, ser.ProcessBatch)
			sort.Strings(serial)

			var mu sync.Mutex
			var conc []string
			eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
				mu.Lock()
				conc = append(conc, m.Key())
				mu.Unlock()
			}})
			par := core.NewParallel(eng, core.FineGrained, 4)
			runStream(t, edges, 200, par.ProcessBatch)
			par.Wait()
			sort.Strings(conc)
			diffKeys(t, fmt.Sprintf("expiry-churn/%s/%d", ds, trial), serial, conc)
			if got, want := eng.Stats().ExpiryBatches.Load(), ser.Stats().ExpiryBatches.Load(); got != want {
				t.Errorf("expiry-churn/%s/%d: parallel batches %d != serial %d", ds, trial, got, want)
			}
			if got, want := eng.Stats().ExpiryEvicted.Load(), ser.Stats().ExpiryEvicted.Load(); got != want {
				t.Errorf("expiry-churn/%s/%d: parallel evicted %d != serial %d", ds, trial, got, want)
			}
			if eng.Stats().ExpiryBatches.Load() > 0 {
				anyBatches = true
			}
		}
	}
	if !anyBatches {
		t.Error("no workload slid the window under the parallel batch path; the churn test is vacuous")
	}
}
