package core

import (
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// levelJoin precomputes, for global item x (joining the prefix
// Q¹∪…∪Q^{x−1} with Q^x), exactly which checks the compatibility join
// ⋈ᵀ needs: which query vertices are shared, which are newly bound by
// the right side, which timing-order pairs cross the two sides, and
// whether two query edges could ever bind the same data edge. The
// generic match.Compatible scans all O(V²+E²) combinations per candidate
// pair; with the metadata the join costs only what the query structure
// demands — in particular an empty timing order costs no timing checks,
// which is what keeps Timing ahead of SJ-tree at large decomposition
// sizes (Figs. 23-24).
type levelJoin struct {
	// shared lists query vertices bound on both sides; bindings must
	// agree.
	shared []query.VertexID
	// newV lists query vertices bound only by the right side; their
	// images must not collide with any left-side image.
	newV []query.VertexID
	// leftV lists the query vertices bound by the left side, used for
	// collision checks against newV images.
	leftV []query.VertexID
	// cross lists timing constraints across the sides as (l, r, leftFirst):
	// leftFirst means left edge l must precede right edge r.
	cross []crossOrder
	// dupCheck is set when some left edge and some right edge could bind
	// the same data edge (same endpoint-label/edge-label pattern AND
	// overlapping endpoints), requiring the full reuse scan.
	dupCheck bool
}

type crossOrder struct {
	l, r      query.EdgeID
	leftFirst bool
}

// buildJoins computes levelJoin metadata for global items 2..k; index 0
// and 1 are unused.
func buildJoins(q *query.Query, dec *query.Decomposition) []levelJoin {
	k := dec.K()
	joins := make([]levelJoin, k+1)
	var prefixMask uint64
	for x := 2; x <= k; x++ {
		prefixMask |= dec.Subqueries[x-2].Mask
		rightMask := dec.Subqueries[x-1].Mask
		joins[x] = makeLevelJoin(q, prefixMask, rightMask)
	}
	return joins
}

func makeLevelJoin(q *query.Query, leftMask, rightMask uint64) levelJoin {
	var j levelJoin
	leftV := vertexSetOf(q, leftMask)
	rightV := vertexSetOf(q, rightMask)
	for v := 0; v < q.NumVertices(); v++ {
		switch {
		case leftV[v] && rightV[v]:
			j.shared = append(j.shared, query.VertexID(v))
		case rightV[v]:
			j.newV = append(j.newV, query.VertexID(v))
		}
		if leftV[v] {
			j.leftV = append(j.leftV, query.VertexID(v))
		}
	}
	for l := 0; l < q.NumEdges(); l++ {
		if leftMask&(1<<uint(l)) == 0 {
			continue
		}
		for r := 0; r < q.NumEdges(); r++ {
			if rightMask&(1<<uint(r)) == 0 {
				continue
			}
			le, re := query.EdgeID(l), query.EdgeID(r)
			if q.Precedes(le, re) {
				j.cross = append(j.cross, crossOrder{l: le, r: re, leftFirst: true})
			}
			if q.Precedes(re, le) {
				j.cross = append(j.cross, crossOrder{l: le, r: re, leftFirst: false})
			}
			if !j.dupCheck && edgesCouldShareData(q, le, re) {
				j.dupCheck = true
			}
		}
	}
	return j
}

func vertexSetOf(q *query.Query, mask uint64) []bool {
	set := make([]bool, q.NumVertices())
	for e := 0; mask != 0; e++ {
		if mask&1 != 0 {
			qe := q.Edge(query.EdgeID(e))
			set[qe.From] = true
			set[qe.To] = true
		}
		mask >>= 1
	}
	return set
}

// edgesCouldShareData reports whether one data edge could bind both a
// and b: the endpoint labels must coincide and the edge labels must be
// compatible (equal, or either unlabelled). Only then does the join need
// the full data-edge reuse scan.
func edgesCouldShareData(q *query.Query, a, b query.EdgeID) bool {
	ea, eb := q.Edge(a), q.Edge(b)
	if q.VertexLabel(ea.From) != q.VertexLabel(eb.From) || q.VertexLabel(ea.To) != q.VertexLabel(eb.To) {
		return false
	}
	return ea.Label == eb.Label || ea.Label == graph.NoLabel || eb.Label == graph.NoLabel
}

// compatible applies the precomputed join checks to a (left, right)
// candidate pair. It is equivalent to left.Compatible(q, right) for
// matches with the expected bound-edge masks but touches only the
// necessary fields.
func (j *levelJoin) compatible(left, right *match.Match) bool {
	return j.sharedEqual(left, right) && j.compatibleTail(left, right)
}

// sharedEqual checks only the shared-vertex binding agreement — the
// equality the fingerprint index guarantees for its candidates, and the
// definition of a "genuine candidate" for the JoinCandidates counter.
func (j *levelJoin) sharedEqual(left, right *match.Match) bool {
	for _, v := range j.shared {
		if left.Vtx[v] != right.Vtx[v] {
			return false
		}
	}
	return true
}

// compatibleTail applies the remaining checks after sharedEqual:
// injectivity of newly bound vertices, cross timing constraints and
// (when structurally possible) data-edge reuse.
func (j *levelJoin) compatibleTail(left, right *match.Match) bool {
	for _, v := range j.newV {
		rv := right.Vtx[v]
		for _, lv := range j.leftV {
			if left.Vtx[lv] == rv {
				return false
			}
		}
	}
	for _, c := range j.cross {
		lt := left.Edges[c.l].Time
		rt := right.Edges[c.r].Time
		if c.leftFirst {
			if lt >= rt {
				return false
			}
		} else if rt >= lt {
			return false
		}
	}
	if j.dupCheck {
		for e := range right.Edges {
			if right.Edges[e].ID != match.NoEdge && left.HasDataEdge(right.Edges[e].ID) {
				return false
			}
		}
	}
	return true
}
