package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"timingsubg/internal/baseline/incmat"
	"timingsubg/internal/baseline/sjtree"
	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/iso"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// runStream feeds edges through a fresh stream of the given window and
// invokes process for every slide.
func runStream(t *testing.T, edges []graph.Edge, window graph.Timestamp, process func(d graph.Edge, expired []graph.Edge)) {
	t.Helper()
	st := graph.NewStream(window)
	for _, e := range edges {
		stored, expired, err := st.Push(e)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		process(stored, expired)
	}
}

// collectKeys runs the Timing engine over the stream and returns the
// sorted keys of reported matches.
func timingKeys(t *testing.T, q *query.Query, storage core.Storage, dec *query.Decomposition, edges []graph.Edge, window graph.Timestamp) []string {
	t.Helper()
	var keys []string
	eng := core.New(q, core.Config{Storage: storage, Decomposition: dec, OnMatch: func(m *match.Match) {
		if err := m.Verify(q); err != nil {
			t.Fatalf("engine emitted invalid match %s: %v", m, err)
		}
		keys = append(keys, m.Key())
	}})
	runStream(t, edges, window, eng.Process)
	sort.Strings(keys)
	return keys
}

func incmatKeys(t *testing.T, q *query.Query, alg iso.Algorithm, edges []graph.Edge, window graph.Timestamp) []string {
	t.Helper()
	var keys []string
	im := incmat.New(q, alg, func(m *match.Match) {
		if err := m.Verify(q); err != nil {
			t.Fatalf("incmat emitted invalid match %s: %v", m, err)
		}
		keys = append(keys, m.Key())
	})
	runStream(t, edges, window, im.Process)
	sort.Strings(keys)
	return keys
}

func sjtreeKeys(t *testing.T, q *query.Query, edges []graph.Edge, window graph.Timestamp) []string {
	t.Helper()
	var keys []string
	sj := sjtree.New(q, func(m *match.Match) {
		if err := m.Verify(q); err != nil {
			t.Fatalf("sjtree emitted invalid match %s: %v", m, err)
		}
		keys = append(keys, m.Key())
	})
	runStream(t, edges, window, sj.Process)
	sort.Strings(keys)
	return keys
}

func diffKeys(t *testing.T, name string, want, got []string) {
	t.Helper()
	if len(want) == len(got) {
		same := true
		for i := range want {
			if want[i] != got[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Errorf("%s: result sets differ: want %d matches, got %d", name, len(want), len(got))
	wm := map[string]bool{}
	for _, k := range want {
		wm[k] = true
	}
	gm := map[string]bool{}
	for _, k := range got {
		gm[k] = true
	}
	shown := 0
	for _, k := range want {
		if !gm[k] && shown < 5 {
			t.Errorf("  missing: %s", k)
			shown++
		}
	}
	shown = 0
	for _, k := range got {
		if !wm[k] && shown < 5 {
			t.Errorf("  extra:   %s", k)
			shown++
		}
	}
}

// TestPaperRunningExample reproduces Figs. 3-5: query Q (6 edges with
// 6≺3≺1 and 6≺5≺4) over the 10-edge stream with window 9; the match
// {σ1,σ3,σ4,σ5,σ7,σ8} must be found at t=8.
func TestPaperRunningExample(t *testing.T) {
	labels := graph.NewLabels()
	la, lb, lc, ld, le, lf := labels.Intern("a"), labels.Intern("b"), labels.Intern("c"),
		labels.Intern("d"), labels.Intern("e"), labels.Intern("f")

	// Query of Fig. 5: vertices a,b,c,d,e,f; edges (paper numbering, cf.
	// Figs. 6 and 11): ε1: a→b, ε2: b→c, ε3: d→b, ε4: d→c, ε5: c→e,
	// ε6: e→f.
	b := query.NewBuilder()
	va, vb, vc, vd, ve, vf := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc),
		b.AddVertex(ld), b.AddVertex(le), b.AddVertex(lf)
	e1 := b.AddEdge(va, vb)
	_ = b.AddEdge(vb, vc) // ε2
	e3 := b.AddEdge(vd, vb)
	e4 := b.AddEdge(vd, vc)
	e5 := b.AddEdge(vc, ve)
	e6 := b.AddEdge(ve, vf)
	// 6 ≺ 3 ≺ 1 and 6 ≺ 5 ≺ 4.
	b.Before(e6, e3)
	b.Before(e3, e1)
	b.Before(e6, e5)
	b.Before(e5, e4)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// The stream of Fig. 3 (vertex IDs from the superscripts).
	mk := func(from, to int64, fl, tl graph.Label, ts int64) graph.Edge {
		return graph.Edge{From: graph.VertexID(from), To: graph.VertexID(to),
			FromLabel: fl, ToLabel: tl, Time: graph.Timestamp(ts)}
	}
	edges := []graph.Edge{
		mk(7, 8, le, lf, 1),  // σ1 e7→f8
		mk(4, 9, lc, le, 2),  // σ2 c4→e9
		mk(4, 7, lc, le, 3),  // σ3 c4→e7
		mk(5, 4, ld, lc, 4),  // σ4 d5→c4
		mk(3, 4, lb, lc, 5),  // σ5 b3→c4
		mk(2, 3, la, lb, 6),  // σ6 a2→b3
		mk(5, 3, ld, lb, 7),  // σ7 d5→b3
		mk(1, 3, la, lb, 8),  // σ8 a1→b3
		mk(6, 4, ld, lc, 9),  // σ9 d6→c4
		mk(5, 7, ld, le, 10), // σ10 d5→e7
	}

	var got []string
	var gotAt []graph.Timestamp
	eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		if err := m.Verify(q); err != nil {
			t.Fatalf("invalid match: %v", err)
		}
		got = append(got, m.Key())
		var maxT graph.Timestamp
		for _, e := range m.Edges {
			if e.Time > maxT {
				maxT = e.Time
			}
		}
		gotAt = append(gotAt, maxT)
	}})
	runStream(t, edges, 9, eng.Process)

	if len(got) != 1 {
		t.Fatalf("want exactly the Fig. 4a match, got %d matches: %v", len(got), got)
	}
	if gotAt[0] != 8 {
		t.Errorf("match should complete at t=8, got t=%d", gotAt[0])
	}
	// σ IDs are assigned 0-based in arrival order: σ1→0, σ3→2, σ4→3,
	// σ5→4, σ7→6, σ8→7. Query edges: ε1 matches σ8(7), ε2 matches
	// σ5(4), ε3 matches σ7(6), ε4 matches σ4(3), ε5 matches σ3(2),
	// ε6 matches σ1(0) — the bold match of Fig. 4a.
	want := "0=7,1=4,2=6,3=3,4=2,5=0"
	if got[0] != want {
		t.Errorf("match assignment: want %s, got %s", want, got[0])
	}

	// The decomposition of Fig. 8 has three TC-subqueries.
	if k := eng.K(); k != 3 {
		t.Errorf("decomposition size: want 3, got %d", k)
	}
}

// TestCrossValidation compares Timing, Timing-IND, SJ-tree and IncMat
// (all three static algorithms) on random streams and random queries.
func TestCrossValidation(t *testing.T) {
	for _, ds := range datagen.Datasets() {
		for trial := 0; trial < 6; trial++ {
			ds, trial := ds, trial
			t.Run(fmt.Sprintf("%s/trial%d", ds, trial), func(t *testing.T) {
				labels := graph.NewLabels()
				gen := datagen.New(ds, labels, datagen.Config{Vertices: 60, Seed: int64(100*trial + 7)})
				edges := gen.Take(600)
				size := 3 + trial%4 // 3..6 query edges
				kind := querygen.OrderKind(trial % 3)
				q, _, err := querygen.Generate(edges[:300], querygen.Config{
					Size: size, Order: kind, Seed: int64(trial*31 + 5)})
				if err != nil {
					t.Skipf("no query: %v", err)
				}
				window := graph.Timestamp(200)

				want := incmatKeys(t, q, iso.QuickSI, edges, window)
				diffKeys(t, "timing-mstree", want, timingKeys(t, q, core.MSTree, nil, edges, window))
				diffKeys(t, "timing-flat", want, timingKeys(t, q, core.Independent, nil, edges, window))
				diffKeys(t, "sjtree", want, sjtreeKeys(t, q, edges, window))
				diffKeys(t, "incmat-turbo", want, incmatKeys(t, q, iso.TurboISO, edges, window))
				diffKeys(t, "incmat-boost", want, incmatKeys(t, q, iso.BoostISO, edges, window))

				// Random decomposition / join order must not change results.
				rng := rand.New(rand.NewSource(int64(trial)))
				dec := query.DecomposeRandom(q, rng, rng)
				diffKeys(t, "timing-randdec", want, timingKeys(t, q, core.MSTree, dec, edges, window))
			})
		}
	}
}
