package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/querygen"
)

// indexRun drives one datagen stream through an engine configuration
// and returns its sorted match keys plus the final counters.
func indexRun(t *testing.T, storage core.Storage, scanProbes bool, ds datagen.Dataset, trial int) ([]string, *core.Stats, bool) {
	t.Helper()
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: 80, Seed: int64(trial*31 + 5)})
	edges := gen.Take(1200)
	q, _, err := querygen.Generate(edges[:500], querygen.Config{
		Size: 4, Order: querygen.RandomOrder, Seed: int64(trial*7 + 1)})
	if err != nil {
		return nil, nil, false
	}
	var keys []string
	eng := core.New(q, core.Config{
		Storage:    storage,
		ScanProbes: scanProbes,
		OnMatch:    func(m *match.Match) { keys = append(keys, m.Key()) },
	})
	runStream(t, edges, 300, eng.Process)
	sort.Strings(keys)
	return keys, eng.Stats(), true
}

// TestIndexEquivalenceAndSelectivity is the join-index acceptance
// property: across both storage backends and both probe modes the
// engines must report identical match sets and identical
// Matches/PartialIns/PartialDel/JoinCandidates counters — the
// index changes which stored matches are *visited*, never which are
// candidates or how results form. On the indexed MS-tree engine every
// visited match must be a genuine candidate (scanned == candidates);
// the scan engines quantify what the index skips (scanned ≥
// candidates, strictly greater whenever any probe had non-candidates).
func TestIndexEquivalenceAndSelectivity(t *testing.T) {
	type mode struct {
		name       string
		storage    core.Storage
		scanProbes bool
	}
	modes := []mode{
		{"mstree-indexed", core.MSTree, false},
		{"mstree-scan", core.MSTree, true},
		{"independent-indexed", core.Independent, false}, // flat backend keeps scan semantics
		{"independent-scan", core.Independent, true},
	}
	anySelective := false
	for _, ds := range datagen.Datasets() {
		for trial := 0; trial < 3; trial++ {
			refKeys, refStats, ok := indexRun(t, modes[0].storage, modes[0].scanProbes, ds, trial)
			if !ok {
				continue
			}
			if refStats.JoinScanned.Load() != refStats.JoinCandidates.Load() {
				t.Errorf("%s/%d: indexed engine visited non-candidates: scanned=%d candidates=%d",
					ds, trial, refStats.JoinScanned.Load(), refStats.JoinCandidates.Load())
			}
			for _, m := range modes[1:] {
				keys, st, ok := indexRun(t, m.storage, m.scanProbes, ds, trial)
				if !ok {
					t.Fatalf("%s/%d: reference generated a query but %s did not", ds, trial, m.name)
				}
				diffKeys(t, fmt.Sprintf("%s/%d/%s", ds, trial, m.name), refKeys, keys)
				if st.Matches.Load() != refStats.Matches.Load() ||
					st.PartialIns.Load() != refStats.PartialIns.Load() ||
					st.PartialDel.Load() != refStats.PartialDel.Load() ||
					st.JoinCandidates.Load() != refStats.JoinCandidates.Load() {
					t.Errorf("%s/%d/%s: counters diverge from indexed engine:\n  got  matches=%d ins=%d del=%d cand=%d\n  want matches=%d ins=%d del=%d cand=%d",
						ds, trial, m.name,
						st.Matches.Load(), st.PartialIns.Load(), st.PartialDel.Load(), st.JoinCandidates.Load(),
						refStats.Matches.Load(), refStats.PartialIns.Load(), refStats.PartialDel.Load(), refStats.JoinCandidates.Load())
				}
				if st.JoinScanned.Load() < st.JoinCandidates.Load() {
					t.Errorf("%s/%d/%s: scanned %d < candidates %d", ds, trial, m.name,
						st.JoinScanned.Load(), st.JoinCandidates.Load())
				}
				if st.JoinScanned.Load() > st.JoinCandidates.Load() {
					anySelective = true
				}
			}
		}
	}
	if !anySelective {
		t.Error("no workload exercised index selectivity (scan engines never visited a non-candidate); the property test is vacuous")
	}
}

// TestIndexParallelChurn is the -race variant: concurrent transactions
// (insert + expiry cascades) hammer the per-level join indexes under
// the fine-grained protocol; the lock discipline must keep index
// mutation exclusive with candidate probes, and results must equal the
// serial indexed engine's.
func TestIndexParallelChurn(t *testing.T) {
	for trial := 0; trial < 2; trial++ {
		for _, ds := range datagen.Datasets() {
			labels := graph.NewLabels()
			gen := datagen.New(ds, labels, datagen.Config{Vertices: 60, Seed: int64(trial*13 + 9)})
			edges := gen.Take(900)
			q, _, err := querygen.Generate(edges[:400], querygen.Config{
				Size: 4, Order: querygen.RandomOrder, Seed: int64(trial*5 + 2)})
			if err != nil {
				continue
			}
			var serial []string
			ser := core.New(q, core.Config{OnMatch: func(m *match.Match) {
				serial = append(serial, m.Key())
			}})
			runStream(t, edges, 200, ser.Process)
			sort.Strings(serial)

			var mu sync.Mutex
			var conc []string
			eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
				mu.Lock()
				conc = append(conc, m.Key())
				mu.Unlock()
			}})
			par := core.NewParallel(eng, core.FineGrained, 4)
			runStream(t, edges, 200, par.Process)
			par.Wait()
			sort.Strings(conc)
			diffKeys(t, fmt.Sprintf("churn/%s/%d", ds, trial), serial, conc)
			if got, want := eng.Stats().JoinScanned.Load(), eng.Stats().JoinCandidates.Load(); got != want {
				t.Errorf("churn/%s/%d: parallel indexed engine scanned %d != candidates %d", ds, trial, got, want)
			}
		}
	}
}
