package core

import (
	"math/rand"
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// TestLevelJoinMatchesGeneric cross-checks the specialized levelJoin
// compatibility against match.Compatible on randomly generated left
// (prefix) and right (Q^x) matches of the running-example decomposition:
// the two must agree on every pair.
func TestLevelJoinMatchesGeneric(t *testing.T) {
	eng, q, _ := planQuery(t)
	dec := eng.Decomposition()
	joins := buildJoins(q, dec)
	rng := rand.New(rand.NewSource(4))

	// randMatch binds the edges of the given subquery mask to random
	// data edges with consistent, internally injective endpoints — the
	// invariant every stored partial match satisfies. Vertices are drawn
	// without replacement from a small pool so CROSS-side collisions and
	// agreements occur often; edge IDs are drawn from a per-side range so
	// they never collide across sides (as in a real stream, where one
	// data edge cannot carry two different label patterns).
	randMatch := func(mask uint64, idBase int64) *match.Match {
		m := match.New(q)
		assign := make(map[query.VertexID]graph.VertexID)
		used := make(map[graph.VertexID]bool)
		pick := func(v query.VertexID) graph.VertexID {
			if dv, ok := assign[v]; ok {
				return dv
			}
			for {
				dv := graph.VertexID(rng.Intn(10))
				if !used[dv] {
					used[dv] = true
					assign[v] = dv
					return dv
				}
			}
		}
		id := graph.EdgeID(idBase + rng.Int63n(1000))
		for e := 0; e < q.NumEdges(); e++ {
			if mask&(1<<uint(e)) == 0 {
				continue
			}
			qe := q.Edge(query.EdgeID(e))
			from := pick(qe.From)
			to := pick(qe.To)
			id++
			m.Edges[e] = graph.Edge{
				ID: id, From: from, To: to,
				FromLabel: q.VertexLabel(qe.From), ToLabel: q.VertexLabel(qe.To),
				Time: graph.Timestamp(rng.Intn(40) + 1),
			}
			m.Vtx[qe.From] = from
			m.Vtx[qe.To] = to
			m.EdgeMask |= 1 << uint(e)
		}
		return m
	}

	var prefix uint64
	for x := 2; x <= dec.K(); x++ {
		prefix |= dec.Subqueries[x-2].Mask
		right := dec.Subqueries[x-1].Mask
		j := &joins[x]
		agreeChecked := 0
		for trial := 0; trial < 3000; trial++ {
			l := randMatch(prefix, 1_000_000)
			r := randMatch(right, 2_000_000)
			want := l.Compatible(q, r)
			got := j.compatible(l, r)
			if want != got {
				t.Fatalf("level %d trial %d: generic=%v specialized=%v\nleft=%s\nright=%s",
					x, trial, want, got, l, r)
			}
			agreeChecked++
		}
		if agreeChecked == 0 {
			t.Fatalf("level %d: no pairs checked", x)
		}
	}
}
