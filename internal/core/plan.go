package core

import (
	"timingsubg/internal/graph"
	"timingsubg/internal/lock"
)

// InsertPlan returns the worst-case sequence of lock requests Ins(d) will
// issue, in exactly the order runInsert acquires them (Section V-B: the
// main thread dispatches all of a transaction's requests before launching
// it). An empty plan means d matches no query edge and needs no
// transaction.
func (e *Engine) InsertPlan(d graph.Edge) []lock.Request {
	var reqs []lock.Request
	add := func(id lock.ItemID, m lock.Mode) {
		reqs = append(reqs, lock.Request{Item: id, Mode: m})
	}
	k := e.K()
	for _, qe := range e.q.MatchingEdges(d) {
		s, p := e.loc[qe].sub, e.loc[qe].pos
		depth := e.subs[s-1].Depth()
		if p == 1 {
			add(item(s, 1), lock.X)
		} else {
			add(item(s, p-1), lock.S)
			add(item(s, p), lock.X)
		}
		if p == depth && k > 1 {
			if s > 1 {
				add(e.globalReadItem(s-1), lock.S)
				add(item(0, s), lock.X)
			}
			for x := s + 1; x <= k; x++ {
				add(item(x, e.subs[x-1].Depth()), lock.S)
				add(item(0, x), lock.X)
			}
		}
	}
	return reqs
}

// DeleteBatchPlan returns the lock requests a batched slide deletion
// will issue, in exactly runDeleteBatch's acquisition order: every item
// of every touched subquery once, ascending, then the global items from
// the first touched subquery (at least 2) up to k. An empty plan means
// no expired edge touches stored state.
func (e *Engine) DeleteBatchPlan(expired []graph.Edge) []lock.Request {
	var reqs []lock.Request
	k := e.K()
	minTouched := 0
	for s := 1; s <= k; s++ {
		if !e.subTouchedByAny(s, expired) {
			continue
		}
		if minTouched == 0 {
			minTouched = s
		}
		depth := e.subs[s-1].Depth()
		for lvl := 1; lvl <= depth; lvl++ {
			reqs = append(reqs, lock.Request{Item: item(s, lvl), Mode: lock.X})
		}
	}
	if k == 1 || minTouched == 0 {
		return reqs
	}
	start := minTouched
	if start < 2 {
		start = 2
	}
	for lvl := start; lvl <= k; lvl++ {
		reqs = append(reqs, lock.Request{Item: item(0, lvl), Mode: lock.X})
	}
	return reqs
}

// DeletePlan returns the lock requests Del(d) will issue, in runDelete's
// acquisition order. An empty plan means d touches no stored state.
func (e *Engine) DeletePlan(d graph.Edge) []lock.Request {
	var reqs []lock.Request
	add := func(id lock.ItemID, m lock.Mode) {
		reqs = append(reqs, lock.Request{Item: id, Mode: m})
	}
	k := e.K()
	for s := 1; s <= k; s++ {
		if !e.subTouchedBy(s, d) {
			continue
		}
		depth := e.subs[s-1].Depth()
		for lvl := 1; lvl <= depth; lvl++ {
			add(item(s, lvl), lock.X)
		}
		if k == 1 {
			continue
		}
		start := s
		if s == 1 {
			start = 2
		}
		for lvl := start; lvl <= k; lvl++ {
			add(item(0, lvl), lock.X)
		}
	}
	return reqs
}
