package core

import (
	"fmt"
	"testing"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
	"timingsubg/internal/stats"
)

// benchQuery builds a 2-subquery decomposition query (a→b ≺-chained pair
// plus a free edge) plus compatible match halves for join benchmarks.
func benchQuery(b *testing.B) (*query.Query, *query.Decomposition, *match.Match, *match.Match) {
	b.Helper()
	labels := graph.NewLabels()
	la, lb, lc, ld := labels.Intern("a"), labels.Intern("b"), labels.Intern("c"), labels.Intern("d")
	qb := query.NewBuilder()
	va, vb, vc, vd := qb.AddVertex(la), qb.AddVertex(lb), qb.AddVertex(lc), qb.AddVertex(ld)
	e1 := qb.AddEdge(va, vb)
	e2 := qb.AddEdge(vb, vc)
	qb.AddEdge(vc, vd) // free edge: its own TC-subquery
	qb.Before(e1, e2)
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	dec := query.Decompose(q)
	if dec.K() != 2 {
		b.Fatalf("want k=2, got %d", dec.K())
	}

	left := match.New(q)
	left.Bind(q, e1, graph.Edge{ID: 1, From: 10, To: 20, FromLabel: la, ToLabel: lb, Time: 1})
	left.Bind(q, e2, graph.Edge{ID: 2, From: 20, To: 30, FromLabel: lb, ToLabel: lc, Time: 2})
	right := match.New(q)
	right.Bind(q, query.EdgeID(2), graph.Edge{ID: 3, From: 30, To: 40, FromLabel: lc, ToLabel: ld, Time: 3})
	// Align halves with the decomposition's actual split.
	if dec.Subqueries[0].Len() != 2 {
		left, right = right, left
	}
	return q, dec, left, right
}

// BenchmarkJoinSpecialized measures the precomputed levelJoin check —
// the hot path of Algorithm 1's global cascade.
func BenchmarkJoinSpecialized(b *testing.B) {
	q, dec, left, right := benchQuery(b)
	joins := buildJoins(q, dec)
	j := &joins[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !j.compatible(left, right) {
			b.Fatal("halves must be compatible")
		}
	}
}

// BenchmarkJoinGeneric measures the generic match.Compatible the
// specialized join replaces (the ablation behind the Figs. 23-24 win).
func BenchmarkJoinGeneric(b *testing.B) {
	q, _, left, right := benchQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !left.Compatible(q, right) {
			b.Fatal("halves must be compatible")
		}
	}
}

// BenchmarkInsertPlan measures lock-plan generation, the per-edge
// dispatcher cost in concurrent mode.
func BenchmarkInsertPlan(b *testing.B) {
	q, dec, _, _ := benchQuery(b)
	eng := New(q, Config{Decomposition: dec})
	d := graph.Edge{ID: 9, From: 10, To: 20, FromLabel: q.VertexLabel(0), ToLabel: q.VertexLabel(1), Time: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(eng.InsertPlan(d)) == 0 {
			b.Fatal("edge should match")
		}
	}
}

// BenchmarkInsertIngest measures the full INSERT/DELETE hot path on the
// paper's datagen workloads, one cell per dataset × probe mode: a fixed
// stream is driven through a sliding window per iteration, so ns/op is
// end-to-end stream time. The indexed/scan pair is the join-index A/B —
// scripts/bench_core.sh runs it and emits BENCH_core.json with the
// per-dataset speedup, the CI artifact tracking the ingest trajectory.
// The indexed/metrics pair is the instrumentation-overhead A/B: metrics
// is the indexed engine with the join and expiry stage histograms
// attached, so its ns/op gap to indexed is the full observability cost
// on the hot path.
func BenchmarkInsertIngest(b *testing.B) {
	const nEdges = 10000
	const window = 1200
	for _, ds := range datagen.Datasets() {
		labels := graph.NewLabels()
		gen := datagen.New(ds, labels, datagen.Config{Vertices: 120, Seed: 7})
		edges := gen.Take(nEdges)
		q, _, err := querygen.Generate(edges[:2000], querygen.Config{
			Size: 4, Order: querygen.FullOrder, Seed: 11})
		if err != nil {
			b.Logf("%s: no query generated: %v", ds, err)
			continue
		}
		for _, mode := range []struct {
			name    string
			scan    bool
			metrics bool
		}{{"indexed", false, false}, {"scan", true, false}, {"metrics", false, true}} {
			b.Run(fmt.Sprintf("%s/%s", ds, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				cfg := Config{ScanProbes: mode.scan}
				if mode.metrics {
					cfg.JoinHist = &stats.AtomicHistogram{}
					cfg.ExpiryHist = &stats.AtomicHistogram{}
				}
				var matches int64
				for i := 0; i < b.N; i++ {
					eng := New(q, cfg)
					st := graph.NewStream(window)
					for _, e := range edges {
						stored, expired, err := st.Push(e)
						if err != nil {
							b.Fatal(err)
						}
						eng.Process(stored, expired)
					}
					matches = eng.Stats().Matches.Load()
				}
				b.ReportMetric(float64(nEdges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
				b.ReportMetric(float64(matches), "matches")
			})
		}
	}
}

// BenchmarkExpiryIngest is the batch-eviction A/B: the same high-churn
// stream driven through the batched expiry plane (ProcessBatch, the
// production path) and through edge-at-a-time deletes (Process, the
// ablation), on the concurrent engine where the win lives — batching
// turns one deletion transaction per expired edge (lock plan, dispatch,
// per-level lock handshake each) into one transaction per slide that
// acquires each touched item once. The datagen timestamps are remapped
// into bursts — B edges a tick apart, then a gap of a full window — so
// every burst's first push evicts the whole previous burst in one
// slide. The edges/s gap on the eviction-dominated stream is the
// batching win; scripts/bench_core.sh runs both and emits the
// per-dataset speedup into BENCH_core.json. (Serially the A/B is near
// parity: per-edge deletes are already O(1) bucket lookups under the
// live-only join indexes, and the NopLocker makes lock amortization
// free — see DESIGN.md §15.)
func BenchmarkExpiryIngest(b *testing.B) {
	const nEdges = 10000
	const burst = 64
	const window = 256
	for _, ds := range []datagen.Dataset{datagen.NetworkFlow, datagen.SocialStream} {
		labels := graph.NewLabels()
		gen := datagen.New(ds, labels, datagen.Config{Vertices: 40, Seed: 7})
		edges := gen.Take(nEdges)
		// Bursty remap: burst i occupies [i*2W, i*2W+B), so by the next
		// burst's first edge the whole of burst i is older than the
		// window and expires as one multi-edge slide.
		for i := range edges {
			edges[i].Time = graph.Timestamp((i/burst)*2*window + i%burst)
		}
		q, _, err := querygen.Generate(edges[:2000], querygen.Config{
			Size: 3, Order: querygen.RandomOrder, Seed: 7})
		if err != nil {
			b.Logf("%s: no query generated: %v", ds, err)
			continue
		}
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"peredge", false}} {
			b.Run(fmt.Sprintf("%s/%s", ds, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				var matches, evicted int64
				for i := 0; i < b.N; i++ {
					eng := New(q, Config{})
					par := NewParallel(eng, FineGrained, 4)
					proc := par.Process
					if mode.batched {
						proc = par.ProcessBatch
					}
					st := graph.NewStream(window)
					for _, e := range edges {
						stored, expired, err := st.Push(e)
						if err != nil {
							b.Fatal(err)
						}
						proc(stored, expired)
					}
					par.Wait()
					matches = eng.Stats().Matches.Load()
					evicted = eng.Stats().EdgesOut.Load()
				}
				if evicted == 0 {
					b.Fatal("remapped stream never slid the window")
				}
				if matches == 0 {
					b.Fatal("workload produced no matches; the A/B would not witness result equivalence")
				}
				b.ReportMetric(float64(nEdges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
				b.ReportMetric(float64(matches), "matches")
			})
		}
	}
}

// BenchmarkEngineInsertDiscardable measures the fast path: an edge that
// matches a non-first sequence position with an empty predecessor item
// is discarded in O(1) (Theorem 3 with |L^{i-1}| = 0).
func BenchmarkEngineInsertDiscardable(b *testing.B) {
	q, dec, _, _ := benchQuery(b)
	eng := New(q, Config{Decomposition: dec})
	// e2 (b→c) is second in its sequence; with no a→b stored, the edge is
	// discardable.
	d := graph.Edge{ID: 1, From: 20, To: 30, FromLabel: q.VertexLabel(1), ToLabel: q.VertexLabel(2), Time: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ID = graph.EdgeID(i)
		d.Time = graph.Timestamp(i + 1)
		eng.Insert(d)
	}
	if eng.Stats().Discarded.Load() == 0 {
		b.Fatal("edges should have been discarded")
	}
}
