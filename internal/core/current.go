package core

import (
	"timingsubg/internal/explist"
	"timingsubg/internal/match"
)

// CurrentMatches enumerates the complete matches standing in the current
// window — the contents of the expansion list's last item (Ω(Q)), i.e.
// matches that were reported and have not yet expired. The callback
// receives scratch; Clone to retain. Call while quiescent (no in-flight
// transactions); the paper's model reads answers between edge arrivals.
func (e *Engine) CurrentMatches(fn func(*match.Match) bool) {
	if e.K() == 1 {
		last := e.subs[0].Depth()
		e.subs[0].Each(last, func(_ explist.Handle, m *match.Match) bool {
			return fn(m)
		})
		return
	}
	e.global.Each(e.K(), func(_ explist.Handle, m *match.Match) bool {
		return fn(m)
	})
}

// CurrentMatchCount returns the number of matches standing in the
// current window.
func (e *Engine) CurrentMatchCount() int {
	if e.K() == 1 {
		return e.subs[0].Count(e.subs[0].Depth())
	}
	return e.global.Count(e.K())
}
