package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/querygen"
)

// parallelKeys runs the concurrent engine and returns sorted match keys.
func parallelKeys(t *testing.T, scheme core.LockScheme, workers int, qcfg querygen.Config, ds datagen.Dataset, seed int64, n int, window graph.Timestamp) ([]string, []string) {
	t.Helper()
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: 60, Seed: seed})
	edges := gen.Take(n)
	q, _, err := querygen.Generate(edges[:n/2], qcfg)
	if err != nil {
		t.Skipf("no query: %v", err)
	}

	// Serial reference.
	var serial []string
	ser := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		serial = append(serial, m.Key())
	}})
	runStream(t, edges, window, ser.Process)
	sort.Strings(serial)

	// Concurrent run.
	var mu sync.Mutex
	var conc []string
	eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		if err := m.Verify(q); err != nil {
			t.Errorf("parallel engine emitted invalid match: %v", err)
		}
		mu.Lock()
		conc = append(conc, m.Key())
		mu.Unlock()
	}})
	par := core.NewParallel(eng, scheme, workers)
	runStream(t, edges, window, par.Process)
	par.Wait()
	sort.Strings(conc)
	return serial, conc
}

// TestStreamingConsistency verifies Definition 11: concurrent execution
// under either locking scheme yields exactly the serial result set.
// Workload shapes are chosen to keep match counts in the hundreds while
// still exercising multi-subquery cascades and expiry under contention.
func TestStreamingConsistency(t *testing.T) {
	trials := []struct {
		ds    datagen.Dataset
		size  int
		order querygen.OrderKind
	}{
		{datagen.NetworkFlow, 4, querygen.RandomOrder},
		{datagen.WikiTalk, 5, querygen.FullOrder},
		{datagen.SocialStream, 3, querygen.EmptyOrder},
		{datagen.WikiTalk, 4, querygen.RandomOrder},
	}
	for _, scheme := range []core.LockScheme{core.FineGrained, core.AllLocks} {
		for _, workers := range []int{2, 5} {
			for ti, tr := range trials {
				scheme, workers, ti, tr := scheme, workers, ti, tr
				name := fmt.Sprintf("scheme%d/w%d/trial%d", scheme, workers, ti)
				t.Run(name, func(t *testing.T) {
					qcfg := querygen.Config{Size: tr.size, Order: tr.order, Seed: int64(ti*17 + 3)}
					serial, conc := parallelKeys(t, scheme, workers, qcfg, tr.ds, int64(ti*101+11), 800, 250)
					diffKeys(t, "parallel-vs-serial", serial, conc)
				})
			}
		}
	}
}

// TestParallelStats checks that the concurrent engine's edge counters
// match the serial engine's.
func TestParallelStats(t *testing.T) {
	labels := graph.NewLabels()
	gen := datagen.New(datagen.WikiTalk, labels, datagen.Config{Vertices: 50, Seed: 9})
	edges := gen.Take(500)
	q, _, err := querygen.Generate(edges[:200], querygen.Config{Size: 4, Seed: 5})
	if err != nil {
		t.Skipf("no query: %v", err)
	}
	ser := core.New(q, core.Config{})
	runStream(t, edges, 150, ser.Process)

	eng := core.New(q, core.Config{})
	par := core.NewParallel(eng, core.FineGrained, 4)
	runStream(t, edges, 150, par.Process)
	par.Wait()

	if a, b := ser.Stats().EdgesIn.Load(), eng.Stats().EdgesIn.Load(); a != b {
		t.Errorf("EdgesIn: serial %d, parallel %d", a, b)
	}
	if a, b := ser.Stats().EdgesOut.Load(), eng.Stats().EdgesOut.Load(); a != b {
		t.Errorf("EdgesOut: serial %d, parallel %d", a, b)
	}
	if a, b := ser.Stats().Matches.Load(), eng.Stats().Matches.Load(); a != b {
		t.Errorf("Matches: serial %d, parallel %d", a, b)
	}
	if a, b := ser.PartialMatchCount(), eng.PartialMatchCount(); a != b {
		t.Errorf("PartialMatchCount: serial %d, parallel %d", a, b)
	}
}
