package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// TestConcurrentExpiryStress drives a dense stream through a tiny window
// so deletion transactions constantly chase insertions through the
// MS-trees, maximizing the partial-removal interleavings of Theorem 5.
// A small label alphabet makes nearly every edge relevant.
func TestConcurrentExpiryStress(t *testing.T) {
	labels := graph.NewLabels()
	la, lb, lc := labels.Intern("A"), labels.Intern("B"), labels.Intern("C")

	// Triangle query A→B→C→A with a partial order: (A→B) ≺ (C→A).
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc)
	ab := b.AddEdge(va, vb)
	b.AddEdge(vb, vc)
	ca := b.AddEdge(vc, va)
	b.Before(ab, ca)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Dense deterministic stream over 9 vertices (3 per label).
	var edges []graph.Edge
	tm := graph.Timestamp(0)
	push := func(f, to int64, fl, tl graph.Label) {
		tm++
		edges = append(edges, graph.Edge{
			From: graph.VertexID(f), To: graph.VertexID(to),
			FromLabel: fl, ToLabel: tl, Time: tm,
		})
	}
	for round := 0; round < 700; round++ {
		i := int64(round % 3)
		j := int64((round / 3) % 3)
		switch round % 3 {
		case 0:
			push(i, 3+j, la, lb)
		case 1:
			push(3+i, 6+j, lb, lc)
		case 2:
			push(6+i, j, lc, la)
		}
	}

	serialRun := func() []string {
		var keys []string
		eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
			keys = append(keys, m.Key())
		}})
		runStream(t, edges, 40, eng.Process)
		sort.Strings(keys)
		return keys
	}
	want := serialRun()
	if len(want) == 0 {
		t.Fatal("stress workload produced no matches; widen it")
	}

	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			for rep := 0; rep < 3; rep++ {
				var mu sync.Mutex
				var got []string
				eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
					if err := m.Verify(q); err != nil {
						t.Errorf("invalid match under contention: %v", err)
					}
					mu.Lock()
					got = append(got, m.Key())
					mu.Unlock()
				}})
				par := core.NewParallel(eng, core.FineGrained, workers)
				runStream(t, edges, 40, par.Process)
				par.Wait()
				sort.Strings(got)
				diffKeys(t, fmt.Sprintf("rep%d", rep), want, got)
			}
		})
	}
}
