// Package core implements the paper's continuous query engine ("Timing"):
// incoming edges extend the expansion lists of a TC decomposition
// (Algorithm 1, INSERT), expired edges cascade out of them (Algorithm 2,
// DELETE), and complete matches are reported as they form. The engine is
// storage-agnostic (MS-tree or independent copies → the paper's
// Timing-IND ablation) and locking-agnostic (serial, fine-grained, or
// All-locks → Section V).
package core

import (
	"sync"
	"sync/atomic"

	"timingsubg/internal/explist"
	"timingsubg/internal/graph"
	"timingsubg/internal/lock"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// Storage selects the partial-match store backend.
type Storage int

// Storage backends.
const (
	// MSTree stores partial matches in match-store trees (the paper's
	// Timing system).
	MSTree Storage = iota
	// Independent stores every partial match as a standalone copy (the
	// paper's Timing-IND ablation).
	Independent
)

// Config configures an Engine.
type Config struct {
	// Storage selects the backend; default MSTree.
	Storage Storage
	// Decomposition overrides the cost-model-guided decomposition;
	// nil computes query.Decompose(q).
	Decomposition *query.Decomposition
	// OnMatch, if non-nil, receives every complete match as it forms.
	// The match is owned by the callback. In concurrent mode the callback
	// is serialized by the engine.
	OnMatch func(*match.Match)
}

// Stats holds engine counters. All fields are updated atomically so they
// are safe to read in concurrent mode.
type Stats struct {
	EdgesIn    atomic.Int64 // insert operations processed
	EdgesOut   atomic.Int64 // delete operations processed
	Discarded  atomic.Int64 // incoming edges filtered as discardable
	Matches    atomic.Int64 // complete matches reported
	JoinOps    atomic.Int64 // compatibility joins performed
	PartialIns atomic.Int64 // partial matches inserted
	PartialDel atomic.Int64 // partial matches deleted
}

// edgeLoc places a query edge inside the decomposition.
type edgeLoc struct {
	sub int // 1-based TC-subquery index
	pos int // 1-based position in the timing sequence
}

// Engine is the continuous time-constrained subgraph search engine.
// Methods Insert/Delete/Process run serially; the parallel front end in
// parallel.go drives the same code under the Section V locking protocol.
type Engine struct {
	q      *query.Query
	dec    *query.Decomposition
	subs   []explist.SubList
	global explist.GlobalList // nil when the decomposition has one subquery
	loc    []edgeLoc          // indexed by query.EdgeID
	joins  []levelJoin        // join metadata for global items 2..k

	onMatch func(*match.Match)
	emitMu  sync.Mutex

	stats Stats
}

// New builds an engine for q.
func New(q *query.Query, cfg Config) *Engine {
	dec := cfg.Decomposition
	if dec == nil {
		dec = query.Decompose(q)
	}
	e := &Engine{q: q, dec: dec, onMatch: cfg.OnMatch}
	e.loc = make([]edgeLoc, q.NumEdges())
	for si, sub := range dec.Subqueries {
		for pi, qe := range sub.Seq {
			e.loc[qe] = edgeLoc{sub: si + 1, pos: pi + 1}
		}
	}
	for _, sub := range dec.Subqueries {
		if cfg.Storage == Independent {
			e.subs = append(e.subs, explist.NewFlatSubList(q, sub))
		} else {
			e.subs = append(e.subs, explist.NewTreeSubList(q, sub))
		}
	}
	if dec.K() > 1 {
		if cfg.Storage == Independent {
			e.global = explist.NewFlatGlobalList(q, dec)
		} else {
			e.global = explist.NewTreeGlobalList(q, dec)
		}
		e.joins = buildJoins(q, dec)
	}
	return e
}

// Query returns the engine's query.
func (e *Engine) Query() *query.Query { return e.q }

// Decomposition returns the TC decomposition in use.
func (e *Engine) Decomposition() *query.Decomposition { return e.dec }

// Stats returns the engine counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// K returns the decomposition size.
func (e *Engine) K() int { return e.dec.K() }

// Insert processes one incoming edge (Algorithm 1), serially.
func (e *Engine) Insert(d graph.Edge) { e.runInsert(d, lock.NopLocker{}) }

// Delete processes one expired edge (Algorithm 2), serially.
func (e *Engine) Delete(d graph.Edge) { e.runDelete(d, lock.NopLocker{}) }

// Process handles one window slide serially: expired edges are removed in
// chronological order, then the incoming edge is inserted.
func (e *Engine) Process(d graph.Edge, expired []graph.Edge) {
	for _, x := range expired {
		e.Delete(x)
	}
	e.Insert(d)
}

// SpaceBytes estimates the resident size of all stored partial matches.
// Call while quiescent.
func (e *Engine) SpaceBytes() int64 {
	var b int64
	for _, s := range e.subs {
		b += s.SpaceBytes()
	}
	if e.global != nil {
		b += e.global.SpaceBytes()
	}
	return b
}

// PartialMatchCount returns the total number of stored partial matches
// across all expansion-list items. Call while quiescent.
func (e *Engine) PartialMatchCount() int64 {
	var n int64
	for _, s := range e.subs {
		for lvl := 1; lvl <= s.Depth(); lvl++ {
			n += int64(s.Count(lvl))
		}
	}
	if e.global != nil {
		for lvl := 2; lvl <= e.global.K(); lvl++ {
			n += int64(e.global.Count(lvl))
		}
	}
	return n
}

// pair carries a stored handle together with its materialized match.
type pair struct {
	h explist.Handle
	m *match.Match
}

// item names the lock resource for sub-list s (1-based) item lvl; sub 0
// is the global list. globalReadItem resolves the L₀¹ alias.
func item(s, lvl int) lock.ItemID { return lock.ItemID{List: s, Level: lvl} }

// globalReadItem returns the lock item that stores global item lvl:
// L₀¹ aliases the first sub-list's last item (Section V-A).
func (e *Engine) globalReadItem(lvl int) lock.ItemID {
	if lvl == 1 {
		return item(1, e.subs[0].Depth())
	}
	return item(0, lvl)
}

// -------------------------------------------------------------------
// Algorithm 1: INSERT. The lock acquire/release points below must stay
// in lockstep with InsertPlan; FineTxn asserts the correspondence.
// -------------------------------------------------------------------

func (e *Engine) runInsert(d graph.Edge, lk lock.Locker) {
	e.stats.EdgesIn.Add(1)
	contributed := false
	for _, qe := range e.q.MatchingEdges(d) {
		s, p := e.loc[qe].sub, e.loc[qe].pos
		sub := e.subs[s-1]
		depth := sub.Depth()

		var delta []pair
		if p == 1 {
			probe := match.New(e.q)
			lk.Acquire(item(s, 1), lock.X)
			if probe.CanBind(e.q, qe, d) {
				if h := sub.Insert(1, nil, d); h != nil {
					probe.Bind(e.q, qe, d)
					delta = append(delta, pair{h, probe})
				}
			}
			lk.Release(item(s, 1), lock.X)
		} else {
			var parents []pair
			lk.Acquire(item(s, p-1), lock.S)
			sub.Each(p-1, func(h explist.Handle, m *match.Match) bool {
				e.stats.JoinOps.Add(1)
				if m.CanBind(e.q, qe, d) {
					parents = append(parents, pair{h, m.Clone()})
				}
				return true
			})
			lk.Release(item(s, p-1), lock.S)

			lk.Acquire(item(s, p), lock.X)
			for _, pr := range parents {
				if h := sub.Insert(p, pr.h, d); h != nil {
					pr.m.Bind(e.q, qe, d)
					delta = append(delta, pair{h, pr.m})
				}
			}
			lk.Release(item(s, p), lock.X)
		}
		e.stats.PartialIns.Add(int64(len(delta)))
		if len(delta) > 0 {
			contributed = true
		}

		if p == depth {
			if e.K() == 1 {
				e.emit(delta)
			} else {
				e.cascade(s, delta, lk)
			}
		}
	}
	if !contributed {
		e.stats.Discarded.Add(1)
	}
}

// joined is a compatible (left, right) candidate pair with its merged
// match, produced while reading under the S lock and inserted under the
// X lock.
type joined struct {
	lh, rh explist.Handle
	m      *match.Match
}

// cascade joins fresh complete matches of subquery s into the global
// list and onward through Q^{s+1}..Q^k (Algorithm 1 lines 11-24). It
// walks every planned item even when delta drains to empty, so the lock
// schedule matches the dispatched plan. Compatibility is evaluated
// during the read phase with the precomputed per-level join metadata, so
// only genuinely joinable rows are materialized.
func (e *Engine) cascade(s int, delta []pair, lk lock.Locker) {
	k := e.K()
	deltaG := delta
	if s > 1 {
		// New Q^s matches join with the stored prefix Ω(L₀^{s-1}):
		// the stored side is the LEFT side of join level s.
		var pairs []joined
		ri := e.globalReadItem(s - 1)
		j := &e.joins[s]
		lk.Acquire(ri, lock.S)
		if len(deltaG) > 0 {
			e.eachGlobal(s-1, func(lh explist.Handle, left *match.Match) bool {
				for _, d := range deltaG {
					e.stats.JoinOps.Add(1)
					if j.compatible(left, d.m) {
						pairs = append(pairs, joined{lh: lh, rh: d.h, m: left.Merge(d.m)})
					}
				}
				return true
			})
		}
		lk.Release(ri, lock.S)

		lk.Acquire(item(0, s), lock.X)
		deltaG = e.insertJoined(s, pairs)
		lk.Release(item(0, s), lock.X)
	}
	for x := s + 1; x <= k; x++ {
		// The accumulated prefix deltaG joins with stored Ω(Q^x): the
		// stored side is the RIGHT side of join level x.
		var pairs []joined
		ri := item(x, e.subs[x-1].Depth())
		j := &e.joins[x]
		lk.Acquire(ri, lock.S)
		if len(deltaG) > 0 {
			e.subs[x-1].Each(e.subs[x-1].Depth(), func(rh explist.Handle, right *match.Match) bool {
				for _, d := range deltaG {
					e.stats.JoinOps.Add(1)
					if j.compatible(d.m, right) {
						pairs = append(pairs, joined{lh: d.h, rh: rh, m: d.m.Merge(right)})
					}
				}
				return true
			})
		}
		lk.Release(ri, lock.S)

		lk.Acquire(item(0, x), lock.X)
		deltaG = e.insertJoined(x, pairs)
		lk.Release(item(0, x), lock.X)
	}
	if k > 1 {
		e.emit(deltaG)
	}
}

// insertJoined stores pre-joined pairs at global item lvl. The caller
// holds the X lock on item(0, lvl).
func (e *Engine) insertJoined(lvl int, pairs []joined) []pair {
	var out []pair
	for _, p := range pairs {
		if h := e.global.Insert(lvl, p.lh, p.rh); h != nil {
			out = append(out, pair{h, p.m})
		}
	}
	e.stats.PartialIns.Add(int64(len(out)))
	return out
}

// eachGlobal iterates global item lvl, resolving the L₀¹ alias.
func (e *Engine) eachGlobal(lvl int, fn func(explist.Handle, *match.Match) bool) {
	if lvl == 1 {
		e.subs[0].Each(e.subs[0].Depth(), fn)
		return
	}
	e.global.Each(lvl, fn)
}

// emit reports complete matches. The callback is serialized so user code
// never needs its own locking.
func (e *Engine) emit(results []pair) {
	if len(results) == 0 {
		return
	}
	e.stats.Matches.Add(int64(len(results)))
	if e.onMatch == nil {
		return
	}
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	for _, r := range results {
		e.onMatch(r.m)
	}
}

// -------------------------------------------------------------------
// Algorithm 2: DELETE. Lock points mirror DeletePlan.
// -------------------------------------------------------------------

func (e *Engine) runDelete(d graph.Edge, lk lock.Locker) {
	e.stats.EdgesOut.Add(1)
	k := e.K()
	for s := 1; s <= k; s++ {
		if !e.subTouchedBy(s, d) {
			continue
		}
		sub := e.subs[s-1]
		depth := sub.Depth()
		var casualties []explist.Handle
		for lvl := 1; lvl <= depth; lvl++ {
			lk.Acquire(item(s, lvl), lock.X)
			casualties = sub.DeleteLevel(lvl, d.ID, casualties)
			lk.Release(item(s, lvl), lock.X)
			e.stats.PartialDel.Add(int64(len(casualties)))
		}
		if k == 1 {
			continue
		}
		lastDead := casualties
		start := s
		var gcas, deadSubs []explist.Handle
		if s == 1 {
			start = 2
			gcas = lastDead
		} else {
			deadSubs = lastDead
		}
		for lvl := start; lvl <= k; lvl++ {
			var ds []explist.Handle
			if lvl == s {
				ds = deadSubs
			}
			lk.Acquire(item(0, lvl), lock.X)
			gcas = e.global.DeleteLevel(lvl, ds, gcas, d.ID)
			lk.Release(item(0, lvl), lock.X)
			e.stats.PartialDel.Add(int64(len(gcas)))
		}
	}
}

// subTouchedBy reports whether d can match any position of subquery s.
func (e *Engine) subTouchedBy(s int, d graph.Edge) bool {
	for _, qe := range e.dec.Subqueries[s-1].Seq {
		if e.q.MatchesData(qe, d) {
			return true
		}
	}
	return false
}
