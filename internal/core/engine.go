// Package core implements the paper's continuous query engine ("Timing"):
// incoming edges extend the expansion lists of a TC decomposition
// (Algorithm 1, INSERT), expired edges cascade out of them (Algorithm 2,
// DELETE), and complete matches are reported as they form. The engine is
// storage-agnostic (MS-tree or independent copies → the paper's
// Timing-IND ablation) and locking-agnostic (serial, fine-grained, or
// All-locks → Section V).
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"timingsubg/internal/explist"
	"timingsubg/internal/graph"
	"timingsubg/internal/lock"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
	"timingsubg/internal/stats"
)

// Storage selects the partial-match store backend.
type Storage int

// Storage backends.
const (
	// MSTree stores partial matches in match-store trees (the paper's
	// Timing system).
	MSTree Storage = iota
	// Independent stores every partial match as a standalone copy (the
	// paper's Timing-IND ablation).
	Independent
)

// Config configures an Engine.
type Config struct {
	// Storage selects the backend; default MSTree.
	Storage Storage
	// Decomposition overrides the cost-model-guided decomposition;
	// nil computes query.Decompose(q).
	Decomposition *query.Decomposition
	// OnMatch, if non-nil, receives every complete match as it forms.
	// The match is owned by the callback. In concurrent mode the callback
	// is serialized by the engine.
	OnMatch func(*match.Match)
	// ScanProbes disables the vertex join indexes on the probe paths:
	// every INSERT probe scans the whole expansion-list item, as the
	// engine did before the indexes existed. It is the index ablation
	// switch — equivalence tests and the bench harness A/B the two modes;
	// results are identical, only JoinScanned (and wall clock) differ.
	ScanProbes bool
	// JoinHist, when non-nil, observes the insert-side join work;
	// ExpiryHist observes the window-expiry sweep (the batch of deletes
	// one Process evicts). One Process call in statSampleStride is
	// timed — a clock read rivals the insert itself, so sampling is
	// what keeps metrics-on overhead within a few percent (the stride
	// is latency-independent, so percentiles stay unbiased; Counts are
	// samples, not call counts). Observed only on the serial Process
	// path — the parallel wrapper interleaves transactions, so
	// per-stage wall time is not attributable there. Nil (the default)
	// adds no work to the hot path.
	JoinHist   *stats.AtomicHistogram
	ExpiryHist *stats.AtomicHistogram
}

// Stats holds engine counters. All fields are updated atomically so they
// are safe to read in concurrent mode.
type Stats struct {
	EdgesIn    atomic.Int64 // insert operations processed
	EdgesOut   atomic.Int64 // delete operations processed
	Discarded  atomic.Int64 // incoming edges filtered as discardable
	Matches    atomic.Int64 // complete matches reported
	PartialIns atomic.Int64 // partial matches inserted
	PartialDel atomic.Int64 // partial matches deleted

	// Join-index selectivity (these replace the old JoinOps counter,
	// whose visited-pair semantics JoinScanned carries on): JoinScanned
	// counts stored partial matches visited by INSERT probe loops;
	// JoinCandidates counts the visited matches that pass the join-key
	// filter (equal connecting-vertex binding, or equal shared bindings
	// in the global cascade) and therefore get a full compatibility
	// evaluation. With the vertex join indexes on (MSTree storage,
	// ScanProbes off) every visited match is a candidate — scanned ==
	// candidates, the probe cost the index reduces from O(item) to
	// O(candidates); scan-mode and independent-storage engines visit
	// whole items, so the gap between the two is exactly the work the
	// index saves.
	JoinScanned    atomic.Int64
	JoinCandidates atomic.Int64

	// Batch-expiry plane: ExpiryBatches counts window slides processed
	// through the batched delete path (one transaction sweeping every
	// expired edge of the slide); ExpiryEvicted counts the expired
	// edges those batches covered. Their ratio is the mean eviction
	// batch size — the factor by which batching divides per-level lock
	// acquisitions and level walks relative to edge-at-a-time expiry.
	// Zero when the per-edge ablation path is in use.
	ExpiryBatches atomic.Int64
	ExpiryEvicted atomic.Int64
}

// edgeLoc places a query edge inside the decomposition.
type edgeLoc struct {
	sub int // 1-based TC-subquery index
	pos int // 1-based position in the timing sequence
}

// insertProbe is the precomputed join key for extending a prefix with a
// data edge bound to one query edge at sequence position p > 1: every
// stored match of the prefix binds the connecting query vertex cv, and
// only prefixes whose binding equals the incoming edge's corresponding
// endpoint (From when useFrom) can possibly extend — the hash key the
// expansion lists index their interior items by.
type insertProbe struct {
	cv      query.VertexID
	useFrom bool
}

// Engine is the continuous time-constrained subgraph search engine.
// Methods Insert/Delete/Process run serially; the parallel front end in
// parallel.go drives the same code under the Section V locking protocol.
type Engine struct {
	q      *query.Query
	dec    *query.Decomposition
	subs   []explist.SubList
	global explist.GlobalList // nil when the decomposition has one subquery
	loc    []edgeLoc          // indexed by query.EdgeID
	probes []insertProbe      // indexed by query.EdgeID; valid for pos > 1
	joins  []levelJoin        // join metadata for global items 2..k

	// scanProbes forces full-item probe scans (Config.ScanProbes).
	scanProbes bool

	// joinHist/expiryHist are Config.JoinHist/ExpiryHist (nil = off);
	// sampleTick counts Process calls for their sampling stride.
	joinHist   *stats.AtomicHistogram
	expiryHist *stats.AtomicHistogram
	sampleTick uint64

	// mpool recycles match objects through the insert hot path; scratch
	// recycles the per-call probe buffers. Both are sync.Pools so
	// concurrent transactions (Workers > 1) never share state.
	mpool   sync.Pool
	scratch sync.Pool

	onMatch func(*match.Match)
	emitMu  sync.Mutex

	stats Stats
}

// New builds an engine for q.
func New(q *query.Query, cfg Config) *Engine {
	dec := cfg.Decomposition
	if dec == nil {
		dec = query.Decompose(q)
	}
	e := &Engine{q: q, dec: dec, onMatch: cfg.OnMatch, scanProbes: cfg.ScanProbes,
		joinHist: cfg.JoinHist, expiryHist: cfg.ExpiryHist}
	e.loc = make([]edgeLoc, q.NumEdges())
	e.probes = make([]insertProbe, q.NumEdges())
	for si, sub := range dec.Subqueries {
		for pi, qe := range sub.Seq {
			e.loc[qe] = edgeLoc{sub: si + 1, pos: pi + 1}
			if pi >= 1 {
				cv, useFrom, ok := sub.ConnectingVertex(q, pi+1)
				if !ok {
					panic("core: timing sequence position has no connecting vertex")
				}
				e.probes[qe] = insertProbe{cv: cv, useFrom: useFrom}
			}
		}
	}
	for _, sub := range dec.Subqueries {
		if cfg.Storage == Independent {
			e.subs = append(e.subs, explist.NewFlatSubList(q, sub))
		} else {
			e.subs = append(e.subs, explist.NewTreeSubList(q, sub))
		}
	}
	if dec.K() > 1 {
		if cfg.Storage == Independent {
			e.global = explist.NewFlatGlobalList(q, dec)
		} else {
			e.global = explist.NewTreeGlobalList(q, dec)
		}
		e.joins = buildJoins(q, dec)
		// Key every stored join side by the shared bindings of the join
		// level it feeds: sub-list x's complete matches are the right
		// side of join x (sub-list 1's doubling as L₀¹, the left side of
		// join 2, which shares joins[2]); global item ℓ < k is the left
		// side of join ℓ+1.
		sharedByJoin := make([][]query.VertexID, dec.K()+1)
		for x := 2; x <= dec.K(); x++ {
			sharedByJoin[x] = e.joins[x].shared
		}
		e.subs[0].SetJoinKey(sharedByJoin[2])
		for x := 2; x <= dec.K(); x++ {
			e.subs[x-1].SetJoinKey(sharedByJoin[x])
		}
		e.global.SetJoinKeys(sharedByJoin)
	}
	return e
}

// ---------------------------------------------------------------------
// Hot-path allocation pools
// ---------------------------------------------------------------------

// insertScratch holds one insert transaction's reusable buffers.
type insertScratch struct {
	qes     []query.EdgeID
	parents []pair
	delta   []pair
	pairs   []joined
}

func (e *Engine) getScratch() *insertScratch {
	if v := e.scratch.Get(); v != nil {
		return v.(*insertScratch)
	}
	return &insertScratch{}
}

// putScratch returns sc to the pool with its backing arrays cleared so
// pooled scratch never pins dead matches or tree nodes.
func (e *Engine) putScratch(sc *insertScratch) {
	clear(sc.parents[:cap(sc.parents)])
	clear(sc.delta[:cap(sc.delta)])
	clear(sc.pairs[:cap(sc.pairs)])
	sc.parents, sc.delta, sc.pairs = sc.parents[:0], sc.delta[:0], sc.pairs[:0]
	e.scratch.Put(sc)
}

// getEmptyMatch returns a pooled match with no bindings.
func (e *Engine) getEmptyMatch() *match.Match {
	if v := e.mpool.Get(); v != nil {
		m := v.(*match.Match)
		m.Reset()
		return m
	}
	return match.New(e.q)
}

// cloneMatch returns a pooled copy of src.
func (e *Engine) cloneMatch(src *match.Match) *match.Match {
	var m *match.Match
	if v := e.mpool.Get(); v != nil {
		m = v.(*match.Match)
	} else {
		m = match.New(e.q)
	}
	m.CopyFrom(src)
	return m
}

// putMatch recycles a match the engine still owns. Matches handed to
// the OnMatch callback are owned by the callback and never recycled.
func (e *Engine) putMatch(m *match.Match) { e.mpool.Put(m) }

// Query returns the engine's query.
func (e *Engine) Query() *query.Query { return e.q }

// Decomposition returns the TC decomposition in use.
func (e *Engine) Decomposition() *query.Decomposition { return e.dec }

// Stats returns the engine counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// K returns the decomposition size.
func (e *Engine) K() int { return e.dec.K() }

// Insert processes one incoming edge (Algorithm 1), serially.
func (e *Engine) Insert(d graph.Edge) { e.runInsert(d, lock.NopLocker{}) }

// Delete processes one expired edge (Algorithm 2), serially.
func (e *Engine) Delete(d graph.Edge) { e.runDelete(d, lock.NopLocker{}) }

// DeleteBatch processes every edge expired by one window slide as a
// single batched sweep (Algorithm 2, amortized), serially. expired
// must be the slide's eviction set in chronological order, as produced
// by the windower.
func (e *Engine) DeleteBatch(expired []graph.Edge) {
	e.runDeleteBatch(expired, lock.NopLocker{})
}

// statSampleStride is the Process-call sampling stride for the join and
// expiry stage histograms: one call in 32 is timed, starting with the
// first. A clock read costs tens of nanoseconds — comparable to the
// insert hot path itself — so timing every call would be the dominant
// cost of having metrics on (BenchmarkInsertIngest's indexed/metrics
// A/B); sampling keeps the overhead a few percent while the stride is
// latency-independent, so the histogram percentiles stay unbiased.
const statSampleStride = 32

// tickSample advances the histogram sampling stride shared by Process
// and ProcessBatch, reporting whether this slide is the timed one.
func (e *Engine) tickSample() bool {
	if e.joinHist == nil && e.expiryHist == nil {
		return false
	}
	e.sampleTick++
	return e.sampleTick%statSampleStride == 1
}

// Process handles one window slide serially with edge-at-a-time expiry:
// expired edges are removed in chronological order, then the incoming
// edge is inserted. This is the per-edge ablation path — ProcessBatch
// is the batched production path. When Config.JoinHist/ExpiryHist are
// set, one call in statSampleStride has its insert and expiry sweep
// timed as the pipeline's join and expiry stages.
func (e *Engine) Process(d graph.Edge, expired []graph.Edge) {
	sampled := e.tickSample()
	timed := sampled && e.expiryHist != nil && len(expired) > 0
	var t time.Time
	if timed {
		t = stats.SampleStart()
	}
	for _, x := range expired {
		e.Delete(x)
	}
	if timed {
		e.expiryHist.ObserveSince(t)
	}
	if sampled && e.joinHist != nil {
		t = stats.SampleStart()
		e.Insert(d)
		e.joinHist.ObserveSince(t)
		return
	}
	e.Insert(d)
}

// ProcessBatch handles one window slide serially with batched expiry:
// all expired edges are swept in a single runDeleteBatch pass (one
// lock round-trip per touched item instead of one per item per edge),
// then the incoming edge is inserted. Sampling mirrors Process: the
// expiry histogram observes the whole batch once.
func (e *Engine) ProcessBatch(d graph.Edge, expired []graph.Edge) {
	sampled := e.tickSample()
	if len(expired) > 0 {
		if sampled && e.expiryHist != nil {
			t := stats.SampleStart()
			e.DeleteBatch(expired)
			e.expiryHist.ObserveSince(t)
		} else {
			e.DeleteBatch(expired)
		}
	}
	if sampled && e.joinHist != nil {
		t := stats.SampleStart()
		e.Insert(d)
		e.joinHist.ObserveSince(t)
		return
	}
	e.Insert(d)
}

// SpaceBytes estimates the resident size of all stored partial matches.
// Call while quiescent.
func (e *Engine) SpaceBytes() int64 {
	var b int64
	for _, s := range e.subs {
		b += s.SpaceBytes()
	}
	if e.global != nil {
		b += e.global.SpaceBytes()
	}
	return b
}

// PartialMatchCount returns the total number of stored partial matches
// across all expansion-list items. Call while quiescent.
func (e *Engine) PartialMatchCount() int64 {
	var n int64
	for _, s := range e.subs {
		for lvl := 1; lvl <= s.Depth(); lvl++ {
			n += int64(s.Count(lvl))
		}
	}
	if e.global != nil {
		for lvl := 2; lvl <= e.global.K(); lvl++ {
			n += int64(e.global.Count(lvl))
		}
	}
	return n
}

// pair carries a stored handle together with its materialized match.
type pair struct {
	h explist.Handle
	m *match.Match
}

// item names the lock resource for sub-list s (1-based) item lvl; sub 0
// is the global list. globalReadItem resolves the L₀¹ alias.
func item(s, lvl int) lock.ItemID { return lock.ItemID{List: s, Level: lvl} }

// globalReadItem returns the lock item that stores global item lvl:
// L₀¹ aliases the first sub-list's last item (Section V-A).
func (e *Engine) globalReadItem(lvl int) lock.ItemID {
	if lvl == 1 {
		return item(1, e.subs[0].Depth())
	}
	return item(0, lvl)
}

// -------------------------------------------------------------------
// Algorithm 1: INSERT. The lock acquire/release points below must stay
// in lockstep with InsertPlan; FineTxn asserts the correspondence.
// -------------------------------------------------------------------

func (e *Engine) runInsert(d graph.Edge, lk lock.Locker) {
	e.stats.EdgesIn.Add(1)
	sc := e.getScratch()
	defer e.putScratch(sc)
	var scanned, candidates int64
	contributed := false
	sc.qes = e.q.MatchingEdgesInto(d, sc.qes)
	for _, qe := range sc.qes {
		s, p := e.loc[qe].sub, e.loc[qe].pos
		sub := e.subs[s-1]
		depth := sub.Depth()

		delta := sc.delta[:0]
		if p == 1 {
			probe := e.getEmptyMatch()
			lk.Acquire(item(s, 1), lock.X)
			if probe.CanBindPrescreened(e.q, qe, d) {
				if h := sub.Insert(1, nil, d); h != nil {
					probe.Bind(e.q, qe, d)
					delta = append(delta, pair{h, probe})
					probe = nil
				}
			}
			lk.Release(item(s, 1), lock.X)
			if probe != nil {
				e.putMatch(probe)
			}
		} else {
			// The incoming edge pins the connecting query vertex's
			// binding to one of its endpoints: only stored prefixes with
			// that exact binding can extend, so probe by key instead of
			// scanning the whole item (the flat backend, and scan mode,
			// still visit everything — the key check then filters).
			pb := e.probes[qe]
			key := d.To
			if pb.useFrom {
				key = d.From
			}
			parents := sc.parents[:0]
			probe := func(h explist.Handle, m *match.Match) bool {
				scanned++
				if m.Vtx[pb.cv] != key {
					return true
				}
				candidates++
				if m.CanBindPrescreened(e.q, qe, d) {
					parents = append(parents, pair{h, e.cloneMatch(m)})
				}
				return true
			}
			lk.Acquire(item(s, p-1), lock.S)
			if e.scanProbes {
				sub.Each(p-1, probe)
			} else {
				sub.EachCandidate(p-1, key, probe)
			}
			lk.Release(item(s, p-1), lock.S)

			lk.Acquire(item(s, p), lock.X)
			for _, pr := range parents {
				if h := sub.Insert(p, pr.h, d); h != nil {
					pr.m.Bind(e.q, qe, d)
					delta = append(delta, pair{h, pr.m})
				} else {
					e.putMatch(pr.m)
				}
			}
			lk.Release(item(s, p), lock.X)
			sc.parents = parents[:0]
		}
		e.stats.PartialIns.Add(int64(len(delta)))
		if len(delta) > 0 {
			contributed = true
		}

		if p == depth {
			if e.K() == 1 {
				e.emit(delta)
				delta = delta[:0]
			} else {
				e.cascade(s, delta, sc, lk, &scanned, &candidates)
				for _, dp := range delta {
					e.putMatch(dp.m)
				}
			}
		} else {
			for _, dp := range delta {
				e.putMatch(dp.m)
			}
		}
		sc.delta = delta[:0]
	}
	if !contributed {
		e.stats.Discarded.Add(1)
	}
	if scanned > 0 {
		e.stats.JoinScanned.Add(scanned)
	}
	if candidates > 0 {
		e.stats.JoinCandidates.Add(candidates)
	}
}

// joined is a compatible (left, right) candidate pair with its merged
// match, produced while reading under the S lock and inserted under the
// X lock.
type joined struct {
	lh, rh explist.Handle
	m      *match.Match
}

// cascade joins fresh complete matches of subquery s into the global
// list and onward through Q^{s+1}..Q^k (Algorithm 1 lines 11-24). It
// walks every planned item even when delta drains to empty, so the lock
// schedule matches the dispatched plan. Each delta row probes the
// stored side by its shared-binding fingerprint, so only stored matches
// agreeing on the join's shared vertices are ever materialized;
// compatibility's remaining checks run per candidate with the
// precomputed per-level join metadata. The caller retains ownership of
// delta's matches; every intermediate match cascade allocates is
// recycled, and the final results are handed to emit.
func (e *Engine) cascade(s int, delta []pair, sc *insertScratch, lk lock.Locker, scanned, candidates *int64) {
	k := e.K()
	deltaG := delta
	owned := false // deltaG was allocated by this cascade (not the caller)
	advance := func(old []pair, next []pair) {
		if owned {
			for _, d := range old {
				e.putMatch(d.m)
			}
		}
		owned = true
		deltaG = next
	}
	if s > 1 {
		// New Q^s matches join with the stored prefix Ω(L₀^{s-1}):
		// the stored side is the LEFT side of join level s.
		pairs := sc.pairs[:0]
		ri := e.globalReadItem(s - 1)
		j := &e.joins[s]
		consider := func(lh explist.Handle, left *match.Match, d pair) {
			*scanned++
			if !j.sharedEqual(left, d.m) {
				return
			}
			*candidates++
			if j.compatibleTail(left, d.m) {
				nm := e.cloneMatch(left)
				nm.MergeInPlace(d.m)
				pairs = append(pairs, joined{lh: lh, rh: d.h, m: nm})
			}
		}
		lk.Acquire(ri, lock.S)
		if e.scanProbes {
			// One pass over the stored item, delta rows inner — each
			// stored match is materialized once, so the scan ablation
			// measures scan cost, not redundant re-materialization.
			if len(deltaG) > 0 {
				e.eachGlobal(s-1, func(lh explist.Handle, left *match.Match) bool {
					for _, d := range deltaG {
						consider(lh, left, d)
					}
					return true
				})
			}
		} else {
			for _, d := range deltaG {
				fp := explist.JoinFingerprint(d.m, j.shared)
				e.eachGlobalCandidate(s-1, fp, func(lh explist.Handle, left *match.Match) bool {
					consider(lh, left, d)
					return true
				})
			}
		}
		lk.Release(ri, lock.S)

		lk.Acquire(item(0, s), lock.X)
		out := e.insertJoined(s, pairs)
		lk.Release(item(0, s), lock.X)
		advance(deltaG, out)
		sc.pairs = pairs[:0]
	}
	for x := s + 1; x <= k; x++ {
		// The accumulated prefix deltaG joins with stored Ω(Q^x): the
		// stored side is the RIGHT side of join level x.
		pairs := sc.pairs[:0]
		ri := item(x, e.subs[x-1].Depth())
		j := &e.joins[x]
		consider := func(rh explist.Handle, right *match.Match, d pair) {
			*scanned++
			if !j.sharedEqual(d.m, right) {
				return
			}
			*candidates++
			if j.compatibleTail(d.m, right) {
				nm := e.cloneMatch(d.m)
				nm.MergeInPlace(right)
				pairs = append(pairs, joined{lh: d.h, rh: rh, m: nm})
			}
		}
		lk.Acquire(ri, lock.S)
		if e.scanProbes {
			if len(deltaG) > 0 {
				e.subs[x-1].Each(e.subs[x-1].Depth(), func(rh explist.Handle, right *match.Match) bool {
					for _, d := range deltaG {
						consider(rh, right, d)
					}
					return true
				})
			}
		} else {
			for _, d := range deltaG {
				fp := explist.JoinFingerprint(d.m, j.shared)
				e.subs[x-1].EachJoinCandidate(fp, func(rh explist.Handle, right *match.Match) bool {
					consider(rh, right, d)
					return true
				})
			}
		}
		lk.Release(ri, lock.S)

		lk.Acquire(item(0, x), lock.X)
		out := e.insertJoined(x, pairs)
		lk.Release(item(0, x), lock.X)
		advance(deltaG, out)
		sc.pairs = pairs[:0]
	}
	if k > 1 {
		e.emit(deltaG)
	}
}

// insertJoined stores pre-joined pairs at global item lvl, recycling
// the merged match when a side died concurrently. The caller holds the
// X lock on item(0, lvl).
func (e *Engine) insertJoined(lvl int, pairs []joined) []pair {
	var out []pair
	for _, p := range pairs {
		if h := e.global.Insert(lvl, p.lh, p.rh); h != nil {
			out = append(out, pair{h, p.m})
		} else {
			e.putMatch(p.m)
		}
	}
	e.stats.PartialIns.Add(int64(len(out)))
	return out
}

// eachGlobal iterates global item lvl, resolving the L₀¹ alias.
func (e *Engine) eachGlobal(lvl int, fn func(explist.Handle, *match.Match) bool) {
	if lvl == 1 {
		e.subs[0].Each(e.subs[0].Depth(), fn)
		return
	}
	e.global.Each(lvl, fn)
}

// eachGlobalCandidate is eachGlobal restricted to stored matches whose
// shared-binding fingerprint equals fp, resolving the L₀¹ alias.
func (e *Engine) eachGlobalCandidate(lvl int, fp uint64, fn func(explist.Handle, *match.Match) bool) {
	if lvl == 1 {
		e.subs[0].EachJoinCandidate(fp, fn)
		return
	}
	e.global.EachCandidate(lvl, fp, fn)
}

// emit reports complete matches. The callback is serialized so user code
// never needs its own locking; reported matches are owned by the
// callback. Without a callback the matches return to the pool.
func (e *Engine) emit(results []pair) {
	if len(results) == 0 {
		return
	}
	e.stats.Matches.Add(int64(len(results)))
	if e.onMatch == nil {
		for _, r := range results {
			e.putMatch(r.m)
		}
		return
	}
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	for _, r := range results {
		e.onMatch(r.m)
	}
}

// -------------------------------------------------------------------
// Algorithm 2: DELETE. Lock points mirror DeletePlan.
// -------------------------------------------------------------------

func (e *Engine) runDelete(d graph.Edge, lk lock.Locker) {
	e.stats.EdgesOut.Add(1)
	k := e.K()
	for s := 1; s <= k; s++ {
		if !e.subTouchedBy(s, d) {
			continue
		}
		sub := e.subs[s-1]
		depth := sub.Depth()
		var casualties []explist.Handle
		for lvl := 1; lvl <= depth; lvl++ {
			lk.Acquire(item(s, lvl), lock.X)
			casualties = sub.DeleteLevel(lvl, d.ID, casualties)
			lk.Release(item(s, lvl), lock.X)
			e.stats.PartialDel.Add(int64(len(casualties)))
		}
		if k == 1 {
			continue
		}
		lastDead := casualties
		start := s
		var gcas, deadSubs []explist.Handle
		if s == 1 {
			start = 2
			gcas = lastDead
		} else {
			deadSubs = lastDead
		}
		for lvl := start; lvl <= k; lvl++ {
			var ds []explist.Handle
			if lvl == s {
				ds = deadSubs
			}
			lk.Acquire(item(0, lvl), lock.X)
			gcas = e.global.DeleteLevel(lvl, ds, gcas, d.ID)
			lk.Release(item(0, lvl), lock.X)
			e.stats.PartialDel.Add(int64(len(gcas)))
		}
	}
}

// runDeleteBatch processes all of a slide's expired edges as ONE
// transaction: each touched item is X-locked once per slide instead of
// once per slide per edge, and each level is swept once from its
// death-time expiry structure (DeleteExpired) instead of walked per
// edge. Correctness rests on death-time keying: a stored match dies
// iff its minimum edge timestamp is below the watermark, and any
// extension of a dying match inherits a key below the watermark, so
// every level's sweep is self-contained — no casualty or deadSubs
// propagation between levels or into the global list. The lock
// acquire/release points must stay in lockstep with DeleteBatchPlan;
// FineTxn asserts the correspondence.
func (e *Engine) runDeleteBatch(expired []graph.Edge, lk lock.Locker) {
	e.stats.EdgesOut.Add(int64(len(expired)))
	e.stats.ExpiryBatches.Add(1)
	e.stats.ExpiryEvicted.Add(int64(len(expired)))
	// The windower evicts oldest-first with strictly increasing
	// timestamps, so everything still stored after this slide has a
	// timestamp strictly above the last expired edge's.
	cut := expired[len(expired)-1].Time + 1
	k := e.K()
	minTouched := 0
	for s := 1; s <= k; s++ {
		if !e.subTouchedByAny(s, expired) {
			continue
		}
		if minTouched == 0 {
			minTouched = s
		}
		sub := e.subs[s-1]
		depth := sub.Depth()
		for lvl := 1; lvl <= depth; lvl++ {
			lk.Acquire(item(s, lvl), lock.X)
			n := sub.DeleteExpired(lvl, cut)
			lk.Release(item(s, lvl), lock.X)
			e.stats.PartialDel.Add(int64(n))
		}
	}
	if k == 1 || minTouched == 0 {
		return
	}
	// Global item lvl only references submatches of Q¹..Q^lvl, so items
	// below the first touched subquery cannot hold an expired binding.
	start := minTouched
	if start < 2 {
		start = 2
	}
	for lvl := start; lvl <= k; lvl++ {
		lk.Acquire(item(0, lvl), lock.X)
		n := e.global.DeleteExpired(lvl, cut)
		lk.Release(item(0, lvl), lock.X)
		e.stats.PartialDel.Add(int64(n))
	}
}

// subTouchedBy reports whether d can match any position of subquery s.
func (e *Engine) subTouchedBy(s int, d graph.Edge) bool {
	for _, qe := range e.dec.Subqueries[s-1].Seq {
		if e.q.MatchesData(qe, d) {
			return true
		}
	}
	return false
}

// subTouchedByAny reports whether any expired edge can match subquery s.
func (e *Engine) subTouchedByAny(s int, expired []graph.Edge) bool {
	for _, d := range expired {
		if e.subTouchedBy(s, d) {
			return true
		}
	}
	return false
}
