package core

import (
	"sync"

	"timingsubg/internal/graph"
	"timingsubg/internal/lock"
)

// LockScheme selects the concurrency-control scheme (Section VII-D).
type LockScheme int

// Locking schemes.
const (
	// FineGrained is the paper's scheme: per-item FIFO wait-lists, one
	// lock held at a time.
	FineGrained LockScheme = iota
	// AllLocks acquires every item a transaction may touch before it
	// starts (the comparison baseline "All-locks-N").
	AllLocks
)

// Parallel drives an Engine concurrently: every edge insertion/deletion
// becomes a transaction executed by its own goroutine, with at most
// Workers transactions in flight. The single caller of Process acts as
// the paper's main thread (Algorithm 3): it dispatches each transaction's
// lock requests in stream order before launching it, which keeps every
// wait-list chronologically sorted and the execution streaming consistent
// (Definition 11, Theorem 4).
//
// Parallel requires the MSTree storage backend; the independent backend
// is a single-threaded ablation.
type Parallel struct {
	eng     *Engine
	mgr     *lock.Manager
	scheme  LockScheme
	sem     chan struct{}
	wg      sync.WaitGroup
	nextTxn int64
}

// NewParallel wraps an MSTree-backed engine for concurrent execution with
// the given number of worker transactions in flight.
func NewParallel(eng *Engine, scheme LockScheme, workers int) *Parallel {
	if workers < 1 {
		workers = 1
	}
	return &Parallel{
		eng:    eng,
		mgr:    lock.NewManager(),
		scheme: scheme,
		sem:    make(chan struct{}, workers),
	}
}

// Engine returns the wrapped engine.
func (p *Parallel) Engine() *Engine { return p.eng }

// Process submits one window slide with edge-at-a-time expiry: deletion
// transactions for the expired edges in chronological order, then the
// insertion transaction for d. This is the per-edge ablation path —
// ProcessBatch is the batched production path. It must be called from a
// single goroutine.
func (p *Parallel) Process(d graph.Edge, expired []graph.Edge) {
	for _, x := range expired {
		p.submit(x, false)
	}
	p.submit(d, true)
}

// ProcessBatch submits one window slide with batched expiry: a single
// deletion transaction sweeping every expired edge, then the insertion
// transaction for d. The batch transaction occupies the slot the
// per-edge deletions would have held in dispatch order, and deletions
// of already-expired edges commute, so streaming consistency
// (Definition 11) is preserved: every wait-list still sees the slide's
// eviction before the slide's insertion. It must be called from a
// single goroutine.
func (p *Parallel) ProcessBatch(d graph.Edge, expired []graph.Edge) {
	if len(expired) > 0 {
		p.submitDeleteBatch(expired)
	}
	p.submit(d, true)
}

// submitDeleteBatch dispatches the slide's batched deletion as one
// transaction.
func (p *Parallel) submitDeleteBatch(expired []graph.Edge) {
	plan := p.eng.DeleteBatchPlan(expired)
	if len(plan) == 0 {
		// No expired edge touches stored state: keep the counters
		// faithful to the serial runDeleteBatch.
		p.eng.stats.EdgesOut.Add(int64(len(expired)))
		p.eng.stats.ExpiryBatches.Add(1)
		p.eng.stats.ExpiryEvicted.Add(int64(len(expired)))
		return
	}
	p.sem <- struct{}{}
	txnID := p.nextTxn
	p.nextTxn++

	run := func(lk lock.Locker, finish func()) {
		defer func() {
			finish()
			<-p.sem
			p.wg.Done()
		}()
		p.eng.runDeleteBatch(expired, lk)
	}

	p.wg.Add(1)
	switch p.scheme {
	case AllLocks:
		txn := lock.NewAllTxn(p.mgr, txnID, plan)
		go func() {
			txn.Start()
			run(txn, txn.Finish)
		}()
	default:
		txn := lock.NewFineTxn(p.mgr, txnID, plan)
		go func() {
			run(txn, txn.Finish)
		}()
	}
}

func (p *Parallel) submit(d graph.Edge, isInsert bool) {
	var plan []lock.Request
	if isInsert {
		plan = p.eng.InsertPlan(d)
	} else {
		plan = p.eng.DeletePlan(d)
	}
	if len(plan) == 0 {
		// The edge matches no query edge: nothing to do, but keep the
		// counters faithful to the serial engine.
		if isInsert {
			p.eng.stats.EdgesIn.Add(1)
			p.eng.stats.Discarded.Add(1)
		} else {
			p.eng.stats.EdgesOut.Add(1)
		}
		return
	}
	// Bound in-flight transactions, then dispatch while still on the
	// dispatcher thread so wait-lists stay in timestamp order.
	p.sem <- struct{}{}
	txnID := p.nextTxn
	p.nextTxn++

	run := func(lk lock.Locker, finish func()) {
		defer func() {
			finish()
			<-p.sem
			p.wg.Done()
		}()
		if isInsert {
			p.eng.runInsert(d, lk)
		} else {
			p.eng.runDelete(d, lk)
		}
	}

	p.wg.Add(1)
	switch p.scheme {
	case AllLocks:
		txn := lock.NewAllTxn(p.mgr, txnID, plan)
		go func() {
			txn.Start()
			run(txn, txn.Finish)
		}()
	default:
		txn := lock.NewFineTxn(p.mgr, txnID, plan)
		go func() {
			run(txn, txn.Finish)
		}()
	}
}

// Wait blocks until all in-flight transactions have finished. Call it
// before reading results or space statistics.
func (p *Parallel) Wait() { p.wg.Wait() }
