package querygen

import (
	"testing"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

func sampleEdges(t *testing.T, ds datagen.Dataset, n int, seed int64) []graph.Edge {
	t.Helper()
	return datagen.New(ds, graph.NewLabels(), datagen.Config{Vertices: 80, Seed: seed}).Take(n)
}

// TestWitnessEmbeds verifies the paper's generation guarantee (Section
// VII-B): the walked subgraph is itself a time-constrained embedding of
// the generated query.
func TestWitnessEmbeds(t *testing.T) {
	for _, ds := range datagen.Datasets() {
		for _, kind := range []OrderKind{RandomOrder, FullOrder, EmptyOrder} {
			for seed := int64(0); seed < 5; seed++ {
				edges := sampleEdges(t, ds, 800, seed+1)
				q, witness, err := Generate(edges, Config{Size: 5, Order: kind, Seed: seed})
				if err != nil {
					t.Fatalf("%s/%d/%d: %v", ds, kind, seed, err)
				}
				if q.NumEdges() != 5 || len(witness) != 5 {
					t.Fatalf("want 5 edges, got %d/%d", q.NumEdges(), len(witness))
				}
				m := match.New(q)
				for i, d := range witness {
					if !m.CanBind(q, query.EdgeID(i), d) {
						t.Fatalf("%s/%d/%d: witness edge %d does not bind: %v / query edge %v",
							ds, kind, seed, i, d, q.Edge(query.EdgeID(i)))
					}
					m.Bind(q, query.EdgeID(i), d)
				}
				if err := m.Verify(q); err != nil {
					t.Fatalf("%s/%d/%d: witness is not a valid match: %v", ds, kind, seed, err)
				}
			}
		}
	}
}

func TestOrderKinds(t *testing.T) {
	edges := sampleEdges(t, datagen.WikiTalk, 600, 3)

	qFull, _, err := Generate(edges, Config{Size: 4, Order: FullOrder, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Full order: every pair is ordered one way or the other.
	m := qFull.NumEdges()
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if !qFull.Precedes(query.EdgeID(i), query.EdgeID(j)) && !qFull.Precedes(query.EdgeID(j), query.EdgeID(i)) {
				t.Errorf("full order must relate every pair (%d,%d)", i, j)
			}
		}
	}

	qEmpty, _, err := Generate(edges, Config{Size: 4, Order: EmptyOrder, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qEmpty.OrderPairs()) != 0 {
		t.Error("empty order must have no pairs")
	}
}

func TestGenerateWithK(t *testing.T) {
	edges := sampleEdges(t, datagen.WikiTalk, 1500, 5)
	for _, k := range []int{1, 2, 3, 6} {
		q, _, err := GenerateWithK(edges, 6, k, 11)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := query.Decompose(q).K(); got != k {
			t.Errorf("k=%d: decomposition has %d subqueries", k, got)
		}
	}
	if _, _, err := GenerateWithK(edges, 6, 0, 1); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, _, err := GenerateWithK(edges, 6, 7, 1); err == nil {
		t.Error("k>size must be rejected")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := Generate(nil, Config{Size: 3}); err == nil {
		t.Error("no edges must fail")
	}
	if _, _, err := Generate(sampleEdges(t, datagen.WikiTalk, 100, 1), Config{Size: 0}); err == nil {
		t.Error("size 0 must fail")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	edges := sampleEdges(t, datagen.SocialStream, 700, 9)
	q1, w1, err1 := Generate(edges, Config{Size: 5, Seed: 21})
	q2, w2, err2 := Generate(edges, Config{Size: 5, Seed: 21})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if q1.NumVertices() != q2.NumVertices() {
		t.Error("same seed must reproduce the query")
	}
	for i := range w1 {
		if w1[i].ID != w2[i].ID {
			t.Error("same seed must reproduce the witness")
		}
	}
}
