// Package querygen generates benchmark queries the way the paper does
// (Section VII-B): a random walk over the data graph extracts a connected
// subgraph g with timestamps; a random permutation of g's edges then
// induces a timing order — εi ≺ εj iff εi precedes εj in the permutation
// AND εi's timestamp is smaller — so the order is random yet guaranteed
// satisfiable by g itself, i.e. the generated query always has at least
// one time-constrained embedding in the data.
package querygen

import (
	"errors"
	"fmt"
	"math/rand"

	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// OrderKind selects how the timing order is derived (the paper generates
// five orders per query graph: one full, one empty, three random).
type OrderKind int

// Order kinds.
const (
	// RandomOrder derives ≺ from a random permutation (the default).
	RandomOrder OrderKind = iota
	// FullOrder totally orders the edges by their data timestamps.
	FullOrder
	// EmptyOrder imposes no timing constraints.
	EmptyOrder
)

// Config tunes query generation.
type Config struct {
	// Size is the number of query edges (the paper uses 6..21).
	Size int
	// Order selects the timing-order style.
	Order OrderKind
	// Seed drives the random walk and permutation.
	Seed int64
	// MaxAttempts bounds walk restarts (default 100).
	MaxAttempts int
}

// ErrNoWalk is returned when no connected subgraph of the requested size
// could be extracted from the supplied edges.
var ErrNoWalk = errors.New("querygen: could not extract a connected subgraph of the requested size")

// Generate extracts a query of cfg.Size edges from the data stream edges.
// It returns the query and the witness data edges (aligned with query
// edge IDs) that embed it.
func Generate(edges []graph.Edge, cfg Config) (*query.Query, []graph.Edge, error) {
	if cfg.Size <= 0 {
		return nil, nil, fmt.Errorf("querygen: size must be positive, got %d", cfg.Size)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		sub := randomWalk(edges, cfg.Size, rng)
		if sub == nil {
			continue
		}
		q, err := buildQuery(sub, cfg.Order, rng)
		if err != nil {
			continue
		}
		return q, sub, nil
	}
	return nil, nil, ErrNoWalk
}

// GenerateWithK generates queries until the cost-model decomposition has
// exactly k TC-subqueries (Section VII-G): the walk subgraph is kept and
// the permutation re-drawn. k == 1 uses the full order; k == size uses
// the empty order, as the paper notes.
func GenerateWithK(edges []graph.Edge, size, k int, seed int64) (*query.Query, []graph.Edge, error) {
	if k < 1 || k > size {
		return nil, nil, fmt.Errorf("querygen: k must be in [1, %d], got %d", size, k)
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 400; attempt++ {
		var sub []graph.Edge
		if k == 1 {
			// A decomposition of size 1 needs the full timing order to be
			// prefix-connected, which a time-increasing walk guarantees.
			sub = timeIncreasingWalk(edges, size, rng)
		} else {
			sub = randomWalk(edges, size, rng)
		}
		if sub == nil {
			continue
		}
		var kinds []OrderKind
		switch k {
		case 1:
			kinds = []OrderKind{FullOrder}
		case size:
			kinds = []OrderKind{EmptyOrder}
		default:
			kinds = []OrderKind{RandomOrder}
		}
		for _, kind := range kinds {
			for tries := 0; tries < 60; tries++ {
				q, err := buildQuery(sub, kind, rng)
				if err != nil {
					break
				}
				if query.Decompose(q).K() == k {
					return q, sub, nil
				}
				if kind != RandomOrder {
					break // deterministic kinds will not change
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("querygen: no query of size %d with decomposition size %d found", size, k)
}

// randomWalk extracts a connected subgraph with exactly size distinct
// edges by growing from a random seed edge.
func randomWalk(edges []graph.Edge, size int, rng *rand.Rand) []graph.Edge {
	if len(edges) == 0 {
		return nil
	}
	snap := graph.SnapshotOf(edges)
	seed := edges[rng.Intn(len(edges))]
	chosen := []graph.Edge{seed}
	chosenIDs := map[graph.EdgeID]bool{seed.ID: true}
	verts := map[graph.VertexID]bool{}
	var vertList []graph.VertexID // insertion order, for determinism
	addVert := func(v graph.VertexID) {
		if !verts[v] {
			verts[v] = true
			vertList = append(vertList, v)
		}
	}
	addVert(seed.From)
	addVert(seed.To)
	for len(chosen) < size {
		// Gather frontier candidates: edges touching the chosen vertex
		// set, not yet chosen. Iterate vertices in insertion order so the
		// walk is a pure function of the seed.
		var cands []graph.Edge
		for _, v := range vertList {
			for _, id := range snap.Out(v) {
				if e, ok := snap.Edge(id); ok && !chosenIDs[e.ID] {
					cands = append(cands, e)
				}
			}
			for _, id := range snap.In(v) {
				if e, ok := snap.Edge(id); ok && !chosenIDs[e.ID] {
					cands = append(cands, e)
				}
			}
		}
		if len(cands) == 0 {
			return nil
		}
		next := cands[rng.Intn(len(cands))]
		chosen = append(chosen, next)
		chosenIDs[next.ID] = true
		addVert(next.From)
		addVert(next.To)
	}
	return chosen
}

// timeIncreasingWalk grows a connected subgraph whose walk order is also
// strictly increasing in timestamps, so the full timing order over it is
// prefix-connected (decomposition size 1).
func timeIncreasingWalk(edges []graph.Edge, size int, rng *rand.Rand) []graph.Edge {
	if len(edges) == 0 {
		return nil
	}
	snap := graph.SnapshotOf(edges)
	seed := edges[rng.Intn(len(edges))]
	chosen := []graph.Edge{seed}
	chosenIDs := map[graph.EdgeID]bool{seed.ID: true}
	verts := map[graph.VertexID]bool{}
	var vertList []graph.VertexID
	addVert := func(v graph.VertexID) {
		if !verts[v] {
			verts[v] = true
			vertList = append(vertList, v)
		}
	}
	addVert(seed.From)
	addVert(seed.To)
	last := seed.Time
	for len(chosen) < size {
		var cands []graph.Edge
		for _, v := range vertList {
			for _, id := range snap.Out(v) {
				if e, ok := snap.Edge(id); ok && !chosenIDs[e.ID] && e.Time > last {
					cands = append(cands, e)
				}
			}
			for _, id := range snap.In(v) {
				if e, ok := snap.Edge(id); ok && !chosenIDs[e.ID] && e.Time > last {
					cands = append(cands, e)
				}
			}
		}
		if len(cands) == 0 {
			return nil
		}
		next := cands[rng.Intn(len(cands))]
		chosen = append(chosen, next)
		chosenIDs[next.ID] = true
		addVert(next.From)
		addVert(next.To)
		last = next.Time
	}
	return chosen
}

// buildQuery converts the walked subgraph into a query with the requested
// timing-order style. The witness alignment is: query edge i corresponds
// to sub[i].
func buildQuery(sub []graph.Edge, kind OrderKind, rng *rand.Rand) (*query.Query, error) {
	b := query.NewBuilder()
	vmap := make(map[graph.VertexID]query.VertexID)
	vertex := func(v graph.VertexID, l graph.Label) query.VertexID {
		if qv, ok := vmap[v]; ok {
			return qv
		}
		qv := b.AddVertex(l)
		vmap[v] = qv
		return qv
	}
	for _, e := range sub {
		b.AddLabeledEdge(vertex(e.From, e.FromLabel), vertex(e.To, e.ToLabel), e.EdgeLabel)
	}
	switch kind {
	case EmptyOrder:
		// no constraints
	case FullOrder:
		// Chain edges in data-timestamp order.
		idx := make([]int, len(sub))
		for i := range idx {
			idx[i] = i
		}
		sortByTime(idx, sub)
		for i := 0; i+1 < len(idx); i++ {
			b.Before(query.EdgeID(idx[i]), query.EdgeID(idx[i+1]))
		}
	default: // RandomOrder: permutation position AND timestamp order agree.
		perm := rng.Perm(len(sub))
		for a := 0; a < len(perm); a++ {
			for bq := a + 1; bq < len(perm); bq++ {
				i, j := perm[a], perm[bq]
				if sub[i].Time < sub[j].Time {
					b.Before(query.EdgeID(i), query.EdgeID(j))
				}
			}
		}
	}
	return b.Build()
}

func sortByTime(idx []int, sub []graph.Edge) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && sub[idx[j]].Time < sub[idx[j-1]].Time; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
