package mstree

import (
	"math/rand"
	"testing"

	"timingsubg/internal/graph"
)

func edge(id int64) graph.Edge {
	return graph.Edge{ID: graph.EdgeID(id), Time: graph.Timestamp(id)}
}

// collect returns the edge IDs of live nodes at a level.
func collect(t *Tree, lvl int) []int64 {
	var out []int64
	t.Each(lvl, func(n *Node) bool {
		out = append(out, int64(n.Edge.ID))
		return true
	})
	return out
}

// TestFig10 rebuilds the paper's Fig. 10 MS-tree: matches {σ1}, {σ1,σ3},
// {σ1,σ3,σ4}, {σ1,σ3,σ9} share prefixes, and expiring σ1 removes the
// whole tree.
func TestFig10(t *testing.T) {
	tr := New(3)
	n1 := tr.InsertEdge(1, nil, edge(1)) // σ1
	n3 := tr.InsertEdge(2, n1, edge(3))  // σ1→σ3
	n4 := tr.InsertEdge(3, n3, edge(4))  // σ1→σ3→σ4
	n9 := tr.InsertEdge(3, n3, edge(9))  // σ1→σ3→σ9 shares the prefix
	if tr.Count(1) != 1 || tr.Count(2) != 1 || tr.Count(3) != 2 {
		t.Fatalf("level counts: want 1/1/2, got %d/%d/%d", tr.Count(1), tr.Count(2), tr.Count(3))
	}
	if tr.Nodes() != 4 {
		t.Errorf("4 nodes store 4 partial matches with shared prefixes, got %d", tr.Nodes())
	}
	// Path reconstruction.
	p := n4.PathEdges(nil)
	if len(p) != 3 || p[0].ID != 1 || p[1].ID != 3 || p[2].ID != 4 {
		t.Errorf("path of σ4 node: got %v", p)
	}
	p = n9.PathEdges(p)
	if p[2].ID != 9 || p[0].ID != 1 {
		t.Errorf("path of σ9 node: got %v", p)
	}

	// Expire σ1: the paper's cascade deletes σ3, then σ4 and σ9.
	dead1 := tr.DeleteLevel(1, 1, nil, nil)
	if len(dead1) != 1 || dead1[0] != n1 {
		t.Fatalf("level 1 casualties: %v", dead1)
	}
	dead2 := tr.DeleteLevel(2, 1, dead1, nil)
	if len(dead2) != 1 || dead2[0] != n3 {
		t.Fatalf("level 2 casualties: %v", dead2)
	}
	dead3 := tr.DeleteLevel(3, 1, dead2, nil)
	if len(dead3) != 2 {
		t.Fatalf("level 3 casualties: want σ4 and σ9, got %v", dead3)
	}
	if tr.Nodes() != 0 {
		t.Errorf("tree must be empty, %d nodes remain", tr.Nodes())
	}
	// Partial removal keeps payloads for in-flight readers.
	if !n4.Dead() || n4.Parent != n3 || n4.Edge.ID != 4 {
		t.Error("partial removal must keep Parent/Edge intact")
	}
}

func TestDeleteMidLevel(t *testing.T) {
	tr := New(2)
	a := tr.InsertEdge(1, nil, edge(1))
	b := tr.InsertEdge(1, nil, edge(2))
	c := tr.InsertEdge(1, nil, edge(3))
	tr.InsertEdge(2, a, edge(10))
	tr.InsertEdge(2, b, edge(11))
	tr.InsertEdge(2, c, edge(12))

	// Delete the middle level-1 node.
	dead := tr.DeleteLevel(1, 2, nil, nil)
	if len(dead) != 1 || dead[0] != b {
		t.Fatalf("want σ2's node, got %v", dead)
	}
	if got := collect(tr, 1); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("level list after mid delete: %v", got)
	}
	dead2 := tr.DeleteLevel(2, 2, dead, nil)
	if len(dead2) != 1 || dead2[0].Edge.ID != 11 {
		t.Fatalf("cascade: want σ11 child, got %v", dead2)
	}
	if got := collect(tr, 2); len(got) != 2 {
		t.Errorf("level 2 after cascade: %v", got)
	}
}

func TestInsertUnderDeadParent(t *testing.T) {
	tr := New(2)
	p := tr.InsertEdge(1, nil, edge(1))
	dead := tr.DeleteLevel(1, 1, nil, nil)
	if len(dead) != 1 {
		t.Fatal("parent should die")
	}
	// A later-timestamped deleter may overtake an inserter between its
	// read and its insert; the insert must still succeed (Theorem 5 case
	// 2 + Fig. 14) and the pending cascade must then collect the child.
	child := tr.InsertEdge(2, p, edge(5))
	if child == nil {
		t.Fatal("insert under a partially removed parent must succeed")
	}
	if tr.Count(2) != 1 {
		t.Fatal("child must be live until the cascade reaches its level")
	}
	dead2 := tr.DeleteLevel(2, 1, dead, nil)
	if len(dead2) != 1 || dead2[0] != child {
		t.Fatalf("cascade must collect the late insert, got %v", dead2)
	}
	if tr.Count(2) != 0 {
		t.Error("level 2 must be empty after cascade")
	}
}

func TestGlobalTreeSubIndex(t *testing.T) {
	// Sub-tree with two complete matches (leaves), global tree referencing
	// them.
	sub := New(1)
	leafA := sub.InsertEdge(1, nil, edge(1))
	leafB := sub.InsertEdge(1, nil, edge(2))

	g := New(2)
	gA := g.InsertSub(2, leafA, leafB) // parent from "first sub list", sub = leafB
	if gA == nil {
		t.Fatal("InsertSub failed")
	}
	if g.Count(2) != 1 {
		t.Fatal("global node must be live")
	}
	// Killing leafB (the Sub reference) removes the global node via the
	// dependency index.
	deadSubs := sub.DeleteLevel(1, 2, nil, nil)
	if len(deadSubs) != 1 || deadSubs[0] != leafB {
		t.Fatalf("want leafB dead, got %v", deadSubs)
	}
	gDead := g.DeleteLevel(2, -1, nil, deadSubs)
	if len(gDead) != 1 || gDead[0] != gA {
		t.Fatalf("global node must die with its submatch, got %v", gDead)
	}

	// Killing leafA (the parent) removes global children via the child
	// list.
	gB := g.InsertSub(2, leafA, leafA)
	if gB == nil {
		t.Fatal("InsertSub failed")
	}
	deadA := sub.DeleteLevel(1, 1, nil, nil)
	gDead2 := g.DeleteLevel(2, -1, deadA, nil)
	if len(gDead2) != 1 || gDead2[0] != gB {
		t.Fatalf("global node must die with its parent, got %v", gDead2)
	}
}

// TestRandomizedIntegrity cross-checks the tree against a naive mirror
// over thousands of random insert/expire operations.
func TestRandomizedIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const depth = 3
	tr := New(depth)

	type mirrorMatch struct {
		ids  [depth]int64
		node *Node
	}
	var mirror [depth][]mirrorMatch
	nextID := int64(1)

	for op := 0; op < 4000; op++ {
		if rng.Intn(4) != 0 { // insert
			id := nextID
			nextID++
			lvl := 1 + rng.Intn(depth)
			if lvl == 1 {
				n := tr.InsertEdge(1, nil, edge(id))
				mirror[0] = append(mirror[0], mirrorMatch{ids: [depth]int64{id}, node: n})
			} else if len(mirror[lvl-2]) > 0 {
				parent := mirror[lvl-2][rng.Intn(len(mirror[lvl-2]))]
				n := tr.InsertEdge(lvl, parent.node, edge(id))
				mm := mirrorMatch{ids: parent.ids, node: n}
				mm.ids[lvl-1] = id
				mirror[lvl-1] = append(mirror[lvl-1], mm)
			}
		} else if nextID > 1 { // expire a random id
			victim := 1 + rng.Int63n(nextID-1)
			var casualties []*Node
			for lvl := 1; lvl <= depth; lvl++ {
				casualties = tr.DeleteLevel(lvl, graph.EdgeID(victim), casualties, nil)
				keep := mirror[lvl-1][:0]
				for _, mm := range mirror[lvl-1] {
					contains := false
					for l := 0; l < lvl; l++ {
						if mm.ids[l] == victim {
							contains = true
							break
						}
					}
					if !contains {
						keep = append(keep, mm)
					}
				}
				mirror[lvl-1] = keep
			}
		}
		for lvl := 1; lvl <= depth; lvl++ {
			if tr.Count(lvl) != len(mirror[lvl-1]) {
				t.Fatalf("op %d: level %d count drifted: tree %d, mirror %d",
					op, lvl, tr.Count(lvl), len(mirror[lvl-1]))
			}
		}
	}
	// Every surviving path must match the mirror.
	for lvl := 1; lvl <= depth; lvl++ {
		want := map[[depth]int64]bool{}
		for _, mm := range mirror[lvl-1] {
			want[mm.ids] = true
		}
		tr.Each(lvl, func(n *Node) bool {
			var ids [depth]int64
			for i, e := range n.PathEdges(nil) {
				ids[i] = int64(e.ID)
			}
			if !want[ids] {
				t.Errorf("level %d: unexpected surviving path %v", lvl, ids)
			}
			return true
		})
	}
}

func TestSpaceBytesTracksNodes(t *testing.T) {
	tr := New(2)
	if tr.SpaceBytes() != 0 {
		t.Error("empty tree should cost ~0")
	}
	a := tr.InsertEdge(1, nil, edge(1))
	tr.InsertEdge(2, a, edge(2))
	s2 := tr.SpaceBytes()
	if s2 <= 0 {
		t.Error("space must grow with nodes")
	}
	dead := tr.DeleteLevel(1, 1, nil, nil)
	tr.DeleteLevel(2, 1, dead, nil)
	if tr.SpaceBytes() >= s2 {
		t.Error("space must shrink after expiry")
	}
}
