// Package mstree implements the match-store tree (Section IV): a trie
// variant that stores the partial matches of an expansion list. Each node
// holds one data edge (sub-trees) or a pointer to a complete submatch in
// another tree (the global L₀ tree); the root-to-node path is a partial
// match. Nodes of the same depth are linked in a doubly linked list so a
// level can be enumerated without touching the rest of the tree, and every
// node keeps its parent pointer so a match can be reconstructed by
// backtracking (Section IV-B).
//
// Deletion supports the paper's two-phase "partial removal" (Fig. 14):
// unlink from the level list and detach from the parent's child list while
// keeping the upward parent pointer and payload intact, so concurrent
// earlier readers backtracking through the node stay safe (Theorem 6).
//
// Locking discipline (Section V-C): the tree holds no locks itself. Every
// structure owned by level ℓ — the level list, the level's edge/dep
// indexes, sibling links of level-ℓ nodes, and the firstChild pointers of
// level ℓ−1 nodes — is only touched by operations that hold the
// expansion-list item lock for level ℓ. Payload fields (Parent, Edge,
// Sub, Level) are immutable after insertion and may be read lock-free by
// backtracking readers; the dead flag is atomic because an earlier
// inserter at level ℓ+1 may inspect a parent while a later deleter at
// level ℓ marks it.
package mstree

import (
	"sync/atomic"

	"timingsubg/internal/graph"
)

// Node is one match-store tree node.
type Node struct {
	// Parent is the node one level up, or nil for level-1 nodes whose
	// logical parent is the root. For global-tree level-2 nodes the
	// parent belongs to another tree (L₀¹ aliases the first sub-list's
	// last item, Section V-A).
	Parent *Node

	// Edge is the data edge this node contributes (sub-trees).
	Edge graph.Edge

	// Sub points to a complete-submatch leaf in another tree when this
	// node belongs to a global (L₀) tree; nil in sub-trees.
	Sub *Node

	// Level is the 1-based depth of the node within its own tree.
	Level int

	// level list links (all nodes of the same depth).
	nextLvl, prevLvl *Node

	// child links: firstChild heads the list of children; siblings chain
	// through nextSib/prevSib.
	firstChild       *Node
	nextSib, prevSib *Node

	// join-index bookkeeping (levels with a key function only, see
	// Tree.SetLevelKey): joinKey is the node's key, computed once at
	// insertion; keySlot is its position inside the key's bucket so
	// removal is O(1) swap-delete. Both are owned by the node's level —
	// touched only under its item lock, like the other level structures.
	joinKey uint64
	keySlot int

	// edgeSlot / depSlot are the node's positions inside its edgeIdx /
	// depIdx bucket, so every death path can swap-delete the reference
	// and the indexes stay live-only (no dead entries for the batch
	// expiry sweep to leak). Owned by the node's level like keySlot.
	edgeSlot int
	depSlot  int

	// minTime is the death-time key: the minimum timestamp over the
	// edges of the full partial match this node represents — its own
	// path edges and, for global nodes, the path edges of every
	// submatch it transitively references. A window slide with
	// watermark w kills exactly the nodes with minTime < w, so a level
	// can be swept oldest-first from a heap ordered on it. Immutable
	// after insertion (derived from parent/sub minTime at attach).
	minTime graph.Timestamp

	// dead marks a partially removed node (Fig. 14): gone from its level
	// list and its parent's child list, but Parent/Edge/Sub remain valid
	// for in-flight earlier readers.
	dead atomic.Bool
}

// Dead reports whether the node has been (partially) removed.
func (n *Node) Dead() bool { return n.dead.Load() }

// MinTime returns the node's death-time key: the minimum timestamp over
// every data edge of the partial match the node represents.
func (n *Node) MinTime() graph.Timestamp { return n.minTime }

// PathEdges fills buf (reallocating if needed) with the data edges along
// n's path from the root, index 0 being the level-1 edge, and returns the
// slice. It is only meaningful for sub-tree nodes, whose parent chains
// stay within one tree.
func (n *Node) PathEdges(buf []graph.Edge) []graph.Edge {
	depth := n.Level
	if cap(buf) < depth {
		buf = make([]graph.Edge, depth)
	}
	buf = buf[:depth]
	for cur := n; cur != nil; cur = cur.Parent {
		buf[cur.Level-1] = cur.Edge
	}
	return buf
}
