package mstree

import (
	"testing"

	"timingsubg/internal/graph"
)

// BenchmarkInsert measures the O(1) insert claim (Section IV-B): cost
// must not grow with tree size.
func BenchmarkInsert(b *testing.B) {
	tr := New(3)
	parent := tr.InsertEdge(1, nil, edge(0))
	mid := tr.InsertEdge(2, parent, edge(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertEdge(3, mid, edge(int64(i+2)))
	}
}

// BenchmarkEach measures per-match read cost at a level (linear in
// matches enumerated, Section IV-B).
func BenchmarkEach(b *testing.B) {
	tr := New(2)
	p := tr.InsertEdge(1, nil, edge(0))
	for i := 0; i < 1024; i++ {
		tr.InsertEdge(2, p, edge(int64(i+1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Each(2, func(*Node) bool {
			n++
			return true
		})
		if n != 1024 {
			b.Fatal("tree drifted")
		}
	}
}

// BenchmarkPathEdges measures match materialization (backtracking).
func BenchmarkPathEdges(b *testing.B) {
	tr := New(8)
	var n *Node
	for lvl := 1; lvl <= 8; lvl++ {
		n = tr.InsertEdge(lvl, n, edge(int64(lvl)))
	}
	var buf []graph.Edge
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = n.PathEdges(buf)
	}
}

// BenchmarkDeleteExpired measures expiry cost: linear in deleted
// matches, independent of survivors (the claim behind Fig. 15's
// maintenance advantage).
func BenchmarkDeleteExpired(b *testing.B) {
	b.ReportAllocs()
	const victimID = 1 << 30
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := New(2)
		victim := tr.InsertEdge(1, nil, edge(victimID))
		for j := 0; j < 64; j++ {
			tr.InsertEdge(2, victim, edge(int64(j)))
		}
		// Survivors that expiry must not touch.
		keep := tr.InsertEdge(1, nil, edge(victimID+1))
		for j := 0; j < 4096; j++ {
			tr.InsertEdge(2, keep, edge(int64(1000+j)))
		}
		b.StartTimer()
		cas := tr.DeleteLevel(1, graph.EdgeID(victimID), nil, nil)
		dead := tr.DeleteLevel(2, graph.EdgeID(victimID), cas, nil)
		if len(cas) != 1 || len(dead) != 64 {
			b.Fatalf("expiry drifted: %d/%d", len(cas), len(dead))
		}
	}
}
