package mstree

import "timingsubg/internal/graph"

// Tree is a match-store tree over a fixed number of levels. A Tree backs
// one expansion list: level j stores the partial matches of the list's
// j-th item. The same structure backs both sub-trees (nodes carry data
// edges) and global L₀ trees (nodes carry Sub pointers into sub-trees).
//
// All per-level state is segregated so that concurrent transactions
// holding different item locks never touch shared memory (see the package
// comment for the full locking discipline).
type Tree struct {
	levels []level
}

type level struct {
	head, tail *Node
	count      int
	// edgeIdx maps a data edge ID to this level's nodes carrying that
	// edge. Dead nodes are skipped and entries dropped when the edge is
	// deleted, so the index is cleaned lazily as the window slides.
	edgeIdx map[graph.EdgeID][]*Node
	// depIdx maps a foreign submatch leaf to this level's nodes whose Sub
	// points at it (global trees only).
	depIdx map[*Node][]*Node
	// joinIdx buckets this level's live nodes by join key — the binding
	// of the level's connecting query vertex (sub-trees) or the
	// shared-binding fingerprint of the level's join (last items and
	// global levels). It makes the INSERT probe O(candidates) instead of
	// O(level). nil until SetLevelKey installs keyOf; owned by this
	// level's item lock like every other level structure, and cleaned as
	// nodes die (each casualty is swap-deleted from its bucket while the
	// deleter holds the level's exclusive lock).
	joinIdx map[uint64][]*Node
	// keyOf computes a node's join key from its immutable payload
	// (parent/sub chains); set once before any insert.
	keyOf func(*Node) uint64
	// expiry is a binary min-heap over the level's nodes ordered by
	// minTime (death-time key), pushed at attach. A window slide pops
	// everything below the watermark in one pass (DeleteExpiredBefore)
	// instead of walking the level once per expired edge. Nodes killed
	// by other paths stay in the heap and are skipped lazily on pop —
	// their minTime is below the very watermark that killed them, so
	// they surface (and are dropped) on the next sweep.
	expiry []*Node
	// heapDead counts dead nodes still resident in expiry. When they
	// outnumber the live ones the heap is compacted (heapCompact), so
	// per-edge deletion — which never pops — cannot pin dead nodes
	// indefinitely, and space drains fully once the window empties.
	heapDead int
}

// New returns a tree with the given number of levels (≥ 1).
func New(depth int) *Tree {
	t := &Tree{levels: make([]level, depth)}
	for i := range t.levels {
		t.levels[i].edgeIdx = make(map[graph.EdgeID][]*Node)
		t.levels[i].depIdx = make(map[*Node][]*Node)
	}
	return t
}

// Depth returns the number of levels.
func (t *Tree) Depth() int { return len(t.levels) }

// SetLevelKey installs the join-key function for level lvl and enables
// its join index. It must be called before any insert reaches the level
// (expansion lists configure their trees at construction). keyOf may
// only read the node's immutable payload (Parent/Edge/Sub/Level chains).
func (t *Tree) SetLevelKey(lvl int, keyOf func(*Node) uint64) {
	lv := &t.levels[lvl-1]
	lv.keyOf = keyOf
	lv.joinIdx = make(map[uint64][]*Node)
}

// indexJoinKey computes and records n's join key. Caller holds the
// level's item lock (inserts always do).
func (lv *level) indexJoinKey(n *Node) {
	if lv.keyOf == nil {
		return
	}
	k := lv.keyOf(n)
	n.joinKey = k
	n.keySlot = len(lv.joinIdx[k])
	lv.joinIdx[k] = append(lv.joinIdx[k], n)
}

// dropJoinKey swap-deletes n from its join-index bucket. Caller holds
// the level's exclusive item lock (all death paths run in DeleteLevel).
func (lv *level) dropJoinKey(n *Node) {
	if lv.keyOf == nil {
		return
	}
	b := lv.joinIdx[n.joinKey]
	last := len(b) - 1
	if n.keySlot > last || b[n.keySlot] != n {
		return // already dropped
	}
	b[n.keySlot] = b[last]
	b[n.keySlot].keySlot = n.keySlot
	b[last] = nil
	if last == 0 {
		delete(lv.joinIdx, n.joinKey)
	} else {
		lv.joinIdx[n.joinKey] = b[:last]
	}
}

// indexEdgeRef records n in its level's edge index, remembering the
// bucket slot so death paths can swap-delete the reference.
func (lv *level) indexEdgeRef(n *Node) {
	n.edgeSlot = len(lv.edgeIdx[n.Edge.ID])
	lv.edgeIdx[n.Edge.ID] = append(lv.edgeIdx[n.Edge.ID], n)
}

// dropEdgeRef swap-deletes n from its edge-index bucket, deleting the
// key when the bucket empties. Together with dropDepRef it keeps the
// per-level indexes live-only: every death path cleans its references
// eagerly, so a batch expiry sweep cannot strand dead entries behind a
// key that no later per-edge delete would ever visit.
func (lv *level) dropEdgeRef(n *Node) {
	b := lv.edgeIdx[n.Edge.ID]
	last := len(b) - 1
	if last < 0 || n.edgeSlot > last || b[n.edgeSlot] != n {
		return // already dropped
	}
	b[n.edgeSlot] = b[last]
	b[n.edgeSlot].edgeSlot = n.edgeSlot
	b[last] = nil
	if last == 0 {
		delete(lv.edgeIdx, n.Edge.ID)
	} else {
		lv.edgeIdx[n.Edge.ID] = b[:last]
	}
}

// indexDepRef records a global node in its level's dependency index
// (keyed by the foreign submatch leaf), remembering the bucket slot.
func (lv *level) indexDepRef(n *Node) {
	n.depSlot = len(lv.depIdx[n.Sub])
	lv.depIdx[n.Sub] = append(lv.depIdx[n.Sub], n)
}

// dropDepRef swap-deletes n from its dependency-index bucket; see
// dropEdgeRef for why death paths clean eagerly.
func (lv *level) dropDepRef(n *Node) {
	b := lv.depIdx[n.Sub]
	last := len(b) - 1
	if last < 0 || n.depSlot > last || b[n.depSlot] != n {
		return // already dropped
	}
	b[n.depSlot] = b[last]
	b[n.depSlot].depSlot = n.depSlot
	b[last] = nil
	if last == 0 {
		delete(lv.depIdx, n.Sub)
	} else {
		lv.depIdx[n.Sub] = b[:last]
	}
}

// Count returns the number of live nodes (= partial matches) at level
// lvl (1-based).
func (t *Tree) Count(lvl int) int { return t.levels[lvl-1].count }

// Nodes returns the total number of live nodes. It must only be called
// while the tree is quiescent (no in-flight transactions).
func (t *Tree) Nodes() int64 {
	var n int64
	for i := range t.levels {
		n += int64(t.levels[i].count)
	}
	return n
}

// InsertEdge adds a node carrying data edge e at level lvl under parent
// (nil for level 1).
//
// The parent may already be partially removed: that only happens when a
// LATER-timestamped deletion overtook this transaction between its read
// of level lvl−1 and this insert (wait-list ordering makes an earlier
// deletion impossible — it would have unlinked the parent before the
// read). In serial order the insert precedes that deletion, so the child
// must be created (and reported if it completes a match); the deleter's
// pending cascade at this level will then remove it via the parent's
// child list. This is exactly why partial removal (Fig. 14) keeps dead
// nodes intact.
func (t *Tree) InsertEdge(lvl int, parent *Node, e graph.Edge) *Node {
	n := &Node{Parent: parent, Edge: e, Level: lvl, minTime: e.Time}
	if parent != nil && parent.minTime < n.minTime {
		n.minTime = parent.minTime
	}
	t.attach(n, parent)
	lv := &t.levels[lvl-1]
	lv.indexEdgeRef(n)
	lv.indexJoinKey(n)
	return n
}

// InsertSub adds a global-tree node at level lvl pointing at submatch
// leaf sub, under parent (which belongs to another tree when lvl == 2,
// because the first global item aliases the first sub-list's last item).
// As with InsertEdge, a dead parent or sub means a later-timestamped
// deleter overtook this transaction; the insert proceeds and that
// deleter's pending cascade removes the node.
func (t *Tree) InsertSub(lvl int, parent, sub *Node) *Node {
	n := &Node{Parent: parent, Sub: sub, Level: lvl, minTime: sub.minTime}
	if parent != nil && parent.minTime < n.minTime {
		n.minTime = parent.minTime
	}
	t.attach(n, parent)
	lv := &t.levels[lvl-1]
	lv.indexDepRef(n)
	lv.indexJoinKey(n)
	return n
}

func (t *Tree) attach(n *Node, parent *Node) {
	lv := &t.levels[n.Level-1]
	if lv.tail == nil {
		lv.head, lv.tail = n, n
	} else {
		lv.tail.nextLvl = n
		n.prevLvl = lv.tail
		lv.tail = n
	}
	lv.count++
	lv.heapPush(n)
	if parent != nil {
		n.nextSib = parent.firstChild
		if parent.firstChild != nil {
			parent.firstChild.prevSib = n
		}
		parent.firstChild = n
	}
}

// heapPush sifts n up the level's expiry min-heap. Inserts arrive in
// stream order but a node under an old parent inherits the parent's
// minTime, so push order is not sorted and a real heap is needed.
func (lv *level) heapPush(n *Node) {
	lv.expiry = append(lv.expiry, n)
	i := len(lv.expiry) - 1
	for i > 0 {
		p := (i - 1) / 2
		if lv.expiry[p].minTime <= lv.expiry[i].minTime {
			break
		}
		lv.expiry[p], lv.expiry[i] = lv.expiry[i], lv.expiry[p]
		i = p
	}
}

// heapPop removes the heap minimum and sifts the replacement down.
func (lv *level) heapPop() {
	h := lv.expiry
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	lv.expiry = h[:last]
	siftDown(lv.expiry, 0)
}

// siftDown restores the heap property below index i.
func siftDown(h []*Node, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].minTime < h[s].minTime {
			s = l
		}
		if r < len(h) && h[r].minTime < h[s].minTime {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// heapCompact drops every dead resident from the expiry heap and
// re-heapifies in place. Called when dead residents outnumber live
// ones, so its O(n) cost amortizes to O(1) per death.
func (lv *level) heapCompact() {
	h := lv.expiry
	w := 0
	for _, n := range h {
		if !n.Dead() {
			h[w] = n
			w++
		}
	}
	for i := w; i < len(h); i++ {
		h[i] = nil
	}
	h = h[:w]
	for i := w/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	lv.expiry = h
	lv.heapDead = 0
}

// Each calls fn for every live node at level lvl until fn returns false.
func (t *Tree) Each(lvl int, fn func(*Node) bool) {
	for n := t.levels[lvl-1].head; n != nil; n = n.nextLvl {
		if !fn(n) {
			return
		}
	}
}

// EachCandidate calls fn for every live node at level lvl whose join key
// equals key, until fn returns false. On a level without a join index it
// degrades to Each — the caller's filter still sees every node, just
// without the index narrowing. Dead nodes are skipped: a later-
// timestamped deleter may have overtaken the read under Fig. 14's
// partial-removal protocol.
func (t *Tree) EachCandidate(lvl int, key uint64, fn func(*Node) bool) {
	lv := &t.levels[lvl-1]
	if lv.keyOf == nil {
		t.Each(lvl, fn)
		return
	}
	// Single-bucket fast path: when every live node shares one join key
	// (selectivity ≈ 1, NetworkFlow-shaped bindings) the lone bucket IS
	// the level, and the map probe's hashing is pure overhead — serve
	// the contiguous level list instead. See DESIGN.md §15 for the
	// crossover this pins (BENCH_core.json had indexed at 0.95× scan on
	// NetworkFlow before this path).
	if len(lv.joinIdx) == 1 {
		if lv.head != nil && lv.head.joinKey != key {
			return // the one key present is not the probe's key
		}
		t.Each(lvl, fn)
		return
	}
	for _, n := range lv.joinIdx[key] {
		if n.Dead() {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// DeleteLevel partially removes, at level lvl, every node that carries
// data edge edgeID (pass a negative ID to skip), every child of the nodes
// in parentCasualties, and every node whose Sub is in deadSubs. It
// returns the nodes removed at this level so the caller can cascade to
// the next level. This mirrors Algorithm 2's level-by-level scan with
// the Fig. 14 partial-removal protocol.
func (t *Tree) DeleteLevel(lvl int, edgeID graph.EdgeID, parentCasualties, deadSubs []*Node) []*Node {
	lv := &t.levels[lvl-1]
	var dead []*Node
	// The indexes are live-only (every death path drops its references),
	// so draining a bucket is: kill its last element until the key is
	// gone. partialRemove's swap-delete removes exactly that element, so
	// the loop makes progress without copying the bucket.
	if edgeID >= 0 {
		for {
			b := lv.edgeIdx[edgeID]
			if len(b) == 0 {
				break
			}
			n := b[len(b)-1]
			t.partialRemove(n)
			dead = append(dead, n)
		}
	}
	for _, p := range parentCasualties {
		for c := p.firstChild; c != nil; c = c.nextSib {
			if !c.Dead() {
				t.partialRemoveKeepSib(c)
				dead = append(dead, c)
			}
		}
	}
	for _, s := range deadSubs {
		for {
			b := lv.depIdx[s]
			if len(b) == 0 {
				break
			}
			n := b[len(b)-1]
			t.partialRemove(n)
			dead = append(dead, n)
		}
	}
	// Per-edge deletion never pops the expiry heap, so its dead
	// residents are pruned here once they outnumber the live ones.
	if lv.heapDead*2 > len(lv.expiry) {
		lv.heapCompact()
	}
	return dead
}

// DeleteExpiredBefore partially removes, at level lvl, every live node
// whose death-time key (minTime) is below cut, in one pass over the
// level's expiry heap, and returns the number removed. Because a
// child's minTime never exceeds its parent's and a global node's never
// exceeds its submatch leaf's, a watermark that kills a node kills its
// whole downstream cone — so each level can be swept independently
// with the same cut and no casualty propagation, which is what lets a
// window slide take each item lock once instead of once per expired
// edge. Nothing is allocated: casualties are counted, not collected.
func (t *Tree) DeleteExpiredBefore(lvl int, cut graph.Timestamp) int {
	lv := &t.levels[lvl-1]
	removed := 0
	for len(lv.expiry) > 0 {
		n := lv.expiry[0]
		if n.Dead() {
			lv.heapPop() // lazily discard nodes killed by other paths
			lv.heapDead--
			continue
		}
		if n.minTime >= cut {
			break
		}
		lv.heapPop()
		t.partialRemove(n)
		lv.heapDead-- // partialRemove counted n, but it just left the heap
		removed++
	}
	return removed
}

// partialRemove unlinks n from its level list and its parent's child
// list, and marks it dead. Parent pointer and payload stay intact
// (Fig. 14).
func (t *Tree) partialRemove(n *Node) {
	t.unlinkSiblings(n)
	t.partialRemoveKeepSib(n)
}

// partialRemoveKeepSib removes n from the level list and marks it dead,
// but leaves the sibling chain intact — used while iterating a dead
// parent's child list, which must stay traversable mid-iteration. The
// dead parent's child list is consumed exactly once, so the stale links
// are never observed again.
func (t *Tree) partialRemoveKeepSib(n *Node) {
	lv := &t.levels[n.Level-1]
	if n.prevLvl != nil {
		n.prevLvl.nextLvl = n.nextLvl
	} else if lv.head == n {
		lv.head = n.nextLvl
	}
	if n.nextLvl != nil {
		n.nextLvl.prevLvl = n.prevLvl
	} else if lv.tail == n {
		lv.tail = n.prevLvl
	}
	n.nextLvl, n.prevLvl = nil, nil
	lv.dropJoinKey(n)
	if n.Sub != nil {
		lv.dropDepRef(n)
	} else {
		lv.dropEdgeRef(n)
	}
	n.dead.Store(true)
	lv.count--
	lv.heapDead++
}

func (t *Tree) unlinkSiblings(n *Node) {
	if n.prevSib != nil {
		n.prevSib.nextSib = n.nextSib
	} else if n.Parent != nil && n.Parent.firstChild == n {
		n.Parent.firstChild = n.nextSib
	}
	if n.nextSib != nil {
		n.nextSib.prevSib = n.prevSib
	}
}

// SpaceBytes estimates resident size: nodes plus index overhead. Like
// Nodes, it must be called while quiescent.
func (t *Tree) SpaceBytes() int64 {
	const nodeSz = 168 // Node struct incl. embedded Edge, slots, minTime
	var b int64
	for i := range t.levels {
		b += int64(t.levels[i].count) * nodeSz
		b += int64(len(t.levels[i].edgeIdx)) * 48
		b += int64(len(t.levels[i].depIdx)) * 48
		b += int64(len(t.levels[i].joinIdx)) * 48
		b += int64(len(t.levels[i].expiry)) * 8
	}
	return b
}
