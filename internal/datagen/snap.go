package datagen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"timingsubg/internal/graph"
)

// ReadSNAP parses the SNAP temporal-edge format used by the paper's
// wiki-talk dataset (http://snap.stanford.edu/data/wiki-talk-temporal):
// whitespace-separated "src dst unixtime" lines. Vertex labels follow
// the paper's scheme — the first character of the user name — which for
// numeric SNAP IDs degrades to the first digit; pass labelOf to override
// (nil uses the default).
//
// SNAP timestamps repeat and are not always sorted; the loader sorts by
// (time, line) and then spaces equal timestamps one tick apart so the
// stream satisfies Definition 1's strictly increasing order. Edge IDs
// are assigned sequentially, matching graph.Stream.
func ReadSNAP(r io.Reader, labels *graph.Labels, labelOf func(id int64) string) ([]graph.Edge, error) {
	if labelOf == nil {
		labelOf = func(id int64) string {
			s := strconv.FormatInt(id, 10)
			return s[:1]
		}
	}
	type raw struct {
		src, dst, t int64
		line        int
	}
	var rows []raw
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("datagen: snap line %d: want 'src dst time', got %q", line, text)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: snap line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: snap line %d: bad dst: %v", line, err)
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: snap line %d: bad time: %v", line, err)
		}
		rows = append(rows, raw{src: src, dst: dst, t: t, line: line})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t < rows[j].t
		}
		return rows[i].line < rows[j].line
	})
	out := make([]graph.Edge, len(rows))
	var lastT graph.Timestamp = -1 << 62
	for i, r := range rows {
		t := graph.Timestamp(r.t)
		if t <= lastT {
			t = lastT + 1
		}
		lastT = t
		out[i] = graph.Edge{
			ID:   graph.EdgeID(i),
			From: graph.VertexID(r.src), To: graph.VertexID(r.dst),
			FromLabel: labels.Intern(labelOf(r.src)),
			ToLabel:   labels.Intern(labelOf(r.dst)),
			Time:      t,
		}
	}
	return out, nil
}
