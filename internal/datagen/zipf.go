// Package datagen synthesizes the paper's three workloads (Section
// VII-A) as deterministic streaming-graph generators: NetworkFlow (a
// CAIDA-shaped IP traffic stream), WikiTalk (a temporal talk-page
// network) and SocialStream (an LSBench-shaped typed social stream).
// DESIGN.md §4 documents how each substitution preserves the original
// dataset's behaviour-driving properties.
package datagen

import "math/rand"

// Zipf draws integers in [0, n) with a Zipf(s) distribution. It is used
// where heavy single-key skew is the point (the NetworkFlow destination
// port distribution).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (> 1).
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next draws the next value.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Skewed draws integers in [0, n) from a hot-pool mixture: a fraction
// hotShare of draws lands uniformly in the first hotFrac·n values, the
// rest uniformly in all of [0, n).
//
// This is the entity-activity model: the original datasets are skewed in
// aggregate (a small population produces much of the traffic) but no
// single vertex owns a constant fraction of a multi-million-vertex
// stream. A pure Zipf sampler gives its top rank ~10% of all draws at
// any population size, which at our laptop-scale windows would make one
// hub vertex adjacent to a constant fraction of the window and blow
// empty-timing-order queries out of the paper's selectivity range
// (Fig. 25 reports 10¹–10³ answers). The mixture keeps the aggregate
// skew while bounding any single vertex's share at hotShare/(hotFrac·n).
type Skewed struct {
	rng      *rand.Rand
	n        int
	hot      int
	hotShare float64
}

// NewSkewed returns a hot-pool sampler over [0, n): hotShare of the
// draws concentrate on the first max(1, hotFrac·n) values.
func NewSkewed(rng *rand.Rand, n int, hotFrac, hotShare float64) *Skewed {
	hot := int(hotFrac * float64(n))
	if hot < 1 {
		hot = 1
	}
	return &Skewed{rng: rng, n: n, hot: hot, hotShare: hotShare}
}

// Next draws the next value.
func (s *Skewed) Next() int {
	if s.rng.Float64() < s.hotShare {
		return s.rng.Intn(s.hot)
	}
	return s.rng.Intn(s.n)
}
