package datagen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"timingsubg/internal/graph"
)

// WriteEdges writes a stream as CSV lines:
//
//	from,to,fromLabel,toLabel,edgeLabel,time
//
// Labels are written as strings so a stream file is self-contained.
func WriteEdges(w io.Writer, labels *graph.Labels, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		_, err := fmt.Fprintf(bw, "%d,%d,%s,%s,%s,%d\n",
			e.From, e.To,
			labels.String(e.FromLabel), labels.String(e.ToLabel),
			labels.String(e.EdgeLabel), e.Time)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdges parses the CSV format written by WriteEdges, interning labels
// into the given table.
func ReadEdges(r io.Reader, labels *graph.Labels) ([]graph.Edge, error) {
	var out []graph.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 6 {
			return nil, fmt.Errorf("datagen: line %d: want 6 fields, got %d", line, len(parts))
		}
		from, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: line %d: bad from: %v", line, err)
		}
		to, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: line %d: bad to: %v", line, err)
		}
		t, err := strconv.ParseInt(parts[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: line %d: bad time: %v", line, err)
		}
		out = append(out, graph.Edge{
			From: graph.VertexID(from), To: graph.VertexID(to),
			FromLabel: labels.Intern(parts[2]), ToLabel: labels.Intern(parts[3]),
			EdgeLabel: labels.Intern(parts[4]), Time: graph.Timestamp(t),
		})
	}
	return out, sc.Err()
}
