package datagen

import (
	"strings"
	"testing"

	"timingsubg/internal/graph"
)

// FuzzReadEdges hardens the CSV stream parser: arbitrary input must
// parse or error, never panic, and parsed edges must carry the fields
// the line stated.
func FuzzReadEdges(f *testing.F) {
	f.Add("1,2,a,b,l,3\n")
	f.Add("# c\n\n1,2,a,b,l,3\n9,8,x,y,z,4\n")
	f.Add("1,2,a,b,l\n")
	f.Add(",,,,,\n")
	f.Fuzz(func(t *testing.T, input string) {
		labels := graph.NewLabels()
		edges, err := ReadEdges(strings.NewReader(input), labels)
		if err != nil {
			return
		}
		for _, e := range edges {
			_ = labels.String(e.FromLabel)
			_ = labels.String(e.ToLabel)
		}
	})
}

// FuzzReadSNAP hardens the SNAP loader and its strictly-increasing
// timestamp repair.
func FuzzReadSNAP(f *testing.F) {
	f.Add("1 2 3\n")
	f.Add("1 2 3\n4 5 3\n6 7 1\n")
	f.Add("# x\n% y\n1 2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		labels := graph.NewLabels()
		edges, err := ReadSNAP(strings.NewReader(input), labels, nil)
		if err != nil {
			return
		}
		for i := 1; i < len(edges); i++ {
			if edges[i].Time <= edges[i-1].Time {
				t.Fatal("SNAP loader must emit strictly increasing timestamps")
			}
		}
	})
}
