package datagen

import (
	"bytes"
	"strings"
	"testing"

	"timingsubg/internal/graph"
)

func TestGeneratorsBasics(t *testing.T) {
	for _, ds := range Datasets() {
		ds := ds
		t.Run(ds.String(), func(t *testing.T) {
			labels := graph.NewLabels()
			gen := New(ds, labels, Config{Vertices: 100, Seed: 1})
			edges := gen.Take(2000)
			if len(edges) != 2000 {
				t.Fatalf("want 2000 edges, got %d", len(edges))
			}
			for i, e := range edges {
				if e.ID != graph.EdgeID(i) {
					t.Fatalf("edge %d: want sequential ID, got %d", i, e.ID)
				}
				if i > 0 && e.Time <= edges[i-1].Time {
					t.Fatalf("edge %d: timestamps must strictly increase", i)
				}
				if e.From == e.To && ds != SocialStream {
					t.Fatalf("edge %d: generators avoid self loops", i)
				}
				if e.FromLabel == 0 || e.ToLabel == 0 {
					t.Fatalf("edge %d: vertices must be labelled", i)
				}
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, ds := range Datasets() {
		a := New(ds, graph.NewLabels(), Config{Vertices: 50, Seed: 7}).Take(500)
		b := New(ds, graph.NewLabels(), Config{Vertices: 50, Seed: 7}).Take(500)
		for i := range a {
			if a[i].From != b[i].From || a[i].To != b[i].To || a[i].Time != b[i].Time {
				t.Fatalf("%s: same seed must give identical streams (edge %d)", ds, i)
			}
		}
		c := New(ds, graph.NewLabels(), Config{Vertices: 50, Seed: 8}).Take(500)
		same := true
		for i := range a {
			if a[i].From != c[i].From || a[i].To != c[i].To {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds should differ", ds)
		}
	}
}

// TestNetworkFlowPortSkew checks the CAIDA-shaped property the paper
// reports: a handful of hot ports dominate the stream.
func TestNetworkFlowPortSkew(t *testing.T) {
	labels := graph.NewLabels()
	gen := New(NetworkFlow, labels, Config{Vertices: 200, Seed: 3})
	edges := gen.Take(10000)
	freq := map[graph.Label]int{}
	for _, e := range edges {
		freq[e.EdgeLabel]++
	}
	if len(freq) < 20 {
		t.Fatalf("want a long tail of edge terms, got %d", len(freq))
	}
	// Top 18 terms (6 hot ports × 3 protocols) must cover ≥ 40%.
	var counts []int
	for _, c := range freq {
		counts = append(counts, c)
	}
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	top := 0
	for i := 0; i < 18 && i < len(counts); i++ {
		top += counts[i]
	}
	if float64(top) < 0.4*float64(len(edges)) {
		t.Errorf("hot terms cover only %d/%d records; want the paper's skew", top, len(edges))
	}
}

// TestWikiTalkLabels verifies the 26-letter labelling scheme.
func TestWikiTalkLabels(t *testing.T) {
	labels := graph.NewLabels()
	gen := New(WikiTalk, labels, Config{Vertices: 100, Seed: 2})
	edges := gen.Take(1000)
	seen := map[graph.Label]bool{}
	for _, e := range edges {
		seen[e.FromLabel] = true
		seen[e.ToLabel] = true
	}
	if len(seen) > 26 {
		t.Errorf("wiki-talk must use at most 26 vertex labels, got %d", len(seen))
	}
	if len(seen) < 10 {
		t.Errorf("expected a spread of letters, got %d", len(seen))
	}
}

// TestSocialStreamTypes verifies typed endpoints and predicates.
func TestSocialStreamTypes(t *testing.T) {
	labels := graph.NewLabels()
	gen := New(SocialStream, labels, Config{Vertices: 100, Seed: 4})
	edges := gen.Take(3000)
	userL, _ := labels.Lookup("user")
	postL, _ := labels.Lookup("post")
	creates, _ := labels.Lookup("creates")
	follows, _ := labels.Lookup("follows")
	var sawCreate, sawFollow bool
	for _, e := range edges {
		if e.EdgeLabel == 0 {
			t.Fatal("social edges must carry predicates")
		}
		if e.EdgeLabel == creates {
			sawCreate = true
			if e.FromLabel != userL || e.ToLabel != postL {
				t.Fatal("creates must connect user→post")
			}
		}
		if e.EdgeLabel == follows {
			sawFollow = true
			if e.FromLabel != userL || e.ToLabel != userL {
				t.Fatal("follows must connect user→user")
			}
		}
	}
	if !sawCreate || !sawFollow {
		t.Error("expected creates and follows predicates in 3000 edges")
	}
}

func TestReadWriteEdgesRoundTrip(t *testing.T) {
	labels := graph.NewLabels()
	gen := New(SocialStream, labels, Config{Vertices: 30, Seed: 5})
	edges := gen.Take(100)

	var buf bytes.Buffer
	if err := WriteEdges(&buf, labels, edges); err != nil {
		t.Fatal(err)
	}
	labels2 := graph.NewLabels()
	got, err := ReadEdges(&buf, labels2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("want %d edges, got %d", len(edges), len(got))
	}
	for i := range got {
		if got[i].From != edges[i].From || got[i].To != edges[i].To || got[i].Time != edges[i].Time {
			t.Fatalf("edge %d drifted through the round trip", i)
		}
		// Labels re-intern to possibly different ids but same strings.
		if labels2.String(got[i].FromLabel) != labels.String(edges[i].FromLabel) {
			t.Fatalf("edge %d: from-label string changed", i)
		}
		if labels2.String(got[i].EdgeLabel) != labels.String(edges[i].EdgeLabel) {
			t.Fatalf("edge %d: edge-label string changed", i)
		}
	}
}

func TestReadEdgesErrors(t *testing.T) {
	labels := graph.NewLabels()
	cases := []string{
		"1,2,a,b,x",            // 5 fields
		"x,2,a,b,l,3",          // bad from
		"1,y,a,b,l,3",          // bad to
		"1,2,a,b,l,notatime\n", // bad time
	}
	for _, c := range cases {
		if _, err := ReadEdges(strings.NewReader(c), labels); err == nil {
			t.Errorf("ReadEdges(%q) should fail", c)
		}
	}
	// Comments and blank lines are fine.
	got, err := ReadEdges(strings.NewReader("# header\n\n1,2,a,b,l,3\n"), labels)
	if err != nil || len(got) != 1 {
		t.Errorf("comments/blanks must be skipped: %v %d", err, len(got))
	}
}

func TestZipfSkew(t *testing.T) {
	labels := graph.NewLabels()
	_ = labels
	gen := New(WikiTalk, graph.NewLabels(), Config{Vertices: 1000, Seed: 6})
	edges := gen.Take(5000)
	freq := map[graph.VertexID]int{}
	for _, e := range edges {
		freq[e.From]++
	}
	// The hot pool (5% of users) must account for a large share of the
	// activity, but no single user may dominate (see datagen.Skewed).
	hot := 0
	var maxSingle int
	for v, c := range freq {
		if int(v) < 50 { // hot pool of 1000*0.05
			hot += c
		}
		if c > maxSingle {
			maxSingle = c
		}
	}
	if float64(hot) < 0.4*float64(len(edges)) {
		t.Errorf("hot pool should draw ≥40%% of activity, got %d/%d", hot, len(edges))
	}
	if float64(maxSingle) > 0.05*float64(len(edges)) {
		t.Errorf("no single user should dominate, top has %d/%d", maxSingle, len(edges))
	}
}

func TestReadSNAP(t *testing.T) {
	labels := graph.NewLabels()
	in := `# comment
11 22 1000
33 44 1000
55 66 999
`
	edges, err := ReadSNAP(strings.NewReader(in), labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("want 3 edges, got %d", len(edges))
	}
	// Sorted by time, equal stamps spaced apart, strictly increasing.
	if edges[0].From != 55 {
		t.Errorf("earliest edge first, got %+v", edges[0])
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Time <= edges[i-1].Time {
			t.Fatalf("timestamps must strictly increase: %v then %v", edges[i-1].Time, edges[i].Time)
		}
	}
	// Default labels: first digit of the numeric ID.
	if labels.String(edges[0].FromLabel) != "5" || labels.String(edges[0].ToLabel) != "6" {
		t.Errorf("default SNAP labels wrong: %s %s",
			labels.String(edges[0].FromLabel), labels.String(edges[0].ToLabel))
	}
	// Custom labeller.
	edges, err = ReadSNAP(strings.NewReader("7 8 5\n"), labels, func(id int64) string { return "user" })
	if err != nil || labels.String(edges[0].FromLabel) != "user" {
		t.Error("custom labeller must apply")
	}
	// Errors.
	for _, bad := range []string{"1 2\n", "x 2 3\n", "1 y 3\n", "1 2 z\n"} {
		if _, err := ReadSNAP(strings.NewReader(bad), labels, nil); err == nil {
			t.Errorf("ReadSNAP(%q) should fail", bad)
		}
	}
}
