package datagen

import (
	"fmt"
	"math/rand"

	"timingsubg/internal/graph"
)

// Dataset names a synthetic workload.
type Dataset int

// The paper's three evaluation datasets (Section VII-A).
const (
	// NetworkFlow mirrors the CAIDA traffic shape: one vertex label
	// ("IP"), edge labels ⟨*, dstPort, proto⟩ with a top-heavy port
	// distribution (the paper reports the top 0.01% of ports covering
	// >50% of records).
	NetworkFlow Dataset = iota
	// WikiTalk mirrors the SNAP wiki-talk temporal network: 26 vertex
	// labels (first character of the user name), Zipf user activity.
	WikiTalk
	// SocialStream mirrors LSBench: typed entities with predicate edge
	// labels (posts/likes/follows/...).
	SocialStream
)

// String names the dataset as in the paper's figures.
func (d Dataset) String() string {
	switch d {
	case NetworkFlow:
		return "NetworkFlow"
	case WikiTalk:
		return "Wiki-talk"
	case SocialStream:
		return "SocialStream"
	}
	return "dataset?"
}

// Datasets lists all three workloads in figure order.
func Datasets() []Dataset { return []Dataset{NetworkFlow, WikiTalk, SocialStream} }

// Config tunes a generator.
type Config struct {
	// Vertices is the entity population size.
	Vertices int
	// Seed drives all randomness; equal seeds give identical streams.
	Seed int64
}

// Generator produces a deterministic edge stream for a dataset. Edges
// arrive one timestamp apart, so a window of w units holds the w most
// recent edges — matching the paper's window unit, the average
// inter-arrival gap (Section VII-C).
type Generator struct {
	ds      Dataset
	rng     *rand.Rand
	labels  *graph.Labels
	nextT   graph.Timestamp
	cfg     Config
	nextFn  func() graph.Edge
	ipLabel graph.Label

	// NetworkFlow state.
	hosts    *Skewed
	hotPorts []graph.Label
	allPorts []graph.Label
	protos   []graph.Label

	// WikiTalk state.
	users   *Skewed
	letters []graph.Label

	// SocialStream state.
	socialUsers *Skewed
	predicates  []graph.Label
	typeLabels  map[string]graph.Label
	postSeq     int
}

// New returns a generator for ds. The Labels table is shared with query
// generation so labels intern consistently.
func New(ds Dataset, labels *graph.Labels, cfg Config) *Generator {
	if cfg.Vertices <= 0 {
		cfg.Vertices = 2000
	}
	g := &Generator{
		ds:     ds,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		labels: labels,
		cfg:    cfg,
	}
	switch ds {
	case NetworkFlow:
		g.initNetworkFlow()
	case WikiTalk:
		g.initWikiTalk()
	case SocialStream:
		g.initSocialStream()
	}
	return g
}

// Labels returns the intern table in use.
func (g *Generator) Labels() *graph.Labels { return g.labels }

// Next produces the next stream edge. Edges carry sequential IDs and
// timestamps one unit apart; graph.Stream assigns the same IDs on Push,
// so query-generation witnesses align with streamed edges.
func (g *Generator) Next() graph.Edge {
	e := g.nextFn()
	e.ID = graph.EdgeID(g.nextT)
	g.nextT++
	e.Time = g.nextT
	return e
}

// Take produces the next n stream edges.
func (g *Generator) Take(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// --- NetworkFlow ---------------------------------------------------

func (g *Generator) initNetworkFlow() {
	g.ipLabel = g.labels.Intern("IP")
	g.hosts = NewSkewed(g.rng, g.cfg.Vertices, 0.05, 0.5)
	// 6 hot destination ports cover ~50% of records; a long tail covers
	// the rest (Section VII-A's CAIDA port skew).
	hot := []string{"80", "443", "53", "22", "25", "8080"}
	for _, p := range hot {
		g.hotPorts = append(g.hotPorts, g.labels.Intern("*:"+p))
	}
	for p := 0; p < 200; p++ {
		g.allPorts = append(g.allPorts, g.labels.Intern(fmt.Sprintf("*:%d", 10000+p)))
	}
	for _, pr := range []string{"tcp", "udp", "icmp"} {
		g.protos = append(g.protos, g.labels.Intern("proto:"+pr))
	}
	g.nextFn = g.nextFlow
}

func (g *Generator) nextFlow() graph.Edge {
	src := graph.VertexID(g.hosts.Next())
	dst := graph.VertexID(g.hosts.Next())
	for dst == src {
		dst = graph.VertexID(g.hosts.Next())
	}
	var port graph.Label
	if g.rng.Float64() < 0.5 {
		port = g.hotPorts[g.rng.Intn(len(g.hotPorts))]
	} else {
		port = g.allPorts[g.rng.Intn(len(g.allPorts))]
	}
	proto := g.protos[g.rng.Intn(len(g.protos))]
	// The edge label combines ⟨*, dstPort, proto⟩ as one interned term.
	lbl := g.labels.Intern(g.labels.String(port) + "/" + g.labels.String(proto))
	return graph.Edge{
		From: src, To: dst,
		FromLabel: g.ipLabel, ToLabel: g.ipLabel,
		EdgeLabel: lbl,
	}
}

// --- WikiTalk --------------------------------------------------------

func (g *Generator) initWikiTalk() {
	g.users = NewSkewed(g.rng, g.cfg.Vertices, 0.05, 0.5)
	for c := 'a'; c <= 'z'; c++ {
		g.letters = append(g.letters, g.labels.Intern(string(c)))
	}
	g.nextFn = g.nextTalk
}

// userLabel derives a stable "first character of the user name" label.
func (g *Generator) userLabel(u graph.VertexID) graph.Label {
	return g.letters[int(u)%len(g.letters)]
}

func (g *Generator) nextTalk() graph.Edge {
	a := graph.VertexID(g.users.Next())
	b := graph.VertexID(g.users.Next())
	for b == a {
		b = graph.VertexID(g.users.Next())
	}
	return graph.Edge{
		From: a, To: b,
		FromLabel: g.userLabel(a), ToLabel: g.userLabel(b),
	}
}

// --- SocialStream ----------------------------------------------------

func (g *Generator) initSocialStream() {
	g.socialUsers = NewSkewed(g.rng, g.cfg.Vertices, 0.05, 0.5)
	g.typeLabels = map[string]graph.Label{
		"user":  g.labels.Intern("user"),
		"post":  g.labels.Intern("post"),
		"photo": g.labels.Intern("photo"),
		"gps":   g.labels.Intern("gps"),
		"tag":   g.labels.Intern("tag"),
	}
	for _, p := range []string{"creates", "likes", "replies", "follows", "uploads", "taggedWith", "locatedAt", "tracks"} {
		g.predicates = append(g.predicates, g.labels.Intern(p))
	}
	g.nextFn = g.nextSocial
}

// Entity ID spaces are partitioned so vertex IDs never collide across
// types: users occupy [0, V), posts [V, 2V+...), etc.
func (g *Generator) nextSocial() graph.Edge {
	u := graph.VertexID(g.socialUsers.Next())
	pick := g.rng.Float64()
	V := graph.VertexID(g.cfg.Vertices)
	pred := func(name string) graph.Label {
		for i, p := range []string{"creates", "likes", "replies", "follows", "uploads", "taggedWith", "locatedAt", "tracks"} {
			if p == name {
				return g.predicates[i]
			}
		}
		return g.predicates[0]
	}
	switch {
	case pick < 0.30: // user creates post
		g.postSeq++
		post := V + graph.VertexID(g.postSeq)
		return graph.Edge{From: u, To: post,
			FromLabel: g.typeLabels["user"], ToLabel: g.typeLabels["post"],
			EdgeLabel: pred("creates")}
	case pick < 0.50: // user likes an existing (recent) post
		post := V + graph.VertexID(1+g.rng.Intn(maxInt(1, g.postSeq)))
		return graph.Edge{From: u, To: post,
			FromLabel: g.typeLabels["user"], ToLabel: g.typeLabels["post"],
			EdgeLabel: pred("likes")}
	case pick < 0.62: // user replies to post
		post := V + graph.VertexID(1+g.rng.Intn(maxInt(1, g.postSeq)))
		return graph.Edge{From: u, To: post,
			FromLabel: g.typeLabels["user"], ToLabel: g.typeLabels["post"],
			EdgeLabel: pred("replies")}
	case pick < 0.80: // user follows user
		v := graph.VertexID(g.socialUsers.Next())
		for v == u {
			v = graph.VertexID(g.socialUsers.Next())
		}
		return graph.Edge{From: u, To: v,
			FromLabel: g.typeLabels["user"], ToLabel: g.typeLabels["user"],
			EdgeLabel: pred("follows")}
	case pick < 0.88: // user uploads photo
		photo := 10*V + graph.VertexID(g.rng.Intn(g.cfg.Vertices))
		return graph.Edge{From: u, To: photo,
			FromLabel: g.typeLabels["user"], ToLabel: g.typeLabels["photo"],
			EdgeLabel: pred("uploads")}
	case pick < 0.94: // photo tagged with tag
		photo := 10*V + graph.VertexID(g.rng.Intn(g.cfg.Vertices))
		tag := 20*V + graph.VertexID(g.rng.Intn(200))
		return graph.Edge{From: photo, To: tag,
			FromLabel: g.typeLabels["photo"], ToLabel: g.typeLabels["tag"],
			EdgeLabel: pred("taggedWith")}
	default: // gps tracks user
		gps := 30*V + graph.VertexID(g.rng.Intn(g.cfg.Vertices))
		return graph.Edge{From: gps, To: u,
			FromLabel: g.typeLabels["gps"], ToLabel: g.typeLabels["user"],
			EdgeLabel: pred("tracks")}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
