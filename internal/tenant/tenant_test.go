package tenant

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestValidateName(t *testing.T) {
	for _, good := range []string{"a", "acme", "acme-prod", "a.b_c-9", "x0"} {
		if err := ValidateName(good); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{
		"", ".", "..", ".hidden", "UPPER", "a:b", "a/b", `a\b`, "a b",
		string(make([]byte, 65)),
	} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", bad)
		}
	}
}

func TestRegistryCreateResolve(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create(Spec{
		Name: "acme",
		Keys: []KeySpec{{Key: "k-write"}, {Key: "k-read", Role: RoleRead}},
	}); err != nil {
		t.Fatalf("Create: %v", err)
	}

	tn, role, ok := r.Resolve("k-write")
	if !ok || tn.Name() != "acme" || role != RoleWrite {
		t.Fatalf("Resolve(k-write) = %v, %q, %v", tn.Name(), role, ok)
	}
	tn, role, ok = r.Resolve("k-read")
	if !ok || tn.Name() != "acme" || role != RoleRead {
		t.Fatalf("Resolve(k-read) = %v, %q, %v", tn.Name(), role, ok)
	}
	if _, _, ok := r.Resolve("nope"); ok {
		t.Fatal("Resolve(nope) succeeded")
	}
	if _, _, ok := r.Resolve(""); ok {
		t.Fatal("Resolve(\"\") succeeded")
	}

	// Duplicate tenant and duplicate key are both rejected.
	if _, err := r.Create(Spec{Name: "acme"}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, err := r.Create(Spec{Name: "other", Keys: []KeySpec{{Key: "k-write"}}}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	// A failed Create must not leave the tenant behind.
	if _, ok := r.Get("other"); ok {
		t.Fatal("failed Create left tenant registered")
	}
	if _, err := r.Create(Spec{Name: "bad", Keys: []KeySpec{{Key: "k", Role: "admin"}}}); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestRegistryAnonymous(t *testing.T) {
	r := NewRegistry()
	if r.Anonymous() != nil {
		t.Fatal("empty registry has an anonymous tenant")
	}
	if err := r.SetAnonymous("ghost"); err == nil {
		t.Fatal("SetAnonymous(ghost) succeeded")
	}
	if _, err := r.Create(Spec{Name: "default"}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := r.SetAnonymous("default"); err != nil {
		t.Fatalf("SetAnonymous: %v", err)
	}
	if got := r.Anonymous().Name(); got != "default" {
		t.Fatalf("Anonymous() = %q", got)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{"tenants":[
		{"name":"acme","keys":[{"key":"ka"}],"limits":{"edges_per_sec":100,"max_queries":2}},
		{"name":"beta","keys":[{"key":"kb","role":"read"}]}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "acme" || got[1] != "beta" {
		t.Fatalf("Names() = %v", got)
	}
	tn, _ := r.Get("acme")
	if tn.Limits().EdgesPerSec != 100 || tn.Limits().MaxQueries != 2 {
		t.Fatalf("acme limits = %+v", tn.Limits())
	}

	// Unknown fields are a config error, not silently dropped.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenant":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFile(bad); err == nil {
		t.Fatal("LoadFile accepted unknown field")
	}
}

func TestQuotas(t *testing.T) {
	tn := newTenant("q", Limits{MaxQueries: 2, MaxSubscriptions: 1})
	if !tn.AcquireQuery() || !tn.AcquireQuery() {
		t.Fatal("quota rejected within limit")
	}
	if tn.AcquireQuery() {
		t.Fatal("quota admitted past MaxQueries")
	}
	tn.ReleaseQuery()
	if !tn.AcquireQuery() {
		t.Fatal("released slot not reusable")
	}
	if !tn.AcquireSubscription() {
		t.Fatal("subscription quota rejected within limit")
	}
	if tn.AcquireSubscription() {
		t.Fatal("subscription quota admitted past limit")
	}
	u := tn.Usage()
	if u.Queries != 2 || u.Subscriptions != 1 {
		t.Fatalf("Usage = %+v", u)
	}
}

func TestNilTenantAdmitsEverything(t *testing.T) {
	var tn *Tenant
	if ok, _ := tn.AdmitBatch(); !ok {
		t.Fatal("nil tenant rejected batch")
	}
	if ok, _ := tn.AdmitEdge(); !ok {
		t.Fatal("nil tenant rejected edge")
	}
	if !tn.AcquireQuery() || !tn.AcquireSubscription() {
		t.Fatal("nil tenant rejected quota")
	}
	tn.ReleaseQuery()
	tn.ReleaseSubscription()
	tn.RefundEdges(3)
	tn.AddIngestBytes(10)
	if tn.Name() != "" || tn.Weight() != 1 {
		t.Fatalf("nil tenant Name/Weight = %q/%v", tn.Name(), tn.Weight())
	}
	if u := tn.Usage(); u != (Usage{}) {
		t.Fatalf("nil tenant Usage = %+v", u)
	}
}

func TestAdmissionCounters(t *testing.T) {
	tn := newTenant("c", Limits{EdgesPerSec: 1, EdgeBurst: 2, BatchesPerSec: 1, BatchBurst: 1})
	tn.edges.now = func() time.Time { return time.Unix(0, 0) }
	tn.batches.now = tn.edges.now

	if ok, _ := tn.AdmitBatch(); !ok {
		t.Fatal("first batch rejected")
	}
	if ok, wait := tn.AdmitBatch(); ok || wait <= 0 {
		t.Fatalf("second batch admitted (ok=%v wait=%d)", ok, wait)
	}
	if ok, _ := tn.AdmitEdge(); !ok {
		t.Fatal("edge 1 rejected")
	}
	if ok, _ := tn.AdmitEdge(); !ok {
		t.Fatal("edge 2 rejected")
	}
	if ok, _ := tn.AdmitEdge(); ok {
		t.Fatal("edge 3 admitted past burst")
	}
	tn.RefundEdges(2)
	if ok, _ := tn.AdmitEdge(); !ok {
		t.Fatal("refunded token not reusable")
	}
	tn.AddIngestBytes(42)
	u := tn.Usage()
	if u.AdmittedBatches != 1 || u.RejectedBatches != 1 {
		t.Fatalf("batch counters = %+v", u)
	}
	// 2 admitted − 2 refunded + 1 re-admitted.
	if u.AdmittedEdges != 1 || u.RejectedEdges != 1 || u.IngestBytes != 42 {
		t.Fatalf("edge counters = %+v", u)
	}
}
