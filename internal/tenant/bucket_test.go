package tenant

import (
	"testing"
	"time"
)

// clock is a settable test clock for buckets.
type clock struct{ t time.Time }

func (c *clock) now() time.Time { return c.t }

func newTestBucket(rate float64, burst int) (*Bucket, *clock) {
	c := &clock{t: time.Unix(1000, 0)}
	b := NewBucket(rate, burst)
	b.now = c.now
	return b, c
}

func TestBucketTakeAndRefill(t *testing.T) {
	b, c := newTestBucket(10, 5) // 10 tokens/s, burst 5, starts full

	if ok, _ := b.Take(5); !ok {
		t.Fatal("full bucket rejected its burst")
	}
	ok, wait := b.Take(1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("wait = %v, want %v", wait, want)
	}

	// All-or-nothing: the failed Take must not have consumed anything —
	// after exactly one token's refill time, one token is there.
	c.t = c.t.Add(100 * time.Millisecond)
	if ok, _ := b.Take(1); !ok {
		t.Fatal("token not available after advertised wait")
	}

	// Refill caps at burst.
	c.t = c.t.Add(time.Hour)
	if ok, _ := b.Take(5); !ok {
		t.Fatal("bucket did not refill to burst")
	}
	if ok, _ := b.Take(1); ok {
		t.Fatal("bucket refilled past burst")
	}
}

func TestBucketPut(t *testing.T) {
	b, _ := newTestBucket(1, 3)
	if ok, _ := b.Take(3); !ok {
		t.Fatal("burst rejected")
	}
	b.Put(2)
	if ok, _ := b.Take(2); !ok {
		t.Fatal("refunded tokens not available")
	}
	// Put past the burst caps.
	b.Put(100)
	if ok, _ := b.Take(3); !ok {
		t.Fatal("capped refund below burst")
	}
	if ok, _ := b.Take(1); ok {
		t.Fatal("refund exceeded burst")
	}
}

func TestBucketNilAndDefaults(t *testing.T) {
	var b *Bucket
	if ok, wait := b.Take(100); !ok || wait != 0 {
		t.Fatal("nil bucket limited")
	}
	b.Put(1) // must not panic

	if NewBucket(0, 5) != nil || NewBucket(-1, 5) != nil {
		t.Fatal("non-positive rate produced a bucket")
	}
	// Default burst = rate; sub-1 rates still hold one token.
	b2 := NewBucket(4, 0)
	if ok, _ := b2.Take(4); !ok {
		t.Fatal("default burst below rate")
	}
	b3 := NewBucket(0.5, 0)
	if ok, _ := b3.Take(1); !ok {
		t.Fatal("slow bucket does not hold one token")
	}
}
