package tenant

import (
	"sync"
	"time"
)

// Bucket is a token bucket: it refills at rate tokens per second up to
// a burst capacity, and admission takes tokens. A nil *Bucket is the
// unlimited bucket — every Take succeeds, Put is a no-op — so callers
// express "no limit configured" as nil instead of branching.
//
// Take is all-or-nothing and never debts the bucket: when the tokens
// are not there the call takes nothing and reports how long until they
// would be, which is exactly the Retry-After an admission rejection
// needs. Put returns tokens taken for work that was then not performed
// (e.g. ingest lines admitted before a later line tripped the limit),
// keeping the advertised retry horizon honest.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second (> 0)
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time // test seam; time.Now in production
}

// NewBucket builds a bucket refilling at rate tokens/second with the
// given burst capacity. Rate must be positive; burst < 1 becomes
// max(1, rate) so a fresh bucket always admits at least one token.
// The bucket starts full.
func NewBucket(rate float64, burst int) *Bucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &Bucket{rate: rate, burst: b, tokens: b, now: time.Now}
}

// refillLocked advances the bucket to now.
func (b *Bucket) refillLocked() {
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Take removes n tokens if they are all available. Otherwise it takes
// nothing and returns the duration until n tokens will have refilled —
// the Retry-After horizon. A nil bucket always admits. Asking for more
// than the burst capacity can never succeed; the returned wait is the
// refill time for the missing tokens regardless, so callers that
// over-ask see a finite (if hopeless) horizon and should bound n by
// the burst themselves.
func (b *Bucket) Take(n int) (ok bool, wait time.Duration) {
	if b == nil || n <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	return false, time.Duration((need - b.tokens) / b.rate * float64(time.Second))
}

// Put returns n tokens to the bucket, up to the burst capacity — the
// refund path for admission that was granted and then not used.
func (b *Bucket) Put(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens += float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
