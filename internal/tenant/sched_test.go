package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSchedFIFOWithinFlow(t *testing.T) {
	s := NewSched[int](8)
	ctx := context.Background()
	for i := 1; i <= 4; i++ {
		if err := s.Submit(ctx, "a", i); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for i := 1; i <= 4; i++ {
		got, flow, ok := s.Next()
		if !ok || flow != "a" || got != i {
			t.Fatalf("Next() = %d, %q, %v; want %d, a, true", got, flow, ok, i)
		}
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len() = %d after drain", n)
	}
}

func TestSchedFairInterleaving(t *testing.T) {
	s := NewSched[string](8)
	ctx := context.Background()
	// Flow "hot" queues 6 items, "quiet" queues 2. With equal weights
	// and equal per-item cost, the quiet flow's items must not all wait
	// behind the hot backlog.
	for i := 0; i < 6; i++ {
		if err := s.Submit(ctx, "hot", "h"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.Submit(ctx, "quiet", "q"); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		_, flow, ok := s.Next()
		if !ok {
			t.Fatal("Next ended early")
		}
		order = append(order, flow)
		s.Charge(flow, time.Millisecond)
	}
	// Both quiet items must be served within the first four dispatches:
	// equal-cost charging alternates the two flows while both are
	// backlogged.
	quietSeen := 0
	for _, f := range order[:4] {
		if f == "quiet" {
			quietSeen++
		}
	}
	if quietSeen != 2 {
		t.Fatalf("quiet flow starved: order = %v", order)
	}
}

func TestSchedWeights(t *testing.T) {
	s := NewSched[int](32)
	s.SetWeight("heavy", 3)
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if err := s.Submit(ctx, "heavy", i); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(ctx, "light", i); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		_, flow, ok := s.Next()
		if !ok {
			t.Fatal("Next ended early")
		}
		counts[flow]++
		s.Charge(flow, time.Millisecond)
	}
	// Weight 3 vs 1 → the heavy flow gets ~3/4 of the first 8 slots.
	if counts["heavy"] < 5 {
		t.Fatalf("weighted flow under-served: %v", counts)
	}
}

func TestSchedPerFlowBoundDoesNotCrossBlock(t *testing.T) {
	s := NewSched[int](2)
	ctx := context.Background()
	// Fill flow "a" to its bound.
	if err := s.Submit(ctx, "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(ctx, "a", 2); err != nil {
		t.Fatal(err)
	}
	// Flow "b" must still admit immediately despite "a" being full.
	done := make(chan error, 1)
	go func() { done <- s.Submit(ctx, "b", 1) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Submit(b): %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit(b) blocked behind flow a's backlog")
	}

	// A third "a" item blocks until Next frees a slot.
	blocked := make(chan error, 1)
	go func() { blocked <- s.Submit(ctx, "a", 3) }()
	select {
	case <-blocked:
		t.Fatal("Submit(a) did not block on a full flow")
	case <-time.After(50 * time.Millisecond):
	}
	if _, _, ok := s.Next(); !ok {
		t.Fatal("Next failed")
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("unblocked Submit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit(a) still blocked after a slot freed")
	}
}

func TestSchedSubmitContextCancel(t *testing.T) {
	s := NewSched[int](1)
	if err := s.Submit(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Submit(ctx, "a", 2) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Submit did not return")
	}
}

func TestSchedCloseDrains(t *testing.T) {
	s := NewSched[int](8)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if err := s.Submit(ctx, "a", i); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := s.Submit(ctx, "a", 4); !errors.Is(err, ErrSchedClosed) {
		t.Fatalf("Submit after Close = %v", err)
	}
	for i := 1; i <= 3; i++ {
		got, _, ok := s.Next()
		if !ok || got != i {
			t.Fatalf("drain Next() = %d, %v; want %d, true", got, ok, i)
		}
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("Next returned an item after drain")
	}
}

func TestSchedCloseUnblocksSubmit(t *testing.T) {
	s := NewSched[int](1)
	if err := s.Submit(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Submit(context.Background(), "a", 2) }()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrSchedClosed) {
			t.Fatalf("Submit = %v, want ErrSchedClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Submit")
	}
}

func TestSchedConcurrent(t *testing.T) {
	s := NewSched[int](16)
	const flows, perFlow = 4, 50
	names := []string{"f0", "f1", "f2", "f3"}
	var wg sync.WaitGroup
	for f := 0; f < flows; f++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perFlow; i++ {
				if err := s.Submit(context.Background(), name, i); err != nil {
					t.Errorf("Submit(%s): %v", name, err)
					return
				}
			}
		}(names[f])
	}
	got := make(map[string][]int)
	for n := 0; n < flows*perFlow; n++ {
		item, flow, ok := s.Next()
		if !ok {
			t.Fatal("Next ended early")
		}
		got[flow] = append(got[flow], item)
		s.Charge(flow, time.Microsecond)
	}
	wg.Wait()
	for _, name := range names {
		if len(got[name]) != perFlow {
			t.Fatalf("flow %s delivered %d items, want %d", name, len(got[name]), perFlow)
		}
		for i, v := range got[name] {
			if v != i {
				t.Fatalf("flow %s out of order at %d: %v", name, i, got[name][:i+1])
			}
		}
	}
}
