package tenant

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSchedClosed is returned by Sched.Submit after Close.
var ErrSchedClosed = errors.New("tenant: scheduler closed")

// Sched is a weighted start-time fair queueing scheduler over named
// flows — the fair-share stage between admission and the serialized
// execution loop. Each flow keeps its own bounded FIFO, so one
// backlogged flow can fill only its own queue and never crowds another
// flow out of admission; the drain side picks the queued flow with the
// smallest virtual time, and Charge advances a flow's virtual time by
// the measured cost of its work divided by its weight. Over any busy
// interval each flow therefore receives service proportional to its
// weight, regardless of how hard the others push.
//
// The intended loop is one drainer:
//
//	for item, flow, ok := s.Next(); ok; item, flow, ok = s.Next() {
//		start := time.Now()
//		run(item)
//		s.Charge(flow, time.Since(start))
//	}
//
// Submit may be called from any number of goroutines. A flow that goes
// idle and returns re-enters at max(own vtime, scheduler vtime): it is
// not owed credit for the time it was absent, the classic start-time
// fairness rule.
type Sched[T any] struct {
	mu      sync.Mutex
	flows   map[string]*flow[T]
	vnow    float64 // virtual time of the most recently dispatched item
	depth   int     // per-flow queue bound
	pending int     // total queued items
	closed  bool

	work  chan struct{} // cap 1: "an item may be available"
	space chan struct{} // closed and replaced when any queue frees a slot
	done  chan struct{} // closed by Close
}

type flow[T any] struct {
	weight float64
	vtime  float64
	queue  []T
}

// NewSched builds a scheduler whose flows each hold at most depth
// queued items (depth < 1 becomes 1).
func NewSched[T any](depth int) *Sched[T] {
	if depth < 1 {
		depth = 1
	}
	return &Sched[T]{
		flows: make(map[string]*flow[T]),
		depth: depth,
		work:  make(chan struct{}, 1),
		space: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

func (s *Sched[T]) flowLocked(name string) *flow[T] {
	f := s.flows[name]
	if f == nil {
		f = &flow[T]{weight: 1}
		s.flows[name] = f
	}
	return f
}

// SetWeight sets name's fair-share weight (values <= 0 become 1). A
// flow with weight 2 receives twice the service of a weight-1 flow
// over any interval where both are backlogged.
func (s *Sched[T]) SetWeight(name string, w float64) {
	if w <= 0 {
		w = 1
	}
	s.mu.Lock()
	s.flowLocked(name).weight = w
	s.mu.Unlock()
}

// Submit enqueues item on name's flow, blocking while that flow's
// queue is full. It returns ctx.Err() if the context ends first and
// ErrSchedClosed after Close. Other flows' backlogs never block a
// Submit — the bound is strictly per flow.
func (s *Sched[T]) Submit(ctx context.Context, name string, item T) error {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrSchedClosed
		}
		f := s.flowLocked(name)
		if len(f.queue) < s.depth {
			if len(f.queue) == 0 && f.vtime < s.vnow {
				// Reactivation: an idle flow re-enters at the current
				// virtual time, carrying no credit for its absence.
				f.vtime = s.vnow
			}
			f.queue = append(f.queue, item)
			s.pending++
			s.mu.Unlock()
			select {
			case s.work <- struct{}{}:
			default:
			}
			return nil
		}
		space := s.space
		s.mu.Unlock()
		select {
		case <-space:
		case <-ctx.Done():
			return ctx.Err()
		case <-s.done:
			return ErrSchedClosed
		}
	}
}

// Next dequeues the head of the queued flow with the smallest virtual
// time, blocking until an item is available. After Close it drains the
// remaining queued items, then returns ok = false — every item
// admitted before Close is still delivered.
func (s *Sched[T]) Next() (item T, flowName string, ok bool) {
	for {
		s.mu.Lock()
		var best *flow[T]
		var bestName string
		for n, f := range s.flows {
			if len(f.queue) == 0 {
				continue
			}
			// The name comparison breaks exact virtual-time ties
			// deterministically (map order must not pick the winner).
			if best == nil || f.vtime < best.vtime ||
				(f.vtime == best.vtime && n < bestName) {
				best, bestName = f, n
			}
		}
		if best != nil {
			item = best.queue[0]
			var zero T
			best.queue[0] = zero // drop the reference for GC
			best.queue = best.queue[1:]
			if len(best.queue) == 0 {
				best.queue = nil // reset capacity; idle flows hold nothing
			}
			s.pending--
			if best.vtime > s.vnow {
				s.vnow = best.vtime
			}
			close(s.space) // a slot freed: wake every blocked Submit
			s.space = make(chan struct{})
			s.mu.Unlock()
			return item, bestName, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			var zero T
			return zero, "", false
		}
		select {
		case <-s.work:
		case <-s.done:
		}
	}
}

// Charge advances name's virtual time by cost scaled down by the
// flow's weight. Call it after executing an item Next returned, with
// the item's measured wall time.
func (s *Sched[T]) Charge(name string, cost time.Duration) {
	s.mu.Lock()
	if f := s.flows[name]; f != nil {
		f.vtime += float64(cost) / f.weight
	}
	s.mu.Unlock()
}

// Len returns the total number of queued items across all flows.
func (s *Sched[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Close rejects further Submits and wakes blocked ones. Items already
// queued remain deliverable through Next, which returns ok = false
// once they are drained. Idempotent.
func (s *Sched[T]) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	s.mu.Unlock()
}
