// Package tenant is the multi-tenant control plane of the serving
// layer: named tenants owning namespaced queries and subscriptions, an
// API-key registry resolving bearer credentials to a tenant and role,
// per-tenant token-bucket admission for ingest, query/subscription
// quotas, and a weighted fair-share scheduler that keeps one
// backlogged tenant from monopolizing the serialized execution loop.
//
// The package is deliberately engine-agnostic: it knows nothing about
// queries or edges, only about names, tokens and virtual time. The
// server threads it through the HTTP boundary (admission before the
// bounded work queue — reject, never queue-then-drop) and tags fleet
// members with the owning tenant for per-tenant statistics.
package tenant

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Role says what an API key may do.
type Role string

const (
	// RoleWrite keys may ingest, register and retire queries,
	// subscribe, and read stats — full tenant access.
	RoleWrite Role = "write"
	// RoleRead keys may list, subscribe and read stats only.
	RoleRead Role = "read"
)

// Limits bound one tenant's admission. The zero value is unlimited:
// every field left zero disables that limit, so a tenants file only
// states what it wants to constrain.
type Limits struct {
	// EdgesPerSec refills the edge token bucket; EdgeBurst is its
	// capacity (default: one second's worth). One ingested NDJSON line
	// costs one token, charged before the line is parsed or queued.
	EdgesPerSec float64 `json:"edges_per_sec,omitempty"`
	EdgeBurst   int     `json:"edge_burst,omitempty"`
	// BatchesPerSec refills the batch token bucket; BatchBurst is its
	// capacity. One POST /ingest costs one token.
	BatchesPerSec float64 `json:"batches_per_sec,omitempty"`
	BatchBurst    int     `json:"batch_burst,omitempty"`
	// MaxQueries caps concurrently registered queries; MaxSubscriptions
	// caps concurrent SSE subscriptions.
	MaxQueries       int `json:"max_queries,omitempty"`
	MaxSubscriptions int `json:"max_subscriptions,omitempty"`
	// Weight is the tenant's fair-share weight at the execution loop
	// (default 1): with two backlogged tenants of weights 2 and 1, the
	// first receives two thirds of the loop.
	Weight float64 `json:"weight,omitempty"`
}

// KeySpec declares one API key of a tenant spec.
type KeySpec struct {
	// Key is the bearer credential, verbatim. Only its SHA-256 is kept
	// in memory after registration.
	Key string `json:"key"`
	// Role defaults to write.
	Role Role `json:"role,omitempty"`
}

// Spec declares one tenant: the tenants-file entry and the POST
// /tenants request body.
type Spec struct {
	Name   string    `json:"name"`
	Keys   []KeySpec `json:"keys,omitempty"`
	Limits Limits    `json:"limits,omitempty"`
}

// File is the on-disk tenants file: a JSON object so the format can
// grow fields without breaking old files.
type File struct {
	Tenants []Spec `json:"tenants"`
}

// Usage is one tenant's admission and ownership counters — the
// per-tenant slice of GET /stats.
type Usage struct {
	AdmittedEdges   int64 `json:"admitted_edges"`
	RejectedEdges   int64 `json:"rejected_edges"`
	AdmittedBatches int64 `json:"admitted_batches"`
	RejectedBatches int64 `json:"rejected_batches"`
	IngestBytes     int64 `json:"ingest_bytes"`
	Queries         int   `json:"queries"`
	Subscriptions   int   `json:"subscriptions"`
}

// ValidateName checks a tenant name: non-empty, at most 64 bytes, and
// limited to lowercase letters, digits, '-', '_' and '.' with no
// leading dot. The alphabet excludes ':' (the namespace separator in
// internal query names), '/' and '\' (names become path components of
// durable state), and anything that could alias "." or "..".
func ValidateName(name string) error {
	if name == "" {
		return errors.New("tenant name must be non-empty")
	}
	if len(name) > 64 {
		return fmt.Errorf("tenant name %q exceeds 64 bytes", name)
	}
	if name[0] == '.' {
		return fmt.Errorf("tenant name %q must not start with '.'", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tenant name %q: byte %q not in [a-z0-9._-]", name, c)
		}
	}
	return nil
}

// Tenant is one namespace's live admission state. All methods are safe
// for concurrent use. A nil *Tenant admits everything and counts
// nothing — the "tenancy disabled" object.
type Tenant struct {
	name   string
	limits Limits

	edges   *Bucket // nil = unlimited
	batches *Bucket // nil = unlimited

	admittedEdges   atomic.Int64
	rejectedEdges   atomic.Int64
	admittedBatches atomic.Int64
	rejectedBatches atomic.Int64
	ingestBytes     atomic.Int64

	mu            sync.Mutex // guards the quota gauges below
	queries       int
	subscriptions int
}

// newTenant builds a tenant with its buckets sized from limits.
func newTenant(name string, l Limits) *Tenant {
	return &Tenant{
		name:    name,
		limits:  l,
		edges:   NewBucket(l.EdgesPerSec, l.EdgeBurst),
		batches: NewBucket(l.BatchesPerSec, l.BatchBurst),
	}
}

// Name returns the tenant's name ("" for the nil tenant).
func (t *Tenant) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Limits returns the tenant's configured limits.
func (t *Tenant) Limits() Limits {
	if t == nil {
		return Limits{}
	}
	return t.limits
}

// Weight returns the tenant's fair-share weight (1 when unset or nil).
func (t *Tenant) Weight() float64 {
	if t == nil || t.limits.Weight <= 0 {
		return 1
	}
	return t.limits.Weight
}

// AdmitBatch charges one batch token. On rejection it returns the
// Retry-After horizon. Batch tokens are never refunded: a rejected
// request that retries immediately would otherwise never observe the
// limit.
func (t *Tenant) AdmitBatch() (ok bool, wait int64) {
	if t == nil {
		return true, 0
	}
	ok, w := t.batches.Take(1)
	if ok {
		t.admittedBatches.Add(1)
		return true, 0
	}
	t.rejectedBatches.Add(1)
	return false, int64(w)
}

// AdmitEdge charges one edge token — one NDJSON ingest line. On
// rejection it returns the Retry-After horizon in nanoseconds.
func (t *Tenant) AdmitEdge() (ok bool, wait int64) {
	if t == nil {
		return true, 0
	}
	ok, w := t.edges.Take(1)
	if ok {
		t.admittedEdges.Add(1)
		return true, 0
	}
	t.rejectedEdges.Add(1)
	return false, int64(w)
}

// RefundEdges returns n edge tokens taken for lines that were then not
// fed (the early-abort path: lines admitted before a later line
// tripped the limit are refunded so the advertised Retry-After is the
// real horizon for the whole batch).
func (t *Tenant) RefundEdges(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.edges.Put(n)
	t.admittedEdges.Add(int64(-n))
}

// AddIngestBytes accounts request-body bytes read for this tenant.
func (t *Tenant) AddIngestBytes(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.ingestBytes.Add(n)
}

// AcquireQuery claims one query slot against MaxQueries, reporting
// whether the quota admits it. Pair with ReleaseQuery.
func (t *Tenant) AcquireQuery() bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.MaxQueries > 0 && t.queries >= t.limits.MaxQueries {
		return false
	}
	t.queries++
	return true
}

// RestoreQuery counts one recovered query slot without enforcing
// MaxQueries: durable state is never dropped at boot for exceeding a
// quota that was tightened after the query was registered.
func (t *Tenant) RestoreQuery() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.queries++
	t.mu.Unlock()
}

// ReleaseQuery returns one query slot.
func (t *Tenant) ReleaseQuery() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.queries > 0 {
		t.queries--
	}
	t.mu.Unlock()
}

// AcquireSubscription claims one subscription slot against
// MaxSubscriptions. Pair with ReleaseSubscription.
func (t *Tenant) AcquireSubscription() bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.MaxSubscriptions > 0 && t.subscriptions >= t.limits.MaxSubscriptions {
		return false
	}
	t.subscriptions++
	return true
}

// ReleaseSubscription returns one subscription slot.
func (t *Tenant) ReleaseSubscription() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.subscriptions > 0 {
		t.subscriptions--
	}
	t.mu.Unlock()
}

// Usage snapshots the tenant's counters.
func (t *Tenant) Usage() Usage {
	if t == nil {
		return Usage{}
	}
	t.mu.Lock()
	q, s := t.queries, t.subscriptions
	t.mu.Unlock()
	return Usage{
		AdmittedEdges:   t.admittedEdges.Load(),
		RejectedEdges:   t.rejectedEdges.Load(),
		AdmittedBatches: t.admittedBatches.Load(),
		RejectedBatches: t.rejectedBatches.Load(),
		IngestBytes:     t.ingestBytes.Load(),
		Queries:         q,
		Subscriptions:   s,
	}
}

// keyEntry resolves one hashed API key.
type keyEntry struct {
	tenant *Tenant
	role   Role
}

// Registry is the tenant roster and API-key resolver. Keys are held
// as SHA-256 digests only; Resolve hashes the presented credential and
// compares digests in constant time.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
	keys    map[[sha256.Size]byte]keyEntry
	anon    *Tenant // tenant served to unauthenticated requests; nil = reject
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		tenants: make(map[string]*Tenant),
		keys:    make(map[[sha256.Size]byte]keyEntry),
	}
}

// Create registers one tenant from its spec. It validates the name,
// rejects duplicate tenants and keys, and defaults each key's role to
// write.
func (r *Registry) Create(spec Spec) (*Tenant, error) {
	if err := ValidateName(spec.Name); err != nil {
		return nil, err
	}
	for _, k := range spec.Keys {
		if k.Key == "" {
			return nil, fmt.Errorf("tenant %q: empty API key", spec.Name)
		}
		switch k.Role {
		case "", RoleWrite, RoleRead:
		default:
			return nil, fmt.Errorf("tenant %q: unknown role %q (want %q or %q)",
				spec.Name, k.Role, RoleWrite, RoleRead)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[spec.Name]; dup {
		return nil, fmt.Errorf("tenant %q already exists", spec.Name)
	}
	for _, k := range spec.Keys {
		if _, dup := r.keys[sha256.Sum256([]byte(k.Key))]; dup {
			return nil, fmt.Errorf("tenant %q: API key already registered", spec.Name)
		}
	}
	t := newTenant(spec.Name, spec.Limits)
	r.tenants[spec.Name] = t
	for _, k := range spec.Keys {
		role := k.Role
		if role == "" {
			role = RoleWrite
		}
		r.keys[sha256.Sum256([]byte(k.Key))] = keyEntry{tenant: t, role: role}
	}
	return t, nil
}

// Get returns the named tenant.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Names returns the registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve maps a bearer credential to its tenant and role. The lookup
// is by SHA-256 digest: equality of digests stands in for equality of
// keys, and because the attacker cannot choose the digest of an
// unknown key, the map lookup's timing leaks nothing useful about
// registered credentials.
func (r *Registry) Resolve(key string) (*Tenant, Role, bool) {
	if key == "" {
		return nil, "", false
	}
	sum := sha256.Sum256([]byte(key))
	r.mu.RLock()
	e, ok := r.keys[sum]
	r.mu.RUnlock()
	if !ok {
		return nil, "", false
	}
	return e.tenant, e.role, true
}

// SetAnonymous maps unauthenticated requests to the named tenant — the
// default-tenant compatibility mode. The tenant must already exist.
func (r *Registry) SetAnonymous(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("default tenant %q not registered", name)
	}
	r.anon = t
	return nil
}

// Anonymous returns the tenant served to unauthenticated requests, or
// nil when such requests must be rejected.
func (r *Registry) Anonymous() *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.anon
}

// LoadFile reads a tenants file (see File) and registers every entry.
func (r *Registry) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("tenants file %s: %w", path, err)
	}
	for _, spec := range f.Tenants {
		if _, err := r.Create(spec); err != nil {
			return fmt.Errorf("tenants file %s: %w", path, err)
		}
	}
	return nil
}
