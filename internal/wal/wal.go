// Package wal implements a segmented, checksummed write-ahead log of
// streaming-graph edges. It is the durability substrate for the
// PersistentSearcher: every edge is appended (and optionally fsynced)
// before it reaches the matching engine, so that after a crash the
// engine's state — which is a pure function of the in-window edge
// suffix — can be rebuilt by replay.
//
// # Format
//
// A log is a directory of segment files named wal-<firstseq>.seg, where
// <firstseq> is the zero-padded sequence number of the segment's first
// record. Each segment starts with an 8-byte magic ("TSWAL001") followed
// by records:
//
//	record := uvarint(len(payload)) payload crc32c(payload)
//	payload := varint fields of the edge (From, To, FromLabel, ToLabel,
//	           EdgeLabel, Time)
//
// The CRC lets the reader detect a torn tail (a record cut short by a
// crash) and stop cleanly at the last intact record instead of
// propagating garbage, which is the standard recovery contract of
// database logs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"timingsubg/internal/graph"
	"timingsubg/internal/stats"
)

const (
	magic       = "TSWAL001"
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	maxRecBytes = 1 << 20 // sanity bound on a single record
)

// ErrCorrupt reports a record whose checksum or framing is invalid in a
// position other than the log tail (tail corruption is silently
// truncated, interior corruption is an error).
var ErrCorrupt = errors.New("wal: corrupt record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is the writable handle a Log appends through. *os.File satisfies
// it; tests substitute failing implementations to exercise torn and
// failed writes (the fault-injection seam of the durability test suite).
type File interface {
	io.Writer
	io.Seeker
	Sync() error
	Close() error
	Truncate(size int64) error
}

// OpenFileFunc opens a segment file for writing. It mirrors os.OpenFile,
// which is the default.
type OpenFileFunc func(name string, flag int, perm os.FileMode) (File, error)

func osOpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size. Zero means 4 MiB.
	SegmentBytes int64
	// SyncEvery fsyncs after every n appends. Zero disables fsync (the
	// OS page cache still persists on clean shutdown); 1 gives
	// per-record durability.
	SyncEvery int
	// OpenFile replaces os.OpenFile for segment writes. Nil means
	// os.OpenFile; non-nil is the fault-injection seam — crash tests
	// wrap the real file to fail or tear a write mid-batch. Reads
	// (scan, replay) always go through the real filesystem.
	OpenFile OpenFileFunc
	// SyncHist, when non-nil, observes the duration of every fsync the
	// log performs (cadence syncs inside Append/AppendBatch as well as
	// explicit Sync calls). The fsync happens inside the append path —
	// callers timing Append from outside cannot separate it — so the
	// log itself attributes it. Nil disables the measurement.
	SyncHist *stats.AtomicHistogram
}

func (o *Options) norm() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
	if o.OpenFile == nil {
		o.OpenFile = osOpenFile
	}
}

// Log is an append-only edge log. It is not safe for concurrent use; the
// PersistentSearcher serializes access, matching the paper's
// single-main-thread dispatch model.
type Log struct {
	dir     string
	opts    Options
	f       File
	fileLen int64
	seq     int64 // next sequence number to be assigned
	first   int64 // first sequence number of the open segment
	pending int   // appends since last fsync
	buf     []byte
	closed  bool
}

// Open opens (or creates) the log directory for appending. Existing
// segments are scanned; a torn tail record in the newest segment is
// truncated away. The returned log continues at the next sequence
// number.
func Open(dir string, opts Options) (*Log, error) {
	opts.norm()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.rotate(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Verify the newest segment and truncate any torn tail, counting
	// intact records to find the next sequence number.
	last := segs[len(segs)-1]
	n, end, err := scanSegment(filepath.Join(dir, last.name))
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, last.name)
	f, err := opts.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen %s: %w", path, err)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	l.f, l.fileLen, l.first = f, end, last.firstSeq
	l.seq = last.firstSeq + n
	return l, nil
}

// Seq returns the sequence number the next appended record will get,
// which equals the number of records ever appended.
func (l *Log) Seq() int64 { return l.seq }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Append logs one edge and returns its sequence number.
func (l *Log) Append(e graph.Edge) (int64, error) {
	if l.closed {
		return 0, errors.New("wal: append to closed log")
	}
	// Rotate when the segment is full, but never into an empty segment
	// of the same first sequence (that would collide with the open
	// file's name).
	if l.fileLen >= l.opts.SegmentBytes && l.seq > l.first {
		if err := l.rotate(l.seq); err != nil {
			return 0, err
		}
	}
	l.buf = l.buf[:0]
	payload := appendEdge(nil, e)
	l.buf = binary.AppendUvarint(l.buf, uint64(len(payload)))
	l.buf = append(l.buf, payload...)
	l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.fileLen += int64(len(l.buf))
	seq := l.seq
	l.seq++
	l.pending++
	if l.opts.SyncEvery > 0 && l.pending >= l.opts.SyncEvery {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendBatch logs a batch of edges and returns the sequence number of
// the first plus how many were durably appended. It is the amortized
// fast path behind Engine.FeedBatch: records are encoded into one
// buffer and written with one syscall per segment chunk (Append pays
// one write per record), and the fsync cadence is charged once for the
// whole batch — the batch is one durability unit, syncing at most
// once, after the last record. On error, appended reports the records
// that landed before the failure; the log's cursor reflects exactly
// those (seq/pending are committed only after each successful write),
// so the caller can keep engine state consistent with the log.
func (l *Log) AppendBatch(edges []graph.Edge) (first int64, appended int, err error) {
	if l.closed {
		return 0, 0, errors.New("wal: append to closed log")
	}
	first = l.seq
	var payload []byte
	for appended < len(edges) {
		if l.fileLen >= l.opts.SegmentBytes && l.seq > l.first {
			if err := l.rotate(l.seq); err != nil {
				return first, appended, err
			}
		}
		// Fill one buffer up to the segment bound (always taking at
		// least one record so rotation makes progress).
		l.buf = l.buf[:0]
		chunkLen := l.fileLen
		count := 0
		for appended+count < len(edges) {
			if len(l.buf) > 0 && chunkLen >= l.opts.SegmentBytes {
				break
			}
			payload = appendEdge(payload[:0], edges[appended+count])
			l.buf = binary.AppendUvarint(l.buf, uint64(len(payload)))
			l.buf = append(l.buf, payload...)
			l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(payload, crcTable))
			chunkLen = l.fileLen + int64(len(l.buf))
			count++
		}
		if _, err := l.f.Write(l.buf); err != nil {
			return first, appended, fmt.Errorf("wal: append batch: %w", err)
		}
		l.fileLen = chunkLen
		l.seq += int64(count)
		l.pending += count
		appended += count
	}
	if l.opts.SyncEvery > 0 && l.pending >= l.opts.SyncEvery {
		if err := l.Sync(); err != nil {
			return first, appended, err
		}
	}
	return first, appended, nil
}

// SkipTo advances the log's sequence counter to seq, starting a fresh
// segment there. It is used when a checkpoint is newer than the log
// tail (possible when fsync is disabled and the tail was lost in a
// crash): the checkpoint already covers the lost records, and appends
// must continue at the checkpoint's cursor so edge IDs stay aligned.
// SkipTo is a no-op when the log is already at or past seq.
func (l *Log) SkipTo(seq int64) error {
	if seq <= l.seq {
		return nil
	}
	if err := l.rotate(seq); err != nil {
		return err
	}
	l.seq = seq
	return l.TruncateFront(seq)
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	l.pending = 0
	var t time.Time
	if l.opts.SyncHist != nil {
		t = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if l.opts.SyncHist != nil {
		l.opts.SyncHist.Observe(time.Since(t))
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.f.Close()
}

// TruncateFront removes whole segments all of whose records have
// sequence number < keep. Records >= keep are never removed; the cut is
// conservative (segment granularity), which is all checkpoint GC needs.
func (l *Log) TruncateFront(keep int64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		// A segment is removable when the next segment starts at or
		// below keep (so every record here is < keep). The open segment
		// is never removed.
		if i+1 >= len(segs) || segs[i+1].firstSeq > keep {
			break
		}
		if s.firstSeq == l.first {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
			return fmt.Errorf("wal: truncate front: %w", err)
		}
	}
	return nil
}

func (l *Log) rotate(firstSeq int64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: rotate sync: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: rotate close: %w", err)
		}
	}
	name := segName(firstSeq)
	f, err := l.opts.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: rotate header: %w", err)
	}
	l.f, l.fileLen, l.first = f, int64(len(magic)), firstSeq
	return nil
}

func segName(firstSeq int64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix)
}

type segInfo struct {
	name     string
	firstSeq int64
}

func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []segInfo
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		n, err := strconv.ParseInt(numStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q: %w", name, err)
		}
		segs = append(segs, segInfo{name: name, firstSeq: n})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanSegment counts intact records in a segment and returns the count
// and the byte offset just past the last intact record (where a torn
// tail, if any, begins).
func scanSegment(path string) (n int64, end int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return 0, 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, path)
	}
	off := int64(len(magic))
	for {
		rec, next, ok := nextRecord(data, off)
		if !ok {
			return n, off, nil
		}
		_ = rec
		off = next
		n++
	}
}

// nextRecord decodes the record framing at data[off:]. ok is false when
// the bytes from off do not form a complete, checksummed record — the
// caller treats that as the (possibly torn) end of the segment.
func nextRecord(data []byte, off int64) (payload []byte, next int64, ok bool) {
	rest := data[off:]
	sz, n := binary.Uvarint(rest)
	if n <= 0 || sz > maxRecBytes {
		return nil, 0, false
	}
	body := rest[n:]
	if uint64(len(body)) < sz+4 {
		return nil, 0, false
	}
	payload = body[:sz]
	crc := binary.LittleEndian.Uint32(body[sz : sz+4])
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, false
	}
	return payload, off + int64(n) + int64(sz) + 4, true
}

// appendEdge encodes the replayable fields of an edge. The edge ID is
// deliberately excluded: IDs are assigned deterministically by the
// stream in arrival order, so replay regenerates them.
func appendEdge(b []byte, e graph.Edge) []byte {
	b = binary.AppendVarint(b, int64(e.From))
	b = binary.AppendVarint(b, int64(e.To))
	b = binary.AppendVarint(b, int64(e.FromLabel))
	b = binary.AppendVarint(b, int64(e.ToLabel))
	b = binary.AppendVarint(b, int64(e.EdgeLabel))
	b = binary.AppendVarint(b, int64(e.Time))
	return b
}

func decodeEdge(payload []byte) (graph.Edge, error) {
	var e graph.Edge
	rd := payload
	get := func() (int64, error) {
		v, n := binary.Varint(rd)
		if n <= 0 {
			return 0, fmt.Errorf("%w: short edge payload", ErrCorrupt)
		}
		rd = rd[n:]
		return v, nil
	}
	var err error
	var v int64
	if v, err = get(); err != nil {
		return e, err
	}
	e.From = graph.VertexID(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.To = graph.VertexID(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.FromLabel = graph.Label(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.ToLabel = graph.Label(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.EdgeLabel = graph.Label(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.Time = graph.Timestamp(v)
	if len(rd) != 0 {
		return e, fmt.Errorf("%w: trailing bytes in edge payload", ErrCorrupt)
	}
	return e, nil
}

// FirstSeq returns the sequence number of the oldest record still
// retained in dir (0 for an empty or missing log). Front truncation
// advances it; consumers joining an existing log start here.
func FirstSeq(dir string) (int64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	return segs[0].firstSeq, nil
}

// Replay streams records with sequence number >= from, in order, to fn.
// It returns the next sequence number after the last delivered record
// (i.e. the log's logical length). A torn tail in the newest segment
// ends replay cleanly; interior corruption returns ErrCorrupt. fn may
// stop replay early by returning an error, which Replay propagates.
func Replay(dir string, from int64, fn func(seq int64, e graph.Edge) error) (int64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	seq := int64(0)
	if len(segs) > 0 {
		seq = segs[0].firstSeq
	}
	if from > seq {
		// Skip whole segments below from.
		for len(segs) > 1 && segs[1].firstSeq <= from {
			segs = segs[1:]
		}
		seq = segs[0].firstSeq
	}
	for si, s := range segs {
		data, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			return seq, fmt.Errorf("wal: replay: %w", err)
		}
		if len(data) < len(magic) || string(data[:len(magic)]) != magic {
			return seq, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, s.name)
		}
		if seq != s.firstSeq {
			return seq, fmt.Errorf("%w: segment %s starts at %d, want %d (gap)", ErrCorrupt, s.name, s.firstSeq, seq)
		}
		off := int64(len(magic))
		for {
			payload, next, ok := nextRecord(data, off)
			if !ok {
				if off != int64(len(data)) && si != len(segs)-1 {
					return seq, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, s.name, off)
				}
				break
			}
			if seq >= from {
				e, err := decodeEdge(payload)
				if err != nil {
					return seq, fmt.Errorf("%s seq %d: %w", s.name, seq, err)
				}
				e.ID = graph.EdgeID(seq)
				if err := fn(seq, e); err != nil {
					return seq, err
				}
			}
			seq++
			off = next
		}
	}
	return seq, nil
}
