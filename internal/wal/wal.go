// Package wal implements a segmented, checksummed, group-committed
// write-ahead log of streaming-graph edges. It is the durability
// substrate for durable engines: every edge is appended (and durably
// committed, per the configured cadence) before it reaches the matching
// engine, so that after a crash the engine's state — which is a pure
// function of the in-window edge suffix — can be rebuilt by replay.
//
// # LSNs
//
// Every record carries a log sequence number (LSN): a monotonic int64
// assigned at append time, equal to the number of records ever
// appended before it. LSNs are the log's addressing scheme end to end:
// segments are named by the LSN of their first record, checkpoints name
// the exact LSN they cover (checkpoint.Checkpoint.LSN), replay cursors
// and truncation points are LSNs, and the durable horizon — the LSN
// below which every record has been fsynced — is an LSN. The same
// stream doubles as the replication log for a future clustered mode.
//
// # Group commit
//
// A Log is safe for concurrent use. Concurrent committers (fleet
// shards, server ingest handlers, background syncers) coalesce into a
// single fsync: the first committer to find no fsync in flight becomes
// the leader and syncs the tail once, covering every record appended
// before the fsync began; committers arriving while it runs append
// under the lock (released for the fsync itself), wait, and re-elect a
// leader only if their records were not covered. Options.SyncEvery
// sets the per-record durability cadence and Options.SyncInterval adds
// a background commit tick — together the explicit durability /
// throughput lever.
//
// # Format
//
// A log is a directory of segment files named wal-<firstLSN>.seg. Each
// segment starts with an 8-byte magic ("TSWAL001") followed by records:
//
//	record := uvarint(len(payload)) payload crc32c(payload)
//	payload := varint fields of the edge (From, To, FromLabel, ToLabel,
//	           EdgeLabel, Time)
//
// The CRC lets the reader detect a torn tail (a record cut short by a
// crash) and stop cleanly at the last intact record instead of
// propagating garbage, which is the standard recovery contract of
// database logs. Recovery reads are streaming — one buffered record at
// a time — so restart memory stays flat regardless of segment size.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timingsubg/internal/graph"
	"timingsubg/internal/stats"
)

const (
	magic       = "TSWAL001"
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	maxRecBytes = 1 << 20 // sanity bound on a single record
	readBufSize = 64 << 10
)

// ErrCorrupt reports a record whose checksum or framing is invalid in a
// position other than the log tail (tail corruption is silently
// truncated, interior corruption is an error).
var ErrCorrupt = errors.New("wal: corrupt record")

// errShortHeader marks a segment file shorter than the magic header —
// the on-disk shape of a crash during rotation, before the header write
// landed. The newest segment in that state holds no records and is
// dropped by Open/Replay; anywhere else it is corruption.
var errShortHeader = errors.New("wal: short segment header")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is the writable handle a Log appends through. *os.File satisfies
// it; tests substitute failing implementations to exercise torn and
// failed writes (the fault-injection seam of the durability test suite).
type File interface {
	io.Writer
	io.Seeker
	Sync() error
	Close() error
	Truncate(size int64) error
}

// OpenFileFunc opens a segment file for writing. It mirrors os.OpenFile,
// which is the default.
type OpenFileFunc func(name string, flag int, perm os.FileMode) (File, error)

func osOpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size. Zero means 4 MiB.
	SegmentBytes int64
	// SyncEvery commits (fsyncs) once the number of records past the
	// durable horizon reaches n. Zero disables cadence commits (the OS
	// page cache still persists on clean shutdown); 1 gives per-record
	// durability. Concurrent committers coalesce into one fsync.
	SyncEvery int
	// SyncInterval, when positive, runs a background group commit at
	// this period: records are made durable within roughly one interval
	// of being appended even when SyncEvery is zero. It is the
	// throughput end of the durability lever — appends never block on
	// the disk, and the coalescing window is the interval.
	SyncInterval time.Duration
	// OpenFile replaces os.OpenFile for segment writes. Nil means
	// os.OpenFile; non-nil is the fault-injection seam — crash tests
	// wrap the real file to fail or tear a write mid-batch. Reads
	// (scan, replay) always go through the real filesystem.
	OpenFile OpenFileFunc
	// SyncHist, when non-nil, observes the duration of every successful
	// fsync the log performs. The fsync happens inside the commit path —
	// callers timing Append from outside cannot separate it — so the
	// log itself attributes it. Nil disables the measurement.
	SyncHist *stats.AtomicHistogram
	// GroupCommitHist, when non-nil, observes each committer's total
	// wait for durability — the batch-coalescing latency a caller pays
	// when its fsync is shared with (or queued behind) others. Only
	// commits that actually had to wait or sync are observed. Nil
	// disables the measurement.
	GroupCommitHist *stats.AtomicHistogram
}

func (o *Options) norm() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
	if o.SyncInterval < 0 {
		o.SyncInterval = 0
	}
	if o.OpenFile == nil {
		o.OpenFile = osOpenFile
	}
}

// Log is an append-only edge log. It is safe for concurrent use:
// appends serialize under an internal mutex (released during fsyncs, so
// concurrent committers group-commit instead of queueing behind the
// disk).
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	commit sync.Cond // signaled when durable/syncing/failed/closed change

	f       File
	fileLen int64
	seq     int64 // next LSN to be assigned
	first   int64 // first LSN of the open segment
	durable int64 // records with LSN < durable are fsynced
	ckptLSN int64 // newest durable checkpoint LSN; -1 = none declared
	buf     []byte
	closed  bool
	failed  error // sticky write failure; non-nil fails appends until reopen
	syncing bool  // a leader fsync is in flight (mu released around it)

	syncs atomic.Int64 // fsyncs attempted (success or not)

	stopBg chan struct{} // non-nil while the background syncer runs
	bgDone chan struct{}
}

// Open opens (or creates) the log directory for appending. Existing
// segments are scanned; a torn tail record in the newest segment is
// truncated away, and a newest segment without a complete header (a
// crash during rotation) is removed. The returned log continues at the
// next LSN.
func Open(dir string, opts Options) (*Log, error) {
	opts.norm()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, ckptLSN: -1}
	l.commit.L = &l.mu

	// Drop headerless newest segments (crash mid-rotation): they hold no
	// records, but their name still pins the LSN cursor — a segment
	// created by SkipTo may name an LSN past the previous segment's end.
	skipped := int64(-1)
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		path := filepath.Join(dir, last.name)
		n, end, err := scanSegment(path)
		if errors.Is(err, errShortHeader) {
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: drop headerless segment %s: %w", path, err)
			}
			if last.firstSeq > skipped {
				skipped = last.firstSeq
			}
			segs = segs[:len(segs)-1]
			continue
		}
		if err != nil {
			return nil, err
		}
		f, err := opts.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", path, err)
		}
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seek %s: %w", path, err)
		}
		l.f, l.fileLen, l.first = f, end, last.firstSeq
		l.seq = last.firstSeq + n
		break
	}
	if l.f == nil {
		firstSeq := int64(0)
		if skipped > 0 {
			firstSeq = skipped
		}
		if err := l.rotateLocked(firstSeq); err != nil {
			return nil, err
		}
		l.seq = firstSeq
	} else if skipped > l.seq {
		// The dropped segment was created by SkipTo past the tail; the
		// LSN cursor must not regress below it.
		if err := l.rotateLocked(skipped); err != nil {
			return nil, err
		}
		l.seq = skipped
	}
	// Everything read back (or synced by rotation) is as durable as a
	// restart can make it.
	l.durable = l.seq
	if opts.SyncInterval > 0 {
		l.startBackgroundSync()
	}
	return l, nil
}

// startBackgroundSync runs the SyncInterval group-commit tick until
// Close (or a sticky failure) stops it.
func (l *Log) startBackgroundSync() {
	l.stopBg = make(chan struct{})
	l.bgDone = make(chan struct{})
	stop, done := l.stopBg, l.bgDone
	go func() {
		defer close(done)
		tick := time.NewTicker(l.opts.SyncInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				l.mu.Lock()
				if l.closed || l.failed != nil {
					l.mu.Unlock()
					return
				}
				if l.seq > l.durable {
					// A failed fsync keeps the debt; the next tick (or
					// any cadence commit) retries.
					_ = l.commitLocked(l.seq)
				}
				l.mu.Unlock()
			}
		}
	}()
}

// Seq returns the LSN the next appended record will get, which equals
// the number of records ever appended.
func (l *Log) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// DurableLSN returns the durable horizon: every record with a smaller
// LSN has been fsynced to stable storage.
func (l *Log) DurableLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Syncs returns the number of fsyncs the log has attempted — the
// denominator of the group-commit coalescing ratio (appends per fsync).
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// usableLocked gates the append path on the log's lifecycle state.
func (l *Log) usableLocked() error {
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	if l.closed {
		return errors.New("wal: append to closed log")
	}
	return nil
}

// failLocked marks the log failed and returns err. After a partial
// (torn) write the in-memory cursor no longer matches the file — a
// retried append would land after the torn bytes and read back as
// interior corruption — so every later append and sync refuses until a
// reopen rescans and truncates the tail.
func (l *Log) failLocked(err error) error {
	l.failed = err
	l.commit.Broadcast()
	return err
}

// Append logs one edge and returns its LSN.
func (l *Log) Append(e graph.Edge) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	if err := l.maybeRotateLocked(); err != nil {
		return 0, err
	}
	l.buf = l.buf[:0]
	payload := appendEdge(nil, e)
	l.buf = binary.AppendUvarint(l.buf, uint64(len(payload)))
	l.buf = append(l.buf, payload...)
	l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, l.failLocked(fmt.Errorf("wal: append: %w", err))
	}
	l.fileLen += int64(len(l.buf))
	seq := l.seq
	l.seq++
	if l.opts.SyncEvery > 0 && l.seq-l.durable >= int64(l.opts.SyncEvery) {
		if err := l.commitLocked(l.seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendBatch logs a batch of edges and returns the LSN of the first
// plus how many were appended. It is the amortized fast path behind
// Engine.FeedBatch: records are encoded into one buffer and written
// with one syscall per segment chunk (Append pays one write per
// record), and the commit cadence is charged once for the whole batch —
// the batch is one durability unit, committing at most once, after the
// last record. On error, appended reports the records that landed
// before the failure; the log's cursor reflects exactly those, so the
// caller can keep engine state consistent with the log.
func (l *Log) AppendBatch(edges []graph.Edge) (first int64, appended int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, 0, err
	}
	first = l.seq
	var payload []byte
	for appended < len(edges) {
		if err := l.maybeRotateLocked(); err != nil {
			return first, appended, err
		}
		// Fill one buffer up to the segment bound (always taking at
		// least one record so rotation makes progress).
		l.buf = l.buf[:0]
		chunkLen := l.fileLen
		count := 0
		for appended+count < len(edges) {
			if len(l.buf) > 0 && chunkLen >= l.opts.SegmentBytes {
				break
			}
			payload = appendEdge(payload[:0], edges[appended+count])
			l.buf = binary.AppendUvarint(l.buf, uint64(len(payload)))
			l.buf = append(l.buf, payload...)
			l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(payload, crcTable))
			chunkLen = l.fileLen + int64(len(l.buf))
			count++
		}
		if _, err := l.f.Write(l.buf); err != nil {
			return first, appended, l.failLocked(fmt.Errorf("wal: append batch: %w", err))
		}
		l.fileLen = chunkLen
		l.seq += int64(count)
		appended += count
	}
	if l.opts.SyncEvery > 0 && l.seq-l.durable >= int64(l.opts.SyncEvery) {
		if err := l.commitLocked(l.seq); err != nil {
			return first, appended, err
		}
	}
	return first, appended, nil
}

// SkipTo advances the log's LSN cursor to seq, starting a fresh segment
// there. It is used when a checkpoint is newer than the log tail
// (possible when fsync is disabled and the tail was lost in a crash):
// the caller asserts a durable checkpoint at seq covers every record
// below it, so appends must continue at the checkpoint's cursor for
// edge IDs to stay aligned, and segments below seq are reclaimed (the
// checkpoint LSN gate is raised to seq accordingly). SkipTo is a no-op
// when the log is already at or past seq.
func (l *Log) SkipTo(seq int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.seq {
		return nil
	}
	if err := l.usableLocked(); err != nil {
		return err
	}
	if err := l.rotateLocked(seq); err != nil {
		return err
	}
	l.seq = seq
	if seq > l.ckptLSN {
		l.ckptLSN = seq
	}
	return l.truncateFrontLocked(seq)
}

// Sync commits everything appended so far: it blocks until the durable
// horizon reaches the current tail, fsyncing at most once (a concurrent
// committer's fsync that already covers the tail satisfies it for
// free). The durability debt is cleared only by a successful fsync — a
// failed one leaves it in place for the next commit to retry.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	if l.closed {
		return errors.New("wal: sync closed log")
	}
	return l.commitLocked(l.seq)
}

// commitLocked blocks until every record below upto is durable,
// coalescing concurrent committers into one fsync: the first committer
// to find no fsync in flight becomes the leader and syncs the tail
// once, covering everyone who appended before the fsync began; arrivals
// during the fsync wait and re-elect a leader only if it did not cover
// them. The mutex is released around the fsync itself, so appends (and
// further committers) proceed while the disk works — the overlap that
// turns N concurrent per-batch fsyncs into one.
//
// Called with l.mu held; may release and retake it.
func (l *Log) commitLocked(upto int64) error {
	var wait time.Time
	if l.opts.GroupCommitHist != nil && l.durable < upto {
		wait = time.Now()
	}
	for l.durable < upto {
		if l.failed != nil {
			return fmt.Errorf("wal: log failed: %w", l.failed)
		}
		if l.closed {
			return errors.New("wal: sync closed log")
		}
		if l.syncing {
			l.commit.Wait()
			continue
		}
		covered := l.seq
		f := l.f
		l.syncing = true
		l.mu.Unlock()
		var t time.Time
		if l.opts.SyncHist != nil {
			t = time.Now()
		}
		err := f.Sync()
		if err == nil && l.opts.SyncHist != nil {
			l.opts.SyncHist.Observe(time.Since(t))
		}
		l.syncs.Add(1)
		l.mu.Lock()
		l.syncing = false
		if err == nil && covered > l.durable {
			l.durable = covered
		}
		l.commit.Broadcast()
		if err != nil {
			// The durable horizon stays put: the records are still
			// pending and the next commit retries the fsync. Unlike a
			// torn write this is not sticky — the in-memory cursor still
			// matches the file.
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if l.opts.GroupCommitHist != nil && !wait.IsZero() {
		l.opts.GroupCommitHist.Observe(time.Since(wait))
	}
	return nil
}

// Close flushes and closes the log, stopping the background syncer.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	stop, done := l.stopBg, l.bgDone
	l.stopBg, l.bgDone = nil, nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.syncing {
		l.commit.Wait()
	}
	l.closed = true
	l.commit.Broadcast()
	if l.failed != nil {
		// The write path already failed and reported it; there is
		// nothing left to make durable.
		l.f.Close()
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	l.durable = l.seq
	return l.f.Close()
}

// SetCheckpointLSN raises the checkpoint gate: the LSN of the newest
// durable checkpoint. TruncateFront never reclaims records at or above
// the gate — a truncation request past it is clamped — so the log can
// never drop records no checkpoint covers. Engines raise the gate after
// every successful checkpoint save.
func (l *Log) SetCheckpointLSN(lsn int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.ckptLSN {
		l.ckptLSN = lsn
	}
}

// CheckpointLSN returns the checkpoint gate (-1 when none has been
// declared; truncation is then unrestricted, for standalone logs with
// their own retention logic).
func (l *Log) CheckpointLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptLSN
}

// TruncateFront removes whole segments all of whose records have
// LSN < keep, clamped to the checkpoint gate (SetCheckpointLSN).
// Records >= keep are never removed; the cut is conservative (segment
// granularity), which is all checkpoint GC needs: after a checkpoint at
// LSN n, TruncateFront(n) bounds the on-disk log to the records the
// checkpoint does not cover — the window span — plus the open segment.
func (l *Log) TruncateFront(keep int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncateFrontLocked(keep)
}

func (l *Log) truncateFrontLocked(keep int64) error {
	if l.ckptLSN >= 0 && keep > l.ckptLSN {
		keep = l.ckptLSN
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		// A segment is removable when the next segment starts at or
		// below keep (so every record here is < keep). The open segment
		// is never removed.
		if i+1 >= len(segs) || segs[i+1].firstSeq > keep {
			break
		}
		if s.firstSeq == l.first {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
			return fmt.Errorf("wal: truncate front: %w", err)
		}
	}
	return nil
}

// maybeRotateLocked rotates when the open segment is full, re-checking
// after every wait: while a leader fsync is in flight the file cannot
// be swapped out from under it, and another appender may have rotated
// (or failed the log) by the time the fsync completes.
func (l *Log) maybeRotateLocked() error {
	for l.fileLen >= l.opts.SegmentBytes && l.seq > l.first {
		if err := l.usableLocked(); err != nil {
			return err
		}
		if l.syncing {
			l.commit.Wait()
			continue
		}
		return l.rotateLocked(l.seq)
	}
	return nil
}

// rotateLocked syncs and closes the open segment and starts a new one
// whose name pins firstSeq. Rotation is a commit point: the old
// segment's fsync advances the durable horizon to the current tail. A
// rotation failure marks the log failed — the segment state on disk is
// ambiguous afterwards.
func (l *Log) rotateLocked(firstSeq int64) error {
	for l.syncing {
		l.commit.Wait()
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return l.failLocked(fmt.Errorf("wal: rotate sync: %w", err))
		}
		if err := l.f.Close(); err != nil {
			return l.failLocked(fmt.Errorf("wal: rotate close: %w", err))
		}
		if l.seq > l.durable {
			l.durable = l.seq
			l.commit.Broadcast()
		}
	}
	name := segName(firstSeq)
	f, err := l.opts.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return l.failLocked(fmt.Errorf("wal: rotate: %w", err))
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return l.failLocked(fmt.Errorf("wal: rotate header: %w", err))
	}
	l.f, l.fileLen, l.first = f, int64(len(magic)), firstSeq
	return nil
}

func segName(firstSeq int64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix)
}

type segInfo struct {
	name     string
	firstSeq int64
}

func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []segInfo
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		n, err := strconv.ParseInt(numStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q: %w", name, err)
		}
		segs = append(segs, segInfo{name: name, firstSeq: n})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// segReader streams one segment's records through a fixed-size buffer —
// the entry-at-a-time recovery read path. The record buffer is reused
// across records, so scanning a multi-megabyte segment allocates a few
// dozen kilobytes, not the segment.
type segReader struct {
	f   *os.File
	br  *bufio.Reader
	off int64 // offset just past the last intact record
	buf []byte
}

// openSegReader opens a segment and verifies its header. A file shorter
// than the header returns errShortHeader (the crash-during-rotation
// shape); a full-length header with wrong bytes is ErrCorrupt.
func openSegReader(path string) (*segReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: %s", errShortHeader, path)
		}
		return nil, fmt.Errorf("wal: read header %s: %w", path, err)
	}
	if string(hdr) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, path)
	}
	return &segReader{f: f, br: bufio.NewReaderSize(f, readBufSize), off: int64(len(magic))}, nil
}

func (r *segReader) close() { r.f.Close() }

// size returns the segment file's byte length (for the interior-
// corruption check: a non-final segment must parse to its exact end).
func (r *segReader) size() (int64, error) {
	fi, err := r.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	return fi.Size(), nil
}

// next returns the next intact record's payload (valid until the
// following call). ok is false at the end of the intact prefix — clean
// EOF, a torn record, or corrupt framing; the reader's offset stays at
// the last intact record, which is where tail truncation cuts. A real
// read I/O error is returned as err.
func (r *segReader) next() (payload []byte, ok bool, err error) {
	sz, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		var perr *fs.PathError
		if errors.As(err, &perr) {
			return nil, false, err
		}
		// Malformed varint (overflow): indistinguishable from a torn
		// length byte — end of the intact prefix.
		return nil, false, nil
	}
	if sz > maxRecBytes {
		return nil, false, nil
	}
	need := int(sz) + 4
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	b := r.buf[:need]
	if _, err := io.ReadFull(r.br, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		return nil, false, err
	}
	payload = b[:sz]
	crc := binary.LittleEndian.Uint32(b[sz:])
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, false, nil
	}
	if _, err := decodeEdge(payload); err != nil {
		// CRC-valid but undecodable: scan and replay must agree on where
		// the intact prefix ends, so an unparseable record terminates it
		// here rather than failing later in replay.
		return nil, false, nil
	}
	r.off += int64(uvarintLen(sz)) + int64(need)
	return payload, true, nil
}

// uvarintLen returns the encoded byte length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// scanSegment counts intact records in a segment and returns the count
// and the byte offset just past the last intact record (where a torn
// tail, if any, begins). The scan streams — memory use is independent
// of segment size.
func scanSegment(path string) (n int64, end int64, err error) {
	r, err := openSegReader(path)
	if err != nil {
		return 0, 0, err
	}
	defer r.close()
	for {
		_, ok, err := r.next()
		if err != nil {
			return 0, 0, fmt.Errorf("wal: scan %s: %w", path, err)
		}
		if !ok {
			return n, r.off, nil
		}
		n++
	}
}

// appendEdge encodes the replayable fields of an edge. The edge ID is
// deliberately excluded: IDs are assigned deterministically by the
// stream in arrival order, so replay regenerates them.
func appendEdge(b []byte, e graph.Edge) []byte {
	b = binary.AppendVarint(b, int64(e.From))
	b = binary.AppendVarint(b, int64(e.To))
	b = binary.AppendVarint(b, int64(e.FromLabel))
	b = binary.AppendVarint(b, int64(e.ToLabel))
	b = binary.AppendVarint(b, int64(e.EdgeLabel))
	b = binary.AppendVarint(b, int64(e.Time))
	return b
}

func decodeEdge(payload []byte) (graph.Edge, error) {
	var e graph.Edge
	rd := payload
	get := func() (int64, error) {
		v, n := binary.Varint(rd)
		if n <= 0 {
			return 0, fmt.Errorf("%w: short edge payload", ErrCorrupt)
		}
		rd = rd[n:]
		return v, nil
	}
	var err error
	var v int64
	if v, err = get(); err != nil {
		return e, err
	}
	e.From = graph.VertexID(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.To = graph.VertexID(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.FromLabel = graph.Label(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.ToLabel = graph.Label(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.EdgeLabel = graph.Label(v)
	if v, err = get(); err != nil {
		return e, err
	}
	e.Time = graph.Timestamp(v)
	if len(rd) != 0 {
		return e, fmt.Errorf("%w: trailing bytes in edge payload", ErrCorrupt)
	}
	return e, nil
}

// FirstSeq returns the LSN of the oldest record still retained in dir
// (0 for an empty or missing log). The value is derived from segment
// names, not contents — a torn segment still pins its named LSN, which
// Open then honours when repairing the directory. Front truncation
// advances it; consumers joining an existing log start here.
func FirstSeq(dir string) (int64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	return segs[0].firstSeq, nil
}

// Replay streams records with LSN >= from, in order, to fn. It returns
// the next LSN after the last delivered record (i.e. the log's logical
// length). Replaying an empty log returns (from, nil) — a caller whose
// checkpoint is ahead of an empty log has nothing to replay and its
// cursor stands. A torn tail (or headerless newest segment) ends replay
// cleanly; interior corruption returns ErrCorrupt. fn may stop replay
// early by returning an error, which Replay propagates. Reads stream
// one record at a time, so replay memory is flat in segment size.
func Replay(dir string, from int64, fn func(seq int64, e graph.Edge) error) (int64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		if from > 0 {
			return from, nil
		}
		return 0, nil
	}
	seq := segs[0].firstSeq
	if from > seq {
		// Skip whole segments below from.
		for len(segs) > 1 && segs[1].firstSeq <= from {
			segs = segs[1:]
		}
		seq = segs[0].firstSeq
	}
	for si, s := range segs {
		last := si == len(segs)-1
		seq, err = replaySegment(dir, s, last, seq, from, fn)
		if err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// replaySegment replays one segment starting at LSN seq, returning the
// LSN after its last intact record.
func replaySegment(dir string, s segInfo, last bool, seq, from int64, fn func(int64, graph.Edge) error) (int64, error) {
	r, err := openSegReader(filepath.Join(dir, s.name))
	if err != nil {
		if last && errors.Is(err, errShortHeader) {
			// Crash during rotation: the newest segment never got its
			// header and holds no records.
			return seq, nil
		}
		return seq, err
	}
	defer r.close()
	if seq != s.firstSeq {
		return seq, fmt.Errorf("%w: segment %s starts at %d, want %d (gap)", ErrCorrupt, s.name, s.firstSeq, seq)
	}
	for {
		payload, ok, err := r.next()
		if err != nil {
			return seq, fmt.Errorf("wal: replay %s: %w", s.name, err)
		}
		if !ok {
			if !last {
				size, serr := r.size()
				if serr != nil {
					return seq, serr
				}
				if r.off != size {
					return seq, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, s.name, r.off)
				}
			}
			return seq, nil
		}
		if seq >= from {
			e, err := decodeEdge(payload)
			if err != nil {
				return seq, fmt.Errorf("%s seq %d: %w", s.name, seq, err)
			}
			e.ID = graph.EdgeID(seq)
			if err := fn(seq, e); err != nil {
				return seq, err
			}
		}
		seq++
	}
}
