package wal

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timingsubg/internal/graph"
)

// slowFile wraps a real segment file with a sleeping Sync, making fsync
// latency dominate the way a real disk does: while one leader sleeps,
// concurrent appenders pile up behind it and must share the next fsync
// for the coalescing assertions below to hold deterministically (tmpfs
// fsyncs are too fast to force overlap).
type slowFile struct {
	f     File
	delay time.Duration
}

func (s *slowFile) Write(p []byte) (int, error)        { return s.f.Write(p) }
func (s *slowFile) Seek(o int64, w int) (int64, error) { return s.f.Seek(o, w) }
func (s *slowFile) Close() error                       { return s.f.Close() }
func (s *slowFile) Truncate(n int64) error             { return s.f.Truncate(n) }
func (s *slowFile) Sync() error                        { time.Sleep(s.delay); return s.f.Sync() }

func slowOpen(delay time.Duration) OpenFileFunc {
	return func(name string, flag int, perm os.FileMode) (File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return &slowFile{f: f, delay: delay}, nil
	}
}

// TestGroupCommitCoalesces: with per-record durability (SyncEvery: 1)
// and concurrent appenders against a slow disk, committers must share
// fsyncs — strictly fewer fsyncs than records — while every record is
// durable on return.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1, OpenFile: slowOpen(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	const (
		feeders = 8
		perG    = 25
		total   = feeders * perG
	)
	var wg sync.WaitGroup
	var next atomic.Int64
	errs := make(chan error, feeders)
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.Append(testEdge(next.Add(1))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.Seq(); got != total {
		t.Fatalf("seq = %d, want %d", got, total)
	}
	if d := l.DurableLSN(); d != total {
		t.Fatalf("durable = %d, want %d (every append committed)", d, total)
	}
	syncs := l.Syncs()
	if syncs >= total {
		t.Fatalf("no coalescing: %d fsyncs for %d records", syncs, total)
	}
	t.Logf("group commit: %d records, %d fsyncs (%.1f records/fsync)",
		total, syncs, float64(total)/float64(syncs))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir, 0); len(got) != total {
		t.Fatalf("replayed %d, want %d", len(got), total)
	}
}

// TestSyncIntervalBackground: with cadence sync off, the background
// syncer alone must advance the durable horizon to the tail within a
// few intervals, without any feeder blocking on a commit.
func TestSyncIntervalBackground(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	deadline := time.Now().Add(5 * time.Second)
	for l.DurableLSN() != 10 {
		if time.Now().After(deadline) {
			t.Fatalf("background sync never caught up: durable %d, seq 10", l.DurableLSN())
		}
		time.Sleep(time.Millisecond)
	}
	if l.Syncs() < 1 {
		t.Fatal("no background fsync recorded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close after the syncer is stopped must still be clean and final.
	if got := replayAll(t, dir, 0); len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
}

// TestConcurrentAppendersRace exercises every public mutator and reader
// concurrently (run under -race): appends and batch appends across
// segment rotations, explicit syncs, truncation, and stat reads.
func TestConcurrentAppendersRace(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, SyncEvery: 4, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const feeders = 4
	var wg sync.WaitGroup
	var produced atomic.Int64
	errs := make(chan error, feeders+2)
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]graph.Edge, 7)
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					if _, err := l.Append(testEdge(int64(g*1000 + i))); err != nil {
						errs <- err
						return
					}
					produced.Add(1)
				} else {
					for j := range batch {
						batch[j] = testEdge(int64(g*1000 + i*10 + j))
					}
					if _, n, err := l.AppendBatch(batch); err != nil {
						errs <- err
						return
					} else {
						produced.Add(int64(n))
					}
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := l.Sync(); err != nil {
				errs <- err
				return
			}
			_ = l.DurableLSN()
			_ = l.Seq()
			_ = l.Syncs()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			keep := l.Seq() / 2
			l.SetCheckpointLSN(keep)
			if err := l.TruncateFront(keep); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := produced.Load()
	if got := l.Seq(); got != want {
		t.Fatalf("seq = %d, want %d", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The surviving suffix replays without gaps from the retained horizon.
	first, err := FirstSeq(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := int64(0)
	end, err := Replay(dir, first, func(seq int64, e graph.Edge) error {
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != want {
		t.Fatalf("replay ended at %d, want %d", end, want)
	}
	if seen != want-first {
		t.Fatalf("replayed %d records from %d, want %d", seen, first, want-first)
	}
}
